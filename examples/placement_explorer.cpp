// Placement explorer: sweep the CPLX X parameter over a user-chosen cost
// distribution and print the full tradeoff curve — the tool you would use
// to pick X for a new code or cluster (paper §VI-C: "commbench provides a
// practical mechanism for empirically selecting X").
//
// Usage: ./placement_explorer [dist] [blocks] [ranks] [seed]
//   dist    exponential | gaussian | powerlaw   (default exponential)
//   blocks  number of mesh blocks              (default 2x ranks)
//   ranks   number of ranks                    (default 512)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "amr/common/rng.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/topo/topology.hpp"
#include "amr/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  CostDistribution dist = CostDistribution::kExponential;
  if (argc > 1) {
    if (std::strcmp(argv[1], "gaussian") == 0)
      dist = CostDistribution::kGaussian;
    else if (std::strcmp(argv[1], "powerlaw") == 0)
      dist = CostDistribution::kPowerLaw;
    else if (std::strcmp(argv[1], "exponential") != 0) {
      std::fprintf(stderr,
                   "unknown distribution %s (want exponential | gaussian "
                   "| powerlaw)\n",
                   argv[1]);
      return 1;
    }
  }
  const std::int32_t ranks = argc > 3 ? std::atoi(argv[3]) : 512;
  const std::size_t blocks =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
               : static_cast<std::size_t>(2 * ranks);
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 1234;

  // A mesh with roughly the requested number of blocks, so locality
  // metrics reflect real neighbor structure rather than a synthetic line.
  AmrMesh mesh(RootGrid{8, 8, 8});
  Rng mesh_rng(seed);
  grow_to_block_count(mesh, mesh_rng, blocks, 3);
  Rng cost_rng(seed + 1);
  const auto costs = synthetic_costs(mesh.size(), dist, cost_rng);
  const ClusterTopology topo(ranks, 16);

  std::printf("placement explorer: %s costs, %zu blocks, %d ranks\n",
              to_string(dist), mesh.size(), ranks);
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "policy", "makespan",
              "imbalance", "remote-frac", "memcpy-msgs", "moved");

  const PolicyPtr baseline = make_policy("baseline");
  const Placement base = baseline->place(costs, ranks);
  const std::vector<std::string> lineup{
      "baseline", "cpl0",  "cpl10", "cpl25", "cpl50",
      "cpl75",    "cpl90", "cpl100"};
  for (const auto& name : lineup) {
    const PolicyPtr policy = make_policy(name);
    const Placement p = policy->place(costs, ranks);
    const LoadMetrics load = load_metrics(costs, p, ranks);
    const CommMetrics comm = comm_metrics(mesh, p, topo);
    std::printf("%-10s %10.3f %10.3f %12.3f %12lld %10lld\n", name.c_str(),
                load.makespan, load.imbalance, comm.remote_fraction(),
                static_cast<long long>(comm.msgs_intra_rank),
                static_cast<long long>(moved_blocks(base, p)));
  }
  std::printf(
      "\nmoved = blocks leaving their baseline rank (migration cost of\n"
      "adopting the policy mid-run). Pick the smallest X whose makespan\n"
      "is close to cpl100's; the paper found X in [25, 50] optimal.\n");
  return 0;
}
