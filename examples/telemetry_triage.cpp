// Telemetry triage: the paper's diagnosis workflow on a simulated run.
//
// Runs a Sedov job on a cluster with an injected throttled node and an
// untuned fabric, persists the telemetry to the binary columnar format,
// re-loads it, and walks the §IV analysis: query per-rank phase totals,
// detect the throttled node cluster, detect MPI_Wait spikes, and verify
// the work/comm-time correlation before recommending interventions.
//
// Usage: ./telemetry_triage [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/binary_io.hpp"
#include "amr/telemetry/detectors.hpp"
#include "amr/telemetry/query.hpp"
#include "amr/workloads/sedov.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  const std::string out_dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path().string();

  // A 64-rank job with one thermally throttled node and the untuned
  // fabric configuration.
  SimulationConfig cfg;
  cfg.nranks = 64;
  cfg.ranks_per_node = 16;
  cfg.root_grid = RootGrid{4, 4, 4};
  cfg.steps = 30;
  cfg.fabric = FabricParams::untuned();
  cfg.faults.add_throttle({.nodes = {2}, .factor = 4.0});

  SedovParams sp;
  sp.total_steps = 30;
  SedovWorkload sedov(sp);
  const PolicyPtr policy = make_policy("baseline");
  Simulation sim(cfg, sedov, *policy);
  std::printf("running instrumented job (64 ranks, untuned fabric, one "
              "bad node)...\n");
  const RunReport report = sim.run();

  // Persist + reload through the binary columnar format, as the real
  // pipeline would between collection and analysis.
  const std::string phases_path = out_dir + "/triage_phases.bin";
  const std::string comm_path = out_dir + "/triage_comm.bin";
  if (!write_table(sim.collector().phases(), phases_path) ||
      !write_table(sim.collector().comm(), comm_path)) {
    std::fprintf(stderr, "cannot write telemetry to %s\n", out_dir.c_str());
    return 1;
  }
  const Table phases = read_table(phases_path);
  const Table comm = read_table(comm_path);
  std::printf("telemetry: %zu phase rows, %zu comm rows -> %s\n",
              phases.num_rows(), comm.num_rows(), out_dir.c_str());

  // Step 1: where does the time go? (query: phase share totals)
  std::printf("\n[1] phase totals (query: group by phase, sum dur)\n");
  const Table by_phase =
      Query(phases).group_by({"phase"}).agg({{"dur_ns", Agg::kSum, "ns"}});
  double total_ns = 0;
  for (const double v : by_phase.f64("ns")) total_ns += v;
  for (std::size_t r = 0; r < by_phase.num_rows(); ++r) {
    const auto phase = static_cast<Phase>(by_phase.i64("phase")[r]);
    std::printf("    %-10s %6.1f%%\n", to_string(phase),
                100.0 * by_phase.f64("ns")[r] / total_ns);
  }

  // Step 2: sync dominates -> who is the straggler? Throttle detection
  // over per-rank compute (the Fig 2 signature: clusters of 16).
  std::printf("\n[2] throttle scan over per-rank compute time\n");
  const ClusterTopology topo(cfg.nranks, cfg.ranks_per_node);
  const ThrottleReport throttle =
      detect_throttling(report.rank_compute_seconds, topo);
  std::printf("    flagged ranks: %zu (inflation %.1fx)\n",
              throttle.flagged_ranks.size(),
              throttle.flagged_mean_inflation);
  for (const auto node : throttle.flagged_nodes)
    std::printf("    -> node %d throttled: prune and blacklist\n", node);

  // Step 3: MPI_Wait spikes (Fig 1b) from per-step send waits.
  std::printf("\n[3] send-wait spike scan (drain-queue candidate)\n");
  const auto send_waits = Query(comm).values("send_wait_ns");
  const SpikeReport spikes = detect_spikes(send_waits);
  std::printf("    %zu spikes across %zu samples; mean with spikes %.0f "
              "ns, without %.0f ns\n",
              spikes.spike_indices.size(), send_waits.size(),
              spikes.mean_with_spikes, spikes.mean_without_spikes);
  if (spikes.mean_without_spikes > 0 &&
      spikes.mean_with_spikes > 1.5 * spikes.mean_without_spikes)
    std::printf("    -> ACK-recovery signature: enable the drain queue\n");

  // Step 4: does comm time track message volume? (Fig 1a)
  std::printf("\n[4] work vs comm-time correlation\n");
  std::vector<double> work;
  std::vector<double> time;
  const auto bytes_l = comm.i64("bytes_local");
  const auto bytes_r = comm.i64("bytes_remote");
  const auto sw = comm.i64("send_wait_ns");
  const auto rw = comm.i64("recv_wait_ns");
  for (std::size_t i = 0; i < comm.num_rows(); ++i) {
    work.push_back(static_cast<double>(bytes_l[i] + bytes_r[i]));
    time.push_back(static_cast<double>(sw[i] + rw[i]));
  }
  const CorrelationReport corr = correlation_report(work, time);
  std::printf("    pearson r = %.3f over %zu samples\n", corr.pearson,
              corr.n);
  if (corr.pearson < 0.7)
    std::printf("    -> telemetry unreliable: tune the stack (queue "
                "sizes, drain queue) before fitting placement models\n");

  std::printf("\ntriage complete. Interventions mirror paper §IV: prune "
              "node(s), enable drain queue, enlarge shm queue; then "
              "re-measure before running placement experiments.\n");
  return 0;
}
