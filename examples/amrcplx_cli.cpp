// amrcplx: a single CLI driver over the library's main entry points,
// mirroring the paper's released tooling. Subcommands:
//
//   run      simulate a workload end-to-end and print the run report
//   sweep    compare all evaluation policies on one configuration
//   mesh     build a mesh and print structure/locality statistics
//   policies list registered placement policies
//
// Examples:
//   amrcplx run --workload=sedov --policy=cpl50 --ranks=512 --steps=60
//   amrcplx run --workload=cooling --policy=lpt --execution=overlap
//   amrcplx sweep --ranks=256 --steps=40 --jobs=8
//   amrcplx mesh --ranks=512 --sfc=hilbert
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "amr/mesh/generators.hpp"
#include "amr/par/sweep.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"
#include "bench_util.hpp"

namespace {

using namespace amr;
using bench::grid_for_ranks;

bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 2; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

const char* arg_value(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return def;
}

/// Strict integer parse: a malformed --ranks=1O aborts instead of
/// silently truncating like atoll.
std::int64_t arg_int(int argc, char** argv, const char* name,
                     std::int64_t def) {
  const char* v = arg_value(argc, argv, name, nullptr);
  if (v == nullptr) return def;
  std::int64_t out = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, out);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "amrcplx: invalid value for --%s: '%s'\n", name,
                 v);
    std::exit(2);
  }
  return out;
}

int arg_jobs(int argc, char** argv) {
  const std::int64_t j = arg_int(argc, argv, "jobs", 1);
  if (j < 0) {
    std::fprintf(stderr, "amrcplx: --jobs must be >= 0\n");
    std::exit(2);
  }
  return j == 0 ? ThreadPool::hardware_jobs() : static_cast<int>(j);
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        std::int64_t steps) {
  if (name == "sedov") {
    SedovParams p;
    p.total_steps = steps;
    return std::make_unique<SedovWorkload>(p);
  }
  if (name == "cooling") {
    return std::make_unique<CoolingWorkload>(CoolingParams{});
  }
  std::fprintf(stderr, "unknown workload %s (sedov | cooling)\n",
               name.c_str());
  return nullptr;
}

std::string report_text(const RunReport& r, bool show_packing) {
  std::string out;
  char buf[512];
  const double total = r.phases.total();
  std::snprintf(buf, sizeof(buf),
                "policy %s: wall %.4f s | compute %.1f%% comm %.1f%% sync "
                "%.1f%% rebal %.1f%%\n",
                r.policy.c_str(), r.wall_seconds,
                100 * r.phases.compute / total, 100 * r.phases.comm / total,
                100 * r.phases.sync / total,
                100 * r.phases.rebalance / total);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  blocks %zu -> %zu | %lld redistributions, %lld moved, "
                "%lld over budget\n",
                r.initial_blocks, r.final_blocks,
                static_cast<long long>(r.lb_invocations),
                static_cast<long long>(r.blocks_migrated),
                static_cast<long long>(r.budget_violations));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  msgs: %lld local, %lld remote, %lld memcpy | critical "
                "paths: %lld 1-rank, %lld 2-rank\n",
                static_cast<long long>(r.msgs_local),
                static_cast<long long>(r.msgs_remote),
                static_cast<long long>(r.msgs_intra_rank),
                static_cast<long long>(r.critical_path.one_rank_paths),
                static_cast<long long>(r.critical_path.two_rank_paths));
  out += buf;
  // Only in packing modes: legacy stdout stays byte-identical.
  if (show_packing) {
    std::snprintf(buf, sizeof(buf),
                  "  aggregation: %lld msgs coalesced, %lld bytes packed\n",
                  static_cast<long long>(r.msgs_coalesced),
                  static_cast<long long>(r.bytes_packed));
    out += buf;
  }
  return out;
}

void print_report(const RunReport& r, bool show_packing) {
  const std::string text = report_text(r, show_packing);
  std::fwrite(text.data(), 1, text.size(), stdout);
}

int cmd_run(int argc, char** argv) {
  if (has_flag(argc, argv, "help")) {
    std::printf(
        "usage: amrcplx run [--flag=value]\n"
        "  --workload=sedov|cooling (default sedov)\n"
        "  --policy=NAME            (default cpl50)\n"
        "  --ranks=N                (default 64)\n"
        "  --steps=N                (default 40)\n"
        "  --execution=bsp|overlap  (default bsp)\n"
        "  --aggregate              (pack all same-(src,dst) sends; works\n"
        "                            under bsp and overlap)\n"
        "  --comm-adaptive          (per-peer adaptive packing from the\n"
        "                            fabric eager/rendezvous threshold;\n"
        "                            mutually exclusive with --aggregate)\n"
        "  --pack-threshold=N       (global threshold override in mean\n"
        "                            bytes/message; requires\n"
        "                            --comm-adaptive; -1 = modeled)\n"
        "  --send-priority          (schedule sends to the previous\n"
        "                            window's straggler rank first)\n"
        "  --des-shards=N           (parallel sharded DES; bsp only;\n"
        "                            0 = sequential legacy engine)\n"
        "  --trace-out=FILE.json [--trace-capacity=N]\n"
        "  --checkpoint-every=K --checkpoint-dir=D\n"
        "  --restore=FILE | --replay=FILE\n");
    return 0;
  }
  const std::int64_t ranks = arg_int(argc, argv, "ranks", 64);
  const std::int64_t steps = arg_int(argc, argv, "steps", 40);
  const std::string policy_name = arg_value(argc, argv, "policy", "cpl50");
  const std::string workload_name =
      arg_value(argc, argv, "workload", "sedov");
  const std::string execution = arg_value(argc, argv, "execution", "bsp");
  const std::string trace_out = arg_value(argc, argv, "trace-out", "");
  const std::int64_t trace_capacity =
      arg_int(argc, argv, "trace-capacity", 0);
  const std::string restore = arg_value(argc, argv, "restore", "");
  const std::string replay = arg_value(argc, argv, "replay", "");
  if (!restore.empty() && !replay.empty()) {
    std::fprintf(stderr,
                 "amrcplx: --restore and --replay are mutually exclusive\n");
    return 2;
  }
  const std::string snapshot = !restore.empty() ? restore : replay;

  SimulationConfig cfg;
  cfg.nranks = static_cast<std::int32_t>(ranks);
  cfg.ranks_per_node = 16;
  cfg.root_grid = grid_for_ranks(ranks);
  cfg.steps = steps;
  cfg.checkpoint_every = arg_int(argc, argv, "checkpoint-every", 0);
  cfg.checkpoint_dir = arg_value(argc, argv, "checkpoint-dir", ".");
  cfg.execution =
      execution == "overlap" ? ExecutionMode::kOverlap : ExecutionMode::kBsp;
  cfg.include_flux_correction = cfg.execution == ExecutionMode::kBsp;
  cfg.aggregate_messages = has_flag(argc, argv, "aggregate");
  cfg.comm_adaptive = has_flag(argc, argv, "comm-adaptive");
  cfg.comm_pack_threshold = arg_int(argc, argv, "pack-threshold", -1);
  cfg.send_priority = has_flag(argc, argv, "send-priority");
  if (cfg.aggregate_messages && cfg.comm_adaptive) {
    std::fprintf(stderr,
                 "amrcplx: --aggregate and --comm-adaptive are mutually "
                 "exclusive (adaptive packing subsumes the aggregate "
                 "flag)\n");
    return 2;
  }
  if (cfg.comm_pack_threshold >= 0 && !cfg.comm_adaptive) {
    std::fprintf(stderr,
                 "amrcplx: --pack-threshold requires --comm-adaptive\n");
    return 2;
  }
  cfg.des_shards =
      static_cast<std::int32_t>(arg_int(argc, argv, "des-shards", 0));
  if (cfg.des_shards > 0 && cfg.execution == ExecutionMode::kOverlap) {
    std::fprintf(stderr,
                 "amrcplx: --des-shards requires --execution=bsp (overlap "
                 "self-events carry no dispatch keys)\n");
    return 2;
  }
  if (!trace_out.empty()) {
    cfg.trace_enabled = true;
    if (trace_capacity > 0)
      cfg.trace.capacity = static_cast<std::size_t>(trace_capacity);
  }

  const auto workload = make_workload(workload_name, steps);
  if (!workload) return 1;
  PolicyPtr policy;
  try {
    policy = make_policy(policy_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  Simulation sim(cfg, *workload, *policy);
  if (!snapshot.empty()) {
    // Restore diagnostics go to stderr so a restored run's stdout stays
    // byte-identical to the uninterrupted run's.
    try {
      sim.restore_checkpoint(snapshot);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "amrcplx: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "amrcplx: %s %s at step %lld (policy=%s)\n",
                 replay.empty() ? "restored" : "replaying",
                 snapshot.c_str(),
                 static_cast<long long>(sim.current_step()),
                 policy->name().c_str());
  }
  print_report(sim.run(), cfg.aggregate_messages || cfg.comm_adaptive);
  if (!trace_out.empty()) {
    const Tracer& tracer = *sim.tracer();
    if (!write_chrome_trace(tracer, trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("  trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer.size()),
                static_cast<unsigned long long>(tracer.dropped()),
                trace_out.c_str());
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  const std::int64_t ranks = arg_int(argc, argv, "ranks", 64);
  const std::int64_t steps = arg_int(argc, argv, "steps", 40);
  const bool aggregate = has_flag(argc, argv, "aggregate");
  const bool comm_adaptive = has_flag(argc, argv, "comm-adaptive");
  const bool send_priority = has_flag(argc, argv, "send-priority");
  const std::string execution = arg_value(argc, argv, "execution", "bsp");
  const auto des_shards =
      static_cast<std::int32_t>(arg_int(argc, argv, "des-shards", 0));
  // Each policy's simulation is independent and fully deterministic in
  // simulated time, so the fan-out preserves serial output exactly.
  Sweep sweep(arg_jobs(argc, argv));
  for (const auto& name : evaluation_policy_names()) {
    sweep.add(name, [=] {
      SimulationConfig cfg;
      cfg.nranks = static_cast<std::int32_t>(ranks);
      cfg.ranks_per_node = 16;
      cfg.root_grid = grid_for_ranks(ranks);
      cfg.steps = steps;
      cfg.collect_telemetry = false;
      cfg.execution = execution == "overlap" ? ExecutionMode::kOverlap
                                             : ExecutionMode::kBsp;
      cfg.include_flux_correction = cfg.execution == ExecutionMode::kBsp;
      cfg.aggregate_messages = aggregate;
      cfg.comm_adaptive = comm_adaptive;
      cfg.send_priority = send_priority;
      cfg.des_shards = des_shards;
      SedovParams sp;
      sp.total_steps = steps;
      SedovWorkload sedov(sp);
      const PolicyPtr policy = make_policy(name);
      Simulation sim(cfg, sedov, *policy);
      return report_text(sim.run(), aggregate || comm_adaptive);
    });
  }
  sweep.run();
  sweep.print();
  const std::string json = arg_value(argc, argv, "json", "");
  if (!json.empty()) sweep.write_json(json, "amrcplx/sweep");
  return 0;
}

int cmd_mesh(int argc, char** argv) {
  const std::int64_t ranks = arg_int(argc, argv, "ranks", 512);
  const std::string sfc_name = arg_value(argc, argv, "sfc", "z-order");
  const SfcKind sfc =
      sfc_name == "hilbert" ? SfcKind::kHilbert : SfcKind::kZOrder;

  AmrMesh mesh(grid_for_ranks(ranks), false, sfc);
  Rng rng(7);
  grow_to_block_count(mesh, rng, static_cast<std::size_t>(2 * ranks), 2);
  const ClusterTopology topo(static_cast<std::int32_t>(ranks), 16);
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = make_policy("baseline")->place(
      uniform, static_cast<std::int32_t>(ranks));
  const CommMetrics comm = comm_metrics(mesh, p, topo);

  std::printf("mesh: %zu blocks (max level %d), curve %s\n", mesh.size(),
              mesh.max_level_present(), to_string(mesh.sfc_kind()));
  std::printf("boundary exchange under baseline placement: %lld memcpy, "
              "%lld shm, %lld remote (%.0f%% of MPI remote)\n",
              static_cast<long long>(comm.msgs_intra_rank),
              static_cast<long long>(comm.msgs_intra_node),
              static_cast<long long>(comm.msgs_inter_node),
              100 * comm.remote_fraction());
  return 0;
}

int cmd_policies() {
  std::printf("policies: baseline lpt cdp cdp-general cdp-bsearch "
              "chunked-cdp[/N] cpl0..cpl100 zonal/N/<inner>\n");
  std::printf("(graphcut is mesh-bound: see GraphCutPolicy in the API)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "sweep") return cmd_sweep(argc, argv);
  if (cmd == "mesh") return cmd_mesh(argc, argv);
  if (cmd == "policies") return cmd_policies();
  std::fprintf(stderr,
               "usage: amrcplx <run|sweep|mesh|policies> [--flag=value]\n"
               "  run    --workload=sedov|cooling --policy=NAME "
               "--ranks=N --steps=N --execution=bsp|overlap\n"
               "         --trace-out=FILE.json [--trace-capacity=N] "
               "(Perfetto / chrome://tracing)\n"
               "         --checkpoint-every=K --checkpoint-dir=D "
               "--restore=FILE | --replay=FILE (see run --help)\n"
               "  sweep  --ranks=N --steps=N --jobs=N [--aggregate] "
               "[--comm-adaptive] [--send-priority]\n"
               "         [--execution=bsp|overlap] [--des-shards=N] "
               "[--json=FILE]\n"
               "  mesh   --ranks=N --sfc=z-order|hilbert\n");
  return cmd.empty() ? 1 : 2;
}
