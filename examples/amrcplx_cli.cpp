// amrcplx: a single CLI driver over the library's main entry points,
// mirroring the paper's released tooling. Subcommands:
//
//   run      simulate a workload end-to-end and print the run report
//   sweep    compare all evaluation policies on one configuration
//   mesh     build a mesh and print structure/locality statistics
//   policies list registered placement policies
//
// Examples:
//   amrcplx run --workload=sedov --policy=cpl50 --ranks=512 --steps=60
//   amrcplx run --workload=cooling --policy=lpt --execution=overlap
//   amrcplx sweep --ranks=256 --steps=40 --jobs=8
//   amrcplx mesh --ranks=512 --sfc=hilbert
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "amr/mesh/generators.hpp"
#include "amr/par/sweep.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/serve/sim_server.hpp"
#include "amr/sim/sim_driver.hpp"
#include "amr/trace/chrome_export.hpp"

namespace {

using namespace amr;

bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 2; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

const char* arg_value(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  return def;
}

/// Strict integer parse: a malformed --ranks=1O aborts instead of
/// silently truncating like atoll.
std::int64_t arg_int(int argc, char** argv, const char* name,
                     std::int64_t def) {
  const char* v = arg_value(argc, argv, name, nullptr);
  if (v == nullptr) return def;
  std::int64_t out = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, out);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "amrcplx: invalid value for --%s: '%s'\n", name,
                 v);
    std::exit(2);
  }
  return out;
}

int arg_jobs(int argc, char** argv) {
  const std::int64_t j = arg_int(argc, argv, "jobs", 1);
  if (j < 0) {
    std::fprintf(stderr, "amrcplx: --jobs must be >= 0\n");
    std::exit(2);
  }
  return j == 0 ? ThreadPool::hardware_jobs() : static_cast<int>(j);
}

void print_report(const RunReport& r, bool show_packing) {
  const std::string text = compact_report_text(r, show_packing);
  std::fwrite(text.data(), 1, text.size(), stdout);
}

/// Flag-to-spec mapping shared by `run` and (per job line) `serve`'s
/// defaults; validation lives in validate_job.
JobSpec spec_from_flags(int argc, char** argv) {
  JobSpec spec;
  spec.workload = arg_value(argc, argv, "workload", "sedov");
  spec.policy = arg_value(argc, argv, "policy", "cpl50");
  spec.ranks = arg_int(argc, argv, "ranks", 64);
  spec.steps = arg_int(argc, argv, "steps", 40);
  spec.overlap =
      std::string(arg_value(argc, argv, "execution", "bsp")) == "overlap";
  spec.aggregate = has_flag(argc, argv, "aggregate");
  spec.comm_adaptive = has_flag(argc, argv, "comm-adaptive");
  spec.pack_threshold = arg_int(argc, argv, "pack-threshold", -1);
  spec.send_priority = has_flag(argc, argv, "send-priority");
  spec.des_shards =
      static_cast<std::int32_t>(arg_int(argc, argv, "des-shards", 0));
  spec.auto_cplx = has_flag(argc, argv, "auto-cplx");
  spec.cplx_budget_ms = arg_int(argc, argv, "cplx-budget-ms", -1);
  spec.placement_incremental =
      has_flag(argc, argv, "placement-incremental");
  spec.checkpoint_every = arg_int(argc, argv, "checkpoint-every", 0);
  spec.checkpoint_dir = arg_value(argc, argv, "checkpoint-dir", ".");
  spec.restore = arg_value(argc, argv, "restore", "");
  spec.replay = arg_value(argc, argv, "replay", "");
  spec.fault_nodes =
      static_cast<std::int32_t>(arg_int(argc, argv, "faults", 0));
  spec.trace = *arg_value(argc, argv, "trace-out", "") != '\0';
  const std::int64_t cap = arg_int(argc, argv, "trace-capacity", 0);
  if (cap > 0) spec.trace_capacity = static_cast<std::size_t>(cap);
  return spec;
}

int cmd_run(int argc, char** argv) {
  if (has_flag(argc, argv, "help")) {
    std::printf(
        "usage: amrcplx run [--flag=value]\n"
        "  --workload=sedov|cooling (default sedov)\n"
        "  --policy=NAME            (default cpl50)\n"
        "  --ranks=N                (default 64)\n"
        "  --steps=N                (default 40)\n"
        "  --execution=bsp|overlap  (default bsp)\n"
        "  --aggregate              (pack all same-(src,dst) sends; works\n"
        "                            under bsp and overlap)\n"
        "  --comm-adaptive          (per-peer adaptive packing from the\n"
        "                            fabric eager/rendezvous threshold;\n"
        "                            mutually exclusive with --aggregate)\n"
        "  --pack-threshold=N       (global threshold override in mean\n"
        "                            bytes/message; requires\n"
        "                            --comm-adaptive; -1 = modeled)\n"
        "  --send-priority          (schedule sends to the previous\n"
        "                            window's straggler rank first)\n"
        "  --des-shards=N           (parallel sharded DES; bsp only;\n"
        "                            0 = sequential legacy engine)\n"
        "  --auto-cplx              (self-tuning CPLX: pick X per regrid\n"
        "                            epoch from an online step-time\n"
        "                            surrogate; reports policy auto-cplx)\n"
        "  --cplx-budget-ms=N       (auto-X evaluation budget; requires\n"
        "                            --auto-cplx; default 50)\n"
        "  --placement-incremental  (incremental parallel placement\n"
        "                            engine for CPLX policies; output is\n"
        "                            byte-identical to the full rebuild)\n"
        "  --faults=N               (throttle N nodes x4 for the middle\n"
        "                            half of the run; deterministic)\n"
        "  --trace-out=FILE.json [--trace-capacity=N]\n"
        "  --checkpoint-every=K --checkpoint-dir=D\n"
        "  --restore=FILE | --replay=FILE\n");
    return 0;
  }
  const JobSpec spec = spec_from_flags(argc, argv);
  const std::string trace_out = arg_value(argc, argv, "trace-out", "");
  const std::string invalid = validate_job(spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "amrcplx: %s\n", invalid.c_str());
    return 2;
  }

  std::unique_ptr<SimDriver> driver;
  try {
    driver = std::make_unique<SimDriver>(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amrcplx: %s\n", e.what());
    return 1;
  }
  // Restore diagnostics go to stderr so a restored run's stdout stays
  // byte-identical to the uninterrupted run's.
  if (!driver->restore_note().empty())
    std::fprintf(stderr, "amrcplx: %s\n", driver->restore_note().c_str());
  print_report(driver->run(), spec.aggregate || spec.comm_adaptive);
  if (!trace_out.empty()) {
    const Tracer& tracer = *driver->sim().tracer();
    if (!write_chrome_trace(tracer, trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("  trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer.size()),
                static_cast<unsigned long long>(tracer.dropped()),
                trace_out.c_str());
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  const std::int64_t ranks = arg_int(argc, argv, "ranks", 64);
  const std::int64_t steps = arg_int(argc, argv, "steps", 40);
  const bool aggregate = has_flag(argc, argv, "aggregate");
  const bool comm_adaptive = has_flag(argc, argv, "comm-adaptive");
  const bool send_priority = has_flag(argc, argv, "send-priority");
  const std::string execution = arg_value(argc, argv, "execution", "bsp");
  const auto des_shards =
      static_cast<std::int32_t>(arg_int(argc, argv, "des-shards", 0));
  const bool placement_incremental =
      has_flag(argc, argv, "placement-incremental");
  // Each policy's simulation is independent and fully deterministic in
  // simulated time, so the fan-out preserves serial output exactly.
  Sweep sweep(arg_jobs(argc, argv));
  for (const auto& name : evaluation_policy_names()) {
    sweep.add(name, [=] {
      JobSpec spec;
      spec.policy = name;
      spec.ranks = ranks;
      spec.steps = steps;
      spec.overlap = execution == "overlap";
      spec.aggregate = aggregate;
      spec.comm_adaptive = comm_adaptive;
      spec.send_priority = send_priority;
      spec.des_shards = des_shards;
      spec.placement_incremental = placement_incremental;
      spec.collect_telemetry = false;
      SimDriver driver(spec);
      return compact_report_text(driver.run(),
                                 aggregate || comm_adaptive);
    });
  }
  sweep.run();
  sweep.print();
  const std::string json = arg_value(argc, argv, "json", "");
  if (!json.empty()) sweep.write_json(json, "amrcplx/sweep");
  return 0;
}

int cmd_mesh(int argc, char** argv) {
  const std::int64_t ranks = arg_int(argc, argv, "ranks", 512);
  const std::string sfc_name = arg_value(argc, argv, "sfc", "z-order");
  const SfcKind sfc =
      sfc_name == "hilbert" ? SfcKind::kHilbert : SfcKind::kZOrder;

  AmrMesh mesh(grid_for_ranks(ranks), false, sfc);
  Rng rng(7);
  grow_to_block_count(mesh, rng, static_cast<std::size_t>(2 * ranks), 2);
  const ClusterTopology topo(static_cast<std::int32_t>(ranks), 16);
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = make_policy("baseline")->place(
      uniform, static_cast<std::int32_t>(ranks));
  const CommMetrics comm = comm_metrics(mesh, p, topo);

  std::printf("mesh: %zu blocks (max level %d), curve %s\n", mesh.size(),
              mesh.max_level_present(), to_string(mesh.sfc_kind()));
  std::printf("boundary exchange under baseline placement: %lld memcpy, "
              "%lld shm, %lld remote (%.0f%% of MPI remote)\n",
              static_cast<long long>(comm.msgs_intra_rank),
              static_cast<long long>(comm.msgs_intra_node),
              static_cast<long long>(comm.msgs_inter_node),
              100 * comm.remote_fraction());
  return 0;
}

int cmd_serve(int argc, char** argv) {
  if (has_flag(argc, argv, "help")) {
    std::printf(
        "usage: amrcplx serve [--flag=value] < jobs  |  --file=JOBS\n"
        "multiplex a batch of simulation jobs over one process.\n"
        "protocol (one request per line):\n"
        "  {\"policy\": \"cpl50\", \"ranks\": 64, \"steps\": 40, ...}\n"
        "      submit a job; fields mirror `amrcplx run` flags\n"
        "      (id, workload, policy, ranks, steps, execution,\n"
        "       aggregate, comm_adaptive, pack_threshold, send_priority,\n"
        "       des_shards, auto_cplx, cplx_budget_ms,\n"
        "       placement_incremental, sedov_max_level, checkpoint_every,\n"
        "       checkpoint_dir, restore, replay, faults)\n"
        "  query <job-id> select ...   results endpoint (see README)\n"
        "  stats                       scheduler counters\n"
        "  # comment\n"
        "flags:\n"
        "  --file=JOBS          (read requests from a file, not stdin)\n"
        "  --quantum-steps=N    (steps per tenant slice; default 16)\n"
        "  --serve-jobs=N       (tenants sliced concurrently; default 1)\n"
        "  --max-resident=MB    (evict cold sims to snapshots beyond this\n"
        "                        budget; -1 unlimited, 0 evicts all idle)\n"
        "  --spill-dir=D        (eviction snapshot directory; default .)\n"
        "  --no-share           (disable cross-tenant plan sharing)\n"
        "  --stats              (print scheduler counters to stderr)\n");
    return 0;
  }
  // Unlike run/sweep, serve consumes stdin — a silently ignored flag
  // typo would hang waiting for jobs, so reject unknown flags here.
  static const char* const kServeFlags[] = {
      "file",     "quantum-steps", "serve-jobs", "max-resident",
      "spill-dir", "no-share",     "stats",      "help"};
  for (int i = 2; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    const std::string_view body = a.substr(2, a.find('=') - 2);
    bool known = false;
    for (const char* f : kServeFlags) known = known || body == f;
    if (!known) {
      std::fprintf(stderr,
                   "amrcplx serve: unrecognized flag --%.*s; see "
                   "`amrcplx serve --help`\n",
                   static_cast<int>(body.size()), body.data());
      return 2;
    }
  }
  serve::ServeOptions opts;
  opts.quantum_steps = arg_int(argc, argv, "quantum-steps", 16);
  opts.serve_jobs =
      static_cast<int>(arg_int(argc, argv, "serve-jobs", 1));
  opts.max_resident_mb = arg_int(argc, argv, "max-resident", -1);
  opts.spill_dir = arg_value(argc, argv, "spill-dir", ".");
  opts.share_plans = !has_flag(argc, argv, "no-share");
  if (opts.quantum_steps <= 0) {
    std::fprintf(stderr, "amrcplx: --quantum-steps must be positive\n");
    return 2;
  }
  if (opts.serve_jobs < 1) {
    std::fprintf(stderr, "amrcplx: --serve-jobs must be >= 1\n");
    return 2;
  }
  const std::string file = arg_value(argc, argv, "file", "");
  std::ifstream job_file;
  std::istream* in = &std::cin;
  if (!file.empty()) {
    job_file.open(file);
    if (!job_file) {
      std::fprintf(stderr, "amrcplx: cannot open job file %s\n",
                   file.c_str());
      return 1;
    }
    in = &job_file;
  }
  serve::SimServer server(opts);
  const int rc = server.run(*in, stdout);
  if (has_flag(argc, argv, "stats")) {
    const serve::SchedulerStats s = server.stats();
    std::fprintf(stderr,
                 "serve: %lld jobs, %lld slices, %lld evictions, "
                 "%lld restores, plan cache %lld/%lld hit/miss "
                 "(%lld shared)\n",
                 static_cast<long long>(s.jobs),
                 static_cast<long long>(s.slices),
                 static_cast<long long>(s.evictions),
                 static_cast<long long>(s.restores),
                 static_cast<long long>(s.plan_hits),
                 static_cast<long long>(s.plan_misses),
                 static_cast<long long>(s.plan_share_hits));
  }
  return rc;
}

int cmd_policies() {
  std::printf("policies: baseline lpt cdp cdp-general cdp-bsearch "
              "chunked-cdp[/N] cpl0..cpl100 zonal/N/<inner>\n");
  std::printf("(graphcut is mesh-bound: see GraphCutPolicy in the API)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "sweep") return cmd_sweep(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "mesh") return cmd_mesh(argc, argv);
  if (cmd == "policies") return cmd_policies();
  std::fprintf(stderr,
               "usage: amrcplx <run|sweep|serve|mesh|policies> "
               "[--flag=value]\n"
               "  run    --workload=sedov|cooling --policy=NAME "
               "--ranks=N --steps=N --execution=bsp|overlap\n"
               "         --trace-out=FILE.json [--trace-capacity=N] "
               "(Perfetto / chrome://tracing)\n"
               "         --checkpoint-every=K --checkpoint-dir=D "
               "--restore=FILE | --replay=FILE (see run --help)\n"
               "  sweep  --ranks=N --steps=N --jobs=N [--aggregate] "
               "[--comm-adaptive] [--send-priority]\n"
               "         [--execution=bsp|overlap] [--des-shards=N] "
               "[--placement-incremental] [--json=FILE]\n"
               "  serve  --file=JOBS --quantum-steps=N --serve-jobs=N "
               "--max-resident=MB (see serve --help)\n"
               "  mesh   --ranks=N --sfc=z-order|hilbert\n");
  return cmd.empty() ? 1 : 2;
}
