// Quickstart: the public API in ~60 lines.
//
// Build an adaptively refined mesh, measure (synthetic) per-block costs,
// compare placement policies on load balance and communication locality,
// and pick an operating point on the CPLX tradeoff curve.
//
// Run: ./quickstart
#include <cmath>
#include <cstdio>

#include "amr/common/rng.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/mesh/mesh.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/topo/topology.hpp"

int main() {
  using namespace amr;

  // 1. A mesh: 8x8x8 root blocks, refined around a spherical shock shell
  //    (what a Sedov-style problem does mid-run).
  AmrMesh mesh(RootGrid{8, 8, 8});
  refine_shell(mesh, {0.5, 0.5, 0.5}, /*radius=*/0.3, /*half_width=*/0.06,
               /*max_level=*/1);
  std::printf("mesh: %zu blocks, max level %d\n", mesh.size(),
              mesh.max_level_present());

  // 2. Per-block compute costs as telemetry would measure them: blocks
  //    near the shock front cost more (steep gradients -> more solver
  //    iterations), with lognormal kernel noise.
  Rng rng(42);
  std::vector<double> costs(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const auto c = mesh.bounds(b).center();
    const double dx = c[0] - 0.5;
    const double dy = c[1] - 0.5;
    const double dz = c[2] - 0.5;
    const double d = std::sqrt(dx * dx + dy * dy + dz * dz);
    const double front = std::exp(-0.5 * (d - 0.3) * (d - 0.3) / 0.01);
    costs[b] = (1.0 + 3.0 * front) * rng.lognormal(0.0, 0.2);
  }

  // 3. Compare the paper's policy line-up on a 512-rank, 16-ranks/node
  //    cluster: makespan (straggler bound) vs locality (remote traffic).
  const std::int32_t ranks = 512;
  const ClusterTopology topo(ranks, 16);
  std::printf("\n%-10s %9s %10s %12s %12s\n", "policy", "makespan",
              "imbalance", "remote-msgs", "contiguity");
  for (const auto& name : evaluation_policy_names()) {
    const PolicyPtr policy = make_policy(name);
    const Placement p = policy->place(costs, ranks);
    const LoadMetrics load = load_metrics(costs, p, ranks);
    const CommMetrics comm = comm_metrics(mesh, p, topo);
    std::printf("%-10s %9.3f %10.3f %12lld %12.3f\n", name.c_str(),
                load.makespan, load.imbalance,
                static_cast<long long>(comm.msgs_inter_node),
                contiguity_fraction(p));
  }

  std::printf(
      "\nReading the table: X=0 preserves locality (high contiguity, few\n"
      "remote messages) but tolerates imbalance; X=100 is pure LPT.\n"
      "Intermediate X captures most of the balance gain at a fraction of\n"
      "the locality cost -- the CPLX tradeoff (paper Fig 6).\n");
  return 0;
}
