// End-to-end Sedov blast wave simulation on the simulated cluster.
//
// Runs the full telemetry-driven pipeline: the blast front sweeps the
// domain, the mesh refines/coarsens around it, redistribution invokes the
// chosen placement policy with measured block costs, and the BSP executor
// runs every step on the discrete-event cluster. Prints a per-phase
// runtime breakdown and redistribution statistics.
//
// Usage: ./sedov_sim [policy] [ranks] [steps] [--trace-out=FILE.json]
//   policy  baseline | cpl0 | cpl25 | cpl50 | cpl75 | cpl100 | lpt | cdp
//   ranks   simulated MPI ranks (default 64; 16 per node)
//   steps   timesteps (default 60)
//   --trace-out writes an event-level Perfetto/chrome://tracing trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

amr::RootGrid grid_for_ranks(std::int32_t ranks) {
  // One root block per rank, factored as evenly as possible into 3D.
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;
  std::int32_t remaining = ranks;
  for (int axis = 0; remaining > 1;) {
    (axis == 0 ? nx : axis == 1 ? ny : nz) *= 2;
    remaining /= 2;
    axis = (axis + 1) % 3;
  }
  return amr::RootGrid{nx, ny, nz};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  // Flags may appear anywhere; the rest are positional.
  std::string trace_out;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else
      pos.push_back(argv[i]);
  }
  const std::string policy_name = pos.size() > 0 ? pos[0] : "cpl50";
  const std::int32_t ranks = pos.size() > 1 ? std::atoi(pos[1]) : 64;
  const std::int64_t steps = pos.size() > 2 ? std::atoll(pos[2]) : 60;
  if (ranks <= 0 || (ranks & (ranks - 1)) != 0) {
    std::fprintf(stderr, "ranks must be a positive power of two\n");
    return 1;
  }

  SimulationConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = 16;
  cfg.root_grid = grid_for_ranks(ranks);
  cfg.steps = steps;
  cfg.trace_enabled = !trace_out.empty();

  SedovParams sp;
  sp.total_steps = steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);

  const PolicyPtr policy = make_policy(policy_name);
  Simulation sim(cfg, sedov, *policy);
  std::printf("running sedov3d: policy=%s ranks=%d steps=%lld grid=%ux%ux%u\n",
              policy->name().c_str(), ranks, static_cast<long long>(steps),
              cfg.root_grid.nx, cfg.root_grid.ny, cfg.root_grid.nz);

  const RunReport report = sim.run();

  std::printf("\n== run report: %s ==\n", report.policy.c_str());
  std::printf("wall time            %10.3f s (simulated)\n",
              report.wall_seconds);
  const double total = report.phases.total();
  std::printf("  compute            %10.3f s (%4.1f%%)\n",
              report.phases.compute, 100 * report.phases.compute / total);
  std::printf("  communication      %10.3f s (%4.1f%%)\n",
              report.phases.comm, 100 * report.phases.comm / total);
  std::printf("  synchronization    %10.3f s (%4.1f%%)\n",
              report.phases.sync, 100 * report.phases.sync / total);
  std::printf("  rebalancing        %10.3f s (%4.1f%%)\n",
              report.phases.rebalance,
              100 * report.phases.rebalance / total);
  std::printf("blocks               %zu -> %zu\n", report.initial_blocks,
              report.final_blocks);
  std::printf("redistributions      %lld (moved %lld blocks)\n",
              static_cast<long long>(report.lb_invocations),
              static_cast<long long>(report.blocks_migrated));
  if (!report.placement_ms.empty()) {
    double max_ms = 0;
    double sum_ms = 0;
    for (const double m : report.placement_ms) {
      max_ms = std::max(max_ms, m);
      sum_ms += m;
    }
    std::printf("placement compute    mean %.3f ms, max %.3f ms "
                "(budget: 50 ms)\n",
                sum_ms / static_cast<double>(report.placement_ms.size()),
                max_ms);
  }
  std::printf("P2P messages         %lld local, %lld remote (%.0f%% remote), "
              "%lld memcpy'd\n",
              static_cast<long long>(report.msgs_local),
              static_cast<long long>(report.msgs_remote),
              100.0 * static_cast<double>(report.msgs_remote) /
                  static_cast<double>(
                      std::max<std::int64_t>(1, report.msgs_local +
                                                    report.msgs_remote)),
              static_cast<long long>(report.msgs_intra_rank));
  std::printf("critical paths       %lld windows: %lld one-rank, "
              "%lld two-rank\n",
              static_cast<long long>(report.critical_path.windows),
              static_cast<long long>(report.critical_path.one_rank_paths),
              static_cast<long long>(report.critical_path.two_rank_paths));
  if (!trace_out.empty()) {
    const Tracer& tracer = *sim.tracer();
    if (!write_chrome_trace(tracer, trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("trace                %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer.size()),
                static_cast<unsigned long long>(tracer.dropped()),
                trace_out.c_str());
  }
  return 0;
}
