// End-to-end Sedov blast wave simulation on the simulated cluster.
//
// Runs the full telemetry-driven pipeline: the blast front sweeps the
// domain, the mesh refines/coarsens around it, redistribution invokes the
// chosen placement policy with measured block costs, and the BSP executor
// runs every step on the discrete-event cluster. Prints a per-phase
// runtime breakdown and redistribution statistics.
//
// Usage: ./sedov_sim [policy[,policy...]] [ranks] [steps] [--flags]
//   policy  baseline | cpl0 | cpl25 | cpl50 | cpl75 | cpl100 | lpt | cdp
//           a comma-separated list runs each policy (in parallel with
//           --jobs>1; reports print in list order regardless)
//   ranks   simulated MPI ranks (default 64; 16 per node)
//   steps   timesteps (default 60)
//   --timing    adds host-measured placement wall-clock (nondeterministic)
//   --overlap   task-graph execution with compute/communication overlap
//               instead of the default BSP step
//   --aggregate coalesce all same-(src,dst) boundary sends of a step into
//               one packed transfer per destination rank (works under BSP
//               and --overlap); off by default — the legacy path stays
//               byte-identical
//   --comm-adaptive  per-peer adaptive packing: each (src,dst) pair packs
//               or sends eagerly by comparing its mean bytes/message
//               against the fabric-derived eager/rendezvous threshold
//               (mutually exclusive with --aggregate, which it subsumes)
//   --pack-threshold=N  global packing-threshold override in mean
//               bytes/message (requires --comm-adaptive; -1 = modeled)
//   --send-priority  schedule sends destined for the previous window's
//               critical-path straggler rank before other sends
//   --des-shards=N  partition the DES by cluster node into N shards run
//               concurrently under conservative lookahead (BSP only).
//               0 (default) = legacy sequential engine. Output is
//               identical for every N >= 1 but not to N=0 (sharded runs
//               use per-node fabric RNG streams)
//   --auto-cplx self-tuning CPLX: pick the cluster size X per regrid
//               epoch from an online step-time surrogate fed by the
//               run's own (simulated) telemetry; reports print policy
//               "auto-cplx". Deterministic and checkpoint-stable
//   --cplx-budget-ms=N  auto-X evaluation budget (requires --auto-cplx;
//               default 50 ms, the paper's placement budget)
//   --placement-incremental  incremental parallel placement engine for
//               CPLX policies: reuse unchanged SFC-chunk solves across
//               regrid epochs, solve the rest concurrently. Output is
//               byte-identical to the full rebuild (ctest
//               placement_tuning_determinism diffs the two modes)
//   --trace-out=FILE writes an event-level Perfetto/chrome://tracing
//               trace (single-policy runs only)
//   --no-incremental  rebuild exchange plans from scratch every step
//               (reference path; output must be byte-identical — ctest
//               step_pipeline_determinism diffs the two modes)
//   --faults=N  throttle N nodes (x4 compute) for the middle half of the
//               run; victims are picked deterministically from the seed
//   --checkpoint-every=K  write ckpt_<step>.amrs every K steps into
//   --checkpoint-dir=D    (default ".")
//   --restore=FILE  resume from a snapshot and continue to `steps`;
//               stdout is byte-identical to the uninterrupted run
//               (restore diagnostics go to stderr)
//   --replay=FILE   like --restore, but intended for re-driving the run
//               with a different placement policy than the recorded one
//   --help      list all flags
#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/par/sweep.hpp"
#include "amr/sim/sim_driver.hpp"
#include "amr/trace/chrome_export.hpp"
#include "bench_util.hpp"

namespace {

using amr::bench::appendf;

std::int64_t parse_int(const std::string& v, const char* what) {
  std::int64_t out = 0;
  const char* begin = v.c_str();
  const char* end = begin + v.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "sedov_sim: invalid %s: '%s'\n", what, v.c_str());
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  // Flags may appear anywhere; the rest are positional.
  const Flags flags(argc, argv);
  const bool timing = flags.has("timing");
  const bool overlap = flags.has("overlap");
  const bool aggregate = flags.has("aggregate");
  const bool comm_adaptive = flags.has("comm-adaptive");
  const bool send_priority = flags.has("send-priority");
  const std::int64_t pack_threshold = flags.get_int("pack-threshold", -1);
  const auto des_shards =
      static_cast<std::int32_t>(flags.get_int("des-shards", 0));
  const bool incremental = !flags.has("no-incremental");
  const bool auto_cplx = flags.has("auto-cplx");
  const std::int64_t cplx_budget_ms = flags.get_int("cplx-budget-ms", -1);
  const bool placement_incremental = flags.has("placement-incremental");
  const std::string trace_out = flags.get_str("trace-out", "");
  const int jobs = flags.jobs();
  const std::int64_t checkpoint_every =
      flags.get_int("checkpoint-every", 0);
  const std::string checkpoint_dir = flags.get_str("checkpoint-dir", ".");
  const std::string restore = flags.get_str("restore", "");
  const std::string replay = flags.get_str("replay", "");
  const auto fault_nodes =
      static_cast<std::int32_t>(flags.get_int("faults", 0));
  flags.done();

  const std::vector<std::string> pos = flags.positionals();
  const std::string policy_arg = !pos.empty() ? pos[0] : "cpl50";
  const auto ranks = static_cast<std::int32_t>(
      pos.size() > 1 ? parse_int(pos[1], "ranks") : 64);
  const std::int64_t steps =
      pos.size() > 2 ? parse_int(pos[2], "steps") : 60;
  if (ranks <= 0 || (ranks & (ranks - 1)) != 0) {
    std::fprintf(stderr, "ranks must be a positive power of two\n");
    return 1;
  }
  const std::string snapshot = !restore.empty() ? restore : replay;

  std::vector<std::string> policy_names;
  for (std::size_t at = 0; at <= policy_arg.size();) {
    const std::size_t comma = policy_arg.find(',', at);
    const std::size_t end =
        comma == std::string::npos ? policy_arg.size() : comma;
    if (end > at) policy_names.push_back(policy_arg.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  if (policy_names.empty()) {
    std::fprintf(stderr, "no policy given\n");
    return 1;
  }
  if (!trace_out.empty() && policy_names.size() > 1) {
    std::fprintf(stderr,
                 "--trace-out requires a single policy (got %zu)\n",
                 policy_names.size());
    return 1;
  }
  if ((!snapshot.empty() || checkpoint_every > 0) &&
      policy_names.size() > 1) {
    std::fprintf(stderr,
                 "checkpoint/restore flags require a single policy "
                 "(got %zu)\n",
                 policy_names.size());
    return 1;
  }
  const bool tracing = !trace_out.empty();

  std::atomic<bool> failed{false};
  Sweep sweep(jobs);
  for (const std::string& policy_name : policy_names) {
    sweep.add(policy_name, [=, &failed] {
      JobSpec spec;
      spec.policy = policy_name;
      spec.ranks = ranks;
      spec.steps = steps;
      spec.overlap = overlap;
      spec.aggregate = aggregate;
      spec.comm_adaptive = comm_adaptive;
      spec.pack_threshold = pack_threshold;
      spec.send_priority = send_priority;
      spec.des_shards = des_shards;
      spec.incremental_plans = incremental;
      spec.auto_cplx = auto_cplx;
      spec.cplx_budget_ms = cplx_budget_ms;
      spec.placement_incremental = placement_incremental;
      spec.collect_telemetry = false;
      spec.sedov_max_level = 1;
      spec.checkpoint_every = checkpoint_every;
      spec.checkpoint_dir = checkpoint_dir;
      spec.restore = restore;
      spec.replay = replay;
      spec.fault_nodes = fault_nodes;
      spec.trace = tracing;

      std::string out;
      std::unique_ptr<SimDriver> driver;
      // Construction performs the restore; diagnostics go to stderr: a
      // restored run's stdout must stay byte-identical to the
      // uninterrupted run's (ctest checkpoint_determinism diffs them).
      try {
        driver = std::make_unique<SimDriver>(spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sedov_sim: %s\n", e.what());
        failed.store(true, std::memory_order_relaxed);
        return out;
      }
      if (!driver->restore_note().empty())
        std::fprintf(stderr, "%s\n", driver->restore_note().c_str());
      const SimulationConfig& cfg = driver->config();
      appendf(out,
              "running sedov3d: policy=%s ranks=%d steps=%lld "
              "grid=%ux%ux%u\n",
              driver->policy().name().c_str(), static_cast<int>(ranks),
              static_cast<long long>(steps), cfg.root_grid.nx,
              cfg.root_grid.ny, cfg.root_grid.nz);
      out += verbose_report_text(driver->run(), timing,
                                 aggregate || comm_adaptive);
      if (tracing) {
        const Tracer& tracer = *driver->sim().tracer();
        if (!write_chrome_trace(tracer, trace_out)) {
          appendf(out, "failed to write trace to %s\n", trace_out.c_str());
          failed.store(true, std::memory_order_relaxed);
        } else {
          appendf(out, "trace                %llu events (%llu dropped) "
                       "-> %s\n",
                  static_cast<unsigned long long>(tracer.size()),
                  static_cast<unsigned long long>(tracer.dropped()),
                  trace_out.c_str());
        }
      }
      return out;
    });
  }
  sweep.run();
  sweep.print();
  return failed.load(std::memory_order_relaxed) ? 1 : 0;
}
