// End-to-end Sedov blast wave simulation on the simulated cluster.
//
// Runs the full telemetry-driven pipeline: the blast front sweeps the
// domain, the mesh refines/coarsens around it, redistribution invokes the
// chosen placement policy with measured block costs, and the BSP executor
// runs every step on the discrete-event cluster. Prints a per-phase
// runtime breakdown and redistribution statistics.
//
// Usage: ./sedov_sim [policy[,policy...]] [ranks] [steps]
//                    [--jobs=N] [--timing] [--trace-out=FILE.json]
//                    [--no-incremental]
//   policy  baseline | cpl0 | cpl25 | cpl50 | cpl75 | cpl100 | lpt | cdp
//           a comma-separated list runs each policy (in parallel with
//           --jobs>1; reports print in list order regardless)
//   ranks   simulated MPI ranks (default 64; 16 per node)
//   steps   timesteps (default 60)
//   --timing    adds host-measured placement wall-clock (nondeterministic)
//   --trace-out writes an event-level Perfetto/chrome://tracing trace
//               (single-policy runs only)
//   --no-incremental  rebuild exchange plans from scratch every step
//               (reference path; output must be byte-identical — ctest
//               step_pipeline_determinism diffs the two modes)
#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/par/sweep.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

amr::RootGrid grid_for_ranks(std::int32_t ranks) {
  // One root block per rank, factored as evenly as possible into 3D.
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;
  std::int32_t remaining = ranks;
  for (int axis = 0; remaining > 1;) {
    (axis == 0 ? nx : axis == 1 ? ny : nz) *= 2;
    remaining /= 2;
    axis = (axis + 1) % 3;
  }
  return amr::RootGrid{nx, ny, nz};
}

std::int64_t parse_int(const char* v, const char* what) {
  std::int64_t out = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, out);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "sedov_sim: invalid %s: '%s'\n", what, v);
    std::exit(2);
  }
  return out;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

std::string report_text(const amr::RunReport& report, bool timing) {
  std::string out;
  appendf(out, "\n== run report: %s ==\n", report.policy.c_str());
  appendf(out, "wall time            %10.3f s (simulated)\n",
          report.wall_seconds);
  const double total = report.phases.total();
  appendf(out, "  compute            %10.3f s (%4.1f%%)\n",
          report.phases.compute, 100 * report.phases.compute / total);
  appendf(out, "  communication      %10.3f s (%4.1f%%)\n",
          report.phases.comm, 100 * report.phases.comm / total);
  appendf(out, "  synchronization    %10.3f s (%4.1f%%)\n",
          report.phases.sync, 100 * report.phases.sync / total);
  appendf(out, "  rebalancing        %10.3f s (%4.1f%%)\n",
          report.phases.rebalance, 100 * report.phases.rebalance / total);
  appendf(out, "blocks               %zu -> %zu\n", report.initial_blocks,
          report.final_blocks);
  appendf(out, "redistributions      %lld (moved %lld blocks)\n",
          static_cast<long long>(report.lb_invocations),
          static_cast<long long>(report.blocks_migrated));
  // Placement wall-clock is host-measured (nondeterministic), so it only
  // prints under --timing; everything else is simulated time and
  // byte-stable across --jobs.
  if (timing && !report.placement_ms.empty()) {
    double max_ms = 0;
    double sum_ms = 0;
    for (const double m : report.placement_ms) {
      max_ms = std::max(max_ms, m);
      sum_ms += m;
    }
    appendf(out,
            "placement compute    mean %.3f ms, max %.3f ms "
            "(budget: 50 ms)\n",
            sum_ms / static_cast<double>(report.placement_ms.size()),
            max_ms);
  }
  appendf(out,
          "P2P messages         %lld local, %lld remote (%.0f%% remote), "
          "%lld memcpy'd\n",
          static_cast<long long>(report.msgs_local),
          static_cast<long long>(report.msgs_remote),
          100.0 * static_cast<double>(report.msgs_remote) /
              static_cast<double>(std::max<std::int64_t>(
                  1, report.msgs_local + report.msgs_remote)),
          static_cast<long long>(report.msgs_intra_rank));
  appendf(out,
          "critical paths       %lld windows: %lld one-rank, "
          "%lld two-rank\n",
          static_cast<long long>(report.critical_path.windows),
          static_cast<long long>(report.critical_path.one_rank_paths),
          static_cast<long long>(report.critical_path.two_rank_paths));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  // Flags may appear anywhere; the rest are positional.
  std::string trace_out;
  int jobs = 1;
  bool timing = false;
  bool incremental = true;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(argv[i], "--no-incremental") == 0) {
      incremental = false;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const std::int64_t j = parse_int(argv[i] + 7, "--jobs");
      jobs = j == 0 ? ThreadPool::hardware_jobs() : static_cast<int>(j);
    } else {
      pos.push_back(argv[i]);
    }
  }
  const std::string policy_arg = pos.size() > 0 ? pos[0] : "cpl50";
  const auto ranks = static_cast<std::int32_t>(
      pos.size() > 1 ? parse_int(pos[1], "ranks") : 64);
  const std::int64_t steps = pos.size() > 2 ? parse_int(pos[2], "steps") : 60;
  if (ranks <= 0 || (ranks & (ranks - 1)) != 0) {
    std::fprintf(stderr, "ranks must be a positive power of two\n");
    return 1;
  }

  std::vector<std::string> policy_names;
  for (std::size_t at = 0; at <= policy_arg.size();) {
    const std::size_t comma = policy_arg.find(',', at);
    const std::size_t end =
        comma == std::string::npos ? policy_arg.size() : comma;
    if (end > at) policy_names.push_back(policy_arg.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  if (policy_names.empty()) {
    std::fprintf(stderr, "no policy given\n");
    return 1;
  }
  if (!trace_out.empty() && policy_names.size() > 1) {
    std::fprintf(stderr,
                 "--trace-out requires a single policy (got %zu)\n",
                 policy_names.size());
    return 1;
  }
  const bool tracing = !trace_out.empty();

  std::atomic<bool> trace_failed{false};
  Sweep sweep(jobs);
  for (const std::string& policy_name : policy_names) {
    sweep.add(policy_name, [=, &trace_failed] {
      SimulationConfig cfg;
      cfg.nranks = ranks;
      cfg.ranks_per_node = 16;
      cfg.root_grid = grid_for_ranks(ranks);
      cfg.steps = steps;
      cfg.trace_enabled = tracing;
      cfg.incremental_plans = incremental;

      SedovParams sp;
      sp.total_steps = steps;
      sp.max_level = 1;
      SedovWorkload sedov(sp);

      const PolicyPtr policy = make_policy(policy_name);
      Simulation sim(cfg, sedov, *policy);
      std::string out;
      appendf(out,
              "running sedov3d: policy=%s ranks=%d steps=%lld "
              "grid=%ux%ux%u\n",
              policy->name().c_str(), ranks,
              static_cast<long long>(steps), cfg.root_grid.nx,
              cfg.root_grid.ny, cfg.root_grid.nz);
      out += report_text(sim.run(), timing);
      if (tracing) {
        const Tracer& tracer = *sim.tracer();
        if (!write_chrome_trace(tracer, trace_out)) {
          appendf(out, "failed to write trace to %s\n", trace_out.c_str());
          trace_failed.store(true, std::memory_order_relaxed);
        } else {
          appendf(out, "trace                %llu events (%llu dropped) "
                       "-> %s\n",
                  static_cast<unsigned long long>(tracer.size()),
                  static_cast<unsigned long long>(tracer.dropped()),
                  trace_out.c_str());
        }
      }
      return out;
    });
  }
  sweep.run();
  sweep.print();
  return trace_failed.load(std::memory_order_relaxed) ? 1 : 0;
}
