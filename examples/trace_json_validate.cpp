// trace_json_validate: check that a trace file is well-formed JSON.
//
// Used by the ctest smoke test to validate amrcplx --trace-out output
// without external dependencies; handy interactively for any JSON file.
// Exits 0 iff the file parses (RFC 8259 grammar via amr::json_valid).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "amr/trace/json_check.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_json_validate <file.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (!amr::json_valid(text)) {
    std::fprintf(stderr, "%s: invalid JSON (%zu bytes)\n", argv[1],
                 text.size());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", argv[1], text.size());
  return 0;
}
