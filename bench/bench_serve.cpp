// Serve throughput exhibit: multiplexed steps/s vs tenant count, the
// cross-tenant plan-store A/B, and the eviction-budget worst case —
// BENCH_serve.json.
//
// Each point drains a fleet of identical-fingerprint tenants (the
// policy-sweep/what-if shape the serve scheduler is built for) through
// QuantumScheduler and records aggregate simulated steps per wall
// second. Stdout includes host wall-clock values and is NOT
// byte-stable; the --json=FILE record (one object per invocation,
// appended) is what BENCH_serve.json tracks across commits.
//
// The bench also enforces the structural serve invariants and exits
// nonzero on any violation — on a single-core host the interesting
// claims are correctness ones, not parallel speedups:
//   * every tenant's report text equals the standalone SimDriver run;
//   * fleets of >= 2 identical tenants take shared-plan hits;
//   * disabling sharing changes counters, never bytes;
//   * a zero resident budget forces evict/restore churn with, again,
//     byte-identical output and no leaked spills.
//
// Flags: --steps=N (default 10) --max-tenants=N (default 8)
//        --quantum=N (default 4) --serve-jobs=N (default 2)
//        --quick --json=FILE
#include "bench_util.hpp"

#include <chrono>
#include <string>
#include <vector>

#include "amr/serve/scheduler.hpp"

namespace {

using namespace amr;
using namespace amr::bench;
using amr::serve::QuantumScheduler;
using amr::serve::SchedulerStats;
using amr::serve::ServeOptions;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

JobSpec fleet_job(std::int64_t steps) {
  JobSpec spec;
  spec.policy = "cpl50";
  spec.ranks = 64;
  spec.steps = steps;
  spec.collect_telemetry = false;  // throughput, not the query endpoint
  return spec;
}

struct Point {
  std::string mode;  ///< "shared" | "private" | "evict"
  int tenants = 0;
  double wall_ms = 0.0;
  double steps_per_s = 0.0;
  SchedulerStats stats;
  bool identical = true;  ///< every tenant's text == standalone text
};

Point run_fleet(const std::string& mode, int tenants, const JobSpec& job,
                const ServeOptions& opts, const std::string& want_text) {
  Point p;
  p.mode = mode;
  p.tenants = tenants;
  QuantumScheduler sched(opts);
  for (int i = 0; i < tenants; ++i) sched.submit(job);
  const double t0 = now_ms();
  sched.drain();
  p.wall_ms = now_ms() - t0;
  p.steps_per_s = static_cast<double>(tenants * job.steps) /
                  (p.wall_ms > 0 ? p.wall_ms / 1000.0 : 1e-9);
  p.stats = sched.stats();
  for (int i = 0; i < tenants; ++i) {
    const serve::JobResult* r = sched.result(i);
    if (r == nullptr || !r->ok || r->text != want_text) p.identical = false;
  }
  return p;
}

void print_point(const Point& p) {
  std::printf("  %-7s tenants=%-3d %9.1f ms  %8.2f steps/s  "
              "share_hits=%-4lld evict/restore=%lld/%lld  identical:%s\n",
              p.mode.c_str(), p.tenants, p.wall_ms, p.steps_per_s,
              static_cast<long long>(p.stats.plan_share_hits),
              static_cast<long long>(p.stats.evictions),
              static_cast<long long>(p.stats.restores),
              p.identical ? "   yes" : "    NO");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t steps =
      flags.get_int("steps", flags.quick() ? 6 : 10);
  const int max_tenants = static_cast<int>(
      flags.get_int("max-tenants", flags.quick() ? 4 : 8));
  const std::int64_t quantum = flags.get_int("quantum", 4);
  const int serve_jobs =
      static_cast<int>(flags.get_int("serve-jobs", 2));
  const std::string json = flags.json_path();
  flags.done();

  const JobSpec job = fleet_job(steps);
  // The reference bytes every multiplexed tenant must reproduce.
  std::string want_text;
  {
    SimDriver driver(job);
    want_text = compact_report_text(driver.run(), false);
  }

  ServeOptions shared;
  shared.quantum_steps = quantum;
  shared.serve_jobs = serve_jobs;

  print_header("serve: multiplexed steps/s vs tenant count");
  std::printf("(identical-fingerprint fleet: %s, %lld ranks, %lld steps; "
              "quantum %lld, pool width %d)\n",
              job.policy.c_str(), static_cast<long long>(job.ranks),
              static_cast<long long>(steps),
              static_cast<long long>(quantum), serve_jobs);

  std::vector<Point> points;
  bool ok = true;
  for (int tenants = 1; tenants <= max_tenants; tenants *= 2) {
    points.push_back(
        run_fleet("shared", tenants, job, shared, want_text));
    const Point& p = points.back();
    print_point(p);
    ok = ok && p.identical;
    // Tenants beyond the first batch start every epoch after the store
    // already holds it, so they must hit. (First-batch tenants run the
    // same epochs concurrently and may legitimately race to build.)
    if (tenants > serve_jobs && p.stats.plan_share_hits <= 0) {
      std::printf("  ^ FAIL: no shared-plan hits in an identical fleet\n");
      ok = false;
    }
  }

  print_rule();
  ServeOptions isolated = shared;
  isolated.share_plans = false;
  points.push_back(
      run_fleet("private", max_tenants, job, isolated, want_text));
  print_point(points.back());
  ok = ok && points.back().identical;
  if (points.back().stats.store.hits != 0 ||
      points.back().stats.plan_share_hits != 0) {
    std::printf("  ^ FAIL: --no-share still hit the store\n");
    ok = false;
  }

  ServeOptions strapped = shared;
  strapped.max_resident_mb = 0;  // evict everything, every slice
  points.push_back(
      run_fleet("evict", max_tenants, job, strapped, want_text));
  print_point(points.back());
  ok = ok && points.back().identical;
  if (points.back().stats.evictions <= 0 ||
      points.back().stats.restores <= 0) {
    std::printf("  ^ FAIL: zero budget caused no eviction churn\n");
    ok = false;
  }

  std::printf("\nall tenants byte-identical to standalone runs: %s\n",
              ok ? "yes" : "NO");

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"serve\",\"steps\":%lld,\"quantum\":%lld,"
                   "\"serve_jobs\":%d,\"hw_cores\":%d,\"identical\":%s,"
                   "\"points\":[",
                   static_cast<long long>(steps),
                   static_cast<long long>(quantum), serve_jobs,
                   ThreadPool::hardware_jobs(), ok ? "true" : "false");
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        std::fprintf(
            f,
            "%s{\"mode\":\"%s\",\"tenants\":%d,\"wall_ms\":%.1f,"
            "\"steps_per_s\":%.2f,\"share_hits\":%lld,"
            "\"store_hits\":%lld,\"evictions\":%lld,\"restores\":%lld}",
            i == 0 ? "" : ",", p.mode.c_str(), p.tenants, p.wall_ms,
            p.steps_per_s,
            static_cast<long long>(p.stats.plan_share_hits),
            static_cast<long long>(p.stats.store.hits),
            static_cast<long long>(p.stats.evictions),
            static_cast<long long>(p.stats.restores));
      }
      std::fprintf(f, "]}\n");
      if (f != stdout) std::fclose(f);
    }
  }
  return ok ? 0 : 1;
}
