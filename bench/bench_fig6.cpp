// Fig 6 reproduction: Sedov Blast Wave runtime statistics across scales
// and placement policies.
//
// (a) Total runtime decomposed into compute / comm / sync / rebalance for
//     {baseline, cpl0, cpl25, cpl50, cpl75, cpl100} at each scale:
//     baseline sync share grows with scale (35% -> 50%), every CPLX
//     variant beats baseline, runtime is U-shaped in X, compute is flat.
// (b) Comm and sync time normalized to baseline at the smallest and
//     largest scale: comm rises with X, sync falls.
// (c) Local (intra-node) vs remote (inter-node) MPI message counts,
//     normalized to baseline total: remote share grows with X.
//
// Every (scale, policy) simulation is an independent sweep task; all
// reported values are simulated time, so output is byte-identical at
// any --jobs.
//
// Flags: --steps=N (default 80) --max-ranks=N (default 4096) --quick
//        --jobs=N --json=FILE
#include "bench_util.hpp"

#include <map>

#include "amr/par/sweep.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 30 : 80);
  const std::int64_t max_ranks =
      flags.get_int("max-ranks", flags.quick() ? 512 : 4096);
  const int jobs = flags.jobs();
  const std::string json = flags.json_path();
  flags.done();

  std::vector<std::int64_t> scales;
  for (std::int64_t r = 512; r <= max_ranks; r *= 2) scales.push_back(r);
  if (scales.empty()) scales.push_back(max_ranks);
  const auto policies = evaluation_policy_names();

  // One simulation per (scale, policy); each task fills its own slot, so
  // the pool never contends and the gathered reports are
  // schedule-independent.
  std::vector<RunReport> runs(scales.size() * policies.size());
  Sweep sweep(jobs);
  for (std::size_t si = 0; si < scales.size(); ++si) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const std::int64_t ranks = scales[si];
      const std::string name = policies[pi];
      RunReport* slot = &runs[si * policies.size() + pi];
      sweep.add("sedov/" + std::to_string(ranks) + "/" + name, [=] {
        SimulationConfig cfg = base_sim_config(ranks, steps);
        SedovParams sp;
        sp.total_steps = steps;
        SedovWorkload sedov(sp);
        const PolicyPtr policy = make_policy(name);
        Simulation sim(cfg, sedov, *policy);
        *slot = sim.run();
        return std::string();
      });
    }
  }
  sweep.run();

  std::map<std::pair<std::int64_t, std::string>, RunReport> reports;
  for (std::size_t si = 0; si < scales.size(); ++si)
    for (std::size_t pi = 0; pi < policies.size(); ++pi)
      reports.emplace(std::make_pair(scales[si], policies[pi]),
                      runs[si * policies.size() + pi]);

  print_header("Fig 6a: runtime by phase, policies x scales (seconds)");
  for (const std::int64_t ranks : scales) {
    std::printf("\n-- %lld ranks --\n", static_cast<long long>(ranks));
    std::printf("%-10s %9s %9s %9s %9s %9s | %7s %7s\n", "policy", "total",
                "compute", "comm", "sync", "rebal", "vs-base", "sync%");
    print_rule();
    double baseline_total = 0.0;
    for (const auto& name : policies) {
      const RunReport& r = reports.at({ranks, name});
      const double total = r.phases.total();
      if (name == "baseline") baseline_total = total;
      std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %9.3f | %+6.1f%% %6.1f%%\n",
                  name.c_str(), total, r.phases.compute, r.phases.comm,
                  r.phases.sync, r.phases.rebalance,
                  100.0 * (total - baseline_total) / baseline_total,
                  100.0 * r.phases.sync / total);
    }
  }

  print_header(
      "Fig 6b: comm & sync normalized to baseline (smallest/largest "
      "scale)");
  std::printf("%-10s", "policy");
  for (const std::int64_t ranks : {scales.front(), scales.back()})
    std::printf("  | %5lldr comm  sync", static_cast<long long>(ranks));
  std::printf("\n");
  print_rule();
  for (const auto& name : policies) {
    std::printf("%-10s", name.c_str());
    for (const std::int64_t ranks : {scales.front(), scales.back()}) {
      const RunReport& base = reports.at({ranks, "baseline"});
      const RunReport& r = reports.at({ranks, name});
      std::printf("  |      %6.3f %6.3f", r.phases.comm / base.phases.comm,
                  r.phases.sync / base.phases.sync);
    }
    std::printf("\n");
  }

  print_header(
      "Fig 6c: local vs remote MPI messages, normalized to baseline "
      "total");
  std::printf("%-10s", "policy");
  for (const std::int64_t ranks : {scales.front(), scales.back()})
    std::printf("  | %5lldr local remot rem%%",
                static_cast<long long>(ranks));
  std::printf("\n");
  print_rule();
  for (const auto& name : policies) {
    std::printf("%-10s", name.c_str());
    for (const std::int64_t ranks : {scales.front(), scales.back()}) {
      const RunReport& base = reports.at({ranks, "baseline"});
      const RunReport& r = reports.at({ranks, name});
      const double base_total =
          static_cast<double>(base.msgs_local + base.msgs_remote);
      const double remote_share =
          100.0 * static_cast<double>(r.msgs_remote) /
          static_cast<double>(r.msgs_local + r.msgs_remote);
      std::printf("  |      %6.3f %6.3f %4.0f%%",
                  static_cast<double>(r.msgs_local) / base_total,
                  static_cast<double>(r.msgs_remote) / base_total,
                  remote_share);
    }
    std::printf("\n");
  }
  std::printf("\npaper shapes: all CPLX variants beat baseline with the "
              "gap widening at scale (up to ~21.6%% at 4096); runtime is "
              "U-shaped in X; compute flat; comm up / sync down with X; "
              "remote share grows with X and is already a majority for "
              "baseline at 4096 ranks (paper: 64%%).\n");
  if (!json.empty()) sweep.write_json(json, "fig6");
  return 0;
}
