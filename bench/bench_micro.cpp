// google-benchmark microbenchmarks for the hot substrate paths: Morton
// encoding, mesh refinement and neighbor discovery, placement policies at
// production sizes, DES event throughput, and fabric transfers. These
// guard the performance envelope that keeps placement inside the paper's
// 50 ms budget and the simulator fast enough for the Fig 6 sweeps.
#include <benchmark/benchmark.h>

#include "amr/common/rng.hpp"
#include "amr/des/engine.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/mesh/morton.hpp"
#include "amr/net/fabric.hpp"
#include "amr/placement/registry.hpp"
#include "amr/workloads/synthetic.hpp"

namespace {

using namespace amr;

void BM_Morton3Encode(benchmark::State& state) {
  std::uint32_t x = 123456;
  std::uint32_t y = 654321;
  std::uint32_t z = 111111;
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton3_encode(x, y, z));
    ++x;
  }
}
BENCHMARK(BM_Morton3Encode);

void BM_Morton3RoundTrip(benchmark::State& state) {
  std::uint32_t x = 1;
  for (auto _ : state) {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    morton3_decode(morton3_encode(x, x + 1, x + 2), a, b, c);
    benchmark::DoNotOptimize(a + b + c);
    ++x;
  }
}
BENCHMARK(BM_Morton3RoundTrip);

void BM_MeshRefine(benchmark::State& state) {
  for (auto _ : state) {
    AmrMesh mesh(RootGrid{8, 8, 8});
    refine_shell(mesh, {0.5, 0.5, 0.5}, 0.3, 0.06, 1);
    benchmark::DoNotOptimize(mesh.size());
  }
}
BENCHMARK(BM_MeshRefine)->Unit(benchmark::kMillisecond);

void BM_NeighborLists(benchmark::State& state) {
  AmrMesh mesh(RootGrid{8, 8, 8});
  refine_shell(mesh, {0.5, 0.5, 0.5}, 0.3, 0.06, 1);
  for (auto _ : state) {
    AmrMesh copy = mesh;  // cache is per-instance
    benchmark::DoNotOptimize(copy.neighbor_lists().size());
  }
}
BENCHMARK(BM_NeighborLists)->Unit(benchmark::kMillisecond);

void BM_Policy(benchmark::State& state, const char* name) {
  const auto ranks = static_cast<std::int32_t>(state.range(0));
  Rng rng(42);
  const auto costs = synthetic_costs(
      static_cast<std::size_t>(ranks) * 3 / 2,
      CostDistribution::kExponential, rng);
  const PolicyPtr policy = make_policy(name);
  for (auto _ : state)
    benchmark::DoNotOptimize(policy->place(costs, ranks));
}
BENCHMARK_CAPTURE(BM_Policy, baseline, "baseline")
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, lpt, "lpt")
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, cdp, "cdp")
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, cpl50, "cpl50")
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_DesEventThroughput(benchmark::State& state) {
  class Null final : public EventHandler {
   public:
    void on_event(Engine&, std::uint64_t) override {}
  } handler;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    for (int i = 0; i < 100000; ++i)
      engine.schedule_at(i, &handler, 0);
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DesEventThroughput)->Unit(benchmark::kMillisecond);

void BM_FabricTransfer(benchmark::State& state) {
  const ClusterTopology topo(4096, 16);
  Fabric fabric(topo, FabricParams::tuned(), Rng(1));
  TimeNs t = 0;
  std::int32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fabric.transfer(src, (src + 16) % 4096, 20480, t));
    src = (src + 1) % 4096;
    t += 100;
  }
}
BENCHMARK(BM_FabricTransfer);

}  // namespace
