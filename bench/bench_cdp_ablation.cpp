// §V-C ablations: what the CDP restrictions cost.
//
// (1) Restricted O(n*r) CDP (segment sizes in {floor, ceil}) vs the
//     general O(n^2*r) DP and the exact binary-search contiguous
//     partition: quality ratio and wall-clock.
// (2) Hierarchical chunking: solution quality and wall-clock vs chunk
//     size — the mechanism that keeps CDP inside the 50 ms placement
//     budget at scale.
//
// Each table row is an independent sweep task. Quality ratios are
// seed-determined, so default output is byte-stable across --jobs;
// wall-clock columns only print under --timing.
//
// Flags: --trials=N (default 5) --quick --jobs=N --timing --json=FILE
#include "bench_util.hpp"

#include <chrono>

#include "amr/common/stats.hpp"
#include "amr/par/sweep.hpp"
#include "amr/placement/cdp.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/workloads/synthetic.hpp"

namespace {

template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto trials = static_cast<std::int32_t>(
      flags.get_int("trials", flags.quick() ? 2 : 5));
  const bool timing = flags.has("timing");
  const int jobs = flags.jobs();
  const std::string json = flags.json_path();
  flags.done();

  // Bounded-variability costs, as in scalebench: unbounded tails pin the
  // makespan to one block and hide the differences being measured.
  SyntheticCostParams cost_params;
  cost_params.clamp_max_ratio = 3.0;

  // ~2.2 blocks/rank (Table I final counts): mixed segment sizes give
  // the restricted DP real ordering freedom.
  const std::vector<std::pair<std::size_t, std::int32_t>> variant_cases{
      {281, 128}, {1126, 512}, {2252, 1024}};
  const std::vector<std::pair<std::size_t, std::int32_t>> chunk_cases{
      {6144, 4096}, {24576, 16384}};

  Sweep variants(jobs);
  for (const auto& [blocks, ranks] : variant_cases) {
    variants.add("cdp-variants/" + std::to_string(blocks),
                 [=, &cost_params] {
      const CdpPolicy restricted(CdpMode::kRestricted);
      const CdpPolicy general(CdpMode::kGeneral);
      const CdpPolicy bsearch(CdpMode::kBinarySearch);
      RunningStats q_restricted;
      RunningStats q_general;
      RunningStats t_restricted;
      RunningStats t_general;
      RunningStats t_bsearch;
      for (std::int32_t t = 0; t < trials; ++t) {
        Rng rng(hash64(blocks * 17 + static_cast<std::uint64_t>(t)));
        const auto costs = synthetic_costs(
            blocks, CostDistribution::kGaussian, rng, cost_params);
        std::vector<std::int32_t> sizes_r;
        std::vector<std::int32_t> sizes_g;
        std::vector<std::int32_t> sizes_b;
        t_restricted.add(timed_ms(
            [&] { sizes_r = restricted.segment_sizes(costs, ranks); }));
        t_general.add(timed_ms(
            [&] { sizes_g = general.segment_sizes(costs, ranks); }));
        t_bsearch.add(timed_ms(
            [&] { sizes_b = bsearch.segment_sizes(costs, ranks); }));
        const double exact = segments_makespan(costs, sizes_b);
        q_restricted.add(segments_makespan(costs, sizes_r) / exact);
        q_general.add(segments_makespan(costs, sizes_g) / exact);
      }
      std::string row;
      appendf(row, "%8zu %8d | %12.4f %12.4f", blocks, ranks,
              q_restricted.mean(), q_general.mean());
      if (timing)
        appendf(row, " | %10.3f %10.3f %10.3f", t_restricted.mean(),
                t_general.mean(), t_bsearch.mean());
      appendf(row, "\n");
      return row;
    });
  }

  Sweep chunking(jobs);
  for (const auto& [blocks, ranks] : chunk_cases) {
    chunking.add("cdp-chunking/" + std::to_string(blocks), [=] {
      const CdpPolicy restricted(CdpMode::kRestricted);
      Rng rng(hash64(blocks));
      SyntheticCostParams params;
      params.clamp_max_ratio = 3.0;
      const auto costs = synthetic_costs(
          blocks, CostDistribution::kExponential, rng, params);
      // Unchunked reference (restricted CDP on the whole instance) only
      // where feasible.
      double reference = -1.0;
      if (ranks <= 4096) {
        const auto sizes = restricted.segment_sizes(costs, ranks);
        reference = segments_makespan(costs, sizes);
      }
      std::string rows;
      for (const std::int32_t chunk : {256, 512, 1024}) {
        const ChunkedCdpPolicy chunked(chunk);
        Placement p;
        const double wall =
            timed_ms([&] { p = chunked.place(costs, ranks); });
        const double ms = load_metrics(costs, p, ranks).makespan;
        appendf(rows, "%8zu %8d %10d | %14.4f", blocks, ranks, chunk,
                reference > 0 ? ms / reference : 0.0);
        if (timing) appendf(rows, " %10.3f", wall);
        appendf(rows, "\n");
      }
      return rows;
    });
  }

  variants.run();
  chunking.run();

  print_header("SV-C ablation 1: CDP variants (quality vs cost)");
  std::printf("%8s %8s | %12s %12s", "blocks", "ranks", "restr/exact",
              "general/ex");
  if (timing)
    std::printf(" | %10s %10s %10s", "restr-ms", "general-ms",
                "bsearch-ms");
  std::printf("\n");
  print_rule();
  variants.print();
  std::printf(
      "\nThe size restriction trades some contiguous-optimal makespan "
      "(more under heavy-tailed costs, where hot blocks collide along "
      "the SFC) for a collapsed DP cost and balanced block counts -- a "
      "property the exact partition does not guarantee and which the "
      "migration budget relies on.\n");

  print_header("SV-C ablation 2: hierarchical chunking");
  std::printf("%8s %8s %10s | %14s", "blocks", "ranks", "chunk",
              "makespan/cdp");
  if (timing) std::printf(" %10s", "wall-ms");
  std::printf("\n");
  print_rule();
  chunking.print();
  std::printf("\n(makespan/cdp = 0 where the unchunked reference exceeds "
              "the DP state cap; paper: chunking has minimal quality "
              "impact since CDP output is only CPLX's starting point)\n");
  if (!json.empty()) {
    variants.write_json(json, "cdp_ablation/variants");
    chunking.write_json(json, "cdp_ablation/chunking");
  }
  return 0;
}
