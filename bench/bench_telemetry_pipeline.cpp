// §IV-C ablation: the analysis-pipeline evolution, measured.
//
// The paper's workflow went CSV+pandas -> binary formats -> columnar
// queries because "parsing time became a bottleneck". This bench
// generates a realistic telemetry volume (per-step, per-rank phase rows),
// then measures each pipeline stage: CSV write/parse vs binary
// write/load, stats-only header reads, and a representative diagnostic
// query (per-rank sync totals) on the loaded table.
//
// Flags: --ranks=N (default 512) --steps=N (default 200) --quick
#include "bench_util.hpp"

#include <chrono>
#include <filesystem>

#include "amr/common/rng.hpp"
#include "amr/telemetry/binary_io.hpp"
#include "amr/telemetry/collector.hpp"
#include "amr/telemetry/csv_io.hpp"
#include "amr/telemetry/query.hpp"

namespace {

template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int64_t>(
      flags.get_int("ranks", flags.quick() ? 128 : 512));
  const auto steps = static_cast<std::int64_t>(
      flags.get_int("steps", flags.quick() ? 50 : 200));
  flags.done();

  // Synthesize a phases table of realistic shape and magnitude.
  Collector collector;
  Rng rng(5);
  for (std::int64_t s = 0; s < steps; ++s) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      collector.record_phase(s, static_cast<std::int32_t>(r),
                             Phase::kCompute,
                             static_cast<TimeNs>(rng.uniform(4e5, 6e5)));
      collector.record_phase(s, static_cast<std::int32_t>(r), Phase::kComm,
                             static_cast<TimeNs>(rng.uniform(2e4, 8e4)));
      collector.record_phase(s, static_cast<std::int32_t>(r), Phase::kSync,
                             static_cast<TimeNs>(rng.exponential(2e5)));
    }
  }
  const Table& phases = collector.phases();

  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "amr_pipeline.csv").string();
  const std::string bin_path = (dir / "amr_pipeline.bin").string();

  print_header("SIV-C ablation: telemetry pipeline stage costs");
  std::printf("table: %zu rows x %zu cols (%lld steps x %lld ranks x 3 "
              "phases)\n\n",
              phases.num_rows(), phases.num_cols(),
              static_cast<long long>(steps), static_cast<long long>(ranks));

  const double csv_write =
      timed_ms([&] { AMR_CHECK(write_csv(phases, csv_path)); });
  const double bin_write =
      timed_ms([&] { AMR_CHECK(write_table(phases, bin_path)); });

  Table from_csv;
  Table from_bin;
  const double csv_read = timed_ms([&] { from_csv = read_csv(csv_path); });
  const double bin_read =
      timed_ms([&] { from_bin = read_table(bin_path); });
  AMR_CHECK(from_csv.num_rows() == phases.num_rows());
  AMR_CHECK(from_bin.num_rows() == phases.num_rows());

  const double stats_read =
      timed_ms([&] { (void)read_table_stats(bin_path); });

  double query_ms = 0.0;
  Table per_rank_sync;
  query_ms = timed_ms([&] {
    per_rank_sync =
        Query(from_bin)
            .filter_i64("phase",
                        [](std::int64_t p) {
                          return p ==
                                 static_cast<std::int64_t>(Phase::kSync);
                        })
            .group_by({"rank"})
            .agg({{"dur_ns", Agg::kSum, "sync_ns"},
                  {"dur_ns", Agg::kP95, "sync_p95"}});
  });
  AMR_CHECK(per_rank_sync.num_rows() ==
            static_cast<std::size_t>(ranks));

  const auto csv_size = std::filesystem::file_size(csv_path);
  const auto bin_size = std::filesystem::file_size(bin_path);

  std::printf("%-34s %12s %12s\n", "stage", "CSV", "binary");
  print_rule();
  std::printf("%-34s %9.1f ms %9.1f ms\n", "write", csv_write, bin_write);
  std::printf("%-34s %9.1f ms %9.1f ms  (%.1fx faster)\n", "parse/load",
              csv_read, bin_read, csv_read / std::max(0.001, bin_read));
  std::printf("%-34s %12s %9.2f ms\n", "stats-only read (header)", "-",
              stats_read);
  std::printf("%-34s %9.2f MB %9.2f MB\n", "file size",
              static_cast<double>(csv_size) / 1e6,
              static_cast<double>(bin_size) / 1e6);
  std::printf("%-34s %12s %9.1f ms\n",
              "diagnostic query (sync by rank)", "-", query_ms);

  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);

  std::printf(
      "\npaper narrative reproduced: text parsing dominates the iterative "
      "tuning loop; binary columnar storage makes load time negligible "
      "and header statistics allow pruning without any scan.\n");
  return 0;
}
