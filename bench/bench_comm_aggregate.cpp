// Message-aggregation benchmark: what per-destination packing of the
// boundary exchange buys in host steps/sec.
//
// The legacy path posts one fabric transfer per directed block-neighbor
// pair, so a 2048-rank Sedov step floods the DES with tens of thousands
// of delivery events; with --aggregate every same-(src,dst) send of the
// step coalesces into one packed transfer (Parthenon-style neighbor
// buffers), cutting the exchange-phase event count by the coalescing
// factor. Four sections:
//   1. sedov steps/sec at paper scales, aggregation off vs on, with the
//      coalescing factor, the byte-conservation check (aggregation must
//      move exactly the legacy byte volume), and an on-mode determinism
//      check (two identical runs -> identical reports);
//   2. placement-ranking preservation: a baseline-vs-CPLX mini-sweep in
//      both modes — aggregation must not change which policy wins
//      (simulated wall time), or A/B studies under --aggregate would not
//      transfer;
//   3. plan-build microcost of the aggregated vs legacy build on the
//      shared step-work fixture;
//   4. a packing-threshold sweep: --comm-adaptive with a global
//      --pack-threshold ladder, tracing out bytes-per-message vs
//      simulated steps/s between never-pack (0) and pack-all, with
//      --aggregate as the reference endpoint.
//
// The mesh runs denser than one block per rank (--blocks-per-rank,
// default 4): with exactly one block per rank each neighbor pair has its
// own destination rank and there is nothing to pack; real AMR runs hold
// several blocks per rank, which is where per-destination aggregation
// pays (see BENCH_comm_aggregate.json).
//
// Stdout includes host wall-clock values and is NOT byte-stable; the
// --json=FILE record (one object per line, appended) is the tracked
// artifact.
//
// Flags: --steps=N (default 20) --trials=N (default 2) --quick
//        --blocks-per-rank=N (default 4) --json=FILE
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "amr/exec/work.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"
#include "step_work_fixture.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  double best_ms = 1e30;
  RunReport report;
};

SimulationConfig aggregate_config(std::int32_t ranks, std::int64_t steps,
                                  std::int64_t blocks_per_rank,
                                  bool aggregate) {
  SimulationConfig cfg = base_sim_config(ranks, steps);
  // Denser root grid than the 1-block/rank Table I default: aggregation
  // packs same-destination sends, which only exist when a rank holds
  // several blocks.
  cfg.root_grid =
      grid_for_ranks(static_cast<std::int64_t>(ranks) * blocks_per_rank);
  cfg.aggregate_messages = aggregate;
  return cfg;
}

/// One run with adaptive packing pinned to a global threshold (mean
/// bytes/message at or under which a (src,dst) pair coalesces).
RunReport run_threshold(std::int32_t ranks, std::int64_t steps,
                        std::int64_t blocks_per_rank,
                        std::int64_t threshold) {
  SimulationConfig cfg =
      aggregate_config(ranks, steps, blocks_per_rank, false);
  cfg.comm_adaptive = true;
  cfg.comm_pack_threshold = threshold;
  SedovParams sp;
  sp.total_steps = steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const PolicyPtr policy = make_policy("cpl50");
  Simulation sim(cfg, sedov, *policy);
  return sim.run();
}

ModeResult run_sedov(std::int32_t ranks, std::int64_t steps,
                     std::int64_t blocks_per_rank, bool aggregate,
                     const std::string& policy_name, int trials) {
  ModeResult r;
  for (int t = 0; t < trials; ++t) {
    SimulationConfig cfg =
        aggregate_config(ranks, steps, blocks_per_rank, aggregate);
    SedovParams sp;
    sp.total_steps = steps;
    sp.max_level = 1;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy(policy_name);
    Simulation sim(cfg, sedov, *policy);
    const double t0 = now_ms();
    RunReport report = sim.run();
    const double ms = now_ms() - t0;
    if (ms < r.best_ms) {
      r.best_ms = ms;
      r.report = std::move(report);
    }
  }
  return r;
}

/// Simulated quantities two runs of the same configuration must agree on.
bool reports_match(const RunReport& a, const RunReport& b) {
  return a.wall_seconds == b.wall_seconds &&
         a.phases.compute == b.phases.compute &&
         a.phases.comm == b.phases.comm && a.phases.sync == b.phases.sync &&
         a.msgs_local == b.msgs_local && a.msgs_remote == b.msgs_remote &&
         a.msgs_coalesced == b.msgs_coalesced &&
         a.bytes_packed == b.bytes_packed &&
         a.bytes_local == b.bytes_local &&
         a.bytes_remote == b.bytes_remote &&
         a.final_blocks == b.final_blocks;
}

struct ScaleRow {
  std::int32_t ranks = 0;
  double off_ms = 0.0;
  double on_ms = 0.0;
  double off_steps_per_s = 0.0;
  double on_steps_per_s = 0.0;
  std::int64_t msgs_off = 0;       ///< MPI transfers, legacy path
  std::int64_t msgs_on = 0;        ///< MPI transfers, aggregated
  std::int64_t msgs_coalesced = 0;
  double coalesce_factor = 0.0;    ///< logical msgs per transfer
  bool bytes_conserved = false;
  bool deterministic = false;
};

ScaleRow bench_scale(std::int32_t ranks, std::int64_t steps,
                     std::int64_t blocks_per_rank, int trials) {
  const ModeResult off =
      run_sedov(ranks, steps, blocks_per_rank, false, "cpl50", trials);
  const ModeResult on =
      run_sedov(ranks, steps, blocks_per_rank, true, "cpl50", trials);
  const ModeResult on2 =
      run_sedov(ranks, steps, blocks_per_rank, true, "cpl50", 1);
  ScaleRow row;
  row.ranks = ranks;
  row.off_ms = off.best_ms;
  row.on_ms = on.best_ms;
  row.off_steps_per_s = static_cast<double>(steps) / (off.best_ms / 1000.0);
  row.on_steps_per_s = static_cast<double>(steps) / (on.best_ms / 1000.0);
  row.msgs_off = off.report.msgs_local + off.report.msgs_remote;
  row.msgs_on = on.report.msgs_local + on.report.msgs_remote;
  row.msgs_coalesced = on.report.msgs_coalesced;
  row.coalesce_factor =
      row.msgs_on > 0 ? static_cast<double>(row.msgs_on +
                                            on.report.msgs_coalesced) /
                            static_cast<double>(row.msgs_on)
                      : 0.0;
  // Aggregation repackages messages; it must move exactly the legacy
  // byte volume (the logical message count is conserved too).
  row.bytes_conserved =
      off.report.bytes_local + off.report.bytes_remote ==
          on.report.bytes_local + on.report.bytes_remote &&
      off.report.msgs_local + off.report.msgs_remote ==
          on.report.msgs_local + on.report.msgs_remote +
              on.report.msgs_coalesced;
  row.deterministic = reports_match(on.report, on2.report);
  return row;
}

/// Aggregated vs legacy plan-build cost on the shared fixture.
void build_microcost(std::int32_t ranks, double& legacy_us,
                     double& aggregate_us) {
  const StepWorkFixture f = make_step_work_fixture(ranks);
  const int reps = 20;
  for (const bool aggregate : {false, true}) {
    const double t0 = now_ms();
    for (int i = 0; i < reps; ++i) {
      const auto work = build_step_work(f.mesh, f.placement, f.costs,
                                        ranks, f.sizes, true, aggregate);
      if (work.empty()) std::abort();
    }
    (aggregate ? aggregate_us : legacy_us) =
        (now_ms() - t0) * 1000.0 / reps;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 10 : 20);
  const int trials =
      static_cast<int>(flags.get_int("trials", flags.quick() ? 1 : 2));
  const std::int64_t blocks_per_rank = flags.get_int("blocks-per-rank", 4);
  const std::string json = flags.json_path();
  flags.done();

  print_header("sedov steps/sec: message aggregation off vs on");
  const std::vector<std::int32_t> scales =
      flags.quick() ? std::vector<std::int32_t>{64}
                    : std::vector<std::int32_t>{512, 2048, 4096};
  std::vector<ScaleRow> rows;
  bool all_ok = true;
  for (const std::int32_t ranks : scales) {
    const ScaleRow row = bench_scale(ranks, steps, blocks_per_rank, trials);
    rows.push_back(row);
    all_ok = all_ok && row.bytes_conserved && row.deterministic;
    std::printf(
        "%5d ranks x %lld steps: off %8.1f ms (%6.2f steps/s)  "
        "on %8.1f ms (%6.2f steps/s)  speedup %.2fx\n",
        ranks, static_cast<long long>(steps), row.off_ms,
        row.off_steps_per_s, row.on_ms, row.on_steps_per_s,
        row.on_ms > 0 ? row.off_ms / row.on_ms : 0.0);
    std::printf(
        "        transfers %lld -> %lld (%.2fx packed)   "
        "bytes conserved: %s   deterministic: %s\n",
        static_cast<long long>(row.msgs_off),
        static_cast<long long>(row.msgs_on), row.coalesce_factor,
        row.bytes_conserved ? "yes" : "NO",
        row.deterministic ? "yes" : "NO");
  }

  print_header("placement ranking under aggregation (baseline vs cpl50)");
  const std::int32_t rank_scale = flags.quick() ? 64 : 512;
  bool rankings_preserved = true;
  double base_off = 0.0;
  double cplx_off = 0.0;
  double base_on = 0.0;
  double cplx_on = 0.0;
  {
    base_off = run_sedov(rank_scale, steps, blocks_per_rank, false,
                         "baseline", 1)
                   .report.wall_seconds;
    cplx_off =
        run_sedov(rank_scale, steps, blocks_per_rank, false, "cpl50", 1)
            .report.wall_seconds;
    base_on = run_sedov(rank_scale, steps, blocks_per_rank, true,
                        "baseline", 1)
                  .report.wall_seconds;
    cplx_on =
        run_sedov(rank_scale, steps, blocks_per_rank, true, "cpl50", 1)
            .report.wall_seconds;
    rankings_preserved = (cplx_off < base_off) == (cplx_on < base_on);
    std::printf("  off: baseline %.4f s, cpl50 %.4f s (%s wins)\n",
                base_off, cplx_off,
                cplx_off < base_off ? "cpl50" : "baseline");
    std::printf("  on:  baseline %.4f s, cpl50 %.4f s (%s wins)\n",
                base_on, cplx_on, cplx_on < base_on ? "cpl50" : "baseline");
    std::printf("  ranking preserved under aggregation: %s\n",
                rankings_preserved ? "yes" : "NO");
  }
  all_ok = all_ok && rankings_preserved;

  print_header("plan-build microcost: legacy vs aggregated");
  double legacy_us = 0.0;
  double aggregate_us = 0.0;
  build_microcost(flags.quick() ? 64 : 512, legacy_us, aggregate_us);
  std::printf("  legacy %10.1f us/step   aggregated %10.1f us/step\n",
              legacy_us, aggregate_us);

  print_header("packing-threshold sweep (bytes/msg vs simulated steps/s)");
  // Global --pack-threshold ladder spanning never-pack (0), the small
  // payloads (vertex 320, edge 2560), the face size (20480), and
  // pack-all; simulated wall time, so trials are irrelevant.
  const std::int32_t sweep_ranks = flags.quick() ? 64 : 512;
  const std::vector<std::int64_t> ladder = {0,    320,   2560,  5120,
                                            10240, 20480, 1 << 30};
  std::vector<double> ladder_sps;
  std::vector<double> ladder_packed_frac;
  for (const std::int64_t t : ladder) {
    const RunReport r =
        run_threshold(sweep_ranks, steps, blocks_per_rank, t);
    const std::int64_t logical =
        r.msgs_local + r.msgs_remote + r.msgs_coalesced;
    const double sps = r.wall_seconds > 0
                           ? static_cast<double>(steps) / r.wall_seconds
                           : 0.0;
    const double packed_frac =
        logical > 0 ? static_cast<double>(r.msgs_coalesced) /
                          static_cast<double>(logical)
                    : 0.0;
    ladder_sps.push_back(sps);
    ladder_packed_frac.push_back(packed_frac);
    std::printf(
        "  threshold %10lld B/msg: %7.1f steps/s  packed frac %.3f\n",
        static_cast<long long>(t), sps, packed_frac);
  }
  // The endpoints anchor the curve: threshold 0 must reproduce the
  // legacy message split and pack-all must reach --aggregate's.
  const bool endpoints_ok =
      ladder_packed_frac.front() == 0.0 && ladder_packed_frac.back() > 0.0;
  std::printf("  endpoints (never-pack flat, pack-all packed): %s\n",
              endpoints_ok ? "yes" : "NO");
  all_ok = all_ok && endpoints_ok;

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"comm_aggregate\",\"steps\":%lld,"
                   "\"trials\":%d,\"blocks_per_rank\":%lld,\"scales\":[",
                   static_cast<long long>(steps), trials,
                   static_cast<long long>(blocks_per_rank));
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow& r = rows[i];
        std::fprintf(
            f,
            "%s{\"ranks\":%d,\"off_ms\":%.1f,\"on_ms\":%.1f,"
            "\"off_steps_per_s\":%.2f,\"on_steps_per_s\":%.2f,"
            "\"speedup\":%.3f,\"msgs_off\":%lld,\"msgs_on\":%lld,"
            "\"msgs_coalesced\":%lld,\"coalesce_factor\":%.2f,"
            "\"bytes_conserved\":%s,\"deterministic\":%s}",
            i == 0 ? "" : ",", r.ranks, r.off_ms, r.on_ms,
            r.off_steps_per_s, r.on_steps_per_s,
            r.on_ms > 0 ? r.off_ms / r.on_ms : 0.0,
            static_cast<long long>(r.msgs_off),
            static_cast<long long>(r.msgs_on),
            static_cast<long long>(r.msgs_coalesced), r.coalesce_factor,
            r.bytes_conserved ? "true" : "false",
            r.deterministic ? "true" : "false");
      }
      std::fprintf(f,
                   "],\"ranking\":{\"ranks\":%d,\"baseline_off_s\":%.4f,"
                   "\"cpl50_off_s\":%.4f,\"baseline_on_s\":%.4f,"
                   "\"cpl50_on_s\":%.4f,\"preserved\":%s},"
                   "\"build_legacy_us\":%.1f,\"build_aggregate_us\":%.1f,"
                   "\"threshold_sweep\":{\"ranks\":%d,\"points\":[",
                   rank_scale, base_off, cplx_off, base_on, cplx_on,
                   rankings_preserved ? "true" : "false", legacy_us,
                   aggregate_us, sweep_ranks);
      for (std::size_t i = 0; i < ladder.size(); ++i)
        std::fprintf(f,
                     "%s{\"bytes_per_msg\":%lld,\"steps_per_s\":%.2f,"
                     "\"packed_frac\":%.4f}",
                     i == 0 ? "" : ",", static_cast<long long>(ladder[i]),
                     ladder_sps[i], ladder_packed_frac[i]);
      std::fprintf(f, "]}}\n");
      if (f != stdout) std::fclose(f);
    }
  }
  return all_ok ? 0 : 1;
}
