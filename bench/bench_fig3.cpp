// Fig 3 reproduction: rankwise boundary communication performance across
// the two software-stack optimizations.
//
// Three configurations, applied cumulatively as in the paper:
//   untuned   compute-first task order + small shm queue + ACK blocking
//   +reorder  sends prioritized in the task schedule
//   +queue    shm queue enlarged, drain queue enabled (fully tuned)
//
// Reports per-rank mean boundary comm time and cross-round variance: the
// reordering cuts wait noise and reveals the underlying per-rank trend;
// queue tuning then shrinks the residual variance.
//
// Flags: --ranks=N (default 128) --rounds=N --quick
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/exchange_bench.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 32 : 128));
  const auto rounds = static_cast<std::int32_t>(
      flags.get_int("rounds", flags.quick() ? 15 : 50));
  flags.done();

  AmrMesh mesh(grid_for_ranks(ranks));
  Rng mesh_rng(13);
  grow_to_block_count(mesh, mesh_rng, static_cast<std::size_t>(2 * ranks),
                      2);
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement placement =
      make_policy("baseline")->place(uniform, ranks);

  auto run = [&](TaskOrdering ordering, const FabricParams& fabric) {
    ExchangeRoundsConfig cfg;
    cfg.nranks = ranks;
    cfg.ranks_per_node = 16;
    cfg.rounds = rounds;
    cfg.ordering = ordering;
    cfg.fabric = fabric;
    cfg.outlier_cutoff = sec(10.0);
    // Mild compute preceding the exchange: without it, send order cannot
    // matter (nothing delays the sends).
    cfg.compute_cost = [](std::size_t block, std::int32_t round, Rng& rng) {
      (void)block;
      (void)round;
      return us(150.0) + static_cast<TimeNs>(rng.exponential(60e3));
    };
    return run_exchange_rounds(mesh, placement, cfg);
  };

  FabricParams untuned = FabricParams::untuned();
  untuned.ack_loss_prob = 0.01;
  const auto a = run(TaskOrdering::kComputeFirst, untuned);
  const auto b = run(TaskOrdering::kSendFirst, untuned);
  const auto c = run(TaskOrdering::kSendFirst, FabricParams::tuned());

  auto summarize = [](const ExchangeRoundsResult& r) {
    RunningStats mean_stats;
    RunningStats cv_stats;
    for (std::size_t i = 0; i < r.rank_comm_ms.size(); ++i) {
      mean_stats.add(r.rank_comm_ms[i]);
      cv_stats.add(r.rank_comm_cv[i]);
    }
    return std::make_pair(mean_stats, cv_stats);
  };

  print_header("Fig 3: rankwise boundary comm, cumulative optimizations");
  std::printf("%-28s %12s %14s %14s\n", "config", "mean comm ms",
              "across-rank sd", "mean round cv");
  print_rule();
  const struct {
    const char* name;
    const ExchangeRoundsResult& r;
  } rows[] = {{"untuned (compute-first)", a},
              {"+ send prioritization", b},
              {"+ queue tuning (tuned)", c}};
  for (const auto& row : rows) {
    const auto [mean_stats, cv_stats] = summarize(row.r);
    std::printf("%-28s %12.4f %14.4f %14.3f\n", row.name,
                mean_stats.mean(), mean_stats.stddev(), cv_stats.mean());
  }

  std::printf("\nper-rank mean comm time, first 16 ranks (ms):\n");
  std::printf("%-28s", "config");
  for (int r = 0; r < 16 && r < ranks; ++r) std::printf(" r%02d  ", r);
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-28s", row.name);
    for (int r = 0; r < 16 && r < ranks; ++r)
      std::printf("%6.3f", row.r.rank_comm_ms[static_cast<std::size_t>(r)]);
    std::printf("\n");
  }
  std::printf("\npaper shape: reordering reduces noise and reveals the "
              "per-rank trend; queue tuning shrinks residual variance.\n");
  return 0;
}
