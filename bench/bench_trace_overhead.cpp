// Host-side overhead of the tracing subsystem (ISSUE acceptance: <= 5%
// per-step overhead with tracing disabled).
//
// Runs the same Sedov configuration three ways and reports real
// wall-clock per simulated step:
//   off         trace_enabled = false (the null-Tracer* fast path)
//   on          full default categories into a 1M-event ring
//   on+export   as above, plus Chrome JSON + Table export afterwards
//
// Measured on the development container (Release/-O3, 64 ranks x 30
// steps, best of 5):
//   off         489.5 ms   16.3 ms/step
//   on          672.1 ms   22.4 ms/step  (+37% vs off; 742k events)
//   on+export  1243.4 ms   41.5 ms/step  (+154%; 136 MB JSON + tables,
//                                         all of it post-run)
// The acceptance constraint is on the *disabled* path: an instrumented
// build with tracing off, timed against the pre-trace seed on the same
// sedov_sim run (identical simulated result, 0.140 s), showed no
// slowdown — best-of-7 host times were 0.381 s (instrumented) vs
// 0.498 s (seed), i.e. within build-layout noise. The disabled path is
// one null-pointer test per would-be event.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "amr/placement/baseline.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/query.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/trace/trace_tables.hpp"
#include "amr/workloads/sedov.hpp"
#include "bench_util.hpp"

namespace {

using namespace amr;

// Defaults; --quick shrinks all three for the bench_smoke ctest label.
std::int32_t kRanks = 64;
std::int64_t kSteps = 30;
int kReps = 5;

SimulationConfig base_config() {
  SimulationConfig cfg = bench::base_sim_config(kRanks, kSteps);
  // Overhead is measured with the telemetry path active, as in a run
  // that actually consumes what tracing records.
  cfg.collect_telemetry = true;
  return cfg;
}

/// Best-of-kReps host milliseconds for one full run; `events` and
/// `exported_bytes` report the last repetition's trace volume.
double run_ms(bool traced, bool exported, std::uint64_t& events,
              std::size_t& exported_bytes) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    SimulationConfig cfg = base_config();
    cfg.trace_enabled = traced;
    cfg.trace.capacity = 1u << 20;
    SedovParams sp;
    sp.total_steps = cfg.steps;
    sp.max_level = 1;
    SedovWorkload sedov(sp);
    const BaselinePolicy policy;
    Simulation sim(cfg, sedov, policy);

    const auto t0 = std::chrono::steady_clock::now();
    sim.run();
    if (exported) {
      const std::string json = chrome_trace_json(*sim.tracer());
      const TraceTables tables = trace_to_tables(*sim.tracer());
      exported_bytes = json.size() + tables.spans.bytes_used() +
                       tables.instants.bytes_used() +
                       tables.counters.bytes_used();
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    events = traced ? sim.tracer()->recorded() : 0;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.quick()) {
    kRanks = 16;
    kSteps = 8;
    kReps = 1;
  }
  flags.done();
  std::printf("trace overhead: sedov, %d ranks, %lld steps, best of %d\n\n",
              kRanks, static_cast<long long>(kSteps), kReps);

  std::uint64_t events = 0;
  std::size_t exported_bytes = 0;
  const double off = run_ms(false, false, events, exported_bytes);
  std::printf("%-12s %8.2f ms  %6.2f ms/step\n", "off", off,
              off / static_cast<double>(kSteps));

  const double on = run_ms(true, false, events, exported_bytes);
  std::printf("%-12s %8.2f ms  %6.2f ms/step  %+5.1f%%  (%llu events)\n",
              "on", on, on / static_cast<double>(kSteps),
              100.0 * (on - off) / off,
              static_cast<unsigned long long>(events));

  const double exp = run_ms(true, true, events, exported_bytes);
  std::printf("%-12s %8.2f ms  %6.2f ms/step  %+5.1f%%  (%zu bytes out)\n",
              "on+export", exp, exp / static_cast<double>(kSteps),
              100.0 * (exp - off) / off, exported_bytes);
  return 0;
}
