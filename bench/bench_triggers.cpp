// Rebalance-trigger ablation (paper §II-B "Redistribution"; Meta-Balancer
// [60] in related work).
//
// "The frequency depends on the underlying physics — some problems
// require frequent adaptation, others are more stable." For a stable
// (cooling-flow) workload whose imbalance comes from a static hot clump,
// this bench compares trigger strategies on redistribution count,
// rebalance overhead, and end-to-end runtime: rebalancing only on mesh
// change leaves the initial uniform-cost placement in force forever;
// periodic and imbalance-threshold triggers pay migration to adopt the
// telemetry-informed placement.
//
// Flags: --ranks=N (default 128) --steps=N --quick
#include "bench_util.hpp"

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/cooling.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 64 : 128));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 25 : 60);
  flags.done();

  auto run = [&](const RebalanceTrigger& trigger) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    cfg.trigger = trigger;
    CoolingParams cp;
    cp.max_level = 1;
    CoolingWorkload cooling(cp);
    const auto policy = make_policy("cpl50");
    Simulation sim(cfg, cooling, *policy);
    return sim.run();
  };

  print_header("rebalance-trigger ablation (static cooling-flow clump)");
  std::printf("%-24s %8s %10s %10s %10s %10s\n", "trigger", "lb-calls",
              "moved", "rebal (s)", "sync (s)", "total (s)");
  print_rule();

  RebalanceTrigger on_change;  // default

  RebalanceTrigger periodic;
  periodic.kind = RebalanceTriggerKind::kPeriodic;
  periodic.period = 10;

  RebalanceTrigger sensitive;
  sensitive.kind = RebalanceTriggerKind::kImbalance;
  sensitive.imbalance_threshold = 1.15;

  RebalanceTrigger tolerant;
  tolerant.kind = RebalanceTriggerKind::kImbalance;
  tolerant.imbalance_threshold = 2.50;

  const struct {
    const char* name;
    const RebalanceTrigger& trigger;
  } rows[] = {
      {"on-mesh-change (default)", on_change},
      {"periodic/10", periodic},
      {"imbalance>1.15", sensitive},
      {"imbalance>2.50", tolerant},
  };
  for (const auto& row : rows) {
    const RunReport r = run(row.trigger);
    std::printf("%-24s %8lld %10lld %10.4f %10.4f %10.4f\n", row.name,
                static_cast<long long>(r.lb_invocations),
                static_cast<long long>(r.blocks_migrated),
                r.phases.rebalance, r.phases.sync, r.phases.total());
    std::fflush(stdout);
  }

  std::printf(
      "\nreading: the default trigger rebalances once (at the step-0 "
      "refinement) using uniform costs, so the telemetry-informed "
      "placement is never adopted and sync stays high. A threshold below "
      "the policy's achievable balance re-fires every step (migration "
      "churn for no sync gain); a threshold above the steady-state "
      "imbalance never fires at all. The periodic trigger lands the sync "
      "win at a fraction of the churn -- but the right setting is "
      "workload-specific tuning, as the paper's Lesson 2 warns.\n");
  return 0;
}
