// Fig 1 reproduction: telemetry challenges in AMR codes.
//
// (Top) Work (per-rank message volume) vs boundary communication time,
// per (round, rank) sample: the untuned stack (small shm queue, ACK-loss
// recovery blocking the NIC) shows poor correlation; the tuned stack
// restores it.
//
// (Bottom) MPI_Wait spike timeline: ACK-loss recovery inflates average
// collective/round time ~3x; the drain-queue mitigation removes the
// spikes without touching delivery.
//
// Flags: --ranks=N (default 128) --rounds=N (default 60) --quick
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/exchange_bench.hpp"
#include "amr/telemetry/detectors.hpp"

namespace {

using namespace amr;

std::vector<double> per_rank_bytes(const AmrMesh& mesh, const Placement& p,
                                   std::int32_t ranks) {
  const auto work =
      build_step_work(mesh, p, std::vector<TimeNs>(mesh.size(), 0), ranks);
  std::vector<double> bytes;
  bytes.reserve(work.size());
  for (const auto& w : work) {
    double b = static_cast<double>(w.local_copy_bytes);
    for (const auto& s : w.sends) b += static_cast<double>(s.bytes);
    bytes.push_back(b);
  }
  return bytes;
}

CorrelationReport scatter_correlation(
    const std::vector<double>& rank_bytes,
    const std::vector<std::vector<double>>& samples) {
  std::vector<double> work;
  std::vector<double> time;
  for (const auto& round : samples) {
    for (std::size_t r = 0; r < round.size(); ++r) {
      work.push_back(rank_bytes[r]);
      time.push_back(round[r]);
    }
  }
  return correlation_report(work, time);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks =
      static_cast<std::int32_t>(flags.get_int("ranks", flags.quick() ? 32 : 128));
  const auto rounds =
      static_cast<std::int32_t>(flags.get_int("rounds", flags.quick() ? 20 : 60));
  flags.done();

  AmrMesh mesh(grid_for_ranks(ranks));
  Rng mesh_rng(11);
  grow_to_block_count(mesh, mesh_rng, static_cast<std::size_t>(2 * ranks),
                      2);
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement placement =
      make_policy("baseline")->place(uniform, ranks);
  const auto rank_bytes = per_rank_bytes(mesh, placement, ranks);

  auto run = [&](const FabricParams& fabric) {
    ExchangeRoundsConfig cfg;
    cfg.nranks = ranks;
    cfg.ranks_per_node = 16;
    cfg.rounds = rounds;
    cfg.fabric = fabric;
    cfg.outlier_cutoff = sec(10.0);  // keep spikes: they ARE the story
    return run_exchange_rounds(mesh, placement, cfg);
  };

  print_header("Fig 1 (top): work vs communication-time correlation");
  FabricParams untuned = FabricParams::untuned();
  const auto before = run(untuned);
  const auto after = run(FabricParams::tuned());
  const CorrelationReport r_before =
      scatter_correlation(rank_bytes, before.round_rank_active_ms);
  const CorrelationReport r_after =
      scatter_correlation(rank_bytes, after.round_rank_active_ms);
  std::printf("%-22s %10s %26s\n", "config", "pearson-r",
              "comm-ms by work quartile");
  print_rule();
  std::printf("%-22s %10.3f    %6.3f %6.3f %6.3f %6.3f\n",
              "untuned (Fig 1a pre)", r_before.pearson,
              r_before.quartile_means[0], r_before.quartile_means[1],
              r_before.quartile_means[2], r_before.quartile_means[3]);
  std::printf("%-22s %10.3f    %6.3f %6.3f %6.3f %6.3f\n",
              "tuned   (Fig 1a post)", r_after.pearson,
              r_after.quartile_means[0], r_after.quartile_means[1],
              r_after.quartile_means[2], r_after.quartile_means[3]);
  std::printf("\npaper shape: tuning turns a noisy cloud into a clear "
              "work->time trend.\n");

  print_header("Fig 1 (bottom): MPI_Wait spikes and the drain queue");
  // Sparse losses: a fraction of rounds hit the recovery path, so the
  // pathology presents as spikes on a clean baseline (as in Fig 1b)
  // rather than as a uniform floor.
  FabricParams spiky = FabricParams::tuned();
  spiky.ack_loss_prob = 5e-4;
  spiky.drain_queue_enabled = false;
  const auto with_spikes = run(spiky);
  FabricParams drained = spiky;
  drained.drain_queue_enabled = true;
  const auto with_drain = run(drained);

  const SpikeReport spike_report =
      detect_spikes(with_spikes.round_latency_ms);
  const double mean_spiky = mean(with_spikes.round_latency_ms);
  const double mean_drained = mean(with_drain.round_latency_ms);
  std::printf("%-28s %12s %10s\n", "config", "avg round ms", "spikes");
  print_rule();
  std::printf("%-28s %12.3f %10zu\n", "ACK loss, blocking recovery",
              mean_spiky, spike_report.spike_indices.size());
  std::printf("%-28s %12.3f %10zu\n", "ACK loss, drain queue",
              mean_drained,
              detect_spikes(with_drain.round_latency_ms)
                  .spike_indices.size());
  std::printf("\ninflation removed by drain queue: %.2fx (paper: ~3x on "
              "average collective time)\n",
              mean_drained > 0 ? mean_spiky / mean_drained : 0.0);
  return 0;
}
