// §VI-B sidebar reproduction: workload sensitivity of placement gains.
//
// "While we also studied placement in other codes, such as a galaxy
// cooling setup in AthenaPK, results were directionally similar: codes
// with high compute variability benefit more from better placement, and
// vice-versa."
//
// Three workload regimes, same policies: the cooling-flow clump (high,
// persistent spatial variability), the default Sedov blast (moderate),
// and a near-uniform Sedov variant (low variability). Gains from CPLX
// should order accordingly.
//
// Flags: --ranks=N (default 128) --steps=N --quick
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 64 : 128));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 20 : 50);
  flags.done();

  auto run = [&](Workload& workload, const std::string& policy_name) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    // Measured-cost placements are adopted when imbalance warrants it —
    // the trigger a production deployment would pair with CPLX, and the
    // reason a flat workload never pays the locality cost.
    cfg.trigger.kind = RebalanceTriggerKind::kImbalance;
    cfg.trigger.imbalance_threshold = 1.2;
    const PolicyPtr policy = make_policy(policy_name);
    Simulation sim(cfg, workload, *policy);
    return sim.run();
  };

  print_header("workload sensitivity: placement gains vs variability");
  std::printf("%-22s %12s %10s %10s %10s %10s\n", "workload",
              "baseline (s)", "cpl0", "cpl50", "best-gain", "imb(base)");
  print_rule();

  struct Row {
    const char* name;
    double base;
    double cpl0;
    double cpl50;
    double imbalance;
  };
  std::vector<Row> rows;

  {
    CoolingParams cp;  // high, persistent variability
    cp.clump_boost = 8.0;
    CoolingWorkload a(cp);
    CoolingWorkload b(cp);
    CoolingWorkload c(cp);
    const RunReport base = run(a, "baseline");
    const RunReport local = run(c, "cpl0");
    const RunReport best = run(b, "cpl50");
    double imb = 0;
    {
      RunningStats s;
      for (const double v : base.rank_compute_seconds) s.add(v);
      imb = s.max() / s.mean();
    }
    rows.push_back({"cooling (high var)", base.wall_seconds,
                    local.wall_seconds, best.wall_seconds, imb});
  }
  {
    SedovParams sp;  // moderate variability (default)
    sp.total_steps = steps;
    SedovWorkload a(sp);
    SedovWorkload b(sp);
    SedovWorkload c(sp);
    const RunReport base = run(a, "baseline");
    const RunReport local = run(c, "cpl0");
    const RunReport best = run(b, "cpl50");
    RunningStats s;
    for (const double v : base.rank_compute_seconds) s.add(v);
    rows.push_back({"sedov (moderate var)", base.wall_seconds,
                    local.wall_seconds, best.wall_seconds,
                    s.max() / s.mean()});
  }
  {
    SedovParams sp;  // near-uniform costs
    sp.total_steps = steps;
    sp.front_boost = 0.2;
    sp.noise_sigma = 0.01;
    sp.hot_fraction = 0.0;
    sp.jitter_sigma = 0.01;
    SedovWorkload a(sp);
    SedovWorkload b(sp);
    SedovWorkload c(sp);
    const RunReport base = run(a, "baseline");
    const RunReport local = run(c, "cpl0");
    const RunReport best = run(b, "cpl50");
    RunningStats s;
    for (const double v : base.rank_compute_seconds) s.add(v);
    rows.push_back({"sedov-flat (low var)", base.wall_seconds,
                    local.wall_seconds, best.wall_seconds,
                    s.max() / s.mean()});
  }

  for (const Row& row : rows) {
    const double best = std::min(row.cpl0, row.cpl50);
    std::printf("%-22s %12.4f %10.4f %10.4f %9.1f%% %10.3f\n", row.name,
                row.base, row.cpl0, row.cpl50,
                100.0 * (row.base - best) / row.base, row.imbalance);
  }
  std::printf(
      "\npaper claim: gains order by compute variability -- the high-"
      "variability cooling clump benefits most, the flat workload has "
      "nothing for placement to balance, so any X > 0 only pays the "
      "locality cost -- the right operating point there is X = 0, and "
      "picking X per workload is exactly the paper's Lesson 5.\n");
  return 0;
}
