// Incremental step pipeline benchmark: what the versioned exchange-plan
// cache and delta SFC renumbering buy on the host wall-clock.
//
// Three sections:
//   1. sedov steps/sec at paper scales (512 and 2048 ranks), with the
//      incremental pipeline off (from-scratch plans every step) and on
//      (plan-cache hits between regrids, delta renumbering, flat
//      telemetry carry), plus the cache hit/miss split and a field-level
//      equality check of the two RunReports (the determinism contract;
//      ctest step_pipeline_determinism diffs full stdout separately);
//   2. plan-build microcosts: build_step_work from scratch vs a cache
//      hit patch on a frozen mesh+placement;
//   3. DES event-dispatch throughput (M events/s), tracking the engine
//      the pipeline executes on.
//
// Numbers land in the --json=FILE record (one JSON object per line,
// appended) so BENCH_step_pipeline.json tracks the trajectory across
// commits. Stdout includes wall-clock values and is NOT byte-stable.
//
// Flags: --steps=N (default 40) --trials=N (default 3) --quick
//        --json=FILE
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "step_work_fixture.hpp"

#include "amr/des/engine.hpp"
#include "amr/exec/plan_cache.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  double best_ms = 1e30;
  RunReport report;
  StepPipelineStats stats;
};

ModeResult run_sedov(std::int32_t ranks, std::int64_t steps,
                     bool incremental, int trials) {
  ModeResult r;
  for (int t = 0; t < trials; ++t) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    cfg.incremental_plans = incremental;
    SedovParams sp;
    sp.total_steps = steps;
    sp.max_level = 1;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy("cpl50");
    Simulation sim(cfg, sedov, *policy);
    const double t0 = now_ms();
    RunReport report = sim.run();
    const double ms = now_ms() - t0;
    if (ms < r.best_ms) {
      r.best_ms = ms;
      r.report = std::move(report);
      r.stats = sim.pipeline_stats();
    }
  }
  return r;
}

/// Simulated results the two modes must agree on (full stdout diffing is
/// ctest step_pipeline_determinism's job; this is the in-bench guard).
bool reports_match(const RunReport& a, const RunReport& b) {
  return a.wall_seconds == b.wall_seconds &&
         a.phases.compute == b.phases.compute &&
         a.phases.comm == b.phases.comm && a.phases.sync == b.phases.sync &&
         a.phases.rebalance == b.phases.rebalance &&
         a.lb_invocations == b.lb_invocations &&
         a.final_blocks == b.final_blocks &&
         a.msgs_local == b.msgs_local && a.msgs_remote == b.msgs_remote &&
         a.blocks_migrated == b.blocks_migrated;
}

struct ScaleRow {
  std::int32_t ranks = 0;
  double off_ms = 0.0;
  double on_ms = 0.0;
  double off_steps_per_s = 0.0;
  double on_steps_per_s = 0.0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_misses = 0;
  bool identical = false;
};

ScaleRow bench_scale(std::int32_t ranks, std::int64_t steps, int trials) {
  const ModeResult off = run_sedov(ranks, steps, false, trials);
  const ModeResult on = run_sedov(ranks, steps, true, trials);
  ScaleRow row;
  row.ranks = ranks;
  row.off_ms = off.best_ms;
  row.on_ms = on.best_ms;
  row.off_steps_per_s =
      static_cast<double>(steps) / (off.best_ms / 1000.0);
  row.on_steps_per_s = static_cast<double>(steps) / (on.best_ms / 1000.0);
  row.plan_hits = on.stats.plan_hits;
  row.plan_misses = on.stats.plan_misses;
  row.identical = reports_match(off.report, on.report);
  return row;
}

/// Microcost of one plan construction vs one cache-hit patch on a frozen
/// (mesh, placement): the per-step saving the cache delivers.
void plan_microcost(std::int32_t ranks, double& build_us, double& hit_us) {
  StepWorkFixture f = make_step_work_fixture(ranks);

  const int reps = 20;
  double t0 = now_ms();
  for (int i = 0; i < reps; ++i) {
    const auto work = build_step_work(f.mesh, f.placement, f.costs, ranks,
                                      f.sizes, true);
    if (work.empty()) std::abort();
  }
  build_us = (now_ms() - t0) * 1000.0 / reps;

  ExchangePlanCache cache;
  (void)cache.step_work(f.mesh, f.placement, 0, f.costs, ranks, f.sizes,
                        true);
  t0 = now_ms();
  for (int i = 0; i < reps; ++i) {
    f.costs[0] = us(100) + i;  // hits re-patch durations every step
    const auto work =
        cache.step_work(f.mesh, f.placement, 0, f.costs, ranks, f.sizes,
                        true);
    if (work.empty()) std::abort();
  }
  hit_us = (now_ms() - t0) * 1000.0 / reps;
}

/// bench_par_sweep's DES workload shape: pre-scheduled one-shot events
/// plus a self-rescheduling tick, drained in one run(). M events/s.
double des_throughput(std::size_t events) {
  Engine eng;
  eng.reserve(events + 4);
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < events; ++i)
    eng.call_at(static_cast<TimeNs>(1 + i * 7 % 1000000),
                [&sink, i](Engine&) { sink += i; });
  struct Tick : EventHandler {
    std::uint64_t* sink;
    TimeNs step = 500;
    void on_event(Engine& engine, std::uint64_t tag) override {
      *sink += tag;
      if (engine.now() + step < 1000000)
        engine.schedule_at(engine.now() + step, this, tag + 1);
    }
  } tick;
  tick.sink = &sink;
  eng.schedule_at(0, &tick, 0);
  const double t0 = now_ms();
  eng.run_until(2000000);
  const double ms = now_ms() - t0;
  const double n = static_cast<double>(eng.events_processed());
  return ms > 0.0 ? n / ms / 1e3 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 12 : 40);
  const int trials =
      static_cast<int>(flags.get_int("trials", flags.quick() ? 1 : 3));
  const std::string json = flags.json_path();
  flags.done();

  print_header("sedov steps/sec: incremental pipeline off vs on");
  std::vector<ScaleRow> rows;
  const std::vector<std::int32_t> scales =
      flags.quick() ? std::vector<std::int32_t>{64}
                    : std::vector<std::int32_t>{512, 2048};
  bool all_identical = true;
  for (const std::int32_t ranks : scales) {
    const ScaleRow row = bench_scale(ranks, steps, trials);
    rows.push_back(row);
    all_identical = all_identical && row.identical;
    std::printf(
        "%5d ranks x %lld steps: off %8.1f ms (%6.2f steps/s)  "
        "on %8.1f ms (%6.2f steps/s)  speedup %.2fx\n",
        ranks, static_cast<long long>(steps), row.off_ms,
        row.off_steps_per_s, row.on_ms, row.on_steps_per_s,
        row.off_ms > 0 ? row.off_ms / row.on_ms : 0.0);
    std::printf(
        "        plan cache: %lld hits / %lld misses   "
        "reports identical: %s\n",
        static_cast<long long>(row.plan_hits),
        static_cast<long long>(row.plan_misses),
        row.identical ? "yes" : "NO");
  }

  print_header("plan microcost: from-scratch build vs cache-hit patch");
  double build_us = 0.0;
  double hit_us = 0.0;
  plan_microcost(flags.quick() ? 64 : 512, build_us, hit_us);
  std::printf("  build %10.1f us/step   hit patch %10.1f us/step "
              "(%.1fx cheaper)\n",
              build_us, hit_us, hit_us > 0 ? build_us / hit_us : 0.0);

  print_header("DES event dispatch (monotone radix queue)");
  const std::size_t events = flags.quick() ? 100000 : 400000;
  const double warm = des_throughput(events);
  const double rate = des_throughput(events);
  std::printf("%zu events: %.2f M events/s (warmup %.2f)\n", events, rate,
              warm);

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"step_pipeline\",\"steps\":%lld,"
                   "\"trials\":%d,\"scales\":[",
                   static_cast<long long>(steps), trials);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow& r = rows[i];
        std::fprintf(
            f,
            "%s{\"ranks\":%d,\"off_ms\":%.1f,\"on_ms\":%.1f,"
            "\"off_steps_per_s\":%.2f,\"on_steps_per_s\":%.2f,"
            "\"speedup\":%.3f,\"plan_hits\":%lld,\"plan_misses\":%lld,"
            "\"identical\":%s}",
            i == 0 ? "" : ",", r.ranks, r.off_ms, r.on_ms,
            r.off_steps_per_s, r.on_steps_per_s,
            r.on_ms > 0 ? r.off_ms / r.on_ms : 0.0,
            static_cast<long long>(r.plan_hits),
            static_cast<long long>(r.plan_misses),
            r.identical ? "true" : "false");
      }
      std::fprintf(f,
                   "],\"plan_build_us\":%.1f,\"plan_hit_us\":%.1f,"
                   "\"des_mevents_per_s\":%.3f}\n",
                   build_us, hit_us, rate);
      if (f != stdout) std::fclose(f);
    }
  }
  return all_identical ? 0 : 1;
}
