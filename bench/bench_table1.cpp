// Table I reproduction: Sedov Blast Wave 3D problem configurations.
//
// Paper values (512-4096 ranks): total timesteps 30590-53459, LB-invoking
// timesteps 1213-9392, blocks growing from one per rank to ~2 per rank as
// the shock refines the mesh.
//
// The simulated runs use a scaled-down step count (--steps, default 100;
// the paper's 30K-53K steps carry no extra placement information — the
// front sweep and the block-growth trajectory are what matter). We report
// measured t_total, t_lb, n_initial, n_final next to the paper's rows.
//
// Flags: --steps=N --quick
#include "bench_util.hpp"

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

struct PaperRow {
  std::int64_t ranks;
  const char* mesh;
  std::int64_t t_total;
  std::int64_t t_lb;
  std::int64_t n_initial;
  std::int64_t n_final;
};

constexpr PaperRow kPaper[] = {
    {512, "128^3", 30590, 1213, 512, 2080},
    {1024, "128^2x256", 43088, 4576, 1024, 3824},
    {2048, "128x256^2", 43042, 4699, 2048, 4848},
    {4096, "256^3", 53459, 9392, 4096, 8968},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 40 : 100);
  flags.done();

  print_header("Table I: Sedov Blast Wave 3D problem configurations");
  std::printf("%6s %-10s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "ranks",
              "mesh", "t_tot", "t_lb", "n_init", "n_fin", "t_tot*",
              "t_lb*", "n_init*", "n_fin*");
  std::printf("%43s | %s\n", "paper", "measured (steps scaled)");
  print_rule();

  for (const PaperRow& row : kPaper) {
    const std::int64_t ranks = flags.quick() ? row.ranks / 8 : row.ranks;

    SimulationConfig cfg = base_sim_config(ranks, steps);

    SedovParams sp;
    sp.total_steps = steps;
    sp.max_level = 1;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy("baseline");
    Simulation sim(cfg, sedov, *policy);
    const RunReport r = sim.run();

    std::printf("%6lld %-10s | %8lld %8lld %8lld %8lld | %8lld %8lld "
                "%8zu %8zu\n",
                static_cast<long long>(row.ranks), row.mesh,
                static_cast<long long>(row.t_total),
                static_cast<long long>(row.t_lb),
                static_cast<long long>(row.n_initial),
                static_cast<long long>(row.n_final),
                static_cast<long long>(r.steps),
                static_cast<long long>(r.lb_invocations),
                r.initial_blocks, r.final_blocks);
    std::fflush(stdout);
  }

  std::printf(
      "\nShape checks: n_init = ranks (one block/rank), n_final grows to\n"
      "~2 blocks/rank through front refinement, and a minority of steps\n"
      "invoke load balancing; absolute step counts are scaled by --steps.\n");
  return 0;
}
