// scalebench reproduction (paper §VI-C, Fig 7b/7c): placement quality and
// computation overhead from 512 to 128K ranks.
//
// (b) Normalized makespan per policy for exponential / Gaussian /
//     power-law block costs at 1-2 blocks per rank: CPL100 (LPT) is best;
//     CPL0/CPL25 capture the bulk of the benefit with far more locality.
// (c) Placement computation wall-clock vs scale: ~10 ms up to 16K ranks,
//     ~100 ms at 128K; hierarchical chunking keeps CDP-based policies in
//     budget. Wall-clock values are nondeterministic, so the table only
//     prints under --timing; default output is byte-stable across --jobs.
//
// Every (distribution, ranks, policy) cell is an independent trial
// bundle with its own seed, so they fan out across the sweep pool and
// reassemble in submission order.
//
// Scales up to --des-max-ranks additionally run the REAL sharded DES —
// a full Sedov simulation per (ranks, policy) with --des-shards-style
// node sharding — instead of relying on placement-only math alone; the
// simulated wall-clock table is byte-stable (simulated time, not host
// time). The --json=FILE record labels every data point with the mode
// that produced it: "placement-only" (synthetic-cost analytic cells)
// or "full-des-sharded" (measured on the simulated cluster). Beyond
// --des-max-ranks only the placement-only cells exist, and the JSON
// says so.
//
// Flags: --max-ranks=N (default 131072) --trials=N (default 3)
//        --des-max-ranks=N (default 16384; 0 disables the DES section)
//        --des-steps=N (default 8) --des-shards=N (default 2)
//        --quick --jobs=N --timing --json=FILE
#include "bench_util.hpp"

#include <chrono>

#include "amr/common/stats.hpp"
#include "amr/par/sweep.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/workloads/sedov.hpp"
#include "amr/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const std::int64_t max_ranks =
      flags.get_int("max-ranks", flags.quick() ? 8192 : 131072);
  const auto trials = static_cast<std::int32_t>(
      flags.get_int("trials", flags.quick() ? 2 : 3));
  const std::int64_t des_max_ranks =
      flags.get_int("des-max-ranks", flags.quick() ? 2048 : 16384);
  const std::int64_t des_steps =
      flags.get_int("des-steps", flags.quick() ? 4 : 8);
  const auto des_shards = static_cast<std::int32_t>(
      flags.get_int("des-shards", 2));
  const int jobs = flags.jobs();
  const bool with_timing = flags.has("timing");
  const std::string json = flags.json_path();
  flags.done();

  std::vector<std::int64_t> scales;
  for (std::int64_t r = 512; r <= max_ranks; r *= 4) scales.push_back(r);
  if (scales.back() != max_ranks) scales.push_back(max_ranks);

  // "Variability bounds chosen to create meaningful balancing
  // opportunities while remaining within realistic AMR ranges" (§VI-C):
  // at 1-2 blocks per rank an unbounded tail pins the makespan to the
  // single hottest block and no policy can matter.
  SyntheticCostParams cost_params;
  cost_params.clamp_max_ratio = 3.0;
  const std::vector<std::string> policies{"baseline", "cpl0", "cpl25",
                                          "cpl50", "cpl75", "cpl100"};
  const std::vector<CostDistribution> dists{CostDistribution::kExponential,
                                            CostDistribution::kGaussian,
                                            CostDistribution::kPowerLaw};

  // Fig 7b: one task per (distribution, scale, policy) cell; each owns
  // its trial loop and derives its seeds from (ranks, trial, dist) alone
  // so the result is independent of scheduling. Cells also record their
  // numeric mean into a pre-sized slot so the JSON can label each point
  // with the mode that produced it.
  std::vector<double> quality_vals(dists.size() * scales.size() *
                                   policies.size());
  Sweep quality(jobs);
  std::size_t slot = 0;
  for (const auto dist : dists) {
    for (const std::int64_t ranks : scales) {
      for (const auto& name : policies) {
        std::string label = std::string(to_string(dist)) + "/" +
                            std::to_string(ranks) + "/" + name;
        double* val = &quality_vals[slot++];
        quality.add(std::move(label), [=, &cost_params] {
          RunningStats imbalance;
          for (std::int32_t t = 0; t < trials; ++t) {
            Rng rng(hash64(static_cast<std::uint64_t>(ranks) * 31 +
                           static_cast<std::uint64_t>(t) * 7 +
                           static_cast<std::uint64_t>(dist)));
            const std::size_t blocks =
                static_cast<std::size_t>(ranks) * 11 / 5;
            const auto costs =
                synthetic_costs(blocks, dist, rng, cost_params);
            const PolicyPtr policy = make_policy(name);
            const Placement p =
                policy->place(costs, static_cast<std::int32_t>(ranks));
            imbalance.add(
                load_metrics(costs, p, static_cast<std::int32_t>(ranks))
                    .imbalance);
          }
          *val = imbalance.mean();
          std::string cell;
          appendf(cell, " %8.3f", imbalance.mean());
          return cell;
        });
      }
    }
  }
  quality.run();

  print_header("Fig 7b (scalebench): normalized makespan by policy");
  std::printf("(makespan / mean-load; 1.0 = perfect balance; averaged "
              "over %d trials at ~2.2 blocks/rank)\n\n",
              trials);
  std::size_t cell = 0;
  for (const auto dist : dists) {
    std::printf("-- %s costs --\n", to_string(dist));
    std::printf("%8s |", "ranks");
    for (const auto& p : policies) std::printf(" %8s", p.c_str());
    std::printf("\n");
    print_rule();
    for (const std::int64_t ranks : scales) {
      std::printf("%8lld |", static_cast<long long>(ranks));
      for (std::size_t i = 0; i < policies.size(); ++i)
        std::printf("%s", quality.results()[cell++].output.c_str());
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Real-DES section: scales the sharded engine can execute end-to-end
  // run a full Sedov simulation per policy instead of placement-only
  // math. Values are SIMULATED wall seconds (deterministic, byte-stable
  // across --jobs); host timing stays in the JSON timing channel.
  std::vector<std::int64_t> des_scales;
  for (const std::int64_t ranks : scales)
    if (ranks <= des_max_ranks) des_scales.push_back(ranks);
  std::vector<double> des_vals(des_scales.size() * policies.size());
  if (!des_scales.empty()) {
    Sweep des(jobs);
    slot = 0;
    for (const std::int64_t ranks : des_scales) {
      for (const auto& name : policies) {
        std::string label =
            "des/" + std::to_string(ranks) + "/" + name;
        double* val = &des_vals[slot++];
        des.add(std::move(label), [=] {
          SimulationConfig cfg =
              base_sim_config(ranks, des_steps);
          cfg.des_shards = des_shards;
          SedovParams sp;
          sp.total_steps = des_steps;
          sp.max_level = 1;
          SedovWorkload sedov(sp);
          const PolicyPtr policy = make_policy(name);
          Simulation sim(cfg, sedov, *policy);
          *val = sim.run().wall_seconds;
          std::string cell;
          appendf(cell, " %8.3f", *val);
          return cell;
        });
      }
    }
    des.run();

    print_header("scalebench full-DES: simulated Sedov wall time (s)");
    std::printf("(sharded DES, %d shards/node-clamped, %lld steps; "
                "placement-only approximation retired up to %lld "
                "ranks)\n\n",
                des_shards, static_cast<long long>(des_steps),
                static_cast<long long>(des_max_ranks));
    std::printf("%8s |", "ranks");
    for (const auto& p : policies) std::printf(" %8s", p.c_str());
    std::printf("\n");
    print_rule();
    std::size_t des_cell = 0;
    for (const std::int64_t ranks : des_scales) {
      std::printf("%8lld |", static_cast<long long>(ranks));
      for (std::size_t i = 0; i < policies.size(); ++i)
        std::printf("%s", des.results()[des_cell++].output.c_str());
      std::printf("\n");
    }
    if (!json.empty()) des.write_json(json, "scalebench/full_des");
  }

  if (with_timing) {
    Sweep timing(jobs);
    for (const std::int64_t ranks : scales) {
      for (const auto& name : policies) {
        std::string label =
            "time/" + std::to_string(ranks) + "/" + name;
        timing.add(std::move(label), [=, &cost_params] {
          RunningStats wall_ms;
          for (std::int32_t t = 0; t < trials; ++t) {
            Rng rng(hash64(static_cast<std::uint64_t>(ranks) * 131 +
                           static_cast<std::uint64_t>(t)));
            const std::size_t blocks =
                static_cast<std::size_t>(ranks) * 11 / 5;
            const auto costs = synthetic_costs(
                blocks, CostDistribution::kExponential, rng, cost_params);
            const PolicyPtr policy = make_policy(name);
            const auto t0 = std::chrono::steady_clock::now();
            const Placement p =
                policy->place(costs, static_cast<std::int32_t>(ranks));
            const auto t1 = std::chrono::steady_clock::now();
            wall_ms.add(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
            (void)p;
          }
          std::string out;
          appendf(out, " %8.3f", wall_ms.mean());
          return out;
        });
      }
    }
    timing.run();

    print_header("Fig 7c (scalebench): placement computation time (ms)");
    std::printf("%8s |", "ranks");
    for (const auto& p : policies) std::printf(" %8s", p.c_str());
    std::printf("\n");
    print_rule();
    cell = 0;
    for (const std::int64_t ranks : scales) {
      std::printf("%8lld |", static_cast<long long>(ranks));
      for (std::size_t i = 0; i < policies.size(); ++i)
        std::printf("%s", timing.results()[cell++].output.c_str());
      std::printf("\n");
    }
    if (!json.empty()) timing.write_json(json, "scalebench/fig7c");
  } else {
    std::printf("(pass --timing for the Fig 7c placement wall-clock "
                "table; omitted by default so stdout is byte-stable "
                "across --jobs)\n");
  }

  std::printf("\npaper shapes: LPT lowest makespan everywhere; cpl25 "
              "captures most of the gain; placement compute stays ~10 ms "
              "to 16K ranks and ~100 ms at 128K (50 ms budget: chunk or "
              "zone beyond 64K).\n");
  if (!json.empty()) {
    quality.write_json(json, "scalebench/fig7b");
    // Mode record: every data point above, labelled with how it was
    // produced — "placement-only" analytic cells vs "full-des-sharded"
    // measured runs — so downstream readers of the JSON know which
    // scales are real DES executions and which are still approximated.
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"scalebench_modes\",\"des_max_ranks\":"
                   "%lld,\"des_shards\":%d,\"des_steps\":%lld,"
                   "\"points\":[",
                   static_cast<long long>(des_max_ranks), des_shards,
                   static_cast<long long>(des_steps));
      bool first = true;
      std::size_t at = 0;
      for (const auto dist : dists)
        for (const std::int64_t ranks : scales)
          for (const auto& name : policies) {
            std::fprintf(f,
                         "%s{\"mode\":\"placement-only\",\"dist\":"
                         "\"%s\",\"ranks\":%lld,\"policy\":\"%s\","
                         "\"imbalance\":%.4f}",
                         first ? "" : ",", to_string(dist),
                         static_cast<long long>(ranks), name.c_str(),
                         quality_vals[at++]);
            first = false;
          }
      at = 0;
      for (const std::int64_t ranks : des_scales)
        for (const auto& name : policies) {
          std::fprintf(f,
                       "%s{\"mode\":\"full-des-sharded\",\"ranks\":"
                       "%lld,\"policy\":\"%s\",\"sim_wall_s\":%.4f}",
                       first ? "" : ",", static_cast<long long>(ranks),
                       name.c_str(), des_vals[at++]);
          first = false;
        }
      std::fprintf(f, "]}\n");
      if (f != stdout) std::fclose(f);
    }
  }
  return 0;
}
