// Sharded-DES scaling benchmark: full Sedov steps/s vs cores, 2K-16K
// simulated ranks.
//
// For each rank scale the same end-to-end Sedov run (mesh adaptation,
// placement, BSP execution on the simulated cluster) executes once on
// the legacy sequential engine (--des-shards=0) and once per shard
// count in {1, 2, 4, 8}; shard counts clamp to the node count and the
// worker pool clamps to the host's cores, so `cores` records what
// actually ran concurrently. Every sharded run's simulated results must
// be field-identical to the shards=1 run (the determinism contract;
// ctest par_des_determinism diffs full stdout separately) — the bench
// exits nonzero on any mismatch. The sequential run is reported as its
// own mode: it draws per-fabric rather than per-node RNG jitter, so its
// simulated answer is legitimately different and is never diffed
// against the sharded series.
//
// Stdout includes host wall-clock values and is NOT byte-stable. The
// --json=FILE record (one object per invocation, appended) is what
// BENCH_par_des.json tracks across commits; every point carries its
// mode ("sequential" or "sharded"), shard count, and core count.
//
// Flags: --steps=N (default 12) --trials=N (default 3)
//        --max-ranks=N (default 16384) --quick --json=FILE
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Point {
  std::int32_t ranks = 0;
  std::int32_t shards = 0;  ///< 0 = sequential engine
  std::int32_t cores = 1;   ///< workers that actually ran concurrently
  double best_ms = 1e30;
  double steps_per_s = 0.0;
  RunReport report;
};

/// Best-of-`trials` full Sedov run at `ranks` with `shards` DES shards.
Point run_point(std::int32_t ranks, std::int32_t shards,
                std::int64_t steps, int trials) {
  Point p;
  p.ranks = ranks;
  p.shards = shards;
  const std::int32_t nodes = std::max(1, ranks / 16);
  p.cores = shards <= 0
                ? 1
                : std::min({shards, nodes, ThreadPool::hardware_jobs()});
  for (int t = 0; t < trials; ++t) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    cfg.des_shards = shards;
    SedovParams sp;
    sp.total_steps = steps;
    sp.max_level = 1;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy("cpl50");
    Simulation sim(cfg, sedov, *policy);
    const double t0 = now_ms();
    RunReport report = sim.run();
    const double ms = now_ms() - t0;
    if (ms < p.best_ms) {
      p.best_ms = ms;
      p.report = std::move(report);
    }
  }
  p.steps_per_s = static_cast<double>(steps) / (p.best_ms / 1000.0);
  return p;
}

/// Simulated results every sharded run must agree on regardless of
/// shard count (same fields bench_step_pipeline guards).
bool reports_match(const RunReport& a, const RunReport& b) {
  return a.wall_seconds == b.wall_seconds &&
         a.phases.compute == b.phases.compute &&
         a.phases.comm == b.phases.comm && a.phases.sync == b.phases.sync &&
         a.phases.rebalance == b.phases.rebalance &&
         a.lb_invocations == b.lb_invocations &&
         a.final_blocks == b.final_blocks &&
         a.msgs_local == b.msgs_local && a.msgs_remote == b.msgs_remote &&
         a.blocks_migrated == b.blocks_migrated;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t steps =
      flags.get_int("steps", flags.quick() ? 6 : 12);
  const int trials =
      static_cast<int>(flags.get_int("trials", flags.quick() ? 1 : 3));
  const std::int64_t max_ranks =
      flags.get_int("max-ranks", flags.quick() ? 256 : 16384);
  const std::string json = flags.json_path();
  flags.done();

  std::vector<std::int32_t> scales;
  for (std::int64_t r = flags.quick() ? 128 : 2048; r <= max_ranks; r *= 2)
    scales.push_back(static_cast<std::int32_t>(r));
  const std::vector<std::int32_t> shard_counts{0, 1, 2, 4, 8};
  const int hw = ThreadPool::hardware_jobs();

  print_header("sharded DES: full Sedov steps/s vs cores");
  std::printf("(best of %d trials x %lld steps; host has %d core%s — "
              "`cores` is what each point actually used)\n",
              trials, static_cast<long long>(steps), hw,
              hw == 1 ? "" : "s");

  std::vector<Point> points;
  bool all_identical = true;
  for (const std::int32_t ranks : scales) {
    std::printf("\n%6d ranks:\n", ranks);
    std::size_t base = points.size();  // shards=1 index for this scale
    for (const std::int32_t shards : shard_counts) {
      if (shards == 1) base = points.size();
      points.push_back(run_point(ranks, shards, steps, trials));
      const Point& p = points.back();
      std::string check = "     -";
      double speedup = 0.0;
      if (p.shards >= 1) {
        const bool same = reports_match(p.report, points[base].report);
        all_identical = all_identical && same;
        check = same ? "   yes" : "    NO";
        speedup = p.best_ms > 0 ? points[base].best_ms / p.best_ms : 0.0;
      }
      std::printf("  %s shards=%d cores=%d %9.1f ms  %7.2f steps/s"
                  "  speedup %5.2fx  identical:%s\n",
                  p.shards == 0 ? "sequential" : "   sharded", p.shards,
                  p.cores, p.best_ms, p.steps_per_s, speedup,
                  check.c_str());
    }
  }
  std::printf("\nsharded results identical across shard counts: %s\n",
              all_identical ? "yes" : "NO");

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"par_des\",\"steps\":%lld,\"trials\":%d,"
                   "\"hw_cores\":%d,\"identical\":%s,\"points\":[",
                   static_cast<long long>(steps), trials, hw,
                   all_identical ? "true" : "false");
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        std::fprintf(f,
                     "%s{\"ranks\":%d,\"mode\":\"%s\",\"shards\":%d,"
                     "\"cores\":%d,\"wall_ms\":%.1f,"
                     "\"steps_per_s\":%.2f}",
                     i == 0 ? "" : ",", p.ranks,
                     p.shards == 0 ? "sequential" : "sharded", p.shards,
                     p.cores, p.best_ms, p.steps_per_s);
      }
      std::fprintf(f, "]}\n");
      if (f != stdout) std::fclose(f);
    }
  }
  return all_identical ? 0 : 1;
}
