// §V-A ablation: what does the choice of space-filling curve cost?
//
// The paper notes that Z-order "approximately preserves spatial locality"
// and that "some locality is inevitably lost as dimensionality reduction
// is inherently lossy" — and that baseline placement already routes 64%
// of messages across nodes at 4096 ranks. This ablation measures how much
// of that loss is the curve's fault: identical meshes and contiguous
// placements under Z-order vs Hilbert ordering, comparing remote message
// share, SFC-neighbor adjacency, and indexing cost.
//
// Each (mesh, curve) row is an independent sweep task; the indexing
// wall-clock section is nondeterministic and only prints under --timing.
//
// Flags: --ranks=N (default 512) --quick --jobs=N --timing --json=FILE
#include "bench_util.hpp"

#include <chrono>

#include "amr/common/stats.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/mesh/hilbert.hpp"
#include "amr/mesh/morton.hpp"
#include "amr/par/sweep.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 128 : 512));
  const int jobs = flags.jobs();
  const bool with_timing = flags.has("timing");
  const std::string json = flags.json_path();
  flags.done();

  Sweep sweep(jobs);
  for (const char* mesh_kind : {"uniform", "refined"}) {
    for (const SfcKind kind : {SfcKind::kZOrder, SfcKind::kHilbert}) {
      sweep.add(std::string("sfc/") + mesh_kind + "/" + to_string(kind),
                [=] {
        const ClusterTopology topo(ranks, 16);
        AmrMesh mesh(grid_for_ranks(ranks), false, kind);
        if (std::string(mesh_kind) == "refined") {
          Rng rng(7);
          grow_to_block_count(
              mesh, rng, static_cast<std::size_t>(2 * ranks), 2);
        }
        const std::vector<double> uniform(mesh.size(), 1.0);
        const Placement p = make_policy("baseline")->place(uniform, ranks);
        const CommMetrics comm = comm_metrics(mesh, p, topo);

        // SFC adjacency: fraction of SFC-consecutive leaves that are
        // geometric neighbors (the locality the curve retains).
        const auto& lists = mesh.neighbor_lists();
        std::int64_t adjacent = 0;
        for (std::size_t i = 0; i + 1 < mesh.size(); ++i) {
          for (const Neighbor& nb : lists[i]) {
            if (nb.index == static_cast<std::int32_t>(i + 1)) {
              ++adjacent;
              break;
            }
          }
        }
        const double sfc_adjacency =
            static_cast<double>(adjacent) /
            static_cast<double>(mesh.size() - 1);
        const double memcpy_frac =
            static_cast<double>(comm.msgs_intra_rank) /
            static_cast<double>(comm.total_msgs());
        std::string row;
        appendf(row, "%-10s %-9s | %12.3f %12.3f %14.3f\n", mesh_kind,
                to_string(kind), comm.remote_fraction(), memcpy_frac,
                sfc_adjacency);
        return row;
      });
    }
  }
  sweep.run();

  print_header("SV-A ablation: Z-order vs Hilbert block ordering");
  std::printf("%-10s %-9s | %12s %12s %14s\n", "mesh", "curve",
              "remote-frac", "memcpy-frac", "sfc-adjacency");
  print_rule();
  sweep.print();

  if (with_timing) {
    // Indexing cost: Hilbert pays per-key bit iteration; Z-order is a
    // few bit-parallel ops.
    print_header("indexing cost (1M keys, 18-bit coordinates)");
    Rng rng(13);
    std::vector<std::array<std::uint32_t, 3>> coords(1u << 20);
    for (auto& c : coords)
      c = {static_cast<std::uint32_t>(rng.uniform_int(1u << 18)),
           static_cast<std::uint32_t>(rng.uniform_int(1u << 18)),
           static_cast<std::uint32_t>(rng.uniform_int(1u << 18))};
    volatile std::uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& c : coords)
      sink = sink ^ morton3_encode(c[0], c[1], c[2]);
    auto t1 = std::chrono::steady_clock::now();
    for (const auto& c : coords)
      sink = sink ^ hilbert3_encode(c[0], c[1], c[2], 18);
    auto t2 = std::chrono::steady_clock::now();
    const double morton_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double hilbert_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("morton  %8.2f ms   hilbert %8.2f ms   (%.1fx)\n",
                morton_ms, hilbert_ms, hilbert_ms / morton_ms);
  } else {
    std::printf("(pass --timing for the morton/hilbert indexing-cost "
                "section)\n");
  }

  std::printf(
      "\nTakeaway: Hilbert ordering keeps more SFC-consecutive pairs "
      "geometrically adjacent and trims the remote share slightly, at a "
      "higher indexing cost. Either way a large remote share is "
      "intrinsic to 1-D reduction -- the paper's observation that "
      "baseline placement is already majority-remote at scale holds for "
      "both curves.\n");
  if (!json.empty()) sweep.write_json(json, "sfc_ablation");
  return 0;
}
