// Adaptive-communication benchmark: the Fig-6-style three-way exhibit
// of aggregation x overlap x send priority on the Sedov workload with
// the CPLX policy.
//
// The all-or-nothing choices each leave time on the table: BSP +
// aggregation packs every pair but the receiver still waits for the
// full exchange; plain overlap unblocks dependent blocks early but pays
// the per-message launch cost for every small send. Adaptive packing
// (--comm-adaptive) decides per (src,dst) pair from the fabric model;
// under overlap the step runs two-stage with fused per-peer buffers
// (aggregates launch from stage-1 completions and pay no serial
// pack/unpack), and critical-path send priority runs the blocks
// feeding the predicted straggler first. Three sections:
//   1. steps/sec in SIMULATED time at paper scales for the five modes
//      {bsp, bsp+aggregate, overlap, overlap+adaptive,
//      overlap+adaptive+priority}, with coalescing counters and an
//      in-bench acceptance check at 2048 ranks: the adaptive overlap
//      modes must beat both the best packed-BSP run and plain overlap;
//   2. modeled-threshold parity: per scale, the modeled per-path
//      thresholds must reach >= 98% of the best hand-picked global
//      --pack-threshold setting (sweep over fixed bytes/msg points);
//   3. determinism: two identical adaptive runs produce identical
//      reports.
//
// The mesh runs denser than one block per rank (--blocks-per-rank,
// default 4), like bench_comm_aggregate: packing needs same-destination
// sends, which only exist when a rank holds several blocks.
//
// The headline metric is simulated steps/s (steps / report
// wall_seconds): host ms is printed for reference but the simulated
// schedule is what the modes change. Stdout includes host wall-clock
// values and is NOT byte-stable; the --json=FILE record (one object per
// line, appended) is the tracked artifact (BENCH_comm_adaptive.json).
//
// Flags: --steps=N (default 20) --quick --blocks-per-rank=N (default 4)
//        --ranks=N (single scale instead of the ladder) --json=FILE
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Mode {
  const char* name;
  ExecutionMode execution;
  bool aggregate;
  bool adaptive;
  bool priority;
};

constexpr Mode kModes[] = {
    {"bsp", ExecutionMode::kBsp, false, false, false},
    {"bsp+aggregate", ExecutionMode::kBsp, true, false, false},
    {"overlap", ExecutionMode::kOverlap, false, false, false},
    {"overlap+adaptive", ExecutionMode::kOverlap, false, true, false},
    {"overlap+adaptive+priority", ExecutionMode::kOverlap, false, true,
     true},
};

struct ModeResult {
  double host_ms = 0.0;
  RunReport report;
  double steps_per_s = 0.0;  ///< simulated: steps / wall_seconds
};

SimulationConfig mode_config(std::int32_t ranks, std::int64_t steps,
                             std::int64_t blocks_per_rank,
                             const Mode& mode,
                             std::int64_t pack_threshold) {
  SimulationConfig cfg = base_sim_config(ranks, steps);
  cfg.root_grid =
      grid_for_ranks(static_cast<std::int64_t>(ranks) * blocks_per_rank);
  cfg.execution = mode.execution;
  // Overlap has no flux path; keep BSP identical so the exhibit
  // compares schedules, not message sets.
  cfg.include_flux_correction = false;
  cfg.aggregate_messages = mode.aggregate;
  cfg.comm_adaptive = mode.adaptive;
  cfg.comm_pack_threshold = pack_threshold;
  cfg.send_priority = mode.priority;
  return cfg;
}

ModeResult run_mode(std::int32_t ranks, std::int64_t steps,
                    std::int64_t blocks_per_rank, const Mode& mode,
                    std::int64_t pack_threshold = -1) {
  SimulationConfig cfg =
      mode_config(ranks, steps, blocks_per_rank, mode, pack_threshold);
  SedovParams sp;
  sp.total_steps = steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const PolicyPtr policy = make_policy("cpl50");
  Simulation sim(cfg, sedov, *policy);
  ModeResult r;
  const double t0 = now_ms();
  r.report = sim.run();
  r.host_ms = now_ms() - t0;
  r.steps_per_s = r.report.wall_seconds > 0
                      ? static_cast<double>(steps) / r.report.wall_seconds
                      : 0.0;
  return r;
}

bool reports_match(const RunReport& a, const RunReport& b) {
  return a.wall_seconds == b.wall_seconds &&
         a.phases.compute == b.phases.compute &&
         a.phases.comm == b.phases.comm && a.phases.sync == b.phases.sync &&
         a.msgs_local == b.msgs_local && a.msgs_remote == b.msgs_remote &&
         a.msgs_coalesced == b.msgs_coalesced &&
         a.bytes_packed == b.bytes_packed &&
         a.final_blocks == b.final_blocks;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 10 : 20);
  const std::int64_t blocks_per_rank = flags.get_int("blocks-per-rank", 4);
  const std::int64_t only_ranks = flags.get_int("ranks", 0);
  const std::string json = flags.json_path();
  flags.done();

  const std::vector<std::int32_t> scales =
      only_ranks > 0
          ? std::vector<std::int32_t>{static_cast<std::int32_t>(only_ranks)}
          : flags.quick() ? std::vector<std::int32_t>{64}
                          : std::vector<std::int32_t>{512, 2048, 4096};
  constexpr std::size_t kNumModes = std::size(kModes);
  bool all_ok = true;

  print_header(
      "sedov simulated steps/s: aggregation x overlap x send priority");
  // results[scale][mode]
  std::vector<std::vector<ModeResult>> results;
  for (const std::int32_t ranks : scales) {
    std::vector<ModeResult> row;
    for (const Mode& mode : kModes)
      row.push_back(run_mode(ranks, steps, blocks_per_rank, mode));
    std::printf("%5d ranks x %lld steps:\n", ranks,
                static_cast<long long>(steps));
    for (std::size_t m = 0; m < kNumModes; ++m) {
      const ModeResult& r = row[m];
      const std::int64_t transfers =
          r.report.msgs_local + r.report.msgs_remote;
      std::printf(
          "  %-26s %8.4f s sim (%7.1f steps/s)  host %7.1f ms  "
          "transfers %7lld  coalesced %7lld\n",
          kModes[m].name, r.report.wall_seconds, r.steps_per_s, r.host_ms,
          static_cast<long long>(transfers),
          static_cast<long long>(r.report.msgs_coalesced));
    }
    // Acceptance check (2048 ranks, the paper's headline scale): the
    // adaptive overlap modes must beat both all-or-nothing baselines.
    if (ranks == 2048) {
      const double best_adaptive =
          std::max(row[3].steps_per_s, row[4].steps_per_s);
      const double best_fixed =
          std::max(row[1].steps_per_s, row[2].steps_per_s);
      const bool wins = best_adaptive > best_fixed;
      std::printf(
          "  => adaptive overlap %.1f steps/s vs best fixed mode %.1f: "
          "%s\n",
          best_adaptive, best_fixed, wins ? "WIN" : "LOSS");
      all_ok = all_ok && wins;
    }
    results.push_back(std::move(row));
  }

  print_header(
      "modeled thresholds vs hand-picked global --pack-threshold");
  // Global sweep points in mean bytes/message: never-pack, the small
  // payloads (vertex/edge/flux), between-edge-and-face, face, pack-all.
  const std::vector<std::int64_t> sweep = {0,    512,   2560,  5120,
                                           10240, 20480, 1 << 30};
  std::vector<double> parity_ratio;
  std::vector<std::vector<double>> sweep_sps(scales.size());
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const std::int32_t ranks = scales[s];
    double best_global = 0.0;
    std::int64_t best_threshold = -1;
    for (const std::int64_t t : sweep) {
      const ModeResult r =
          run_mode(ranks, steps, blocks_per_rank, kModes[3], t);
      sweep_sps[s].push_back(r.steps_per_s);
      std::printf("%5d ranks, global threshold %10lld B/msg: %7.1f "
                  "steps/s  (transfers %lld)\n",
                  ranks, static_cast<long long>(t), r.steps_per_s,
                  static_cast<long long>(r.report.msgs_local +
                                         r.report.msgs_remote));
      if (r.steps_per_s > best_global) {
        best_global = r.steps_per_s;
        best_threshold = t;
      }
    }
    const double modeled = results[s][3].steps_per_s;
    const double ratio = best_global > 0 ? modeled / best_global : 1.0;
    parity_ratio.push_back(ratio);
    const bool parity = ratio >= 0.98;
    std::printf(
        "%5d ranks: modeled %7.1f steps/s  best global %7.1f "
        "(threshold %lld B/msg)  ratio %.3f  %s\n",
        ranks, modeled, best_global,
        static_cast<long long>(best_threshold), ratio,
        parity ? "parity" : "BELOW PARITY");
    all_ok = all_ok && parity;
  }

  print_header("determinism: identical adaptive runs, identical reports");
  const std::int32_t det_ranks = scales.front();
  const ModeResult d1 =
      run_mode(det_ranks, steps, blocks_per_rank, kModes[4]);
  const ModeResult d2 =
      run_mode(det_ranks, steps, blocks_per_rank, kModes[4]);
  const bool deterministic = reports_match(d1.report, d2.report);
  std::printf("  %d ranks, overlap+adaptive+priority twice: %s\n",
              det_ranks, deterministic ? "identical" : "DIVERGED");
  all_ok = all_ok && deterministic;

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"comm_adaptive\",\"steps\":%lld,"
                   "\"blocks_per_rank\":%lld,\"scales\":[",
                   static_cast<long long>(steps),
                   static_cast<long long>(blocks_per_rank));
      for (std::size_t s = 0; s < scales.size(); ++s) {
        std::fprintf(f, "%s{\"ranks\":%d,\"modes\":[", s == 0 ? "" : ",",
                     scales[s]);
        for (std::size_t m = 0; m < kNumModes; ++m) {
          const ModeResult& r = results[s][m];
          std::fprintf(
              f,
              "%s{\"mode\":\"%s\",\"sim_wall_s\":%.6f,"
              "\"steps_per_s\":%.2f,\"host_ms\":%.1f,"
              "\"transfers\":%lld,\"msgs_coalesced\":%lld,"
              "\"bytes_packed\":%lld}",
              m == 0 ? "" : ",", kModes[m].name, r.report.wall_seconds,
              r.steps_per_s, r.host_ms,
              static_cast<long long>(r.report.msgs_local +
                                     r.report.msgs_remote),
              static_cast<long long>(r.report.msgs_coalesced),
              static_cast<long long>(r.report.bytes_packed));
        }
        std::fprintf(f, "],\"threshold_sweep\":[");
        for (std::size_t t = 0; t < sweep.size(); ++t)
          std::fprintf(f, "%s{\"bytes_per_msg\":%lld,\"steps_per_s\":%.2f}",
                       t == 0 ? "" : ",",
                       static_cast<long long>(sweep[t]),
                       sweep_sps[s][t]);
        std::fprintf(f, "],\"modeled_vs_best_global\":%.4f}",
                     parity_ratio[s]);
      }
      std::fprintf(f, "],\"deterministic\":%s,\"all_ok\":%s}\n",
                   deterministic ? "true" : "false",
                   all_ok ? "true" : "false");
      if (f != stdout) std::fclose(f);
    }
  }
  return all_ok ? 0 : 1;
}
