// Sweep-runtime benchmark: measures what amr::par buys (and costs).
//
// Three sections:
//   1. sweep scaling — a fixed batch of placement trials run serially
//      and through the pool, outputs diffed byte-for-byte (the
//      determinism contract, checked every run) and wall clocks
//      compared;
//   2. DES event-dispatch throughput — the monotone radix-queue engine
//      on the bench_micro workload shape (pre-scheduled events plus a
//      self-rescheduling tick), reported in M events/s;
//   3. LPT placement wall-clock at paper scales (the d-ary heap
//      kernel).
//
// All numbers land in the --json=FILE record (one JSON object per line,
// appended) so BENCH_par_sweep.json tracks the perf trajectory across
// commits. Stdout includes wall-clock values and is NOT byte-stable; use
// the table benches for golden-output comparisons.
//
// Flags: --tasks=N (default 48) --ranks=N (default 2048) --jobs=N
//        --quick --json=FILE
#include "bench_util.hpp"

#include <chrono>

#include "amr/des/engine.hpp"
#include "amr/par/sweep.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/cplx.hpp"
#include "amr/placement/lpt.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/workloads/synthetic.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One sweep task: synthesize costs, place with CPLX, report makespan.
/// Heavy enough (~ms) that pool overhead is honest, deterministic from
/// the derived seed alone.
std::string placement_trial(std::uint64_t seed, std::int32_t ranks) {
  Rng rng(seed);
  const std::size_t blocks = static_cast<std::size_t>(ranks) * 11 / 5;
  const auto costs =
      synthetic_costs(blocks, CostDistribution::kExponential, rng);
  const CplxPolicy cplx(25);
  const Placement p = cplx.place(costs, ranks);
  std::string out;
  appendf(out, "seed=%016llx imbalance=%.6f\n",
          static_cast<unsigned long long>(seed),
          load_metrics(costs, p, ranks).imbalance);
  return out;
}

struct SweepRun {
  std::string output;
  double wall_ms = 0.0;
};

SweepRun run_batch(int jobs, int tasks, std::int32_t ranks) {
  Sweep sweep(jobs);
  for (int i = 0; i < tasks; ++i) {
    const std::uint64_t seed =
        sweep_task_seed(12345, static_cast<std::uint64_t>(i));
    sweep.add("trial/" + std::to_string(i),
              [seed, ranks] { return placement_trial(seed, ranks); });
  }
  const double t0 = now_ms();
  sweep.run();
  SweepRun r;
  r.wall_ms = now_ms() - t0;
  for (const SweepResult& res : sweep.results()) r.output += res.output;
  return r;
}

/// bench_micro's DES workload shape, standalone: `events` pre-scheduled
/// one-shot events plus a tick that reschedules itself across the whole
/// horizon, drained in one run(). Returns M events/s.
double des_throughput(std::size_t events) {
  Engine eng;
  eng.reserve(events + 4);
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < events; ++i)
    eng.call_at(static_cast<TimeNs>(1 + i * 7 % 1000000),
                [&sink, i](Engine&) { sink += i; });
  struct Tick : EventHandler {
    std::uint64_t* sink;
    TimeNs step = 500;
    void on_event(Engine& engine, std::uint64_t tag) override {
      *sink += tag;
      if (engine.now() + step < 1000000)
        engine.schedule_at(engine.now() + step, this, tag + 1);
    }
  } tick;
  tick.sink = &sink;
  eng.schedule_at(0, &tick, 0);
  const double t0 = now_ms();
  eng.run_until(2000000);
  const double ms = now_ms() - t0;
  const double n = static_cast<double>(eng.events_processed());
  return ms > 0.0 ? n / ms / 1e3 : 0.0;
}

double lpt_wall_ms(std::size_t blocks, std::int32_t ranks) {
  Rng rng(99);
  const auto costs =
      synthetic_costs(blocks, CostDistribution::kExponential, rng);
  const LptPolicy lpt;
  // Warm once, then time the median-ish of 5.
  (void)lpt.place(costs, ranks);
  double best = 1e30;
  for (int i = 0; i < 5; ++i) {
    const double t0 = now_ms();
    const Placement p = lpt.place(costs, ranks);
    const double ms = now_ms() - t0;
    (void)p;
    best = std::min(best, ms);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto tasks = static_cast<int>(
      flags.get_int("tasks", flags.quick() ? 12 : 48));
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 512 : 2048));
  const int jobs = flags.jobs();
  const std::string json = flags.json_path();
  flags.done();

  print_header("sweep scaling: CPLX placement trials, serial vs pool");
  const int hw = ThreadPool::hardware_jobs();
  const SweepRun serial = run_batch(1, tasks, ranks);
  const SweepRun pooled = run_batch(jobs, tasks, ranks);
  const bool identical = serial.output == pooled.output;
  const double speedup =
      pooled.wall_ms > 0 ? serial.wall_ms / pooled.wall_ms : 0.0;
  // The pool can only beat serial when the host has cores to run it on;
  // CI containers frequently expose a single CPU, where oversubscribed
  // threads just add scheduling noise. The determinism contract still
  // holds there, so only the speedup expectation is skipped.
  const bool expect_speedup = hw > 1 && jobs > 1;
  const bool speedup_ok = !expect_speedup || speedup > 1.0;
  std::printf("%d tasks x %d ranks (host: %d hardware threads)\n", tasks,
              ranks, hw);
  std::printf("  jobs=1  %10.2f ms\n", serial.wall_ms);
  std::printf("  jobs=%-2d %10.2f ms   speedup %.2fx%s\n", jobs,
              pooled.wall_ms, speedup,
              expect_speedup ? "" : "  (single CPU: not expected)");
  std::printf("  outputs byte-identical: %s\n", identical ? "yes" : "NO");
  if (expect_speedup && !speedup_ok)
    std::printf("  WARNING: pool slower than serial on a %d-thread host\n",
                hw);

  print_header("DES event dispatch (monotone radix queue)");
  const std::size_t events = flags.quick() ? 100000 : 400000;
  const double warm = des_throughput(events);
  const double rate = des_throughput(events);
  std::printf("%zu events: %.2f M events/s (warmup %.2f)\n", events, rate,
              warm);

  print_header("LPT placement (4-ary top-update heap)");
  const double ms4k = lpt_wall_ms(4096 * 2, 4096);
  const double ms64k = flags.quick() ? 0.0 : lpt_wall_ms(65536 * 2, 65536);
  std::printf("  4096 ranks  %8.3f ms\n", ms4k);
  if (!flags.quick()) std::printf("  65536 ranks %8.3f ms\n", ms64k);

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\"bench\":\"par_sweep\",\"tasks\":%d,\"ranks\":%d,"
          "\"jobs\":%d,\"hw_concurrency\":%d,\"serial_ms\":%.3f,"
          "\"pooled_ms\":%.3f,\"speedup\":%.3f,\"speedup_expected\":%s,"
          "\"deterministic\":%s,"
          "\"des_mevents_per_s\":%.3f,\"lpt_4096_ms\":%.3f,"
          "\"lpt_65536_ms\":%.3f}\n",
          tasks, ranks, jobs, hw, serial.wall_ms, pooled.wall_ms, speedup,
          expect_speedup ? "true" : "false",
          identical ? "true" : "false", rate, ms4k, ms64k);
      if (f != stdout) std::fclose(f);
    }
  }
  return identical ? 0 : 1;
}
