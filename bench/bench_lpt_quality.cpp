// §V-B ablation: how close is LPT to optimal?
//
// The paper reports that a commercial ILP solver could not beat LPT in
// 200 s. We certify the same on tractable instances with an exact
// branch-and-bound (proven optima), and compare LPT against the
// theoretical 4/3 bound across distributions.
//
// Each distribution's trial loop is an independent sweep task (the
// branch-and-bound dominates), gathered in submission order so output
// is byte-identical at any --jobs.
//
// Flags: --trials=N (default 200) --quick --jobs=N --json=FILE
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/par/sweep.hpp"
#include "amr/placement/exact.hpp"
#include "amr/placement/lpt.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto trials = static_cast<std::int32_t>(
      flags.get_int("trials", flags.quick() ? 50 : 200));
  const int jobs = flags.jobs();
  const std::string json = flags.json_path();
  flags.done();

  const std::vector<CostDistribution> dists{CostDistribution::kExponential,
                                            CostDistribution::kGaussian,
                                            CostDistribution::kPowerLaw};

  Sweep sweep(jobs);
  for (const auto dist : dists) {
    sweep.add(std::string("lpt-vs-exact/") + to_string(dist), [=] {
      const LptPolicy lpt;
      RunningStats ratio;
      std::int32_t exact_strictly_better = 0;
      double worst_allowed = 0.0;
      for (std::int32_t t = 0; t < trials; ++t) {
        Rng rng(hash64(static_cast<std::uint64_t>(t) * 13 +
                       static_cast<std::uint64_t>(dist)));
        const std::size_t n = 8 + rng.uniform_int(10);  // tractable B&B
        const auto r = static_cast<std::int32_t>(2 + rng.uniform_int(4));
        const auto costs = synthetic_costs(n, dist, rng);

        const Placement p = lpt.place(costs, r);
        const double lpt_ms = load_metrics(costs, p, r).makespan;
        const ExactResult exact = exact_makespan(costs, r);
        if (!exact.proven_optimal) continue;
        const double this_ratio = lpt_ms / exact.makespan;
        ratio.add(this_ratio);
        if (lpt_ms > exact.makespan + 1e-9) ++exact_strictly_better;
        worst_allowed =
            std::max(worst_allowed,
                     4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(r)));
      }
      std::string row;
      appendf(row, "%-14s %8zu %10.4f %10.4f %9.1f%% %10s\n",
              to_string(dist), ratio.count(), ratio.mean(), ratio.max(),
              100.0 * exact_strictly_better /
                  std::max<double>(1.0,
                                   static_cast<double>(ratio.count())),
              ratio.max() <= worst_allowed + 1e-9 ? "holds" : "VIOLATED");
      return row;
    });
  }
  sweep.run();

  print_header("SV-B ablation: LPT vs exact makespan (branch-and-bound)");
  std::printf("%-14s %8s %10s %10s %10s %10s\n", "distribution", "trials",
              "mean-ratio", "max-ratio", "exact-wins", "bound-4/3");
  print_rule();
  sweep.print();

  std::printf(
      "\npaper claim: LPT is within 4/3 of optimal (Graham) and in\n"
      "practice indistinguishable from an ILP solver given 200 s.\n"
      "'exact-wins' = instances where the optimum strictly beat LPT;\n"
      "even there the margin (mean/max ratio) is a few percent.\n");
  if (!json.empty()) sweep.write_json(json, "lpt_quality");
  return 0;
}
