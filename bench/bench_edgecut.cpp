// §VIII ablation: do edge cuts predict communication overhead?
//
// The paper dismisses graph partitioners (parMETIS/Zoltan) for AMR
// placement: "All graph-based approaches model communication as edge
// cuts, which we find poorly correlated with runtime communication
// overhead." This bench reproduces that finding: across a spread of
// placements — SFC baseline, graph-cut partitioner, CPLX sweep, scattered
// — it reports each policy's weighted edge cut next to its *measured*
// communication time and end-to-end runtime from the simulator, plus the
// rank correlation between the two orderings.
//
// Flags: --ranks=N (default 128) --steps=N --quick
#include "bench_util.hpp"

#include <algorithm>

#include "amr/common/stats.hpp"
#include "amr/placement/baseline.hpp"
#include "amr/placement/graphcut.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

using namespace amr;

/// Fixed-placement "policy": replays a precomputed placement as long as
/// the block count matches (this bench freezes the mesh by running a
/// window without refinement triggers).
class FrozenPolicy final : public PlacementPolicy {
 public:
  FrozenPolicy(std::string name, Placement placement)
      : name_(std::move(name)), placement_(std::move(placement)) {}
  std::string name() const override { return name_; }
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override {
    if (costs.size() == placement_.size()) return placement_;
    // Initial placement happens before the replay workload rebuilds the
    // frozen mesh; any valid placement works for that throwaway step.
    return BaselinePolicy().place(costs, nranks);
  }

 private:
  std::string name_;
  Placement placement_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 64 : 128));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 15 : 40);
  flags.done();

  // A frozen mid-run Sedov mesh + measured-style costs.
  AmrMesh mesh(grid_for_ranks(ranks));
  SedovParams sp;
  sp.total_steps = 100;
  SedovWorkload sedov(sp);
  for (std::int64_t s = 0; s <= 50; s += 5) sedov.evolve(mesh, s);
  std::vector<double> costs(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    costs[b] = static_cast<double>(sedov.block_cost(mesh, b, 50));

  // Candidate placements.
  std::vector<std::pair<std::string, Placement>> candidates;
  for (const char* name :
       {"baseline", "cpl0", "cpl25", "cpl50", "cpl75", "cpl100"}) {
    candidates.emplace_back(name, make_policy(name)->place(costs, ranks));
  }
  const GraphCutPolicy graphcut(mesh);
  candidates.emplace_back("graphcut", graphcut.place(costs, ranks));
  Placement scattered(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    scattered[b] = static_cast<std::int32_t>(
        hash64(b * 2654435761u) % static_cast<std::uint64_t>(ranks));
  candidates.emplace_back("scattered", scattered);

  print_header("SVIII ablation: edge cut vs measured communication");
  std::printf("%-10s %14s | %10s %10s %10s | %12s\n", "policy",
              "edge-cut MB", "comm (s)", "sync (s)", "total (s)",
              "comm-untuned");
  print_rule();

  std::vector<double> cuts;
  std::vector<double> comms;
  std::vector<double> comms_untuned;
  std::vector<double> totals;
  for (const auto& [name, placement] : candidates) {
    // Measured behaviour: run the simulator with the frozen placement on
    // the same frozen mesh window (no refinement -> no re-placement).
    class FrozenWorkload final : public Workload {
     public:
      FrozenWorkload(SedovWorkload& inner, std::int64_t at_step)
          : inner_(inner), at_(at_step) {}
      std::string name() const override { return "frozen"; }
      bool evolve(AmrMesh&, std::int64_t) override { return false; }
      TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                        std::int64_t step) const override {
        return inner_.block_cost(mesh, block, at_ + step % 2);
      }

     private:
      SedovWorkload& inner_;
      std::int64_t at_;
    } frozen(sedov, 50);

    SimulationConfig cfg;
    cfg.nranks = ranks;
    cfg.ranks_per_node = 16;
    cfg.root_grid = mesh.root_grid();
    cfg.steps = steps;
    cfg.collect_telemetry = false;
    // Start from the frozen mesh: rebuild the same refinement pattern.
    // (Simulation owns its mesh; replay the evolution before step 0 by
    // wrapping in a workload that refines once.)
    class ReplayWorkload final : public Workload {
     public:
      ReplayWorkload(const AmrMesh& target, Workload& costs)
          : target_(target), costs_(costs) {}
      std::string name() const override { return "replay"; }
      bool evolve(AmrMesh& mesh, std::int64_t step) override {
        if (step != 0) return false;
        // Refine until the mesh matches the frozen target's leaves.
        while (mesh.size() < target_.size()) {
          std::vector<std::int32_t> tags;
          for (std::size_t b = 0; b < mesh.size(); ++b) {
            const BlockCoord& c = mesh.block(b);
            if (target_.find(c) < 0) {
              tags.push_back(static_cast<std::int32_t>(b));
            }
          }
          if (tags.empty()) break;
          mesh.refine(tags);
        }
        return true;
      }
      TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                        std::int64_t step) const override {
        return costs_.block_cost(mesh, block, step);
      }

     private:
      const AmrMesh& target_;
      Workload& costs_;
    } replay(mesh, frozen);

    const FrozenPolicy policy(name, placement);
    Simulation sim(cfg, replay, policy);
    const RunReport r = sim.run();

    // Same placement on the untuned stack: the regime in which the paper
    // observed cut and measured comm time diverging.
    SimulationConfig untuned_cfg = cfg;
    untuned_cfg.fabric = FabricParams::untuned();
    Simulation untuned_sim(untuned_cfg, replay, policy);
    const RunReport ru = untuned_sim.run();

    const double cut_mb =
        static_cast<double>(edge_cut_bytes(mesh, placement)) / 1e6;
    std::printf("%-10s %14.2f | %10.4f %10.4f %10.4f | %12.4f\n",
                name.c_str(), cut_mb, r.phases.comm, r.phases.sync,
                r.phases.total(), ru.phases.comm);
    cuts.push_back(cut_mb);
    comms.push_back(r.phases.comm);
    comms_untuned.push_back(ru.phases.comm);
    totals.push_back(r.phases.total());
    std::fflush(stdout);
  }

  std::printf("\ncorrelation(edge cut, comm time, tuned stack)   = %+.3f\n",
              pearson(cuts, comms));
  std::printf("correlation(edge cut, comm time, untuned stack) = %+.3f\n",
              pearson(cuts, comms_untuned));
  std::printf("correlation(edge cut, total runtime, tuned)     = %+.3f\n",
              pearson(cuts, totals));
  std::printf(
      "\npaper claim, operative form: minimizing edge cut optimizes the "
      "wrong thing. Aggregate comm time does track cut (in both stacks), "
      "but total runtime correlates weakly or negatively with cut "
      "because synchronization -- which cut ignores -- dominates; the "
      "cut winner (graphcut) and the runtime winner differ. Per-sample "
      "comm measurements additionally decorrelate on the untuned stack "
      "(bench_fig1), which is why the authors could not build cut-based "
      "cost models from raw telemetry.\n");
  return 0;
}
