// Shared helpers for the per-figure bench harnesses: tiny flag parser,
// scale lists, and the paper's rank->root-grid mapping (Table I: one
// 16^3-cell block per rank initially, so the root grid holds exactly
// `ranks` blocks).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/mesh/coords.hpp"

namespace amr::bench {

/// --flag=value parser; unrecognized flags abort with usage.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& name) const {
    return find(name) != nullptr || flag_set(name);
  }

  std::int64_t get_int(const std::string& name, std::int64_t def) const {
    const char* v = find(name);
    return v != nullptr ? std::atoll(v) : def;
  }

  double get_double(const std::string& name, double def) const {
    const char* v = find(name);
    return v != nullptr ? std::atof(v) : def;
  }

  /// True if --quick was passed: benches shrink scales/steps for smoke
  /// runs while preserving orderings.
  bool quick() const { return flag_set("quick"); }

 private:
  const char* find(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.c_str() + prefix.size();
    return nullptr;
  }
  bool flag_set(const std::string& name) const {
    const std::string flag = "--" + name;
    for (const auto& a : args_)
      if (a == flag) return true;
    return false;
  }
  std::vector<std::string> args_;
};

/// Paper Table I mesh sizes: 512 -> 128^3 cells = 8^3 root blocks of
/// 16^3 cells, 1024 -> 8x8x16, 2048 -> 8x16x16, 4096 -> 16^3;
/// other powers of two continue the doubling pattern.
inline RootGrid grid_for_ranks(std::int64_t ranks) {
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;
  int axis = 2;  // grow z first: 8x8x16 at 1024 like the paper
  for (std::int64_t r = ranks; r > 1; r /= 2) {
    (axis == 0 ? nx : axis == 1 ? ny : nz) *= 2;
    axis = (axis + 2) % 3;
  }
  return RootGrid{nx, ny, nz};
}

inline void print_header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

inline void print_rule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace amr::bench
