// Shared helpers for the per-figure bench harnesses and CLIs: strict
// flag parser, scale lists, the paper's rank->root-grid mapping
// (Table I: one 16^3-cell block per rank initially, so the root grid
// holds exactly `ranks` blocks), and printf-style string building for
// sweep tasks that buffer output instead of printing (amr/par/sweep).
#pragma once

#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/mesh/coords.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/sim/sim_driver.hpp"
#include "amr/sim/simulation.hpp"

namespace amr::bench {

/// --flag=value parser with self-registering help. Malformed values
/// abort with a usage message: a typo'd --trials=1O silently parsing as
/// 1 (the old std::atoll behaviour) corrupts a day of sweep data;
/// failing fast costs nothing.
///
/// Every getter registers its flag (name + default) as a side effect, so
/// after the main has read all its flags a single done() call can (a)
/// answer --help with the full flag list and defaults, and (b) reject
/// unrecognized --flags by listing the known ones — no per-binary usage
/// text to keep in sync. Arguments not starting with "--" are positional
/// and ignored by the validation.
class Flags {
 public:
  Flags(int argc, char** argv) {
    prog_ = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& name) const {
    note(name, "", true);
    return find(name) != nullptr || flag_set(name);
  }

  std::int64_t get_int(const std::string& name, std::int64_t def) const {
    note(name, std::to_string(def), false);
    const char* v = find(name);
    if (v == nullptr) return def;
    std::int64_t out = 0;
    const char* end = v + std::strlen(v);
    const auto [ptr, ec] = std::from_chars(v, end, out);
    if (ec != std::errc{} || ptr != end)
      die_invalid(name, v, "an integer");
    return out;
  }

  double get_double(const std::string& name, double def) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", def);
    note(name, buf, false);
    const char* v = find(name);
    if (v == nullptr) return def;
    // strtod rather than from_chars<double>: libstdc++'s FP from_chars
    // landed late; strtod with explicit end/errno checks is equivalent
    // and portable.
    errno = 0;
    char* end = nullptr;
    const double out = std::strtod(v, &end);
    if (errno != 0 || end == v || *end != '\0')
      die_invalid(name, v, "a number");
    return out;
  }

  std::string get_str(const std::string& name,
                      const std::string& def) const {
    note(name, def.empty() ? "\"\"" : def, false);
    const char* v = find(name);
    return v != nullptr ? std::string(v) : def;
  }

  /// True if --quick was passed: benches shrink scales/steps for smoke
  /// runs while preserving orderings.
  bool quick() const {
    note("quick", "", true);
    return flag_set("quick");
  }

  /// Sweep parallelism from --jobs=N. Default 1 (serial); 0 means "one
  /// worker per hardware thread". Output is byte-identical across jobs
  /// values (see amr/par/sweep.hpp).
  int jobs() const {
    const std::int64_t j = get_int("jobs", 1);
    if (j < 0) die_invalid("jobs", std::to_string(j).c_str(), ">= 0");
    if (j == 0) return ThreadPool::hardware_jobs();
    return static_cast<int>(j);
  }

  /// Machine-readable sweep record destination from --json=FILE
  /// (appended; "-" for stdout). Empty when absent.
  std::string json_path() const { return get_str("json", ""); }

  /// Arguments not starting with "--", in command-line order.
  std::vector<std::string> positionals() const {
    std::vector<std::string> out;
    for (const auto& a : args_)
      if (a.rfind("--", 0) != 0) out.push_back(a);
    return out;
  }

  /// Call once after all flags have been read. --help prints every
  /// registered flag with its default and exits 0; an unrecognized
  /// --flag aborts listing the known ones.
  void done() const {
    if (flag_set("help")) {
      std::printf("usage: %s [flags]\nflags:\n", prog_.c_str());
      for (const auto& r : registered_) {
        if (r.is_switch)
          std::printf("  --%s\n", r.name.c_str());
        else
          std::printf("  --%s=<value>  (default %s)\n", r.name.c_str(),
                      r.def.c_str());
      }
      std::exit(0);
    }
    for (const auto& a : args_) {
      if (a.rfind("--", 0) != 0) continue;  // positional argument
      const std::string name = a.substr(2, a.find('=') - 2);
      if (name == "help" || known(name)) continue;
      std::fprintf(stderr, "%s: unrecognized flag --%s; known flags:\n",
                   prog_.c_str(), name.c_str());
      for (const auto& r : registered_)
        std::fprintf(stderr, "  --%s\n", r.name.c_str());
      std::exit(2);
    }
  }

 private:
  struct Registered {
    std::string name;
    std::string def;  ///< rendered default (empty for switches)
    bool is_switch;
  };

  bool known(const std::string& name) const {
    for (const auto& r : registered_)
      if (r.name == name) return true;
    return false;
  }
  void note(const std::string& name, std::string def,
            bool is_switch) const {
    if (!known(name))
      registered_.push_back({name, std::move(def), is_switch});
  }
  const char* find(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.c_str() + prefix.size();
    return nullptr;
  }
  bool flag_set(const std::string& name) const {
    const std::string flag = "--" + name;
    for (const auto& a : args_)
      if (a == flag) return true;
    return false;
  }
  [[noreturn]] void die_invalid(const std::string& name, const char* value,
                                const char* expected) const {
    std::fprintf(stderr, "%s: invalid value for --%s: '%s' (expected %s)\n",
                 prog_.c_str(), name.c_str(), value, expected);
    std::exit(2);
  }
  std::string prog_;
  std::vector<std::string> args_;
  /// Flags seen by the getters, in first-read order (for done()).
  mutable std::vector<Registered> registered_;
};

// The paper's rank->root-grid mapping and the canonical run config now
// live in the shared driver (amr/sim/sim_driver.hpp) so the CLIs and
// the serve scheduler cannot drift from the benches; re-exported here
// to keep the ~20 bench mains unchanged.
using amr::base_sim_config;
using amr::grid_for_ranks;

/// printf into a growing string: sweep tasks build their report text
/// with this and return it instead of touching stdout.
inline void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n > 0) {
    const std::size_t at = out.size();
    out.resize(at + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + at, static_cast<std::size_t>(n) + 1, fmt,
                   args);
    out.resize(at + static_cast<std::size_t>(n));
  }
  va_end(args);
}

inline void print_header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

inline void print_rule() {
  std::printf("--------------------------------------------------------------\n");
}

/// appendf twins of print_header/print_rule for buffered task output.
inline void append_header(std::string& out, const char* title) {
  appendf(out,
          "\n==============================================================\n"
          "%s\n"
          "==============================================================\n",
          title);
}

inline void append_rule(std::string& out) {
  appendf(out,
          "--------------------------------------------------------------\n");
}

}  // namespace amr::bench
