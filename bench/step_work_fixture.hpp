// Shared plan-build fixture for the step-work benches.
//
// One mesh + placement + cost shape used by every bench that measures
// build_step_work and its variants (bench_step_pipeline's microcost
// section, bench_comm_aggregate's build-cost comparison), so plan-build
// numbers across benches are comparable and aggregation tuning has a
// single source of truth. The message-size constants themselves live in
// MessageSizeModel (amr/placement/metrics.hpp) — this header only wires
// the canonical mesh shape around them.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/mesh/mesh.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/policy.hpp"
#include "bench_util.hpp"

namespace amr::bench {

/// Frozen (mesh, placement, costs) for plan-construction measurements.
struct StepWorkFixture {
  AmrMesh mesh;
  Placement placement;
  std::vector<TimeNs> costs;
  MessageSizeModel sizes{};
};

/// The canonical plan-build workload: the Table I root grid for `ranks`
/// with a band of refined blocks (so refinement boundaries — flux
/// messages, mixed-level neighbors — are part of the plan like in a real
/// run), round-robin placement, and per-block costs with a small
/// deterministic spread.
inline StepWorkFixture make_step_work_fixture(std::int32_t ranks) {
  StepWorkFixture f{AmrMesh(grid_for_ranks(ranks)), {}, {}, {}};
  std::vector<std::int32_t> tags;
  for (std::size_t b = 0; b < f.mesh.size() / 8; ++b)
    tags.push_back(static_cast<std::int32_t>(b * 4));
  f.mesh.refine(tags);
  f.placement.resize(f.mesh.size());
  for (std::size_t b = 0; b < f.mesh.size(); ++b)
    f.placement[b] =
        static_cast<std::int32_t>(b % static_cast<std::size_t>(ranks));
  f.costs.resize(f.mesh.size());
  for (std::size_t b = 0; b < f.mesh.size(); ++b)
    f.costs[b] = us(100) + static_cast<TimeNs>(b % 37);
  return f;
}

}  // namespace amr::bench
