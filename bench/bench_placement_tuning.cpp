// Placement engine + auto-X tuning benchmark (the ISSUE's exhibit:
// BENCH_placement_tuning.json).
//
// Three sections:
//   1. per-regrid-epoch placement cost at scale: the full CplxPolicy
//      rebuild vs the incremental engine (chunk memo + parallel solves)
//      over a synthetic regrid sequence whose cost drift is localized —
//      the remap-carried-costs regime the delta path is built for. An
//      in-bench guard asserts the two placements stay byte-identical
//      (full stdout diffing is ctest placement_tuning_determinism's
//      job);
//   2. auto-X quality on Sedov: simulated step time under every fixed X
//      vs --auto-cplx, and the gap between auto and the best hand-picked
//      candidate (the paper hand-tunes X per scale; the tuner should
//      land within a few percent without being told);
//   3. the same sweep on the cooling-flow workload (higher sustained
//      variability — a different best X than Sedov's, which is the
//      point of tuning online).
//
// Numbers land in the --json=FILE record (one JSON object per line,
// appended) so BENCH_placement_tuning.json tracks the trajectory across
// commits. Stdout includes wall-clock values and is NOT byte-stable.
//
// Flags: --epochs=N (default 60) --steps=N (default 120) --trials=N
//        (default 3) --quick --json=FILE
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "amr/common/rng.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/engine.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"

namespace {

using namespace amr;
using namespace amr::bench;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Regrid-like cost sequence: most epochs drift a localized span (the
/// remap-carried regime), some insert/remove blocks, some carry the
/// vector unchanged.
std::vector<std::vector<double>> make_epoch_costs(std::size_t nblocks,
                                                  int epochs,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  std::vector<double> costs(nblocks);
  for (auto& c : costs) c = rng.exponential(1.0);
  out.push_back(costs);
  for (int e = 1; e < epochs; ++e) {
    const double kind = rng.uniform();
    if (kind < 0.15) {  // refine: insert a few blocks
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size()));
      costs.insert(costs.begin() + static_cast<std::ptrdiff_t>(at),
                   {rng.exponential(1.0), rng.exponential(1.0)});
    } else if (kind < 0.25 && costs.size() > 64) {  // coarsen
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size() - 8));
      costs.erase(costs.begin() + static_cast<std::ptrdiff_t>(at),
                  costs.begin() + static_cast<std::ptrdiff_t>(at + 8));
    } else if (kind < 0.85) {  // localized cost drift
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size()));
      const std::size_t span = std::min<std::size_t>(32, costs.size() - at);
      for (std::size_t i = at; i < at + span; ++i)
        costs[i] = rng.exponential(1.0);
    }  // else: unchanged (pure remap-carried epoch)
    out.push_back(costs);
  }
  return out;
}

struct ScaleRow {
  std::int32_t ranks = 0;
  std::size_t blocks = 0;
  double full_ms_per_epoch = 0.0;
  double delta_ms_per_epoch = 0.0;
  std::int64_t chunks_reused = 0;
  std::int64_t chunks_total = 0;
  bool identical = true;
};

ScaleRow bench_scale(std::int32_t ranks, int epochs, int trials) {
  const std::size_t nblocks = static_cast<std::size_t>(ranks) * 8;
  const auto seq = make_epoch_costs(nblocks, epochs, 101);
  const CplxPolicy full(50.0);
  ScaleRow row;
  row.ranks = ranks;
  row.blocks = nblocks;

  std::vector<Placement> reference(seq.size());
  double best_full = 1e30;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_ms();
    for (std::size_t e = 0; e < seq.size(); ++e)
      reference[e] = full.place(seq[e], ranks);
    best_full = std::min(best_full, now_ms() - t0);
  }
  row.full_ms_per_epoch = best_full / static_cast<double>(seq.size());

  ThreadPool pool(std::min(ThreadPool::hardware_jobs(), 8));
  double best_delta = 1e30;
  for (int t = 0; t < trials; ++t) {
    PlacementEngine engine;  // fresh memo per trial: first epoch is cold
    engine.set_parallel(&pool);
    const double t0 = now_ms();
    for (std::size_t e = 0; e < seq.size(); ++e) {
      const Placement p = engine.place_cplx(
          seq[e], ranks, full.x_percent(), full.chunk_ranks(),
          static_cast<std::uint64_t>(e) + 1);
      if (p != reference[e]) row.identical = false;
    }
    best_delta = std::min(best_delta, now_ms() - t0);
    row.chunks_reused = engine.stats().chunks_reused;
    row.chunks_total = engine.stats().chunks_total;
  }
  row.delta_ms_per_epoch = best_delta / static_cast<double>(seq.size());
  return row;
}

struct QualityRow {
  std::string workload;
  std::vector<double> fixed_s;  ///< simulated seconds per fixed X
  double auto_s = 0.0;
  double best_fixed_s = 0.0;
  double gap_pct = 0.0;  ///< (auto - best fixed) / best fixed, percent
};

constexpr const char* kFixedPolicies[] = {"cpl0", "cpl25", "cpl50",
                                          "cpl75", "cpl100"};

QualityRow bench_quality(const char* workload, std::int32_t ranks,
                         std::int64_t steps) {
  QualityRow row;
  row.workload = workload;
  auto run = [&](const char* policy, bool auto_cplx) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    cfg.auto_cplx = auto_cplx;
    cfg.placement_incremental = auto_cplx;
    // Redistribute on measured imbalance (identical for fixed and auto
    // runs): workloads whose mesh never regrids would otherwise place
    // exactly once, before any cost telemetry exists — nothing for a
    // fixed X to exploit or the tuner to learn from.
    cfg.trigger.kind = RebalanceTriggerKind::kImbalance;
    const PolicyPtr pol = make_policy(policy);
    if (std::strcmp(workload, "cooling") == 0) {
      CoolingParams cp;
      cp.clump_boost = 8.0;
      CoolingWorkload w(cp);
      Simulation sim(cfg, w, *pol);
      return sim.run().wall_seconds;
    }
    SedovParams sp;
    sp.total_steps = steps;
    sp.max_level = 1;
    SedovWorkload w(sp);
    Simulation sim(cfg, w, *pol);
    return sim.run().wall_seconds;
  };
  row.best_fixed_s = 1e30;
  for (const char* policy : kFixedPolicies) {
    const double s = run(policy, false);
    row.fixed_s.push_back(s);
    row.best_fixed_s = std::min(row.best_fixed_s, s);
  }
  row.auto_s = run("cpl50", true);
  row.gap_pct = (row.auto_s - row.best_fixed_s) / row.best_fixed_s * 100.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int epochs =
      static_cast<int>(flags.get_int("epochs", flags.quick() ? 12 : 60));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 12 : 120);
  const int trials =
      static_cast<int>(flags.get_int("trials", flags.quick() ? 1 : 3));
  const std::string json = flags.json_path();
  flags.done();

  print_header("placement ms/regrid-epoch: full rebuild vs delta engine");
  const std::vector<std::int32_t> scales =
      flags.quick() ? std::vector<std::int32_t>{256}
                    : std::vector<std::int32_t>{1024, 4096, 8192};
  std::vector<ScaleRow> rows;
  bool all_identical = true;
  for (const std::int32_t ranks : scales) {
    const ScaleRow row = bench_scale(ranks, epochs, trials);
    rows.push_back(row);
    all_identical = all_identical && row.identical;
    std::printf(
        "%5d ranks (%6zu blocks) x %d epochs: full %8.3f ms/epoch  "
        "delta %8.3f ms/epoch  speedup %.2fx\n",
        row.ranks, row.blocks, epochs, row.full_ms_per_epoch,
        row.delta_ms_per_epoch,
        row.delta_ms_per_epoch > 0
            ? row.full_ms_per_epoch / row.delta_ms_per_epoch
            : 0.0);
    std::printf("        chunk memo: %lld reused / %lld total   "
                "placements identical: %s\n",
                static_cast<long long>(row.chunks_reused),
                static_cast<long long>(row.chunks_total),
                row.identical ? "yes" : "NO");
  }

  print_header("auto-X quality: simulated step time vs hand-picked X");
  const auto ranks =
      static_cast<std::int32_t>(flags.quick() ? 64 : 128);
  std::vector<QualityRow> quality;
  for (const char* workload : {"sedov", "cooling"}) {
    const QualityRow row = bench_quality(workload, ranks, steps);
    quality.push_back(row);
    std::printf("%-8s fixed X:", workload);
    for (std::size_t i = 0; i < row.fixed_s.size(); ++i)
      std::printf("  %s %.3fs", kFixedPolicies[i], row.fixed_s[i]);
    std::printf("\n         auto-cplx %.3fs  best fixed %.3fs  "
                "gap %+.2f%%\n",
                row.auto_s, row.best_fixed_s, row.gap_pct);
  }

  if (!json.empty()) {
    std::FILE* f = json == "-" ? stdout : std::fopen(json.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"placement_tuning\",\"epochs\":%d,"
                   "\"steps\":%lld,\"trials\":%d,\"scales\":[",
                   epochs, static_cast<long long>(steps), trials);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow& r = rows[i];
        std::fprintf(
            f,
            "%s{\"ranks\":%d,\"blocks\":%zu,\"full_ms_per_epoch\":%.3f,"
            "\"delta_ms_per_epoch\":%.3f,\"speedup\":%.3f,"
            "\"chunks_reused\":%lld,\"chunks_total\":%lld,"
            "\"identical\":%s}",
            i == 0 ? "" : ",", r.ranks, r.blocks, r.full_ms_per_epoch,
            r.delta_ms_per_epoch,
            r.delta_ms_per_epoch > 0
                ? r.full_ms_per_epoch / r.delta_ms_per_epoch
                : 0.0,
            static_cast<long long>(r.chunks_reused),
            static_cast<long long>(r.chunks_total),
            r.identical ? "true" : "false");
      }
      std::fprintf(f, "],\"quality\":[");
      for (std::size_t i = 0; i < quality.size(); ++i) {
        const QualityRow& q = quality[i];
        std::fprintf(f, "%s{\"workload\":\"%s\",", i == 0 ? "" : ",",
                     q.workload.c_str());
        for (std::size_t j = 0; j < q.fixed_s.size(); ++j)
          std::fprintf(f, "\"%s_s\":%.4f,", kFixedPolicies[j],
                       q.fixed_s[j]);
        std::fprintf(f,
                     "\"auto_s\":%.4f,\"best_fixed_s\":%.4f,"
                     "\"auto_gap_pct\":%.2f}",
                     q.auto_s, q.best_fixed_s, q.gap_pct);
      }
      std::fprintf(f, "]}\n");
      if (f != stdout) std::fclose(f);
    }
  }
  return all_identical ? 0 : 1;
}
