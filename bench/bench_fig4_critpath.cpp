// Fig 4 / §IV-D reproduction: critical paths within synchronization
// windows.
//
// Validates the paper's principle — with one P2P round per window, at
// most two ranks are implicated in the critical path — and quantifies the
// two strategies it motivates:
//   (a) operation ordering: send-first shortens two-rank paths by
//       dispatching the releasing message early;
//   (b) the one-rank/two-rank split shifts with compute imbalance.
//
// Flags: --ranks=N (default 128) --steps=N --quick
#include "bench_util.hpp"

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/sedov.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 32 : 128));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 20 : 60);
  flags.done();

  auto run = [&](TaskOrdering ordering, double front_boost) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    cfg.ordering = ordering;
    SedovParams sp;
    sp.total_steps = steps;
    sp.front_boost = front_boost;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy("baseline");
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };

  print_header("Fig 4 / SIV-D: critical-path structure of sync windows");
  std::printf("%-34s %8s %8s %8s %12s %12s\n", "config", "windows",
              "1-rank", "2-rank", "stragglr-wait", "window-ms");
  print_rule();

  const struct {
    const char* name;
    TaskOrdering ordering;
    double boost;
  } configs[] = {
      {"balanced, compute-first", TaskOrdering::kComputeFirst, 0.5},
      {"balanced, send-first", TaskOrdering::kSendFirst, 0.5},
      {"imbalanced, compute-first", TaskOrdering::kComputeFirst, 5.0},
      {"imbalanced, send-first", TaskOrdering::kSendFirst, 5.0},
  };

  double wait_compute_first = 0.0;
  double wait_send_first = 0.0;
  for (const auto& c : configs) {
    const RunReport r = run(c.ordering, c.boost);
    const CriticalPathStats& cp = r.critical_path;
    std::printf("%-34s %8lld %8lld %8lld %10.3fms %10.3fms\n", c.name,
                static_cast<long long>(cp.windows),
                static_cast<long long>(cp.one_rank_paths),
                static_cast<long long>(cp.two_rank_paths),
                cp.straggler_wait_ms.mean(), cp.window_ms.mean());
    if (c.boost == 5.0 && c.ordering == TaskOrdering::kComputeFirst)
      wait_compute_first = cp.straggler_wait_ms.mean();
    if (c.boost == 5.0 && c.ordering == TaskOrdering::kSendFirst)
      wait_send_first = cp.straggler_wait_ms.mean();
    std::fflush(stdout);
  }

  std::printf("\nkey principle: every window classifies as a one- or "
              "two-rank path -- never more (Lamport happened-before over "
              "a single P2P round).\n");
  if (wait_compute_first > 0)
    std::printf("send prioritization cuts straggler MPI-wait on the "
                "critical path by %.1f%% in the imbalanced regime.\n",
                100.0 * (wait_compute_first - wait_send_first) /
                    wait_compute_first);
  return 0;
}
