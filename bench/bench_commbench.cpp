// commbench reproduction (paper §VI-C, Fig 7a): boundary-exchange round
// latency vs placement locality.
//
// Constructs octree meshes with realistic (spatially correlated random)
// refinement at 1-2 blocks per rank, derives the 26-neighbor P2P pattern
// with face/edge/vertex-scaled message sizes, and measures round latency
// under CPLX placements from X=0 to X=100. Results are averaged over
// several random meshes per policy; cold-start rounds and >10 ms outliers
// are discarded, as in the paper.
//
// Flags: --max-ranks=N (default 2048) --rounds=N (default 30)
//        --meshes=N (default 3) --quick
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/exchange_bench.hpp"
#include "amr/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const std::int64_t max_ranks =
      flags.get_int("max-ranks", flags.quick() ? 512 : 2048);
  const auto rounds = static_cast<std::int32_t>(
      flags.get_int("rounds", flags.quick() ? 10 : 30));
  const auto meshes = static_cast<std::int32_t>(
      flags.get_int("meshes", flags.quick() ? 2 : 3));
  flags.done();

  std::vector<std::int64_t> scales;
  for (std::int64_t r = 512; r <= max_ranks; r *= 2) scales.push_back(r);
  const std::vector<int> xs{0, 25, 50, 75, 100};

  print_header("Fig 7a (commbench): round latency vs locality (X)");
  std::printf("%8s |", "ranks");
  for (const int x : xs) std::printf("   cpl%-3d      ", x);
  std::printf("\n%8s |", "");
  for (std::size_t i = 0; i < xs.size(); ++i)
    std::printf("  ms     (sd)  ");
  std::printf("\n");
  print_rule();

  for (const std::int64_t ranks : scales) {
    std::printf("%8lld |", static_cast<long long>(ranks));
    for (const int x : xs) {
      RunningStats latency;
      std::int32_t discarded = 0;
      for (std::int32_t m = 0; m < meshes; ++m) {
        AmrMesh mesh(grid_for_ranks(ranks));
        Rng rng(hash64(static_cast<std::uint64_t>(ranks) * 1000 +
                       static_cast<std::uint64_t>(m)));
        grow_to_block_count(mesh, rng,
                            static_cast<std::size_t>(ranks * 3 / 2), 2);
        // Placement costs: commbench has no compute, but CPLX needs a
        // cost vector; use realistic synthetic costs so CDP/LPT have
        // something to balance (affects which blocks move).
        Rng cost_rng = rng.split(0xc0);
        const auto costs = synthetic_costs(
            mesh.size(), CostDistribution::kExponential, cost_rng);
        const PolicyPtr policy = make_policy("cpl" + std::to_string(x));
        const Placement placement =
            policy->place(costs, static_cast<std::int32_t>(ranks));

        ExchangeRoundsConfig cfg;
        cfg.nranks = static_cast<std::int32_t>(ranks);
        cfg.ranks_per_node = 16;
        cfg.rounds = rounds;
        cfg.seed = hash64(static_cast<std::uint64_t>(m) + 7);
        const auto result = run_exchange_rounds(mesh, placement, cfg);
        discarded += result.rounds_discarded;
        for (const double l : result.round_latency_ms) latency.add(l);
      }
      std::printf(" %6.3f (%5.3f)", latency.mean(), latency.stddev());
      (void)discarded;
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shapes: latency differences are modest (+-0.5 ms); at "
      "small scales locality (low X) wins, while at larger scales an "
      "intermediate X wins because strict locality clusters face-"
      "neighbor traffic into per-node hotspots.\n");
  return 0;
}
