// Fig 2 reproduction: profiling data from runs affected by CPU throttling.
//
// Injects thermal throttling (4x compute inflation) on a subset of nodes:
// per-rank compute inflates in clusters of 16 (one node), synchronization
// swallows the majority of runtime, and pruning the affected nodes
// recovers a multiple of end-to-end runtime (paper: 10h -> 2.5h).
//
// Flags: --ranks=N (default 256) --steps=N --bad-nodes=N --quick
#include "bench_util.hpp"

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/detectors.hpp"
#include "amr/workloads/sedov.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 64 : 256));
  const std::int64_t steps = flags.get_int("steps", flags.quick() ? 20 : 50);
  const auto bad_nodes = static_cast<std::int32_t>(
      flags.get_int("bad-nodes", std::max(1, ranks / 16 / 8)));
  flags.done();

  auto run = [&](bool throttled, std::vector<double>* rank_compute) {
    SimulationConfig cfg = base_sim_config(ranks, steps);
    if (throttled) {
      Rng rng(99);
      cfg.faults.add_throttle(
          {.nodes = pick_victim_nodes(ranks / 16, bad_nodes, rng),
           .factor = 4.0});
    }
    SedovParams sp;
    sp.total_steps = steps;
    SedovWorkload sedov(sp);
    const PolicyPtr policy = make_policy("baseline");
    Simulation sim(cfg, sedov, *policy);
    const RunReport r = sim.run();
    if (rank_compute != nullptr) *rank_compute = r.rank_compute_seconds;
    return r;
  };

  print_header("Fig 2: CPU throttling profile and the effect of pruning");
  std::vector<double> rank_compute;
  const RunReport bad = run(true, &rank_compute);
  const RunReport pruned = run(false, nullptr);

  auto share = [](const RunReport& r, double phase) {
    return 100.0 * phase / r.phases.total();
  };
  std::printf("%-26s %10s %9s %9s %9s\n", "config", "wall (s)", "comp%",
              "sync%", "comm%");
  print_rule();
  std::printf("%-26s %10.3f %8.1f%% %8.1f%% %8.1f%%\n",
              "throttled nodes present", bad.wall_seconds,
              share(bad, bad.phases.compute), share(bad, bad.phases.sync),
              share(bad, bad.phases.comm));
  std::printf("%-26s %10.3f %8.1f%% %8.1f%% %8.1f%%\n",
              "pruned (healthy only)", pruned.wall_seconds,
              share(pruned, pruned.phases.compute),
              share(pruned, pruned.phases.sync),
              share(pruned, pruned.phases.comm));
  std::printf("\nruntime recovered by pruning: %.2fx (paper: ~3-4x)\n",
              bad.wall_seconds / pruned.wall_seconds);

  // The diagnostic signature: per-rank compute, clustered by node.
  const ClusterTopology topo(ranks, 16);
  const ThrottleReport detect = detect_throttling(rank_compute, topo);
  std::printf("\nper-rank compute scan: %zu ranks flagged (inflation "
              "%.1fx), flagged nodes:",
              detect.flagged_ranks.size(), detect.flagged_mean_inflation);
  for (const auto n : detect.flagged_nodes) std::printf(" %d", n);
  std::printf("\nflagged ranks appear in clusters of 16 (whole nodes) -- "
              "the hardware, not the physics.\n");

  // Compact per-node compute profile (the Fig 2 bar chart).
  std::printf("\nper-node mean compute seconds:\n");
  for (std::int32_t node = 0; node < topo.num_nodes(); ++node) {
    double sum = 0.0;
    for (const auto r : topo.ranks_on_node(node))
      sum += rank_compute[static_cast<std::size_t>(r)];
    const double nodemean =
        sum / static_cast<double>(topo.ranks_on_node(node).size());
    std::printf("  node %3d %8.3f ", node, nodemean);
    const int bar = static_cast<int>(nodemean * 200 /
                                     std::max(1e-9, bad.wall_seconds));
    for (int i = 0; i < bar && i < 60; ++i) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
