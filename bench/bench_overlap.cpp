// §IV-D ablation: overlapping computation to hide wait stalls — and the
// locality tension it creates.
//
// "While multiple blocks on the same rank can provide independent work,
// this creates a counterintuitive tension: a strict locality-preserving
// placement may be detrimental, as all blocks on a rank could end up
// waiting for the same remote straggler, limiting opportunities for
// independent work."
//
// Setup: a two-stage step (stage-1 compute -> send fresh ghosts ->
// stage-2 compute gated on arrivals) on a frozen refined mesh with ~4
// blocks per rank and one straggler rank whose stage-1 kernels run 4x
// slow. Grid: {BSP, overlap} x {cpl0 (locality), cpl100 (scattered)}.
// Overlap helps when a rank's blocks depend on *different* remote ranks;
// under strict locality, neighbors of the straggler have all their
// blocks gated on it.
//
// Flags: --ranks=N (default 64) --rounds=N --quick
#include "bench_util.hpp"

#include "amr/common/stats.hpp"
#include "amr/exec/overlap.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"
#include "amr/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace amr;
  using namespace amr::bench;
  const Flags flags(argc, argv);
  const auto ranks = static_cast<std::int32_t>(
      flags.get_int("ranks", flags.quick() ? 32 : 64));
  const auto rounds = static_cast<std::int32_t>(
      flags.get_int("rounds", flags.quick() ? 10 : 30));
  flags.done();

  // Mesh with ~4 blocks per rank.
  AmrMesh mesh(grid_for_ranks(ranks));
  Rng mesh_rng(3);
  grow_to_block_count(mesh, mesh_rng,
                      static_cast<std::size_t>(4 * ranks), 2);

  // Straggler: one rank's blocks are 4x slower in stage 1 (a fail-slow
  // node or a hot kernel region).
  const std::int32_t straggler = ranks / 2;

  auto run = [&](const std::string& policy_name, bool use_overlap) {
    Rng cost_rng(11);
    SyntheticCostParams cp;
    cp.clamp_max_ratio = 2.0;
    const auto base = synthetic_costs(mesh.size(),
                                      CostDistribution::kGaussian,
                                      cost_rng, cp);
    std::vector<double> place_costs = base;
    const PolicyPtr policy = make_policy(policy_name);
    const Placement placement = policy->place(place_costs, ranks);

    std::vector<TimeNs> costs(mesh.size());
    for (std::size_t b = 0; b < mesh.size(); ++b) {
      const double slow = placement[b] == straggler ? 4.0 : 1.0;
      costs[b] = static_cast<TimeNs>(base[b] * slow * 150e3);
    }

    const ClusterTopology topo(ranks, 16);
    Engine engine;
    FabricParams fp = FabricParams::tuned();
    fp.remote_jitter = 0;
    Fabric fabric(topo, fp, Rng(1));
    Comm comm(engine, fabric, ranks);

    RunningStats wall_ms;
    RunningStats idle_ms;
    if (use_overlap) {
      OverlapExecutor executor(engine, comm);
      const auto work =
          build_two_stage_work(mesh, placement, costs, ranks, 0.5);
      for (std::int32_t round = 0; round < rounds; ++round) {
        const StepResult r =
            executor.execute(work, static_cast<std::uint64_t>(round));
        wall_ms.add(to_ms(r.wall_ns()));
        RunningStats idle;
        for (const auto& s : r.ranks) idle.add(to_ms(s.recv_wait_ns));
        idle_ms.add(idle.mean());
      }
    } else {
      StepExecutor executor(engine, comm);
      const auto work =
          two_stage_bsp_work(mesh, placement, costs, ranks, 0.5);
      for (std::int32_t round = 0; round < rounds; ++round) {
        const StepResult r = executor.execute(
            work, TaskOrdering::kComputeFirst,
            static_cast<std::uint64_t>(round));
        wall_ms.add(to_ms(r.wall_ns()));
        RunningStats idle;
        for (const auto& s : r.ranks) idle.add(to_ms(s.recv_wait_ns));
        idle_ms.add(idle.mean());
      }
    }
    return std::make_pair(wall_ms.mean(), idle_ms.mean());
  };

  print_header("SIV-D ablation: overlap execution x placement locality");
  std::printf("%-10s %-9s %12s %14s\n", "placement", "executor",
              "step ms", "mean idle ms");
  print_rule();
  double bsp_local = 0;
  double ovl_local = 0;
  double bsp_scattered = 0;
  double ovl_scattered = 0;
  for (const char* policy : {"cpl0", "cpl100"}) {
    for (const bool overlap : {false, true}) {
      const auto [wall, idle] = run(policy, overlap);
      std::printf("%-10s %-9s %12.3f %14.4f\n", policy,
                  overlap ? "overlap" : "bsp", wall, idle);
      if (std::string(policy) == "cpl0")
        (overlap ? ovl_local : bsp_local) = wall;
      else
        (overlap ? ovl_scattered : bsp_scattered) = wall;
      std::fflush(stdout);
    }
  }

  const double gain_local = 100.0 * (bsp_local - ovl_local) / bsp_local;
  const double gain_scattered =
      100.0 * (bsp_scattered - ovl_scattered) / bsp_scattered;
  std::printf("\noverlap gain: %.1f%% under locality-preserving cpl0, "
              "%.1f%% under scattered cpl100\n",
              gain_local, gain_scattered);
  std::printf(
      "\npaper tension reproduced when the scattered placement gains "
      "more: strict locality leaves the straggler's neighbors with no "
      "independent work (all their blocks wait on the same slow rank), "
      "while diverse neighbor sets let overlap hide the stall.\n");
  return 0;
}
