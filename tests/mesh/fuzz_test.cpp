// Randomized operation-sequence fuzzing of the mesh invariants: any
// sequence of refine/coarsen calls must preserve 2:1 balance, exact
// domain coverage, neighbor symmetry, and SFC determinism. Parameterized
// over seeds and curve kinds so regressions in rare interleavings
// surface in CI.
#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  SfcKind sfc;
  bool periodic;
};

std::string fuzz_name(const testing::TestParamInfo<FuzzCase>& info) {
  return std::string(info.param.sfc == SfcKind::kZOrder ? "zorder"
                                                        : "hilbert") +
         (info.param.periodic ? "_periodic" : "_bounded") + "_seed" +
         std::to_string(info.param.seed);
}

class MeshFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(MeshFuzz, RandomOpSequencePreservesInvariants) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed);
  AmrMesh mesh(RootGrid{3, 2, 2}, fc.periodic, fc.sfc);

  for (int op = 0; op < 12; ++op) {
    const bool refine = mesh.size() < 40 || rng.chance(0.5);
    std::vector<std::int32_t> tags;
    for (std::size_t b = 0; b < mesh.size(); ++b)
      if (rng.chance(0.25)) tags.push_back(static_cast<std::int32_t>(b));
    if (refine) {
      // Cap depth to keep the fuzz fast.
      std::erase_if(tags, [&](std::int32_t b) {
        return mesh.block(static_cast<std::size_t>(b)).level >= 3;
      });
      mesh.refine(tags);
    } else {
      mesh.coarsen(tags);
    }

    ASSERT_TRUE(mesh.check_balance()) << "op " << op;
    ASSERT_TRUE(mesh.check_coverage()) << "op " << op;

    // Neighbor symmetry and level bounds on every op.
    const auto& lists = mesh.neighbor_lists();
    for (std::size_t i = 0; i < lists.size(); ++i) {
      for (const Neighbor& n : lists[i]) {
        ASSERT_NE(n.index, static_cast<std::int32_t>(i));
        ASSERT_LE(std::abs(static_cast<int>(n.level_diff)), 1);
        const auto& back = lists[static_cast<std::size_t>(n.index)];
        ASSERT_TRUE(std::any_of(back.begin(), back.end(),
                                [&](const Neighbor& m) {
                                  return m.index ==
                                         static_cast<std::int32_t>(i);
                                }));
      }
    }
  }
}

TEST_P(MeshFuzz, SequenceIsDeterministic) {
  const FuzzCase& fc = GetParam();
  auto build = [&] {
    Rng rng(fc.seed);
    AmrMesh mesh(RootGrid{3, 2, 2}, fc.periodic, fc.sfc);
    for (int op = 0; op < 8; ++op) {
      std::vector<std::int32_t> tags;
      for (std::size_t b = 0; b < mesh.size(); ++b)
        if (rng.chance(0.3)) tags.push_back(static_cast<std::int32_t>(b));
      if (op % 3 == 2)
        mesh.coarsen(tags);
      else
        mesh.refine(tags);
    }
    return mesh;
  };
  const AmrMesh a = build();
  const AmrMesh b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.block(i), b.block(i));
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    for (const SfcKind sfc : {SfcKind::kZOrder, SfcKind::kHilbert})
      for (const bool periodic : {false, true})
        cases.push_back({seed, sfc, periodic});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeshFuzz, testing::ValuesIn(fuzz_cases()),
                         fuzz_name);

}  // namespace
}  // namespace amr
