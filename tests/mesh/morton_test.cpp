#include "amr/mesh/morton.hpp"

#include <gtest/gtest.h>

#include "amr/common/rng.hpp"

namespace amr {
namespace {

TEST(Morton3, KnownValues) {
  EXPECT_EQ(morton3_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton3_encode(1, 0, 0), 0b001u);
  EXPECT_EQ(morton3_encode(0, 1, 0), 0b010u);
  EXPECT_EQ(morton3_encode(0, 0, 1), 0b100u);
  EXPECT_EQ(morton3_encode(1, 1, 1), 0b111u);
  EXPECT_EQ(morton3_encode(2, 0, 0), 0b001000u);
  // x=3 (011), y=5 (101), z=7 (111): groups (z y x) per bit, high to low:
  // bit2 -> 110, bit1 -> 101, bit0 -> 111.
  EXPECT_EQ(morton3_encode(3, 5, 7), 0b110'101'111u);
}

TEST(Morton3, RoundTripRandom) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_int(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.uniform_int(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.uniform_int(1u << 21));
    std::uint32_t rx = 0;
    std::uint32_t ry = 0;
    std::uint32_t rz = 0;
    morton3_decode(morton3_encode(x, y, z), rx, ry, rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(Morton3, MaxCoordinateRoundTrips) {
  const std::uint32_t max = (1u << 21) - 1;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  morton3_decode(morton3_encode(max, max, max), x, y, z);
  EXPECT_EQ(x, max);
  EXPECT_EQ(y, max);
  EXPECT_EQ(z, max);
}

TEST(Morton3, PreservesZOrderWithinOctant) {
  // Within one octant subdivision, children are visited in
  // (x fastest, then y, then z) order.
  EXPECT_LT(morton3_encode(0, 0, 0), morton3_encode(1, 0, 0));
  EXPECT_LT(morton3_encode(1, 0, 0), morton3_encode(0, 1, 0));
  EXPECT_LT(morton3_encode(0, 1, 0), morton3_encode(1, 1, 0));
  EXPECT_LT(morton3_encode(1, 1, 0), morton3_encode(0, 0, 1));
  EXPECT_LT(morton3_encode(1, 1, 1), morton3_encode(2, 0, 0));
}

TEST(Morton2, RoundTripRandom) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_int(1u << 31));
    const auto y = static_cast<std::uint32_t>(rng.uniform_int(1u << 31));
    std::uint32_t rx = 0;
    std::uint32_t ry = 0;
    morton2_decode(morton2_encode(x, y), rx, ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(Morton2, KnownValues) {
  EXPECT_EQ(morton2_encode(0, 0), 0u);
  EXPECT_EQ(morton2_encode(1, 0), 1u);
  EXPECT_EQ(morton2_encode(0, 1), 2u);
  EXPECT_EQ(morton2_encode(3, 3), 15u);
}

TEST(Morton3, MonotoneInEachCoordinateHolding) {
  // Increasing one coordinate strictly increases the key when the others
  // are fixed (keys interleave bits; higher coord -> higher key).
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_int(1u << 20));
    const auto y = static_cast<std::uint32_t>(rng.uniform_int(1u << 20));
    const auto z = static_cast<std::uint32_t>(rng.uniform_int(1u << 20));
    ASSERT_LT(morton3_encode(x, y, z), morton3_encode(x + 1, y, z));
    ASSERT_LT(morton3_encode(x, y, z), morton3_encode(x, y + 1, z));
    ASSERT_LT(morton3_encode(x, y, z), morton3_encode(x, y, z + 1));
  }
}

}  // namespace
}  // namespace amr
