#include "amr/mesh/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "amr/common/rng.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {
namespace {

TEST(Hilbert3, RoundTripRandom) {
  Rng rng(3);
  for (const int bits : {1, 2, 5, 10, 21}) {
    for (int i = 0; i < 2000; ++i) {
      const auto x = static_cast<std::uint32_t>(
          rng.uniform_int(1ull << bits));
      const auto y = static_cast<std::uint32_t>(
          rng.uniform_int(1ull << bits));
      const auto z = static_cast<std::uint32_t>(
          rng.uniform_int(1ull << bits));
      std::uint32_t rx = 0;
      std::uint32_t ry = 0;
      std::uint32_t rz = 0;
      hilbert3_decode(hilbert3_encode(x, y, z, bits), bits, rx, ry, rz);
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
      ASSERT_EQ(rz, z);
    }
  }
}

TEST(Hilbert3, IsABijectionAtSmallSize) {
  // Every index in [0, 8^bits) maps to a distinct cell.
  const int bits = 3;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t idx = 0; idx < (1ull << (3 * bits)); ++idx) {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t z = 0;
    hilbert3_decode(idx, bits, x, y, z);
    ASSERT_TRUE(seen.emplace(x, y, z).second);
    ASSERT_EQ(hilbert3_encode(x, y, z, bits), idx);
  }
}

TEST(Hilbert3, ConsecutiveIndicesAreFaceAdjacent) {
  // The defining Hilbert property (which Z-order lacks): consecutive
  // cells along the curve differ by exactly 1 in exactly one axis.
  const int bits = 4;
  std::uint32_t px = 0;
  std::uint32_t py = 0;
  std::uint32_t pz = 0;
  hilbert3_decode(0, bits, px, py, pz);
  for (std::uint64_t idx = 1; idx < (1ull << (3 * bits)); ++idx) {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t z = 0;
    hilbert3_decode(idx, bits, x, y, z);
    const int manhattan = std::abs(static_cast<int>(x) -
                                   static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) -
                                   static_cast<int>(py)) +
                          std::abs(static_cast<int>(z) -
                                   static_cast<int>(pz));
    ASSERT_EQ(manhattan, 1) << "at index " << idx;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(Hilbert3, AlignedCubesAreContiguousRanges) {
  // Any aligned 2^k cube is one contiguous index range — the property
  // that makes padded-coordinate keys a valid leaf ordering for meshes.
  const int bits = 4;
  const int k = 2;  // 4x4x4 cubes
  for (std::uint32_t cx = 0; cx < (1u << (bits - k)); ++cx) {
    for (std::uint32_t cy = 0; cy < (1u << (bits - k)); ++cy) {
      std::uint64_t lo = ~0ull;
      std::uint64_t hi = 0;
      for (std::uint32_t dx = 0; dx < (1u << k); ++dx)
        for (std::uint32_t dy = 0; dy < (1u << k); ++dy)
          for (std::uint32_t dz = 0; dz < (1u << k); ++dz) {
            const std::uint64_t idx = hilbert3_encode(
                (cx << k) | dx, (cy << k) | dy, dz, bits);
            lo = std::min(lo, idx);
            hi = std::max(hi, idx);
          }
      ASSERT_EQ(hi - lo + 1, 1ull << (3 * k));
    }
  }
}

TEST(HilbertMesh, LeavesOrderedAndInvariantsHold) {
  AmrMesh mesh(RootGrid{4, 4, 4}, false, SfcKind::kHilbert);
  EXPECT_EQ(mesh.sfc_kind(), SfcKind::kHilbert);
  Rng rng(11);
  std::vector<std::int32_t> tags;
  for (std::size_t i = 0; i < mesh.size(); ++i)
    if (rng.chance(0.3)) tags.push_back(static_cast<std::int32_t>(i));
  mesh.refine(tags);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
}

TEST(HilbertMesh, UniformMeshConsecutiveBlocksAdjacent) {
  // On a uniform single-octree mesh, SFC-consecutive leaves must be
  // face neighbors under Hilbert ordering (never under Z-order).
  AmrMesh mesh(RootGrid{1, 1, 1}, false, SfcKind::kHilbert);
  mesh.refine_all(2);  // 64 leaves
  for (std::size_t i = 0; i + 1 < mesh.size(); ++i) {
    const BlockCoord& a = mesh.block(i);
    const BlockCoord& b = mesh.block(i + 1);
    const int manhattan = std::abs(static_cast<int>(a.x) -
                                   static_cast<int>(b.x)) +
                          std::abs(static_cast<int>(a.y) -
                                   static_cast<int>(b.y)) +
                          std::abs(static_cast<int>(a.z) -
                                   static_cast<int>(b.z));
    ASSERT_EQ(manhattan, 1) << "at position " << i;
  }
}

TEST(HilbertMesh, BetterOrBequalContiguitySignalThanZOrder) {
  // Count SFC-consecutive leaf pairs that are geometric neighbors: the
  // Hilbert ordering should link at least as many as Z-order.
  auto adjacent_pairs = [](SfcKind kind) {
    AmrMesh mesh(RootGrid{4, 4, 4}, false, kind);
    mesh.refine_all(1);
    int adjacent = 0;
    for (std::size_t i = 0; i + 1 < mesh.size(); ++i) {
      const BlockCoord& a = mesh.block(i);
      const BlockCoord& b = mesh.block(i + 1);
      const int manhattan = std::abs(static_cast<int>(a.x) -
                                     static_cast<int>(b.x)) +
                            std::abs(static_cast<int>(a.y) -
                                     static_cast<int>(b.y)) +
                            std::abs(static_cast<int>(a.z) -
                                     static_cast<int>(b.z));
      if (manhattan == 1) ++adjacent;
    }
    return adjacent;
  };
  EXPECT_GE(adjacent_pairs(SfcKind::kHilbert),
            adjacent_pairs(SfcKind::kZOrder));
}

}  // namespace
}  // namespace amr
