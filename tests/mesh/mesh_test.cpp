#include "amr/mesh/mesh.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "amr/common/rng.hpp"
#include "amr/mesh/generators.hpp"

namespace amr {
namespace {

TEST(AmrMesh, RootGridHasOneLeafPerRootBlock) {
  const AmrMesh mesh(RootGrid{4, 3, 2});
  EXPECT_EQ(mesh.size(), 24u);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
  for (std::size_t i = 0; i < mesh.size(); ++i)
    EXPECT_EQ(mesh.block(i).level, 0);
}

TEST(AmrMesh, RefineOneBlockYieldsEightChildren) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::vector<std::int32_t> tags{0};
  EXPECT_EQ(mesh.refine(tags), 1u);
  EXPECT_EQ(mesh.size(), 8u - 1u + 8u);  // 7 roots + 8 children
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
}

TEST(AmrMesh, RefineAllPreservesCoverage) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine_all(2);
  EXPECT_EQ(mesh.size(), 8u * 64u);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
  EXPECT_EQ(mesh.max_level_present(), 2);
}

TEST(AmrMesh, BalanceRippleRefinesNeighbors) {
  // Refining one block twice forces its neighbors to refine once.
  AmrMesh mesh(RootGrid{4, 4, 4});
  std::vector<std::int32_t> tags{0};
  mesh.refine(tags);
  // Find a level-1 child and refine it; the level-0 neighbors of the
  // original block must ripple to level 1.
  std::vector<std::int32_t> fine;
  for (std::size_t i = 0; i < mesh.size(); ++i)
    if (mesh.block(i).level == 1)
      fine.push_back(static_cast<std::int32_t>(i));
  ASSERT_EQ(fine.size(), 8u);
  const std::size_t before = mesh.size();
  // Refine the last child in SFC order (octant (1,1,1)): it touches
  // level-0 root neighbors, which must ripple to level 1.
  mesh.refine({fine.end() - 1, fine.end()});
  EXPECT_GT(mesh.size(), before + 7);  // more than the direct 8 children
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
}

TEST(AmrMesh, SfcOrderIsDepthFirst) {
  // After refining the first root block, its 8 children must appear
  // contiguously where the parent was (depth-first traversal property).
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  // First 8 leaves should be the level-1 children (they sort before the
  // remaining roots along the SFC).
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mesh.block(i).level, 1);
  for (std::size_t i = 8; i < mesh.size(); ++i)
    EXPECT_EQ(mesh.block(i).level, 0);
}

TEST(AmrMesh, FindAndFindCovering) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const BlockCoord child{1, 0, 0, 0};
  EXPECT_GE(mesh.find(child), 0);
  // A grandchild coordinate is covered by the child leaf.
  const BlockCoord grandchild{2, 0, 0, 0};
  EXPECT_EQ(mesh.find(grandchild), -1);
  EXPECT_EQ(mesh.find_covering(grandchild), mesh.find(child));
}

TEST(AmrMesh, UniformNeighborCounts) {
  // Interior blocks of a uniform non-periodic mesh have 26 neighbors;
  // corner blocks have 7.
  AmrMesh mesh(RootGrid{4, 4, 4});
  const auto& lists = mesh.neighbor_lists();
  std::size_t corner_count = 0;
  std::size_t interior_count = 0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const auto& b = mesh.block(i);
    const bool x_edge = b.x == 0 || b.x == 3;
    const bool y_edge = b.y == 0 || b.y == 3;
    const bool z_edge = b.z == 0 || b.z == 3;
    if (x_edge && y_edge && z_edge) {
      EXPECT_EQ(lists[i].size(), 7u);
      ++corner_count;
    } else if (!x_edge && !y_edge && !z_edge) {
      EXPECT_EQ(lists[i].size(), 26u);
      ++interior_count;
    }
  }
  EXPECT_EQ(corner_count, 8u);
  EXPECT_EQ(interior_count, 8u);
}

TEST(AmrMesh, PeriodicMeshAllBlocksHave26Neighbors) {
  AmrMesh mesh(RootGrid{4, 4, 4}, /*periodic=*/true);
  for (const auto& list : mesh.neighbor_lists())
    EXPECT_EQ(list.size(), 26u);
}

TEST(AmrMesh, NeighborKindsPartitionAs6_12_8) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  const auto& lists = mesh.neighbor_lists();
  // Center block (1,1,1).
  const std::int32_t center = mesh.find(BlockCoord{0, 1, 1, 1});
  ASSERT_GE(center, 0);
  int faces = 0;
  int edges = 0;
  int verts = 0;
  for (const auto& n : lists[static_cast<std::size_t>(center)]) {
    switch (n.kind) {
      case NeighborKind::kFace: ++faces; break;
      case NeighborKind::kEdge: ++edges; break;
      case NeighborKind::kVertex: ++verts; break;
    }
  }
  EXPECT_EQ(faces, 6);
  EXPECT_EQ(edges, 12);
  EXPECT_EQ(verts, 8);
}

TEST(AmrMesh, NeighborSymmetry) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  Rng rng(3);
  refine_random(mesh, rng, 0.2, 2, 2);
  ASSERT_TRUE(mesh.check_balance());
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (const auto& n : lists[i]) {
      const auto& back = lists[static_cast<std::size_t>(n.index)];
      const bool found = std::any_of(
          back.begin(), back.end(), [&](const Neighbor& m) {
            return m.index == static_cast<std::int32_t>(i);
          });
      ASSERT_TRUE(found) << "neighbor relation not symmetric";
    }
  }
}

TEST(AmrMesh, NeighborLevelDiffBounded) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  Rng rng(4);
  refine_random(mesh, rng, 0.25, 3, 3);
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (const auto& n : lists[i]) {
      ASSERT_LE(std::abs(static_cast<int>(n.level_diff)), 1);
      ASSERT_EQ(mesh.block(static_cast<std::size_t>(n.index)).level -
                    mesh.block(i).level,
                n.level_diff);
    }
  }
}

TEST(AmrMesh, CoarsenRequiresAllEightSiblings) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  // Tag only 7 of the 8 children: nothing collapses.
  std::vector<std::int32_t> children;
  for (std::size_t i = 0; i < mesh.size(); ++i)
    if (mesh.block(i).level == 1)
      children.push_back(static_cast<std::int32_t>(i));
  ASSERT_EQ(children.size(), 8u);
  std::vector<std::int32_t> seven(children.begin(), children.end() - 1);
  EXPECT_EQ(mesh.coarsen(seven), 0u);
  EXPECT_EQ(mesh.size(), 15u);
  // All eight: collapses back to the root grid.
  EXPECT_EQ(mesh.coarsen(children), 1u);
  EXPECT_EQ(mesh.size(), 8u);
  EXPECT_TRUE(mesh.check_coverage());
}

TEST(AmrMesh, CoarsenBlockedByBalance) {
  // A region next to a deeply refined region cannot coarsen.
  AmrMesh mesh(RootGrid{2, 1, 1});
  mesh.refine_all(1);  // all at level 1
  // Refine the block at the far -x side to level 2.
  const std::int32_t target = mesh.find(BlockCoord{1, 0, 0, 0});
  ASSERT_GE(target, 0);
  mesh.refine(std::vector<std::int32_t>{target});
  ASSERT_TRUE(mesh.check_balance());
  // Try to coarsen the level-1 sibling group adjacent to the refined
  // region (children of root 0): blocked, level-2 leaves would touch a
  // level-0 leaf.
  std::vector<std::int32_t> tags;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const auto& b = mesh.block(i);
    if (b.level == 1 && (b.x >> 1) == 0 && mesh.block(i).x <= 1)
      tags.push_back(static_cast<std::int32_t>(i));
  }
  const std::size_t before = mesh.size();
  mesh.coarsen(tags);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
  // The group containing the level-2 children's parent remains intact.
  EXPECT_GE(mesh.size(), before - 7);
}

TEST(AmrMesh, FineNeighborsAcrossFaceAreFour) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  const std::int32_t right = mesh.find(BlockCoord{0, 1, 0, 0});
  ASSERT_GE(right, 0);
  mesh.refine(std::vector<std::int32_t>{right});
  const std::int32_t left = mesh.find(BlockCoord{0, 0, 0, 0});
  ASSERT_GE(left, 0);
  const auto& list =
      mesh.neighbor_lists()[static_cast<std::size_t>(left)];
  int fine_face = 0;
  for (const auto& n : list)
    if (n.level_diff == 1 && n.kind == NeighborKind::kFace) ++fine_face;
  EXPECT_EQ(fine_face, 4);
}

TEST(AmrMesh, BoundsPartitionUnitCube) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  Rng rng(9);
  refine_random(mesh, rng, 0.3, 2, 2);
  double volume = 0.0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const Aabb box = mesh.bounds(i);
    volume += (box.hi[0] - box.lo[0]) * (box.hi[1] - box.lo[1]) *
              (box.hi[2] - box.lo[2]);
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

TEST(AmrMesh, RefineIsDeterministic) {
  auto build = [] {
    AmrMesh mesh(RootGrid{3, 3, 3});
    Rng rng(11);
    refine_random(mesh, rng, 0.3, 2, 2);
    return mesh;
  };
  const AmrMesh a = build();
  const AmrMesh b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.block(i), b.block(i));
}

TEST(AmrMesh, NonCubicRootGridNeighbors) {
  // Paper Table I uses non-cubic meshes (128^2 x 256 etc.).
  AmrMesh mesh(RootGrid{8, 8, 16});
  EXPECT_EQ(mesh.size(), 1024u);
  EXPECT_TRUE(mesh.check_coverage());
  const auto& lists = mesh.neighbor_lists();
  std::size_t total = 0;
  for (const auto& l : lists) total += l.size();
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace amr
