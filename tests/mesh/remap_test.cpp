// Delta SFC renumbering: version counters, the merge-based incremental
// order, and the MeshRemap provenance records that carry telemetry and
// placements across regrids.
#include <gtest/gtest.h>

#include <vector>

#include "amr/common/rng.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {
namespace {

std::vector<std::int32_t> all_ids(const AmrMesh& mesh) {
  std::vector<std::int32_t> ids(mesh.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<std::int32_t>(i);
  return ids;
}

TEST(MeshVersion, StartsAtZeroAndBumpsPerChange) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  EXPECT_EQ(mesh.version(), 0u);

  EXPECT_GT(mesh.refine(std::vector<std::int32_t>{0}), 0u);
  EXPECT_EQ(mesh.version(), 1u);

  // No-op refine (empty tags) must not bump.
  EXPECT_EQ(mesh.refine(std::vector<std::int32_t>{}), 0u);
  EXPECT_EQ(mesh.version(), 1u);

  // No-op coarsen (incomplete sibling group) must not bump.
  EXPECT_EQ(mesh.coarsen(std::vector<std::int32_t>{0}), 0u);
  EXPECT_EQ(mesh.version(), 1u);
}

TEST(MeshVersion, NoOpAtMaxLevelDoesNotBump) {
  AmrMesh mesh(RootGrid{1, 1, 1});
  // Drive one block to kMaxLevel by always refining block 0.
  for (int l = 0; l < kMaxLevel; ++l)
    ASSERT_GT(mesh.refine(std::vector<std::int32_t>{0}), 0u);
  const std::uint64_t v = mesh.version();
  EXPECT_EQ(mesh.refine(std::vector<std::int32_t>{0}), 0u);
  EXPECT_EQ(mesh.version(), v);
}

TEST(MeshRemapTest, RefineRecordsCarriedAndRefined) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const BlockCoord refined_coord = mesh.block(3);
  mesh.refine(std::vector<std::int32_t>{3});

  const MeshRemap* r = mesh.remap_to(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->from_version, 0u);
  EXPECT_EQ(r->to_version, 1u);
  EXPECT_EQ(r->old_size, 8u);
  ASSERT_EQ(r->src.size(), mesh.size());
  ASSERT_EQ(r->kind.size(), mesh.size());
  EXPECT_EQ(r->carried, 7u);  // 8 roots - 1 refined

  std::size_t carried = 0, refined = 0;
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (r->kind[b] == RemapKind::kCarried) {
      ++carried;
      EXPECT_NE(r->src[b], 3);  // the refined block no longer exists
    } else {
      ASSERT_EQ(r->kind[b], RemapKind::kRefined);
      ++refined;
      EXPECT_EQ(r->src[b], 3);
      EXPECT_EQ(mesh.block(b).parent(), refined_coord);
    }
  }
  EXPECT_EQ(carried, 7u);
  EXPECT_EQ(refined, 8u);
}

TEST(MeshRemapTest, CoarsenRecordsConsecutiveChildren) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  // Remember the current leaves so src ids can be checked post-collapse.
  std::vector<BlockCoord> old_leaves(mesh.blocks().begin(),
                                     mesh.blocks().end());
  // Tag all leaves; only the complete level-1 sibling group collapses.
  mesh.coarsen(all_ids(mesh));

  const MeshRemap* r = mesh.remap_to(2);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->old_size, old_leaves.size());
  bool saw_coarsened = false;
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (r->kind[b] != RemapKind::kCoarsened) continue;
    saw_coarsened = true;
    const auto src = static_cast<std::size_t>(r->src[b]);
    ASSERT_LE(src + 8, old_leaves.size());
    // The eight collapsed children occupy consecutive old IDs from src.
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(old_leaves[src + c].parent(), mesh.block(b))
          << "child " << c;
  }
  EXPECT_TRUE(saw_coarsened);
}

TEST(MeshRemapTest, CarriedSrcPointsAtSameCoordinate) {
  AmrMesh mesh(RootGrid{3, 2, 2}, false, SfcKind::kHilbert);
  std::vector<BlockCoord> old_leaves(mesh.blocks().begin(),
                                     mesh.blocks().end());
  mesh.refine(std::vector<std::int32_t>{1, 5});
  const MeshRemap* r = mesh.remap_to(1);
  ASSERT_NE(r, nullptr);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (r->kind[b] != RemapKind::kCarried) continue;
    EXPECT_EQ(old_leaves[static_cast<std::size_t>(r->src[b])],
              mesh.block(b));
  }
}

TEST(MeshRemapTest, HistoryIsBoundedAndOldRecordsAgeOut) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  // 40 regrids: alternately refine and fully coarsen block 0's octant.
  for (int i = 0; i < 20; ++i) {
    ASSERT_GT(mesh.refine(std::vector<std::int32_t>{0}), 0u);
    std::vector<std::int32_t> tags;
    for (std::size_t b = 0; b < mesh.size(); ++b)
      if (mesh.block(b).level > 0)
        tags.push_back(static_cast<std::int32_t>(b));
    ASSERT_GT(mesh.coarsen(tags), 0u);
  }
  EXPECT_EQ(mesh.version(), 40u);
  EXPECT_EQ(mesh.remap_to(1), nullptr);   // aged out
  EXPECT_NE(mesh.remap_to(40), nullptr);  // newest kept
  EXPECT_NE(mesh.remap_to(9), nullptr);   // 32-deep history
  EXPECT_EQ(mesh.remap_to(41), nullptr);  // never existed
}

/// The incremental merge must produce exactly the order a full sort
/// would, for both curves, across random refine/coarsen sequences —
/// check_sfc_order recomputes every key from scratch.
TEST(MeshDeltaOrder, FuzzSequencesMatchFullSort) {
  for (const SfcKind sfc : {SfcKind::kZOrder, SfcKind::kHilbert}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(seed);
      AmrMesh mesh(RootGrid{3, 2, 2}, seed % 2 == 1, sfc);
      ASSERT_TRUE(mesh.check_sfc_order());
      for (int op = 0; op < 10; ++op) {
        std::vector<std::int32_t> tags;
        for (std::size_t b = 0; b < mesh.size(); ++b)
          if (rng.chance(0.3)) tags.push_back(static_cast<std::int32_t>(b));
        if (mesh.size() < 40 || rng.chance(0.5)) {
          std::erase_if(tags, [&](std::int32_t b) {
            return mesh.block(static_cast<std::size_t>(b)).level >= 3;
          });
          mesh.refine(tags);
        } else {
          mesh.coarsen(tags);
        }
        ASSERT_TRUE(mesh.check_sfc_order())
            << to_string(sfc) << " seed " << seed << " op " << op;
        ASSERT_TRUE(mesh.check_balance());
        ASSERT_TRUE(mesh.check_coverage());
      }
    }
  }
}

/// Remap records must compose: walking every record from version 0 and
/// applying it to a shadow cost vector gives the same result as reading
/// costs off the final mesh coordinates directly (for carried blocks).
TEST(MeshRemapTest, RecordsComposeAcrossEpochs) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  // Shadow: cost of a block = its original root id, carried along.
  std::vector<std::int64_t> shadow(mesh.size());
  std::vector<BlockCoord> origin(mesh.blocks().begin(),
                                 mesh.blocks().end());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    shadow[b] = static_cast<std::int64_t>(b);

  Rng rng(7);
  std::uint64_t applied = mesh.version();
  for (int op = 0; op < 6; ++op) {
    std::vector<std::int32_t> tags;
    for (std::size_t b = 0; b < mesh.size(); ++b)
      if (rng.chance(0.35)) tags.push_back(static_cast<std::int32_t>(b));
    if (op % 2 == 0) {
      std::erase_if(tags, [&](std::int32_t b) {
        return mesh.block(static_cast<std::size_t>(b)).level >= 2;
      });
      mesh.refine(tags);
    } else {
      mesh.coarsen(tags);
    }
    while (applied != mesh.version()) {
      const MeshRemap* r = mesh.remap_to(applied + 1);
      ASSERT_NE(r, nullptr);
      ASSERT_EQ(r->old_size, shadow.size());
      std::vector<std::int64_t> next(r->src.size());
      for (std::size_t b = 0; b < r->src.size(); ++b) {
        const auto src = static_cast<std::size_t>(r->src[b]);
        next[b] = r->kind[b] == RemapKind::kCoarsened ? -1 : shadow[src];
      }
      shadow = std::move(next);
      ++applied;
    }
  }

  // Every block that still traces to a root must trace to the root that
  // contains it geometrically.
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (shadow[b] < 0) continue;  // lineage broken by a coarsen; fine
    BlockCoord c = mesh.block(b);
    while (c.level > 0) c = c.parent();
    EXPECT_EQ(origin[static_cast<std::size_t>(shadow[b])], c)
        << "block " << b;
  }
}

}  // namespace
}  // namespace amr
