#include "amr/mesh/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amr {
namespace {

TEST(BoxIntersectsShell, CenterInsideThickShell) {
  Aabb box;
  box.lo = {0.4, 0.4, 0.4};
  box.hi = {0.6, 0.6, 0.6};
  // Shell centered at box center with radius 0.1: box straddles it.
  EXPECT_TRUE(box_intersects_shell(box, {0.5, 0.5, 0.5}, 0.1, 0.01));
}

TEST(BoxIntersectsShell, FarBoxMisses) {
  Aabb box;
  box.lo = {0.9, 0.9, 0.9};
  box.hi = {1.0, 1.0, 1.0};
  EXPECT_FALSE(box_intersects_shell(box, {0.0, 0.0, 0.0}, 0.2, 0.05));
}

TEST(BoxIntersectsShell, BoxEntirelyInsideInnerVoidMisses) {
  Aabb box;
  box.lo = {0.49, 0.49, 0.49};
  box.hi = {0.51, 0.51, 0.51};
  EXPECT_FALSE(box_intersects_shell(box, {0.5, 0.5, 0.5}, 0.4, 0.05));
}

TEST(BoxIntersectsShell, TouchingOuterEdge) {
  Aabb box;
  box.lo = {0.7, 0.45, 0.45};
  box.hi = {0.8, 0.55, 0.55};
  // Distance from center (0.5,..) to nearest box point is 0.2.
  EXPECT_TRUE(box_intersects_shell(box, {0.5, 0.5, 0.5}, 0.15, 0.06));
  EXPECT_FALSE(box_intersects_shell(box, {0.5, 0.5, 0.5}, 0.1, 0.05));
}

TEST(RefineShell, RefinesOnlyShellBlocks) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  const std::size_t refined =
      refine_shell(mesh, {0.5, 0.5, 0.5}, 0.3, 0.05, 1);
  EXPECT_GT(refined, 0u);
  EXPECT_TRUE(mesh.check_balance());
  // All level-1 blocks are near the shell (within ripple distance).
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    if (mesh.block(i).level == 0) continue;
    const auto c = mesh.bounds(i).center();
    const double d = std::sqrt((c[0] - 0.5) * (c[0] - 0.5) +
                               (c[1] - 0.5) * (c[1] - 0.5) +
                               (c[2] - 0.5) * (c[2] - 0.5));
    EXPECT_LT(std::abs(d - 0.3), 0.35);
  }
}

TEST(RefineShell, ReachesRequestedLevel) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  refine_shell(mesh, {0.5, 0.5, 0.5}, 0.25, 0.1, 2);
  EXPECT_EQ(mesh.max_level_present(), 2);
  EXPECT_TRUE(mesh.check_balance());
}

TEST(RefineWhere, NoMatchesNoChange) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::size_t refined =
      refine_where(mesh, [](const Aabb&) { return false; }, 3);
  EXPECT_EQ(refined, 0u);
  EXPECT_EQ(mesh.size(), 8u);
}

TEST(RefineWhere, MaxLevelZeroIsNoOp) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::size_t refined =
      refine_where(mesh, [](const Aabb&) { return true; }, 0);
  EXPECT_EQ(refined, 0u);
}

TEST(RefineRandom, GrowsMeshAndKeepsInvariants) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Rng rng(21);
  const std::size_t before = mesh.size();
  refine_random(mesh, rng, 0.5, 2, 2);
  EXPECT_GT(mesh.size(), before);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
}

TEST(GrowToBlockCount, ReachesTarget) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  Rng rng(22);
  grow_to_block_count(mesh, rng, 128, 2);
  EXPECT_GE(mesh.size(), 128u);
  EXPECT_TRUE(mesh.check_balance());
  EXPECT_TRUE(mesh.check_coverage());
}

}  // namespace
}  // namespace amr
