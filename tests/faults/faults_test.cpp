#include <gtest/gtest.h>

#include "amr/faults/health.hpp"
#include "amr/faults/injector.hpp"

namespace amr {
namespace {

TEST(FaultInjector, NoFaultsMeansUnitMultiplier) {
  const FaultInjector injector;
  EXPECT_TRUE(injector.empty());
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 0), 1.0);
  EXPECT_FALSE(injector.node_faulty(3));
}

TEST(FaultInjector, ThrottleAppliesToListedNodesOnly) {
  FaultInjector injector;
  injector.add_throttle({.nodes = {1, 3}, .factor = 4.0});
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(3, 100), 4.0);
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 0), 1.0);
  EXPECT_TRUE(injector.node_faulty(1));
  EXPECT_FALSE(injector.node_faulty(0));
}

TEST(FaultInjector, OnsetAndEndStepsRespected) {
  FaultInjector injector;
  injector.add_throttle(
      {.nodes = {0}, .factor = 3.0, .onset_step = 10, .end_step = 20});
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 9), 1.0);
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 10), 3.0);
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 20), 3.0);
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 21), 1.0);
}

TEST(FaultInjector, OverlappingFaultsTakeMax) {
  FaultInjector injector;
  injector.add_throttle({.nodes = {0}, .factor = 2.0});
  injector.add_throttle({.nodes = {0}, .factor = 5.0});
  EXPECT_DOUBLE_EQ(injector.compute_multiplier(0, 0), 5.0);
}

TEST(FaultInjector, FaultyNodesDeduplicatedSorted) {
  FaultInjector injector;
  injector.add_throttle({.nodes = {3, 1}, .factor = 2.0});
  injector.add_throttle({.nodes = {1, 0}, .factor = 2.0});
  const auto nodes = injector.faulty_nodes();
  EXPECT_EQ(nodes, (std::vector<std::int32_t>{0, 1, 3}));
}

TEST(PickVictimNodes, DistinctAndDeterministic) {
  Rng a(5);
  Rng b(5);
  const auto va = pick_victim_nodes(100, 10, a);
  const auto vb = pick_victim_nodes(100, 10, b);
  EXPECT_EQ(va, vb);
  ASSERT_EQ(va.size(), 10u);
  for (std::size_t i = 1; i < va.size(); ++i) EXPECT_LT(va[i - 1], va[i]);
}

TEST(ScanSensors, PerfectDetectionFindsAllFaultyNodes) {
  FaultInjector injector;
  injector.add_throttle({.nodes = {2, 5}, .factor = 4.0});
  Rng rng(7);
  const auto detected = scan_sensors(injector, 8, rng, 1.0);
  EXPECT_EQ(detected, (std::vector<std::int32_t>{2, 5}));
}

TEST(ScanSensors, ImperfectDetectionIsSubset) {
  FaultInjector injector;
  std::vector<std::int32_t> all;
  for (int n = 0; n < 50; ++n) all.push_back(n);
  injector.add_throttle({.nodes = all, .factor = 4.0});
  Rng rng(9);
  const auto detected = scan_sensors(injector, 50, rng, 0.5);
  EXPECT_GT(detected.size(), 10u);
  EXPECT_LT(detected.size(), 40u);
}

TEST(NodePool, AllocateSkipsBlacklisted) {
  NodePool pool(10);
  pool.blacklist(0);
  pool.blacklist(2);
  EXPECT_EQ(pool.healthy_count(), 8);
  const auto nodes = pool.allocate(3);
  EXPECT_EQ(nodes, (std::vector<std::int32_t>{1, 3, 4}));
}

TEST(NodePool, BlacklistAllAndQuery) {
  NodePool pool(4);
  pool.blacklist_all({1, 3});
  EXPECT_TRUE(pool.is_blacklisted(1));
  EXPECT_FALSE(pool.is_blacklisted(0));
  EXPECT_EQ(pool.healthy_count(), 2);
}

TEST(NodePoolDeath, ExhaustedPoolAborts) {
  NodePool pool(3);
  pool.blacklist(0);
  pool.blacklist(1);
  EXPECT_DEATH(pool.allocate(3), "overprovision");
}

TEST(HealthWorkflow, PruneAndRerunRemovesFaultImpact) {
  // The paper's launch workflow: scan, blacklist, allocate healthy nodes.
  FaultInjector injector;
  injector.add_throttle({.nodes = {1}, .factor = 4.0});
  NodePool pool(6);  // overprovisioned: need 4
  Rng rng(11);
  pool.blacklist_all(scan_sensors(injector, 6, rng, 1.0));
  const auto nodes = pool.allocate(4);
  for (const auto n : nodes) EXPECT_FALSE(injector.node_faulty(n));
}

}  // namespace
}  // namespace amr
