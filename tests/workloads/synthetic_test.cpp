#include "amr/workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include "amr/common/stats.hpp"

namespace amr {
namespace {

class SyntheticCosts : public testing::TestWithParam<CostDistribution> {};

TEST_P(SyntheticCosts, PositiveBoundedAndRoughlyCorrectMean) {
  Rng rng(17);
  const SyntheticCostParams params;
  const auto costs = synthetic_costs(50000, GetParam(), rng, params);
  RunningStats s;
  for (const double c : costs) {
    ASSERT_GT(c, 0.0);
    ASSERT_LE(c, params.clamp_max_ratio * params.mean);
    s.add(c);
  }
  EXPECT_NEAR(s.mean(), params.mean, 0.1);
}

TEST_P(SyntheticCosts, DeterministicPerSeed) {
  Rng a(23);
  Rng b(23);
  EXPECT_EQ(synthetic_costs(100, GetParam(), a),
            synthetic_costs(100, GetParam(), b));
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, SyntheticCosts,
    testing::Values(CostDistribution::kExponential,
                    CostDistribution::kGaussian,
                    CostDistribution::kPowerLaw),
    [](const testing::TestParamInfo<CostDistribution>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(SyntheticCosts, PowerLawHasHeavierTailThanGaussian) {
  Rng rng(29);
  const auto pl =
      synthetic_costs(50000, CostDistribution::kPowerLaw, rng);
  const auto g = synthetic_costs(50000, CostDistribution::kGaussian, rng);
  EXPECT_GT(percentile(pl, 0.999) / percentile(pl, 0.5),
            percentile(g, 0.999) / percentile(g, 0.5));
}

TEST(SyntheticCosts, GaussianTighterThanExponential) {
  Rng rng(31);
  const auto g = synthetic_costs(50000, CostDistribution::kGaussian, rng);
  const auto e =
      synthetic_costs(50000, CostDistribution::kExponential, rng);
  EXPECT_LT(stddev(g), stddev(e));
}

TEST(SyntheticCosts, ZeroCountYieldsEmpty) {
  Rng rng(37);
  EXPECT_TRUE(
      synthetic_costs(0, CostDistribution::kExponential, rng).empty());
}

}  // namespace
}  // namespace amr
