#include "amr/workloads/sedov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "amr/workloads/cooling.hpp"

namespace amr {
namespace {

SedovParams small_params() {
  SedovParams p;
  p.total_steps = 50;
  p.max_level = 1;
  return p;
}

TEST(Sedov, FrontRadiusFollowsSelfSimilarLaw) {
  SedovWorkload sedov(small_params());
  EXPECT_DOUBLE_EQ(sedov.front_radius(0), 0.0);
  EXPECT_DOUBLE_EQ(sedov.front_radius(50), 0.85);
  // R(t) ~ t^0.4: half time -> 0.85 * 0.5^0.4.
  EXPECT_NEAR(sedov.front_radius(25), 0.85 * std::pow(0.5, 0.4), 1e-12);
  // Monotone growth, capped after total_steps.
  EXPECT_LT(sedov.front_radius(10), sedov.front_radius(20));
  EXPECT_DOUBLE_EQ(sedov.front_radius(100), 0.85);
}

TEST(Sedov, EvolveRefinesAroundFront) {
  SedovWorkload sedov(small_params());
  AmrMesh mesh(RootGrid{8, 8, 8});
  const std::size_t before = mesh.size();
  bool changed = false;
  for (std::int64_t s = 0; s <= 25; s += 5)
    changed |= sedov.evolve(mesh, s);
  EXPECT_TRUE(changed);
  EXPECT_GT(mesh.size(), before);
  EXPECT_TRUE(mesh.check_balance());
  // Refined blocks hug the shell.
  const double radius = sedov.front_radius(25);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (mesh.block(b).level == 0) continue;
    const auto c = mesh.bounds(b).center();
    const double d = std::sqrt((c[0] - 0.5) * (c[0] - 0.5) +
                               (c[1] - 0.5) * (c[1] - 0.5) +
                               (c[2] - 0.5) * (c[2] - 0.5));
    EXPECT_LT(std::abs(d - radius), 0.35);
  }
}

TEST(Sedov, EvolveOnlyOnCheckPeriod) {
  SedovWorkload sedov(small_params());
  AmrMesh mesh(RootGrid{8, 8, 8});
  EXPECT_FALSE(sedov.evolve(mesh, 7));  // not a multiple of 5
  EXPECT_FALSE(sedov.evolve(mesh, 13));
}

TEST(Sedov, FrontSweepCoarsensBehind) {
  SedovWorkload sedov(small_params());
  AmrMesh mesh(RootGrid{8, 8, 8});
  std::size_t peak = mesh.size();
  for (std::int64_t s = 0; s <= 50; s += 5) {
    sedov.evolve(mesh, s);
    peak = std::max(peak, mesh.size());
  }
  // Blocks were refined at the front and coarsened behind it: the final
  // count sits below the peak.
  EXPECT_GT(peak, 512u);
  EXPECT_LT(mesh.size(), peak);
  EXPECT_TRUE(mesh.check_balance());
}

TEST(Sedov, CostElevatedNearFront) {
  SedovParams p = small_params();
  p.noise_sigma = 0.0;  // isolate the spatial profile
  SedovWorkload sedov(p);
  AmrMesh mesh(RootGrid{8, 8, 8});
  const std::int64_t step = 25;
  const double radius = sedov.front_radius(step);

  TimeNs front_cost = 0;
  TimeNs far_cost = 0;
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const auto c = mesh.bounds(b).center();
    const double d = std::sqrt((c[0] - 0.5) * (c[0] - 0.5) +
                               (c[1] - 0.5) * (c[1] - 0.5) +
                               (c[2] - 0.5) * (c[2] - 0.5));
    if (std::abs(d - radius) < 0.05)
      front_cost = std::max(front_cost, sedov.block_cost(mesh, b, step));
    if (std::abs(d - radius) > 0.3)
      far_cost = std::max(far_cost, sedov.block_cost(mesh, b, step));
  }
  ASSERT_GT(front_cost, 0);
  ASSERT_GT(far_cost, 0);
  EXPECT_GT(front_cost, 2 * far_cost);
}

TEST(Sedov, CostsDeterministicAndKeyedByCoordinates) {
  SedovWorkload sedov(small_params());
  AmrMesh mesh(RootGrid{8, 8, 8});
  const TimeNs a = sedov.block_cost(mesh, 5, 10);
  const TimeNs b = sedov.block_cost(mesh, 5, 10);
  EXPECT_EQ(a, b);
  // Different step changes the noise.
  EXPECT_NE(sedov.block_cost(mesh, 5, 10), sedov.block_cost(mesh, 5, 11));
}

TEST(Cooling, RefinesClumpOnceAndStaysStatic) {
  CoolingParams p;
  p.max_level = 1;
  CoolingWorkload cooling(p);
  AmrMesh mesh(RootGrid{8, 8, 8});
  EXPECT_TRUE(cooling.evolve(mesh, 0));
  const std::size_t after = mesh.size();
  EXPECT_GT(after, 512u);
  for (std::int64_t s = 1; s < 20; ++s)
    EXPECT_FALSE(cooling.evolve(mesh, s));
  EXPECT_EQ(mesh.size(), after);
}

TEST(Cooling, CostFallsOffFromCenter) {
  CoolingParams p;
  p.noise_sigma = 0.0;
  CoolingWorkload cooling(p);
  AmrMesh mesh(RootGrid{8, 8, 8});
  const std::int32_t center = mesh.find(BlockCoord{0, 4, 4, 4});
  const std::int32_t corner = mesh.find(BlockCoord{0, 0, 0, 0});
  ASSERT_GE(center, 0);
  ASSERT_GE(corner, 0);
  EXPECT_GT(cooling.block_cost(mesh, static_cast<std::size_t>(center), 0),
            2 * cooling.block_cost(mesh, static_cast<std::size_t>(corner),
                                   0));
}

}  // namespace
}  // namespace amr
