#include "amr/placement/metrics.hpp"

#include <gtest/gtest.h>

#include "amr/placement/baseline.hpp"
#include "amr/placement/lpt.hpp"

namespace amr {
namespace {

TEST(LoadMetrics, PerfectBalance) {
  const std::vector<double> costs{1, 1, 1, 1};
  const Placement p{0, 1, 2, 3};
  const LoadMetrics m = load_metrics(costs, p, 4);
  EXPECT_DOUBLE_EQ(m.makespan, 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
}

TEST(LoadMetrics, KnownImbalance) {
  const std::vector<double> costs{3, 1, 1, 1};
  const Placement p{0, 1, 2, 3};
  const LoadMetrics m = load_metrics(costs, p, 4);
  EXPECT_DOUBLE_EQ(m.makespan, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_load, 1.5);
  EXPECT_DOUBLE_EQ(m.imbalance, 2.0);
}

TEST(MessageSizeModel, FaceLargerThanEdgeLargerThanVertex) {
  const MessageSizeModel m;
  EXPECT_GT(m.bytes(NeighborKind::kFace), m.bytes(NeighborKind::kEdge));
  EXPECT_GT(m.bytes(NeighborKind::kEdge), m.bytes(NeighborKind::kVertex));
}

TEST(MessageSizeModel, ScalesWithVariables) {
  MessageSizeModel m5;
  m5.nvars = 5;
  MessageSizeModel m10;
  m10.nvars = 10;
  EXPECT_EQ(2 * m5.bytes(NeighborKind::kFace),
            m10.bytes(NeighborKind::kFace));
}

TEST(CommMetrics, AllOnOneRankIsAllIntraRank) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement p(mesh.size(), 0);
  const ClusterTopology topo(4, 2);
  const CommMetrics m = comm_metrics(mesh, p, topo);
  EXPECT_GT(m.msgs_intra_rank, 0);
  EXPECT_EQ(m.msgs_intra_node, 0);
  EXPECT_EQ(m.msgs_inter_node, 0);
}

TEST(CommMetrics, SameNodeRanksUseShm) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  // Two blocks on ranks 0 and 1, both on node 0.
  const Placement p{0, 1};
  const ClusterTopology topo(4, 2);
  const CommMetrics m = comm_metrics(mesh, p, topo);
  EXPECT_EQ(m.msgs_intra_rank, 0);
  EXPECT_EQ(m.msgs_intra_node, 2);  // directed both ways
  EXPECT_EQ(m.msgs_inter_node, 0);
}

TEST(CommMetrics, CrossNodeRanksUseFabric) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  const Placement p{0, 2};  // node 0 and node 1
  const ClusterTopology topo(4, 2);
  const CommMetrics m = comm_metrics(mesh, p, topo);
  EXPECT_EQ(m.msgs_inter_node, 2);
  EXPECT_EQ(m.msgs_intra_node, 0);
  EXPECT_GT(m.bytes_inter_node, 0);
}

TEST(CommMetrics, RemoteFractionGrowsWhenLocalityBreaks) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  const ClusterTopology topo(16, 4);
  const BaselinePolicy baseline;
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement contiguous = baseline.place(uniform, 16);
  // Round-robin placement destroys locality.
  Placement scattered(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    scattered[b] = static_cast<std::int32_t>(b % 16);
  const CommMetrics local = comm_metrics(mesh, contiguous, topo);
  const CommMetrics remote = comm_metrics(mesh, scattered, topo);
  EXPECT_LT(local.remote_fraction(), remote.remote_fraction());
  EXPECT_GT(local.msgs_intra_rank, remote.msgs_intra_rank);
}

TEST(ContiguityFraction, ExtremesAndMiddle) {
  EXPECT_DOUBLE_EQ(contiguity_fraction({0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(contiguity_fraction({0, 5, 1, 7}), 0.0);
  EXPECT_DOUBLE_EQ(contiguity_fraction({}), 1.0);
  EXPECT_DOUBLE_EQ(contiguity_fraction({3}), 1.0);
}

TEST(MovedBlocks, CountsDifferences) {
  EXPECT_EQ(moved_blocks({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(moved_blocks({0, 1, 2}, {0, 2, 1}), 2);
}

}  // namespace
}  // namespace amr
