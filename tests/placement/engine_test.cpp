#include "amr/placement/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "amr/common/rng.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/cplx.hpp"
#include "amr/placement/metrics.hpp"

namespace amr {
namespace {

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = rng.exponential(1.0);
  return costs;
}

// The engine's one hard contract: for any cost vector and any reuse
// history, place_cplx is byte-identical to the from-scratch policy.
void expect_matches_full(PlacementEngine& engine,
                         std::span<const double> costs, std::int32_t nranks,
                         double x, std::int32_t chunk,
                         std::uint64_t epoch) {
  const Placement delta =
      engine.place_cplx(costs, nranks, x, chunk, epoch);
  const Placement full = CplxPolicy(x, chunk).place(costs, nranks);
  ASSERT_EQ(delta, full) << "x=" << x << " nranks=" << nranks
                         << " blocks=" << costs.size();
}

TEST(PlacementEngine, FirstEpochMatchesFullRebuild) {
  PlacementEngine engine;
  const auto costs = skewed_costs(256, 11);
  expect_matches_full(engine, costs, 16, 50.0, 4, 1);
}

TEST(PlacementEngine, EdgeCaseEmptyCosts) {
  // An empty refinement level: no blocks at all.
  PlacementEngine engine;
  const std::vector<double> costs;
  expect_matches_full(engine, costs, 8, 50.0, 4, 1);
  expect_matches_full(engine, costs, 8, 50.0, 4, 2);
}

TEST(PlacementEngine, EdgeCaseSingleBlock) {
  PlacementEngine engine;
  const std::vector<double> costs{3.5};
  expect_matches_full(engine, costs, 8, 50.0, 4, 1);
  expect_matches_full(engine, costs, 8, 100.0, 4, 2);
}

TEST(PlacementEngine, EdgeCaseAllEqualCosts) {
  // Uniform costs sit below kRebalanceFloor, so every X degenerates to
  // the contiguous base — the engine must reproduce that exactly.
  PlacementEngine engine;
  const std::vector<double> costs(64, 2.0);
  for (const double x : {0.0, 50.0, 100.0})
    expect_matches_full(engine, costs, 8, x, 4, static_cast<uint64_t>(x));
}

TEST(PlacementEngine, EdgeCaseMoreRanksThanBlocks) {
  // "X larger than block count": nranks (and the rebalanced rank set)
  // exceed the number of blocks, leaving some ranks empty.
  PlacementEngine engine;
  const auto costs = skewed_costs(5, 13);
  expect_matches_full(engine, costs, 16, 100.0, 4, 1);
  expect_matches_full(engine, costs, 16, 50.0, 4, 2);
}

TEST(PlacementEngine, EpochTokenFastPathReusesBase) {
  PlacementEngine engine;
  const auto costs = skewed_costs(512, 17);
  expect_matches_full(engine, costs, 32, 25.0, 4, 7);
  const std::int64_t base_reused = engine.stats().base_reused;
  // Same epoch token -> whole-base fast path, still identical output.
  expect_matches_full(engine, costs, 32, 75.0, 4, 7);
  EXPECT_EQ(engine.stats().base_reused, base_reused + 1);
}

TEST(PlacementEngine, UnchangedChunksAreReused) {
  PlacementEngine engine;
  auto costs = skewed_costs(1024, 19);
  expect_matches_full(engine, costs, 64, 50.0, 8, 1);
  // Same content under a new epoch token (remap-carried costs after a
  // no-op regrid): every chunk solve must come from the memo.
  expect_matches_full(engine, costs, 64, 50.0, 8, 2);
  EXPECT_EQ(engine.last_chunks_reused(), engine.last_chunks_total());
  // A swap deep inside one chunk keeps every boundary prefix sum — and
  // thus every other chunk's span and sub-costs — intact: only the
  // touched chunk may re-solve.
  std::swap(costs[1000], costs[1001]);
  expect_matches_full(engine, costs, 64, 50.0, 8, 3);
  EXPECT_GT(engine.last_chunks_reused(), 0);
  EXPECT_LT(engine.last_chunks_reused(), engine.last_chunks_total());
}

TEST(PlacementEngine, FuzzDeltaEqualsFullAcrossRegridSequences) {
  // Random regrid-like sequences: grow, shrink, and mutate the cost
  // vector; every epoch's delta placement must equal the full rebuild.
  Rng rng(23);
  PlacementEngine engine;
  std::vector<double> costs = skewed_costs(300, 29);
  std::uint64_t epoch = 1;
  for (int round = 0; round < 40; ++round) {
    const double kind = rng.uniform();
    if (kind < 0.3) {  // refine: insert blocks
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size()));
      costs.insert(costs.begin() + static_cast<std::ptrdiff_t>(at),
                   {rng.exponential(1.0), rng.exponential(1.0)});
    } else if (kind < 0.5 && costs.size() > 8) {  // coarsen: remove
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size() - 4));
      costs.erase(costs.begin() + static_cast<std::ptrdiff_t>(at),
                  costs.begin() + static_cast<std::ptrdiff_t>(at + 4));
    } else if (kind < 0.9) {  // cost drift on a localized span
      const auto at = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(costs.size()));
      const std::size_t span = std::min<std::size_t>(8, costs.size() - at);
      for (std::size_t i = at; i < at + span; ++i)
        costs[i] = rng.exponential(1.0);
    }  // else: remap-carried unchanged epoch
    const double x = 25.0 * static_cast<double>(round % 5);
    expect_matches_full(engine, costs, 32, x, 4, ++epoch);
  }
  EXPECT_GT(engine.stats().chunks_reused, 0);
}

TEST(PlacementEngine, ParallelMatchesSequential) {
  // The borrowed pool must never change output bytes.
  const auto costs = skewed_costs(2048, 31);
  PlacementEngine seq;
  ThreadPool pool(4);
  PlacementEngine par;
  par.set_parallel(&pool);
  std::uint64_t epoch = 0;
  auto mutated = costs;
  for (int round = 0; round < 6; ++round) {
    mutated[static_cast<std::size_t>(round) * 300] += 1.0;
    const Placement a =
        seq.place_cplx(mutated, 64, 50.0, 8, ++epoch);
    const Placement b = par.place_cplx(mutated, 64, 50.0, 8, epoch);
    ASSERT_EQ(a, b) << "round " << round;
  }
}

TEST(PlacementEngine, EvaluateCandidatesMatchesDirectPlacement) {
  AmrMesh mesh(RootGrid{4, 4, 4});
  const auto costs = skewed_costs(mesh.size(), 37);
  const ClusterTopology topo(16, 4);
  const MessageSizeModel sizes;
  const std::vector<double> xs{0.0, 50.0, 100.0};

  ThreadPool pool(4);
  PlacementEngine engine;
  engine.set_parallel(&pool);
  std::vector<CandidateEval> evals;
  engine.evaluate_candidates(costs, 16, xs, 4, 1, mesh, topo, sizes,
                             evals);

  ASSERT_EQ(evals.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(evals[i].x_percent, xs[i]);
    const Placement ref = CplxPolicy(xs[i], 4).place(costs, 16);
    EXPECT_EQ(evals[i].placement, ref) << "x=" << xs[i];
    const LoadMetrics lm = load_metrics(costs, ref, 16);
    EXPECT_DOUBLE_EQ(evals[i].makespan, lm.makespan);
    const CommMetrics cm = comm_metrics(mesh, ref, topo, sizes);
    EXPECT_DOUBLE_EQ(evals[i].remote_share, cm.remote_fraction())
        << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace amr
