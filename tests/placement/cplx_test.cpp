#include "amr/placement/cplx.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/placement/cdp.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/lpt.hpp"
#include "amr/placement/metrics.hpp"

namespace amr {
namespace {

double makespan_of(std::span<const double> costs, const Placement& p,
                   std::int32_t r) {
  const auto loads = rank_loads(costs, p, r);
  return *std::max_element(loads.begin(), loads.end());
}

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = rng.exponential(1.0);
  return costs;
}

TEST(Cplx, X0EqualsChunkedCdp) {
  const auto costs = skewed_costs(64, 61);
  const CplxPolicy cpl0(0.0);
  const ChunkedCdpPolicy cdp;
  EXPECT_EQ(cpl0.place(costs, 8), cdp.place(costs, 8));
}

TEST(Cplx, X100MakespanMatchesLpt) {
  // At X=100 every rank is rebalanced via LPT over all blocks; the
  // makespan must equal pure LPT's (rank labels may permute).
  const auto costs = skewed_costs(64, 67);
  const CplxPolicy cpl100(100.0);
  const LptPolicy lpt;
  const double a = makespan_of(costs, cpl100.place(costs, 8), 8);
  const double b = makespan_of(costs, lpt.place(costs, 8), 8);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Cplx, MakespanDecreasesMonotonicallyInX) {
  const auto costs = skewed_costs(128, 71);
  double prev = 1e18;
  for (const double x : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    const CplxPolicy policy(x);
    const double ms = makespan_of(costs, policy.place(costs, 16), 16);
    EXPECT_LE(ms, prev + 1e-9) << "X=" << x;
    prev = ms;
  }
}

TEST(Cplx, ContiguityDecreasesWithX) {
  const auto costs = skewed_costs(256, 73);
  double prev = 1.1;
  for (const double x : {0.0, 50.0, 100.0}) {
    const CplxPolicy policy(x);
    const double frac = contiguity_fraction(policy.place(costs, 32));
    EXPECT_LE(frac, prev + 1e-9) << "X=" << x;
    prev = frac;
  }
}

TEST(Cplx, IntermediateXOnlyMovesSelectedRanksBlocks) {
  const auto costs = skewed_costs(64, 79);
  const ChunkedCdpPolicy cdp;
  const Placement base = cdp.place(costs, 8);
  const Placement out = CplxPolicy::rebalance(costs, base, 8, 25.0);
  // 25% of 8 ranks = 2 selected; blocks on the other 6 must not move.
  std::vector<bool> moved_rank(8, false);
  for (std::size_t b = 0; b < base.size(); ++b)
    if (base[b] != out[b]) {
      moved_rank[static_cast<std::size_t>(base[b])] = true;
      moved_rank[static_cast<std::size_t>(out[b])] = true;
    }
  const auto moved =
      std::count(moved_rank.begin(), moved_rank.end(), true);
  EXPECT_LE(moved, 2);
}

TEST(Cplx, SelectsBothEndsOfLoadOrder) {
  // Construct a CDP-like base where rank 0 is overloaded and rank 3 is
  // underloaded; rebalance with X=50 (2 of 4 ranks) must move work from
  // rank 0 to rank 3.
  const std::vector<double> costs{10, 10, 1, 1, 1, 1, 0.1, 0.1};
  const Placement base{0, 0, 1, 1, 2, 2, 3, 3};
  const Placement out = CplxPolicy::rebalance(costs, base, 4, 50.0);
  const auto loads = rank_loads(costs, out, 4);
  // Ranks 1 and 2 untouched.
  EXPECT_DOUBLE_EQ(loads[1], 2.0);
  EXPECT_DOUBLE_EQ(loads[2], 2.0);
  // LPT over {10,10,0.1,0.1} on ranks {0,3}: one 10 each.
  EXPECT_NEAR(loads[0], 10.1, 0.2);
  EXPECT_NEAR(loads[3], 10.1, 0.2);
}

TEST(Cplx, RebalanceWithXZeroIsIdentity) {
  const auto costs = skewed_costs(32, 83);
  const Placement base = ChunkedCdpPolicy().place(costs, 4);
  EXPECT_EQ(CplxPolicy::rebalance(costs, base, 4, 0.0), base);
}

TEST(Cplx, SingleRankIsIdentity) {
  const std::vector<double> costs{1, 2, 3};
  const Placement base{0, 0, 0};
  EXPECT_EQ(CplxPolicy::rebalance(costs, base, 1, 100.0), base);
}

TEST(Cplx, RebalanceX100ReassignsEveryBlockLikeLpt) {
  // X=100 selects all ranks, so the rebalance is a full LPT re-place:
  // the makespan must match pure LPT's over the same costs.
  const auto costs = skewed_costs(96, 103);
  const Placement base = ChunkedCdpPolicy().place(costs, 12);
  const Placement out = CplxPolicy::rebalance(costs, base, 12, 100.0);
  ASSERT_TRUE(placement_valid(out, costs.size(), 12));
  const LptPolicy lpt;
  EXPECT_DOUBLE_EQ(makespan_of(costs, out, 12),
                   makespan_of(costs, lpt.place(costs, 12), 12));
}

TEST(Cplx, AllEqualCostsStayPerfectlyBalanced) {
  // Uniform costs on a balanced contiguous base: rebalance at any X must
  // not make the makespan worse, and the result must stay a valid
  // placement. (This is the kRebalanceFloor regime in place(), but
  // rebalance() itself must also be safe on flat profiles.)
  const std::vector<double> costs(64, 1.0);
  const Placement base = ChunkedCdpPolicy().place(costs, 8);
  const double before = makespan_of(costs, base, 8);
  for (const double x : {0.0, 25.0, 100.0}) {
    const Placement out = CplxPolicy::rebalance(costs, base, 8, x);
    ASSERT_TRUE(placement_valid(out, costs.size(), 8)) << "X=" << x;
    EXPECT_LE(makespan_of(costs, out, 8), before + 1e-9) << "X=" << x;
  }
  // And the full policy short-circuits below the rebalance floor:
  // uniform costs keep the contiguous placement exactly.
  const CplxPolicy cpl50(50.0);
  EXPECT_EQ(cpl50.place(costs, 8), base);
}

TEST(Cplx, SmallXStillRebalancesAtLeastTwoRanks) {
  // X=1% of 8 ranks rounds to 0 selected, but rebalancing needs a source
  // and a destination: the policy clamps to 2.
  const std::vector<double> costs{8, 8, 1, 1, 1, 1, 1, 1};
  const Placement base{0, 0, 1, 1, 2, 2, 3, 3};
  const Placement out = CplxPolicy::rebalance(costs, base, 4, 1.0);
  const auto loads = rank_loads(costs, out, 4);
  const double before_max = 16.0;
  EXPECT_LT(*std::max_element(loads.begin(), loads.end()), before_max);
}

TEST(Cplx, NameEncodesX) {
  EXPECT_EQ(CplxPolicy(0.0).name(), "cpl0");
  EXPECT_EQ(CplxPolicy(25.0).name(), "cpl25");
  EXPECT_EQ(CplxPolicy(100.0).name(), "cpl100");
}

TEST(ChunkedCdp, CoversAllBlocksAcrossChunks) {
  const auto costs = skewed_costs(300, 89);
  const ChunkedCdpPolicy policy(/*chunk_ranks=*/8);
  const Placement p = policy.place(costs, 24);  // 3 chunks
  ASSERT_TRUE(placement_valid(p, 300, 24));
  // Contiguous overall (chunks are contiguous and internally contiguous).
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_GE(p[i], p[i - 1]);
}

TEST(ChunkedCdp, SingleChunkEqualsCdp) {
  const auto costs = skewed_costs(40, 97);
  const ChunkedCdpPolicy chunked(512);
  const CdpPolicy cdp(CdpMode::kRestricted);
  EXPECT_EQ(chunked.place(costs, 8), cdp.place(costs, 8));
}

TEST(ChunkedCdp, NearCdpQualityOnBalancedCosts) {
  const auto costs = skewed_costs(512, 101);
  const ChunkedCdpPolicy chunked(16);
  const CdpPolicy cdp(CdpMode::kRestricted);
  const double chunked_ms = makespan_of(costs, chunked.place(costs, 64), 64);
  const double cdp_ms = makespan_of(costs, cdp.place(costs, 64), 64);
  // Chunking is approximate but should stay within ~2.5x on exponential
  // costs at 8 blocks/rank granularity (paper: "minimal impact" as an
  // intermediate step for CPLX).
  EXPECT_LE(chunked_ms, 2.5 * cdp_ms);
}

}  // namespace
}  // namespace amr
