#include "amr/placement/lpt.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/placement/exact.hpp"

namespace amr {
namespace {

double makespan_of(std::span<const double> costs, const Placement& p,
                   std::int32_t r) {
  const auto loads = rank_loads(costs, p, r);
  return *std::max_element(loads.begin(), loads.end());
}

TEST(Lpt, PerfectSplitWhenPossible) {
  const LptPolicy policy;
  const std::vector<double> costs{4, 3, 3, 2, 2, 2};  // total 16, 2 ranks
  const Placement p = policy.place(costs, 2);
  EXPECT_DOUBLE_EQ(makespan_of(costs, p, 2), 8.0);
}

TEST(Lpt, ClassicWorstCaseWithinFourThirds) {
  // Graham's bound: makespan <= (4/3 - 1/(3m)) OPT.
  const std::vector<double> costs{5, 5, 4, 4, 3, 3, 3};  // OPT=9 on 3 ranks
  const LptPolicy policy;
  const Placement p = policy.place(costs, 3);
  const double ms = makespan_of(costs, p, 3);
  EXPECT_LE(ms, 9.0 * (4.0 / 3.0));
}

TEST(Lpt, SingleBlockGoesToRankZero) {
  const LptPolicy policy;
  const Placement p = policy.place(std::vector<double>{7.0}, 4);
  EXPECT_EQ(p[0], 0);
}

TEST(Lpt, DeterministicUnderTies) {
  const LptPolicy policy;
  const std::vector<double> costs(16, 1.0);
  const Placement a = policy.place(costs, 4);
  const Placement b = policy.place(costs, 4);
  EXPECT_EQ(a, b);
}

TEST(Lpt, EmptyAndDegenerate) {
  const LptPolicy policy;
  EXPECT_TRUE(policy.place({}, 3).empty());
  const std::vector<double> zero(4, 0.0);
  const Placement p = policy.place(zero, 2);
  EXPECT_TRUE(placement_valid(p, 4, 2));
}

TEST(Lpt, WithinFourThirdsOfExactOnRandomInstances) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 6 + rng.uniform_int(8);
    const auto r = static_cast<std::int32_t>(2 + rng.uniform_int(3));
    std::vector<double> costs(n);
    for (auto& c : costs) c = rng.uniform(0.5, 10.0);
    const LptPolicy policy;
    const Placement p = policy.place(costs, r);
    const double lpt_ms = makespan_of(costs, p, r);
    const ExactResult exact = exact_makespan(costs, r);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(lpt_ms,
              exact.makespan * (4.0 / 3.0 - 1.0 / (3.0 * r)) + 1e-9)
        << "trial " << trial;
    EXPECT_GE(lpt_ms, exact.makespan - 1e-9);
  }
}

TEST(Lpt, AssignSubsetOnlyTouchesTargets) {
  const std::vector<double> costs{5, 1, 4, 2, 3, 6};
  Placement placement{0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> blocks{0, 2, 5};
  const std::vector<std::int32_t> targets{0, 2};
  LptPolicy::assign_subset(costs, blocks, targets, placement);
  // Untouched blocks keep their ranks.
  EXPECT_EQ(placement[1], 0);
  EXPECT_EQ(placement[3], 1);
  EXPECT_EQ(placement[4], 2);
  // Moved blocks land on target ranks only.
  for (const std::int32_t b : blocks)
    EXPECT_TRUE(placement[static_cast<std::size_t>(b)] == 0 ||
                placement[static_cast<std::size_t>(b)] == 2);
  // LPT over {6,5,4} on 2 ranks: 6 alone, {5,4} together -> makespan 9.
  double load0 = 0.0;
  double load2 = 0.0;
  for (const std::int32_t b : blocks) {
    if (placement[static_cast<std::size_t>(b)] == 0)
      load0 += costs[static_cast<std::size_t>(b)];
    else
      load2 += costs[static_cast<std::size_t>(b)];
  }
  EXPECT_DOUBLE_EQ(std::max(load0, load2), 9.0);
}

TEST(Lpt, BeatsBaselineOnSkewedCosts) {
  Rng rng(37);
  std::vector<double> costs(64);
  for (auto& c : costs) c = rng.exponential(1.0);
  const LptPolicy lpt;
  const Placement p = lpt.place(costs, 8);
  const double lpt_ms = makespan_of(costs, p, 8);
  // Contiguous equal-count split.
  Placement contiguous(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i)
    contiguous[i] = static_cast<std::int32_t>(i / 8);
  const double base_ms = makespan_of(costs, contiguous, 8);
  EXPECT_LT(lpt_ms, base_ms);
}

}  // namespace
}  // namespace amr
