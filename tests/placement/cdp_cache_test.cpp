#include "amr/placement/cdp_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "amr/common/rng.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/cplx.hpp"

namespace amr {
namespace {

std::vector<double> costs_for(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = rng.exponential(1.0);
  return costs;
}

Placement trivial_split(std::size_t n, std::int32_t nranks) {
  Placement p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::int32_t>(i) % nranks;
  return p;
}

TEST(CdpSplitCache, SecondLookupHitsAndReturnsStoredPlacement) {
  CdpSplitCache cache;
  const auto costs = costs_for(3, 40);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return trivial_split(costs.size(), 4);
  };
  const Placement a = cache.get_or_compute(costs, 4, 512, compute);
  const Placement b = cache.get_or_compute(costs, 4, 512, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CdpSplitCache, KeyIncludesShapeNotJustCosts) {
  CdpSplitCache cache;
  const auto costs = costs_for(5, 40);
  int computes = 0;
  const auto compute4 = [&] {
    ++computes;
    return trivial_split(costs.size(), 4);
  };
  const auto compute8 = [&] {
    ++computes;
    return trivial_split(costs.size(), 8);
  };
  (void)cache.get_or_compute(costs, 4, 512, compute4);
  (void)cache.get_or_compute(costs, 8, 512, compute8);   // nranks differs
  (void)cache.get_or_compute(costs, 4, 256, compute4);   // chunk differs
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(CdpSplitCache, CostVectorIsVerifiedNotJustHashed) {
  CdpSplitCache cache;
  auto costs = costs_for(7, 40);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return trivial_split(costs.size(), 4);
  };
  (void)cache.get_or_compute(costs, 4, 512, compute);
  costs[10] += 0.5;  // same shape, different content
  (void)cache.get_or_compute(costs, 4, 512, compute);
  EXPECT_EQ(computes, 2);
}

TEST(CdpSplitCache, EvictsLeastRecentlyUsedAtCapacity) {
  CdpSplitCache cache(/*capacity=*/2);
  std::vector<std::vector<double>> inputs;
  for (std::uint64_t s = 0; s < 3; ++s) inputs.push_back(costs_for(s, 20));
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return trivial_split(20, 2);
  };
  (void)cache.get_or_compute(inputs[0], 2, 512, compute);  // miss
  (void)cache.get_or_compute(inputs[1], 2, 512, compute);  // miss
  (void)cache.get_or_compute(inputs[0], 2, 512, compute);  // hit, refresh
  (void)cache.get_or_compute(inputs[2], 2, 512, compute);  // miss, evict [1]
  (void)cache.get_or_compute(inputs[0], 2, 512, compute);  // hit (kept)
  (void)cache.get_or_compute(inputs[1], 2, 512, compute);  // miss (evicted)
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CdpSplitCache, ClearForgetsEverything) {
  CdpSplitCache cache;
  const auto costs = costs_for(11, 30);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return trivial_split(costs.size(), 4);
  };
  (void)cache.get_or_compute(costs, 4, 512, compute);
  cache.clear();
  (void)cache.get_or_compute(costs, 4, 512, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CdpSplitCache, CplxThroughCacheMatchesDirectChunkedCdp) {
  // End-to-end: CplxPolicy(0) routes its base split through the
  // process-wide cache; cached or not, the result must equal what the
  // uncached DP computes.
  const auto costs = costs_for(13, 96);
  const ChunkedCdpPolicy cdp;
  const CplxPolicy cpl0(0.0);
  const Placement direct = cdp.place(costs, 8);
  const Placement first = cpl0.place(costs, 8);   // may miss or hit
  const Placement second = cpl0.place(costs, 8);  // must hit
  EXPECT_EQ(first, direct);
  EXPECT_EQ(second, direct);
}

}  // namespace
}  // namespace amr
