#include "amr/placement/tuner.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amr {
namespace {

CandidateEval make_eval(double x, double imbalance, double remote,
                        double mean_load = 100.0) {
  CandidateEval ce;
  ce.x_percent = x;
  ce.mean_load = mean_load;
  ce.makespan = mean_load * imbalance;
  ce.imbalance = imbalance;
  ce.remote_share = remote;
  return ce;
}

TEST(AutoXTuner, BudgetAdmitsAllCandidatesWhenCheap) {
  const AutoXTuner tuner({});
  TunerState st;
  std::vector<std::int32_t> out;
  // 5 candidates x 100 ns/block x 1000 blocks = 0.1 ms/cand << 50 ms.
  tuner.budget_candidates(st, 1000, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(AutoXTuner, BudgetTrimsToRingAroundLastChoice) {
  TunerConfig cfg;
  cfg.budget_ms = 0.25;  // at 100 ns/block x 1000 blocks: 2 candidates
  const AutoXTuner tuner(cfg);
  TunerState st;
  st.last_choice = 2;
  std::vector<std::int32_t> out;
  tuner.budget_candidates(st, 1000, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{2, 3}));
  // Never trimmed below one candidate, even with an absurd block count.
  tuner.budget_candidates(st, 100'000'000, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{2}));
}

TEST(AutoXTuner, PriorPicksMakespanArgmin) {
  // With the physics prior (w = 0,1,0), the first decision is the
  // imbalance argmin — no cold-start probing phase.
  const AutoXTuner tuner({});
  TunerState st;
  const std::vector<std::int32_t> idx{0, 1, 2};
  const std::vector<CandidateEval> evals{make_eval(0.0, 1.8, 0.1),
                                         make_eval(50.0, 1.2, 0.4),
                                         make_eval(100.0, 1.05, 0.7)};
  const auto d = tuner.choose(st, idx, evals);
  EXPECT_EQ(d.candidate, 2);
  EXPECT_EQ(d.mode, 0);
  EXPECT_DOUBLE_EQ(d.predicted_ns, 100.0 * 1.05);
}

TEST(AutoXTuner, TiesResolveToLowestCandidateIndex) {
  const AutoXTuner tuner({});
  TunerState st;
  const std::vector<std::int32_t> idx{0, 1};
  const std::vector<CandidateEval> evals{make_eval(0.0, 1.2, 0.3),
                                         make_eval(25.0, 1.2, 0.3)};
  EXPECT_EQ(tuner.choose(st, idx, evals).candidate, 0);
}

TEST(AutoXTuner, LearnsRemotePenaltyFromObservations) {
  // Feed epochs where the measured step grows with remote share; the
  // surrogate must learn to prefer the locality-preserving candidate.
  const AutoXTuner tuner({});
  TunerState st;
  const std::vector<std::int32_t> idx{0, 1};
  // Near-equal imbalance, very different locality.
  const std::vector<CandidateEval> evals{make_eval(0.0, 1.10, 0.0),
                                         make_eval(100.0, 1.08, 0.9)};
  for (int epoch = 0; epoch < 30; ++epoch) {
    const auto d = tuner.choose(st, idx, evals);
    const CandidateEval& c = evals[static_cast<std::size_t>(d.slot)];
    // True cost: imbalance plus a remote-message penalty mild enough
    // to keep the error EWMA under the measured-fallback threshold.
    const double measured =
        c.mean_load * (c.imbalance + 0.25 * c.remote_share);
    tuner.observe(st, measured);
  }
  EXPECT_EQ(tuner.choose(st, idx, evals).candidate, 0);
  EXPECT_GT(st.w[2], 0.0);  // learned a positive remote-share weight
}

TEST(AutoXTuner, FallbackProbesEveryCandidateThenLocksArgmin) {
  TunerConfig cfg;
  cfg.candidates = {0.0, 50.0, 100.0};
  // Hair-trigger fallback: this test exercises the probe/lock cycle, not
  // the production trip calibration.
  cfg.error_threshold = 0.25;
  cfg.error_warmup = 1;
  const AutoXTuner tuner(cfg);
  TunerState st;
  std::vector<std::int32_t> idx;
  std::vector<CandidateEval> all{make_eval(0.0, 1.5, 0.1),
                                 make_eval(50.0, 1.2, 0.5),
                                 make_eval(100.0, 1.1, 0.9)};
  // Surrogate-poisoning truth: measured times are wildly off the
  // makespan prior (best candidate is X=50), so err_ewma trips.
  const auto truth = [](std::int32_t cand) {
    return cand == 1 ? 90.0 : 400.0;
  };
  int measured_epochs = 0;
  std::int32_t locked = -1;
  for (int epoch = 0; epoch < 40; ++epoch) {
    tuner.budget_candidates(st, 100, idx);
    std::vector<CandidateEval> evals;
    for (const std::int32_t i : idx)
      evals.push_back(all[static_cast<std::size_t>(i)]);
    const auto d = tuner.choose(st, idx, evals);
    if (d.mode == 1) {
      ++measured_epochs;
      // The lock epoch is the mode-1 decision that flips back to
      // surrogate mode: the probe pass is complete and d names the
      // measured argmin (later cycles may re-probe; every lock must
      // land on the same winner).
      if (st.mode == 0) locked = d.candidate;
    }
    tuner.observe(st, truth(d.candidate));
  }
  EXPECT_GT(st.model_resets, 0);   // fallback round-trip completed
  EXPECT_GT(measured_epochs, 0);
  EXPECT_EQ(locked, 1);            // measured argmin won the probe pass
  EXPECT_EQ(st.fallback_epochs, measured_epochs);
}

TEST(AutoXTuner, DeterministicGivenIdenticalTelemetry) {
  // Two tuners fed the same telemetry stream make identical decisions
  // and land in bit-identical states.
  const AutoXTuner tuner({});
  TunerState a, b;
  const std::vector<std::int32_t> idx{0, 1, 2, 3, 4};
  std::vector<CandidateEval> evals;
  for (int i = 0; i < 5; ++i)
    evals.push_back(make_eval(25.0 * i, 1.5 - 0.08 * i, 0.2 * i));
  for (int epoch = 0; epoch < 20; ++epoch) {
    const auto da = tuner.choose(a, idx, evals);
    const auto db = tuner.choose(b, idx, evals);
    ASSERT_EQ(da.candidate, db.candidate);
    ASSERT_EQ(da.predicted_ns, db.predicted_ns);
    const double measured = 120.0 + 3.0 * epoch;
    tuner.observe(a, measured);
    tuner.observe(b, measured);
  }
  EXPECT_EQ(a.err_ewma, b.err_ewma);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.w[i], b.w[i]);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(a.P[i], b.P[i]);
}

TEST(AutoXTuner, ObserveWithoutPendingDecisionIsIgnored) {
  const AutoXTuner tuner({});
  TunerState st;
  const TunerState before = st;
  tuner.observe(st, 500.0);
  EXPECT_EQ(st.decisions, before.decisions);
  EXPECT_EQ(st.err_ewma, before.err_ewma);
  EXPECT_FALSE(st.have_err);
}

TEST(AutoXTuner, EmptyMeshDefersLearning) {
  // mean_load == 0 (no blocks): a decision is still produced but never
  // becomes a pending observation — no division by zero, no model drift.
  const AutoXTuner tuner({});
  TunerState st;
  const std::vector<std::int32_t> idx{0};
  const std::vector<CandidateEval> evals{make_eval(0.0, 1.0, 0.0, 0.0)};
  const auto d = tuner.choose(st, idx, evals);
  EXPECT_DOUBLE_EQ(d.predicted_ns, 0.0);
  EXPECT_FALSE(st.pending);
  tuner.observe(st, 100.0);
  EXPECT_FALSE(st.have_err);
}

}  // namespace
}  // namespace amr
