#include "amr/placement/zonal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/workloads/synthetic.hpp"

namespace amr {
namespace {

std::vector<double> costs_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  SyntheticCostParams params;
  params.clamp_max_ratio = 3.0;
  return synthetic_costs(n, CostDistribution::kExponential, rng, params);
}

TEST(Zonal, SingleZoneEqualsInner) {
  const auto costs = costs_for(128, 1);
  const ZonalPolicy zonal(make_policy("cpl50"), 512);
  const auto inner = make_policy("cpl50");
  EXPECT_EQ(zonal.place(costs, 64), inner->place(costs, 64));
}

TEST(Zonal, ZonesAreRankDisjointAndOrdered) {
  const auto costs = costs_for(512, 2);
  const ZonalPolicy zonal(make_policy("lpt"), 32);
  const Placement p = zonal.place(costs, 128);  // 4 zones
  ASSERT_TRUE(placement_valid(p, costs.size(), 128));
  // Each block's rank falls in its zone's rank window, and zone windows
  // advance monotonically along the SFC.
  std::int32_t min_zone_seen = 0;
  for (std::size_t b = 0; b < p.size(); ++b) {
    const std::int32_t zone = p[b] / 32;
    EXPECT_GE(zone, min_zone_seen);
    min_zone_seen = std::max(min_zone_seen, zone);
  }
}

TEST(Zonal, NearInnerQualityAtModerateZoning) {
  const auto costs = costs_for(2048, 3);
  const auto inner = make_policy("cpl100");
  const ZonalPolicy zonal(make_policy("cpl100"), 256);
  const double zonal_ms =
      load_metrics(costs, zonal.place(costs, 1024), 1024).makespan;
  const double inner_ms =
      load_metrics(costs, inner->place(costs, 1024), 1024).makespan;
  EXPECT_LE(zonal_ms, 1.35 * inner_ms);
}

TEST(Zonal, RegistryParsesName) {
  const auto p = make_policy("zonal/512/cpl50");
  EXPECT_EQ(p->name(), "zonal/512/cpl50");
  EXPECT_THROW(make_policy("zonal/abc/cpl50"), std::invalid_argument);
  EXPECT_THROW(make_policy("zonal/512"), std::invalid_argument);
  EXPECT_THROW(make_policy("zonal/0/lpt"), std::invalid_argument);
}

TEST(Zonal, NestedZonalComposes) {
  const auto costs = costs_for(1024, 4);
  const auto p = make_policy("zonal/256/zonal/64/lpt");
  const Placement placement = p->place(costs, 512);
  EXPECT_TRUE(placement_valid(placement, costs.size(), 512));
}

TEST(Zonal, EmptyCosts) {
  const ZonalPolicy zonal(make_policy("lpt"), 16);
  EXPECT_TRUE(zonal.place({}, 64).empty());
}

}  // namespace
}  // namespace amr
