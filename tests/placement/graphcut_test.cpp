#include "amr/placement/graphcut.hpp"

#include <gtest/gtest.h>

#include "amr/common/rng.hpp"
#include "amr/mesh/generators.hpp"
#include "amr/placement/baseline.hpp"
#include "amr/workloads/synthetic.hpp"

namespace amr {
namespace {

AmrMesh test_mesh() {
  AmrMesh mesh(RootGrid{4, 4, 4});
  Rng rng(5);
  refine_random(mesh, rng, 0.2, 1, 1);
  return mesh;
}

TEST(GraphCut, ProducesValidBalancedPlacement) {
  const AmrMesh mesh = test_mesh();
  Rng rng(7);
  const auto costs =
      synthetic_costs(mesh.size(), CostDistribution::kGaussian, rng);
  const GraphCutPolicy policy(mesh);
  const Placement p = policy.place(costs, 8);
  ASSERT_TRUE(placement_valid(p, mesh.size(), 8));
  const auto loads = rank_loads(costs, p, 8);
  double total = 0.0;
  for (const double c : costs) total += c;
  const double mean = total / 8.0;
  for (const double l : loads) EXPECT_LE(l, 1.6 * mean);
}

TEST(GraphCut, Deterministic) {
  const AmrMesh mesh = test_mesh();
  Rng rng(9);
  const auto costs =
      synthetic_costs(mesh.size(), CostDistribution::kGaussian, rng);
  const GraphCutPolicy policy(mesh);
  EXPECT_EQ(policy.place(costs, 8), policy.place(costs, 8));
}

TEST(GraphCut, CutsLessThanScatteredPlacement) {
  const AmrMesh mesh = test_mesh();
  const std::vector<double> uniform(mesh.size(), 1.0);
  const GraphCutPolicy policy(mesh);
  const Placement p = policy.place(uniform, 8);
  Placement scattered(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    scattered[b] = static_cast<std::int32_t>(b % 8);
  EXPECT_LT(edge_cut_bytes(mesh, p), edge_cut_bytes(mesh, scattered));
}

TEST(GraphCut, CompetitiveWithContiguousOnCut) {
  // Region growing + refinement should not be much worse than the SFC
  // baseline at its own game (and usually better).
  const AmrMesh mesh = test_mesh();
  const std::vector<double> uniform(mesh.size(), 1.0);
  const GraphCutPolicy policy(mesh);
  const BaselinePolicy baseline;
  const std::int64_t cut_graph =
      edge_cut_bytes(mesh, policy.place(uniform, 8));
  const std::int64_t cut_base =
      edge_cut_bytes(mesh, baseline.place(uniform, 8));
  EXPECT_LE(cut_graph, cut_base * 5 / 4);
}

TEST(GraphCut, SingleRankHasZeroCut) {
  const AmrMesh mesh = test_mesh();
  const std::vector<double> uniform(mesh.size(), 1.0);
  const GraphCutPolicy policy(mesh);
  const Placement p = policy.place(uniform, 1);
  EXPECT_EQ(edge_cut_bytes(mesh, p), 0);
}

TEST(EdgeCutBytes, CountsOnlyCrossingEdges) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  const MessageSizeModel sizes;
  EXPECT_EQ(edge_cut_bytes(mesh, {0, 0}, sizes), 0);
  EXPECT_EQ(edge_cut_bytes(mesh, {0, 1}, sizes),
            2 * sizes.bytes(NeighborKind::kFace));  // directed both ways
}

}  // namespace
}  // namespace amr
