#include "amr/placement/cdp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/placement/baseline.hpp"

namespace amr {
namespace {

double makespan_of(std::span<const double> costs, const Placement& p,
                   std::int32_t r) {
  const auto loads = rank_loads(costs, p, r);
  return *std::max_element(loads.begin(), loads.end());
}

bool is_contiguous(const Placement& p) {
  for (std::size_t i = 1; i < p.size(); ++i)
    if (p[i] < p[i - 1]) return false;
  return true;
}

TEST(CdpRestricted, SegmentSizesAreFloorOrCeil) {
  const CdpPolicy cdp(CdpMode::kRestricted);
  Rng rng(41);
  std::vector<double> costs(22);
  for (auto& c : costs) c = rng.uniform(0.1, 5.0);
  const auto sizes = cdp.segment_sizes(costs, 5);
  ASSERT_EQ(sizes.size(), 5u);
  std::int32_t total = 0;
  for (const auto s : sizes) {
    EXPECT_TRUE(s == 4 || s == 5);  // floor(22/5)=4, ceil=5
    total += s;
  }
  EXPECT_EQ(total, 22);
  // Exactly 22 mod 5 = 2 ceil segments.
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 5), 2);
}

TEST(CdpRestricted, ContiguousPlacement) {
  const CdpPolicy cdp(CdpMode::kRestricted);
  Rng rng(43);
  std::vector<double> costs(30);
  for (auto& c : costs) c = rng.exponential(1.0);
  const Placement p = cdp.place(costs, 7);
  ASSERT_TRUE(placement_valid(p, 30, 7));
  EXPECT_TRUE(is_contiguous(p));
}

TEST(CdpRestricted, OptimalAmongRestrictedOrderings) {
  // Brute-force all placements of ceil/floor segments for a small case
  // and verify the DP finds the best.
  const std::vector<double> costs{9, 1, 1, 1, 8, 1, 1, 1, 7, 2};
  const CdpPolicy cdp(CdpMode::kRestricted);
  const auto sizes = cdp.segment_sizes(costs, 4);
  const double dp_ms = segments_makespan(costs, sizes);

  // All orderings with two 3-segments and two 2-segments.
  double best = 1e18;
  std::vector<std::int32_t> perm{3, 3, 2, 2};
  std::sort(perm.begin(), perm.end());
  do {
    best = std::min(best, segments_makespan(costs, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_DOUBLE_EQ(dp_ms, best);
}

TEST(CdpRestricted, NeverWorseThanBaselineSplit) {
  Rng rng(47);
  const CdpPolicy cdp(CdpMode::kRestricted);
  const BaselinePolicy baseline;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 10 + rng.uniform_int(60);
    const auto r = static_cast<std::int32_t>(2 + rng.uniform_int(8));
    std::vector<double> costs(n);
    for (auto& c : costs) c = rng.exponential(1.0);
    const double cdp_ms = makespan_of(costs, cdp.place(costs, r), r);
    const double base_ms =
        makespan_of(costs, baseline.place(costs, r), r);
    // Baseline's split is one of the orderings CDP explores.
    EXPECT_LE(cdp_ms, base_ms + 1e-9) << "trial " << trial;
  }
}

TEST(CdpRestricted, FewerBlocksThanRanks) {
  const CdpPolicy cdp(CdpMode::kRestricted);
  const std::vector<double> costs{3.0, 1.0, 2.0};
  const Placement p = cdp.place(costs, 8);
  ASSERT_TRUE(placement_valid(p, 3, 8));
  EXPECT_TRUE(is_contiguous(p));
  // floor = 0, ceil = 1: three ranks get one block each.
  const auto loads = rank_loads(costs, p, 8);
  EXPECT_EQ(std::count(loads.begin(), loads.end(), 0.0), 5);
}

TEST(CdpRestricted, DivisibleCaseSingleSizeOnly) {
  const CdpPolicy cdp(CdpMode::kRestricted);
  const std::vector<double> costs(12, 1.0);
  const auto sizes = cdp.segment_sizes(costs, 4);
  for (const auto s : sizes) EXPECT_EQ(s, 3);
}

TEST(CdpGeneral, MatchesHandComputedDp) {
  // Costs 2,3,4,5,6 on 2 ranks: optimal contiguous split {2,3,4|5,6} = 11
  // vs {2,3,4,5|6}=14 vs {2,3|4,5,6}=15 -> 11? check {2,3,4|5,6}: 9|11.
  const std::vector<double> costs{2, 3, 4, 5, 6};
  const CdpPolicy general(CdpMode::kGeneral);
  const auto sizes = general.segment_sizes(costs, 2);
  EXPECT_DOUBLE_EQ(segments_makespan(costs, sizes), 11.0);
}

TEST(CdpGeneral, AllowsEmptySegments) {
  const std::vector<double> costs{10.0};
  const CdpPolicy general(CdpMode::kGeneral);
  const auto sizes = general.segment_sizes(costs, 3);
  EXPECT_DOUBLE_EQ(segments_makespan(costs, sizes), 10.0);
}

TEST(CdpBinarySearch, MatchesGeneralDpOnRandomInstances) {
  Rng rng(53);
  const CdpPolicy general(CdpMode::kGeneral);
  const CdpPolicy bsearch(CdpMode::kBinarySearch);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng.uniform_int(40);
    const auto r = static_cast<std::int32_t>(2 + rng.uniform_int(6));
    std::vector<double> costs(n);
    for (auto& c : costs) c = rng.uniform(0.1, 10.0);
    const double g =
        segments_makespan(costs, general.segment_sizes(costs, r));
    const double b =
        segments_makespan(costs, bsearch.segment_sizes(costs, r));
    EXPECT_NEAR(g, b, 1e-6 * g) << "trial " << trial;
  }
}

TEST(CdpBinarySearch, GeneralNeverWorseThanRestricted) {
  Rng rng(59);
  const CdpPolicy general(CdpMode::kGeneral);
  const CdpPolicy restricted(CdpMode::kRestricted);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8 + rng.uniform_int(40);
    const auto r = static_cast<std::int32_t>(2 + rng.uniform_int(6));
    std::vector<double> costs(n);
    for (auto& c : costs) c = rng.exponential(2.0);
    const double g =
        segments_makespan(costs, general.segment_sizes(costs, r));
    const double rs =
        segments_makespan(costs, restricted.segment_sizes(costs, r));
    EXPECT_LE(g, rs + 1e-9);
  }
}

TEST(SegmentsToPlacement, RoundTrips) {
  const std::vector<std::int32_t> sizes{2, 0, 3};
  const Placement p = segments_to_placement(sizes, 5);
  const Placement expect{0, 0, 2, 2, 2};
  EXPECT_EQ(p, expect);
}

TEST(CdpNames, DistinguishModes) {
  EXPECT_EQ(CdpPolicy(CdpMode::kRestricted).name(), "cdp");
  EXPECT_EQ(CdpPolicy(CdpMode::kGeneral).name(), "cdp-general");
  EXPECT_EQ(CdpPolicy(CdpMode::kBinarySearch).name(), "cdp-bsearch");
}

}  // namespace
}  // namespace amr
