// Parameterized property sweeps across all placement policies: every
// policy, on every cost distribution and scale in the sweep, must produce
// a valid placement, be deterministic, and respect basic dominance
// relations (cost-aware policies never lose to baseline on makespan).
#include <gtest/gtest.h>

#include <algorithm>

#include "amr/common/rng.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/registry.hpp"
#include "amr/workloads/synthetic.hpp"

namespace amr {
namespace {

struct PropertyCase {
  std::string policy;
  CostDistribution dist;
  std::size_t blocks;
  std::int32_t ranks;
};

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  std::string name = info.param.policy + "_" +
                     to_string(info.param.dist) + "_" +
                     std::to_string(info.param.blocks) + "b_" +
                     std::to_string(info.param.ranks) + "r";
  for (auto& c : name)
    if (c == '-' || c == '/') c = '_';
  return name;
}

class PlacementProperties : public testing::TestWithParam<PropertyCase> {};

TEST_P(PlacementProperties, ValidDeterministicAndDominatesBaseline) {
  const PropertyCase& pc = GetParam();
  Rng rng(hash64(pc.blocks * 131 + static_cast<std::uint64_t>(pc.ranks)));
  const auto costs = synthetic_costs(pc.blocks, pc.dist, rng);

  const PolicyPtr policy = make_policy(pc.policy);
  const Placement p = policy->place(costs, pc.ranks);
  ASSERT_TRUE(placement_valid(p, pc.blocks, pc.ranks));

  // Determinism.
  EXPECT_EQ(p, policy->place(costs, pc.ranks));

  // Dominance: LPT and exact-contiguous policies never lose to the
  // cost-blind baseline split; chunked/hybrid policies carry Graham's
  // 4/3 rebalance factor in the worst case.
  if (pc.policy != "baseline") {
    const PolicyPtr baseline = make_policy("baseline");
    const LoadMetrics ours = load_metrics(costs, p, pc.ranks);
    const LoadMetrics base =
        load_metrics(costs, baseline->place(costs, pc.ranks), pc.ranks);
    const bool strict = pc.policy == "lpt" || pc.policy == "cdp" ||
                        pc.policy == "cdp-bsearch";
    const double slack = strict ? 1.0 : 4.0 / 3.0;
    EXPECT_LE(ours.makespan, slack * base.makespan + 1e-9);
  }

  // Makespan is bounded below by mean load and the largest block.
  const LoadMetrics m = load_metrics(costs, p, pc.ranks);
  const double largest = *std::max_element(costs.begin(), costs.end());
  EXPECT_GE(m.makespan + 1e-9, m.mean_load);
  EXPECT_GE(m.makespan + 1e-9, largest);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::string> policies{
      "baseline", "lpt", "cdp", "cdp-bsearch", "chunked-cdp/8",
      "cpl0",     "cpl25", "cpl50", "cpl75", "cpl100"};
  const std::vector<CostDistribution> dists{
      CostDistribution::kExponential, CostDistribution::kGaussian,
      CostDistribution::kPowerLaw};
  const std::vector<std::pair<std::size_t, std::int32_t>> shapes{
      {64, 16}, {130, 32}, {47, 64}};
  for (const auto& policy : policies)
    for (const auto dist : dists)
      for (const auto& [blocks, ranks] : shapes)
        cases.push_back({policy, dist, blocks, ranks});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlacementProperties,
                         testing::ValuesIn(property_cases()), case_name);

// CPLX tradeoff property: as X rises, contiguity falls and makespan falls
// (weakly), across distributions.
class CplxTradeoff
    : public testing::TestWithParam<CostDistribution> {};

TEST_P(CplxTradeoff, XControlsBothSidesOfTheTradeoff) {
  Rng rng(12345);
  const auto costs = synthetic_costs(256, GetParam(), rng);
  const std::int32_t ranks = 32;

  std::vector<double> makespans;
  std::vector<double> contiguity;
  for (const int x : {0, 25, 50, 75, 100}) {
    const PolicyPtr policy = make_policy("cpl" + std::to_string(x));
    const Placement p = policy->place(costs, ranks);
    makespans.push_back(load_metrics(costs, p, ranks).makespan);
    contiguity.push_back(contiguity_fraction(p));
  }
  // Endpoints: X=100 at least as balanced as X=0 and no more contiguous.
  EXPECT_LE(makespans.back(), makespans.front() + 1e-9);
  EXPECT_LE(contiguity.back(), contiguity.front() + 1e-9);
  // Intermediate X must capture most of the makespan gain (paper:
  // X=25 captures the bulk of LPT's benefit).
  const double gain_full = makespans.front() - makespans.back();
  if (gain_full > 1e-9) {
    const double gain_at_50 = makespans.front() - makespans[2];
    EXPECT_GE(gain_at_50, 0.5 * gain_full);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, CplxTradeoff,
    testing::Values(CostDistribution::kExponential,
                    CostDistribution::kGaussian,
                    CostDistribution::kPowerLaw),
    [](const testing::TestParamInfo<CostDistribution>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(Registry, RejectsUnknownNames) {
  EXPECT_THROW(make_policy("nope"), std::invalid_argument);
  EXPECT_THROW(make_policy("cpl101"), std::invalid_argument);
  EXPECT_THROW(make_policy("cpl-5"), std::invalid_argument);
  EXPECT_THROW(make_policy("cplx"), std::invalid_argument);
}

TEST(Registry, EvaluationLineupMatchesPaper) {
  const auto names = evaluation_policy_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "baseline");
  for (const auto& n : names) EXPECT_NO_THROW(make_policy(n));
}

TEST(Registry, ChunkedCdpParsesChunkSize) {
  const PolicyPtr p = make_policy("chunked-cdp/64");
  EXPECT_EQ(p->name(), "chunked-cdp/64");
}

}  // namespace
}  // namespace amr
