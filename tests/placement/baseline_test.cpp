#include "amr/placement/baseline.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

TEST(Baseline, EvenSplit) {
  const BaselinePolicy policy;
  const std::vector<double> costs(12, 1.0);
  const Placement p = policy.place(costs, 4);
  ASSERT_TRUE(placement_valid(p, 12, 4));
  const auto loads = rank_loads(costs, p, 4);
  for (const double l : loads) EXPECT_DOUBLE_EQ(l, 3.0);
}

TEST(Baseline, RemainderGoesToFirstRanks) {
  const BaselinePolicy policy;
  const std::vector<double> costs(10, 1.0);
  const Placement p = policy.place(costs, 4);
  const auto loads = rank_loads(costs, p, 4);
  // ceil(10/4)=3 for first 2 ranks, floor=2 for the rest.
  EXPECT_DOUBLE_EQ(loads[0], 3.0);
  EXPECT_DOUBLE_EQ(loads[1], 3.0);
  EXPECT_DOUBLE_EQ(loads[2], 2.0);
  EXPECT_DOUBLE_EQ(loads[3], 2.0);
}

TEST(Baseline, ContiguousAssignment) {
  const BaselinePolicy policy;
  const std::vector<double> costs(17, 1.0);
  const Placement p = policy.place(costs, 5);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_GE(p[i], p[i - 1]);
    EXPECT_LE(p[i] - p[i - 1], 1);
  }
}

TEST(Baseline, IgnoresCosts) {
  const BaselinePolicy policy;
  std::vector<double> uniform(8, 1.0);
  std::vector<double> skewed{100, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_EQ(policy.place(uniform, 2), policy.place(skewed, 2));
}

TEST(Baseline, MoreRanksThanBlocks) {
  const BaselinePolicy policy;
  const std::vector<double> costs(3, 1.0);
  const Placement p = policy.place(costs, 8);
  ASSERT_TRUE(placement_valid(p, 3, 8));
  // One block per rank on the first 3 ranks.
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[1], 1);
  EXPECT_EQ(p[2], 2);
}

TEST(Baseline, EmptyInput) {
  const BaselinePolicy policy;
  const Placement p = policy.place({}, 4);
  EXPECT_TRUE(p.empty());
}

TEST(Baseline, SingleRankTakesAll) {
  const BaselinePolicy policy;
  const std::vector<double> costs(5, 2.0);
  const Placement p = policy.place(costs, 1);
  for (const auto r : p) EXPECT_EQ(r, 0);
}

TEST(RankLoads, SumsPerRank) {
  const std::vector<double> costs{1, 2, 3, 4};
  const Placement p{0, 1, 0, 1};
  const auto loads = rank_loads(costs, p, 2);
  EXPECT_DOUBLE_EQ(loads[0], 4.0);
  EXPECT_DOUBLE_EQ(loads[1], 6.0);
}

TEST(PlacementValid, DetectsBadRank) {
  EXPECT_TRUE(placement_valid({0, 1}, 2, 2));
  EXPECT_FALSE(placement_valid({0, 2}, 2, 2));
  EXPECT_FALSE(placement_valid({0, -1}, 2, 2));
  EXPECT_FALSE(placement_valid({0}, 2, 2));
}

}  // namespace
}  // namespace amr
