# Asserts the serve byte-identity contract end-to-end through the
# amrcplx binary: one mixed job file (policy sweep, a fault scenario, an
# overlap-mode tenant, query lines) must produce byte-identical stdout
# whether tenants run one at a time to completion, finely interleaved
# across a wide pool, or forcibly evicted to snapshots and restored
# around every slice (--max-resident=0). Each job's report block must
# also be verbatim the standalone `amrcplx run` stdout for the same
# flags — that is the "standalone or multiplexed, same bytes" promise —
# and eviction spills must not outlive their jobs.
#
# Invoked from bench/CMakeLists.txt; -DAMRCPLX names the amrcplx
# binary, -DWORK_DIR a scratch directory for the job file and spills.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(jobs "${WORK_DIR}/jobs.txt")
file(WRITE "${jobs}" "# serve determinism fleet
{\"id\": \"a\", \"policy\": \"cpl50\", \"ranks\": 64, \"steps\": 10}
{\"id\": \"b\", \"policy\": \"lpt\", \"ranks\": 64, \"steps\": 10}
{\"id\": \"c\", \"policy\": \"cpl50\", \"ranks\": 64, \"steps\": 10, \"faults\": 1}
{\"id\": \"d\", \"policy\": \"cpl50\", \"ranks\": 64, \"steps\": 10, \"execution\": \"overlap\"}
query a select sum(dur_ns) as total from phases group by step order by step limit 5
query c select * from comm where step == 5 order by rank limit 4
")

# Scheduler shapes under test: run-to-completion, fine interleaving on a
# wide pool, and forced eviction/restore around every slice.
execute_process(
  COMMAND "${AMRCPLX}" serve --file=${jobs} --quantum-steps=1000000
  OUTPUT_VARIABLE out_whole RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run-to-completion serve failed (exit ${rc})")
endif()

execute_process(
  COMMAND "${AMRCPLX}" serve --file=${jobs} --quantum-steps=3
          --serve-jobs=4
  OUTPUT_VARIABLE out_sliced RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "interleaved serve failed (exit ${rc})")
endif()
if(NOT out_whole STREQUAL out_sliced)
  message(FATAL_ERROR "stdout differs between run-to-completion and "
                      "interleaved scheduling: the serve determinism "
                      "contract is broken")
endif()

execute_process(
  COMMAND "${AMRCPLX}" serve --file=${jobs} --quantum-steps=2
          --serve-jobs=2 --max-resident=0 --spill-dir=${WORK_DIR}
  OUTPUT_VARIABLE out_evicted RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "evicting serve failed (exit ${rc})")
endif()
if(NOT out_whole STREQUAL out_evicted)
  message(FATAL_ERROR "stdout differs when tenants are evicted to "
                      "snapshots and restored mid-run: eviction is "
                      "visible in job output")
endif()
file(GLOB spills "${WORK_DIR}/serve_spill_*.amrs")
if(NOT spills STREQUAL "")
  message(FATAL_ERROR "eviction spills leaked after drain: ${spills}")
endif()

# Every job block must be verbatim what `amrcplx run` prints standalone,
# fault scenario included.
execute_process(
  COMMAND "${AMRCPLX}" run --policy=cpl50 --ranks=64 --steps=10
  OUTPUT_VARIABLE out_run_a RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "standalone run failed (exit ${rc})")
endif()
string(FIND "${out_whole}" "== job 0 ==\n${out_run_a}" at)
if(at EQUAL -1)
  message(FATAL_ERROR "job a's serve block is not byte-identical to the "
                      "standalone `amrcplx run` stdout")
endif()

execute_process(
  COMMAND "${AMRCPLX}" run --policy=cpl50 --ranks=64 --steps=10
          --faults=1
  OUTPUT_VARIABLE out_run_c RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "standalone fault run failed (exit ${rc})")
endif()
string(FIND "${out_whole}" "== job 2 ==\n${out_run_c}" at)
if(at EQUAL -1)
  message(FATAL_ERROR "fault job c's serve block is not byte-identical "
                      "to the standalone `amrcplx run --faults=1` stdout")
endif()

# A fleet rerun with sharing disabled must change counters only, never
# bytes (the content-keyed store's correctness guarantee).
execute_process(
  COMMAND "${AMRCPLX}" serve --file=${jobs} --quantum-steps=3
          --serve-jobs=4 --no-share
  OUTPUT_VARIABLE out_private RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "no-share serve failed (exit ${rc})")
endif()
if(NOT out_whole STREQUAL out_private)
  message(FATAL_ERROR "disabling cross-tenant plan sharing changed "
                      "stdout: shared plans are not byte-identical to "
                      "private builds")
endif()

# Bad lines are reported and survived: the server keeps draining the
# good jobs and exits nonzero.
set(badjobs "${WORK_DIR}/badjobs.txt")
file(WRITE "${badjobs}" "{\"polcy\": \"lpt\"}
{\"id\": \"ok\", \"ranks\": 64, \"steps\": 4}
")
execute_process(
  COMMAND "${AMRCPLX}" serve --file=${badjobs} --quantum-steps=1000000
  OUTPUT_VARIABLE out_bad RESULT_VARIABLE rc ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve exited 0 despite a rejected job line")
endif()
string(FIND "${out_bad}" "unknown field" at)
if(at EQUAL -1)
  message(FATAL_ERROR "rejected job line produced no diagnostic")
endif()
# The bad line never became a tenant, so the surviving job is id 0.
string(FIND "${out_bad}" "== job 0 ==" at)
if(at EQUAL -1)
  message(FATAL_ERROR "a bad line stopped the server from running the "
                      "remaining jobs")
endif()
