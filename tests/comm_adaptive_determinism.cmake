# Asserts the adaptive-communication determinism contract end-to-end:
#   1. --comm-adaptive --send-priority stdout is byte-identical across
#      --jobs (the sweep runtime must not perturb adaptive plans or the
#      straggler-priority schedule),
#   2. adaptive stdout is byte-identical across --des-shards >= 1 (the
#      sharded engine makes the same per-pair packing decisions; this
#      leg drives the concurrent shard threads under the
#      AMR_SANITIZE=thread tree),
#   3. an --overlap --comm-adaptive --send-priority run restored from
#      any mid-run snapshot continues byte-identically (last_straggler
#      and the packing axes ride in the snapshot), and
#   4. snapshots written under the adaptive axes refuse to restore into
#      runs without them (config fingerprint mismatch), naming the
#      offending axis.
# Adaptive-off byte-identity to the legacy path is covered by every
# other determinism script, which all run with the new flags off.
# Invoked from bench/CMakeLists.txt; -DSEDOV names the sedov_sim binary,
# -DWORK_DIR a scratch directory for checkpoint files.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24 --comm-adaptive
          --send-priority --jobs=1
  OUTPUT_VARIABLE out_j1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24 --comm-adaptive
          --send-priority --jobs=4
  OUTPUT_VARIABLE out_j4 RESULT_VARIABLE rc4)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "adaptive --jobs=1 run failed (exit ${rc1})")
endif()
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "adaptive --jobs=4 run failed (exit ${rc4})")
endif()
if(NOT out_j1 STREQUAL out_j4)
  message(FATAL_ERROR "stdout differs between --jobs=1 and --jobs=4 "
                      "under --comm-adaptive --send-priority: adaptive "
                      "plans are not deterministic across the sweep "
                      "runtime")
endif()

# Sharded DES must make identical packing decisions for every shard
# count >= 1 (BSP execution; this is the concurrency leg under tsan).
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --comm-adaptive --send-priority
          --des-shards=1
  OUTPUT_VARIABLE out_s1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --comm-adaptive --send-priority
          --des-shards=2
  OUTPUT_VARIABLE out_s2 RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "adaptive sharded runs failed "
                      "(exit ${rc1} / ${rc2})")
endif()
if(NOT out_s1 STREQUAL out_s2)
  message(FATAL_ERROR "stdout differs between --des-shards=1 and "
                      "--des-shards=2 under --comm-adaptive: sharded "
                      "execution changes adaptive packing")
endif()

# Overlap + adaptive + priority across checkpoint/restore, with a fault
# window so the straggler rank actually moves mid-run.
set(mode --overlap --comm-adaptive --send-priority --faults=2)
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode}
  OUTPUT_VARIABLE out_full RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted adaptive overlap run failed "
                      "(exit ${rc})")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode}
          --checkpoint-every=7 --checkpoint-dir=${WORK_DIR}
  OUTPUT_VARIABLE out_ck RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing adaptive overlap run failed "
                      "(exit ${rc})")
endif()
if(NOT out_full STREQUAL out_ck)
  message(FATAL_ERROR "writing checkpoints changed adaptive overlap "
                      "stdout")
endif()

file(GLOB snapshots "${WORK_DIR}/ckpt_*.amrs")
if(snapshots STREQUAL "")
  message(FATAL_ERROR "checkpointing run wrote no snapshots")
endif()
foreach(snapshot IN LISTS snapshots)
  execute_process(
    COMMAND "${SEDOV}" cpl50 32 24 ${mode} --restore=${snapshot}
    OUTPUT_VARIABLE out_restored RESULT_VARIABLE rc
    ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "restore from ${snapshot} failed (exit ${rc})")
  endif()
  if(NOT out_full STREQUAL out_restored)
    message(FATAL_ERROR "stdout differs between the uninterrupted "
                        "adaptive overlap run and the run restored from "
                        "${snapshot}: the adaptive-comm determinism "
                        "contract is broken")
  endif()
endforeach()

# The adaptive axes are part of the config fingerprint: dropping either
# flag must refuse the restore, naming the mismatched axis.
list(GET snapshots 0 snapshot)
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --overlap --send-priority --faults=2
          --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring an adaptive snapshot without "
                      "--comm-adaptive unexpectedly succeeded")
endif()
if(NOT err MATCHES "adaptive packing")
  message(FATAL_ERROR "mismatched-adaptive restore failed without "
                      "naming adaptive packing: ${err}")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --overlap --comm-adaptive --faults=2
          --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring a send-priority snapshot without "
                      "--send-priority unexpectedly succeeded")
endif()
if(NOT err MATCHES "send priority")
  message(FATAL_ERROR "mismatched-priority restore failed without "
                      "naming send priority: ${err}")
endif()
