#include "amr/sim/exchange_bench.hpp"

#include <gtest/gtest.h>

#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"

namespace amr {
namespace {

ExchangeRoundsConfig small_config() {
  ExchangeRoundsConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.rounds = 10;
  cfg.warmup_rounds = 2;
  cfg.fabric.remote_jitter = 0;
  return cfg;
}

AmrMesh test_mesh() {
  AmrMesh mesh(RootGrid{4, 2, 2});
  Rng rng(41);
  refine_random(mesh, rng, 0.3, 1, 1);
  return mesh;
}

TEST(ExchangeRounds, ProducesRequestedRounds) {
  const AmrMesh mesh = test_mesh();
  const auto policy = make_policy("baseline");
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = policy->place(uniform, 16);
  const auto result = run_exchange_rounds(mesh, p, small_config());
  EXPECT_EQ(result.round_latency_ms.size() + result.rounds_discarded, 10u);
  EXPECT_EQ(result.rank_comm_ms.size(), 16u);
  for (const double latency : result.round_latency_ms)
    EXPECT_GT(latency, 0.0);
}

TEST(ExchangeRounds, DeterministicForSameSeed) {
  const AmrMesh mesh = test_mesh();
  const auto policy = make_policy("baseline");
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = policy->place(uniform, 16);
  const auto a = run_exchange_rounds(mesh, p, small_config());
  const auto b = run_exchange_rounds(mesh, p, small_config());
  EXPECT_EQ(a.round_latency_ms, b.round_latency_ms);
}

TEST(ExchangeRounds, OutlierCutoffDiscardsRounds) {
  const AmrMesh mesh = test_mesh();
  const auto policy = make_policy("baseline");
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = policy->place(uniform, 16);
  ExchangeRoundsConfig cfg = small_config();
  cfg.outlier_cutoff = 1;  // 1 ns: everything is an outlier
  const auto result = run_exchange_rounds(mesh, p, cfg);
  EXPECT_EQ(result.round_latency_ms.size(), 0u);
  EXPECT_EQ(result.rounds_discarded, 10);
}

TEST(ExchangeRounds, ComputeCallbackFeedsSchedule) {
  const AmrMesh mesh = test_mesh();
  const auto policy = make_policy("baseline");
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = policy->place(uniform, 16);
  ExchangeRoundsConfig cfg = small_config();
  cfg.compute_cost = [](std::size_t, std::int32_t, Rng&) {
    return ms(1.0);
  };
  const auto with_compute = run_exchange_rounds(mesh, p, cfg);
  const auto without = run_exchange_rounds(mesh, p, small_config());
  ASSERT_FALSE(with_compute.round_latency_ms.empty());
  ASSERT_FALSE(without.round_latency_ms.empty());
  EXPECT_GT(with_compute.round_latency_ms[0],
            without.round_latency_ms[0]);
}

TEST(ExchangeRounds, ScatteredPlacementSendsMoreRemote) {
  const AmrMesh mesh = test_mesh();
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement contiguous =
      make_policy("baseline")->place(uniform, 16);
  Placement scattered(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    scattered[b] = static_cast<std::int32_t>(b % 16);
  const auto local = run_exchange_rounds(mesh, contiguous, small_config());
  const auto remote = run_exchange_rounds(mesh, scattered, small_config());
  EXPECT_GT(remote.fabric_stats.remote_msgs,
            local.fabric_stats.remote_msgs);
}

}  // namespace
}  // namespace amr
