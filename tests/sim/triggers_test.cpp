#include "amr/sim/triggers.hpp"

#include <gtest/gtest.h>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/workloads/cooling.hpp"

namespace amr {
namespace {

TEST(RebalanceTrigger, MeshChangeAlwaysFires) {
  for (const auto kind :
       {RebalanceTriggerKind::kOnMeshChange, RebalanceTriggerKind::kPeriodic,
        RebalanceTriggerKind::kImbalance}) {
    RebalanceTrigger t;
    t.kind = kind;
    EXPECT_TRUE(t.fire(true, 3, 1.0));
  }
}

TEST(RebalanceTrigger, OnMeshChangeOnlyFiresOnChange) {
  const RebalanceTrigger t;
  EXPECT_FALSE(t.fire(false, 10, 99.0));
}

TEST(RebalanceTrigger, PeriodicFiresOnPeriod) {
  RebalanceTrigger t;
  t.kind = RebalanceTriggerKind::kPeriodic;
  t.period = 5;
  EXPECT_FALSE(t.fire(false, 0, 1.0));
  EXPECT_FALSE(t.fire(false, 4, 1.0));
  EXPECT_TRUE(t.fire(false, 5, 1.0));
  EXPECT_TRUE(t.fire(false, 10, 1.0));
  EXPECT_FALSE(t.fire(false, 11, 1.0));
}

TEST(RebalanceTrigger, ImbalanceThreshold) {
  RebalanceTrigger t;
  t.kind = RebalanceTriggerKind::kImbalance;
  t.imbalance_threshold = 1.5;
  EXPECT_FALSE(t.fire(false, 1, 1.4));
  EXPECT_TRUE(t.fire(false, 1, 1.6));
}

TEST(RebalanceTrigger, ImbalanceTriggerRebalancesStaticMesh) {
  // Cooling workload: mesh refines once at step 0, then static. With the
  // default trigger there is exactly one redistribution; the imbalance
  // trigger fires repeatedly because the initial uniform-cost placement
  // leaves the clump-heavy ranks overloaded until telemetry kicks in.
  auto lb_count = [](RebalanceTrigger trigger) {
    SimulationConfig cfg;
    cfg.nranks = 16;
    cfg.ranks_per_node = 4;
    cfg.root_grid = RootGrid{4, 4, 4};
    cfg.steps = 10;
    cfg.fabric.remote_jitter = 0;
    cfg.collect_telemetry = false;
    cfg.trigger = trigger;
    CoolingParams cp;
    cp.max_level = 1;
    CoolingWorkload cooling(cp);
    const auto policy = make_policy("cpl100");
    Simulation sim(cfg, cooling, *policy);
    return sim.run().lb_invocations;
  };
  RebalanceTrigger imbalance;
  imbalance.kind = RebalanceTriggerKind::kImbalance;
  imbalance.imbalance_threshold = 1.05;
  EXPECT_EQ(lb_count(RebalanceTrigger{}), 1);
  EXPECT_GT(lb_count(imbalance), 1);
}

TEST(RebalanceTrigger, PeriodicTriggerAddsInvocations) {
  RebalanceTrigger periodic;
  periodic.kind = RebalanceTriggerKind::kPeriodic;
  periodic.period = 3;

  SimulationConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.root_grid = RootGrid{4, 4, 4};
  cfg.steps = 10;
  cfg.fabric.remote_jitter = 0;
  cfg.collect_telemetry = false;
  cfg.trigger = periodic;
  CoolingParams cp;
  cp.max_level = 1;
  CoolingWorkload cooling(cp);
  const auto policy = make_policy("baseline");
  Simulation sim(cfg, cooling, *policy);
  // Mesh change at step 0, plus steps 3, 6, 9.
  EXPECT_EQ(sim.run().lb_invocations, 4);
}

}  // namespace
}  // namespace amr
