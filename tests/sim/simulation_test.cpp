#include "amr/sim/simulation.hpp"

#include <gtest/gtest.h>

#include "amr/placement/registry.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.root_grid = RootGrid{4, 2, 2};  // one block per rank initially
  cfg.steps = 12;
  cfg.fabric.remote_jitter = 0;  // determinism for equality checks
  return cfg;
}

SedovParams small_sedov() {
  SedovParams p;
  p.total_steps = 12;
  p.max_level = 1;
  p.base_cost = us(100);
  return p;
}

TEST(Simulation, RunsToCompletionWithPhases) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();

  EXPECT_EQ(report.steps, 12);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.phases.compute, 0.0);
  EXPECT_GT(report.phases.sync, 0.0);
  EXPECT_EQ(report.initial_blocks, 16u);
  EXPECT_GE(report.final_blocks, 16u);
  // Rank-averaged phases approximately tile the wall time.
  EXPECT_NEAR(report.phases.total(), report.wall_seconds,
              0.15 * report.wall_seconds);
}

TEST(Simulation, TelemetryTablesPopulated) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  Simulation sim(cfg, sedov, *policy);
  sim.run();
  const auto& phases = sim.collector().phases();
  // At least compute/comm/sync per rank per step.
  EXPECT_GE(phases.num_rows(),
            static_cast<std::size_t>(12 * 16 * 3));
  const auto& comm = sim.collector().comm();
  EXPECT_EQ(comm.num_rows(), static_cast<std::size_t>(12 * 16));
}

TEST(Simulation, RefinementTriggersRebalanceAndMigration) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_GT(report.lb_invocations, 0);
  EXPECT_GT(report.blocks_migrated, 0);
  EXPECT_GT(report.phases.rebalance, 0.0);
  EXPECT_EQ(report.placement_ms.size(),
            static_cast<std::size_t>(report.lb_invocations));
}

TEST(Simulation, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl25");
    Simulation sim(small_config(), sedov, *policy);
    return sim.run();
  };
  const RunReport a = run();
  const RunReport b = run();
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.msgs_remote, b.msgs_remote);
  EXPECT_EQ(a.blocks_migrated, b.blocks_migrated);
}

TEST(Simulation, ComputePhaseInvariantAcrossPolicies) {
  // Fig 6a: total compute is placement-invariant (same blocks, same
  // kernels; only waits move around). Fault-free, so node multipliers
  // cannot differ.
  auto compute_for = [](const std::string& name) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy(name);
    Simulation sim(small_config(), sedov, *policy);
    return sim.run().phases.compute;
  };
  const double base = compute_for("baseline");
  const double lpt = compute_for("cpl100");
  EXPECT_NEAR(base, lpt, 1e-9);
}

TEST(Simulation, LptReducesSyncVersusBaseline) {
  SedovParams sp = small_sedov();
  sp.front_boost = 6.0;  // strong imbalance
  auto sync_for = [&](const std::string& name) {
    SedovWorkload sedov(sp);
    const auto policy = make_policy(name);
    Simulation sim(small_config(), sedov, *policy);
    return sim.run().phases.sync;
  };
  EXPECT_LT(sync_for("cpl100"), sync_for("baseline"));
}

TEST(Simulation, ThrottledNodeShowsUpInRankCompute) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  cfg.faults.add_throttle({.nodes = {1}, .factor = 4.0});
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();
  // Ranks 4..7 live on node 1.
  const double healthy = report.rank_compute_seconds[0];
  const double throttled = report.rank_compute_seconds[5];
  EXPECT_GT(throttled, 2.5 * healthy);
}

TEST(Simulation, ThrottlingInflatesWallClock) {
  auto wall = [](bool faulty) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    if (faulty) cfg.faults.add_throttle({.nodes = {0}, .factor = 4.0});
    Simulation sim(cfg, sedov, *policy);
    return sim.run().wall_seconds;
  };
  EXPECT_GT(wall(true), 1.5 * wall(false));
}

TEST(Simulation, UniformCostModeMatchesPaperDefault) {
  // With telemetry-driven costs off, cost-aware policies see uniform
  // costs; CDP then degenerates to (near-)baseline counts.
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl0");
  SimulationConfig cfg = small_config();
  cfg.telemetry_driven_costs = false;
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Simulation, CriticalPathStatsCoverAllWindows) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_EQ(report.critical_path.windows, report.steps);
  EXPECT_EQ(report.critical_path.one_rank_paths +
                report.critical_path.two_rank_paths,
            report.critical_path.windows);
}


TEST(Simulation, FluxCorrectionAddsMessagesOnRefinedMeshes) {
  auto remote_msgs = [](bool flux) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    cfg.include_flux_correction = flux;
    Simulation sim(cfg, sedov, *policy);
    return sim.run().msgs_remote;
  };
  // Sedov refines around the front, creating fine-coarse boundaries.
  EXPECT_GT(remote_msgs(true), remote_msgs(false));
}

TEST(Simulation, FluxCorrectionNoOpOnUniformMesh) {
  auto msgs = [](bool flux) {
    CoolingParams cp;
    cp.max_level = 0;  // no refinement at all
    CoolingWorkload cooling(cp);
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    cfg.include_flux_correction = flux;
    Simulation sim(cfg, cooling, *policy);
    const RunReport r = sim.run();
    return r.msgs_local + r.msgs_remote;
  };
  EXPECT_EQ(msgs(true), msgs(false));
}

TEST(Simulation, OverlapExecutionModeCompletesAndMatchesMessageCounts) {
  auto run = [](ExecutionMode mode) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.execution = mode;
    cfg.include_flux_correction = false;  // overlap work builder has no flux
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  const RunReport bsp = run(ExecutionMode::kBsp);
  const RunReport overlap = run(ExecutionMode::kOverlap);
  EXPECT_EQ(bsp.msgs_remote, overlap.msgs_remote);
  EXPECT_EQ(bsp.msgs_intra_rank, overlap.msgs_intra_rank);
  EXPECT_NEAR(bsp.phases.compute, overlap.phases.compute,
              1e-6 + 0.01 * bsp.phases.compute);
  // Note: the two modes execute different dependency structures (overlap
  // gates each block's compute on its own arrivals; BSP computes consume
  // previous state and only wait at the end), so walls are only sanity-
  // compared. bench_overlap does the like-for-like two-stage comparison.
  EXPECT_LE(overlap.wall_seconds, bsp.wall_seconds * 1.5);
}

TEST(Simulation, BudgetGuardCountsAndEnforces) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  SimulationConfig cfg = small_config();
  cfg.placement_budget_ms = 0.0;  // everything is over budget
  cfg.enforce_placement_budget = true;
  Simulation sim(cfg, sedov, *policy);
  const RunReport r = sim.run();
  EXPECT_GT(r.lb_invocations, 0);
  EXPECT_EQ(r.budget_violations, r.lb_invocations);
}

TEST(Simulation, DefaultBudgetNeverViolatedAtSmallScale) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  Simulation sim(small_config(), sedov, *policy);
  EXPECT_EQ(sim.run().budget_violations, 0);
}

}  // namespace
}  // namespace amr
