#include "amr/sim/simulation.hpp"

#include <gtest/gtest.h>

#include "amr/placement/registry.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.root_grid = RootGrid{4, 2, 2};  // one block per rank initially
  cfg.steps = 12;
  cfg.fabric.remote_jitter = 0;  // determinism for equality checks
  return cfg;
}

SedovParams small_sedov() {
  SedovParams p;
  p.total_steps = 12;
  p.max_level = 1;
  p.base_cost = us(100);
  return p;
}

TEST(Simulation, RunsToCompletionWithPhases) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();

  EXPECT_EQ(report.steps, 12);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.phases.compute, 0.0);
  EXPECT_GT(report.phases.sync, 0.0);
  EXPECT_EQ(report.initial_blocks, 16u);
  EXPECT_GE(report.final_blocks, 16u);
  // Rank-averaged phases approximately tile the wall time.
  EXPECT_NEAR(report.phases.total(), report.wall_seconds,
              0.15 * report.wall_seconds);
}

TEST(Simulation, TelemetryTablesPopulated) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  Simulation sim(cfg, sedov, *policy);
  sim.run();
  const auto& phases = sim.collector().phases();
  // At least compute/comm/sync per rank per step.
  EXPECT_GE(phases.num_rows(),
            static_cast<std::size_t>(12 * 16 * 3));
  const auto& comm = sim.collector().comm();
  EXPECT_EQ(comm.num_rows(), static_cast<std::size_t>(12 * 16));
}

TEST(Simulation, RefinementTriggersRebalanceAndMigration) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_GT(report.lb_invocations, 0);
  EXPECT_GT(report.blocks_migrated, 0);
  EXPECT_GT(report.phases.rebalance, 0.0);
  EXPECT_EQ(report.placement_ms.size(),
            static_cast<std::size_t>(report.lb_invocations));
}

TEST(Simulation, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl25");
    Simulation sim(small_config(), sedov, *policy);
    return sim.run();
  };
  const RunReport a = run();
  const RunReport b = run();
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.msgs_remote, b.msgs_remote);
  EXPECT_EQ(a.blocks_migrated, b.blocks_migrated);
}

TEST(Simulation, ComputePhaseInvariantAcrossPolicies) {
  // Fig 6a: total compute is placement-invariant (same blocks, same
  // kernels; only waits move around). Fault-free, so node multipliers
  // cannot differ.
  auto compute_for = [](const std::string& name) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy(name);
    Simulation sim(small_config(), sedov, *policy);
    return sim.run().phases.compute;
  };
  const double base = compute_for("baseline");
  const double lpt = compute_for("cpl100");
  EXPECT_NEAR(base, lpt, 1e-9);
}

TEST(Simulation, LptReducesSyncVersusBaseline) {
  SedovParams sp = small_sedov();
  sp.front_boost = 6.0;  // strong imbalance
  auto sync_for = [&](const std::string& name) {
    SedovWorkload sedov(sp);
    const auto policy = make_policy(name);
    Simulation sim(small_config(), sedov, *policy);
    return sim.run().phases.sync;
  };
  EXPECT_LT(sync_for("cpl100"), sync_for("baseline"));
}

TEST(Simulation, ThrottledNodeShowsUpInRankCompute) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  cfg.faults.add_throttle({.nodes = {1}, .factor = 4.0});
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();
  // Ranks 4..7 live on node 1.
  const double healthy = report.rank_compute_seconds[0];
  const double throttled = report.rank_compute_seconds[5];
  EXPECT_GT(throttled, 2.5 * healthy);
}

TEST(Simulation, ThrottlingInflatesWallClock) {
  auto wall = [](bool faulty) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    if (faulty) cfg.faults.add_throttle({.nodes = {0}, .factor = 4.0});
    Simulation sim(cfg, sedov, *policy);
    return sim.run().wall_seconds;
  };
  EXPECT_GT(wall(true), 1.5 * wall(false));
}

TEST(Simulation, UniformCostModeMatchesPaperDefault) {
  // With telemetry-driven costs off, cost-aware policies see uniform
  // costs; CDP then degenerates to (near-)baseline counts.
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl0");
  SimulationConfig cfg = small_config();
  cfg.telemetry_driven_costs = false;
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Simulation, CriticalPathStatsCoverAllWindows) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  Simulation sim(small_config(), sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_EQ(report.critical_path.windows, report.steps);
  EXPECT_EQ(report.critical_path.one_rank_paths +
                report.critical_path.two_rank_paths,
            report.critical_path.windows);
}


TEST(Simulation, FluxCorrectionAddsMessagesOnRefinedMeshes) {
  auto remote_msgs = [](bool flux) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    cfg.include_flux_correction = flux;
    Simulation sim(cfg, sedov, *policy);
    return sim.run().msgs_remote;
  };
  // Sedov refines around the front, creating fine-coarse boundaries.
  EXPECT_GT(remote_msgs(true), remote_msgs(false));
}

TEST(Simulation, FluxCorrectionNoOpOnUniformMesh) {
  auto msgs = [](bool flux) {
    CoolingParams cp;
    cp.max_level = 0;  // no refinement at all
    CoolingWorkload cooling(cp);
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = small_config();
    cfg.include_flux_correction = flux;
    Simulation sim(cfg, cooling, *policy);
    const RunReport r = sim.run();
    return r.msgs_local + r.msgs_remote;
  };
  EXPECT_EQ(msgs(true), msgs(false));
}

TEST(Simulation, OverlapExecutionModeCompletesAndMatchesMessageCounts) {
  auto run = [](ExecutionMode mode) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.execution = mode;
    cfg.include_flux_correction = false;  // overlap work builder has no flux
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  const RunReport bsp = run(ExecutionMode::kBsp);
  const RunReport overlap = run(ExecutionMode::kOverlap);
  EXPECT_EQ(bsp.msgs_remote, overlap.msgs_remote);
  EXPECT_EQ(bsp.msgs_intra_rank, overlap.msgs_intra_rank);
  EXPECT_NEAR(bsp.phases.compute, overlap.phases.compute,
              1e-6 + 0.01 * bsp.phases.compute);
  // Note: the two modes execute different dependency structures (overlap
  // gates each block's compute on its own arrivals; BSP computes consume
  // previous state and only wait at the end), so walls are only sanity-
  // compared. bench_overlap does the like-for-like two-stage comparison.
  EXPECT_LE(overlap.wall_seconds, bsp.wall_seconds * 1.5);
}

TEST(Simulation, AggregateWorksUnderOverlapAndConservesTraffic) {
  // Formerly rejected: aggregation under overlap execution. The packed
  // plan must move the same logical messages and bytes through fewer
  // transfers.
  auto run = [](bool aggregate) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.execution = ExecutionMode::kOverlap;
    cfg.include_flux_correction = false;
    cfg.aggregate_messages = aggregate;
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  const RunReport legacy = run(false);
  const RunReport agg = run(true);
  const std::int64_t legacy_transfers = legacy.msgs_local +
                                        legacy.msgs_remote;
  const std::int64_t agg_transfers = agg.msgs_local + agg.msgs_remote;
  EXPECT_LT(agg_transfers, legacy_transfers);
  EXPECT_EQ(agg_transfers + agg.msgs_coalesced, legacy_transfers);
  EXPECT_EQ(agg.bytes_local + agg.bytes_remote,
            legacy.bytes_local + legacy.bytes_remote);
  EXPECT_EQ(agg.msgs_intra_rank, legacy.msgs_intra_rank);
  EXPECT_GT(agg.bytes_packed, 0);
  EXPECT_EQ(legacy.msgs_coalesced, 0);
}

TEST(Simulation, AdaptiveBspPacksLikeAggregate) {
  // Under BSP the receiver waits for all arrivals, so the adaptive
  // policy packs every pair — the run must match --aggregate exactly.
  auto run = [](bool adaptive) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.aggregate_messages = !adaptive;
    cfg.comm_adaptive = adaptive;
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  const RunReport agg = run(false);
  const RunReport adaptive = run(true);
  EXPECT_EQ(agg.wall_seconds, adaptive.wall_seconds);
  EXPECT_EQ(agg.msgs_local, adaptive.msgs_local);
  EXPECT_EQ(agg.msgs_remote, adaptive.msgs_remote);
  EXPECT_EQ(agg.msgs_coalesced, adaptive.msgs_coalesced);
  EXPECT_EQ(agg.bytes_packed, adaptive.bytes_packed);
}

TEST(Simulation, AdaptiveOverlapSplitsPairsAndIsDeterministic) {
  auto run = [](std::int64_t threshold) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.execution = ExecutionMode::kOverlap;
    cfg.include_flux_correction = false;
    cfg.comm_adaptive = true;
    cfg.comm_pack_threshold = threshold;
    cfg.send_priority = true;
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  // Modeled policy: fused two-stage packing has no CPU cost, so every
  // multi-message pair packs — a giant override can do no more.
  const RunReport a = run(-1);
  const RunReport b = run(-1);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.msgs_coalesced, b.msgs_coalesced);
  EXPECT_GT(a.msgs_coalesced, 0);
  const RunReport all = run(std::int64_t{1} << 30);
  EXPECT_EQ(all.msgs_coalesced, a.msgs_coalesced);
  // A mid threshold splits pairs: edges/vertices pack, faces go eager.
  const RunReport mid = run(2560);
  EXPECT_GT(mid.msgs_coalesced, 0);
  EXPECT_LT(mid.msgs_coalesced, a.msgs_coalesced);
  // A zero threshold packs nothing.
  const RunReport none = run(0);
  EXPECT_EQ(none.msgs_coalesced, 0);
}

TEST(Simulation, ShardedAdaptiveStatsMatchAcrossShardCounts) {
  // Packing decisions are plan-derived, so the coalescing counters must
  // agree between the sequential engine and every shard count, and
  // sharded runs must stay identical to each other.
  auto run = [](std::int32_t shards) {
    SedovWorkload sedov(small_sedov());
    const auto policy = make_policy("cpl50");
    SimulationConfig cfg = small_config();
    cfg.comm_adaptive = true;
    cfg.send_priority = true;
    cfg.des_shards = shards;
    Simulation sim(cfg, sedov, *policy);
    return sim.run();
  };
  const RunReport seq = run(0);
  const RunReport s1 = run(1);
  const RunReport s4 = run(4);
  // Shard-count invariance is the existing par-DES contract.
  EXPECT_EQ(s1.wall_seconds, s4.wall_seconds);
  EXPECT_EQ(s1.msgs_coalesced, s4.msgs_coalesced);
  EXPECT_EQ(s1.bytes_packed, s4.bytes_packed);
  EXPECT_EQ(s1.msgs_local, s4.msgs_local);
  EXPECT_EQ(s1.msgs_remote, s4.msgs_remote);
  // Structural counters agree with the sequential engine too (timing
  // differs: per-node RNG streams draw different jitter).
  EXPECT_EQ(seq.msgs_coalesced, s1.msgs_coalesced);
  EXPECT_EQ(seq.bytes_packed, s1.bytes_packed);
  EXPECT_EQ(seq.msgs_local, s1.msgs_local);
  EXPECT_EQ(seq.msgs_remote, s1.msgs_remote);
  EXPECT_GT(seq.msgs_coalesced, 0);
}

TEST(SimulationDeath, AggregateAndAdaptiveAreMutuallyExclusive) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  cfg.aggregate_messages = true;
  cfg.comm_adaptive = true;
  Simulation sim(cfg, sedov, *policy);
  EXPECT_DEATH(sim.run(), "mutually exclusive");
}

TEST(SimulationDeath, PackThresholdRequiresAdaptive) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = small_config();
  cfg.comm_pack_threshold = 1024;
  Simulation sim(cfg, sedov, *policy);
  EXPECT_DEATH(sim.run(), "requires comm_adaptive");
}

TEST(Simulation, BudgetGuardCountsAndEnforces) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  SimulationConfig cfg = small_config();
  cfg.placement_budget_ms = 0.0;  // everything is over budget
  cfg.enforce_placement_budget = true;
  Simulation sim(cfg, sedov, *policy);
  const RunReport r = sim.run();
  EXPECT_GT(r.lb_invocations, 0);
  EXPECT_EQ(r.budget_violations, r.lb_invocations);
}

TEST(Simulation, DefaultBudgetNeverViolatedAtSmallScale) {
  SedovWorkload sedov(small_sedov());
  const auto policy = make_policy("cpl50");
  Simulation sim(small_config(), sedov, *policy);
  EXPECT_EQ(sim.run().budget_violations, 0);
}

}  // namespace
}  // namespace amr
