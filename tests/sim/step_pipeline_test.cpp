// The incremental step pipeline's determinism contract: a run with
// incremental_plans on must be byte-identical — RunReport, telemetry
// tables, and the event trace — to the same run with it off, across
// regrids, migrations, fault-inflated costs, and budget fallbacks.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "amr/common/rng.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

SimulationConfig pipeline_config() {
  SimulationConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.root_grid = RootGrid{4, 2, 2};
  cfg.steps = 16;
  cfg.fabric.remote_jitter = 0;
  cfg.trace_enabled = true;
  return cfg;
}

SedovParams pipeline_sedov() {
  SedovParams p;
  p.total_steps = 16;
  p.max_level = 1;
  p.base_cost = us(100);
  return p;
}

void expect_reports_equal(const RunReport& on, const RunReport& off) {
  EXPECT_EQ(on.policy, off.policy);
  // Simulated time must agree to the bit, not approximately.
  EXPECT_EQ(on.wall_seconds, off.wall_seconds);
  EXPECT_EQ(on.phases.compute, off.phases.compute);
  EXPECT_EQ(on.phases.comm, off.phases.comm);
  EXPECT_EQ(on.phases.sync, off.phases.sync);
  EXPECT_EQ(on.phases.rebalance, off.phases.rebalance);
  EXPECT_EQ(on.steps, off.steps);
  EXPECT_EQ(on.lb_invocations, off.lb_invocations);
  EXPECT_EQ(on.initial_blocks, off.initial_blocks);
  EXPECT_EQ(on.final_blocks, off.final_blocks);
  EXPECT_EQ(on.msgs_local, off.msgs_local);
  EXPECT_EQ(on.msgs_remote, off.msgs_remote);
  EXPECT_EQ(on.msgs_intra_rank, off.msgs_intra_rank);
  EXPECT_EQ(on.bytes_local, off.bytes_local);
  EXPECT_EQ(on.bytes_remote, off.bytes_remote);
  EXPECT_EQ(on.blocks_migrated, off.blocks_migrated);
  EXPECT_EQ(on.budget_violations, off.budget_violations);
  EXPECT_EQ(on.rank_compute_seconds, off.rank_compute_seconds);
  // placement_ms is host wall-clock (nondeterministic by design): only
  // its shape is pinned.
  EXPECT_EQ(on.placement_ms.size(), off.placement_ms.size());
  EXPECT_EQ(on.critical_path.windows, off.critical_path.windows);
  EXPECT_EQ(on.critical_path.one_rank_paths, off.critical_path.one_rank_paths);
  EXPECT_EQ(on.critical_path.two_rank_paths, off.critical_path.two_rank_paths);
}

void expect_tables_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_cols(), b.num_cols()) << a.name();
  ASSERT_EQ(a.num_rows(), b.num_rows()) << a.name();
  for (std::size_t c = 0; c < a.num_cols(); ++c) {
    ASSERT_EQ(a.schema()[c].name, b.schema()[c].name);
    for (std::size_t r = 0; r < a.num_rows(); ++r)
      ASSERT_EQ(a.value(c, r), b.value(c, r))
          << a.name() << " col " << a.schema()[c].name << " row " << r;
  }
}

/// Run the same configuration with incremental plans on and off and hold
/// every observable output identical.
void expect_modes_identical(
    const SimulationConfig& base, const std::string& policy_name,
    const std::function<std::unique_ptr<Workload>()>& make_workload) {
  auto run = [&](bool incremental) {
    SimulationConfig cfg = base;
    cfg.incremental_plans = incremental;
    const auto workload = make_workload();
    const PolicyPtr policy = make_policy(policy_name);
    auto sim = std::make_unique<Simulation>(cfg, *workload, *policy);
    struct Out {
      RunReport report;
      std::unique_ptr<Simulation> sim;
    };
    return Out{sim->run(), std::move(sim)};
  };
  const auto on = run(true);
  const auto off = run(false);

  expect_reports_equal(on.report, off.report);
  expect_tables_equal(on.sim->collector().phases(),
                      off.sim->collector().phases());
  expect_tables_equal(on.sim->collector().comm(),
                      off.sim->collector().comm());
  expect_tables_equal(on.sim->collector().blocks(),
                      off.sim->collector().blocks());
  if (base.trace_enabled) {
    ASSERT_NE(on.sim->tracer(), nullptr);
    ASSERT_NE(off.sim->tracer(), nullptr);
    // The rendered trace (task spans, flows, counters — including the
    // plan-cache counter track, which records mode-independent
    // predictions) must match byte for byte.
    EXPECT_EQ(chrome_trace_json(*on.sim->tracer()),
              chrome_trace_json(*off.sim->tracer()));
  }

  // The cache's actual behaviour must match the version-pair prediction,
  // and the reference mode must never have touched the cache.
  const StepPipelineStats& s_on = on.sim->pipeline_stats();
  const StepPipelineStats& s_off = off.sim->pipeline_stats();
  EXPECT_EQ(s_on.plan_hits, s_on.predicted_hits);
  EXPECT_EQ(s_on.plan_misses, s_on.predicted_misses);
  EXPECT_EQ(s_off.plan_hits, 0);
  EXPECT_EQ(s_off.plan_misses, 0);
  EXPECT_EQ(s_on.predicted_hits, s_off.predicted_hits);
  EXPECT_EQ(s_on.predicted_misses, s_off.predicted_misses);
}

std::unique_ptr<Workload> make_sedov() {
  return std::make_unique<SedovWorkload>(pipeline_sedov());
}

TEST(StepPipeline, SedovRegridsAreByteIdenticalAcrossModes) {
  // Sedov regrids as the front moves and cpl50 migrates blocks: both
  // invalidation sources are exercised.
  expect_modes_identical(pipeline_config(), "cpl50", make_sedov);
}

TEST(StepPipeline, CacheHitsDominateBetweenRegrids) {
  SedovWorkload sedov(pipeline_sedov());
  const PolicyPtr policy = make_policy("cpl50");
  SimulationConfig cfg = pipeline_config();
  cfg.trace_enabled = false;
  Simulation sim(cfg, sedov, *policy);
  const RunReport r = sim.run();
  const StepPipelineStats& s = sim.pipeline_stats();
  EXPECT_EQ(s.plan_hits + s.plan_misses, r.steps);
  EXPECT_GT(s.plan_hits, 0);  // sedov's check period leaves steady steps
  EXPECT_GT(s.plan_misses, 0);  // and it does regrid/migrate
  EXPECT_EQ(s.plan_hits, s.predicted_hits);
  EXPECT_EQ(s.plan_misses, s.predicted_misses);
}

TEST(StepPipeline, FaultInflatedCostsStayIdentical) {
  // Throttled nodes inflate measured costs, which feed placement and the
  // patched compute durations — the hit path must carry them exactly.
  SimulationConfig cfg = pipeline_config();
  cfg.faults.add_throttle({.nodes = {1}, .factor = 4.0});
  expect_modes_identical(cfg, "cpl50", make_sedov);
}

TEST(StepPipeline, BudgetFallbackStaysIdentical) {
  // A negative budget deterministically rejects every placement; both
  // modes must take the baseline fallback and agree byte-for-byte.
  SimulationConfig cfg = pipeline_config();
  cfg.placement_budget_ms = -1.0;
  cfg.enforce_placement_budget = true;
  expect_modes_identical(cfg, "cpl50", make_sedov);
}

TEST(StepPipeline, OverlapExecutionStaysIdentical) {
  SimulationConfig cfg = pipeline_config();
  cfg.execution = ExecutionMode::kOverlap;
  cfg.include_flux_correction = false;  // overlap builder has no flux
  expect_modes_identical(cfg, "cpl50", make_sedov);
}

TEST(StepPipeline, UniformCostModeStaysIdentical) {
  SimulationConfig cfg = pipeline_config();
  cfg.telemetry_driven_costs = false;
  expect_modes_identical(cfg, "lpt", make_sedov);
}

/// Random refine/coarsen every step — the adversarial case for delta
/// renumbering and telemetry carry: block IDs shuffle constantly and
/// coarsening merges cost history.
class FuzzRegridWorkload final : public Workload {
 public:
  explicit FuzzRegridWorkload(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "fuzz-regrid"; }

  bool evolve(AmrMesh& mesh, std::int64_t step) override {
    if (step % 2 != 0) return false;  // leave hit-path steps in between
    std::vector<std::int32_t> tags;
    for (std::size_t b = 0; b < mesh.size(); ++b)
      if (rng_.chance(0.25)) tags.push_back(static_cast<std::int32_t>(b));
    std::uint64_t changed = 0;
    if (mesh.size() < 96 && rng_.chance(0.7)) {
      std::erase_if(tags, [&](std::int32_t b) {
        return mesh.block(static_cast<std::size_t>(b)).level >= 2;
      });
      changed = mesh.refine(tags);
    } else {
      changed = mesh.coarsen(tags);
    }
    return changed > 0;
  }

  TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                    std::int64_t step) const override {
    // Deterministic in (coordinates, step): survives renumbering.
    const BlockCoord c = mesh.block(block);
    const std::uint64_t packed = (static_cast<std::uint64_t>(c.level) << 57) |
                                 (static_cast<std::uint64_t>(c.x) << 38) |
                                 (static_cast<std::uint64_t>(c.y) << 19) |
                                 static_cast<std::uint64_t>(c.z);
    const std::uint64_t h =
        hash64(packed ^ hash64(static_cast<std::uint64_t>(step)));
    return us(50) + static_cast<TimeNs>(h % us(100));
  }

 private:
  Rng rng_;
};

TEST(StepPipeline, FuzzRegridSequencesMatchFromScratchPipeline) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SimulationConfig cfg = pipeline_config();
    cfg.steps = 20;
    cfg.trace_enabled = seed == 1;  // trace diff once; reports every seed
    expect_modes_identical(cfg, "cpl25", [seed] {
      return std::make_unique<FuzzRegridWorkload>(seed);
    });
  }
}

}  // namespace
}  // namespace amr
