// Checkpoint/restart equivalence, in-process: a run restored from a
// mid-run snapshot and continued to completion must match the
// uninterrupted run field-for-field — RunReport, telemetry tables, and
// the trace event stream (compared via the exported Chrome JSON, which
// is byte-stable).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "amr/faults/injector.hpp"
#include "amr/io/snapshot.hpp"
#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

class CheckpointTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("amr_ckpt_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

SimulationConfig test_config(std::int64_t steps) {
  SimulationConfig cfg;
  cfg.nranks = 32;
  cfg.ranks_per_node = 16;
  cfg.root_grid = RootGrid{4, 4, 2};
  cfg.steps = steps;
  cfg.trace_enabled = true;
  // A fault window whose onset and clear edges straddle the checkpoint,
  // so the restored run must reproduce both transitions.
  ThrottleFault fault;
  fault.nodes = {1};
  fault.factor = 4.0;
  fault.onset_step = steps / 3;
  fault.end_step = (2 * steps) / 3;
  cfg.faults.add_throttle(fault);
  return cfg;
}

RunReport run_sedov(const SimulationConfig& cfg, const std::string& policy,
                    std::string* trace_json, Table* phases,
                    const std::string& restore_from = "") {
  SedovParams sp;
  sp.total_steps = cfg.steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const PolicyPtr pol = make_policy(policy);
  Simulation sim(cfg, sedov, *pol);
  if (!restore_from.empty()) sim.restore_checkpoint(restore_from);
  const RunReport report = sim.run();
  if (trace_json != nullptr) *trace_json = chrome_trace_json(*sim.tracer());
  if (phases != nullptr) *phases = sim.collector().phases();
  return report;
}

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.phases.compute, b.phases.compute);
  EXPECT_EQ(a.phases.comm, b.phases.comm);
  EXPECT_EQ(a.phases.sync, b.phases.sync);
  EXPECT_EQ(a.phases.rebalance, b.phases.rebalance);
  EXPECT_EQ(a.initial_blocks, b.initial_blocks);
  EXPECT_EQ(a.final_blocks, b.final_blocks);
  EXPECT_EQ(a.lb_invocations, b.lb_invocations);
  EXPECT_EQ(a.blocks_migrated, b.blocks_migrated);
  EXPECT_EQ(a.msgs_local, b.msgs_local);
  EXPECT_EQ(a.msgs_remote, b.msgs_remote);
  EXPECT_EQ(a.msgs_intra_rank, b.msgs_intra_rank);
  EXPECT_EQ(a.bytes_local, b.bytes_local);
  EXPECT_EQ(a.bytes_remote, b.bytes_remote);
  EXPECT_EQ(a.msgs_coalesced, b.msgs_coalesced);
  EXPECT_EQ(a.bytes_packed, b.bytes_packed);
  EXPECT_EQ(a.critical_path.windows, b.critical_path.windows);
  EXPECT_EQ(a.critical_path.one_rank_paths, b.critical_path.one_rank_paths);
  EXPECT_EQ(a.critical_path.two_rank_paths, b.critical_path.two_rank_paths);
  EXPECT_EQ(a.rank_compute_seconds, b.rank_compute_seconds);
}

void expect_tables_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (std::size_t c = 0; c < a.num_cols(); ++c)
    for (std::size_t r = 0; r < a.num_rows(); ++r)
      EXPECT_EQ(a.value(c, r), b.value(c, r)) << "col " << c << " row " << r;
}

TEST_F(CheckpointTest, RestoredRunMatchesUninterrupted) {
  const std::int64_t steps = 18;

  std::string full_trace;
  Table full_phases;
  const RunReport full =
      run_sedov(test_config(steps), "cpl50", &full_trace, &full_phases);

  // Same run, snapshotting every 5 steps (5, 10, 15 — inside, at the
  // edge of, and after the fault window).
  SimulationConfig ck = test_config(steps);
  ck.checkpoint_every = 5;
  ck.checkpoint_dir = dir_;
  std::string ck_trace;
  Table ck_phases;
  const RunReport ck_report =
      run_sedov(ck, "cpl50", &ck_trace, &ck_phases);
  expect_reports_equal(full, ck_report);
  EXPECT_EQ(full_trace, ck_trace);
  expect_tables_equal(full_phases, ck_phases);

  for (const std::int64_t at : {5, 10, 15}) {
    const std::string path =
        dir_ + "/ckpt_" + std::to_string(at) + ".amrs";
    std::string trace;
    Table phases;
    const RunReport restored =
        run_sedov(test_config(steps), "cpl50", &trace, &phases, path);
    SCOPED_TRACE("restore at step " + std::to_string(at));
    expect_reports_equal(full, restored);
    EXPECT_EQ(full_trace, trace);
    expect_tables_equal(full_phases, phases);
  }
}

TEST_F(CheckpointTest, ReplaySwapsPlacementPolicy) {
  const std::int64_t steps = 14;
  SimulationConfig ck = test_config(steps);
  ck.checkpoint_every = 7;
  ck.checkpoint_dir = dir_;
  const RunReport original = run_sedov(ck, "cpl50", nullptr, nullptr);

  // Re-drive the second half under a different policy: the restore must
  // accept the snapshot (policy is not part of the config fingerprint)
  // and the report must carry the replayed policy's name.
  const RunReport replayed =
      run_sedov(test_config(steps), "baseline", nullptr, nullptr,
                dir_ + "/ckpt_7.amrs");
  EXPECT_EQ(replayed.policy, "baseline");
  EXPECT_EQ(replayed.steps, original.steps);
  EXPECT_EQ(replayed.initial_blocks, original.initial_blocks);
}

TEST_F(CheckpointTest, MismatchedConfigIsRejected) {
  SimulationConfig ck = test_config(12);
  ck.checkpoint_every = 6;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);

  SimulationConfig other = test_config(12);
  other.nranks = 16;
  other.root_grid = RootGrid{4, 2, 2};
  EXPECT_THROW(run_sedov(other, "cpl50", nullptr, nullptr,
                         dir_ + "/ckpt_6.amrs"),
               io::SnapshotError);

  // Same shape but a different fault schedule is also a different run.
  SimulationConfig refault = test_config(12);
  ThrottleFault extra;
  extra.nodes = {0};
  extra.factor = 2.0;
  refault.faults.add_throttle(extra);
  EXPECT_THROW(run_sedov(refault, "cpl50", nullptr, nullptr,
                         dir_ + "/ckpt_6.amrs"),
               io::SnapshotError);
}

TEST_F(CheckpointTest, AdaptiveCommRestoreMatchesUninterrupted) {
  // Adaptive packing + send priority across a mid-run restore: the
  // snapshot carries last_straggler, so the restored run must schedule
  // identically to the uninterrupted one.
  const std::int64_t steps = 14;
  auto adaptive_config = [&] {
    SimulationConfig cfg = test_config(steps);
    cfg.comm_adaptive = true;
    cfg.send_priority = true;
    return cfg;
  };
  std::string full_trace;
  const RunReport full =
      run_sedov(adaptive_config(), "cpl50", &full_trace, nullptr);
  EXPECT_GT(full.msgs_coalesced, 0);

  SimulationConfig ck = adaptive_config();
  ck.checkpoint_every = 7;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);

  std::string trace;
  const RunReport restored = run_sedov(adaptive_config(), "cpl50", &trace,
                                       nullptr, dir_ + "/ckpt_7.amrs");
  expect_reports_equal(full, restored);
  EXPECT_EQ(full_trace, trace);
}

TEST_F(CheckpointTest, AdaptiveCommAxesArePartOfTheFingerprint) {
  SimulationConfig ck = test_config(12);
  ck.comm_adaptive = true;
  ck.send_priority = true;
  ck.checkpoint_every = 6;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);
  const std::string path = dir_ + "/ckpt_6.amrs";

  auto expect_refused = [&](const SimulationConfig& cfg,
                            const std::string& field) {
    try {
      run_sedov(cfg, "cpl50", nullptr, nullptr, path);
      FAIL() << "restore unexpectedly succeeded (" << field << ")";
    } catch (const io::SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  // Adaptive off: replayed windows would pack differently.
  SimulationConfig off = test_config(12);
  off.send_priority = true;
  expect_refused(off, "adaptive packing");
  // Priority off: replayed windows would order sends differently.
  SimulationConfig noprio = test_config(12);
  noprio.comm_adaptive = true;
  expect_refused(noprio, "send priority");
  // A different global threshold changes every packing decision.
  SimulationConfig threshold = test_config(12);
  threshold.comm_adaptive = true;
  threshold.send_priority = true;
  threshold.comm_pack_threshold = 4096;
  expect_refused(threshold, "packing threshold");
}

TEST_F(CheckpointTest, AutoCplxRestoreMatchesUninterrupted) {
  // Auto-X tuning across a mid-run restore: the snapshot's "tuner"
  // section carries the surrogate weights, error EWMA, and epoch
  // accumulators, so the restored run's tuning decisions — and thus its
  // placements, messages, and trace — must match the uninterrupted run.
  const std::int64_t steps = 18;
  auto auto_config = [&] {
    SimulationConfig cfg = test_config(steps);
    cfg.auto_cplx = true;
    cfg.placement_incremental = true;
    return cfg;
  };
  std::string full_trace;
  Table full_phases;
  const RunReport full =
      run_sedov(auto_config(), "cpl50", &full_trace, &full_phases);
  EXPECT_EQ(full.policy, "auto-cplx");

  SimulationConfig ck = auto_config();
  ck.checkpoint_every = 5;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);

  // Step 5 lands mid-tuning: decisions and observations both straddle
  // the snapshot; 15 exercises the tail end of the run.
  for (const std::int64_t at : {5, 10, 15}) {
    const std::string path =
        dir_ + "/ckpt_" + std::to_string(at) + ".amrs";
    std::string trace;
    Table phases;
    const RunReport restored =
        run_sedov(auto_config(), "cpl50", &trace, &phases, path);
    SCOPED_TRACE("restore at step " + std::to_string(at));
    expect_reports_equal(full, restored);
    EXPECT_EQ(full_trace, trace);
    expect_tables_equal(full_phases, phases);
  }
}

TEST_F(CheckpointTest, PlacementEngineAxesArePartOfTheFingerprint) {
  SimulationConfig ck = test_config(12);
  ck.auto_cplx = true;
  ck.placement_incremental = true;
  ck.checkpoint_every = 6;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);
  const std::string path = dir_ + "/ckpt_6.amrs";

  auto expect_refused = [&](const SimulationConfig& cfg,
                            const std::string& field) {
    try {
      run_sedov(cfg, "cpl50", nullptr, nullptr, path);
      FAIL() << "restore unexpectedly succeeded (" << field << ")";
    } catch (const io::SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  // Tuning off: the remaining epochs would place with the static X.
  SimulationConfig off = test_config(12);
  off.placement_incremental = true;
  expect_refused(off, "auto-X tuning");
  // Engine off: a different (legacy) placement code path.
  SimulationConfig legacy = test_config(12);
  legacy.auto_cplx = true;
  expect_refused(legacy, "incremental placement");
  // A different budget trims a different candidate set every epoch.
  SimulationConfig budget = test_config(12);
  budget.auto_cplx = true;
  budget.placement_incremental = true;
  budget.cplx_budget_ms = 5.0;
  expect_refused(budget, "auto-X budget");
}

TEST_F(CheckpointTest, CorruptSnapshotFailsWithDiagnostic) {
  SimulationConfig ck = test_config(12);
  ck.checkpoint_every = 6;
  ck.checkpoint_dir = dir_;
  run_sedov(ck, "cpl50", nullptr, nullptr);

  const std::string path = dir_ + "/ckpt_6.amrs";
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<long>(bytes.size()));
  }
  EXPECT_THROW(run_sedov(test_config(12), "cpl50", nullptr, nullptr, path),
               io::SnapshotError);
}

}  // namespace
}  // namespace amr
