# Asserts the incremental step pipeline's determinism contract
# end-to-end: sedov_sim must produce byte-identical stdout with the plan
# cache + delta renumbering on (default) and off (--no-incremental).
# Invoked from bench/CMakeLists.txt as a ctest entry; -DSEDOV names the
# sedov_sim binary.
execute_process(COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24
                OUTPUT_VARIABLE out_on RESULT_VARIABLE rc_on)
execute_process(COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24 --no-incremental
                OUTPUT_VARIABLE out_off RESULT_VARIABLE rc_off)
if(NOT rc_on EQUAL 0)
  message(FATAL_ERROR "incremental run failed (exit ${rc_on})")
endif()
if(NOT rc_off EQUAL 0)
  message(FATAL_ERROR "--no-incremental run failed (exit ${rc_off})")
endif()
if(NOT out_on STREQUAL out_off)
  message(FATAL_ERROR "stdout differs between incremental and "
                      "--no-incremental runs: the step-pipeline "
                      "determinism contract is broken")
endif()
