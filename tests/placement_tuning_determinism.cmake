# Asserts the placement-engine determinism contract end-to-end:
#   1. --placement-incremental stdout is byte-identical to the default
#      full-rebuild path (the delta engine's chunk reuse and parallel
#      solves never change output bytes),
#   2. engine-mode stdout is byte-identical across --jobs and across
#      --des-shards >= 1 (the dedicated placement pool and the sharded
#      DES must not perturb tuning decisions; the shards leg drives the
#      concurrent threads under the AMR_SANITIZE=thread tree),
#   3. an --auto-cplx run restored from any mid-run snapshot continues
#      byte-identically (the tuner's surrogate weights, error EWMA, and
#      epoch accumulators ride in the v5 "tuner" section),
#   4. a tuning snapshot replayed under a different seed policy keeps
#      tuning (the report prints policy "auto-cplx" either way), and
#   5. snapshots written under the engine axes refuse to restore into
#      runs without them (config fingerprint mismatch), naming the
#      offending axis.
# Invoked from bench/CMakeLists.txt; -DSEDOV names the sedov_sim binary,
# -DWORK_DIR a scratch directory for checkpoint files.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Incremental placement must be invisible in the output bytes.
execute_process(COMMAND "${SEDOV}" cpl50,cpl25,cpl100 32 24
                OUTPUT_VARIABLE out_full RESULT_VARIABLE rc_full)
execute_process(COMMAND "${SEDOV}" cpl50,cpl25,cpl100 32 24
                        --placement-incremental
                OUTPUT_VARIABLE out_inc RESULT_VARIABLE rc_inc)
if(NOT rc_full EQUAL 0)
  message(FATAL_ERROR "full-rebuild run failed (exit ${rc_full})")
endif()
if(NOT rc_inc EQUAL 0)
  message(FATAL_ERROR "--placement-incremental run failed (exit ${rc_inc})")
endif()
if(NOT out_full STREQUAL out_inc)
  message(FATAL_ERROR "stdout differs between the full-rebuild and "
                      "--placement-incremental runs: the delta placement "
                      "engine is not byte-identical to the reference")
endif()

# Auto-X tuning across the sweep runtime: --jobs must not perturb it.
set(mode --auto-cplx --placement-incremental --faults=2)
execute_process(
  COMMAND "${SEDOV}" cpl50,cpl50 32 24 ${mode} --jobs=1
  OUTPUT_VARIABLE out_j1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" cpl50,cpl50 32 24 ${mode} --jobs=2
  OUTPUT_VARIABLE out_j2 RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "auto-cplx sweep runs failed (exit ${rc1} / ${rc2})")
endif()
if(NOT out_j1 STREQUAL out_j2)
  message(FATAL_ERROR "stdout differs between --jobs=1 and --jobs=2 "
                      "under --auto-cplx: tuning decisions are not "
                      "deterministic across the sweep runtime")
endif()

# Sharded DES must leave tuning decisions untouched for every shard
# count >= 1 (this is the concurrency leg under tsan).
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode} --des-shards=1
  OUTPUT_VARIABLE out_s1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode} --des-shards=2
  OUTPUT_VARIABLE out_s2 RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "auto-cplx sharded runs failed "
                      "(exit ${rc1} / ${rc2})")
endif()
if(NOT out_s1 STREQUAL out_s2)
  message(FATAL_ERROR "stdout differs between --des-shards=1 and "
                      "--des-shards=2 under --auto-cplx: sharded "
                      "execution changes tuning decisions")
endif()

# Auto-X across checkpoint/restore, with a fault window so the measured
# step times — and thus the tuner's error signal — actually move.
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode}
  OUTPUT_VARIABLE out_auto RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted auto-cplx run failed (exit ${rc})")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode}
          --checkpoint-every=7 --checkpoint-dir=${WORK_DIR}
  OUTPUT_VARIABLE out_ck RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing auto-cplx run failed (exit ${rc})")
endif()
if(NOT out_auto STREQUAL out_ck)
  message(FATAL_ERROR "writing checkpoints changed auto-cplx stdout")
endif()

file(GLOB snapshots "${WORK_DIR}/ckpt_*.amrs")
if(snapshots STREQUAL "")
  message(FATAL_ERROR "checkpointing run wrote no snapshots")
endif()
foreach(snapshot IN LISTS snapshots)
  execute_process(
    COMMAND "${SEDOV}" cpl50 32 24 ${mode} --restore=${snapshot}
    OUTPUT_VARIABLE out_restored RESULT_VARIABLE rc
    ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "restore from ${snapshot} failed (exit ${rc})")
  endif()
  if(NOT out_auto STREQUAL out_restored)
    message(FATAL_ERROR "stdout differs between the uninterrupted "
                        "auto-cplx run and the run restored from "
                        "${snapshot}: the tuner-state round-trip is "
                        "broken")
  endif()
endforeach()

# Replay with a swapped seed policy: auto-X owns placement from the
# first redistribution on, so the replayed run must keep tuning (and
# keep printing policy "auto-cplx") regardless of the seed policy named
# on the command line.
list(GET snapshots 0 snapshot)
execute_process(
  COMMAND "${SEDOV}" cpl25 32 24 ${mode} --replay=${snapshot}
  OUTPUT_VARIABLE out_replay RESULT_VARIABLE rc
  ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "auto-cplx replay with a swapped seed policy "
                      "failed (exit ${rc})")
endif()
if(NOT out_replay MATCHES "auto-cplx")
  message(FATAL_ERROR "replayed auto-cplx run does not report policy "
                      "auto-cplx")
endif()

# The engine axes are part of the config fingerprint: dropping any of
# them must refuse the restore, naming the mismatched axis.
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --placement-incremental --faults=2
          --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring an auto-cplx snapshot without "
                      "--auto-cplx unexpectedly succeeded")
endif()
if(NOT err MATCHES "auto-X tuning")
  message(FATAL_ERROR "mismatched-tuning restore failed without naming "
                      "auto-X tuning: ${err}")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --auto-cplx --faults=2
          --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring an incremental-placement snapshot "
                      "without --placement-incremental unexpectedly "
                      "succeeded")
endif()
if(NOT err MATCHES "incremental placement")
  message(FATAL_ERROR "mismatched-incremental restore failed without "
                      "naming incremental placement: ${err}")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 ${mode} --cplx-budget-ms=5
          --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring under a different --cplx-budget-ms "
                      "unexpectedly succeeded")
endif()
if(NOT err MATCHES "auto-X budget")
  message(FATAL_ERROR "mismatched-budget restore failed without naming "
                      "the auto-X budget: ${err}")
endif()
