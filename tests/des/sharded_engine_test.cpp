#include "amr/des/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "amr/des/engine.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/topo/topology.hpp"

namespace amr {
namespace {

class Recorder final : public EventHandler {
 public:
  void on_event(Engine& engine, std::uint64_t tag) override {
    log.emplace_back(engine.now(), tag);
  }
  std::vector<std::pair<TimeNs, std::uint64_t>> log;
};

TEST(ShardedEngine, ClampsShardCountToNodeCount) {
  const ClusterTopology topo(64, 16);  // 4 nodes
  ShardedEngine one(topo, 1, 10, nullptr);
  EXPECT_EQ(one.num_shards(), 1);
  ShardedEngine eight(topo, 8, 10, nullptr);
  EXPECT_EQ(eight.num_shards(), 4);
  ShardedEngine zero(topo, 0, 10, nullptr);
  EXPECT_EQ(zero.num_shards(), 1);
}

TEST(ShardedEngine, NodePartitionIsContiguousAndCoversAllRanks) {
  const ClusterTopology topo(96, 16);  // 6 nodes
  for (const std::int32_t shards : {1, 2, 3, 4, 6}) {
    ShardedEngine eng(topo, shards, 10, nullptr);
    // Node ownership is monotone in node id (contiguous blocks).
    std::int32_t prev = 0;
    for (std::int32_t node = 0; node < topo.num_nodes(); ++node) {
      const std::int32_t s = eng.shard_of_node(node);
      EXPECT_GE(s, prev) << "shards=" << shards << " node=" << node;
      EXPECT_LT(s, eng.num_shards());
      prev = s;
    }
    // Rank ranges tile [0, num_ranks) exactly, and agree with
    // shard_of_rank / engine_for_rank.
    std::int32_t expected_first = 0;
    for (std::int32_t s = 0; s < eng.num_shards(); ++s) {
      const auto [first, last] = eng.rank_range(s);
      EXPECT_EQ(first, expected_first) << "shards=" << shards;
      EXPECT_GT(last, first) << "every shard owns at least one rank";
      for (std::int32_t r = first; r < last; ++r) {
        EXPECT_EQ(eng.shard_of_rank(r), s);
        EXPECT_EQ(&eng.engine_for_rank(r), &eng.shard(s));
      }
      expected_first = last;
    }
    EXPECT_EQ(expected_first, topo.num_ranks());
  }
}

TEST(ShardedEngine, EqualTimeKeyedEventsDispatchInKeyOrder) {
  // Insertion order scrambled three ways (direct, reversed, via the
  // cross-shard mailbox): dispatch must always be ascending key.
  const ClusterTopology topo(32, 16);  // 2 nodes
  ShardedEngine eng(topo, 2, 10, nullptr);
  Recorder rec;
  eng.shard(0).schedule_keyed(100, 7, &rec, 7);
  eng.shard(0).schedule_keyed(100, 3, &rec, 3);
  eng.post(1, 0, 100, 5, &rec, 5);  // arrives via mailbox drain
  eng.shard(0).schedule_keyed(100, 1, &rec, 1);
  eng.run_all();
  ASSERT_EQ(rec.log.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(rec.log[i].first, 100);
  EXPECT_EQ(rec.log[0].second, 1u);
  EXPECT_EQ(rec.log[1].second, 3u);
  EXPECT_EQ(rec.log[2].second, 5u);
  EXPECT_EQ(rec.log[3].second, 7u);
}

TEST(ShardedEngine, RunUntilAlignsDrainedShardClocks) {
  const ClusterTopology topo(32, 16);
  ShardedEngine eng(topo, 2, 10, nullptr);
  Recorder rec;
  eng.shard(0).schedule_keyed(50, 1, &rec, 0);
  eng.run_all();
  eng.run_until(500);
  EXPECT_EQ(eng.now(), 500);
  EXPECT_EQ(eng.shard(0).now(), 500);
  EXPECT_EQ(eng.shard(1).now(), 500);
}

TEST(ShardedEngine, StatsCountMailboxEventsAndEpochs) {
  const ClusterTopology topo(32, 16);
  ShardedEngine eng(topo, 2, 10, nullptr);
  Recorder rec;
  eng.shard(0).schedule_keyed(10, 1, &rec, 0);
  eng.post(0, 1, 25, 2, &rec, 1);
  eng.run_all();
  const auto& stats = eng.last_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].events + stats[1].events, 2);
  EXPECT_EQ(stats[1].mailbox_events, 1);
  EXPECT_GT(stats[0].epochs, 0);
  EXPECT_EQ(stats[0].epochs, stats[1].epochs);
}

TEST(Engine, KeyedScheduleBelowBucketReferenceKeepsKeyOrder) {
  // The keyed variant of the rebucket_all edge: run_until advances the
  // radix bucketing reference to the earliest pending time (100) while
  // now() stops at 50; later keyed schedules below the reference must
  // still dispatch in (time, key) order across the forced rebucket.
  Engine engine;
  Recorder rec;
  engine.schedule_keyed(100, 100, &rec, 100);
  engine.run_until(50);
  EXPECT_EQ(engine.now(), 50);
  engine.schedule_keyed(60, 9, &rec, 9);
  engine.schedule_keyed(55, 2, &rec, 2);
  engine.schedule_keyed(60, 4, &rec, 4);  // below key 9 at equal time
  engine.run();
  ASSERT_EQ(rec.log.size(), 4u);
  EXPECT_EQ(rec.log[0], std::make_pair(TimeNs{55}, std::uint64_t{2}));
  EXPECT_EQ(rec.log[1], std::make_pair(TimeNs{60}, std::uint64_t{4}));
  EXPECT_EQ(rec.log[2], std::make_pair(TimeNs{60}, std::uint64_t{9}));
  EXPECT_EQ(rec.log[3], std::make_pair(TimeNs{100}, std::uint64_t{100}));
}

TEST(Engine, FuzzKeyedDispatchMatchesTimeKeySortReference) {
  // Keyed analogue of the legacy-order fuzzer: bursts of schedule_keyed
  // (random unique keys, times often below the advanced bucketing
  // reference) interleaved with run_until. Dispatch must equal a sort of
  // everything scheduled by (time, key).
  for (const std::uint64_t seed : {5u, 23u, 4096u}) {
    std::mt19937_64 rng(seed);
    Engine engine;
    Recorder rec;
    std::vector<std::pair<TimeNs, std::uint64_t>> model;
    TimeNs horizon = 0;
    for (int round = 0; round < 300; ++round) {
      const int burst = static_cast<int>(rng() % 4);
      for (int k = 0; k < burst; ++k) {
        const TimeNs t = engine.now() + static_cast<TimeNs>(rng() % 256);
        // Key high bits random (collision-prone at equal times would be
        // ambiguous, so uniquify with a counter in the low bits).
        const std::uint64_t key =
            ((rng() % 16) << 32) | static_cast<std::uint64_t>(model.size());
        model.emplace_back(t, key);
        engine.schedule_keyed(t, key, &rec, key);
      }
      horizon += static_cast<TimeNs>(rng() % 64);
      engine.run_until(horizon);
    }
    engine.run();
    std::sort(model.begin(), model.end());
    ASSERT_EQ(rec.log.size(), model.size()) << "seed " << seed;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(rec.log[i], model[i]) << "seed " << seed << " position "
                                      << i;
    }
  }
}

/// Cross-shard fuzz workload: every node runs a deterministic per-node
/// program that, on each event, schedules more work locally and posts
/// keyed events to random peer nodes beyond the lookahead bound. Node
/// behaviour depends only on that node's own dispatch sequence, so the
/// per-node fired logs must be identical under any shard count.
class NodeProgram final : public EventHandler {
 public:
  ShardedEngine* eng = nullptr;
  std::int32_t node = 0;
  std::int32_t num_nodes = 0;
  TimeNs lookahead = 0;
  std::mt19937_64 rng;
  std::uint64_t seq = 0;  ///< per-node uniquifier, dispatch-ordered
  int budget = 0;
  std::vector<NodeProgram>* peers = nullptr;
  std::vector<std::pair<TimeNs, std::uint64_t>> fired;

  void on_event(Engine& engine, std::uint64_t tag) override {
    fired.emplace_back(engine.now(), tag);
    if (budget <= 0) return;
    --budget;
    const int locals = static_cast<int>(rng() % 3);
    for (int k = 0; k < locals; ++k) {
      const TimeNs t = engine.now() + 1 + static_cast<TimeNs>(rng() % 64);
      const std::uint64_t ek = key();
      engine.schedule_keyed(t, ek, this, ek);
    }
    if (rng() % 2 == 0) {
      const auto dst = static_cast<std::int32_t>(
          rng() % static_cast<std::uint64_t>(num_nodes));
      // Beyond the lookahead horizon: mirrors the fabric's guarantee
      // that cross-node deliveries land strictly past h_end.
      const TimeNs t = engine.now() + lookahead + 1 +
                       static_cast<TimeNs>(rng() % 64);
      NodeProgram& target = (*peers)[static_cast<std::size_t>(dst)];
      const std::uint64_t ek = key();
      eng->post(eng->shard_of_node(node), eng->shard_of_node(dst), t, ek,
                &target, ek);
    }
  }

  /// Content-derived key: (node, per-node seq), unique process-wide and
  /// independent of shard count.
  std::uint64_t key() {
    return (static_cast<std::uint64_t>(node) << 32) | seq++;
  }
};

TEST(ShardedEngine, FuzzCrossShardDispatchInvariantUnderShardCount) {
  const ClusterTopology topo(64, 16);  // 4 nodes
  const TimeNs lookahead = 20;
  for (const std::uint64_t seed : {2u, 77u, 909u}) {
    std::vector<std::vector<std::pair<TimeNs, std::uint64_t>>> reference;
    for (const std::int32_t shards : {1, 2, 4}) {
      ShardedEngine eng(topo, shards, lookahead, nullptr);
      std::vector<NodeProgram> nodes(
          static_cast<std::size_t>(topo.num_nodes()));
      for (std::int32_t n = 0; n < topo.num_nodes(); ++n) {
        NodeProgram& p = nodes[static_cast<std::size_t>(n)];
        p.eng = &eng;
        p.node = n;
        p.num_nodes = topo.num_nodes();
        p.lookahead = lookahead;
        p.rng.seed(seed * 1000 + static_cast<std::uint64_t>(n));
        p.budget = 200;
        p.peers = &nodes;
        // Seed events straight into the owning shard's queue.
        for (int i = 0; i < 5; ++i) {
          const TimeNs t = static_cast<TimeNs>(p.rng() % 128);
          const std::uint64_t ek = p.key();
          eng.engine_for_rank(n * 16).schedule_keyed(t, ek, &p, ek);
        }
      }
      eng.run_all();
      std::vector<std::vector<std::pair<TimeNs, std::uint64_t>>> logs;
      for (NodeProgram& p : nodes) logs.push_back(std::move(p.fired));
      if (reference.empty()) {
        reference = std::move(logs);
        ASSERT_GT(reference[0].size(), 5u) << "fuzz produced no chains";
      } else {
        ASSERT_EQ(logs, reference)
            << "seed " << seed << " shards " << shards
            << ": per-node dispatch changed with the shard count";
      }
    }
  }
}

TEST(ShardedEngine, ThreadPoolExecutionMatchesInlineExecution) {
  const ClusterTopology topo(64, 16);
  const TimeNs lookahead = 20;
  std::vector<std::vector<std::pair<TimeNs, std::uint64_t>>> reference;
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    ShardedEngine eng(topo, 4, lookahead, p);
    std::vector<NodeProgram> nodes(
        static_cast<std::size_t>(topo.num_nodes()));
    for (std::int32_t n = 0; n < topo.num_nodes(); ++n) {
      NodeProgram& prog = nodes[static_cast<std::size_t>(n)];
      prog.eng = &eng;
      prog.node = n;
      prog.num_nodes = topo.num_nodes();
      prog.lookahead = lookahead;
      prog.rng.seed(42 + static_cast<std::uint64_t>(n));
      prog.budget = 200;
      prog.peers = &nodes;
      for (int i = 0; i < 5; ++i) {
        const TimeNs t = static_cast<TimeNs>(prog.rng() % 128);
        const std::uint64_t ek = prog.key();
        eng.engine_for_rank(n * 16).schedule_keyed(t, ek, &prog, ek);
      }
    }
    eng.run_all();
    std::vector<std::vector<std::pair<TimeNs, std::uint64_t>>> logs;
    for (NodeProgram& prog : nodes) logs.push_back(std::move(prog.fired));
    if (reference.empty())
      reference = std::move(logs);
    else
      ASSERT_EQ(logs, reference)
          << "thread-pool execution diverged from inline execution";
  }
}

TEST(ShardedEngineDeath, ZeroLookaheadAborts) {
  const ClusterTopology topo(32, 16);
  EXPECT_DEATH(ShardedEngine(topo, 2, 0, nullptr), "lookahead");
}

}  // namespace
}  // namespace amr
