#include "amr/des/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace amr {
namespace {

class Recorder final : public EventHandler {
 public:
  void on_event(Engine& engine, std::uint64_t tag) override {
    log.emplace_back(engine.now(), tag);
  }
  std::vector<std::pair<TimeNs, std::uint64_t>> log;
};

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  Recorder rec;
  engine.schedule_at(30, &rec, 3);
  engine.schedule_at(10, &rec, 1);
  engine.schedule_at(20, &rec, 2);
  engine.run();
  ASSERT_EQ(rec.log.size(), 3u);
  EXPECT_EQ(rec.log[0], std::make_pair(TimeNs{10}, std::uint64_t{1}));
  EXPECT_EQ(rec.log[1], std::make_pair(TimeNs{20}, std::uint64_t{2}));
  EXPECT_EQ(rec.log[2], std::make_pair(TimeNs{30}, std::uint64_t{3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  Recorder rec;
  for (std::uint64_t i = 0; i < 100; ++i) engine.schedule_at(5, &rec, i);
  engine.run();
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(rec.log[i].second, i);
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  Engine engine;
  class Chain final : public EventHandler {
   public:
    void on_event(Engine& engine, std::uint64_t tag) override {
      ++fired;
      if (tag > 0) engine.schedule_after(10, this, tag - 1);
    }
    int fired = 0;
  } chain;
  engine.schedule_at(0, &chain, 4);
  engine.run();
  EXPECT_EQ(chain.fired, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(Engine, CallAtRunsCallbacksAndRecyclesSlots) {
  Engine engine;
  int calls = 0;
  for (int i = 0; i < 10; ++i)
    engine.call_at(i * 10, [&](Engine&) { ++calls; });
  engine.run();
  EXPECT_EQ(calls, 10);
  // Slots recycled: more callbacks after a run still work.
  engine.call_after(5, [&](Engine&) { ++calls; });
  engine.run();
  EXPECT_EQ(calls, 11);
}

TEST(Engine, CallbackCanScheduleCallback) {
  Engine engine;
  std::vector<TimeNs> times;
  engine.call_at(10, [&](Engine& e) {
    times.push_back(e.now());
    e.call_after(15, [&](Engine& e2) { times.push_back(e2.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 25);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  Recorder rec;
  engine.schedule_at(10, &rec, 1);
  engine.schedule_at(50, &rec, 2);
  engine.run_until(30);
  EXPECT_EQ(rec.log.size(), 1u);
  EXPECT_EQ(engine.now(), 30);
  engine.run();
  EXPECT_EQ(rec.log.size(), 2u);
}

TEST(Engine, ScheduleBelowPendingMinimumAfterRunUntil) {
  // run_until can advance the radix bucketing reference to the earliest
  // *pending* time (here 100) while now() stops at t_end (50). A later
  // schedule at now() <= t < 100 is legal and must still dispatch in
  // (time, schedule order) — this used to corrupt the bucket invariant
  // and abort.
  Engine engine;
  Recorder rec;
  engine.schedule_at(100, &rec, 100);
  engine.run_until(50);
  EXPECT_EQ(engine.now(), 50);
  EXPECT_EQ(rec.log.size(), 0u);
  engine.schedule_at(60, &rec, 60);
  engine.schedule_at(55, &rec, 55);
  engine.schedule_at(60, &rec, 61);  // equal-time FIFO across the rebucket
  engine.run();
  ASSERT_EQ(rec.log.size(), 4u);
  EXPECT_EQ(rec.log[0], std::make_pair(TimeNs{55}, std::uint64_t{55}));
  EXPECT_EQ(rec.log[1], std::make_pair(TimeNs{60}, std::uint64_t{60}));
  EXPECT_EQ(rec.log[2], std::make_pair(TimeNs{60}, std::uint64_t{61}));
  EXPECT_EQ(rec.log[3], std::make_pair(TimeNs{100}, std::uint64_t{100}));
}

TEST(Engine, FuzzRunUntilInterleavedSchedulesMatchStableSortReference) {
  // Drive the engine the way external harnesses do: bursts of schedules
  // (often below the advanced bucketing reference, always >= now()) and
  // run_until in small increments. Dispatch order must still equal a
  // stable sort by time of everything scheduled.
  for (const std::uint64_t seed : {3u, 11u, 2024u}) {
    std::mt19937_64 rng(seed);
    Engine engine;
    Recorder rec;
    std::vector<std::pair<TimeNs, std::uint64_t>> model;
    std::uint64_t tag = 0;
    TimeNs horizon = 0;
    for (int round = 0; round < 300; ++round) {
      const int burst = static_cast<int>(rng() % 4);
      for (int k = 0; k < burst; ++k) {
        const TimeNs t = engine.now() + static_cast<TimeNs>(rng() % 256);
        model.emplace_back(t, tag);
        engine.schedule_at(t, &rec, tag++);
      }
      horizon += static_cast<TimeNs>(rng() % 64);
      engine.run_until(horizon);
    }
    engine.run();
    std::stable_sort(
        model.begin(), model.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(rec.log.size(), model.size()) << "seed " << seed;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(rec.log[i], model[i]) << "seed " << seed << " position "
                                      << i;
    }
  }
}

TEST(Engine, RunUntilOnEmptyQueueAdvancesClock) {
  Engine engine;
  engine.run_until(1000);
  EXPECT_EQ(engine.now(), 1000);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  Recorder rec;
  engine.schedule_at(1, &rec, 0);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, CountsProcessedEvents) {
  Engine engine;
  Recorder rec;
  for (int i = 0; i < 7; ++i) engine.schedule_at(i, &rec, 0);
  EXPECT_EQ(engine.run(), 7u);
  EXPECT_EQ(engine.events_processed(), 7u);
}

TEST(Engine, FuzzDispatchOrderMatchesStableSortReference) {
  // The radix queue must dispatch in exactly (time, schedule order) —
  // the same order as a stable sort of everything ever scheduled. The
  // fuzzer records (time, tag) at schedule time, including events
  // scheduled from inside handlers mid-run (the monotone case the
  // bucket structure exploits), then replays the log against the
  // stable-sorted model.
  class Fuzzer final : public EventHandler {
   public:
    std::mt19937_64 rng;
    std::vector<std::pair<TimeNs, std::uint64_t>> model;
    std::vector<std::pair<TimeNs, std::uint64_t>> fired;
    std::uint64_t next_tag = 0;
    int budget = 0;

    void schedule(Engine& engine, TimeNs t) {
      model.emplace_back(t, next_tag);
      engine.schedule_at(t, this, next_tag);
      ++next_tag;
    }
    void on_event(Engine& engine, std::uint64_t tag) override {
      fired.emplace_back(engine.now(), tag);
      if (budget > 0 && rng() % 4 != 0) {
        --budget;
        const int extra = static_cast<int>(rng() % 3);
        for (int k = 0; k < extra; ++k)
          schedule(engine,
                   engine.now() + static_cast<TimeNs>(rng() % 128));
      }
    }
  };

  for (const std::uint64_t seed : {1u, 7u, 42u, 1337u}) {
    Engine engine;
    Fuzzer fuzz;
    fuzz.rng.seed(seed);
    fuzz.budget = 400;
    // Clustered initial times force equal-time FIFO and deep buckets.
    for (int i = 0; i < 300; ++i)
      fuzz.schedule(engine, static_cast<TimeNs>(fuzz.rng() % 1024));
    engine.run();

    auto expected = fuzz.model;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(fuzz.fired.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(fuzz.fired[i], expected[i])
          << "seed " << seed << " position " << i;
    }
  }
}

TEST(EngineDeath, SchedulingIntoThePastAborts) {
  Engine engine;
  Recorder rec;
  engine.schedule_at(100, &rec, 0);
  engine.run();
  EXPECT_DEATH(engine.schedule_at(50, &rec, 0), "past");
}

}  // namespace
}  // namespace amr
