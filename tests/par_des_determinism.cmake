# Asserts the sharded-DES determinism contract end-to-end: sedov_sim
# stdout must be byte-identical for every --des-shards value >= 1 —
# shard count is a pure performance knob, never an answer knob — with
# fault injection and message aggregation active:
#   1. --des-shards=1 / 2 / 8 produce identical stdout (8 clamps to the
#      node count, exercising the clamp path too),
#   2. a sharded run restored from a snapshot written under a DIFFERENT
#      shard count continues byte-identically (the snapshot records the
#      sharded bool, not the count; all sharded state is node-indexed),
#   3. a sharded snapshot must refuse to restore into a sequential run
#      (config fingerprint mismatch: the two modes draw different fabric
#      jitter and are not comparable).
# Runs under every AMR_SANITIZE build tree; the thread-sanitizer tree is
# the one that would catch a cross-shard data race. Invoked from
# bench/CMakeLists.txt; -DSEDOV names the sedov_sim binary, -DWORK_DIR a
# scratch directory for checkpoint files.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 64 ranks / 16 per node = 4 nodes, so 1, 2, and 8(->4) shards genuinely
# partition the queue differently.
set(args cpl50 64 24 --faults=2 --aggregate)

execute_process(
  COMMAND "${SEDOV}" ${args} --des-shards=1
  OUTPUT_VARIABLE out_s1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" ${args} --des-shards=2
  OUTPUT_VARIABLE out_s2 RESULT_VARIABLE rc2)
execute_process(
  COMMAND "${SEDOV}" ${args} --des-shards=8
  OUTPUT_VARIABLE out_s8 RESULT_VARIABLE rc8)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--des-shards=1 run failed (exit ${rc1})")
endif()
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "--des-shards=2 run failed (exit ${rc2})")
endif()
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "--des-shards=8 run failed (exit ${rc8})")
endif()
if(NOT out_s1 STREQUAL out_s2)
  message(FATAL_ERROR "stdout differs between --des-shards=1 and "
                      "--des-shards=2: shard partitioning changed the "
                      "simulated answer")
endif()
if(NOT out_s1 STREQUAL out_s8)
  message(FATAL_ERROR "stdout differs between --des-shards=1 and "
                      "--des-shards=8: shard partitioning changed the "
                      "simulated answer")
endif()

# Checkpoint under 2 shards, restore under 1 and 8: the uninterrupted
# single-shard output is the reference for all of them.
execute_process(
  COMMAND "${SEDOV}" ${args} --des-shards=2
          --checkpoint-every=7 --checkpoint-dir=${WORK_DIR}
  OUTPUT_VARIABLE out_ck RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing sharded run failed (exit ${rc})")
endif()
if(NOT out_s1 STREQUAL out_ck)
  message(FATAL_ERROR "writing checkpoints changed sharded stdout")
endif()

file(GLOB snapshots "${WORK_DIR}/ckpt_*.amrs")
if(snapshots STREQUAL "")
  message(FATAL_ERROR "checkpointing sharded run wrote no snapshots")
endif()
foreach(snapshot IN LISTS snapshots)
  foreach(shards 1 8)
    execute_process(
      COMMAND "${SEDOV}" ${args} --des-shards=${shards}
              --restore=${snapshot}
      OUTPUT_VARIABLE out_restored RESULT_VARIABLE rc
      ERROR_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "restore from ${snapshot} under "
                          "--des-shards=${shards} failed (exit ${rc})")
    endif()
    if(NOT out_s1 STREQUAL out_restored)
      message(FATAL_ERROR "stdout differs between the uninterrupted "
                          "sharded run and the run restored from "
                          "${snapshot} under --des-shards=${shards}: "
                          "the sharded determinism contract is broken")
    endif()
  endforeach()
endforeach()

# Sharded-vs-sequential is a fingerprint axis: restoring a sharded
# snapshot without --des-shards must fail with a diagnostic.
list(GET snapshots 0 snapshot)
execute_process(
  COMMAND "${SEDOV}" ${args} --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring a sharded snapshot without "
                      "--des-shards unexpectedly succeeded")
endif()
if(NOT err MATCHES "sharded")
  message(FATAL_ERROR "mismatched-sharding restore failed without "
                      "naming the sharded mode: ${err}")
endif()
