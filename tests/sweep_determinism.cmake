# Asserts the parallel-sweep determinism contract end-to-end: the bench
# named in -DBENCH must produce byte-identical stdout at --jobs=1 and
# --jobs=8. Invoked from bench/CMakeLists.txt as a ctest entry.
execute_process(COMMAND "${BENCH}" --quick --jobs=1
                OUTPUT_VARIABLE out1 RESULT_VARIABLE rc1)
execute_process(COMMAND "${BENCH}" --quick --jobs=8
                OUTPUT_VARIABLE out8 RESULT_VARIABLE rc8)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--jobs=1 run failed (exit ${rc1})")
endif()
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "--jobs=8 run failed (exit ${rc8})")
endif()
if(NOT out1 STREQUAL out8)
  message(FATAL_ERROR "--jobs=8 stdout differs from --jobs=1: the sweep "
                      "determinism contract is broken")
endif()
