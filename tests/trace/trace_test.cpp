// Tests for the amr::trace subsystem: ring-buffer semantics, the Chrome
// Trace Event exporter (golden file + structural properties on a real
// run), and the trace -> Table -> Query round trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "amr/placement/baseline.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/query.hpp"
#include "amr/trace/chrome_export.hpp"
#include "amr/trace/json_check.hpp"
#include "amr/trace/trace_tables.hpp"
#include "amr/trace/tracer.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

TEST(TracerRing, OverflowDropsOldestAndCounts) {
  TraceConfig cfg;
  cfg.capacity = 8;
  Tracer tracer(cfg);
  for (std::int64_t i = 0; i < 20; ++i)
    tracer.instant(0, TraceCat::kSend, "ev", i, i);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(tracer.recorded(), 20u);
  // Survivors are the newest events, oldest-first.
  std::vector<std::int64_t> ts;
  tracer.for_each([&](const TraceEvent& ev) { ts.push_back(ev.ts); });
  ASSERT_EQ(ts.size(), 8u);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(ts[i], static_cast<std::int64_t>(12 + i));
}

TEST(TracerRing, ClearResets) {
  Tracer tracer(TraceConfig{.capacity = 4});
  for (int i = 0; i < 6; ++i)
    tracer.instant(0, TraceCat::kSend, "ev", i);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  tracer.instant(0, TraceCat::kSend, "ev", 99);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerRing, DisabledCategoryIsNoOp) {
  TraceConfig cfg;
  cfg.categories = kDefaultTraceCategories;  // excludes kDes
  Tracer tracer(cfg);
  tracer.instant(0, TraceCat::kDes, "dispatch", 1);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);

  cfg.categories = 0;
  Tracer off(cfg);
  EXPECT_EQ(off.flow_begin(0, TraceCat::kMsg, "p2p", 1), 0u);
  off.flow_end(1, TraceCat::kMsg, "p2p", 2, 0);
  EXPECT_EQ(off.size(), 0u);
}

/// A small deterministic trace touching every event type and track kind.
Tracer make_reference_trace() {
  TraceConfig cfg;
  cfg.ranks_per_node = 2;
  Tracer tracer(cfg);
  tracer.complete(Tracer::kTrackSim, TraceCat::kStep, "step", 0, 5000, 0, 0);
  tracer.complete(0, TraceCat::kCompute, "compute", 100, 1200, 0);
  tracer.complete(0, TraceCat::kPack, "pack", 1300, 400, 4096, 2);
  const std::uint64_t flow =
      tracer.flow_begin(0, TraceCat::kMsg, "p2p", 1699, 4096, 2);
  tracer.instant(0, TraceCat::kSend, "isend", 1700, 4096, 2);
  tracer.begin(2, TraceCat::kRecvWait, "recv-wait", 200);
  tracer.flow_end(2, TraceCat::kMsg, "p2p", 2400, flow, 4096, 0);
  tracer.end(2, TraceCat::kRecvWait, "recv-wait", 2400, 0);
  tracer.counter(Tracer::fabric_track(0), TraceCat::kFabric,
                 "nic_backlog_ns", 1800, 350);
  tracer.instant(Tracer::kTrackSim, TraceCat::kFault, "fault-onset", 2500,
                 1, 400);
  tracer.complete(Tracer::kTrackCrit, TraceCat::kCritPath, "crit:2-rank",
                  0, 4800, 2, 0);
  return tracer;
}

TEST(ChromeExport, MatchesGoldenFile) {
  const Tracer tracer = make_reference_trace();
  const std::string json = chrome_trace_json(tracer);
  ASSERT_TRUE(json_valid(json));

  const std::string path =
      std::string(AMR_TRACE_GOLDEN_DIR) + "/reference_trace.json";
  if (std::getenv("AMR_TRACE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << json;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with AMR_TRACE_REGEN_GOLDEN=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str());
}

TEST(ChromeExport, OrphanEndsFromDropsAreFiltered) {
  TraceConfig cfg;
  cfg.capacity = 4;
  Tracer tracer(cfg);
  tracer.begin(0, TraceCat::kRecvWait, "recv-wait", 10);
  for (int i = 0; i < 8; ++i)  // evict the begin
    tracer.instant(0, TraceCat::kSend, "ev", 20 + i);
  tracer.end(0, TraceCat::kRecvWait, "recv-wait", 30);
  const std::string json = chrome_trace_json(tracer);
  ASSERT_TRUE(json_valid(json));
  // The orphaned end must not appear: B and E counts stay equal (both 0).
  std::size_t b = 0;
  std::size_t e = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"", pos)) != std::string::npos; pos += 6) {
    if (json[pos + 6] == 'B') ++b;
    if (json[pos + 6] == 'E') ++e;
  }
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 0u);
}

/// Minimal field scraping for the exporter's one-event-per-line output.
struct EventLine {
  char ph = 0;
  long long pid = 0;
  long long tid = 0;
  double ts = 0.0;
  long long id = -1;
};

bool parse_event_line(const std::string& line, EventLine& out) {
  const auto ph = line.find("\"ph\":\"");
  if (ph == std::string::npos) return false;
  out.ph = line[ph + 6];
  const auto pid = line.find("\"pid\":");
  if (pid == std::string::npos) return false;
  out.pid = std::atoll(line.c_str() + pid + 6);
  const auto tid = line.find("\"tid\":");
  out.tid = tid != std::string::npos ? std::atoll(line.c_str() + tid + 6) : 0;
  const auto ts = line.find("\"ts\":");
  out.ts = ts != std::string::npos ? std::atof(line.c_str() + ts + 5) : 0.0;
  const auto id = line.find("\"id\":");
  out.id = id != std::string::npos ? std::atoll(line.c_str() + id + 5) : -1;
  return true;
}

SimulationConfig small_traced_config() {
  SimulationConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  cfg.root_grid = RootGrid{2, 2, 2};
  cfg.steps = 6;
  cfg.trace_enabled = true;
  cfg.trace.capacity = 1u << 20;  // hold the full run, no drops
  ThrottleFault fault;
  fault.nodes = {1};
  fault.factor = 4.0;
  fault.onset_step = 2;
  fault.end_step = 3;
  cfg.faults.add_throttle(fault);
  return cfg;
}

TEST(ChromeExport, SedovTraceIsWellFormed) {
  SimulationConfig cfg = small_traced_config();
  SedovParams sp;
  sp.total_steps = cfg.steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const BaselinePolicy policy;
  Simulation sim(cfg, sedov, policy);
  sim.run();
  ASSERT_NE(sim.tracer(), nullptr);
  EXPECT_EQ(sim.tracer()->dropped(), 0u);
  EXPECT_GT(sim.tracer()->size(), 0u);

  const std::string json = chrome_trace_json(*sim.tracer());
  ASSERT_TRUE(json_valid(json));

  // Structural properties, line by line: per-(pid, tid) timestamps are
  // monotonic, B/E pairs nest, and every flow target has a prior origin.
  std::map<std::pair<long long, long long>, double> last_ts;
  std::map<std::pair<long long, long long>, long long> depth;
  std::set<long long> flow_origins;
  std::size_t events = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    EventLine ev;
    if (!parse_event_line(line, ev) || ev.ph == 'M') continue;
    ++events;
    const auto key = std::make_pair(ev.pid, ev.tid);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ev.ts, it->second);
    }
    last_ts[key] = ev.ts;
    if (ev.ph == 'B') ++depth[key];
    if (ev.ph == 'E') {
      --depth[key];
      EXPECT_GE(depth[key], 0) << "unmatched E on pid=" << ev.pid
                               << " tid=" << ev.tid;
    }
    if (ev.ph == 's') flow_origins.insert(ev.id);
    if (ev.ph == 'f') {
      EXPECT_TRUE(flow_origins.contains(ev.id));
    }
  }
  EXPECT_GT(events, 100u);
  for (const auto& [key, d] : depth)
    EXPECT_EQ(d, 0) << "open span on pid=" << key.first
                    << " tid=" << key.second;
  // The overlay and fault instrumentation made it into the stream.
  EXPECT_NE(json.find("\"crit:"), std::string::npos);
  EXPECT_NE(json.find("fault-onset"), std::string::npos);
  EXPECT_NE(json.find("fault-clear"), std::string::npos);
  EXPECT_NE(json.find("rebalance"), std::string::npos);
}

TEST(ChromeExport, DesCategoryRecordsDispatchInstants) {
  SimulationConfig cfg = small_traced_config();
  cfg.steps = 2;
  cfg.trace.categories = kAllTraceCategories;  // opt in to kDes volume
  SedovParams sp;
  sp.total_steps = cfg.steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const BaselinePolicy policy;
  Simulation sim(cfg, sedov, policy);
  sim.run();
  std::size_t dispatches = 0;
  sim.tracer()->for_each([&](const TraceEvent& ev) {
    if (ev.cat == TraceCat::kDes) ++dispatches;
  });
  EXPECT_GT(dispatches, 0u);
}

TEST(TraceTables, RoundTripMatchesCollectorViaQuery) {
  SimulationConfig cfg = small_traced_config();
  SedovParams sp;
  sp.total_steps = cfg.steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const BaselinePolicy policy;
  Simulation sim(cfg, sedov, policy);
  sim.run();
  ASSERT_NE(sim.tracer(), nullptr);
  ASSERT_EQ(sim.tracer()->dropped(), 0u);

  TraceTables tables = trace_to_tables(*sim.tracer());
  EXPECT_GT(tables.spans.num_rows(), 0u);
  EXPECT_GT(tables.instants.num_rows(), 0u);
  EXPECT_GT(tables.counters.num_rows(), 0u);

  // Per-rank compute from the event stream must equal the aggregate the
  // Collector recorded — same run, two observability layers.
  const Table by_track =
      Query(tables.spans)
          .filter_i64("cat",
                      [](std::int64_t c) {
                        return c == static_cast<std::int64_t>(
                                        TraceCat::kCompute);
                      })
          .group_by({"track"})
          .agg({{"dur_ns", Agg::kSum, "compute_ns"}});
  const Table by_rank =
      Query(sim.collector().phases())
          .filter_i64("phase",
                      [](std::int64_t p) {
                        return p ==
                               static_cast<std::int64_t>(Phase::kCompute);
                      })
          .group_by({"rank"})
          .agg({{"dur_ns", Agg::kSum, "compute_ns"}});

  std::map<std::int64_t, double> trace_sum;
  for (std::size_t r = 0; r < by_track.num_rows(); ++r)
    trace_sum[by_track.ivalue(0, r)] = by_track.value(1, r);
  ASSERT_EQ(by_rank.num_rows(), static_cast<std::size_t>(cfg.nranks));
  for (std::size_t r = 0; r < by_rank.num_rows(); ++r) {
    const std::int64_t rank = by_rank.ivalue(0, r);
    ASSERT_TRUE(trace_sum.contains(rank)) << "rank " << rank;
    EXPECT_DOUBLE_EQ(trace_sum[rank], by_rank.value(1, r))
        << "rank " << rank;
  }

  // Satellite API: tables report and release their storage.
  EXPECT_GT(tables.spans.bytes_used(), 0u);
  tables.spans.clear();
  EXPECT_EQ(tables.spans.num_rows(), 0u);
  EXPECT_EQ(tables.spans.bytes_used(), 0u);
}

TEST(TraceTables, OrphanedEndsAreOmitted) {
  TraceConfig cfg;
  cfg.capacity = 4;
  Tracer tracer(cfg);
  tracer.begin(0, TraceCat::kRecvWait, "recv-wait", 10);
  for (int i = 0; i < 8; ++i)
    tracer.instant(0, TraceCat::kSend, "ev", 20 + i);
  tracer.end(0, TraceCat::kRecvWait, "recv-wait", 30);
  const TraceTables tables = trace_to_tables(tracer);
  EXPECT_EQ(tables.spans.num_rows(), 0u);
}

TEST(CollectorApi, ClearAndBytesUsed) {
  Collector collector;
  EXPECT_EQ(collector.bytes_used(), 0u);
  for (int s = 0; s < 4; ++s)
    for (int r = 0; r < 8; ++r) {
      collector.record_phase(s, r, Phase::kCompute, 1000);
      collector.record_comm(s, r, 1, 2, 64, 128, 10, 20);
      collector.record_block(s, r, r, 500);
    }
  EXPECT_GT(collector.bytes_used(), 0u);
  EXPECT_EQ(collector.phases().num_rows(), 32u);
  collector.clear();
  EXPECT_EQ(collector.phases().num_rows(), 0u);
  EXPECT_EQ(collector.comm().num_rows(), 0u);
  EXPECT_EQ(collector.blocks().num_rows(), 0u);
  EXPECT_EQ(collector.bytes_used(), 0u);
  // Schemas survive: recording still works after a clear.
  collector.record_phase(9, 0, Phase::kSync, 7);
  EXPECT_EQ(collector.phases().num_rows(), 1u);
}

}  // namespace
}  // namespace amr
