// The serve stack in-process: the line protocol must parse exactly the
// documented dialect and reject everything else, the query endpoint must
// agree with the underlying Query engine, and the QuantumScheduler must
// honor the byte-identity contract — a job's report text is the same
// standalone, multiplexed with any tenant mix, with plan sharing on or
// off, and across eviction/restore cycles (including evictions landing
// inside a fault window).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "amr/serve/job_protocol.hpp"
#include "amr/serve/query_endpoint.hpp"
#include "amr/serve/scheduler.hpp"
#include "amr/telemetry/query.hpp"

namespace amr::serve {
namespace {

// ---------------------------------------------------------------- protocol

TEST(JobProtocol, BlankAndCommentLinesAreIgnored) {
  EXPECT_EQ(parse_serve_line("").kind, ServeRequest::Kind::kNone);
  EXPECT_EQ(parse_serve_line("   \t ").kind, ServeRequest::Kind::kNone);
  EXPECT_EQ(parse_serve_line("# a comment").kind,
            ServeRequest::Kind::kNone);
}

TEST(JobProtocol, JobObjectPopulatesTheSpec) {
  const ServeRequest req = parse_serve_line(
      "{\"id\": \"what-if\", \"workload\": \"cooling\", \"policy\": "
      "\"lpt\", \"ranks\": 128, \"steps\": 12, \"execution\": "
      "\"overlap\", \"faults\": 2, \"send_priority\": true}");
  ASSERT_EQ(req.kind, ServeRequest::Kind::kJob);
  EXPECT_EQ(req.job.id, "what-if");
  EXPECT_EQ(req.job.workload, "cooling");
  EXPECT_EQ(req.job.policy, "lpt");
  EXPECT_EQ(req.job.ranks, 128);
  EXPECT_EQ(req.job.steps, 12);
  EXPECT_TRUE(req.job.overlap);
  EXPECT_EQ(req.job.fault_nodes, 2);
  EXPECT_TRUE(req.job.send_priority);
  // Untouched fields keep the `amrcplx run` defaults.
  EXPECT_FALSE(req.job.aggregate);
  EXPECT_TRUE(req.job.incremental_plans);
}

TEST(JobProtocol, UnknownAndMistypedFieldsAreRejected) {
  // A typo'd key must fail the line, not silently run a default config.
  const ServeRequest typo = parse_serve_line("{\"polcy\": \"lpt\"}");
  ASSERT_EQ(typo.kind, ServeRequest::Kind::kError);
  EXPECT_NE(typo.error.find("polcy"), std::string::npos);

  EXPECT_EQ(parse_serve_line("{\"ranks\": \"64\"}").kind,
            ServeRequest::Kind::kError);
  EXPECT_EQ(parse_serve_line("{\"execution\": \"fancy\"}").kind,
            ServeRequest::Kind::kError);
  EXPECT_EQ(parse_serve_line("{\"policy\": \"lpt\"} trailing").kind,
            ServeRequest::Kind::kError);
  EXPECT_EQ(parse_serve_line("{\"policy\" \"lpt\"}").kind,
            ServeRequest::Kind::kError);
}

TEST(JobProtocol, QueryAndStatsCommands) {
  const ServeRequest q =
      parse_serve_line("query sweep-3 select * from comm limit 5");
  ASSERT_EQ(q.kind, ServeRequest::Kind::kQuery);
  EXPECT_EQ(q.query_job, "sweep-3");
  EXPECT_EQ(q.query_text, "select * from comm limit 5");

  EXPECT_EQ(parse_serve_line("stats").kind, ServeRequest::Kind::kStats);
  EXPECT_EQ(parse_serve_line("query lonely").kind,
            ServeRequest::Kind::kError);
  EXPECT_EQ(parse_serve_line("frobnicate now").kind,
            ServeRequest::Kind::kError);
}

// ----------------------------------------------------------- query endpoint

Table phases_fixture() {
  Table t("phases", {{"step", ColType::kI64},
                     {"rank", ColType::kI64},
                     {"phase", ColType::kI64},
                     {"dur_ns", ColType::kI64}});
  for (std::int64_t s = 0; s < 3; ++s)
    for (std::int64_t r = 0; r < 2; ++r)
      for (std::int64_t p = 0; p < 2; ++p)
        t.append_row({s, r, p, 1000 * s + 100 * r + p});
  return t;
}

TEST(QueryEndpoint, SelectStarMatchesTheQueryEngine) {
  const Table t = phases_fixture();
  JobTables tables;
  tables.phases = &t;

  std::string out;
  ASSERT_EQ(run_table_query(
                tables, "select * from phases where rank == 1 and step >= 1",
                out),
            "");
  // The endpoint shapes order/limit with a second Query pass even when
  // both are absent, so mirror that exactly (it renames the table).
  const Table filtered =
      Query(t)
          .filter("rank", [](double r) { return r == 1.0; })
          .filter("step", [](double s) { return s >= 1.0; })
          .run();
  const Table want = Query(filtered).run();
  EXPECT_EQ(out, want.format(want.num_rows()));
}

TEST(QueryEndpoint, AggregatesMatchTheQueryEngine) {
  const Table t = phases_fixture();
  JobTables tables;
  tables.phases = &t;

  std::string out;
  ASSERT_EQ(run_table_query(tables,
                            "select sum(dur_ns) as total, count from phases "
                            "group by rank order by total desc",
                            out),
            "");
  Table grouped = Query(t).group_by({"rank"}).agg(
      {{"dur_ns", Agg::kSum, "total"}, {"", Agg::kCount, "count"}});
  Query shaper(grouped);
  shaper.sort_by("total", /*descending=*/true);
  const Table want = shaper.run();
  EXPECT_EQ(out, want.format(want.num_rows()));
}

TEST(QueryEndpoint, MalformedStatementsReportAndLeaveOutputUntouched) {
  const Table t = phases_fixture();
  JobTables tables;
  tables.phases = &t;

  const std::vector<std::string> bad = {
      "order by dur_ns",                         // no select
      "select * from nowhere",                   // unknown table
      "select * from shards",                    // table not collected
      "select sum(dur_ns) from phases",          // aggregate, no group by
      "select * from phases group by rank",      // star cannot group
      "select * from phases where nope == 1",    // unknown column
      "select * from phases where rank ~ 1",     // unknown operator
      "select * from phases where rank == one",  // non-numeric literal
      "select median(dur_ns) from phases group by rank",  // unknown agg
      "select * from phases limit -3",           // bad limit
      "select * from phases bonus tokens",       // trailing tokens
  };
  for (const std::string& text : bad) {
    std::string out;
    EXPECT_NE(run_table_query(tables, text, out), "") << text;
    EXPECT_TRUE(out.empty()) << text;
  }
}

// -------------------------------------------------- scheduler determinism

/// The reference rendering: the job run alone, straight through
/// SimDriver, exactly as `amrcplx run` would.
std::string standalone_text(const JobSpec& spec) {
  SimDriver driver(spec);
  return compact_report_text(driver.run(),
                             spec.aggregate || spec.comm_adaptive);
}

std::vector<JobSpec> mixed_fleet() {
  // Two identical-fingerprint tenants (the plan-sharing case), a
  // different policy, and an overlap-mode tenant (the isolation case).
  JobSpec a;
  a.ranks = 64;
  a.steps = 8;
  a.policy = "cpl50";
  JobSpec b = a;
  JobSpec c = a;
  c.policy = "lpt";
  JobSpec d = a;
  d.overlap = true;
  return {a, b, c, d};
}

TEST(QuantumScheduler, MultiplexedOutputMatchesStandalone) {
  const std::vector<JobSpec> fleet = mixed_fleet();
  std::vector<std::string> want;
  for (const JobSpec& spec : fleet) want.push_back(standalone_text(spec));

  ServeOptions opts;
  opts.quantum_steps = 3;  // 8 steps -> 3 slices per tenant
  opts.serve_jobs = 2;
  QuantumScheduler sched(opts);
  for (const JobSpec& spec : fleet) sched.submit(spec);
  sched.drain();

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const JobResult* r = sched.result(static_cast<std::int64_t>(i));
    ASSERT_NE(r, nullptr) << i;
    ASSERT_TRUE(r->ok) << r->error;
    EXPECT_EQ(r->text, want[i]) << "job " << i;
    // collect_telemetry defaults on: the query endpoint has tables.
    EXPECT_NE(r->phases, nullptr);
    EXPECT_NE(r->comm, nullptr);
  }

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.jobs, 4);
  EXPECT_EQ(s.slices, 4 * 3);
  EXPECT_EQ(s.evictions, 0);
  // The identical-fingerprint pair shares plans; every epoch the second
  // tenant reaches is a store hit.
  EXPECT_GT(s.plan_share_hits, 0);
  EXPECT_GT(s.store.hits, 0);
}

TEST(QuantumScheduler, PlanSharingDoesNotChangeOutput) {
  const std::vector<JobSpec> fleet = mixed_fleet();

  ServeOptions shared;
  shared.quantum_steps = 4;
  QuantumScheduler with(shared);
  ServeOptions isolated = shared;
  isolated.share_plans = false;
  QuantumScheduler without(isolated);
  for (const JobSpec& spec : fleet) {
    with.submit(spec);
    without.submit(spec);
  }
  with.drain();
  without.drain();

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = static_cast<std::int64_t>(i);
    ASSERT_TRUE(with.result(id)->ok);
    ASSERT_TRUE(without.result(id)->ok);
    EXPECT_EQ(with.result(id)->text, without.result(id)->text) << i;
  }
  EXPECT_GT(with.stats().store.hits, 0);
  EXPECT_EQ(without.stats().store.hits, 0);
  EXPECT_EQ(without.stats().plan_share_hits, 0);
}

TEST(QuantumScheduler, EvictionInsideFaultWindowMatchesStandalone) {
  // Satellite contract: a tenant evicted between the fault onset and
  // clearance edges (steps/4 and 3*steps/4) must restore and finish
  // with byte-identical output. max_resident=0 forces an evict/restore
  // cycle around every slice.
  JobSpec faulty;
  faulty.ranks = 64;
  faulty.steps = 8;
  faulty.fault_nodes = 1;  // window: steps 2..6
  JobSpec plain = faulty;
  plain.fault_nodes = 0;
  const std::string want_faulty = standalone_text(faulty);
  const std::string want_plain = standalone_text(plain);
  // Faults must matter, or this test proves nothing.
  ASSERT_NE(want_faulty, want_plain);

  ServeOptions opts;
  opts.quantum_steps = 2;  // slice boundaries at steps 2, 4, 6 — inside
  opts.max_resident_mb = 0;
  opts.spill_dir = ::testing::TempDir();
  QuantumScheduler sched(opts);
  sched.submit(faulty);
  sched.submit(plain);
  sched.drain();

  ASSERT_TRUE(sched.result(0)->ok) << sched.result(0)->error;
  ASSERT_TRUE(sched.result(1)->ok) << sched.result(1)->error;
  EXPECT_EQ(sched.result(0)->text, want_faulty);
  EXPECT_EQ(sched.result(1)->text, want_plain);

  const SchedulerStats s = sched.stats();
  EXPECT_GT(s.evictions, 0);
  EXPECT_GT(s.restores, 0);
}

TEST(QuantumScheduler, InvalidSpecsFailAtSubmitWithoutPoisoningTheQueue) {
  JobSpec contradictory;
  contradictory.restore = "a.amrs";
  contradictory.replay = "b.amrs";
  JobSpec unknown_policy;
  unknown_policy.policy = "no-such-policy";
  unknown_policy.ranks = 64;
  unknown_policy.steps = 4;
  JobSpec fine;
  fine.ranks = 64;
  fine.steps = 4;

  QuantumScheduler sched(ServeOptions{});
  sched.submit(contradictory);
  sched.submit(unknown_policy);
  sched.submit(fine);
  sched.drain();

  ASSERT_NE(sched.result(0), nullptr);
  EXPECT_FALSE(sched.result(0)->ok);
  EXPECT_EQ(sched.result(0)->error, validate_job(contradictory));
  // The unknown policy passes validation but fails construction; the
  // error lands in the result instead of throwing out of drain().
  ASSERT_NE(sched.result(1), nullptr);
  EXPECT_FALSE(sched.result(1)->ok);
  EXPECT_FALSE(sched.result(1)->error.empty());
  ASSERT_NE(sched.result(2), nullptr);
  EXPECT_TRUE(sched.result(2)->ok);
  EXPECT_EQ(sched.result(2)->text, standalone_text(fine));
}

TEST(QuantumScheduler, RejectsIncoherentOptions) {
  ServeOptions zero_quantum;
  zero_quantum.quantum_steps = 0;
  EXPECT_THROW(QuantumScheduler{zero_quantum}, std::runtime_error);
  ServeOptions no_jobs;
  no_jobs.serve_jobs = 0;
  EXPECT_THROW(QuantumScheduler{no_jobs}, std::runtime_error);
}

}  // namespace
}  // namespace amr::serve
