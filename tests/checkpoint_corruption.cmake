# A corrupted snapshot must fail the restore with a diagnostic on stderr
# and exit code 1 — never crash (the ASan ctest run of this same script
# additionally proves no out-of-bounds read on the corrupt input). Two
# corruptions are tried: bytes flipped mid-payload (checksum mismatch)
# and a truncated file (bounds check). The in-process exhaustive
# bit-flip sweep lives in tests/io/snapshot_test.cpp; this covers the
# CLI path end-to-end. Invoked from bench/CMakeLists.txt; -DSEDOV names
# the sedov_sim binary, -DWORK_DIR a scratch directory.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SEDOV}" cpl50 32 12 --faults=1
          --checkpoint-every=6 --checkpoint-dir=${WORK_DIR}
  OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing run failed (exit ${rc})")
endif()

set(snapshot "${WORK_DIR}/ckpt_6.amrs")
if(NOT EXISTS "${snapshot}")
  message(FATAL_ERROR "expected snapshot ${snapshot} was not written")
endif()

function(expect_clean_failure file what)
  execute_process(
    COMMAND "${SEDOV}" cpl50 32 12 --faults=1 --restore=${file}
    OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    message(FATAL_ERROR "restore from a ${what} snapshot succeeded")
  endif()
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "restore from a ${what} snapshot died with "
                        "'${rc}' instead of failing cleanly with exit 1")
  endif()
  if(NOT err MATCHES "snapshot")
    message(FATAL_ERROR "${what}-snapshot failure printed no diagnostic "
                        "(stderr: ${err})")
  endif()
endfunction()

# Flip bytes in the middle of the payload: overwrite 8 bytes with a
# fixed pattern the deterministic snapshot does not contain there (the
# one-shot run below would have been seen to pass vacuously otherwise).
file(SIZE "${snapshot}" size)
math(EXPR mid "${size} / 2")
set(flipped "${WORK_DIR}/flipped.amrs")
configure_file("${snapshot}" "${flipped}" COPYONLY)
file(WRITE "${WORK_DIR}/pattern.bin" "CORRUPT!")
execute_process(
  COMMAND dd if=${WORK_DIR}/pattern.bin of=${flipped} bs=1
          seek=${mid} count=8 conv=notrunc
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dd corruption helper failed (exit ${rc})")
endif()
expect_clean_failure("${flipped}" "bit-flipped")

# Truncate: cut the file mid-payload.
set(truncated "${WORK_DIR}/truncated.amrs")
execute_process(
  COMMAND dd if=${snapshot} of=${truncated} bs=1 count=${mid}
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dd truncation helper failed (exit ${rc})")
endif()
expect_clean_failure("${truncated}" "truncated")
