#include "amr/simmpi/comm.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amr {
namespace {

FabricParams quiet_params() {
  FabricParams p = FabricParams::tuned();
  p.remote_jitter = 0;
  return p;
}

/// Minimal endpoint recording callbacks.
class TestEndpoint final : public RankEndpoint {
 public:
  void on_recvs_ready(Engine& /*engine*/, std::uint64_t window, TimeNs t,
                      std::int32_t releasing_src) override {
    recv_ready_time = t;
    recv_ready_window = window;
    release_src = releasing_src;
    ++recv_ready_calls;
  }
  void on_collective_done(Engine& /*engine*/, std::uint64_t window,
                          TimeNs t) override {
    collective_time = t;
    collective_window = window;
    ++collective_calls;
  }

  TimeNs recv_ready_time = -1;
  std::uint64_t recv_ready_window = 0;
  std::int32_t release_src = -1;
  int recv_ready_calls = 0;
  TimeNs collective_time = -1;
  std::uint64_t collective_window = 0;
  int collective_calls = 0;
};

struct Harness {
  explicit Harness(std::int32_t nranks, FabricParams params = quiet_params())
      : topo(nranks, 2), fabric(topo, params, Rng(1)),
        comm(engine, fabric, nranks), endpoints(nranks) {
    for (std::int32_t r = 0; r < nranks; ++r)
      comm.set_endpoint(r, &endpoints[static_cast<std::size_t>(r)]);
  }
  Engine engine;
  ClusterTopology topo;
  Fabric fabric;
  Comm comm;
  std::vector<TestEndpoint> endpoints;
};

TEST(Comm, DeliveryCompletesExchange) {
  Harness h(4);
  h.comm.begin_exchange(1, {0, 1, 0, 0});
  h.comm.isend(0, 1, 1000, 1, 0);
  EXPECT_FALSE(h.comm.exchange_complete(1));
  h.engine.run();
  EXPECT_TRUE(h.comm.exchange_complete(1));
  h.comm.end_exchange(1);
}

TEST(Comm, WaitBeforeArrivalParksThenNotifies) {
  Harness h(4);
  h.comm.begin_exchange(2, {0, 1, 0, 0});
  const TimeNs release = h.comm.isend(0, 1, 1000, 2, 0);
  EXPECT_GT(release, 0);
  EXPECT_FALSE(h.comm.wait_recvs(1, 2, 0));
  h.engine.run();
  EXPECT_EQ(h.endpoints[1].recv_ready_calls, 1);
  EXPECT_EQ(h.endpoints[1].recv_ready_window, 2u);
  EXPECT_EQ(h.endpoints[1].release_src, 0);
  EXPECT_GT(h.endpoints[1].recv_ready_time, 0);
}

TEST(Comm, WaitAfterArrivalReturnsImmediately) {
  Harness h(4);
  h.comm.begin_exchange(3, {0, 1, 0, 0});
  h.comm.isend(0, 1, 1000, 3, 0);
  h.engine.run();
  EXPECT_TRUE(h.comm.wait_recvs(1, 3, h.engine.now()));
  EXPECT_EQ(h.endpoints[1].recv_ready_calls, 0);  // no callback needed
}

TEST(Comm, MultipleMessagesReleaseOnLastArrival) {
  Harness h(4);
  h.comm.begin_exchange(4, {0, 3, 0, 0});
  h.comm.isend(0, 1, 1000, 4, 0);
  h.comm.isend(2, 1, 1000, 4, 0);
  h.comm.isend(3, 1, 500000, 4, 0);  // big message arrives last
  EXPECT_FALSE(h.comm.wait_recvs(1, 4, 0));
  h.engine.run();
  EXPECT_EQ(h.endpoints[1].recv_ready_calls, 1);
  EXPECT_EQ(h.endpoints[1].release_src, 3);
}

TEST(Comm, CollectiveWaitsForAllRanksAndChargesOverhead) {
  Harness h(4);
  CollectiveParams cp;
  // Rebuild comm with known collective params (harness used defaults).
  Comm comm(h.engine, h.fabric, 4, cp);
  std::vector<TestEndpoint> eps(4);
  for (std::int32_t r = 0; r < 4; ++r) comm.set_endpoint(r, &eps[r]);

  comm.enter_collective(9, 0, 100);
  comm.enter_collective(9, 1, 400);
  comm.enter_collective(9, 2, 50);
  h.engine.run();
  EXPECT_EQ(eps[0].collective_calls, 0);  // rank 3 missing
  comm.enter_collective(9, 3, h.engine.now());
  h.engine.run();
  // ceil(log2(4)) = 2: overhead = alpha + 2*beta.
  const TimeNs expected =
      std::max<TimeNs>(400, 0) + cp.alpha + 2 * cp.beta;
  for (const auto& ep : eps) {
    EXPECT_EQ(ep.collective_calls, 1);
    EXPECT_EQ(ep.collective_time, expected);
    EXPECT_EQ(ep.collective_window, 9u);
  }
}

TEST(Comm, IndependentWindowsDoNotInterfere) {
  Harness h(4);
  h.comm.begin_exchange(10, {0, 1, 0, 0});
  h.comm.begin_exchange(11, {0, 0, 1, 0});
  h.comm.isend(0, 1, 100, 10, 0);
  h.comm.isend(0, 2, 100, 11, 0);
  h.engine.run();
  EXPECT_TRUE(h.comm.exchange_complete(10));
  EXPECT_TRUE(h.comm.exchange_complete(11));
  h.comm.end_exchange(10);
  h.comm.end_exchange(11);
}

TEST(Comm, SenderReleaseReflectsAckPathology) {
  FabricParams p = quiet_params();
  p.ack_loss_prob = 1.0;
  p.drain_queue_enabled = false;
  p.ack_recovery_delay = ms(2.0);
  Harness h(4, p);
  h.comm.begin_exchange(12, {0, 0, 1, 0});
  const TimeNs release = h.comm.isend(0, 2, 1000, 12, 0);
  EXPECT_GE(release, ms(2.0));
  h.engine.run();
  h.comm.end_exchange(12);
}

TEST(Comm, ZeroMessageWindowCompletesImmediately) {
  // A regrid step can produce a window where no rank exchanges anything
  // (e.g. every neighbor is intra-rank). The window must be complete
  // from the start, waits must return without parking, and closing it
  // must not trip the undelivered-messages check.
  Harness h(4);
  h.comm.begin_exchange(20, {0, 0, 0, 0});
  EXPECT_TRUE(h.comm.exchange_complete(20));
  for (std::int32_t r = 0; r < 4; ++r)
    EXPECT_TRUE(h.comm.wait_recvs(r, 20, 0));
  h.engine.run();
  for (const auto& ep : h.endpoints) EXPECT_EQ(ep.recv_ready_calls, 0);
  h.comm.end_exchange(20);
}

TEST(Comm, SenderWithNoRecvsNeverParks) {
  // Rank 0 only sends in this window; its wait must pass immediately
  // (expected[0] == 0) regardless of whether its own sends have landed.
  Harness h(4);
  h.comm.begin_exchange(21, {0, 2, 0, 0});
  h.comm.isend(0, 1, 1000, 21, 0);
  h.comm.isend(0, 1, 2000, 21, 0);
  EXPECT_TRUE(h.comm.wait_recvs(0, 21, 0));
  EXPECT_FALSE(h.comm.exchange_complete(21));
  h.engine.run();
  EXPECT_EQ(h.endpoints[0].recv_ready_calls, 0);
  EXPECT_TRUE(h.comm.exchange_complete(21));
  h.comm.end_exchange(21);
}

TEST(Comm, AggregatedSendCountsAsOneArrival) {
  // An aggregated isend (msgs > 1) is one packed transfer: one delivery
  // against the window's expected count, released later than the
  // equivalent single message by the fabric's per-message overhead.
  Harness h(4);
  h.comm.begin_exchange(22, {0, 1, 0, 0});
  h.comm.isend(0, 1, 4000, 22, 0, -1, 5);
  EXPECT_FALSE(h.comm.exchange_complete(22));
  h.engine.run();
  EXPECT_TRUE(h.comm.exchange_complete(22));
  EXPECT_EQ(h.fabric.stats().packed_transfers, 1);
  EXPECT_EQ(h.fabric.stats().coalesced_msgs, 4);
  h.comm.end_exchange(22);

  // Same bytes unpacked: the packed delivery must land strictly later.
  h.comm.begin_exchange(23, {0, 1, 0, 0});
  h.comm.isend(0, 1, 4000, 23, h.engine.now());
  const TimeNs plain_start = h.engine.now();
  h.engine.run();
  const TimeNs plain = h.engine.now() - plain_start;
  h.comm.end_exchange(23);
  h.comm.begin_exchange(24, {0, 1, 0, 0});
  h.comm.isend(0, 1, 4000, 24, h.engine.now(), -1, 5);
  const TimeNs packed_start = h.engine.now();
  h.engine.run();
  const TimeNs packed = h.engine.now() - packed_start;
  h.comm.end_exchange(24);
  EXPECT_EQ(packed, plain + 4 * quiet_params().packed_msg_overhead);
}

TEST(CommDeath, DoubleWaitOnSameWindowAborts) {
  Harness h(4);
  h.comm.begin_exchange(13, {0, 1, 0, 0});
  EXPECT_FALSE(h.comm.wait_recvs(1, 13, 0));
  EXPECT_DEATH(h.comm.wait_recvs(1, 13, 0), "waiting");
}

TEST(CommDeath, ClosingIncompleteWindowAborts) {
  Harness h(4);
  h.comm.begin_exchange(14, {0, 1, 0, 0});
  EXPECT_DEATH(h.comm.end_exchange(14), "undelivered");
}

TEST(CommDeath, UnexpectedDeliveryAborts) {
  Harness h(4);
  h.comm.begin_exchange(15, {0, 0, 0, 0});
  h.comm.isend(0, 1, 100, 15, 0);
  EXPECT_DEATH(h.engine.run(), "expected");
}

TEST(CommDeath, DuplicateWindowAborts) {
  Harness h(4);
  h.comm.begin_exchange(16, {0, 0, 0, 0});
  EXPECT_DEATH(h.comm.begin_exchange(16, {0, 0, 0, 0}), "already");
}

}  // namespace
}  // namespace amr
