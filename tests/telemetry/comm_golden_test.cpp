// Golden-file lock on the comm table schema and contents, including the
// message-aggregation columns (msgs_coalesced, bytes_packed).
//
// A tiny deterministic Sedov run with --aggregate records per-(step,
// rank) message counters into Collector's comm table; its CSV must match
// tests/telemetry/golden/comm_table.csv byte-for-byte. Any change to the
// table schema, the per-window counters the simulation feeds it, or the
// aggregation fold itself shows up as a diff here. Regenerate with
// AMR_TELEMETRY_REGEN_GOLDEN=1 after an intentional change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/csv_io.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

Table comm_table_from_tiny_run() {
  SimulationConfig cfg;
  // 8 root blocks over 4 ranks: every rank holds several blocks, so the
  // aggregation fold has same-destination sends to pack.
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  cfg.steps = 4;
  cfg.root_grid = RootGrid{2, 2, 2};
  cfg.collect_telemetry = true;
  cfg.aggregate_messages = true;
  SedovParams sp;
  sp.total_steps = cfg.steps;
  sp.max_level = 1;
  SedovWorkload sedov(sp);
  const PolicyPtr policy = make_policy("cpl50");
  Simulation sim(cfg, sedov, *policy);
  (void)sim.run();
  Table copy = sim.collector().comm();
  return copy;
}

TEST(CommTable, AggregationColumnsMatchGoldenFile) {
  const Table comm = comm_table_from_tiny_run();
  const std::string tmp =
      testing::TempDir() + "/comm_table_golden_test.csv";
  ASSERT_TRUE(write_csv(comm, tmp));
  std::ifstream got_in(tmp, std::ios::binary);
  ASSERT_TRUE(got_in);
  std::ostringstream got_buf;
  got_buf << got_in.rdbuf();
  const std::string got = got_buf.str();
  std::remove(tmp.c_str());

  // The run actually exercised the aggregation path: the header carries
  // the new columns and at least one row coalesced something.
  EXPECT_NE(got.find("msgs_coalesced"), std::string::npos);
  EXPECT_NE(got.find("bytes_packed"), std::string::npos);

  const std::string path =
      std::string(AMR_TELEMETRY_GOLDEN_DIR) + "/comm_table.csv";
  if (std::getenv("AMR_TELEMETRY_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << got;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with AMR_TELEMETRY_REGEN_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

}  // namespace
}  // namespace amr
