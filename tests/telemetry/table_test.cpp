#include "amr/telemetry/table.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

Table sample_table() {
  Table t("sample", {{"step", ColType::kI64},
                     {"rank", ColType::kI64},
                     {"dur", ColType::kF64}});
  t.append_row({std::int64_t{0}, std::int64_t{0}, 1.5});
  t.append_row({std::int64_t{0}, std::int64_t{1}, 2.5});
  t.append_row({std::int64_t{1}, std::int64_t{0}, 3.5});
  return t;
}

TEST(Table, SchemaAndCounts) {
  const Table t = sample_table();
  EXPECT_EQ(t.name(), "sample");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.col_index("rank"), 1);
  EXPECT_EQ(t.col_index("missing"), -1);
}

TEST(Table, TypedColumnAccess) {
  const Table t = sample_table();
  const auto steps = t.i64("step");
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[2], 1);
  const auto durs = t.f64("dur");
  EXPECT_DOUBLE_EQ(durs[1], 2.5);
}

TEST(Table, GenericValueAccess) {
  const Table t = sample_table();
  EXPECT_DOUBLE_EQ(t.value(0, 2), 1.0);  // i64 read as double
  EXPECT_DOUBLE_EQ(t.value(2, 0), 1.5);
  EXPECT_EQ(t.ivalue(1, 1), 1);
}

TEST(Table, IntAcceptedIntoF64Column) {
  Table t("t", {{"x", ColType::kF64}});
  t.append_row({std::int64_t{42}});
  EXPECT_DOUBLE_EQ(t.f64("x")[0], 42.0);
}

TEST(Table, ColumnStats) {
  const Table t = sample_table();
  double min = 0;
  double max = 0;
  t.column_stats(2, min, max);
  EXPECT_DOUBLE_EQ(min, 1.5);
  EXPECT_DOUBLE_EQ(max, 3.5);
}

TEST(Table, EmptyTableStatsAreZero) {
  const Table t("empty", {{"x", ColType::kF64}});
  double min = 1;
  double max = 1;
  t.column_stats(0, min, max);
  EXPECT_DOUBLE_EQ(min, 0.0);
  EXPECT_DOUBLE_EQ(max, 0.0);
}

TEST(Table, FormatListsRowsAndTruncates) {
  const Table t = sample_table();
  const std::string full = t.format();
  EXPECT_NE(full.find("sample"), std::string::npos);
  EXPECT_NE(full.find("2.5"), std::string::npos);
  const std::string cut = t.format(1);
  EXPECT_NE(cut.find("..."), std::string::npos);
}

TEST(TableDeath, ArityMismatchAborts) {
  Table t("t", {{"a", ColType::kI64}, {"b", ColType::kF64}});
  EXPECT_DEATH(t.append_row({std::int64_t{1}}), "arity");
}

TEST(TableDeath, DoubleIntoI64Aborts) {
  Table t("t", {{"a", ColType::kI64}});
  EXPECT_DEATH(t.append_row({1.5}), "i64");
}

TEST(TableDeath, TypeMismatchedColumnAccessAborts) {
  const Table t = sample_table();
  EXPECT_DEATH(t.i64("dur"), "type");
  EXPECT_DEATH(t.f64("step"), "type");
}

TEST(TableDeath, DuplicateColumnNameAborts) {
  EXPECT_DEATH(
      Table("t", {{"a", ColType::kI64}, {"a", ColType::kF64}}),
      "duplicate");
}

}  // namespace
}  // namespace amr
