#include "amr/telemetry/triggers.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

Collector collect_with_spike() {
  Collector c;
  for (std::int64_t step = 0; step < 10; ++step) {
    for (std::int32_t rank = 0; rank < 4; ++rank) {
      c.record_phase(step, rank, Phase::kCompute, us(100));
      // Step 7, rank 2 has a sync spike.
      const TimeNs sync =
          (step == 7 && rank == 2) ? ms(5.0) : us(50);
      c.record_phase(step, rank, Phase::kSync, sync);
    }
  }
  return c;
}

TEST(TelemetryTriggers, FiresOnThresholdCrossing) {
  const Collector c = collect_with_spike();
  TelemetryTriggers triggers;
  triggers.add_rule({"sync-spike", Phase::kSync, Agg::kMax,
                     static_cast<double>(ms(1.0))});
  const auto events = triggers.evaluate(c.phases());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rule, "sync-spike");
  EXPECT_EQ(events[0].step, 7);
  EXPECT_DOUBLE_EQ(events[0].value_ns, static_cast<double>(ms(5.0)));
}

TEST(TelemetryTriggers, AggregateChoiceMatters) {
  const Collector c = collect_with_spike();
  TelemetryTriggers triggers;
  // Mean over 4 ranks at step 7 = (3*50us + 5ms)/4 = 1.2875 ms.
  triggers.add_rule({"mean-high", Phase::kSync, Agg::kMean,
                     static_cast<double>(ms(2.0))});
  EXPECT_TRUE(triggers.evaluate(c.phases()).empty());
  triggers.add_rule({"mean-low", Phase::kSync, Agg::kMean,
                     static_cast<double>(ms(1.0))});
  const auto events = triggers.evaluate(c.phases());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rule, "mean-low");
}

TEST(TelemetryTriggers, WatchesOnlyItsPhase) {
  const Collector c = collect_with_spike();
  TelemetryTriggers triggers;
  triggers.add_rule({"compute-spike", Phase::kCompute, Agg::kMax,
                     static_cast<double>(ms(1.0))});
  EXPECT_TRUE(triggers.evaluate(c.phases()).empty());
}

TEST(TelemetryTriggers, MultipleRulesOrderedEvents) {
  const Collector c = collect_with_spike();
  TelemetryTriggers triggers;
  triggers.add_rule({"a", Phase::kSync, Agg::kMax, 0.0});   // every step
  triggers.add_rule({"b", Phase::kSync, Agg::kMax,
                     static_cast<double>(ms(1.0))});
  const auto events = triggers.evaluate(c.phases());
  ASSERT_EQ(events.size(), 11u);  // 10 from "a" + 1 from "b"
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].rule, "a");
    EXPECT_EQ(events[static_cast<std::size_t>(i)].step, i);
  }
  EXPECT_EQ(events[10].rule, "b");
}

TEST(TelemetryTriggers, EmptyTableNoEvents) {
  Collector c;
  TelemetryTriggers triggers;
  triggers.add_rule({"any", Phase::kSync, Agg::kMax, 0.0});
  EXPECT_TRUE(triggers.evaluate(c.phases()).empty());
}

TEST(TelemetryTriggersDeath, UnnamedRuleAborts) {
  TelemetryTriggers triggers;
  EXPECT_DEATH(triggers.add_rule({"", Phase::kSync, Agg::kMax, 0.0}),
               "name");
}

}  // namespace
}  // namespace amr
