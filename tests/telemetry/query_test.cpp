#include "amr/telemetry/query.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

Table phases_table() {
  Table t("phases", {{"step", ColType::kI64},
                     {"rank", ColType::kI64},
                     {"phase", ColType::kI64},
                     {"dur", ColType::kF64}});
  // 2 steps x 2 ranks x 2 phases.
  for (std::int64_t s = 0; s < 2; ++s)
    for (std::int64_t r = 0; r < 2; ++r)
      for (std::int64_t p = 0; p < 2; ++p)
        t.append_row(
            {s, r, p, static_cast<double>(100 * s + 10 * r + p)});
  return t;
}

TEST(Query, FilterReducesSelection) {
  const Table t = phases_table();
  Query q(t);
  q.filter_i64("rank", [](std::int64_t r) { return r == 1; });
  EXPECT_EQ(q.count(), 4u);
  q.filter("dur", [](double d) { return d >= 100.0; });
  EXPECT_EQ(q.count(), 2u);
}

TEST(Query, RunMaterializesFilteredRows) {
  const Table t = phases_table();
  const Table out = Query(t)
                        .filter_i64("step", [](auto s) { return s == 0; })
                        .run();
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.num_cols(), t.num_cols());
  for (const auto s : out.i64("step")) EXPECT_EQ(s, 0);
}

TEST(Query, SortByDescendingAndLimit) {
  const Table t = phases_table();
  Query q(t);
  q.sort_by("dur", /*descending=*/true).limit(2);
  const auto durs = q.values("dur");
  ASSERT_EQ(durs.size(), 2u);
  EXPECT_DOUBLE_EQ(durs[0], 111.0);
  EXPECT_DOUBLE_EQ(durs[1], 110.0);
}

TEST(Query, GroupByAggSumPerRank) {
  const Table t = phases_table();
  const Table out = Query(t)
                        .group_by({"rank"})
                        .agg({{"dur", Agg::kSum, "total"}});
  ASSERT_EQ(out.num_rows(), 2u);
  // Rank 0: 0+1+100+101 = 202; rank 1: 10+11+110+111 = 242.
  EXPECT_EQ(out.i64("rank")[0], 0);
  EXPECT_DOUBLE_EQ(out.f64("total")[0], 202.0);
  EXPECT_DOUBLE_EQ(out.f64("total")[1], 242.0);
}

TEST(Query, GroupByMultipleKeys) {
  const Table t = phases_table();
  const Table out = Query(t)
                        .group_by({"step", "rank"})
                        .agg({{"dur", Agg::kMean, "mean_dur"},
                              {"dur", Agg::kCount, "n"}});
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(out.f64("n")[0], 2.0);
  // step 0, rank 0: mean(0, 1) = 0.5.
  EXPECT_DOUBLE_EQ(out.f64("mean_dur")[0], 0.5);
}

TEST(Query, FilterThenGroupComposes) {
  const Table t = phases_table();
  const Table out =
      Query(t)
          .filter_i64("phase", [](auto p) { return p == 1; })
          .group_by({"step"})
          .agg({{"dur", Agg::kMax, "max_dur"}});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.f64("max_dur")[0], 11.0);
  EXPECT_DOUBLE_EQ(out.f64("max_dur")[1], 111.0);
}

TEST(Query, AggMinMaxStddevPercentiles) {
  Table t("vals", {{"g", ColType::kI64}, {"v", ColType::kF64}});
  for (int i = 1; i <= 100; ++i)
    t.append_row({std::int64_t{0}, static_cast<double>(i)});
  const Table out = Query(t)
                        .group_by({"g"})
                        .agg({{"v", Agg::kMin, "min"},
                              {"v", Agg::kMax, "max"},
                              {"v", Agg::kP50, "p50"},
                              {"v", Agg::kP95, "p95"},
                              {"v", Agg::kStddev, "sd"}});
  EXPECT_DOUBLE_EQ(out.f64("min")[0], 1.0);
  EXPECT_DOUBLE_EQ(out.f64("max")[0], 100.0);
  EXPECT_NEAR(out.f64("p50")[0], 50.5, 1e-9);
  EXPECT_NEAR(out.f64("p95")[0], 95.05, 1e-9);
  EXPECT_NEAR(out.f64("sd")[0], 28.866, 0.01);
}

TEST(Query, GroupsEmittedInFirstAppearanceOrder) {
  Table t("vals", {{"g", ColType::kI64}, {"v", ColType::kF64}});
  t.append_row({std::int64_t{5}, 1.0});
  t.append_row({std::int64_t{2}, 1.0});
  t.append_row({std::int64_t{5}, 1.0});
  const Table out =
      Query(t).group_by({"g"}).agg({{"v", Agg::kCount, "n"}});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.i64("g")[0], 5);
  EXPECT_EQ(out.i64("g")[1], 2);
  EXPECT_DOUBLE_EQ(out.f64("n")[0], 2.0);
}

TEST(Query, EmptySelectionYieldsEmptyAgg) {
  const Table t = phases_table();
  const Table out =
      Query(t)
          .filter_i64("rank", [](auto) { return false; })
          .group_by({"rank"})
          .agg({{"dur", Agg::kSum, "s"}});
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(QueryDeath, UnknownColumnAborts) {
  const Table t = phases_table();
  Query q(t);
  EXPECT_DEATH(q.filter("nope", [](double) { return true; }), "column");
}

TEST(QueryDeath, GroupByF64KeyAborts) {
  const Table t = phases_table();
  EXPECT_DEATH(Query(t).group_by({"dur"}).agg({{"dur", Agg::kSum, "s"}}),
               "i64");
}


TEST(Join, InnerJoinOnSharedKeys) {
  Table phases("phases", {{"step", ColType::kI64},
                          {"rank", ColType::kI64},
                          {"dur", ColType::kF64}});
  phases.append_row({std::int64_t{0}, std::int64_t{0}, 1.0});
  phases.append_row({std::int64_t{0}, std::int64_t{1}, 2.0});
  phases.append_row({std::int64_t{1}, std::int64_t{0}, 3.0});
  Table comm("comm", {{"step", ColType::kI64},
                      {"rank", ColType::kI64},
                      {"msgs", ColType::kI64}});
  comm.append_row({std::int64_t{0}, std::int64_t{0}, std::int64_t{10}});
  comm.append_row({std::int64_t{1}, std::int64_t{0}, std::int64_t{30}});

  const Table joined = join(phases, comm, {"step", "rank"});
  ASSERT_EQ(joined.num_rows(), 2u);  // (0,1) has no comm row
  EXPECT_EQ(joined.col_index("dur"), 2);
  EXPECT_EQ(joined.col_index("msgs"), 3);
  EXPECT_DOUBLE_EQ(joined.f64("dur")[0], 1.0);
  EXPECT_EQ(joined.i64("msgs")[1], 30);
}

TEST(Join, MultipleRightMatchesMultiply) {
  Table left("l", {{"k", ColType::kI64}, {"x", ColType::kF64}});
  left.append_row({std::int64_t{7}, 1.5});
  Table right("r", {{"k", ColType::kI64}, {"y", ColType::kF64}});
  right.append_row({std::int64_t{7}, 10.0});
  right.append_row({std::int64_t{7}, 20.0});
  right.append_row({std::int64_t{8}, 99.0});
  const Table joined = join(left, right, {"k"});
  ASSERT_EQ(joined.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(joined.f64("y")[0], 10.0);
  EXPECT_DOUBLE_EQ(joined.f64("y")[1], 20.0);
}

TEST(Join, CollidingPayloadNamesGetPrefixed) {
  Table left("l", {{"k", ColType::kI64}, {"v", ColType::kF64}});
  left.append_row({std::int64_t{1}, 1.0});
  Table right("r", {{"k", ColType::kI64}, {"v", ColType::kF64}});
  right.append_row({std::int64_t{1}, 2.0});
  const Table joined = join(left, right, {"k"});
  EXPECT_GE(joined.col_index("v"), 0);
  EXPECT_GE(joined.col_index("r_v"), 0);
  EXPECT_DOUBLE_EQ(joined.f64("v")[0], 1.0);
  EXPECT_DOUBLE_EQ(joined.f64("r_v")[0], 2.0);
}

TEST(Join, EmptyResultWhenNoKeysMatch) {
  Table left("l", {{"k", ColType::kI64}});
  left.append_row({std::int64_t{1}});
  Table right("r", {{"k", ColType::kI64}});
  right.append_row({std::int64_t{2}});
  EXPECT_EQ(join(left, right, {"k"}).num_rows(), 0u);
}

TEST(JoinDeath, MissingKeyAborts) {
  Table left("l", {{"k", ColType::kI64}});
  Table right("r", {{"other", ColType::kI64}});
  EXPECT_DEATH(join(left, right, {"k"}), "missing");
}

TEST(Join, ComposesWithGroupBy) {
  // The paper-style diagnostic: join phase durations with message counts
  // per (step, rank), then aggregate comm time per message volume bin.
  Table phases("phases", {{"step", ColType::kI64},
                          {"rank", ColType::kI64},
                          {"dur", ColType::kF64}});
  Table comm("comm", {{"step", ColType::kI64},
                      {"rank", ColType::kI64},
                      {"msgs", ColType::kI64}});
  for (std::int64_t s = 0; s < 4; ++s) {
    for (std::int64_t r = 0; r < 4; ++r) {
      phases.append_row({s, r, static_cast<double>(r + 1)});
      comm.append_row({s, r, r});
    }
  }
  const Table joined = join(phases, comm, {"step", "rank"});
  const Table by_msgs = Query(joined)
                            .group_by({"msgs"})
                            .agg({{"dur", Agg::kMean, "mean_dur"}});
  ASSERT_EQ(by_msgs.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(by_msgs.f64("mean_dur")[0], 1.0);
  EXPECT_DOUBLE_EQ(by_msgs.f64("mean_dur")[3], 4.0);
}

}  // namespace
}  // namespace amr
