#include "amr/telemetry/detectors.hpp"

#include <gtest/gtest.h>

#include "amr/common/rng.hpp"

namespace amr {
namespace {

TEST(ThrottleDetector, CleanClusterFlagsNothing) {
  const ClusterTopology topo(32, 16);
  std::vector<double> compute(32, 10.0);
  Rng rng(1);
  for (auto& c : compute) c *= rng.uniform(0.95, 1.05);
  const ThrottleReport report = detect_throttling(compute, topo);
  EXPECT_TRUE(report.flagged_ranks.empty());
  EXPECT_TRUE(report.flagged_nodes.empty());
}

TEST(ThrottleDetector, FindsThrottledNodeCluster) {
  // Paper Fig 2: 4x inflation on clusters of 16 ranks (one node).
  const ClusterTopology topo(64, 16);
  std::vector<double> compute(64, 10.0);
  for (int r = 16; r < 32; ++r) compute[r] = 40.0;  // node 1 throttled
  const ThrottleReport report = detect_throttling(compute, topo);
  ASSERT_EQ(report.flagged_ranks.size(), 16u);
  EXPECT_EQ(report.flagged_ranks.front(), 16);
  ASSERT_EQ(report.flagged_nodes.size(), 1u);
  EXPECT_EQ(report.flagged_nodes[0], 1);
  EXPECT_NEAR(report.flagged_mean_inflation, 4.0, 0.01);
}

TEST(ThrottleDetector, IsolatedSlowRankDoesNotFlagNode) {
  const ClusterTopology topo(32, 16);
  std::vector<double> compute(32, 10.0);
  compute[5] = 50.0;  // one straggler, not a hardware cluster
  const ThrottleReport report = detect_throttling(compute, topo);
  EXPECT_EQ(report.flagged_ranks.size(), 1u);
  EXPECT_TRUE(report.flagged_nodes.empty());
}

TEST(ThrottleDetector, HalfNodeFlaggedCountsAsNode) {
  const ClusterTopology topo(32, 16);
  std::vector<double> compute(32, 10.0);
  for (int r = 0; r < 8; ++r) compute[r] = 45.0;
  const ThrottleReport report = detect_throttling(compute, topo);
  ASSERT_EQ(report.flagged_nodes.size(), 1u);
  EXPECT_EQ(report.flagged_nodes[0], 0);
}

TEST(SpikeDetector, FindsInjectedSpikes) {
  Rng rng(3);
  std::vector<double> series(500);
  for (auto& v : series) v = rng.uniform(0.9, 1.1);
  series[42] = 30.0;
  series[321] = 25.0;
  const SpikeReport report = detect_spikes(series);
  ASSERT_EQ(report.spike_indices.size(), 2u);
  EXPECT_EQ(report.spike_indices[0], 42u);
  EXPECT_EQ(report.spike_indices[1], 321u);
  EXPECT_GT(report.mean_with_spikes, report.mean_without_spikes);
  EXPECT_GT(report.spike_mass, 0.05);
}

TEST(SpikeDetector, CleanSeriesHasNoSpikes) {
  Rng rng(5);
  std::vector<double> series(500);
  for (auto& v : series) v = rng.uniform(0.9, 1.1);
  const SpikeReport report = detect_spikes(series);
  EXPECT_TRUE(report.spike_indices.empty());
}

TEST(SpikeDetector, EmptySeries) {
  const SpikeReport report = detect_spikes({});
  EXPECT_TRUE(report.spike_indices.empty());
  EXPECT_DOUBLE_EQ(report.spike_mass, 0.0);
}

TEST(SpikeDetector, RobustToHeavyBaseline) {
  // The spike threshold uses median/MAD, so a shifted, mildly noisy
  // baseline with one spike still isolates exactly the spike.
  std::vector<double> series(100);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 50.0 + (i % 2 == 0 ? 0.1 : -0.1);
  series[10] = 50.6;
  series[20] = 49.4;
  series[30] = 500.0;
  const SpikeReport report = detect_spikes(series);
  ASSERT_EQ(report.spike_indices.size(), 1u);
  EXPECT_EQ(report.spike_indices[0], 30u);
}

TEST(CorrelationReport, StrongSignalDetected) {
  Rng rng(7);
  std::vector<double> work(200);
  std::vector<double> time(200);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i] = rng.uniform(1.0, 10.0);
    time[i] = 3.0 * work[i] + rng.normal(0.0, 0.3);
  }
  const CorrelationReport report = correlation_report(work, time);
  EXPECT_GT(report.pearson, 0.95);
  // Quartile means rise monotonically.
  EXPECT_LT(report.quartile_means[0], report.quartile_means[1]);
  EXPECT_LT(report.quartile_means[1], report.quartile_means[2]);
  EXPECT_LT(report.quartile_means[2], report.quartile_means[3]);
}

TEST(CorrelationReport, NoiseDrownsSignal) {
  Rng rng(9);
  std::vector<double> work(200);
  std::vector<double> time(200);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i] = rng.uniform(1.0, 10.0);
    // Heavy unrelated noise (the untuned Fig 1a regime).
    time[i] = 3.0 * work[i] + (rng.chance(0.2) ? rng.uniform(0, 500) : 0);
  }
  const CorrelationReport report = correlation_report(work, time);
  EXPECT_LT(report.pearson, 0.5);
}

TEST(CorrelationReport, MismatchedInputs) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2};
  const CorrelationReport report = correlation_report(a, b);
  EXPECT_EQ(report.n, 0u);
  EXPECT_DOUBLE_EQ(report.pearson, 0.0);
}

}  // namespace
}  // namespace amr
