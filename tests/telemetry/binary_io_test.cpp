#include "amr/telemetry/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace amr {
namespace {

class BinaryIoTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("amrt_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

Table sample_table() {
  Table t("phases", {{"step", ColType::kI64},
                     {"rank", ColType::kI64},
                     {"dur", ColType::kF64}});
  for (std::int64_t s = 0; s < 10; ++s)
    for (std::int64_t r = 0; r < 4; ++r)
      t.append_row({s, r, static_cast<double>(s * 10 + r) / 3.0});
  return t;
}

TEST_F(BinaryIoTest, RoundTripPreservesEverything) {
  const Table original = sample_table();
  ASSERT_TRUE(write_table(original, path_));
  const Table loaded = read_table(path_);
  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  ASSERT_EQ(loaded.num_cols(), original.num_cols());
  for (std::size_t c = 0; c < original.num_cols(); ++c) {
    EXPECT_EQ(loaded.schema()[c].name, original.schema()[c].name);
    EXPECT_EQ(loaded.schema()[c].type, original.schema()[c].type);
    for (std::size_t r = 0; r < original.num_rows(); ++r)
      EXPECT_EQ(loaded.value(c, r), original.value(c, r));
  }
}

TEST_F(BinaryIoTest, EmptyTableRoundTrips) {
  const Table empty("empty", {{"x", ColType::kF64}});
  ASSERT_TRUE(write_table(empty, path_));
  const Table loaded = read_table(path_);
  EXPECT_EQ(loaded.num_rows(), 0u);
  EXPECT_EQ(loaded.name(), "empty");
}

TEST_F(BinaryIoTest, StatsReadableWithoutDataScan) {
  ASSERT_TRUE(write_table(sample_table(), path_));
  const auto stats = read_table_stats(path_);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].name, "step");
  EXPECT_DOUBLE_EQ(stats[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 9.0);
  EXPECT_EQ(stats[2].type, ColType::kF64);
  EXPECT_DOUBLE_EQ(stats[2].max, 93.0 / 3.0);
}

TEST_F(BinaryIoTest, RejectsGarbageFile) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a telemetry file at all", f);
  std::fclose(f);
  EXPECT_THROW(read_table(path_), std::runtime_error);
}

TEST_F(BinaryIoTest, RejectsTruncatedFile) {
  ASSERT_TRUE(write_table(sample_table(), path_));
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_THROW(read_table(path_), std::runtime_error);
}

TEST_F(BinaryIoTest, MissingFileThrows) {
  EXPECT_THROW(read_table("/nonexistent/nowhere.bin"),
               std::runtime_error);
}

TEST_F(BinaryIoTest, ZeroRowMultiColumnRoundTrips) {
  // A run that never recorded telemetry still snapshots its (empty)
  // tables; schema and stats must survive with zero rows.
  const Table empty("phases", {{"step", ColType::kI64},
                               {"rank", ColType::kI64},
                               {"dur", ColType::kF64}});
  ASSERT_TRUE(write_table(empty, path_));
  const Table loaded = read_table(path_);
  EXPECT_EQ(loaded.num_rows(), 0u);
  ASSERT_EQ(loaded.num_cols(), 3u);
  EXPECT_EQ(loaded.schema()[2].name, "dur");
  EXPECT_EQ(loaded.schema()[2].type, ColType::kF64);
  const auto stats = read_table_stats(path_);
  ASSERT_EQ(stats.size(), 3u);
}

TEST_F(BinaryIoTest, EmptyStringNamesRoundTrip) {
  // Zero-length table and column names are valid (length-prefixed
  // strings, not NUL-terminated): nothing may misparse the empty case.
  Table anon("", {{"", ColType::kI64}, {"x", ColType::kF64}});
  anon.append_row({std::int64_t{7}, 2.5});
  ASSERT_TRUE(write_table(anon, path_));
  const Table loaded = read_table(path_);
  EXPECT_EQ(loaded.name(), "");
  ASSERT_EQ(loaded.num_cols(), 2u);
  EXPECT_EQ(loaded.schema()[0].name, "");
  ASSERT_EQ(loaded.num_rows(), 1u);
  EXPECT_EQ(loaded.ivalue(0, 0), 7);
  EXPECT_EQ(loaded.value(1, 0), 2.5);
}

TEST_F(BinaryIoTest, EveryTruncationFailsCleanly) {
  // Cutting the file at any byte must throw the clean "truncated"
  // diagnostic from read_table, never crash or return partial data.
  ASSERT_TRUE(write_table(sample_table(), path_));
  const auto size =
      static_cast<std::uintmax_t>(std::filesystem::file_size(path_));
  for (std::uintmax_t len = 0; len < size; ++len) {
    std::filesystem::resize_file(path_, len);
    EXPECT_THROW(read_table(path_), std::runtime_error)
        << "truncation to " << len << " bytes was accepted";
    // Restore for the next iteration's shorter cut.
    ASSERT_TRUE(write_table(sample_table(), path_));
  }
}

}  // namespace
}  // namespace amr
