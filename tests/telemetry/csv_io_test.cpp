#include "amr/telemetry/csv_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace amr {
namespace {

class CsvIoTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("amr_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& content) {
    FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
  }

  std::string path_;
};

Table sample_table() {
  Table t("t", {{"step", ColType::kI64}, {"dur", ColType::kF64}});
  t.append_row({std::int64_t{1}, 0.5});
  t.append_row({std::int64_t{2}, 1.25});
  t.append_row({std::int64_t{-3}, 1e-9});
  return t;
}

TEST_F(CsvIoTest, RoundTripPreservesValues) {
  ASSERT_TRUE(write_csv(sample_table(), path_));
  const Table loaded = read_csv(path_);
  ASSERT_EQ(loaded.num_rows(), 3u);
  ASSERT_EQ(loaded.num_cols(), 2u);
  EXPECT_EQ(loaded.schema()[0].type, ColType::kI64);
  EXPECT_EQ(loaded.schema()[1].type, ColType::kF64);
  EXPECT_EQ(loaded.i64("step")[2], -3);
  EXPECT_DOUBLE_EQ(loaded.f64("dur")[1], 1.25);
  EXPECT_DOUBLE_EQ(loaded.f64("dur")[2], 1e-9);
}

TEST_F(CsvIoTest, EmptyTableRoundTrips) {
  const Table empty("e", {{"x", ColType::kF64}});
  ASSERT_TRUE(write_csv(empty, path_));
  const Table loaded = read_csv(path_);
  EXPECT_EQ(loaded.num_rows(), 0u);
}

TEST_F(CsvIoTest, HumanReadableFormat) {
  ASSERT_TRUE(write_csv(sample_table(), path_));
  FILE* f = std::fopen(path_.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "step:i64,dur:f64\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "1,0.5\n");
  std::fclose(f);
}

TEST_F(CsvIoTest, RejectsArityMismatch) {
  write_raw("a:i64,b:f64\n1,2.0\n3\n");
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvIoTest, RejectsBadIntegerCell) {
  write_raw("a:i64\n1.5\n");
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvIoTest, RejectsUnknownType) {
  write_raw("a:str\nx\n");
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvIoTest, RejectsHeaderWithoutType) {
  write_raw("a\n1\n");
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvIoTest, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST_F(CsvIoTest, HandlesCrLfLineEndings) {
  write_raw("a:i64,b:f64\r\n7,2.5\r\n");
  const Table loaded = read_csv(path_);
  ASSERT_EQ(loaded.num_rows(), 1u);
  EXPECT_EQ(loaded.i64("a")[0], 7);
}

}  // namespace
}  // namespace amr
