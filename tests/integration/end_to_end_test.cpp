// Integration tests exercising the full pipeline the way the paper's
// experiments do: simulate, collect telemetry, query it, detect anomalies,
// and verify the headline orderings (CPLX beats baseline under compute
// variability; tuning restores telemetry correlation).
#include <gtest/gtest.h>

#include <filesystem>

#include "amr/placement/registry.hpp"
#include "amr/sim/exchange_bench.hpp"
#include "amr/sim/simulation.hpp"
#include "amr/telemetry/binary_io.hpp"
#include "amr/telemetry/detectors.hpp"
#include "amr/telemetry/query.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {
namespace {

SimulationConfig config_32() {
  SimulationConfig cfg;
  cfg.nranks = 32;
  cfg.ranks_per_node = 8;
  cfg.root_grid = RootGrid{4, 4, 2};
  cfg.steps = 20;
  cfg.fabric.remote_jitter = 0;
  return cfg;
}

SedovParams sedov_20() {
  SedovParams p;
  p.total_steps = 20;
  p.max_level = 1;
  p.base_cost = us(150);
  p.front_boost = 5.0;
  return p;
}

TEST(EndToEnd, CplxBeatsBaselineUnderComputeVariability) {
  // The paper's gains grow with scale (Finding 2); below the paper's
  // smallest scale the locality cost can cancel them, so this headline
  // check runs at 512 ranks with a short step window.
  auto wall = [](const std::string& policy_name) {
    SimulationConfig cfg;
    cfg.nranks = 512;
    cfg.ranks_per_node = 16;
    cfg.root_grid = RootGrid{8, 8, 8};
    cfg.steps = 15;
    cfg.fabric.remote_jitter = 0;
    cfg.collect_telemetry = false;
    SedovParams sp;
    sp.total_steps = 15;
    SedovWorkload sedov(sp);
    const auto policy = make_policy(policy_name);
    Simulation sim(cfg, sedov, *policy);
    return sim.run().wall_seconds;
  };
  const double baseline = wall("baseline");
  const double cpl50 = wall("cpl50");
  EXPECT_LT(cpl50, baseline);
}

TEST(EndToEnd, RemoteMessagesGrowWithX) {
  auto remote = [](const std::string& policy_name) {
    SedovWorkload sedov(sedov_20());
    const auto policy = make_policy(policy_name);
    Simulation sim(config_32(), sedov, *policy);
    return sim.run().msgs_remote;
  };
  const auto r0 = remote("cpl0");
  const auto r100 = remote("cpl100");
  EXPECT_GE(r100, r0);
}

TEST(EndToEnd, TelemetryRoundTripsThroughBinaryFormatAndQueries) {
  SedovWorkload sedov(sedov_20());
  const auto policy = make_policy("cpl50");
  Simulation sim(config_32(), sedov, *policy);
  sim.run();

  const auto path = (std::filesystem::temp_directory_path() /
                     "amr_e2e_phases.bin")
                        .string();
  ASSERT_TRUE(write_table(sim.collector().phases(), path));
  const Table loaded = read_table(path);
  std::filesystem::remove(path);

  // Per-rank total sync via SQL-style pipeline.
  const Table sync = Query(loaded)
                         .filter_i64("phase",
                                     [](std::int64_t p) {
                                       return p == static_cast<std::int64_t>(
                                                       Phase::kSync);
                                     })
                         .group_by({"rank"})
                         .agg({{"dur_ns", Agg::kSum, "sync_ns"}});
  EXPECT_EQ(sync.num_rows(), 32u);
  for (const double v : sync.f64("sync_ns")) EXPECT_GE(v, 0.0);
}

TEST(EndToEnd, ThrottleDetectionFromRunTelemetry) {
  SedovWorkload sedov(sedov_20());
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = config_32();
  cfg.faults.add_throttle({.nodes = {2}, .factor = 4.0});
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();

  const ClusterTopology topo(cfg.nranks, cfg.ranks_per_node);
  const ThrottleReport detected =
      detect_throttling(report.rank_compute_seconds, topo);
  ASSERT_EQ(detected.flagged_nodes.size(), 1u);
  EXPECT_EQ(detected.flagged_nodes[0], 2);
  EXPECT_GT(detected.flagged_mean_inflation, 3.0);
}

TEST(EndToEnd, PruningThrottledNodeRecoversRuntime) {
  // Fig 2's intervention: the same job on pruned (healthy) nodes runs a
  // multiple faster because sync no longer waits for the throttled node.
  auto wall = [](bool pruned) {
    SedovWorkload sedov(sedov_20());
    const auto policy = make_policy("baseline");
    SimulationConfig cfg = config_32();
    if (!pruned)
      cfg.faults.add_throttle({.nodes = {1}, .factor = 4.0});
    // Pruned run: healthy nodes allocated from the overprovisioned pool,
    // i.e. simply no fault in the rank->node window we use.
    Simulation sim(cfg, sedov, *policy);
    return sim.run().wall_seconds;
  };
  EXPECT_GT(wall(false), 1.8 * wall(true));
}

TEST(EndToEnd, UntunedFabricDegradesCorrelation) {
  // Fig 1a: work (bytes) vs comm time per rank. Untuned (tiny shm queue +
  // ACK-loss blocking) must correlate worse than tuned.
  AmrMesh mesh(RootGrid{4, 4, 2});
  const std::vector<double> uniform(mesh.size(), 1.0);
  const Placement p = make_policy("baseline")->place(uniform, 32);

  auto correlation = [&](const FabricParams& fabric) {
    ExchangeRoundsConfig cfg;
    cfg.nranks = 32;
    cfg.ranks_per_node = 8;
    cfg.rounds = 40;
    cfg.fabric = fabric;
    cfg.outlier_cutoff = sec(1.0);  // keep everything; we want the noise
    const auto result = run_exchange_rounds(mesh, p, cfg);
    // Work metric: per-rank message bytes (constant across rounds).
    const auto work_items =
        build_step_work(mesh, p, std::vector<TimeNs>(mesh.size(), 0), 32);
    std::vector<double> rank_bytes;
    for (const auto& w : work_items) {
      double bytes = static_cast<double>(w.local_copy_bytes);
      for (const auto& s : w.sends)
        bytes += static_cast<double>(s.bytes);
      rank_bytes.push_back(bytes);
    }
    // Fig 1a is a per-(round, rank) scatter over ACTIVE MPI time (pack +
    // send waits): spiky untuned noise scatters individual samples, and
    // excluding the passive recv idle avoids the BSP equalizer that
    // would mask the work->time relation in every configuration.
    std::vector<double> work;
    std::vector<double> time;
    for (const auto& round : result.round_rank_active_ms) {
      for (std::size_t r = 0; r < round.size(); ++r) {
        work.push_back(rank_bytes[r]);
        time.push_back(round[r]);
      }
    }
    return correlation_report(work, time).pearson;
  };

  FabricParams untuned = FabricParams::untuned();
  untuned.ack_loss_prob = 0.05;  // aggressive noise at this small scale
  const double r_untuned = correlation(untuned);
  const double r_tuned = correlation(FabricParams::tuned());
  // The tuned stack shows a clear work->time trend; the untuned stack's
  // NIC-coupled stall noise destroys it (paper Fig 1a). The absolute
  // tuned value is bounded away from noise, not from 1.0: even a tuned
  // fabric couples ranks through shared NICs.
  EXPECT_GT(r_tuned, 2.0 * std::max(0.05, r_untuned));
  EXPECT_GT(r_tuned, 0.45);
}

TEST(EndToEnd, TwoRankCriticalPathsAppearUnderComputeFirst) {
  // §IV-D: with compute-first ordering and imbalanced compute, stragglers
  // stall on messages -> two-rank paths dominate some windows.
  SedovParams sp = sedov_20();
  sp.front_boost = 6.0;
  SedovWorkload sedov(sp);
  const auto policy = make_policy("baseline");
  SimulationConfig cfg = config_32();
  cfg.ordering = TaskOrdering::kComputeFirst;
  Simulation sim(cfg, sedov, *policy);
  const RunReport report = sim.run();
  EXPECT_EQ(report.critical_path.windows, 20);
  // Both classes should exist in a mixed workload; at minimum the
  // analyzer must classify every window.
  EXPECT_EQ(report.critical_path.one_rank_paths +
                report.critical_path.two_rank_paths,
            20);
}

}  // namespace
}  // namespace amr
