#include "amr/io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace amr::io {
namespace {

std::vector<std::uint8_t> sample_snapshot() {
  SnapshotWriter w;
  w.begin_section("scalars");
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-7);
  w.i64(-1234567890123ll);
  w.b(true);
  w.b(false);
  w.f64(0.1);  // not exactly representable: must round-trip bit-exact
  w.end_section();
  w.begin_section("strings");
  w.str("hello");
  w.str("");
  w.end_section();
  w.begin_section("vectors");
  w.vec_pod(std::vector<std::int64_t>{1, -2, 3});
  w.vec_pod(std::vector<double>{});
  w.end_section();
  return w.finish();
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  SnapshotReader r(sample_snapshot());
  r.begin_section("scalars");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), 0.1);
  r.end_section();
  r.begin_section("strings");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  r.end_section();
  r.begin_section("vectors");
  EXPECT_EQ(r.vec_pod<std::int64_t>(), (std::vector<std::int64_t>{1, -2, 3}));
  EXPECT_TRUE(r.vec_pod<double>().empty());
  r.end_section();
  EXPECT_EQ(r.peek_section(), "");
}

TEST(SnapshotTest, UnknownSectionsCanBeSkipped) {
  // Forward compatibility: a reader consumes the sections it knows and
  // skips the rest by name.
  SnapshotReader r(sample_snapshot());
  EXPECT_EQ(r.peek_section(), "scalars");
  r.skip_section();
  EXPECT_EQ(r.peek_section(), "strings");
  r.skip_section();
  r.begin_section("vectors");
  EXPECT_EQ(r.vec_pod<std::int64_t>().size(), 3u);
  r.vec_pod<double>();
  r.end_section();
}

TEST(SnapshotTest, WrongSectionNameThrows) {
  SnapshotReader r(sample_snapshot());
  EXPECT_THROW(r.begin_section("nope"), SnapshotError);
}

TEST(SnapshotTest, PartiallyReadSectionThrowsOnEnd) {
  SnapshotReader r(sample_snapshot());
  r.begin_section("scalars");
  r.u8();
  EXPECT_THROW(r.end_section(), SnapshotError);
}

TEST(SnapshotTest, EveryTruncationFailsCleanly) {
  const std::vector<std::uint8_t> full = sample_snapshot();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    EXPECT_THROW(SnapshotReader r(std::move(cut)), SnapshotError)
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(SnapshotTest, EveryBitFlipIsDetected) {
  // Flipping any byte must be caught at construction (magic, version,
  // size, checksum) or at read time (bounds checks) — never silently
  // accepted as the original data.
  const std::vector<std::uint8_t> full = sample_snapshot();
  for (std::size_t at = 0; at < full.size(); ++at) {
    std::vector<std::uint8_t> bad = full;
    bad[at] ^= 0x40;
    EXPECT_THROW(SnapshotReader r(std::move(bad)), SnapshotError)
        << "bit flip at byte " << at << " was accepted";
  }
}

TEST(SnapshotTest, GarbageFileThrows) {
  EXPECT_THROW(SnapshotReader r(std::vector<std::uint8_t>{'n', 'o'}),
               SnapshotError);
  EXPECT_THROW(SnapshotReader r("/nonexistent/dir/snap.amrs"),
               SnapshotError);
}

TEST(SnapshotTest, OversizedVectorCountThrows) {
  // A corrupted element count must hit the bounds check, not allocate.
  SnapshotWriter w;
  w.begin_section("v");
  w.u64(~0ull);  // vec_pod count with no bytes behind it
  w.end_section();
  SnapshotReader r(w.finish());
  r.begin_section("v");
  EXPECT_THROW(r.vec_pod<std::int64_t>(), SnapshotError);
}

}  // namespace
}  // namespace amr::io
