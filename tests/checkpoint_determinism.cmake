# Asserts the checkpoint/restart determinism contract end-to-end: a run
# restored from any mid-run snapshot and continued to completion must
# produce byte-identical stdout to the uninterrupted run — with fault
# injection active (--faults) and the incremental step pipeline on (the
# default), per the acceptance criteria. Two configurations with
# different step counts vary the regrid schedule, so the checkpoints land
# inside, at the edge of, and after both regrids and the fault window.
#
# Invoked from bench/CMakeLists.txt; -DSEDOV names the sedov_sim binary,
# -DWORK_DIR a scratch directory for checkpoint files.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Each entry: policy ranks steps checkpoint-every.
set(configs
  "cpl50 32 24 5"
  "lpt 32 17 7"
)

foreach(config IN LISTS configs)
  separate_arguments(config)
  list(GET config 0 policy)
  list(GET config 1 ranks)
  list(GET config 2 steps)
  list(GET config 3 every)
  set(dir "${WORK_DIR}/${policy}_${steps}")
  file(MAKE_DIRECTORY "${dir}")

  execute_process(
    COMMAND "${SEDOV}" ${policy} ${ranks} ${steps} --faults=2
    OUTPUT_VARIABLE out_full RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "uninterrupted run failed (exit ${rc})")
  endif()

  execute_process(
    COMMAND "${SEDOV}" ${policy} ${ranks} ${steps} --faults=2
            --checkpoint-every=${every} --checkpoint-dir=${dir}
    OUTPUT_VARIABLE out_ck RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpointing run failed (exit ${rc})")
  endif()
  if(NOT out_full STREQUAL out_ck)
    message(FATAL_ERROR "writing checkpoints changed stdout "
                        "(${policy} ${steps} steps)")
  endif()

  file(GLOB snapshots "${dir}/ckpt_*.amrs")
  if(snapshots STREQUAL "")
    message(FATAL_ERROR "checkpointing run wrote no snapshots in ${dir}")
  endif()
  foreach(snapshot IN LISTS snapshots)
    execute_process(
      COMMAND "${SEDOV}" ${policy} ${ranks} ${steps} --faults=2
              --restore=${snapshot}
      OUTPUT_VARIABLE out_restored RESULT_VARIABLE rc
      ERROR_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "restore from ${snapshot} failed (exit ${rc})")
    endif()
    if(NOT out_full STREQUAL out_restored)
      message(FATAL_ERROR "stdout differs between the uninterrupted run "
                          "and the run restored from ${snapshot}: the "
                          "checkpoint determinism contract is broken")
    endif()
  endforeach()
endforeach()
