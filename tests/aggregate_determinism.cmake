# Asserts the message-aggregation determinism contract end-to-end:
# sedov_sim --aggregate must produce byte-identical stdout
#   1. across --jobs (the sweep runtime must not perturb aggregated
#      plans or their report),
#   2. across checkpoint/restore (a run restored from a mid-run
#      snapshot written under --aggregate continues with identical
#      coalescing), and
#   3. a snapshot written with aggregation ON must refuse to restore
#      into a run with it OFF (config fingerprint mismatch), because
#      replayed windows would carry different expected counts.
# Invoked from bench/CMakeLists.txt; -DSEDOV names the sedov_sim binary,
# -DWORK_DIR a scratch directory for checkpoint files.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24 --aggregate --jobs=1
  OUTPUT_VARIABLE out_j1 RESULT_VARIABLE rc1)
execute_process(
  COMMAND "${SEDOV}" cpl50,lpt,baseline 32 24 --aggregate --jobs=4
  OUTPUT_VARIABLE out_j4 RESULT_VARIABLE rc4)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--aggregate --jobs=1 run failed (exit ${rc1})")
endif()
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "--aggregate --jobs=4 run failed (exit ${rc4})")
endif()
if(NOT out_j1 STREQUAL out_j4)
  message(FATAL_ERROR "stdout differs between --jobs=1 and --jobs=4 "
                      "under --aggregate: aggregated plans are not "
                      "deterministic across the sweep runtime")
endif()

execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --aggregate --faults=2
  OUTPUT_VARIABLE out_full RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted --aggregate run failed (exit ${rc})")
endif()
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --aggregate --faults=2
          --checkpoint-every=7 --checkpoint-dir=${WORK_DIR}
  OUTPUT_VARIABLE out_ck RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing --aggregate run failed (exit ${rc})")
endif()
if(NOT out_full STREQUAL out_ck)
  message(FATAL_ERROR "writing checkpoints changed --aggregate stdout")
endif()

file(GLOB snapshots "${WORK_DIR}/ckpt_*.amrs")
if(snapshots STREQUAL "")
  message(FATAL_ERROR "checkpointing run wrote no snapshots")
endif()
foreach(snapshot IN LISTS snapshots)
  execute_process(
    COMMAND "${SEDOV}" cpl50 32 24 --aggregate --faults=2
            --restore=${snapshot}
    OUTPUT_VARIABLE out_restored RESULT_VARIABLE rc
    ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "restore from ${snapshot} failed (exit ${rc})")
  endif()
  if(NOT out_full STREQUAL out_restored)
    message(FATAL_ERROR "stdout differs between the uninterrupted "
                        "--aggregate run and the run restored from "
                        "${snapshot}: the aggregation determinism "
                        "contract is broken")
  endif()
endforeach()

# Aggregation flag is part of the config fingerprint: restoring an
# aggregated snapshot without --aggregate must fail with a diagnostic.
list(GET snapshots 0 snapshot)
execute_process(
  COMMAND "${SEDOV}" cpl50 32 24 --faults=2 --restore=${snapshot}
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "restoring an --aggregate snapshot without "
                      "--aggregate unexpectedly succeeded")
endif()
if(NOT err MATCHES "aggregation")
  message(FATAL_ERROR "mismatched-aggregation restore failed without "
                      "naming the aggregation flag: ${err}")
endif()
