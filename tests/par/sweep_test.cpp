#include "amr/par/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "amr/common/rng.hpp"

namespace amr {
namespace {

/// A deterministic pseudo-workload: burn a seed-dependent amount of
/// mixing so task durations differ, then report the digest.
std::string digest_task(std::uint64_t seed) {
  std::uint64_t h = seed;
  const std::uint64_t rounds = 1000 + seed % 5000;
  for (std::uint64_t i = 0; i < rounds; ++i) h = hash64(h ^ i);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx\n",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::string run_sweep(int jobs, int tasks) {
  Sweep sweep(jobs);
  for (int i = 0; i < tasks; ++i) {
    const std::uint64_t seed =
        sweep_task_seed(7, static_cast<std::uint64_t>(i));
    sweep.add("t" + std::to_string(i), [seed] { return digest_task(seed); });
  }
  sweep.run();
  std::string all;
  for (const SweepResult& r : sweep.results()) all += r.output;
  return all;
}

TEST(Sweep, SerialGathersInSubmissionOrder) {
  Sweep sweep(1);
  for (int i = 0; i < 8; ++i)
    sweep.add("t" + std::to_string(i),
              [i] { return std::to_string(i) + ";"; });
  sweep.run();
  ASSERT_EQ(sweep.results().size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sweep.results()[static_cast<std::size_t>(i)].output,
              std::to_string(i) + ";");
    EXPECT_EQ(sweep.results()[static_cast<std::size_t>(i)].label,
              "t" + std::to_string(i));
  }
}

TEST(Sweep, ParallelOutputIsByteIdenticalToSerial) {
  // The tentpole contract: --jobs=8 output equals --jobs=1, byte for
  // byte, under uneven task durations.
  const std::string serial = run_sweep(1, 64);
  const std::string parallel = run_sweep(8, 64);
  EXPECT_EQ(serial, parallel);
}

TEST(Sweep, MoreJobsThanTasksWorks) {
  EXPECT_EQ(run_sweep(16, 3), run_sweep(1, 3));
}

TEST(Sweep, EmptySweepRunsAndPrintsNothing) {
  Sweep sweep(4);
  sweep.run();
  EXPECT_TRUE(sweep.results().empty());
  EXPECT_EQ(sweep.task_ms_sum(), 0.0);
}

TEST(Sweep, TaskSeedsAreDistinctAndIndexStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seen.insert(sweep_task_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
  // Stable: same (base, index) always derives the same seed.
  EXPECT_EQ(sweep_task_seed(42, 17), sweep_task_seed(42, 17));
  // Different bases decorrelate.
  EXPECT_NE(sweep_task_seed(42, 17), sweep_task_seed(43, 17));
}

TEST(Sweep, WallClockAccountingIsPopulated) {
  Sweep sweep(2);
  for (int i = 0; i < 4; ++i)
    sweep.add("t", [] { return digest_task(9999); });
  sweep.run();
  EXPECT_GE(sweep.wall_ms(), 0.0);
  EXPECT_GE(sweep.task_ms_sum(), 0.0);
  for (const SweepResult& r : sweep.results())
    EXPECT_GE(r.wall_ms, 0.0);
}

TEST(Sweep, WriteJsonAppendsOneRecordPerCall) {
  Sweep sweep(2);
  sweep.add("alpha \"quoted\"", [] { return std::string("a"); });
  sweep.add("beta\nnewline", [] { return std::string("b"); });
  sweep.run();

  std::string path = ::testing::TempDir() + "sweep_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(sweep.write_json(path, "unit"));
  ASSERT_TRUE(sweep.write_json(path, "unit"));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // Two appended lines, labels JSON-escaped.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 2);
  EXPECT_NE(content.find("\"sweep\":\"unit\""), std::string::npos);
  EXPECT_NE(content.find("alpha \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(content.find("beta\\nnewline"), std::string::npos);
}

}  // namespace
}  // namespace amr
