#include "amr/par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace amr {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.size(), 1);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // no tasks: must not hang
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i)
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, DestructorCompletesOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    // No wait_idle: the destructor must drain before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    for (int i = 0; i < 10; ++i)
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, WorkIsStolenAcrossQueues) {
  // Round-robin puts a long task on one queue and shorts on others; with
  // 2 workers the shorts behind the long task must get stolen, so total
  // wall time stays near the long task alone, not the serial sum. We
  // only assert completion (timing asserts flake on loaded CI), plus
  // that multiple distinct threads participated when possible.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
    count.fetch_add(1, std::memory_order_relaxed);
  });
  // These land round-robin on both queues; the ones behind the blocked
  // worker can only finish via stealing.
  for (int i = 0; i < 20; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  // Give the free worker a moment to drain everything it can reach.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (count.load(std::memory_order_relaxed) < 20 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(count.load(), 20) << "stealable tasks did not complete while "
                                 "one worker was blocked";
  release.store(true, std::memory_order_release);
  pool.wait_idle();
  EXPECT_EQ(count.load(), 21);
}

TEST(ThreadPool, SingleTaskWakeupsAreNeverLost) {
  // Regression for a lost-wakeup race: submit pushed the task and
  // notified outside state_mu_, so the notify could land between a
  // worker's empty-recheck and its wait(), stranding the task. A
  // 1-thread pool with one task per wait_idle cycle maximizes the
  // window — the worker is asleep (or falling asleep) at every submit.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 2000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 2000);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { ADD_FAILURE(); });
}

TEST(ThreadPool, ParallelForIsABarrier) {
  // Every invocation's side effect must be visible when the call
  // returns, repeatedly, with more items than workers.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 1; round <= 20; ++round) {
    pool.parallel_for(7, [&count](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), round * 7);
  }
}

TEST(ThreadPool, ParallelForComposesWithPlainSubmissions) {
  ThreadPool pool(2);
  std::atomic<int> loose{0};
  std::atomic<int> batched{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&loose] { loose.fetch_add(1, std::memory_order_relaxed); });
  pool.parallel_for(50, [&batched](std::size_t) {
    batched.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(batched.load(), 50);  // barrier covers only its own batch
  pool.wait_idle();
  EXPECT_EQ(loose.load(), 50);
}

}  // namespace
}  // namespace amr
