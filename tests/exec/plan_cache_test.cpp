// ExchangePlanCache: a cache hit patched with new costs must be
// byte-equivalent to a from-scratch build, and any mesh or placement
// version change must miss exactly once.
#include <gtest/gtest.h>

#include <vector>

#include "amr/exec/plan_cache.hpp"

namespace amr {
namespace {

bool same_msgs(const std::vector<OutMessage>& a,
               const std::vector<OutMessage>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].dst_rank != b[i].dst_rank || a[i].bytes != b[i].bytes ||
        a[i].src_block != b[i].src_block || a[i].msgs != b[i].msgs)
      return false;
  return true;
}

bool same_computes(const std::vector<BlockCompute>& a,
                   const std::vector<BlockCompute>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].block != b[i].block || a[i].duration != b[i].duration)
      return false;
  return true;
}

void expect_equal(std::span<const RankStepWork> got,
                  std::span<const RankStepWork> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_TRUE(same_computes(got[r].computes, want[r].computes)) << r;
    EXPECT_TRUE(same_computes(got[r].computes_after_wait,
                              want[r].computes_after_wait))
        << r;
    EXPECT_TRUE(same_msgs(got[r].sends, want[r].sends)) << r;
    EXPECT_EQ(got[r].local_copy_bytes, want[r].local_copy_bytes) << r;
    EXPECT_EQ(got[r].local_copy_msgs, want[r].local_copy_msgs) << r;
    EXPECT_EQ(got[r].expected_recvs, want[r].expected_recvs) << r;
    EXPECT_EQ(got[r].recv_bytes, want[r].recv_bytes) << r;
  }
}

void expect_equal(std::span<const OverlapRankWork> got,
                  std::span<const OverlapRankWork> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].blocks.size(), want[r].blocks.size()) << r;
    for (std::size_t b = 0; b < got[r].blocks.size(); ++b) {
      const BlockWork& g = got[r].blocks[b];
      const BlockWork& w = want[r].blocks[b];
      EXPECT_EQ(g.block, w.block);
      EXPECT_EQ(g.compute, w.compute);
      EXPECT_EQ(g.stage2_compute, w.stage2_compute);
      EXPECT_EQ(g.expected_recvs, w.expected_recvs);
      EXPECT_EQ(g.recv_bytes, w.recv_bytes);
      EXPECT_TRUE(same_msgs(g.sends, w.sends));
      EXPECT_EQ(g.send_dst_tags, w.send_dst_tags);
    }
    EXPECT_TRUE(same_msgs(got[r].sends, want[r].sends)) << r;
    EXPECT_EQ(got[r].send_dst_tags, want[r].send_dst_tags) << r;
    EXPECT_EQ(got[r].local_copy_bytes, want[r].local_copy_bytes) << r;
    EXPECT_EQ(got[r].local_copy_msgs, want[r].local_copy_msgs) << r;
    EXPECT_EQ(got[r].expected_recvs, want[r].expected_recvs) << r;
  }
}

Placement round_robin(std::size_t blocks, std::int32_t nranks) {
  Placement p(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    p[b] = static_cast<std::int32_t>(b) % nranks;
  return p;
}

std::vector<TimeNs> costs_for(std::size_t blocks, TimeNs base) {
  std::vector<TimeNs> costs(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    costs[b] = base + static_cast<TimeNs>(b);
  return costs;
}

TEST(PlanCache, HitPatchesCostsAndMatchesFreshBuild) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};

  ExchangePlanCache cache;
  const auto c1 = costs_for(mesh.size(), 100);
  (void)cache.step_work(mesh, p, 0, c1, nranks, sizes, true);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);

  // Same versions, new costs: hit, and the patched plan must equal what
  // a from-scratch build with those costs produces.
  const auto c2 = costs_for(mesh.size(), 5000);
  const auto got = cache.step_work(mesh, p, 0, c2, nranks, sizes, true);
  EXPECT_EQ(cache.stats().hits, 1);
  const auto want = build_step_work(mesh, p, c2, nranks, sizes, true);
  expect_equal(got, want);
}

TEST(PlanCache, MeshVersionChangeInvalidates) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::int32_t nranks = 2;
  const MessageSizeModel sizes{};
  ExchangePlanCache cache;

  Placement p = round_robin(mesh.size(), nranks);
  (void)cache.step_work(mesh, p, 0, costs_for(mesh.size(), 10), nranks,
                        sizes, false);
  mesh.refine(std::vector<std::int32_t>{1});
  p = round_robin(mesh.size(), nranks);
  const auto c = costs_for(mesh.size(), 10);
  const auto got = cache.step_work(mesh, p, 0, c, nranks, sizes, false);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  expect_equal(got, build_step_work(mesh, p, c, nranks, sizes, false));
}

TEST(PlanCache, PlacementVersionChangeInvalidates) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::int32_t nranks = 2;
  const MessageSizeModel sizes{};
  ExchangePlanCache cache;
  const auto c = costs_for(mesh.size(), 10);

  const Placement p1 = round_robin(mesh.size(), nranks);
  (void)cache.step_work(mesh, p1, 0, c, nranks, sizes, false);
  // New placement (reversed), new version: must rebuild from the new
  // placement, not patch the old plan.
  Placement p2 = p1;
  for (auto& r : p2) r = nranks - 1 - r;
  const auto got = cache.step_work(mesh, p2, 1, c, nranks, sizes, false);
  EXPECT_EQ(cache.stats().misses, 2);
  expect_equal(got, build_step_work(mesh, p2, c, nranks, sizes, false));
}

TEST(PlanCache, OverlapHitMatchesFreshBuild) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{3});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  ExchangePlanCache cache;

  (void)cache.overlap_work(mesh, p, 0, costs_for(mesh.size(), 7), nranks,
                           sizes);
  const auto c2 = costs_for(mesh.size(), 999);
  const auto got = cache.overlap_work(mesh, p, 0, c2, nranks, sizes);
  EXPECT_EQ(cache.stats().hits, 1);
  expect_equal(got, build_overlap_work(mesh, p, c2, nranks, sizes));
}

TEST(PlanCache, AggregateFlagIsPartOfTheKey) {
  // Toggling aggregation changes the plan shape (folded sends, per-peer
  // expected counts), so a hit must never serve a plan built under the
  // other flag — even with identical mesh/placement versions.
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 2;  // several blocks per rank: folds exist
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 10);
  ExchangePlanCache cache;

  (void)cache.step_work(mesh, p, 0, c, nranks, sizes, true, false);
  const auto agg = cache.step_work(mesh, p, 0, c, nranks, sizes, true,
                                   true);
  EXPECT_EQ(cache.stats().misses, 2);
  expect_equal(agg, build_step_work(mesh, p, c, nranks, sizes, true, true));
  // And back: the cache keeps one flavor at a time.
  const auto legacy =
      cache.step_work(mesh, p, 0, c, nranks, sizes, true, false);
  EXPECT_EQ(cache.stats().misses, 3);
  expect_equal(legacy,
               build_step_work(mesh, p, c, nranks, sizes, true, false));
  // An aggregated hit with patched costs still equals the fresh build.
  (void)cache.step_work(mesh, p, 0, c, nranks, sizes, true, true);
  const auto c2 = costs_for(mesh.size(), 777);
  const auto hit = cache.step_work(mesh, p, 0, c2, nranks, sizes, true,
                                   true);
  EXPECT_EQ(cache.stats().hits, 1);
  expect_equal(hit, build_step_work(mesh, p, c2, nranks, sizes, true, true));
}

TEST(PlanCache, ModeSwitchRebuildsInsteadOfServingStale) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::int32_t nranks = 2;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 10);
  ExchangePlanCache cache;

  (void)cache.step_work(mesh, p, 0, c, nranks, sizes, false);
  const auto ow = cache.overlap_work(mesh, p, 0, c, nranks, sizes);
  expect_equal(ow, build_overlap_work(mesh, p, c, nranks, sizes));
  const auto bw = cache.step_work(mesh, p, 0, c, nranks, sizes, false);
  expect_equal(bw, build_step_work(mesh, p, c, nranks, sizes, false));
  // Each switch is a miss: the cache keeps one shape at a time.
  EXPECT_EQ(cache.stats().misses, 3);
}

TEST(PlanCache, PackingPolicyIsPartOfTheKey) {
  // Adaptive thresholds change which pairs fold, so switching the policy
  // (or its thresholds) must rebuild — and identical policies must hit.
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 2;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 10);
  const PackingPolicy split{4000, 9000, 16};
  ExchangePlanCache cache;

  (void)cache.step_work(mesh, p, 0, c, nranks, sizes, true, split);
  EXPECT_EQ(cache.stats().misses, 1);
  // Same thresholds: hit, equal to a fresh adaptive build.
  const auto hit = cache.step_work(mesh, p, 0, c, nranks, sizes, true,
                                   split);
  EXPECT_EQ(cache.stats().hits, 1);
  expect_equal(hit, build_step_work(mesh, p, c, nranks, sizes, true, split));
  // Different thresholds: miss.
  const PackingPolicy other{100, 100, 16};
  (void)cache.step_work(mesh, p, 0, c, nranks, sizes, true, other);
  EXPECT_EQ(cache.stats().misses, 2);

  // The overlap shape keys on the policy too.
  (void)cache.overlap_work(mesh, p, 0, c, nranks, sizes, split);
  EXPECT_EQ(cache.stats().misses, 3);
  (void)cache.overlap_work(mesh, p, 0, c, nranks, sizes, split);
  EXPECT_EQ(cache.stats().hits, 2);
  (void)cache.overlap_work(mesh, p, 0, c, nranks, sizes,
                           PackingPolicy::none());
  EXPECT_EQ(cache.stats().misses, 4);
}

}  // namespace
}  // namespace amr
