#include "amr/exec/overlap.hpp"

#include <gtest/gtest.h>

#include "amr/mesh/generators.hpp"
#include "amr/placement/registry.hpp"

namespace amr {
namespace {

struct Harness {
  explicit Harness(std::int32_t nranks)
      : topo(nranks, 2), fabric(topo, quiet(), Rng(1)),
        comm(engine, fabric, nranks), executor(engine, comm) {}

  static FabricParams quiet() {
    FabricParams p = FabricParams::tuned();
    p.remote_jitter = 0;
    return p;
  }

  Engine engine;
  ClusterTopology topo;
  Fabric fabric;
  Comm comm;
  OverlapExecutor executor;
};

TEST(BuildOverlapWork, TotalsMatchBspWork) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));

  const auto bsp = build_step_work(mesh, placement, costs, 5);
  const auto overlap = build_overlap_work(mesh, placement, costs, 5);
  ASSERT_EQ(bsp.size(), overlap.size());
  for (std::size_t r = 0; r < bsp.size(); ++r) {
    EXPECT_EQ(bsp[r].sends.size(), overlap[r].sends.size());
    EXPECT_EQ(bsp[r].expected_recvs, overlap[r].expected_recvs);
    EXPECT_EQ(bsp[r].local_copy_bytes, overlap[r].local_copy_bytes);
    EXPECT_EQ(bsp[r].computes.size(), overlap[r].blocks.size());
    // Per-block expected recvs sum to the rank total.
    std::int32_t per_block = 0;
    std::int64_t recv_bytes = 0;
    for (const auto& b : overlap[r].blocks) {
      per_block += b.expected_recvs;
      recv_bytes += b.recv_bytes;
    }
    EXPECT_EQ(per_block, overlap[r].expected_recvs);
    EXPECT_EQ(recv_bytes, bsp[r].recv_bytes);
  }
}

TEST(OverlapExecutor, ComputeOnlyStepCompletes) {
  Harness h(4);
  std::vector<OverlapRankWork> work(4);
  for (std::size_t r = 0; r < 4; ++r)
    work[r].blocks.push_back(
        BlockWork{.block = static_cast<std::int32_t>(r),
                  .compute = us(100)});
  const StepResult result = h.executor.execute(work, 0);
  for (const auto& s : result.ranks) {
    EXPECT_GT(s.compute_ns, us(99));
    EXPECT_EQ(s.recv_wait_ns, 0);
    EXPECT_GT(s.sync_ns, 0);
  }
}

TEST(OverlapExecutor, IndependentBlockHidesRemoteStall) {
  // Rank 1 owns block A (needs a message that arrives late, because rank
  // 0 computes 5 ms before sending... here: rank 0's send is posted
  // up-front but rank 0 computes first is not possible in overlap — so
  // emulate a late message with a long compute on rank 0's message-
  // producing block plus a dependency). Simplest construction: rank 0
  // sends after a big pack (large message), rank 1 has one dependent
  // block and one independent block.
  auto run = [](bool with_independent_block) {
    Harness h(2);
    std::vector<OverlapRankWork> work(2);
    // Rank 0: one block, one huge message to rank 1's block 10.
    work[0].blocks.push_back(BlockWork{.block = 0, .compute = us(10)});
    work[0].sends.push_back(OutMessage{1, 20'000'000, 0});  // ~3ms pack
    work[0].send_dst_tags.push_back(10);
    // Rank 1: dependent block 10 plus optionally an independent block.
    OverlapRankWork& w1 = work[1];
    w1.blocks.push_back(BlockWork{.block = 10,
                                  .compute = ms(1),
                                  .expected_recvs = 1,
                                  .recv_bytes = 20'000'000});
    w1.expected_recvs = 1;
    if (with_independent_block)
      w1.blocks.push_back(BlockWork{.block = 11, .compute = ms(2)});
    const StepResult r = h.executor.execute(work, 0);
    return r.ranks[1];
  };
  const RankStepStats without = run(false);
  const RankStepStats with = run(true);
  // The independent block absorbs most of the stall.
  EXPECT_GT(without.recv_wait_ns, ms(2));
  EXPECT_LT(with.recv_wait_ns, without.recv_wait_ns - ms(1));
}

TEST(OverlapExecutor, NoIndependentWorkNoBenefit) {
  // One block per rank: overlap degenerates to the BSP result.
  AmrMesh mesh(RootGrid{2, 2, 2});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b);
  const std::vector<TimeNs> costs(mesh.size(), us(200));

  Harness ho(8);
  const auto owork = build_overlap_work(mesh, placement, costs, 8);
  const StepResult overlap = ho.executor.execute(owork, 0);

  Engine engine;
  ClusterTopology topo(8, 2);
  Fabric fabric(topo, Harness::quiet(), Rng(1));
  Comm comm(engine, fabric, 8);
  StepExecutor bsp_executor(engine, comm);
  const auto bwork = build_step_work(mesh, placement, costs, 8);
  const StepResult bsp =
      bsp_executor.execute(bwork, TaskOrdering::kSendFirst, 0);

  // Same work, same ordering of sends: walls within a small tolerance
  // (scheduling details differ slightly).
  EXPECT_NEAR(static_cast<double>(overlap.wall_ns()),
              static_cast<double>(bsp.wall_ns()),
              0.15 * static_cast<double>(bsp.wall_ns()));
}

TEST(OverlapExecutor, ManyBlocksPerRankBeatsBsp) {
  // 8 ranks x 8 blocks with chained remote dependencies: overlap should
  // finish no later than the BSP schedule.
  AmrMesh mesh(RootGrid{4, 4, 4});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 8);
  std::vector<TimeNs> costs(mesh.size());
  Rng rng(3);
  for (auto& c : costs)
    c = static_cast<TimeNs>(rng.uniform(50e3, 400e3));

  Harness ho(8);
  const auto owork = build_overlap_work(mesh, placement, costs, 8);
  const StepResult overlap = ho.executor.execute(owork, 0);

  Engine engine;
  ClusterTopology topo(8, 2);
  Fabric fabric(topo, Harness::quiet(), Rng(1));
  Comm comm(engine, fabric, 8);
  StepExecutor bsp_executor(engine, comm);
  const auto bwork = build_step_work(mesh, placement, costs, 8);
  const StepResult bsp =
      bsp_executor.execute(bwork, TaskOrdering::kSendFirst, 0);

  EXPECT_LE(overlap.wall_ns(),
            bsp.wall_ns() + bsp.wall_ns() / 20);
}

TEST(OverlapExecutor, DeterministicAndReusable) {
  auto run = [] {
    Harness h(4);
    std::vector<OverlapRankWork> work(4);
    for (std::size_t r = 0; r < 4; ++r) {
      work[r].blocks.push_back(
          BlockWork{.block = static_cast<std::int32_t>(r),
                    .compute = us(100)});
    }
    work[0].sends.push_back(OutMessage{2, 4096, 0});
    work[0].send_dst_tags.push_back(2);
    work[2].blocks[0].expected_recvs = 1;
    work[2].blocks[0].recv_bytes = 4096;
    work[2].expected_recvs = 1;
    const TimeNs a = h.executor.execute(work, 0).wall_ns();
    const TimeNs b = h.executor.execute(work, 1).wall_ns();
    EXPECT_EQ(a, b);  // steps are independent and state resets
    return a;
  };
  EXPECT_EQ(run(), run());
}


TEST(TwoStageWork, SplitsCostsAndAttachesSendsToProducers) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 4);
  const std::vector<TimeNs> costs(mesh.size(), us(100));

  const auto overlap =
      build_two_stage_work(mesh, placement, costs, 4, 0.25);
  const auto bsp = two_stage_bsp_work(mesh, placement, costs, 4, 0.25);
  for (std::size_t r = 0; r < 4; ++r) {
    // Stage split preserved per block.
    for (const auto& b : overlap[r].blocks) {
      EXPECT_EQ(b.compute, us(25));
      EXPECT_EQ(b.stage2_compute, us(75));
      EXPECT_GT(b.sends.size(), 0u);  // every block has remote neighbors
    }
    // Rank-level up-front sends are empty in the two-stage model.
    EXPECT_TRUE(overlap[r].sends.empty());
    // BSP rendering: same totals split across the wait.
    for (std::size_t c = 0; c < bsp[r].computes.size(); ++c) {
      EXPECT_EQ(bsp[r].computes[c].duration, us(25));
      EXPECT_EQ(bsp[r].computes_after_wait[c].duration, us(75));
    }
  }
}

TEST(TwoStage, OverlapNoSlowerThanBspOnImbalancedStep) {
  AmrMesh mesh(RootGrid{4, 4, 2});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 8);
  std::vector<TimeNs> costs(mesh.size());
  Rng rng(17);
  for (auto& c : costs)
    c = static_cast<TimeNs>(rng.exponential(200e3));

  Harness ho(8);
  const auto owork = build_two_stage_work(mesh, placement, costs, 8, 0.5);
  const StepResult overlap = ho.executor.execute(owork, 0);

  Engine engine;
  ClusterTopology topo(8, 2);
  Fabric fabric(topo, Harness::quiet(), Rng(1));
  Comm comm(engine, fabric, 8);
  StepExecutor bsp_executor(engine, comm);
  const auto bwork = two_stage_bsp_work(mesh, placement, costs, 8, 0.5);
  const StepResult bsp =
      bsp_executor.execute(bwork, TaskOrdering::kComputeFirst, 0);

  EXPECT_LE(overlap.wall_ns(), bsp.wall_ns() + bsp.wall_ns() / 50);
  // And the idle time spent stalled must not exceed the BSP recv wait by
  // more than scheduling noise.
  TimeNs overlap_wait = 0;
  TimeNs bsp_wait = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    overlap_wait += overlap.ranks[r].recv_wait_ns;
    bsp_wait += bsp.ranks[r].recv_wait_ns;
  }
  EXPECT_LE(overlap_wait, bsp_wait + us(100));
}

TEST(PackedOverlap, NonePolicyMatchesPlainBuild) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  const auto plain = build_overlap_work(mesh, placement, costs, 5);
  const auto none = build_overlap_work(mesh, placement, costs, 5, sizes,
                                       PackingPolicy::none());
  ASSERT_EQ(plain.size(), none.size());
  for (std::size_t r = 0; r < plain.size(); ++r) {
    EXPECT_EQ(plain[r].sends.size(), none[r].sends.size());
    EXPECT_EQ(plain[r].expected_recvs, none[r].expected_recvs);
    EXPECT_TRUE(none[r].packed_sends.empty());
    EXPECT_TRUE(none[r].agg_credits.empty());
  }
}

TEST(PackedOverlap, PackAllConservesLogicalTraffic) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  const auto plain = build_overlap_work(mesh, placement, costs, 5);
  const auto packed = build_overlap_work(mesh, placement, costs, 5, sizes,
                                         PackingPolicy::all());
  ASSERT_EQ(plain.size(), packed.size());

  std::vector<std::int64_t> incoming(5, 0);
  for (std::size_t r = 0; r < packed.size(); ++r) {
    const auto& w = packed[r];
    // Everything packs: no eager rank-level sends remain.
    EXPECT_TRUE(w.sends.empty());
    std::int64_t logical = 0;
    std::vector<bool> dst_seen(5, false);
    for (const auto& ps : w.packed_sends) {
      EXPECT_GE(ps.msg.msgs, 1);
      EXPECT_EQ(ps.contributors, 0);  // single-stage: queued at step start
      logical += ps.msg.msgs;
      // At most one aggregate per destination.
      EXPECT_FALSE(dst_seen[static_cast<std::size_t>(ps.msg.dst_rank)]);
      dst_seen[static_cast<std::size_t>(ps.msg.dst_rank)] = true;
      ++incoming[static_cast<std::size_t>(ps.msg.dst_rank)];
    }
    EXPECT_EQ(logical, static_cast<std::int64_t>(plain[r].sends.size()));
    // Per-block bookkeeping stays logical (one credit per message).
    std::int32_t per_block = 0;
    std::int64_t recv_bytes = 0;
    for (const auto& b : w.blocks) {
      per_block += b.expected_recvs;
      recv_bytes += b.recv_bytes;
    }
    std::int64_t plain_recv_bytes = 0;
    for (const auto& b : plain[r].blocks) plain_recv_bytes += b.recv_bytes;
    EXPECT_EQ(recv_bytes, plain_recv_bytes);
    // Credits cover exactly the per-block expectations.
    std::int32_t credits = 0;
    for (const auto& c : w.agg_credits) credits += c.count;
    EXPECT_EQ(credits, per_block);
  }
  // Rank-level expected counts are transfer counts, not logical counts.
  for (std::size_t r = 0; r < packed.size(); ++r)
    EXPECT_EQ(packed[r].expected_recvs, incoming[r]);
}

TEST(PackedOverlap, ExecutesToCompletionAndDeterministically) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(50));
  const MessageSizeModel sizes;
  auto run = [&](const PackingPolicy& p, std::int32_t priority) {
    Harness h(5);
    const auto work =
        build_overlap_work(mesh, placement, costs, 5, sizes, p);
    return h.executor.execute(work, 0, priority).wall_ns();
  };
  const TimeNs packed = run(PackingPolicy::all(), -1);
  EXPECT_GT(packed, 0);
  EXPECT_EQ(packed, run(PackingPolicy::all(), -1));
  // A per-pair split executes too (thresholds between edge and face).
  const std::int64_t mid = (sizes.bytes(NeighborKind::kEdge) +
                            sizes.bytes(NeighborKind::kFace)) / 2;
  const TimeNs split = run(PackingPolicy{mid, mid, 2}, -1);
  EXPECT_GT(split, 0);
  EXPECT_EQ(split, run(PackingPolicy{mid, mid, 2}, -1));
}

TEST(PackedOverlap, PriorityRankIsDeterministicNoopOffAndOn) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(50));
  const MessageSizeModel sizes;
  auto run = [&](std::int32_t priority) {
    Harness h(5);
    const auto work = build_overlap_work(mesh, placement, costs, 5);
    return h.executor.execute(work, 0, priority).wall_ns();
  };
  // -1 must match the two-argument legacy call exactly.
  Harness legacy(5);
  const auto work = build_overlap_work(mesh, placement, costs, 5);
  EXPECT_EQ(run(-1), legacy.executor.execute(work, 0).wall_ns());
  // A real priority rank still completes and is reproducible.
  const TimeNs prio = run(2);
  EXPECT_GT(prio, 0);
  EXPECT_EQ(prio, run(2));
}

TEST(TwoStagePacked, ContributorCountsMatchProducers) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 4);
  const std::vector<TimeNs> costs(mesh.size(), us(100));
  const MessageSizeModel sizes;
  const auto work = build_two_stage_work(mesh, placement, costs, 4, 0.25,
                                         sizes, PackingPolicy::all());
  for (const auto& w : work) {
    // Count how many distinct blocks reference each aggregate.
    std::vector<std::int32_t> refs(w.packed_sends.size(), 0);
    for (const auto& b : w.blocks) {
      std::vector<bool> seen(w.packed_sends.size(), false);
      for (const std::int32_t idx : b.packed_out) {
        ASSERT_GE(idx, 0);
        ASSERT_LT(static_cast<std::size_t>(idx), w.packed_sends.size());
        EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
        seen[static_cast<std::size_t>(idx)] = true;
        ++refs[static_cast<std::size_t>(idx)];
      }
    }
    for (std::size_t i = 0; i < w.packed_sends.size(); ++i) {
      EXPECT_GT(w.packed_sends[i].contributors, 0);
      EXPECT_EQ(refs[i], w.packed_sends[i].contributors);
    }
  }
  // And the schedule executes without deadlock.
  Harness h(4);
  EXPECT_GT(h.executor.execute(work, 0).wall_ns(), 0);
}

TEST(TwoStage, CompletesWithCrossDependencies) {
  // Dense all-to-all-ish dependencies must not deadlock: stage 1 never
  // blocks, so the DAG is acyclic by construction.
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement placement{0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<TimeNs> costs(mesh.size(), us(50));
  Harness h(4);
  const auto work = build_two_stage_work(mesh, placement, costs, 4, 0.5);
  const StepResult r = h.executor.execute(work, 0);
  EXPECT_GT(r.wall_ns(), 0);
}

}  // namespace
}  // namespace amr
