#include "amr/exec/critical_path.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

StepResult make_result(std::vector<RankStepStats> ranks, TimeNs wall) {
  StepResult r;
  r.ranks = std::move(ranks);
  r.step_start = 0;
  r.step_end = wall;
  return r;
}

RankStepStats rank_stats(TimeNs entry, TimeNs compute, TimeNs recv_wait,
                         std::int32_t release_src) {
  RankStepStats s;
  s.collective_entry = entry;
  s.compute_ns = compute;
  s.recv_wait_ns = recv_wait;
  s.last_release_src = release_src;
  return s;
}

TEST(CriticalPath, StragglerIsLatestEntry) {
  const StepResult result = make_result(
      {rank_stats(100, 100, 0, -1), rank_stats(500, 500, 0, -1),
       rank_stats(300, 300, 0, -1)},
      600);
  EXPECT_EQ(CriticalPathAnalyzer::straggler_of(result), 1);
}

TEST(CriticalPath, ComputeBoundWindowIsOneRankPath) {
  CriticalPathAnalyzer analyzer;
  analyzer.observe(make_result(
      {rank_stats(ms(1), ms(1), 0, -1), rank_stats(ms(5), ms(5), 0, -1)},
      ms(5)));
  EXPECT_EQ(analyzer.stats().one_rank_paths, 1);
  EXPECT_EQ(analyzer.stats().two_rank_paths, 0);
}

TEST(CriticalPath, StalledStragglerIsTwoRankPath) {
  CriticalPathAnalyzer analyzer;
  // Straggler (rank 1) spent most of the window waiting on rank 0.
  analyzer.observe(make_result(
      {rank_stats(ms(4), ms(4), 0, -1),
       rank_stats(ms(5), ms(1), ms(4), 0)},
      ms(5)));
  EXPECT_EQ(analyzer.stats().two_rank_paths, 1);
  EXPECT_EQ(analyzer.stats().one_rank_paths, 0);
}

TEST(CriticalPath, SmallWaitBelowThresholdStaysOneRank) {
  CriticalPathAnalyzer analyzer(/*wait_threshold_frac=*/0.1);
  analyzer.observe(make_result(
      {rank_stats(ms(1), ms(1), 0, -1),
       rank_stats(ms(10), ms(9.9), us(10), 0)},
      ms(10)));
  EXPECT_EQ(analyzer.stats().one_rank_paths, 1);
}

TEST(CriticalPath, StatsAccumulateAcrossWindows) {
  CriticalPathAnalyzer analyzer;
  for (int i = 0; i < 5; ++i)
    analyzer.observe(make_result({rank_stats(ms(1), ms(1), 0, -1),
                                  rank_stats(ms(2), ms(2), 0, -1)},
                                 ms(2)));
  for (int i = 0; i < 5; ++i)
    analyzer.observe(make_result({rank_stats(ms(1), ms(1), 0, -1),
                                  rank_stats(ms(3), ms(1), ms(2), 0)},
                                 ms(3)));
  EXPECT_EQ(analyzer.stats().windows, 10);
  EXPECT_EQ(analyzer.stats().one_rank_paths, 5);
  EXPECT_EQ(analyzer.stats().two_rank_paths, 5);
  EXPECT_DOUBLE_EQ(analyzer.stats().two_rank_fraction(), 0.5);
  EXPECT_NEAR(analyzer.stats().window_ms.mean(), 2.5, 1e-9);
}

}  // namespace
}  // namespace amr
