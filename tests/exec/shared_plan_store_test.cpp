// SharedPlanStore: a content-keyed hit must be the very plan the
// consumer would have built, any mode-matrix mismatch must isolate the
// tenants, and the FIFO capacity cap must evict oldest-published first.
// Then the ExchangePlanCache hookup: two version-keyed caches wired to
// one store share plans across tenants (share_hits), their shared hits
// are byte-identical to private from-scratch builds, and caches running
// a different execution mode never alias.
#include <gtest/gtest.h>

#include <vector>

#include "amr/exec/plan_cache.hpp"
#include "amr/exec/shared_plan_store.hpp"

namespace amr {
namespace {

bool same_msgs(const std::vector<OutMessage>& a,
               const std::vector<OutMessage>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].dst_rank != b[i].dst_rank || a[i].bytes != b[i].bytes ||
        a[i].src_block != b[i].src_block || a[i].msgs != b[i].msgs)
      return false;
  return true;
}

bool same_computes(const std::vector<BlockCompute>& a,
                   const std::vector<BlockCompute>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].block != b[i].block || a[i].duration != b[i].duration)
      return false;
  return true;
}

void expect_equal(std::span<const RankStepWork> got,
                  std::span<const RankStepWork> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_TRUE(same_computes(got[r].computes, want[r].computes)) << r;
    EXPECT_TRUE(same_msgs(got[r].sends, want[r].sends)) << r;
    EXPECT_EQ(got[r].local_copy_bytes, want[r].local_copy_bytes) << r;
    EXPECT_EQ(got[r].expected_recvs, want[r].expected_recvs) << r;
    EXPECT_EQ(got[r].recv_bytes, want[r].recv_bytes) << r;
  }
}

void expect_equal(std::span<const OverlapRankWork> got,
                  std::span<const OverlapRankWork> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].blocks.size(), want[r].blocks.size()) << r;
    for (std::size_t b = 0; b < got[r].blocks.size(); ++b) {
      const BlockWork& g = got[r].blocks[b];
      const BlockWork& w = want[r].blocks[b];
      EXPECT_EQ(g.block, w.block);
      EXPECT_EQ(g.compute, w.compute);
      EXPECT_EQ(g.expected_recvs, w.expected_recvs);
      EXPECT_TRUE(same_msgs(g.sends, w.sends));
    }
    EXPECT_TRUE(same_msgs(got[r].sends, want[r].sends)) << r;
    EXPECT_EQ(got[r].expected_recvs, want[r].expected_recvs) << r;
  }
}

Placement round_robin(std::size_t blocks, std::int32_t nranks) {
  Placement p(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    p[b] = static_cast<std::int32_t>(b) % nranks;
  return p;
}

std::vector<TimeNs> costs_for(std::size_t blocks, TimeNs base) {
  std::vector<TimeNs> costs(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    costs[b] = base + static_cast<TimeNs>(b);
  return costs;
}

/// The content key a tenant running (mesh, p) would present — built
/// fresh each call, the way distinct tenants present distinct copies.
SharedPlanStore::Key key_for(const AmrMesh& mesh, const Placement& p,
                             std::int32_t nranks, bool overlap,
                             bool include_flux, double stage1_frac,
                             const MessageSizeModel& sizes,
                             const PackingPolicy& packing) {
  SharedPlanStore::Key k;
  k.overlap = overlap;
  k.nranks = nranks;
  k.include_flux = include_flux;
  k.stage1_frac = stage1_frac;
  k.sizes = sizes;
  k.packing = packing;
  k.blocks.assign(mesh.blocks().begin(), mesh.blocks().end());
  k.placement = p;
  return k;
}

TEST(SharedPlanStore, PublishedBspPlanRoundTrips) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 100);
  const auto plan = build_step_work(mesh, p, c, nranks, sizes, true);

  SharedPlanStore store;
  std::vector<RankStepWork> out;
  auto key = [&] {
    return key_for(mesh, p, nranks, false, true, 0.0, sizes,
                   PackingPolicy::none());
  };
  EXPECT_FALSE(store.lookup_bsp(key(), out));
  store.publish_bsp(key(), plan);
  // A second tenant presents its own copy of the same content.
  ASSERT_TRUE(store.lookup_bsp(key(), out));
  expect_equal(out, plan);
  EXPECT_EQ(store.stats().hits, 1);
  EXPECT_EQ(store.stats().misses, 1);
  EXPECT_EQ(store.stats().published, 1);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SharedPlanStore, EveryKeyAxisIsolates) {
  // Flipping any single axis of the mode matrix must miss: a tenant
  // never receives a plan built under different inputs.
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto plan = build_step_work(mesh, p, costs_for(mesh.size(), 10),
                                    nranks, sizes, true);

  SharedPlanStore store;
  const auto base = [&] {
    return key_for(mesh, p, nranks, false, true, 0.0, sizes,
                   PackingPolicy::none());
  };
  store.publish_bsp(base(), plan);
  std::vector<RankStepWork> out;
  ASSERT_TRUE(store.lookup_bsp(base(), out));

  auto k = base();
  k.nranks = nranks * 2;
  EXPECT_FALSE(store.lookup_bsp(k, out));

  k = base();
  k.include_flux = false;
  EXPECT_FALSE(store.lookup_bsp(k, out));

  k = base();
  k.sizes.ghost = 3;
  EXPECT_FALSE(store.lookup_bsp(k, out));

  k = base();
  k.packing = PackingPolicy::all();
  EXPECT_FALSE(store.lookup_bsp(k, out));

  k = base();
  k.placement[0] = (k.placement[0] + 1) % nranks;
  EXPECT_FALSE(store.lookup_bsp(k, out));

  // A different mesh epoch (refined leaves) is a different key.
  AmrMesh fine(RootGrid{2, 2, 2});
  fine.refine(std::vector<std::int32_t>{0});
  const Placement pf = round_robin(fine.size(), nranks);
  EXPECT_FALSE(store.lookup_bsp(
      key_for(fine, pf, nranks, false, true, 0.0, sizes,
              PackingPolicy::none()),
      out));
}

TEST(SharedPlanStore, OverlapPlanRoundTripsAndKeysOnStageSplit) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{3});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 7);
  const auto plan = build_overlap_work(mesh, p, c, nranks, sizes);

  SharedPlanStore store;
  const auto key = [&](double frac) {
    return key_for(mesh, p, nranks, true, false, frac, sizes,
                   PackingPolicy::none());
  };
  store.publish_overlap(key(0.0), plan);
  std::vector<OverlapRankWork> out;
  ASSERT_TRUE(store.lookup_overlap(key(0.0), out));
  expect_equal(out, plan);
  // The two-stage split is a key axis: a legacy plan must not serve a
  // two-stage consumer.
  EXPECT_FALSE(store.lookup_overlap(key(0.5), out));
}

TEST(SharedPlanStore, FifoEvictsOldestAtCapacity) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const MessageSizeModel sizes{};
  SharedPlanStore store(2);
  std::vector<RankStepWork> out;
  // Three distinct keys (by nranks), published in order.
  for (std::int32_t nranks = 2; nranks <= 8; nranks *= 2) {
    const Placement p = round_robin(mesh.size(), nranks);
    store.publish_bsp(key_for(mesh, p, nranks, false, true, 0.0, sizes,
                              PackingPolicy::none()),
                      build_step_work(mesh, p, costs_for(mesh.size(), 1),
                                      nranks, sizes, true));
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evicted, 1);
  // Oldest (nranks=2) is gone; the newer two survive.
  EXPECT_FALSE(store.lookup_bsp(
      key_for(mesh, round_robin(mesh.size(), 2), 2, false, true, 0.0,
              sizes, PackingPolicy::none()),
      out));
  EXPECT_TRUE(store.lookup_bsp(
      key_for(mesh, round_robin(mesh.size(), 4), 4, false, true, 0.0,
              sizes, PackingPolicy::none()),
      out));
  EXPECT_TRUE(store.lookup_bsp(
      key_for(mesh, round_robin(mesh.size(), 8), 8, false, true, 0.0,
              sizes, PackingPolicy::none()),
      out));
}

TEST(SharedPlanStore, DuplicatePublishKeepsFirst) {
  // Two tenants can race to build the same epoch; the second insert is
  // a no-op (both plans are identical by construction anyway).
  AmrMesh mesh(RootGrid{2, 2, 2});
  const std::int32_t nranks = 2;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto plan = build_step_work(mesh, p, costs_for(mesh.size(), 3),
                                    nranks, sizes, true);
  SharedPlanStore store;
  const auto key = [&] {
    return key_for(mesh, p, nranks, false, true, 0.0, sizes,
                   PackingPolicy::none());
  };
  store.publish_bsp(key(), plan);
  store.publish_bsp(key(), plan);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().published, 1);
}

TEST(SharedPlanStore, IdenticalFingerprintCachesShare) {
  // The serve wiring: tenant A's cache builds and publishes; tenant B's
  // cache — identical content, its own version counters and costs —
  // fills its miss from the store, and the patched result is byte-
  // identical to the from-scratch build B would have done.
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 4;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};

  SharedPlanStore store;
  ExchangePlanCache a, b;
  a.set_shared_store(&store);
  b.set_shared_store(&store);

  const auto ca = costs_for(mesh.size(), 100);
  (void)a.step_work(mesh, p, 0, ca, nranks, sizes, true);
  EXPECT_EQ(a.stats().misses, 1);
  EXPECT_EQ(a.stats().share_hits, 0);
  EXPECT_EQ(store.stats().published, 1);

  const auto cb = costs_for(mesh.size(), 5000);
  const auto got = b.step_work(mesh, p, 0, cb, nranks, sizes, true);
  // Still a version-key miss (B's cache was empty), but filled from the
  // store rather than built.
  EXPECT_EQ(b.stats().misses, 1);
  EXPECT_EQ(b.stats().share_hits, 1);
  EXPECT_EQ(store.stats().hits, 1);
  expect_equal(got, build_step_work(mesh, p, cb, nranks, sizes, true));

  // B's next step with fresh costs is a plain private hit: no store
  // traffic, same bytes as a fresh build.
  const auto cb2 = costs_for(mesh.size(), 777);
  const auto hit = b.step_work(mesh, p, 0, cb2, nranks, sizes, true);
  EXPECT_EQ(b.stats().hits, 1);
  EXPECT_EQ(store.stats().hits, 1);
  expect_equal(hit, build_step_work(mesh, p, cb2, nranks, sizes, true));
}

TEST(SharedPlanStore, ModeMismatchNeverShares) {
  // A tenant running any different mode-matrix point must build its own
  // plan: aggregation, packing thresholds, and execution mode all key.
  AmrMesh mesh(RootGrid{2, 2, 2});
  mesh.refine(std::vector<std::int32_t>{0});
  const std::int32_t nranks = 2;
  const Placement p = round_robin(mesh.size(), nranks);
  const MessageSizeModel sizes{};
  const auto c = costs_for(mesh.size(), 10);

  SharedPlanStore store;
  ExchangePlanCache legacy;
  legacy.set_shared_store(&store);
  (void)legacy.step_work(mesh, p, 0, c, nranks, sizes, true);
  ASSERT_EQ(store.stats().published, 1);

  ExchangePlanCache agg;
  agg.set_shared_store(&store);
  const auto got =
      agg.step_work(mesh, p, 0, c, nranks, sizes, true, /*aggregate=*/true);
  EXPECT_EQ(agg.stats().share_hits, 0);
  expect_equal(got, build_step_work(mesh, p, c, nranks, sizes, true, true));

  ExchangePlanCache adaptive;
  adaptive.set_shared_store(&store);
  const PackingPolicy split{4000, 9000, 16};
  (void)adaptive.step_work(mesh, p, 0, c, nranks, sizes, true, split);
  EXPECT_EQ(adaptive.stats().share_hits, 0);

  ExchangePlanCache overlap;
  overlap.set_shared_store(&store);
  const auto ow = overlap.overlap_work(mesh, p, 0, c, nranks, sizes);
  EXPECT_EQ(overlap.stats().share_hits, 0);
  expect_equal(ow, build_overlap_work(mesh, p, c, nranks, sizes));

  // But a second adaptive tenant with the same thresholds does share.
  ExchangePlanCache adaptive2;
  adaptive2.set_shared_store(&store);
  const auto got2 =
      adaptive2.step_work(mesh, p, 0, c, nranks, sizes, true, split);
  EXPECT_EQ(adaptive2.stats().share_hits, 1);
  expect_equal(got2,
               build_step_work(mesh, p, c, nranks, sizes, true, split));
}

}  // namespace
}  // namespace amr
