#include "amr/exec/work.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

TEST(BuildStepWork, ComputeTasksFollowPlacement) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement placement{0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<TimeNs> costs(8, us(100));
  const auto work = build_step_work(mesh, placement, costs, 4);
  ASSERT_EQ(work.size(), 4u);
  for (const auto& w : work) EXPECT_EQ(w.computes.size(), 2u);
}

TEST(BuildStepWork, SendsMatchExpectedRecvs) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const auto work = build_step_work(mesh, placement, costs, 5);

  std::vector<std::int64_t> incoming(5, 0);
  std::int64_t total_sends = 0;
  for (const auto& w : work) {
    for (const auto& s : w.sends) {
      ++incoming[static_cast<std::size_t>(s.dst_rank)];
      ++total_sends;
    }
  }
  std::int64_t total_expected = 0;
  for (std::size_t r = 0; r < work.size(); ++r) {
    EXPECT_EQ(incoming[r], work[r].expected_recvs);
    total_expected += work[r].expected_recvs;
  }
  EXPECT_EQ(total_sends, total_expected);
}

TEST(BuildStepWork, SingleRankHasOnlyLocalCopies) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement placement(mesh.size(), 0);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const auto work = build_step_work(mesh, placement, costs, 1);
  EXPECT_TRUE(work[0].sends.empty());
  EXPECT_EQ(work[0].expected_recvs, 0);
  EXPECT_GT(work[0].local_copy_msgs, 0);
  // 8 blocks x 7 neighbors each (2x2x2 fully adjacent) = 56 pairs.
  EXPECT_EQ(work[0].local_copy_msgs, 56);
}

TEST(BuildStepWork, MessageBytesFollowNeighborKind) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  const Placement placement{0, 1};
  const std::vector<TimeNs> costs(2, us(10));
  const MessageSizeModel sizes;
  const auto work = build_step_work(mesh, placement, costs, 2, sizes);
  ASSERT_EQ(work[0].sends.size(), 1u);
  EXPECT_EQ(work[0].sends[0].bytes, sizes.bytes(NeighborKind::kFace));
}

TEST(BuildStepWork, TotalComputeConservedAcrossPlacements) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  std::vector<TimeNs> costs(mesh.size());
  for (std::size_t b = 0; b < costs.size(); ++b)
    costs[b] = us(10.0 * (static_cast<double>(b) + 1));
  const Placement a{0, 0, 1, 1, 2, 2, 3, 3};
  const Placement b{3, 2, 1, 0, 3, 2, 1, 0};
  auto total = [&](const Placement& p) {
    TimeNs sum = 0;
    for (const auto& w : build_step_work(mesh, p, costs, 4))
      for (const auto& c : w.computes) sum += c.duration;
    return sum;
  };
  EXPECT_EQ(total(a), total(b));
}

TEST(BuildStepWork, AggregateFoldsSendsPerDestination) {
  // 3x3x3 over 5 ranks: every rank holds several blocks, so most
  // (src,dst) pairs carry more than one boundary message. Aggregation
  // must fold them into one send per pair, conserve the logical message
  // count and byte volume, and keep expected counts per-peer.
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  const auto legacy =
      build_step_work(mesh, placement, costs, 5, sizes, false, false);
  const auto agg =
      build_step_work(mesh, placement, costs, 5, sizes, false, true);
  ASSERT_EQ(agg.size(), legacy.size());

  std::int64_t legacy_sends = 0;
  std::int64_t legacy_bytes = 0;
  for (const auto& w : legacy) {
    legacy_sends += static_cast<std::int64_t>(w.sends.size());
    for (const auto& s : w.sends) {
      legacy_bytes += s.bytes;
      EXPECT_EQ(s.msgs, 1);
    }
  }
  std::int64_t agg_sends = 0;
  std::int64_t agg_bytes = 0;
  std::int64_t agg_logical = 0;
  std::vector<std::int64_t> incoming(5, 0);
  for (std::size_t r = 0; r < agg.size(); ++r) {
    const auto& w = agg[r];
    agg_sends += static_cast<std::int64_t>(w.sends.size());
    std::vector<bool> dst_seen(5, false);
    for (const auto& s : w.sends) {
      agg_bytes += s.bytes;
      agg_logical += s.msgs;
      EXPECT_GE(s.msgs, 1);
      // One packed transfer per destination, at most.
      EXPECT_FALSE(dst_seen[static_cast<std::size_t>(s.dst_rank)]);
      dst_seen[static_cast<std::size_t>(s.dst_rank)] = true;
      ++incoming[static_cast<std::size_t>(s.dst_rank)];
    }
    // Local copies and per-rank recv bytes are unaffected by packing.
    EXPECT_EQ(w.local_copy_msgs, legacy[r].local_copy_msgs);
    EXPECT_EQ(w.local_copy_bytes, legacy[r].local_copy_bytes);
    EXPECT_EQ(w.recv_bytes, legacy[r].recv_bytes);
  }
  EXPECT_EQ(agg_logical, legacy_sends);
  EXPECT_EQ(agg_bytes, legacy_bytes);
  EXPECT_LT(agg_sends, legacy_sends);
  for (std::size_t r = 0; r < agg.size(); ++r)
    EXPECT_EQ(incoming[r], agg[r].expected_recvs);
}

}  // namespace
}  // namespace amr
