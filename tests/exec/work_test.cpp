#include "amr/exec/work.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace amr {
namespace {

TEST(BuildStepWork, ComputeTasksFollowPlacement) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement placement{0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<TimeNs> costs(8, us(100));
  const auto work = build_step_work(mesh, placement, costs, 4);
  ASSERT_EQ(work.size(), 4u);
  for (const auto& w : work) EXPECT_EQ(w.computes.size(), 2u);
}

TEST(BuildStepWork, SendsMatchExpectedRecvs) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const auto work = build_step_work(mesh, placement, costs, 5);

  std::vector<std::int64_t> incoming(5, 0);
  std::int64_t total_sends = 0;
  for (const auto& w : work) {
    for (const auto& s : w.sends) {
      ++incoming[static_cast<std::size_t>(s.dst_rank)];
      ++total_sends;
    }
  }
  std::int64_t total_expected = 0;
  for (std::size_t r = 0; r < work.size(); ++r) {
    EXPECT_EQ(incoming[r], work[r].expected_recvs);
    total_expected += work[r].expected_recvs;
  }
  EXPECT_EQ(total_sends, total_expected);
}

TEST(BuildStepWork, SingleRankHasOnlyLocalCopies) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  const Placement placement(mesh.size(), 0);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const auto work = build_step_work(mesh, placement, costs, 1);
  EXPECT_TRUE(work[0].sends.empty());
  EXPECT_EQ(work[0].expected_recvs, 0);
  EXPECT_GT(work[0].local_copy_msgs, 0);
  // 8 blocks x 7 neighbors each (2x2x2 fully adjacent) = 56 pairs.
  EXPECT_EQ(work[0].local_copy_msgs, 56);
}

TEST(BuildStepWork, MessageBytesFollowNeighborKind) {
  AmrMesh mesh(RootGrid{2, 1, 1});
  const Placement placement{0, 1};
  const std::vector<TimeNs> costs(2, us(10));
  const MessageSizeModel sizes;
  const auto work = build_step_work(mesh, placement, costs, 2, sizes);
  ASSERT_EQ(work[0].sends.size(), 1u);
  EXPECT_EQ(work[0].sends[0].bytes, sizes.bytes(NeighborKind::kFace));
}

TEST(BuildStepWork, TotalComputeConservedAcrossPlacements) {
  AmrMesh mesh(RootGrid{2, 2, 2});
  std::vector<TimeNs> costs(mesh.size());
  for (std::size_t b = 0; b < costs.size(); ++b)
    costs[b] = us(10.0 * (static_cast<double>(b) + 1));
  const Placement a{0, 0, 1, 1, 2, 2, 3, 3};
  const Placement b{3, 2, 1, 0, 3, 2, 1, 0};
  auto total = [&](const Placement& p) {
    TimeNs sum = 0;
    for (const auto& w : build_step_work(mesh, p, costs, 4))
      for (const auto& c : w.computes) sum += c.duration;
    return sum;
  };
  EXPECT_EQ(total(a), total(b));
}

TEST(BuildStepWork, AggregateFoldsSendsPerDestination) {
  // 3x3x3 over 5 ranks: every rank holds several blocks, so most
  // (src,dst) pairs carry more than one boundary message. Aggregation
  // must fold them into one send per pair, conserve the logical message
  // count and byte volume, and keep expected counts per-peer.
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  const auto legacy =
      build_step_work(mesh, placement, costs, 5, sizes, false, false);
  const auto agg =
      build_step_work(mesh, placement, costs, 5, sizes, false, true);
  ASSERT_EQ(agg.size(), legacy.size());

  std::int64_t legacy_sends = 0;
  std::int64_t legacy_bytes = 0;
  for (const auto& w : legacy) {
    legacy_sends += static_cast<std::int64_t>(w.sends.size());
    for (const auto& s : w.sends) {
      legacy_bytes += s.bytes;
      EXPECT_EQ(s.msgs, 1);
    }
  }
  std::int64_t agg_sends = 0;
  std::int64_t agg_bytes = 0;
  std::int64_t agg_logical = 0;
  std::vector<std::int64_t> incoming(5, 0);
  for (std::size_t r = 0; r < agg.size(); ++r) {
    const auto& w = agg[r];
    agg_sends += static_cast<std::int64_t>(w.sends.size());
    std::vector<bool> dst_seen(5, false);
    for (const auto& s : w.sends) {
      agg_bytes += s.bytes;
      agg_logical += s.msgs;
      EXPECT_GE(s.msgs, 1);
      // One packed transfer per destination, at most.
      EXPECT_FALSE(dst_seen[static_cast<std::size_t>(s.dst_rank)]);
      dst_seen[static_cast<std::size_t>(s.dst_rank)] = true;
      ++incoming[static_cast<std::size_t>(s.dst_rank)];
    }
    // Local copies and per-rank recv bytes are unaffected by packing.
    EXPECT_EQ(w.local_copy_msgs, legacy[r].local_copy_msgs);
    EXPECT_EQ(w.local_copy_bytes, legacy[r].local_copy_bytes);
    EXPECT_EQ(w.recv_bytes, legacy[r].recv_bytes);
  }
  EXPECT_EQ(agg_logical, legacy_sends);
  EXPECT_EQ(agg_bytes, legacy_bytes);
  EXPECT_LT(agg_sends, legacy_sends);
  for (std::size_t r = 0; r < agg.size(); ++r)
    EXPECT_EQ(incoming[r], agg[r].expected_recvs);
}

TEST(PackingPolicy, ThresholdAndNodeSplit) {
  // Mean bytes/message vs the per-path threshold; same-node pairs use
  // the shm threshold, cross-node pairs the remote one (16 ranks/node).
  PackingPolicy p{4000, 1000, 16};
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(p.pack_all());
  // Single messages never pack regardless of size.
  EXPECT_FALSE(p.pack(0, 1, 100, 1));
  // Same node (ranks 0 and 1): mean 2000 <= 4000 packs.
  EXPECT_TRUE(p.pack(0, 1, 4000, 2));
  // Cross node (ranks 0 and 16): mean 2000 > 1000 stays eager.
  EXPECT_FALSE(p.pack(0, 16, 4000, 2));
  EXPECT_TRUE(p.pack(0, 16, 1500, 2));
  EXPECT_FALSE(PackingPolicy::none().active());
  EXPECT_TRUE(PackingPolicy::all().pack_all());
  EXPECT_TRUE(PackingPolicy::all().pack(0, 99, std::int64_t{1} << 39, 2));
}

TEST(BuildStepWork, AdaptiveNoneAndAllMatchLegacyPaths) {
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  auto same = [](std::span<const RankStepWork> a,
                 std::span<const RankStepWork> b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      ASSERT_EQ(a[r].sends.size(), b[r].sends.size());
      for (std::size_t i = 0; i < a[r].sends.size(); ++i) {
        EXPECT_EQ(a[r].sends[i].dst_rank, b[r].sends[i].dst_rank);
        EXPECT_EQ(a[r].sends[i].bytes, b[r].sends[i].bytes);
        EXPECT_EQ(a[r].sends[i].src_block, b[r].sends[i].src_block);
        EXPECT_EQ(a[r].sends[i].msgs, b[r].sends[i].msgs);
      }
      EXPECT_EQ(a[r].expected_recvs, b[r].expected_recvs);
      EXPECT_EQ(a[r].recv_bytes, b[r].recv_bytes);
      EXPECT_EQ(a[r].local_copy_msgs, b[r].local_copy_msgs);
    }
  };
  same(build_step_work(mesh, placement, costs, 5, sizes, true, false),
       build_step_work(mesh, placement, costs, 5, sizes, true,
                       PackingPolicy::none()));
  same(build_step_work(mesh, placement, costs, 5, sizes, true, true),
       build_step_work(mesh, placement, costs, 5, sizes, true,
                       PackingPolicy::all()));
}

TEST(BuildStepWork, AdaptiveThresholdSplitsPairs) {
  // Threshold between the edge payload (small) and the face payload
  // (large): small-mean pairs pack, large-mean pairs stay eager, and
  // the logical message count and byte volume are conserved either way.
  AmrMesh mesh(RootGrid{3, 3, 3});
  Placement placement(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b)
    placement[b] = static_cast<std::int32_t>(b % 5);
  const std::vector<TimeNs> costs(mesh.size(), us(10));
  const MessageSizeModel sizes;
  const auto legacy =
      build_step_work(mesh, placement, costs, 5, sizes, false, false);

  // Pick a threshold strictly between the smallest and largest per-pair
  // mean, so the split is guaranteed to separate real traffic.
  std::int64_t pair_msgs[5][5] = {};
  std::int64_t pair_bytes[5][5] = {};
  for (std::size_t r = 0; r < legacy.size(); ++r) {
    for (const auto& s : legacy[r].sends) {
      ++pair_msgs[r][s.dst_rank];
      pair_bytes[r][s.dst_rank] += s.bytes;
    }
  }
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = 0;
  for (int s = 0; s < 5; ++s) {
    for (int d = 0; d < 5; ++d) {
      if (pair_msgs[s][d] < 2) continue;
      const std::int64_t mean = pair_bytes[s][d] / pair_msgs[s][d];
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
    }
  }
  ASSERT_LT(lo, hi);  // pair means genuinely differ on this mesh
  const std::int64_t mid = (lo + hi) / 2;
  const PackingPolicy policy{mid, mid, 16};
  const auto adaptive =
      build_step_work(mesh, placement, costs, 5, sizes, false, policy);

  std::int64_t legacy_sends = 0;
  std::int64_t legacy_bytes = 0;
  for (const auto& w : legacy) {
    legacy_sends += static_cast<std::int64_t>(w.sends.size());
    for (const auto& s : w.sends) legacy_bytes += s.bytes;
  }
  std::int64_t logical = 0;
  std::int64_t bytes = 0;
  std::int64_t packed = 0;
  std::int64_t eager = 0;
  std::vector<std::int64_t> incoming(5, 0);
  for (const auto& w : adaptive) {
    for (const auto& s : w.sends) {
      logical += s.msgs;
      bytes += s.bytes;
      ++incoming[static_cast<std::size_t>(s.dst_rank)];
      if (s.msgs > 1) {
        ++packed;
        // A packed pair's mean stayed at or below the threshold.
        EXPECT_LE(s.bytes, policy.remote_threshold * s.msgs);
      } else {
        ++eager;
      }
    }
  }
  EXPECT_EQ(logical, legacy_sends);
  EXPECT_EQ(bytes, legacy_bytes);
  // The split is genuine: both kinds of traffic exist at this threshold.
  EXPECT_GT(packed, 0);
  EXPECT_GT(eager, 0);
  for (std::size_t r = 0; r < adaptive.size(); ++r)
    EXPECT_EQ(incoming[r], adaptive[r].expected_recvs);
}

}  // namespace
}  // namespace amr
