#include "amr/exec/step_executor.hpp"

#include <gtest/gtest.h>

#include "amr/exec/work.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {
namespace {

struct Harness {
  explicit Harness(std::int32_t nranks, FabricParams fp = tuned_quiet())
      : topo(nranks, 2), fabric(topo, fp, Rng(1)),
        comm(engine, fabric, nranks), executor(engine, comm) {}

  static FabricParams tuned_quiet() {
    FabricParams p = FabricParams::tuned();
    p.remote_jitter = 0;
    return p;
  }

  Engine engine;
  ClusterTopology topo;
  Fabric fabric;
  Comm comm;
  StepExecutor executor;
};

std::vector<RankStepWork> simple_work(std::int32_t nranks,
                                      TimeNs compute = us(100)) {
  std::vector<RankStepWork> work(static_cast<std::size_t>(nranks));
  for (std::size_t r = 0; r < work.size(); ++r)
    work[r].computes.push_back(
        BlockCompute{static_cast<std::int32_t>(r), compute});
  return work;
}

TEST(StepExecutor, ComputeOnlyStepCompletes) {
  Harness h(4);
  const auto work = simple_work(4);
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  ASSERT_EQ(result.ranks.size(), 4u);
  for (const auto& s : result.ranks) {
    EXPECT_EQ(s.compute_ns, us(100) + us(0.2));  // + task overhead
    EXPECT_EQ(s.recv_wait_ns, 0);
    EXPECT_GT(s.sync_ns, 0);  // collective overhead
  }
  EXPECT_GT(result.wall_ns(), us(100));
}

TEST(StepExecutor, StragglerDominatesWall) {
  Harness h(4);
  auto work = simple_work(4, us(100));
  work[2].computes[0].duration = ms(5);
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  EXPECT_GT(result.wall_ns(), ms(5));
  // Fast ranks burn the difference in sync.
  EXPECT_GT(result.ranks[0].sync_ns, ms(4));
  EXPECT_LT(result.ranks[2].sync_ns, ms(1));
}

TEST(StepExecutor, MessageFlowsBetweenRanks) {
  Harness h(2);
  std::vector<RankStepWork> work(2);
  work[0].computes.push_back({0, us(10)});
  work[0].sends.push_back(OutMessage{1, 4096, 0});
  work[1].computes.push_back({1, us(10)});
  work[1].expected_recvs = 1;
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  EXPECT_EQ(result.ranks[0].msgs_local, 1);  // ranks 0,1 share node 0
  EXPECT_EQ(result.ranks[1].msgs_local, 0);
}

TEST(StepExecutor, ReceiverWaitsForLateSender) {
  Harness h(2);
  std::vector<RankStepWork> work(2);
  // Rank 0 computes 5ms before sending (compute-first); rank 1 has
  // nothing to do but wait.
  work[0].computes.push_back({0, ms(5)});
  work[0].sends.push_back(OutMessage{1, 1024, 0});
  work[1].expected_recvs = 1;
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kComputeFirst, 0);
  EXPECT_GT(result.ranks[1].recv_wait_ns, ms(4));
  EXPECT_EQ(result.ranks[1].last_release_src, 0);
}

TEST(StepExecutor, SendFirstOrderingUnblocksReceiver) {
  auto run = [](TaskOrdering ordering) {
    Harness h(2);
    std::vector<RankStepWork> work(2);
    work[0].computes.push_back({0, ms(5)});
    work[0].sends.push_back(OutMessage{1, 1024, 0});
    work[1].expected_recvs = 1;
    return h.executor.execute(work, ordering, 0);
  };
  const StepResult compute_first = run(TaskOrdering::kComputeFirst);
  const StepResult send_first = run(TaskOrdering::kSendFirst);
  // The tuned ordering slashes the receiver's wait (paper Fig 3/4b).
  EXPECT_LT(send_first.ranks[1].recv_wait_ns,
            compute_first.ranks[1].recv_wait_ns / 4);
  // And does not hurt the sender's completion.
  EXPECT_LE(send_first.ranks[0].collective_entry,
            compute_first.ranks[0].collective_entry + us(10));
}

TEST(StepExecutor, AckRecoveryInflatesSenderWait) {
  FabricParams p = Harness::tuned_quiet();
  p.ack_loss_prob = 1.0;
  p.ack_recovery_delay = ms(2);
  p.drain_queue_enabled = false;
  Harness h(4, p);
  std::vector<RankStepWork> work(4);
  work[0].sends.push_back(OutMessage{2, 1024, 0});  // cross-node
  work[2].expected_recvs = 1;
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  EXPECT_GT(result.ranks[0].send_wait_ns, ms(1));
  // Receiver is fine: data arrived normally.
  EXPECT_LT(result.ranks[2].recv_wait_ns, ms(1));
}

TEST(StepExecutor, DrainQueueRemovesSenderWait) {
  FabricParams p = Harness::tuned_quiet();
  p.ack_loss_prob = 1.0;
  p.drain_queue_enabled = true;
  Harness h(4, p);
  std::vector<RankStepWork> work(4);
  work[0].sends.push_back(OutMessage{2, 1024, 0});
  work[2].expected_recvs = 1;
  const StepResult result =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  EXPECT_LT(result.ranks[0].send_wait_ns, us(50));
}

TEST(StepExecutor, ConsecutiveStepsAdvanceTime) {
  Harness h(2);
  const auto work = simple_work(2);
  const StepResult a =
      h.executor.execute(work, TaskOrdering::kSendFirst, 0);
  const StepResult b =
      h.executor.execute(work, TaskOrdering::kSendFirst, 1);
  EXPECT_EQ(b.step_start, a.step_end);
  EXPECT_GT(b.step_end, b.step_start);
}

TEST(StepExecutor, DeterministicAcrossRuns) {
  auto run = [] {
    Harness h(4);
    std::vector<RankStepWork> work = simple_work(4);
    work[0].sends.push_back(OutMessage{3, 2048, 0});
    work[3].expected_recvs = 1;
    return h.executor
        .execute(work, TaskOrdering::kSendFirst, 0)
        .wall_ns();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace amr
