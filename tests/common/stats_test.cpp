#include "amr/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amr {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10 + i;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.mean(), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, SingleElementAndEmpty) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
  EXPECT_DOUBLE_EQ(pearson(c, x), 0.0);
}

TEST(Pearson, MismatchedLengthsReturnZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 2};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(ImbalanceFactor, UniformIsOne) {
  const std::vector<double> v{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(imbalance_factor(v), 1.0);
}

TEST(ImbalanceFactor, KnownSkew) {
  const std::vector<double> v{1, 1, 1, 5};  // mean 2, max 5
  EXPECT_DOUBLE_EQ(imbalance_factor(v), 2.5);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bin_count(2), 1u);  // 5.0
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace amr
