#include "amr/common/time.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

TEST(Time, ConstructorsAndConversionsRoundTrip) {
  EXPECT_EQ(us(1.0), 1'000);
  EXPECT_EQ(ms(1.0), 1'000'000);
  EXPECT_EQ(sec(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_us(us(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(ms(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(to_sec(sec(3.0)), 3.0);
}

TEST(Time, FractionalValuesTruncateToIntegerNanoseconds) {
  EXPECT_EQ(us(0.0005), 0);  // half a nanosecond rounds down
  EXPECT_EQ(us(0.001), 1);
}

TEST(Time, LargeDurationsFit) {
  // A week of simulated time fits comfortably in int64 nanoseconds.
  const TimeNs week = sec(7.0 * 24 * 3600);
  EXPECT_GT(week, 0);
  EXPECT_DOUBLE_EQ(to_sec(week), 604800.0);
}

}  // namespace
}  // namespace amr
