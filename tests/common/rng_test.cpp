#include "amr/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // All-zero xoshiro state would return 0 forever; seeding must avoid it.
  std::uint64_t x = r.next();
  std::uint64_t y = r.next();
  EXPECT_FALSE(x == 0 && y == 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntUnbiasedCoverage) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[r.uniform_int(10)];
  for (const int c : counts) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimumAndMean) {
  Rng r(19);
  double sum = 0.0;
  const int n = 200000;
  const double x_min = 1.0;
  const double alpha = 3.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(x_min, alpha);
    EXPECT_GE(x, x_min);
    sum += x;
  }
  // E[X] = x_min * alpha/(alpha-1) = 1.5
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, ChanceProbabilityRoughlyCorrect) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng sa = a.split(1);
  Rng sb = b.split(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sa.next(), sb.next());
  Rng sc = b.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (sa.next() == sc.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Hash64, DeterministicAndSpreads) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(42), hash64(43));
  EXPECT_NE(hash64(0), 0u);
}

}  // namespace
}  // namespace amr
