#include "amr/common/log.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ThresholdFiltersLevels) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Suppressed and emitted messages must both be safe to call.
  AMR_LOG_DEBUG("suppressed %d", 1);
  AMR_LOG_INFO("suppressed %s", "too");
  testing::internal::CaptureStderr();
  AMR_LOG_WARN("visible %d", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN] visible 42"), std::string::npos);
}

TEST(Log, SuppressedLevelsProduceNoOutput) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  AMR_LOG_DEBUG("nothing");
  AMR_LOG_INFO("nothing");
  AMR_LOG_WARN("nothing");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, ErrorAlwaysEmits) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  AMR_LOG_ERROR("boom %s", "now");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[ERROR] boom now"), std::string::npos);
}

}  // namespace
}  // namespace amr
