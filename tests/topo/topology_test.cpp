#include "amr/topo/topology.hpp"

#include <gtest/gtest.h>

namespace amr {
namespace {

TEST(Topology, DensePackingSixteenPerNode) {
  const ClusterTopology topo(64, 16);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(15), 0);
  EXPECT_EQ(topo.node_of(16), 1);
  EXPECT_EQ(topo.node_of(63), 3);
}

TEST(Topology, SameNodePredicate) {
  const ClusterTopology topo(32, 16);
  EXPECT_TRUE(topo.same_node(0, 15));
  EXPECT_FALSE(topo.same_node(15, 16));
}

TEST(Topology, PartialLastNode) {
  const ClusterTopology topo(20, 16);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.ranks_on_node(0).size(), 16u);
  const auto last = topo.ranks_on_node(1);
  ASSERT_EQ(last.size(), 4u);
  EXPECT_EQ(last.front(), 16);
  EXPECT_EQ(last.back(), 19);
}

TEST(Topology, SingleRankCluster) {
  const ClusterTopology topo(1, 16);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.node_of(0), 0);
}

TEST(TopologyDeath, OutOfRangeRankAborts) {
  const ClusterTopology topo(8, 4);
  EXPECT_DEATH(topo.node_of(8), "");
  EXPECT_DEATH(topo.node_of(-1), "");
}

}  // namespace
}  // namespace amr
