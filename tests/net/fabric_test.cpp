#include "amr/net/fabric.hpp"

#include <gtest/gtest.h>

#include "amr/placement/metrics.hpp"

namespace amr {
namespace {

FabricParams quiet_params() {
  FabricParams p = FabricParams::tuned();
  p.remote_jitter = 0;   // deterministic timings for exact assertions
  p.remote_per_msg = 0;  // isolate the byte-bandwidth model
  return p;
}

TEST(Fabric, SameNodeUsesShmPath) {
  const ClusterTopology topo(4, 2);
  Fabric fabric(topo, quiet_params(), Rng(1));
  const TransferTiming t = fabric.transfer(0, 1, 1024, 0);
  EXPECT_TRUE(t.used_shm);
  EXPECT_EQ(fabric.stats().shm_msgs, 1);
  EXPECT_EQ(fabric.stats().remote_msgs, 0);
}

TEST(Fabric, CrossNodeUsesRemotePath) {
  const ClusterTopology topo(4, 2);
  Fabric fabric(topo, quiet_params(), Rng(1));
  const TransferTiming t = fabric.transfer(0, 2, 1024, 0);
  EXPECT_FALSE(t.used_shm);
  EXPECT_EQ(fabric.stats().remote_msgs, 1);
}

TEST(Fabric, RemoteTimingMatchesModel) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.remote_latency = us(2.0);
  p.remote_gbytes_per_sec = 4.0;
  Fabric fabric(topo, p, Rng(1));
  const std::int64_t bytes = 4000;
  const TransferTiming t = fabric.transfer(0, 2, bytes, 1000);
  // serialize = 4000 / 4 GB/s = 1000 ns; depart = 1000+1000 = 2000.
  EXPECT_EQ(t.sender_release, 2000);
  EXPECT_EQ(t.delivery, 2000 + us(2.0));
}

TEST(Fabric, NicSerializationQueuesBackToBack) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.remote_gbytes_per_sec = 1.0;  // 1 byte/ns
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming a = fabric.transfer(0, 2, 1000, 0);
  const TransferTiming b = fabric.transfer(1, 2, 1000, 0);  // same NIC
  EXPECT_EQ(a.sender_release, 1000);
  EXPECT_EQ(b.sender_release, 2000);  // waited for the NIC
  // Different node's NIC is independent.
  const TransferTiming c = fabric.transfer(2, 0, 1000, 0);
  EXPECT_EQ(c.sender_release, 1000);
}

TEST(Fabric, ShmQueueContentionAddsRetries) {
  const ClusterTopology topo(2, 2);
  FabricParams p = quiet_params();
  p.shm_queue_slots = 1;
  p.shm_gbytes_per_sec = 0.001;  // very slow: 1 KB takes 1 ms
  p.shm_retry_delay = us(10.0);
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming a = fabric.transfer(0, 1, 1000, 0);
  EXPECT_EQ(a.shm_retries, 0);
  const TransferTiming b = fabric.transfer(0, 1, 1000, 0);
  EXPECT_GT(b.shm_retries, 0);
  EXPECT_GT(b.delivery, a.delivery);
  EXPECT_GT(fabric.stats().shm_retries, 0);
}

TEST(Fabric, LargeShmQueueEliminatesRetries) {
  const ClusterTopology topo(2, 2);
  FabricParams p = quiet_params();
  p.shm_queue_slots = 64;
  Fabric fabric(topo, p, Rng(1));
  for (int i = 0; i < 32; ++i) {
    const TransferTiming t = fabric.transfer(0, 1, 1000, 0);
    EXPECT_EQ(t.shm_retries, 0);
  }
}

TEST(Fabric, AckLossBlocksSenderWithoutDrainQueue) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.ack_loss_prob = 1.0;  // every message
  p.ack_recovery_delay = ms(2.0);
  p.drain_queue_enabled = false;
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming t = fabric.transfer(0, 2, 1000, 0);
  EXPECT_TRUE(t.ack_lost);
  EXPECT_GE(t.sender_release, ms(2.0));
  // Data still arrives promptly: the receiver is not the one blocked.
  EXPECT_LT(t.delivery, ms(1.0));
  EXPECT_GT(fabric.stats().ack_block_time, 0);
}

TEST(Fabric, DrainQueueUnblocksSender) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.ack_loss_prob = 1.0;
  p.drain_queue_enabled = true;
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming t = fabric.transfer(0, 2, 1000, 0);
  EXPECT_TRUE(t.ack_lost);
  EXPECT_LT(t.sender_release, ms(1.0));
  EXPECT_EQ(fabric.stats().ack_block_time, 0);
}

TEST(Fabric, AckLossOnlyAffectsRemotePath) {
  const ClusterTopology topo(2, 2);
  FabricParams p = quiet_params();
  p.ack_loss_prob = 1.0;
  p.drain_queue_enabled = false;
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming t = fabric.transfer(0, 1, 1000, 0);  // shm
  EXPECT_FALSE(t.ack_lost);
}

TEST(Fabric, PerMessageCostSerializesOnNic) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.remote_per_msg = us(2.0);
  p.remote_gbytes_per_sec = 1.0;
  Fabric fabric(topo, p, Rng(1));
  const TransferTiming a = fabric.transfer(0, 2, 1000, 0);
  // 2us per-message + 1us serialization.
  EXPECT_EQ(a.sender_release, us(3.0));
  // Second message on the same NIC queues behind the first.
  const TransferTiming b = fabric.transfer(1, 2, 1000, 0);
  EXPECT_EQ(b.sender_release, us(6.0));
}

TEST(Fabric, ObserverSeesEveryMessage) {
  const ClusterTopology topo(4, 2);
  Fabric fabric(topo, quiet_params(), Rng(1));
  int observed = 0;
  fabric.set_observer([&](std::int32_t, std::int32_t, std::int64_t,
                          const TransferTiming&) { ++observed; });
  fabric.transfer(0, 1, 100, 0);
  fabric.transfer(0, 2, 100, 0);
  EXPECT_EQ(observed, 2);
}

TEST(Fabric, ResetClearsDynamicState) {
  const ClusterTopology topo(4, 2);
  FabricParams p = quiet_params();
  p.remote_gbytes_per_sec = 1.0;
  Fabric fabric(topo, p, Rng(1));
  fabric.transfer(0, 2, 100000, 0);
  fabric.reset();
  EXPECT_EQ(fabric.stats().remote_msgs, 0);
  const TransferTiming t = fabric.transfer(0, 2, 1000, 0);
  EXPECT_EQ(t.sender_release, 1000);  // NIC no longer busy
}

TEST(Fabric, JitterBoundedByParameter) {
  const ClusterTopology topo(4, 2);
  FabricParams p = FabricParams::tuned();
  p.remote_jitter = us(1.0);
  p.remote_latency = us(2.0);
  p.remote_gbytes_per_sec = 1.0;
  Fabric fabric(topo, p, Rng(7));
  for (int i = 0; i < 200; ++i) {
    fabric.reset();
    const TransferTiming t = fabric.transfer(0, 2, 1000, 0);
    const TimeNs fly = t.delivery - t.sender_release;
    EXPECT_GE(fly, us(2.0));
    EXPECT_LT(fly, us(3.0));
  }
}

TEST(FabricDeath, IntraRankTransferForbidden) {
  const ClusterTopology topo(4, 2);
  Fabric fabric(topo, quiet_params(), Rng(1));
  EXPECT_DEATH(fabric.transfer(1, 1, 100, 0), "bypass");
}

TEST(FabricParamsModel, PackThresholdMatchesBreakEven) {
  // Threshold = (per-message launch cost saved by coalescing, minus the
  // packed-message overhead still paid) x path bandwidth: the mean
  // payload whose serialization time equals the saving.
  const FabricParams p = FabricParams::tuned();
  const std::int64_t remote = static_cast<std::int64_t>(
      static_cast<double>(p.remote_per_msg + p.post_overhead -
                          p.packed_msg_overhead) *
      p.remote_gbytes_per_sec);
  const std::int64_t shm = static_cast<std::int64_t>(
      static_cast<double>(p.shm_latency + p.post_overhead -
                          p.packed_msg_overhead) *
      p.shm_gbytes_per_sec);
  EXPECT_EQ(p.pack_threshold(false), remote);
  EXPECT_EQ(p.pack_threshold(true), shm);
  EXPECT_GT(p.pack_threshold(false), 0);
  EXPECT_GT(p.pack_threshold(true), 0);
  // The default message-size model's small payloads (edge/vertex) fall
  // under both thresholds; faces exceed the shm threshold.
  const MessageSizeModel sizes;
  EXPECT_LT(sizes.bytes(NeighborKind::kEdge), p.pack_threshold(true));
  EXPECT_GT(sizes.bytes(NeighborKind::kFace), p.pack_threshold(true));

  // When coalescing saves nothing, the threshold collapses to zero.
  FabricParams degenerate = p;
  degenerate.packed_msg_overhead =
      degenerate.shm_latency + degenerate.post_overhead;
  EXPECT_EQ(degenerate.pack_threshold(true), 0);
}

TEST(FabricPresets, UntunedIsPathological) {
  const FabricParams untuned = FabricParams::untuned();
  const FabricParams tuned = FabricParams::tuned();
  EXPECT_LT(untuned.shm_queue_slots, tuned.shm_queue_slots);
  EXPECT_GT(untuned.ack_loss_prob, 0.0);
  EXPECT_FALSE(untuned.drain_queue_enabled);
  EXPECT_TRUE(tuned.drain_queue_enabled);
}

}  // namespace
}  // namespace amr
