// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop over integer-nanosecond
// simulated time. Events at equal times fire in scheduling order (FIFO),
// which makes runs bit-reproducible — a requirement for the telemetry
// pipeline tests and for debugging placement effects.
//
// Hot paths (per-message events in boundary exchanges) use the
// EventHandler interface to avoid per-event allocation; convenience
// std::function callbacks are available for cold paths, and their heap
// slots (including the std::function storage) are recycled across
// events rather than reallocated.
//
// The pending-event set is a monotone radix queue (Ahuja et al. 1990)
// over a pooled event arena, exploiting the DES invariant that events
// are never scheduled into the past: 16-byte entries (time, arena slot)
// live in 65 buckets keyed by the highest bit in which the time
// differs from the current minimum. Scheduling is an O(1) append;
// dispatch pops the equal-minimum bucket and refills it by
// redistributing the lowest non-empty bucket (each entry moves at most
// 64 times over its lifetime, amortized ~O(1) for the near-sorted
// schedules a DES produces). The (handler, tag) payload sits in
// free-listed arena slots, touched once per dispatch, so nothing
// allocates per event on either the handler or the callback path.
//
// Determinism: equal-time entries always occupy the same bucket (bucket
// index depends only on (time, current-min)), appends and
// redistributions are order-stable, and the front bucket drains FIFO —
// so dispatch order is exactly (time, schedule order), bit-identical to
// the std::priority_queue over (time, seq) this replaced, and ~35%
// faster at simulator event populations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "amr/common/check.hpp"
#include "amr/common/time.hpp"

namespace amr {

class Engine;
class Tracer;

/// Receiver of scheduled events. The 64-bit tag is caller-defined (e.g.
/// rank id, request id) and round-trips unchanged.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(Engine& engine, std::uint64_t tag) = 0;
};

class Engine {
 public:
  TimeNs now() const { return now_; }

  /// Schedule an event at absolute simulated time t (must be >= now()).
  void schedule_at(TimeNs t, EventHandler* handler, std::uint64_t tag = 0);

  /// Schedule an event dt nanoseconds from now.
  void schedule_after(TimeNs dt, EventHandler* handler,
                      std::uint64_t tag = 0) {
    schedule_at(now_ + dt, handler, tag);
  }

  /// Cold-path convenience: schedule an arbitrary callback.
  void call_at(TimeNs t, std::function<void(Engine&)> fn);
  void call_after(TimeNs dt, std::function<void(Engine&)> fn) {
    call_at(now_ + dt, std::move(fn));
  }

  /// Process one event; false if the queue is empty.
  bool step();

  /// Run until the queue drains. Returns events processed.
  std::uint64_t run();

  /// Run while events exist at time <= t_end; leaves now() at t_end if the
  /// queue drained earlier. Returns events processed.
  std::uint64_t run_until(TimeNs t_end);

  bool empty() const { return pending_ == 0; }
  std::uint64_t events_processed() const { return processed_; }

  /// Pre-size the event arena for a known pending-event population;
  /// optional, avoids growth reallocations mid-run.
  void reserve(std::size_t events) {
    arena_.reserve(events);
    front_.reserve(events);
  }

  /// Attach an event tracer (nullptr detaches). Dispatch instants are in
  /// the TraceCat::kDes category, which is off by default — enable it in
  /// the trace config to see raw event dispatch.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Scalar engine state for checkpoint/restart. Checkpoints are taken at
  /// step boundaries, where the BSP/overlap executors have drained the
  /// queue (pending events hold raw handler pointers and cannot be
  /// serialized), so the clock is the engine's entire surviving state.
  struct Clock {
    TimeNs now = 0;
    TimeNs front_time = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
  };
  Clock clock() const { return {now_, front_time_, next_seq_, processed_}; }
  /// Restore a checkpointed clock; the queue must be empty on both the
  /// saving and the restoring side.
  void restore_clock(const Clock& clock) {
    AMR_CHECK_MSG(pending_ == 0,
                  "restore_clock requires a drained event queue");
    now_ = clock.now;
    front_time_ = clock.front_time;
    next_seq_ = clock.next_seq;
    processed_ = clock.processed;
  }

 private:
  /// 64 key bits -> highest-differing-bit indices 1..64; index 0 is the
  /// separate front bucket. buckets_[0] is never used.
  static constexpr unsigned kNumBuckets = 65;

  /// Queue entry: dispatch key + arena slot. Ordering comes from the
  /// radix structure itself; per-event metadata lives in the Body so the
  /// entries the buckets shuffle stay 16 bytes.
  struct Entry {
    TimeNs time;
    std::uint32_t slot;
  };

  /// Pooled payload; slots are free-listed across events. The seq is a
  /// 64-bit global schedule counter, informational only (trace output),
  /// touched once at dispatch.
  struct Body {
    EventHandler* handler;
    std::uint64_t tag;
    std::uint64_t seq;
  };

  /// Adapter so call_at can reuse the POD event path.
  class FnHandler final : public EventHandler {
   public:
    void on_event(Engine& engine, std::uint64_t tag) override;
  };

  /// Radix bucket index of time t relative to the current minimum:
  /// 0 iff t == min (the front bucket), else 1 + the highest differing
  /// bit. Monotonicity (t >= min_) keeps the index stable until min_
  /// catches up.
  static unsigned bucket_index(TimeNs t, TimeNs min);

  /// Ensure the front bucket holds the pending minimum (redistributes
  /// the lowest non-empty bucket when the front is drained). Requires
  /// pending_ > 0.
  void refill_front();

  /// Earliest pending time. Requires pending_ > 0.
  TimeNs next_time();

  /// Re-bucket every pending entry against new_min (< front_time_).
  /// Rare slow path: run_until can advance front_time_ past now_, and a
  /// later legal schedule_at below it must become the new reference.
  void rebucket_all(TimeNs new_min);

  TimeNs now_ = 0;
  Tracer* tracer_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t pending_ = 0;
  TimeNs front_time_ = 0;  ///< all entries in front_ carry this time
  std::vector<Entry> front_;  ///< equal-minimum bucket, FIFO via head_
  std::size_t front_head_ = 0;
  std::vector<Entry> buckets_[kNumBuckets];
  std::vector<Body> arena_;
  std::vector<std::uint32_t> free_slots_;
  FnHandler fn_handler_;
  std::vector<std::function<void(Engine&)>> fns_;
  std::vector<std::uint64_t> free_fn_slots_;
};

}  // namespace amr
