// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop over integer-nanosecond
// simulated time. Events at equal times fire in scheduling order (FIFO),
// which makes runs bit-reproducible — a requirement for the telemetry
// pipeline tests and for debugging placement effects.
//
// Hot paths (per-message events in boundary exchanges) use the
// EventHandler interface to avoid per-event allocation; convenience
// std::function callbacks are available for cold paths, and their heap
// slots (including the std::function storage) are recycled across
// events rather than reallocated.
//
// The pending-event set is a monotone radix queue (Ahuja et al. 1990)
// over a pooled event arena, exploiting the DES invariant that events
// are never scheduled into the past: 24-byte entries (time, dispatch
// key, arena slot) live in 65 buckets keyed by the highest bit in which
// the time differs from the current minimum. Scheduling is an O(1)
// append (amortized; an equal-minimum entry with an out-of-order key
// pays a sorted insert into the front bucket, which the monotone legacy
// keys never do); dispatch pops the equal-minimum bucket and refills it
// by redistributing the lowest non-empty bucket (each entry moves at
// most 64 times over its lifetime, amortized ~O(1) for the near-sorted
// schedules a DES produces). The (handler, tag) payload sits in
// free-listed arena slots, touched once per dispatch, so nothing
// allocates per event on either the handler or the callback path.
//
// Determinism: equal-time entries always occupy the same bucket (bucket
// index depends only on (time, current-min)), appends and
// redistributions are order-stable, and the front bucket drains in
// ascending dispatch-key order — so dispatch order is exactly
// (time, key). The default schedule_at path assigns monotonically
// increasing legacy keys, which makes equal-time order exactly schedule
// FIFO, bit-identical to the std::priority_queue over (time, seq) this
// replaced, and ~35% faster at simulator event populations.
//
// Keyed scheduling (schedule_keyed) exists for the sharded engine: when
// shards dispatch concurrently, "schedule order" is no longer a global
// notion, so producers supply canonical keys (event_key below) that
// depend only on simulation content — making equal-time order invariant
// under the shard count. The two key regimes never mix within a run:
// the sequential sim stack uses schedule_at exclusively; the sharded
// stack uses schedule_keyed exclusively.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "amr/common/check.hpp"
#include "amr/common/time.hpp"

namespace amr {

class Engine;
class Tracer;

/// Canonical dispatch keys for sharded (keyed) scheduling. Equal-time
/// events dispatch in ascending key order; the class in the top two bits
/// fixes the cross-kind ordering (all message deliveries before any rank
/// continuation before any collective completion), and the low bits make
/// keys unique within a class from simulation content alone:
///   delivery    — (source rank, per-source monotone send sequence)
///   rank        — the rank id (a rank has at most one self-event pending)
///   collective  — the collective's window id
/// The legacy class is what schedule_at assigns (global schedule counter,
/// monotone, so equal-time order degenerates to exact schedule FIFO).
namespace event_key {
inline constexpr std::uint64_t kClassDelivery = 0ULL << 62;
inline constexpr std::uint64_t kClassRank = 1ULL << 62;
inline constexpr std::uint64_t kClassCollective = 2ULL << 62;
inline constexpr std::uint64_t kClassLegacy = 3ULL << 62;

inline std::uint64_t delivery(std::int32_t src_rank, std::uint64_t send_seq) {
  return kClassDelivery | (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(src_rank))
                           << 32) |
         (send_seq & 0xffffffffULL);
}
inline std::uint64_t rank(std::int32_t r) {
  return kClassRank | static_cast<std::uint32_t>(r);
}
inline std::uint64_t collective(std::uint64_t window) {
  return kClassCollective | (window & ~(3ULL << 62));
}
}  // namespace event_key

/// Receiver of scheduled events. The 64-bit tag is caller-defined (e.g.
/// rank id, request id) and round-trips unchanged.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(Engine& engine, std::uint64_t tag) = 0;
};

class Engine {
 public:
  TimeNs now() const { return now_; }

  /// Schedule an event at absolute simulated time t (must be >= now()).
  void schedule_at(TimeNs t, EventHandler* handler, std::uint64_t tag = 0);

  /// Schedule with an explicit dispatch key (see event_key). Equal-time
  /// events dispatch in ascending key order regardless of the order the
  /// schedule calls were made in — the sharded engine's determinism
  /// anchor. schedule_at is exactly schedule_keyed with a monotone
  /// legacy key.
  void schedule_keyed(TimeNs t, std::uint64_t key, EventHandler* handler,
                      std::uint64_t tag = 0);

  /// Schedule an event dt nanoseconds from now.
  void schedule_after(TimeNs dt, EventHandler* handler,
                      std::uint64_t tag = 0) {
    schedule_at(now_ + dt, handler, tag);
  }

  /// Cold-path convenience: schedule an arbitrary callback.
  void call_at(TimeNs t, std::function<void(Engine&)> fn);
  void call_after(TimeNs dt, std::function<void(Engine&)> fn) {
    call_at(now_ + dt, std::move(fn));
  }

  /// Process one event; false if the queue is empty.
  bool step();

  /// Run until the queue drains. Returns events processed.
  std::uint64_t run();

  /// Run while events exist at time <= t_end; leaves now() at t_end if the
  /// queue drained earlier. Returns events processed.
  std::uint64_t run_until(TimeNs t_end);

  /// Run while events exist at time strictly < horizon, WITHOUT advancing
  /// now() to the horizon afterwards — the per-epoch slice of the sharded
  /// engine's conservative lookahead loop (now() must stay a valid lower
  /// bound for events injected by other shards at >= horizon). Returns
  /// events processed.
  std::uint64_t run_before(TimeNs horizon);

  bool empty() const { return pending_ == 0; }
  bool has_pending() const { return pending_ != 0; }
  /// Earliest pending event time. Requires has_pending().
  TimeNs peek_next_time() {
    AMR_CHECK(pending_ != 0);
    return next_time();
  }
  std::uint64_t events_processed() const { return processed_; }

  /// Shard id stamped by the sharded engine (0 in the sequential case).
  /// Handlers shared across shards (Comm) use it to route per-shard
  /// bookkeeping without a map lookup.
  std::int32_t shard_id() const { return shard_id_; }
  void set_shard_id(std::int32_t id) { shard_id_ = id; }

  /// Pre-size the event arena for a known pending-event population;
  /// optional, avoids growth reallocations mid-run.
  void reserve(std::size_t events) {
    arena_.reserve(events);
    front_.reserve(events);
  }

  /// Attach an event tracer (nullptr detaches). Dispatch instants are in
  /// the TraceCat::kDes category, which is off by default — enable it in
  /// the trace config to see raw event dispatch.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Scalar engine state for checkpoint/restart. Checkpoints are taken at
  /// step boundaries, where the BSP/overlap executors have drained the
  /// queue (pending events hold raw handler pointers and cannot be
  /// serialized), so the clock is the engine's entire surviving state.
  struct Clock {
    TimeNs now = 0;
    TimeNs front_time = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
  };
  Clock clock() const { return {now_, front_time_, next_seq_, processed_}; }
  /// Restore a checkpointed clock; the queue must be empty on both the
  /// saving and the restoring side.
  void restore_clock(const Clock& clock) {
    AMR_CHECK_MSG(pending_ == 0,
                  "restore_clock requires a drained event queue");
    now_ = clock.now;
    front_time_ = clock.front_time;
    next_seq_ = clock.next_seq;
    processed_ = clock.processed;
  }

 private:
  /// 64 key bits -> highest-differing-bit indices 1..64; index 0 is the
  /// separate front bucket. buckets_[0] is never used.
  static constexpr unsigned kNumBuckets = 65;

  /// Queue entry: (time, dispatch key) + arena slot. Time ordering comes
  /// from the radix structure; the key orders equal-time entries in the
  /// front bucket. Per-event metadata lives in the Body so the entries
  /// the buckets shuffle stay 24 bytes.
  struct Entry {
    TimeNs time;
    std::uint64_t key;
    std::uint32_t slot;
  };

  /// Pooled payload; slots are free-listed across events. The seq is a
  /// 64-bit global schedule counter, informational only (trace output),
  /// touched once at dispatch.
  struct Body {
    EventHandler* handler;
    std::uint64_t tag;
    std::uint64_t seq;
  };

  /// Adapter so call_at can reuse the POD event path.
  class FnHandler final : public EventHandler {
   public:
    void on_event(Engine& engine, std::uint64_t tag) override;
  };

  /// Radix bucket index of time t relative to the current minimum:
  /// 0 iff t == min (the front bucket), else 1 + the highest differing
  /// bit. Monotonicity (t >= min_) keeps the index stable until min_
  /// catches up.
  static unsigned bucket_index(TimeNs t, TimeNs min);

  /// Ensure the front bucket holds the pending minimum (redistributes
  /// the lowest non-empty bucket when the front is drained). Requires
  /// pending_ > 0.
  void refill_front();

  /// Earliest pending time. Requires pending_ > 0.
  TimeNs next_time();

  /// Re-bucket every pending entry against new_min (< front_time_).
  /// Rare slow path: run_until can advance front_time_ past now_, and a
  /// later legal schedule_at below it must become the new reference.
  void rebucket_all(TimeNs new_min);

  TimeNs now_ = 0;
  Tracer* tracer_ = nullptr;
  std::int32_t shard_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t pending_ = 0;
  TimeNs front_time_ = 0;  ///< all entries in front_ carry this time
  /// Equal-minimum bucket; key-sorted ascending from front_head_ on.
  std::vector<Entry> front_;
  std::size_t front_head_ = 0;
  std::vector<Entry> buckets_[kNumBuckets];
  std::vector<Body> arena_;
  std::vector<std::uint32_t> free_slots_;
  FnHandler fn_handler_;
  std::vector<std::function<void(Engine&)>> fns_;
  std::vector<std::uint64_t> free_fn_slots_;
};

}  // namespace amr
