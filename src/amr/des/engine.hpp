// Discrete-event simulation engine.
//
// A single-threaded, deterministic event loop over integer-nanosecond
// simulated time. Events at equal times fire in scheduling order (FIFO),
// which makes runs bit-reproducible — a requirement for the telemetry
// pipeline tests and for debugging placement effects.
//
// Hot paths (per-message events in boundary exchanges) use the
// EventHandler interface to avoid per-event allocation; convenience
// std::function callbacks are available for cold paths.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "amr/common/check.hpp"
#include "amr/common/time.hpp"

namespace amr {

class Engine;
class Tracer;

/// Receiver of scheduled events. The 64-bit tag is caller-defined (e.g.
/// rank id, request id) and round-trips unchanged.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(Engine& engine, std::uint64_t tag) = 0;
};

class Engine {
 public:
  TimeNs now() const { return now_; }

  /// Schedule an event at absolute simulated time t (must be >= now()).
  void schedule_at(TimeNs t, EventHandler* handler, std::uint64_t tag = 0);

  /// Schedule an event dt nanoseconds from now.
  void schedule_after(TimeNs dt, EventHandler* handler,
                      std::uint64_t tag = 0) {
    schedule_at(now_ + dt, handler, tag);
  }

  /// Cold-path convenience: schedule an arbitrary callback.
  void call_at(TimeNs t, std::function<void(Engine&)> fn);
  void call_after(TimeNs dt, std::function<void(Engine&)> fn) {
    call_at(now_ + dt, std::move(fn));
  }

  /// Process one event; false if the queue is empty.
  bool step();

  /// Run until the queue drains. Returns events processed.
  std::uint64_t run();

  /// Run while events exist at time <= t_end; leaves now() at t_end if the
  /// queue drained earlier. Returns events processed.
  std::uint64_t run_until(TimeNs t_end);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Attach an event tracer (nullptr detaches). Dispatch instants are in
  /// the TraceCat::kDes category, which is off by default — enable it in
  /// the trace config to see raw event dispatch.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    EventHandler* handler;
    std::uint64_t tag;

    // priority_queue is a max-heap; invert for earliest-first, FIFO ties.
    friend bool operator<(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Adapter so call_at can reuse the POD event path.
  class FnHandler final : public EventHandler {
   public:
    void on_event(Engine& engine, std::uint64_t tag) override;
  };

  TimeNs now_ = 0;
  Tracer* tracer_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event> queue_;
  FnHandler fn_handler_;
  std::vector<std::function<void(Engine&)>> fns_;
  std::vector<std::uint64_t> free_fn_slots_;
};

}  // namespace amr
