#include "amr/des/sharded_engine.hpp"

#include <algorithm>

#include "amr/par/thread_pool.hpp"

namespace amr {

ShardedEngine::ShardedEngine(const ClusterTopology& topo,
                             std::int32_t shards, TimeNs lookahead,
                             ThreadPool* pool)
    : topo_(topo), lookahead_(lookahead), pool_(pool) {
  AMR_CHECK_MSG(lookahead > 0,
                "sharded DES requires positive lookahead (the fabric's "
                "remote latency bounds cross-shard causality)");
  const std::int32_t nnodes = topo.num_nodes();
  const std::int32_t n =
      std::clamp(shards, std::int32_t{1}, nnodes);
  shards_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Engine>());
    shards_.back()->set_shard_id(s);
  }
  // Contiguous node blocks: node -> node * n / nnodes is monotone and
  // balanced to within one node, and keeps each shard's ranks a
  // contiguous range (ranks are packed densely onto nodes).
  node_shard_.resize(static_cast<std::size_t>(nnodes));
  shard_first_node_.assign(static_cast<std::size_t>(n) + 1, nnodes);
  for (std::int32_t node = 0; node < nnodes; ++node) {
    const std::int32_t s = static_cast<std::int32_t>(
        static_cast<std::int64_t>(node) * n / nnodes);
    node_shard_[static_cast<std::size_t>(node)] = s;
    shard_first_node_[static_cast<std::size_t>(s)] =
        std::min(shard_first_node_[static_cast<std::size_t>(s)], node);
  }
  shard_first_node_[static_cast<std::size_t>(n)] = nnodes;
  mailboxes_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  epoch_counts_.resize(static_cast<std::size_t>(n), 0);
  stats_.resize(static_cast<std::size_t>(n));
}

std::pair<std::int32_t, std::int32_t> ShardedEngine::rank_range(
    std::int32_t s) const {
  const std::int32_t first_node =
      shard_first_node_[static_cast<std::size_t>(s)];
  const std::int32_t end_node =
      shard_first_node_[static_cast<std::size_t>(s) + 1];
  const std::int32_t first = first_node * topo_.ranks_per_node();
  const std::int32_t last =
      std::min(end_node * topo_.ranks_per_node(), topo_.num_ranks());
  return {first, last};
}

void ShardedEngine::post(std::int32_t src, std::int32_t dst, TimeNs t,
                         std::uint64_t key, EventHandler* handler,
                         std::uint64_t tag) {
  mailboxes_[lane(src, dst)].push_back(Posted{t, key, handler, tag});
}

void ShardedEngine::drain_mailboxes() {
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    Engine& e = *shards_[dst];
    for (std::size_t src = 0; src < n; ++src) {
      std::vector<Posted>& box = mailboxes_[src * n + dst];
      for (const Posted& p : box) {
        e.schedule_keyed(p.t, p.key, p.handler, p.tag);
        ++stats_[dst].mailbox_events;
      }
      box.clear();
    }
  }
}

std::uint64_t ShardedEngine::run_all() {
  for (ShardEpochStats& s : stats_) s = ShardEpochStats{};
  const std::size_t n = shards_.size();
  std::uint64_t total = 0;
  for (;;) {
    // Barrier work first: merged collective completions and mailbox
    // deliveries may introduce new pending minima, so the horizon is
    // computed only after both have been applied.
    if (barrier_cb_) barrier_cb_();
    drain_mailboxes();
    bool any = false;
    TimeNs horizon = 0;
    for (const std::unique_ptr<Engine>& e : shards_) {
      if (!e->has_pending()) continue;
      const TimeNs t = e->peek_next_time();
      if (!any || t < horizon) horizon = t;
      any = true;
    }
    if (!any) break;
    const TimeNs h_end = horizon + lookahead_;
    if (pool_ != nullptr && n > 1) {
      pool_->parallel_for(n, [this, h_end](std::size_t s) {
        epoch_counts_[s] = shards_[s]->run_before(h_end);
      });
    } else {
      for (std::size_t s = 0; s < n; ++s)
        epoch_counts_[s] = shards_[s]->run_before(h_end);
    }
    for (std::size_t s = 0; s < n; ++s) {
      stats_[s].events += static_cast<std::int64_t>(epoch_counts_[s]);
      stats_[s].epochs += 1;
      if (epoch_counts_[s] == 0) stats_[s].lookahead_stalls += 1;
      total += epoch_counts_[s];
    }
  }
  return total;
}

void ShardedEngine::run_until(TimeNs t) {
  for (const std::unique_ptr<Engine>& e : shards_) {
    AMR_CHECK_MSG(e->empty(),
                  "ShardedEngine::run_until requires drained shards");
    e->run_until(t);
  }
}

TimeNs ShardedEngine::now() const {
  TimeNs t = 0;
  for (const std::unique_ptr<Engine>& e : shards_)
    t = std::max(t, e->now());
  return t;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Engine>& e : shards_)
    total += e->events_processed();
  return total;
}

Engine::Clock ShardedEngine::clock() const {
  return Engine::Clock{now(), now(), 0, events_processed()};
}

void ShardedEngine::restore_clock(const Engine::Clock& c) {
  // Shard clocks agree at step boundaries, so one merged clock restores
  // any shard count. processed is carried on shard 0 (only the sum is
  // ever observed again, through clock()).
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s]->restore_clock(
        Engine::Clock{c.now, c.now, 0, s == 0 ? c.processed : 0});
}

}  // namespace amr
