#include "amr/des/engine.hpp"

#include <algorithm>
#include <bit>

#include "amr/trace/tracer.hpp"

namespace amr {

unsigned Engine::bucket_index(TimeNs t, TimeNs min) {
  return static_cast<unsigned>(std::bit_width(
      static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(min)));
}

void Engine::refill_front() {
  if (front_head_ < front_.size()) return;
  front_.clear();
  front_head_ = 0;
  // Lowest non-empty bucket holds the next minimum (classical radix-heap
  // invariant: every pending entry sits in bucket_index(time, min) of
  // the *current* minimum, so lower bucket == strictly earlier time).
  unsigned j = 1;
  while (buckets_[j].empty()) ++j;
  TimeNs min = buckets_[j].front().time;
  for (const Entry& e : buckets_[j])
    if (e.time < min) min = e.time;
  front_time_ = min;
  // Stable redistribution: every entry lands strictly below j (it shares
  // bit j-1 of the time with the new minimum); equal-minimum entries
  // land in front_ in their original append order, then a stable sort
  // puts them in dispatch-key order. Legacy keys are monotone in append
  // order, so for the sequential schedule_at path the sort is an
  // already-sorted pass and the drain order stays exact schedule FIFO.
  for (const Entry& e : buckets_[j]) {
    const unsigned i = bucket_index(e.time, min);
    if (i == 0)
      front_.push_back(e);
    else
      buckets_[i].push_back(e);
  }
  buckets_[j].clear();
  std::stable_sort(front_.begin(), front_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key < b.key;
                   });
}

TimeNs Engine::next_time() {
  refill_front();
  return front_time_;
}

void Engine::rebucket_all(TimeNs new_min) {
  // front_time_ is the reference every pending entry is bucketed
  // against, and the radix invariant needs it to stay a lower bound of
  // every schedulable time. run_until (via next_time/refill_front) can
  // advance it to the earliest *pending* time, which may sit above now_
  // when that event lies past t_end — so a later schedule_at(t) with
  // now_ <= t < front_time_ is legal yet cannot be bucketed against the
  // larger reference. Restore the invariant by re-bucketing everything
  // against t, the new global minimum. Equal-time entries always share
  // one bucket and are re-appended in order, so FIFO survives. Only
  // drivers that mix run_until with earlier re-scheduling reach this;
  // O(pending) is fine for that path.
  std::vector<Entry> live;
  live.reserve(pending_);
  live.insert(live.end(),
              front_.begin() + static_cast<std::ptrdiff_t>(front_head_),
              front_.end());
  front_.clear();
  front_head_ = 0;
  for (std::vector<Entry>& bucket : buckets_) {
    live.insert(live.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  front_time_ = new_min;
  for (const Entry& e : live) {
    const unsigned i = bucket_index(e.time, new_min);
    if (i == 0)
      front_.push_back(e);
    else
      buckets_[i].push_back(e);
  }
  std::stable_sort(front_.begin(), front_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key < b.key;
                   });
}

void Engine::schedule_at(TimeNs t, EventHandler* handler,
                         std::uint64_t tag) {
  // The legacy key is the global schedule counter: monotone, so
  // equal-time dispatch order is exactly schedule FIFO.
  schedule_keyed(t, event_key::kClassLegacy | next_seq_, handler, tag);
}

void Engine::schedule_keyed(TimeNs t, std::uint64_t key,
                            EventHandler* handler, std::uint64_t tag) {
  AMR_CHECK_MSG(t >= now_, "cannot schedule into the past");
  AMR_CHECK(handler != nullptr);
  if (t < front_time_) [[unlikely]]
    rebucket_all(t);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[slot] = Body{handler, tag, next_seq_++};
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(Body{handler, tag, next_seq_++});
  }
  const Entry entry{t, key, slot};
  // Always bucket relative to front_time_, the one monotone reference
  // every pending entry was bucketed against (updated only by
  // refill_front, and by rebucket_all above when a legal earlier time
  // arrives). Mixing references would break the equal-time colocation
  // the key-order guarantee rests on. Entries at exactly the front time
  // join the front bucket at their key position — for monotone legacy
  // keys that is always the tail, a plain O(1) append.
  const unsigned i = bucket_index(t, front_time_);
  if (i == 0) {
    if (front_.empty() || key >= front_.back().key) {
      front_.push_back(entry);
    } else {
      auto it = std::upper_bound(
          front_.begin() + static_cast<std::ptrdiff_t>(front_head_),
          front_.end(), key,
          [](std::uint64_t k, const Entry& e) { return k < e.key; });
      front_.insert(it, entry);
    }
  } else {
    buckets_[i].push_back(entry);
  }
  ++pending_;
}

void Engine::call_at(TimeNs t, std::function<void(Engine&)> fn) {
  std::uint64_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fns_[slot] = std::move(fn);
  } else {
    slot = fns_.size();
    fns_.push_back(std::move(fn));
  }
  schedule_at(t, &fn_handler_, slot);
}

void Engine::FnHandler::on_event(Engine& engine, std::uint64_t tag) {
  // Move out first: the callback may schedule more events and grow fns_.
  auto fn = std::move(engine.fns_[tag]);
  engine.fns_[tag] = nullptr;
  engine.free_fn_slots_.push_back(tag);
  fn(engine);
}

bool Engine::step() {
  if (pending_ == 0) return false;
  refill_front();
  const Entry ev = front_[front_head_++];
  --pending_;
  const Body body = arena_[ev.slot];
  free_slots_.push_back(ev.slot);
  AMR_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  if (tracer_ != nullptr) [[unlikely]]
    tracer_->instant(Tracer::kTrackSim, TraceCat::kDes, "dispatch", now_,
                     static_cast<std::int64_t>(body.tag),
                     static_cast<std::int64_t>(body.seq));
  body.handler->on_event(*this, body.tag);
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = processed_;
  while (step()) {
  }
  return processed_ - start;
}

std::uint64_t Engine::run_until(TimeNs t_end) {
  const std::uint64_t start = processed_;
  while (pending_ != 0 && next_time() <= t_end) step();
  if (now_ < t_end) now_ = t_end;
  return processed_ - start;
}

std::uint64_t Engine::run_before(TimeNs horizon) {
  const std::uint64_t start = processed_;
  while (pending_ != 0 && next_time() < horizon) step();
  return processed_ - start;
}

}  // namespace amr
