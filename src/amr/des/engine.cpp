#include "amr/des/engine.hpp"

#include "amr/trace/tracer.hpp"

namespace amr {

void Engine::schedule_at(TimeNs t, EventHandler* handler,
                         std::uint64_t tag) {
  AMR_CHECK_MSG(t >= now_, "cannot schedule into the past");
  AMR_CHECK(handler != nullptr);
  queue_.push(Event{t, next_seq_++, handler, tag});
}

void Engine::call_at(TimeNs t, std::function<void(Engine&)> fn) {
  std::uint64_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fns_[slot] = std::move(fn);
  } else {
    slot = fns_.size();
    fns_.push_back(std::move(fn));
  }
  schedule_at(t, &fn_handler_, slot);
}

void Engine::FnHandler::on_event(Engine& engine, std::uint64_t tag) {
  // Move out first: the callback may schedule more events and grow fns_.
  auto fn = std::move(engine.fns_[tag]);
  engine.fns_[tag] = nullptr;
  engine.free_fn_slots_.push_back(tag);
  fn(engine);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  const Event ev = queue_.top();
  queue_.pop();
  AMR_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  if (tracer_ != nullptr) [[unlikely]]
    tracer_->instant(Tracer::kTrackSim, TraceCat::kDes, "dispatch", now_,
                     static_cast<std::int64_t>(ev.tag),
                     static_cast<std::int64_t>(ev.seq));
  ev.handler->on_event(*this, ev.tag);
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t start = processed_;
  while (step()) {
  }
  return processed_ - start;
}

std::uint64_t Engine::run_until(TimeNs t_end) {
  const std::uint64_t start = processed_;
  while (!queue_.empty() && queue_.top().time <= t_end) step();
  if (now_ < t_end) now_ = t_end;
  return processed_ - start;
}

}  // namespace amr
