// Sharded discrete-event engine: conservative parallel DES by node.
//
// Partitions the event space by cluster node into per-shard sequential
// Engines (contiguous node blocks, so shared-memory fabric traffic is
// intra-shard by construction) and executes the shards concurrently on
// an amr::par::ThreadPool under a conservative lookahead protocol
// (Chandy/Misra-style, specialized to this simulator's timing model):
//
//   epoch loop:
//     barrier callback   (merge shard-partitioned handler state;
//                         schedules e.g. collective completions)
//     drain mailboxes    (cross-shard events buffered by post())
//     horizon  = min over shards of next pending event time
//     h_end    = horizon + lookahead
//     parallel: every shard dispatches its events with time < h_end
//
// The lookahead is the fabric's minimum inter-node latency: any event a
// shard can cause on another shard is a remote message delivery, and
// delivery >= post_time + remote_per_msg + remote_latency > h_end, so
// cross-shard events buffered during an epoch always land strictly
// beyond the epoch's horizon — no shard ever receives an event in its
// past. Within a shard the monotone radix queue and arena are reused
// unchanged.
//
// Determinism contract: each shard dispatches in (time, key) order with
// canonical content-derived keys (engine.hpp event_key), times are
// independent of the shard count (every event's time is computed from
// dispatch-ordered per-node state), and cross-shard mailbox buffering
// only affects *insertion* order, which the keys make irrelevant. Hence
// the full simulation output is byte-identical for every shard count —
// the property ctest's par_des_determinism matrix enforces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "amr/des/engine.hpp"
#include "amr/topo/topology.hpp"

namespace amr {

class ThreadPool;

/// Per-shard dispatch statistics for one run_all() (one BSP window).
struct ShardEpochStats {
  std::int64_t events = 0;  ///< events dispatched by this shard
  std::int64_t epochs = 0;  ///< lookahead epochs executed (same for all)
  std::int64_t lookahead_stalls = 0;  ///< epochs with zero dispatches
  std::int64_t mailbox_events = 0;    ///< cross-shard events received
};

class ShardedEngine {
 public:
  /// `shards` is clamped to [1, topo.num_nodes()]. `lookahead` must be
  /// positive (the epoch loop makes progress by processing events in
  /// [horizon, horizon + lookahead)). `pool` may be null: shards then
  /// execute inline on the caller's thread, with identical results —
  /// the determinism contract makes the thread count unobservable.
  ShardedEngine(const ClusterTopology& topo, std::int32_t shards,
                TimeNs lookahead, ThreadPool* pool);

  std::int32_t num_shards() const {
    return static_cast<std::int32_t>(shards_.size());
  }
  TimeNs lookahead() const { return lookahead_; }

  Engine& shard(std::int32_t s) { return *shards_[static_cast<std::size_t>(s)]; }
  const Engine& shard(std::int32_t s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }

  std::int32_t shard_of_node(std::int32_t node) const {
    return node_shard_[static_cast<std::size_t>(node)];
  }
  std::int32_t shard_of_rank(std::int32_t rank) const {
    return shard_of_node(topo_.node_of(rank));
  }
  Engine& engine_for_rank(std::int32_t rank) {
    return shard(shard_of_rank(rank));
  }
  /// Contiguous [first, last) rank range owned by a shard.
  std::pair<std::int32_t, std::int32_t> rank_range(std::int32_t s) const;

  /// Buffer an event produced during shard `src`'s epoch execution for
  /// shard `dst`'s queue; scheduled (keyed) at the next epoch barrier.
  /// Safe to call concurrently from different source shards: each
  /// (src, dst) lane has exactly one writer, the src shard's thread.
  void post(std::int32_t src, std::int32_t dst, TimeNs t, std::uint64_t key,
            EventHandler* handler, std::uint64_t tag);

  /// Invoked single-threaded at every epoch barrier, before mailboxes
  /// drain — the merge point for handler state partitioned by shard
  /// (Comm merges collective entries and returns foreign slot frees
  /// here). The callback may schedule events into any shard.
  void set_barrier_callback(std::function<void()> cb) {
    barrier_cb_ = std::move(cb);
  }

  /// Run the epoch loop until every shard drains (and the barrier
  /// callback stops producing work). Returns events dispatched.
  std::uint64_t run_all();

  /// Advance every shard's clock to t (serial). Requires drained shards:
  /// the step loop uses this to charge rebalance time between windows,
  /// where no events are pending by construction.
  void run_until(TimeNs t);

  /// Common shard time. Outside run_all every shard agrees (run_all
  /// drains all queues, then run_until aligns the clocks); mid-epoch the
  /// shards legitimately diverge, so this is coordinator-only.
  TimeNs now() const;

  std::uint64_t events_processed() const;

  /// Merged scalar state for checkpoints, mirroring Engine::Clock. Taken
  /// at step boundaries where all shard clocks agree and no events are
  /// pending; next_seq is reset to zero on restore, which is unobservable
  /// in keyed mode (keys come from simulation content, and the per-shard
  /// schedule counter only feeds legacy keys and trace seq numbers).
  Engine::Clock clock() const;
  void restore_clock(const Engine::Clock& c);

  /// Per-shard statistics of the last run_all().
  const std::vector<ShardEpochStats>& last_stats() const { return stats_; }

 private:
  struct Posted {
    TimeNs t;
    std::uint64_t key;
    EventHandler* handler;
    std::uint64_t tag;
  };

  std::size_t lane(std::int32_t src, std::int32_t dst) const {
    return static_cast<std::size_t>(src) * shards_.size() +
           static_cast<std::size_t>(dst);
  }
  void drain_mailboxes();

  const ClusterTopology& topo_;
  TimeNs lookahead_;
  ThreadPool* pool_;
  /// Engines are not movable (internal raw buckets); unique_ptr keeps
  /// their addresses stable for handlers that cache Engine references.
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::int32_t> node_shard_;   ///< node -> owning shard
  std::vector<std::int32_t> shard_first_node_;  ///< shard -> first node
  std::vector<std::vector<Posted>> mailboxes_;  ///< [src * S + dst] lanes
  std::vector<std::uint64_t> epoch_counts_;     ///< per-shard scratch
  std::vector<ShardEpochStats> stats_;
  std::function<void()> barrier_cb_;
};

}  // namespace amr
