// Baseline placement: contiguous SFC ranges with balanced block counts
// (paper §V-A2). Assigns ceil(n/r) blocks to the first n mod r ranks and
// floor(n/r) to the rest, ignoring per-block costs entirely — the default
// behaviour of production AMR frameworks.
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

class BaselinePolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "baseline"; }
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;
};

}  // namespace amr
