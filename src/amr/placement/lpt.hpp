// LPT (Longest-Processing-Time-first) placement (paper §V-B).
//
// Classical greedy makespan minimization: sort blocks by cost descending,
// assign each to the currently least-loaded rank. Guarantees makespan
// <= 4/3 · OPT (Graham 1969) and, per the paper, matches a commercial ILP
// solver in practice. Ignores communication locality entirely.
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

class LptPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "lpt"; }
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  /// LPT over a subset: assign `block_ids` (costs given by `costs`) to the
  /// ranks listed in `target_ranks`, writing into `placement`. Starting
  /// loads are zero for the targets. Shared with CPLX's rebalance step.
  static void assign_subset(std::span<const double> costs,
                            std::span<const std::int32_t> block_ids,
                            std::span<const std::int32_t> target_ranks,
                            Placement& placement);
};

}  // namespace amr
