// LPT (Longest-Processing-Time-first) placement (paper §V-B).
//
// Classical greedy makespan minimization: sort blocks by cost descending,
// assign each to the currently least-loaded rank. Guarantees makespan
// <= 4/3 · OPT (Graham 1969) and, per the paper, matches a commercial ILP
// solver in practice. Ignores communication locality entirely.
#pragma once

#include "amr/common/dary_heap.hpp"
#include "amr/placement/policy.hpp"

namespace amr {

/// Reusable storage for assign_subset: the block-ordering vector and the
/// 4-ary load heap keep their capacity across invocations. Without this,
/// every regrid epoch rebuilt both from scratch even when the cost vector
/// was remap-carried unchanged; the incremental placement engine keys one
/// scratch per candidate slot on the placement epoch and reuses it.
struct LptScratch {
  std::vector<std::int32_t> order;
  TopUpdateMinHeap<4> loads;
};

class LptPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "lpt"; }
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  /// LPT over a subset: assign `block_ids` (costs given by `costs`) to the
  /// ranks listed in `target_ranks`, writing into `placement`. Starting
  /// loads are zero for the targets. Shared with CPLX's rebalance step.
  static void assign_subset(std::span<const double> costs,
                            std::span<const std::int32_t> block_ids,
                            std::span<const std::int32_t> target_ranks,
                            Placement& placement);

  /// Same assignment through caller-owned scratch (identical output; the
  /// scratch only carries allocation capacity, never decisions).
  static void assign_subset(std::span<const double> costs,
                            std::span<const std::int32_t> block_ids,
                            std::span<const std::int32_t> target_ranks,
                            Placement& placement, LptScratch& scratch);

  /// The greedy heap loop alone: `sorted_blocks` must already be in LPT
  /// order (cost descending, block id ascending on ties). Split out so
  /// the placement engine can produce that order with a parallel sort —
  /// the order is a unique total order, so the assignment is identical
  /// however it was sorted.
  static void assign_sorted(std::span<const double> costs,
                            std::span<const std::int32_t> sorted_blocks,
                            std::span<const std::int32_t> target_ranks,
                            Placement& placement, LptScratch& scratch);
};

}  // namespace amr
