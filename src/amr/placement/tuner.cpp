#include "amr/placement/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "amr/common/check.hpp"

namespace amr {

void TunerState::reset_model() {
  // Physics prior: predicted = mean_load · imbalance = makespan. The
  // simulated step really is makespan plus comm/sync terms, so the prior
  // ranks candidates sensibly before any sample arrives; w0 (constant
  // overhead share) and w2 (remote-message penalty) are learned online.
  w[0] = 0.0;
  w[1] = 1.0;
  w[2] = 0.0;
  for (double& p : P) p = 0.0;
  P[0] = 1.0;  // bias: adapts quickly
  P[4] = 1.0;  // imbalance coefficient
  P[8] = 4.0;  // remote share: least prior confidence
  err_ewma = 0.0;
  have_err = false;
  err_samples = 0;
  // Residuals are offsets against the weights being discarded; the
  // recency stamps survive so exploration keeps cycling the arms.
  for (double& u : resid) u = 0.0;
}

AutoXTuner::AutoXTuner(TunerConfig cfg) : cfg_(std::move(cfg)) {
  AMR_CHECK_MSG(!cfg_.candidates.empty() &&
                    cfg_.candidates.size() <=
                        static_cast<std::size_t>(kTunerMaxCandidates),
                "auto-X candidate set must have 1..8 entries");
  for (const double x : cfg_.candidates)
    AMR_CHECK_MSG(x >= 0.0 && x <= 100.0,
                  "auto-X candidates must be percentages in [0, 100]");
}

void AutoXTuner::budget_candidates(const TunerState& st,
                                   std::size_t nblocks,
                                   std::vector<std::int32_t>& out) const {
  out.clear();
  const auto ncand = static_cast<std::int32_t>(cfg_.candidates.size());
  if (st.mode == 1) {
    if (st.probe_at < ncand) {
      out.push_back(st.probe_at);
      return;
    }
    // Probe pass complete: evaluate only the measured argmin, which
    // choose() locks in while flipping back to surrogate mode.
    std::int32_t best = 0;
    double best_ns = 0.0;
    bool have = false;
    for (std::int32_t i = 0; i < ncand; ++i) {
      if (!st.cand_have[i]) continue;
      if (!have || st.cand_step_ns[i] < best_ns) {
        best = i;
        best_ns = st.cand_step_ns[i];
        have = true;
      }
    }
    out.push_back(best);
    return;
  }
  // Surrogate mode: modeled cost gates how many candidates fit in the
  // budget. Pure function of the block count — never wall-clock.
  const double per_cand_ms =
      cfg_.eval_ns_per_block * static_cast<double>(nblocks) / 1e6;
  std::int32_t afford = ncand;
  if (per_cand_ms > 0.0)
    afford = static_cast<std::int32_t>(cfg_.budget_ms / per_cand_ms);
  afford = std::clamp(afford, std::int32_t{1}, ncand);
  if (afford >= ncand) {
    for (std::int32_t i = 0; i < ncand; ++i) out.push_back(i);
    return;
  }
  // Trimmed: expand a ring around the last choice (locality in X — the
  // optimum drifts, it does not jump), deterministic order.
  const std::int32_t center = st.last_choice >= 0 ? st.last_choice : 0;
  std::int32_t lo = center;
  std::int32_t hi = center;
  out.push_back(center);
  while (static_cast<std::int32_t>(out.size()) < afford) {
    if (hi + 1 < ncand) out.push_back(++hi);
    if (static_cast<std::int32_t>(out.size()) >= afford) break;
    if (lo > 0) out.push_back(--lo);
    if (hi + 1 >= ncand && lo <= 0) break;
  }
  std::sort(out.begin(), out.end());
}

double AutoXTuner::predict(const TunerState& st, const CandidateEval& ce,
                           double scale) {
  const double unit =
      st.w[0] + st.w[1] * ce.imbalance + st.w[2] * ce.remote_share;
  return std::max(0.0, unit * scale);
}

double AutoXTuner::scored(const TunerState& st, const CandidateEval& ce,
                          double scale, std::int32_t cand) {
  // Shared model plus the candidate's learned bias: what the features
  // predict, corrected by how this arm actually measured.
  const double unit = st.w[0] + st.w[1] * ce.imbalance +
                      st.w[2] * ce.remote_share +
                      st.resid[static_cast<std::size_t>(cand)];
  return std::max(0.0, unit * scale);
}

AutoXTuner::Decision AutoXTuner::choose(
    TunerState& st, std::span<const std::int32_t> indices,
    std::span<const CandidateEval> evals) const {
  AMR_CHECK(!indices.empty() && indices.size() == evals.size());
  const auto ncand = static_cast<std::int32_t>(cfg_.candidates.size());
  const double scale = evals[0].mean_load;
  ++st.decisions;

  Decision d;
  if (st.mode == 1) {
    d.slot = 0;
    d.candidate = indices[0];
    d.mode = 1;
    d.predicted_ns = scale > 0.0 ? predict(st, evals[0], scale) : 0.0;
    ++st.fallback_epochs;
    if (st.probe_at >= ncand) {
      // The measured argmin is locked in; hand back to the surrogate
      // with a fresh prior (the drift that tripped the fallback makes
      // the old fit worthless).
      st.mode = 0;
      st.reset_model();
      ++st.model_resets;
    }
  } else if (cfg_.explore_every > 0 && st.decisions > 1 &&
             st.decisions % cfg_.explore_every == 0) {
    // Exploration epoch: measure the least-recently-chosen *plausible*
    // candidate so its residual stays fresh. The error signal only sees
    // chosen arms, so exploit-only tuning would be blind to every
    // counterfactual; but paying a full epoch to re-measure an arm
    // priced far off the optimum is pure tax. Plausible = corrected
    // score within explore_margin of the best. A bad residual can only
    // come from the arm's own measured epochs, so score-based exile is
    // informed, not blind — and when the workload drifts, the arm's
    // *features* move while its residual stays put, pulling it back
    // under the margin for re-measurement. Ties break to the lowest
    // candidate index; the first decision (decisions == 1) always goes
    // to the prior's argmin — no cold-start probing.
    double best_s = scale > 0.0 ? scored(st, evals[0], scale, indices[0])
                                : 0.0;
    for (std::size_t i = 1; i < evals.size(); ++i)
      best_s = std::min(
          best_s,
          scale > 0.0 ? scored(st, evals[i], scale, indices[i]) : 0.0);
    const double admit = best_s * cfg_.explore_margin;
    std::size_t pick = evals.size();
    for (std::size_t i = 0; i < evals.size(); ++i) {
      const double s =
          scale > 0.0 ? scored(st, evals[i], scale, indices[i]) : 0.0;
      if (s > admit) continue;
      if (pick == evals.size() ||
          st.last_chosen_at[static_cast<std::size_t>(indices[i])] <
              st.last_chosen_at[static_cast<std::size_t>(indices[pick])])
        pick = i;
    }
    if (pick == evals.size()) pick = 0;  // degenerate: nothing plausible
    d.slot = static_cast<std::int32_t>(pick);
    d.candidate = indices[pick];
    d.mode = 0;
    d.predicted_ns =
        scale > 0.0 ? scored(st, evals[pick], scale, indices[pick]) : 0.0;
  } else {
    std::size_t best_slot = 0;
    double best_pred =
        scale > 0.0 ? scored(st, evals[0], scale, indices[0]) : 0.0;
    for (std::size_t i = 1; i < evals.size(); ++i) {
      const double p =
          scale > 0.0 ? scored(st, evals[i], scale, indices[i]) : 0.0;
      if (p < best_pred) {
        best_pred = p;
        best_slot = i;
      }
    }
    d.slot = static_cast<std::int32_t>(best_slot);
    d.candidate = indices[best_slot];
    d.mode = 0;
    d.predicted_ns = best_pred;
  }

  const CandidateEval& chosen = evals[static_cast<std::size_t>(d.slot)];
  st.last_chosen_at[static_cast<std::size_t>(d.candidate)] = st.decisions;
  st.pending = scale > 0.0;
  st.last_choice = d.candidate;
  st.last_predicted = d.predicted_ns;
  st.last_scale = scale;
  st.last_feat[0] = 1.0;
  st.last_feat[1] = chosen.imbalance;
  st.last_feat[2] = chosen.remote_share;
  return d;
}

void AutoXTuner::observe(TunerState& st, double measured_step_ns) const {
  if (!st.pending) return;
  st.pending = false;
  const auto ncand = static_cast<std::int32_t>(cfg_.candidates.size());

  // Per-candidate measured table (the fallback's ground truth).
  if (st.last_choice >= 0 && st.last_choice < ncand) {
    const std::int32_t c = st.last_choice;
    st.cand_step_ns[c] =
        st.cand_have[c]
            ? (1.0 - cfg_.measured_alpha) * st.cand_step_ns[c] +
                  cfg_.measured_alpha * measured_step_ns
            : measured_step_ns;
    st.cand_have[c] = true;
  }
  if (st.mode == 1) {
    // Probing: record only; the stale model is not trained on probe
    // epochs (it is reset wholesale when the pass completes), and its
    // error signal is not tracked either — the trip already fired.
    if (st.probe_at < ncand && st.last_choice == st.probe_at)
      ++st.probe_at;
    return;
  }
  // A zero scale marks an unscaled decision (uninformative cost
  // estimates): the measured table above is still valid, but y =
  // step / mean_load is meaningless, and one such sample would poison
  // the RLS weights by orders of magnitude.
  if (st.last_scale <= 0.0) return;

  const double rel = std::abs(st.last_predicted - measured_step_ns) /
                     std::max(measured_step_ns, 1.0);
  st.err_ewma = st.have_err
                    ? (1.0 - cfg_.error_alpha) * st.err_ewma +
                          cfg_.error_alpha * rel
                    : rel;
  st.have_err = true;
  ++st.err_samples;

  // Recursive least squares on (f, y) with y = step / mean_load. All
  // arithmetic is fixed-order; P stays symmetric by construction.
  const double* x = st.last_feat;
  const double y = measured_step_ns / st.last_scale;
  // Candidate-specific residual: how far the measured arm landed from
  // the shared model, in y-units. EWMA so drift re-learns; the RLS
  // update below absorbs the shared component of the same residual.
  // Unvisited arms decay toward the shared model — stale corrections
  // expire at a bounded rate instead of mispricing an arm until its
  // next exploration visit.
  for (double& u : st.resid) u *= cfg_.resid_decay;
  if (st.last_choice >= 0 && st.last_choice < ncand) {
    const auto c = static_cast<std::size_t>(st.last_choice);
    const double arm_resid =
        y - (st.w[0] * x[0] + st.w[1] * x[1] + st.w[2] * x[2]);
    st.resid[c] = (1.0 - cfg_.resid_alpha) * st.resid[c] +
                  cfg_.resid_alpha * arm_resid;
  }
  double Px[3];
  for (int r = 0; r < 3; ++r)
    Px[r] = st.P[3 * r + 0] * x[0] + st.P[3 * r + 1] * x[1] +
            st.P[3 * r + 2] * x[2];
  const double xPx = x[0] * Px[0] + x[1] * Px[1] + x[2] * Px[2];
  const double denom = 1.0 + xPx;
  const double resid =
      y - (st.w[0] * x[0] + st.w[1] * x[1] + st.w[2] * x[2]);
  double k[3];
  for (int r = 0; r < 3; ++r) k[r] = Px[r] / denom;
  for (int r = 0; r < 3; ++r) st.w[r] += k[r] * resid;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) st.P[3 * r + c] -= k[r] * Px[c];

  // Surrogate no longer trustworthy: start a measured probe pass. The
  // warmup keeps the guaranteed-large first residuals (before w0 has
  // absorbed the constant comm/sync share) from tripping it.
  if (st.err_samples >= cfg_.error_warmup &&
      st.err_ewma > cfg_.error_threshold) {
    st.mode = 1;
    st.probe_at = 0;
    for (bool& h : st.cand_have) h = false;
    st.err_ewma = 0.0;
    st.have_err = false;
    st.err_samples = 0;
  }
}

}  // namespace amr
