// Placement quality metrics: load balance (makespan, imbalance factor) and
// communication locality (the intra-rank / intra-node / inter-node message
// split of Fig 6c, weighted by boundary-exchange message sizes).
#pragma once

#include <cstdint>
#include <span>

#include "amr/mesh/mesh.hpp"
#include "amr/placement/policy.hpp"
#include "amr/topo/topology.hpp"

namespace amr {

struct LoadMetrics {
  double makespan = 0.0;
  double mean_load = 0.0;
  double imbalance = 0.0;  ///< makespan / mean_load (1.0 = perfect)
  double stddev = 0.0;
};

LoadMetrics load_metrics(std::span<const double> costs,
                         const Placement& placement, std::int32_t nranks);

/// Boundary-exchange message size model (paper §II-B): volume depends on
/// the adjacency class (face >> edge >> vertex) and the number of physical
/// variables, not on refinement level. Sizes are the ghost-region slab for
/// a cells³ block with `ghost`-cell-wide halos of `nvars` doubles.
struct MessageSizeModel {
  std::int32_t cells = 16;   ///< cells per block edge (paper: 16³ blocks)
  std::int32_t ghost = 2;    ///< ghost halo width
  std::int32_t nvars = 5;    ///< physical variables exchanged
  std::int32_t bytes_per_value = 8;

  std::int64_t bytes(NeighborKind kind) const {
    const std::int64_t c = cells;
    const std::int64_t g = ghost;
    const std::int64_t v = static_cast<std::int64_t>(nvars) *
                           bytes_per_value;
    switch (kind) {
      case NeighborKind::kFace: return c * c * g * v;
      case NeighborKind::kEdge: return c * g * g * v;
      case NeighborKind::kVertex: return g * g * g * v;
    }
    return 0;
  }

  /// Flux-correction message: one layer of conserved-variable fluxes on
  /// a shared face, sent fine -> coarse at refinement boundaries to keep
  /// conserved quantities consistent (paper §II-B). The fine side covers
  /// a quarter of the coarse face.
  std::int64_t flux_bytes() const {
    const std::int64_t c = cells;
    return (c / 2) * (c / 2) * nvars * bytes_per_value;
  }

  /// Full interior payload of one block (cells³ x nvars doubles): what a
  /// block migration moves during redistribution.
  std::int64_t block_payload_bytes() const {
    const std::int64_t c = cells;
    return c * c * c * nvars * bytes_per_value;
  }

  friend bool operator==(const MessageSizeModel&,
                         const MessageSizeModel&) = default;
};

/// Directed message statistics for one full boundary exchange under a
/// placement. Intra-rank pairs move via memcpy and are invisible to MPI
/// (paper Fig 6c discussion); intra-node pairs use the shared-memory path;
/// inter-node pairs cross the fabric.
struct CommMetrics {
  std::int64_t msgs_intra_rank = 0;
  std::int64_t msgs_intra_node = 0;
  std::int64_t msgs_inter_node = 0;
  std::int64_t bytes_intra_rank = 0;
  std::int64_t bytes_intra_node = 0;
  std::int64_t bytes_inter_node = 0;

  std::int64_t mpi_msgs() const { return msgs_intra_node + msgs_inter_node; }
  std::int64_t total_msgs() const { return mpi_msgs() + msgs_intra_rank; }
  double remote_fraction() const {
    const std::int64_t m = mpi_msgs();
    return m > 0 ? static_cast<double>(msgs_inter_node) /
                       static_cast<double>(m)
                 : 0.0;
  }
};

CommMetrics comm_metrics(const AmrMesh& mesh, const Placement& placement,
                         const ClusterTopology& topo,
                         const MessageSizeModel& sizes = {});

/// Fraction of SFC-adjacent block pairs kept on the same rank; 1.0 for any
/// contiguous placement, lower as locality breaks.
double contiguity_fraction(const Placement& placement);

/// Number of blocks whose rank changed between two placements (migration
/// volume proxy for redistribution cost).
std::int64_t moved_blocks(const Placement& before, const Placement& after);

}  // namespace amr
