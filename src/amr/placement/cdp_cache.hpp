// Memo of chunked-CDP base splits, shared across CPLX invocations.
//
// Every CplX policy starts from the same contiguous CDP placement for a
// given (costs, nranks, chunk) input: a policy sweep (cpl0..cpl100 over
// one cost vector) or a simulation that rebalances on unchanged measured
// costs recomputes an identical DP each time. This cache keys the split
// by the exact cost vector and returns the stored placement instead.
//
// The cache is process-wide and thread-safe (the parallel sweep runtime
// hits it from worker threads); a hit returns exactly what the DP would
// compute, so results are identical with the cache on, off, hit, or
// raced — two threads computing the same key both produce the same
// placement and either copy may be stored. Lookups verify the full cost
// vector, not just its hash: a hash collision can never substitute a
// wrong split.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "amr/placement/policy.hpp"

namespace amr {

class CdpSplitCache {
 public:
  /// The process-wide instance used by CplxPolicy.
  static CdpSplitCache& instance();

  explicit CdpSplitCache(std::size_t capacity = 8) : capacity_(capacity) {}

  /// Return the cached base placement for (costs, nranks, chunk_ranks),
  /// or run `compute`, store its result, and return it.
  Placement get_or_compute(std::span<const double> costs,
                           std::int32_t nranks, std::int32_t chunk_ranks,
                           const std::function<Placement()>& compute);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::int32_t nranks = 0;
    std::int32_t chunk_ranks = 0;
    std::vector<double> costs;
    Placement placement;
    std::uint64_t stamp = 0;  ///< recency for LRU eviction
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace amr
