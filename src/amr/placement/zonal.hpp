// Zonal placement (paper §VI-C, Fig 7c discussion; Zheng et al. [38]).
//
// At the largest scales the placement computation itself threatens the
// 50 ms budget. Zonal placement divides the ranks into fixed-size zones,
// gives each zone a contiguous, cost-proportional slice of the SFC-
// ordered blocks, and runs the inner policy independently per zone — an
// embarrassingly parallel structure in a real deployment (sequential
// here; the per-zone problem-size reduction is what the budget needs).
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

class ZonalPolicy final : public PlacementPolicy {
 public:
  /// @param inner       policy applied within each zone (owned).
  /// @param zone_ranks  ranks per zone.
  ZonalPolicy(PolicyPtr inner, std::int32_t zone_ranks);

  std::string name() const override;
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  std::int32_t zone_ranks() const { return zone_ranks_; }

 private:
  PolicyPtr inner_;
  std::int32_t zone_ranks_;
};

}  // namespace amr
