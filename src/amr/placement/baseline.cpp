#include "amr/placement/baseline.hpp"

#include "amr/common/check.hpp"

namespace amr {

Placement BaselinePolicy::place(std::span<const double> costs,
                                std::int32_t nranks) const {
  AMR_CHECK(nranks > 0);
  const std::size_t n = costs.size();
  Placement out(n);
  const std::size_t r = static_cast<std::size_t>(nranks);
  const std::size_t base = n / r;
  const std::size_t extra = n % r;  // first `extra` ranks take one more
  std::size_t block = 0;
  for (std::size_t rank = 0; rank < r && block < n; ++rank) {
    const std::size_t take = base + (rank < extra ? 1 : 0);
    for (std::size_t i = 0; i < take && block < n; ++i)
      out[block++] = static_cast<std::int32_t>(rank);
  }
  return out;
}

std::vector<double> rank_loads(std::span<const double> costs,
                               const Placement& placement,
                               std::int32_t nranks) {
  AMR_CHECK(costs.size() == placement.size());
  std::vector<double> loads(static_cast<std::size_t>(nranks), 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    AMR_CHECK(placement[i] >= 0 && placement[i] < nranks);
    loads[static_cast<std::size_t>(placement[i])] += costs[i];
  }
  return loads;
}

bool placement_valid(const Placement& placement, std::size_t num_blocks,
                     std::int32_t nranks) {
  if (placement.size() != num_blocks) return false;
  for (const std::int32_t r : placement)
    if (r < 0 || r >= nranks) return false;
  return true;
}

}  // namespace amr
