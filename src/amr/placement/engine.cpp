#include "amr/placement/engine.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/cdp.hpp"

namespace amr {

const Placement& PlacementEngine::base_split(std::span<const double> costs,
                                             std::int32_t nranks,
                                             std::int32_t chunk_ranks,
                                             std::uint64_t cost_epoch) {
  ++stats_.epochs;
  const bool config_same =
      nranks == prev_nranks_ && chunk_ranks == prev_chunk_ranks_;

  // Fast path: provably identical inputs (same mesh version + cost
  // provenance token). Skips even the content comparison.
  if (config_same && have_epoch_ && cost_epoch == prev_cost_epoch_ &&
      base_.size() == costs.size()) {
    ++stats_.base_reused;
    last_total_ = static_cast<std::int64_t>(chunks_.size());
    last_reused_ = last_total_;
    stats_.chunks_total += last_total_;
    stats_.chunks_reused += last_reused_;
    return base_;
  }

  // Canonical boundaries, always recomputed: any cost change shifts the
  // proportional targets, so boundary reuse would not be sound — but the
  // scan is O(n), cheap next to the per-chunk DP it gates.
  const std::vector<ChunkSpan> spans =
      chunk_spans(costs, nranks, chunk_ranks);

  // A chunk solve is reusable when its rank group and sub-cost content
  // match the previous epoch's record at the same chunk index. Rank
  // groups are positionally fixed for a given (nranks, chunk_ranks), and
  // restricted CDP is a pure function of (sub-costs, group_ranks), so a
  // content match guarantees an identical local solve even if the chunk's
  // absolute block offsets shifted.
  std::vector<std::uint8_t> reuse(spans.size(), 0);
  if (config_same) {
    const std::size_t overlap = std::min(spans.size(), chunks_.size());
    for (std::size_t i = 0; i < overlap; ++i) {
      const ChunkSpan& s = spans[i];
      const ChunkRecord& r = chunks_[i];
      const std::size_t len = s.block_end - s.block_begin;
      if (r.span.group_ranks == s.group_ranks && r.costs.size() == len &&
          std::equal(costs.begin() +
                         static_cast<std::ptrdiff_t>(s.block_begin),
                     costs.begin() +
                         static_cast<std::ptrdiff_t>(s.block_end),
                     r.costs.begin()))
        reuse[i] = 1;
    }
  }

  chunks_.resize(spans.size());
  const auto solve = [&](std::size_t i) {
    ChunkRecord& r = chunks_[i];
    if (reuse[i] != 0) {
      r.span = spans[i];  // offsets may have shifted; the solve has not
      return;
    }
    r.span = spans[i];
    r.costs.assign(
        costs.begin() + static_cast<std::ptrdiff_t>(spans[i].block_begin),
        costs.begin() + static_cast<std::ptrdiff_t>(spans[i].block_end));
    const CdpPolicy cdp(CdpMode::kRestricted);
    r.local = cdp.place(std::span<const double>(r.costs),
                        spans[i].group_ranks);
  };
  // Each task writes only its own record; the barrier in parallel_for
  // publishes every slot before the stitch below reads them.
  if (pool_ != nullptr && spans.size() > 1)
    pool_->parallel_for(spans.size(), solve);
  else
    for (std::size_t i = 0; i < spans.size(); ++i) solve(i);

  base_.assign(costs.size(), 0);
  last_total_ = static_cast<std::int64_t>(spans.size());
  last_reused_ = 0;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const ChunkRecord& r = chunks_[c];
    AMR_CHECK(r.local.size() == r.span.block_end - r.span.block_begin);
    for (std::size_t i = 0; i < r.local.size(); ++i)
      base_[r.span.block_begin + i] = r.span.rank_begin + r.local[i];
    if (reuse[c] != 0) ++last_reused_;
  }
  stats_.chunks_total += last_total_;
  stats_.chunks_reused += last_reused_;

  prev_nranks_ = nranks;
  prev_chunk_ranks_ = chunk_ranks;
  prev_cost_epoch_ = cost_epoch;
  have_epoch_ = true;
  return base_;
}

Placement PlacementEngine::place_cplx(std::span<const double> costs,
                                      std::int32_t nranks, double x_percent,
                                      std::int32_t chunk_ranks,
                                      std::uint64_t cost_epoch) {
  const Placement& base = base_split(costs, nranks, chunk_ranks, cost_epoch);
  // Whole-placement memo: every chunk reused means the cost content is
  // identical to the previous epoch's, and the rebalance is a pure
  // function of (costs, base, nranks, x) — the previous output IS the
  // full-rebuild answer.
  const bool content_unchanged =
      last_total_ > 0 && last_reused_ == last_total_;
  if (content_unchanged && out_valid_ && x_percent == prev_x_) {
    ++stats_.placements_reused;
    return out_;
  }
  if (scratch_.empty()) scratch_.resize(1);
  CplxPolicy::rebalance_into(costs, base, nranks, x_percent, out_,
                             scratch_[0], pool_);
  prev_x_ = x_percent;
  out_valid_ = true;
  return out_;
}

void PlacementEngine::evaluate_candidates(
    std::span<const double> costs, std::int32_t nranks,
    std::span<const double> xs, std::int32_t chunk_ranks,
    std::uint64_t cost_epoch, const AmrMesh& mesh,
    const ClusterTopology& topo, const MessageSizeModel& sizes,
    std::vector<CandidateEval>& out) {
  const Placement& base = base_split(costs, nranks, chunk_ranks, cost_epoch);
  // Candidate evals never feed the whole-placement memo (its content
  // check only reaches back one base_split), so invalidate it.
  out_valid_ = false;
  out.resize(xs.size());
  if (scratch_.size() < xs.size()) scratch_.resize(xs.size());
  // Materialize the mesh's lazily built neighbor cache on this thread:
  // comm_metrics reads it from every worker, and the first call mutates.
  mesh.neighbor_lists();
  // parallel_for is not reentrant: worker-thread evals sort sequentially;
  // a single-candidate eval (probe epochs) runs on this thread and can
  // hand its sorts to the pool.
  ThreadPool* sort_pool =
      (pool_ != nullptr && xs.size() == 1) ? pool_ : nullptr;
  const auto eval = [&, sort_pool](std::size_t i) {
    CandidateEval& ce = out[i];
    ce.x_percent = xs[i];
    CplxPolicy::rebalance_into(costs, base, nranks, xs[i], ce.placement,
                               scratch_[i], sort_pool);
    const LoadMetrics lm = load_metrics(costs, ce.placement, nranks);
    ce.makespan = lm.makespan;
    ce.mean_load = lm.mean_load;
    ce.imbalance = lm.mean_load > 0.0 ? lm.imbalance : 1.0;
    const CommMetrics cm = comm_metrics(mesh, ce.placement, topo, sizes);
    ce.remote_share = cm.remote_fraction();
  };
  if (pool_ != nullptr && xs.size() > 1)
    pool_->parallel_for(xs.size(), eval);
  else
    for (std::size_t i = 0; i < xs.size(); ++i) eval(i);
  stats_.candidates_evaluated += static_cast<std::int64_t>(xs.size());
}

}  // namespace amr
