#include "amr/placement/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "amr/common/check.hpp"
#include "amr/placement/lpt.hpp"

namespace amr {
namespace {

struct Solver {
  std::span<const double> costs;      // sorted descending
  std::vector<std::int32_t> order;    // original indices, cost-desc
  std::vector<double> suffix_sum;     // remaining cost from block i on
  std::int32_t nranks;
  std::uint64_t node_limit;

  std::vector<double> loads;
  std::vector<std::int32_t> assign;   // per sorted position
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::int32_t> best_assign;
  std::uint64_t nodes = 0;
  bool aborted = false;

  void dfs(std::size_t i, double cur_max) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (i == order.size()) {
      if (cur_max < best) {
        best = cur_max;
        best_assign = assign;
      }
      return;
    }
    // Lower bound: even a perfect split of the remaining work cannot get
    // the most loaded rank below mean(total)/r or below cur_max.
    double total = suffix_sum[i];
    for (const double l : loads) total += l;
    const double lb =
        std::max(cur_max, total / static_cast<double>(nranks));
    if (lb >= best) return;

    const double c = costs[i];
    // Try ranks in ascending load; skip duplicate loads (symmetric).
    std::vector<std::int32_t> by_load(loads.size());
    for (std::size_t r = 0; r < by_load.size(); ++r)
      by_load[r] = static_cast<std::int32_t>(r);
    std::sort(by_load.begin(), by_load.end(),
              [&](std::int32_t a, std::int32_t b) {
                return loads[static_cast<std::size_t>(a)] <
                       loads[static_cast<std::size_t>(b)];
              });
    double last_load = -1.0;
    for (const std::int32_t r : by_load) {
      const double l = loads[static_cast<std::size_t>(r)];
      if (l == last_load) continue;  // symmetric branch
      last_load = l;
      if (l + c >= best) break;      // loads ascending: all further worse
      loads[static_cast<std::size_t>(r)] = l + c;
      assign[i] = r;
      dfs(i + 1, std::max(cur_max, l + c));
      loads[static_cast<std::size_t>(r)] = l;
      if (aborted) return;
    }
  }
};

}  // namespace

ExactResult exact_makespan(std::span<const double> costs,
                           std::int32_t nranks, std::uint64_t node_limit) {
  AMR_CHECK(nranks > 0);
  ExactResult result;
  result.placement.assign(costs.size(), 0);
  if (costs.empty()) {
    result.proven_optimal = true;
    return result;
  }

  Solver solver;
  solver.order.resize(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i)
    solver.order[i] = static_cast<std::int32_t>(i);
  std::sort(solver.order.begin(), solver.order.end(),
            [&](std::int32_t a, std::int32_t b) {
              const double ca = costs[static_cast<std::size_t>(a)];
              const double cb = costs[static_cast<std::size_t>(b)];
              return ca != cb ? ca > cb : a < b;
            });
  std::vector<double> sorted(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i)
    sorted[i] = costs[static_cast<std::size_t>(solver.order[i])];
  solver.costs = sorted;
  solver.suffix_sum.assign(costs.size() + 1, 0.0);
  for (std::size_t i = costs.size(); i-- > 0;)
    solver.suffix_sum[i] = solver.suffix_sum[i + 1] + sorted[i];
  solver.nranks = nranks;
  solver.node_limit = node_limit;
  solver.loads.assign(static_cast<std::size_t>(nranks), 0.0);
  solver.assign.assign(costs.size(), 0);

  // Seed the incumbent with LPT so pruning bites immediately.
  {
    const LptPolicy lpt;
    const Placement seed = lpt.place(costs, nranks);
    const auto loads = rank_loads(costs, seed, nranks);
    solver.best = *std::max_element(loads.begin(), loads.end());
    solver.best_assign.resize(costs.size());
    for (std::size_t i = 0; i < costs.size(); ++i)
      solver.best_assign[i] =
          seed[static_cast<std::size_t>(solver.order[i])];
  }

  solver.dfs(0, 0.0);

  result.makespan = solver.best;
  result.nodes_explored = solver.nodes;
  result.proven_optimal = !solver.aborted;
  for (std::size_t i = 0; i < costs.size(); ++i)
    result.placement[static_cast<std::size_t>(solver.order[i])] =
        solver.best_assign[i];
  return result;
}

}  // namespace amr
