#include "amr/placement/registry.hpp"

#include <charconv>
#include <stdexcept>

#include "amr/placement/baseline.hpp"
#include "amr/placement/cdp.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/cplx.hpp"
#include "amr/placement/lpt.hpp"
#include "amr/placement/zonal.hpp"

namespace amr {

PolicyPtr make_policy(std::string_view name) {
  if (name == "baseline") return std::make_unique<BaselinePolicy>();
  if (name == "lpt") return std::make_unique<LptPolicy>();
  if (name == "cdp")
    return std::make_unique<CdpPolicy>(CdpMode::kRestricted);
  if (name == "cdp-general")
    return std::make_unique<CdpPolicy>(CdpMode::kGeneral);
  if (name == "cdp-bsearch")
    return std::make_unique<CdpPolicy>(CdpMode::kBinarySearch);
  if (name.starts_with("chunked-cdp")) {
    std::int32_t chunk = 512;
    if (const auto slash = name.find('/'); slash != std::string_view::npos) {
      const auto arg = name.substr(slash + 1);
      if (std::from_chars(arg.data(), arg.data() + arg.size(), chunk).ec !=
          std::errc{})
        throw std::invalid_argument("bad chunk size in policy name");
    }
    return std::make_unique<ChunkedCdpPolicy>(chunk);
  }
  if (name.starts_with("zonal/")) {
    // "zonal/<zone_ranks>/<inner policy name>"
    const auto rest = name.substr(6);
    const auto slash = rest.find('/');
    if (slash == std::string_view::npos)
      throw std::invalid_argument("zonal policy: want zonal/<ranks>/<inner>");
    std::int32_t zone_ranks = 0;
    const auto arg = rest.substr(0, slash);
    if (std::from_chars(arg.data(), arg.data() + arg.size(), zone_ranks)
                .ec != std::errc{} ||
        zone_ranks <= 0)
      throw std::invalid_argument("bad zone size in zonal policy name");
    return std::make_unique<ZonalPolicy>(make_policy(rest.substr(slash + 1)),
                                         zone_ranks);
  }
  if (name.starts_with("cpl")) {
    const auto arg = name.substr(3);
    int x = -1;
    if (std::from_chars(arg.data(), arg.data() + arg.size(), x).ec !=
            std::errc{} ||
        x < 0 || x > 100)
      throw std::invalid_argument("bad X in cplX policy name");
    return std::make_unique<CplxPolicy>(static_cast<double>(x));
  }
  throw std::invalid_argument("unknown placement policy: " +
                              std::string(name));
}

std::vector<std::string> evaluation_policy_names() {
  return {"baseline", "cpl0", "cpl25", "cpl50", "cpl75", "cpl100"};
}

}  // namespace amr
