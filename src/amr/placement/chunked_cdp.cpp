#include "amr/placement/chunked_cdp.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/placement/cdp.hpp"

namespace amr {

std::string ChunkedCdpPolicy::name() const {
  return "chunked-cdp/" + std::to_string(chunk_ranks_);
}

std::vector<ChunkSpan> chunk_spans(std::span<const double> costs,
                                   std::int32_t nranks,
                                   std::int32_t chunk_ranks) {
  AMR_CHECK(nranks > 0 && chunk_ranks > 0);
  const std::int32_t num_chunks =
      (nranks + chunk_ranks - 1) / chunk_ranks;
  std::vector<ChunkSpan> spans;
  if (num_chunks <= 1) {
    spans.push_back(ChunkSpan{0, costs.size(), 0, nranks});
    return spans;
  }
  spans.reserve(static_cast<std::size_t>(num_chunks));

  double total = 0.0;
  for (const double c : costs) total += c;

  std::size_t block_at = 0;
  std::int32_t rank_at = 0;
  double cost_seen = 0.0;
  for (std::int32_t chunk = 0; chunk < num_chunks; ++chunk) {
    // Contiguous rank group for this chunk.
    const std::int32_t group_ranks =
        std::min(chunk_ranks, nranks - rank_at);
    // Cut the block range where cumulative cost reaches the group's
    // proportional share (last chunk takes the remainder).
    std::size_t block_end = costs.size();
    if (chunk + 1 < num_chunks) {
      const double target =
          total * static_cast<double>(rank_at + group_ranks) /
          static_cast<double>(nranks);
      block_end = block_at;
      double acc = cost_seen;
      while (block_end < costs.size() && acc + costs[block_end] <= target) {
        acc += costs[block_end];
        ++block_end;
      }
      cost_seen = acc;
      // Leave enough blocks for later chunks only if they'd otherwise be
      // starved of even one block per remaining chunk (degenerate but
      // keeps CDP well-formed for zero-cost tails).
      block_end = std::min(block_end, costs.size());
    }
    spans.push_back(ChunkSpan{block_at, block_end, rank_at, group_ranks});
    block_at = block_end;
    rank_at += group_ranks;
  }
  AMR_CHECK(block_at == costs.size());
  return spans;
}

Placement ChunkedCdpPolicy::place(std::span<const double> costs,
                                  std::int32_t nranks) const {
  const auto spans = chunk_spans(costs, nranks, chunk_ranks_);
  const CdpPolicy cdp(CdpMode::kRestricted);
  Placement out(costs.size(), 0);
  for (const ChunkSpan& s : spans) {
    const auto sub = costs.subspan(s.block_begin, s.block_end - s.block_begin);
    const Placement local = cdp.place(sub, s.group_ranks);
    for (std::size_t i = 0; i < local.size(); ++i)
      out[s.block_begin + i] = s.rank_begin + local[i];
  }
  return out;
}

}  // namespace amr
