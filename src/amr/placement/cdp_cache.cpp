#include "amr/placement/cdp_cache.hpp"

#include <algorithm>
#include <cstring>

namespace amr {
namespace {

/// FNV-1a over the cost bytes plus the shape parameters. Only a filter:
/// every hit is confirmed by full cost-vector equality.
std::uint64_t split_key_hash(std::span<const double> costs,
                             std::int32_t nranks,
                             std::int32_t chunk_ranks) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(costs.size()));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(nranks)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk_ranks)));
  for (const double c : costs) {
    std::uint64_t bits;
    std::memcpy(&bits, &c, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

CdpSplitCache& CdpSplitCache::instance() {
  static CdpSplitCache cache;
  return cache;
}

Placement CdpSplitCache::get_or_compute(
    std::span<const double> costs, std::int32_t nranks,
    std::int32_t chunk_ranks, const std::function<Placement()>& compute) {
  const std::uint64_t hash = split_key_hash(costs, nranks, chunk_ranks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.hash != hash || e.nranks != nranks ||
          e.chunk_ranks != chunk_ranks || e.costs.size() != costs.size())
        continue;
      if (!std::equal(costs.begin(), costs.end(), e.costs.begin()))
        continue;
      e.stamp = ++stamp_;
      ++hits_;
      return e.placement;
    }
    ++misses_;
  }

  // Compute outside the lock: concurrent misses on the same key each
  // compute the (identical) split and the copies race benignly to be
  // stored.
  Placement placement = compute();

  Entry entry;
  entry.hash = hash;
  entry.nranks = nranks;
  entry.chunk_ranks = chunk_ranks;
  entry.costs.assign(costs.begin(), costs.end());
  entry.placement = placement;

  std::lock_guard<std::mutex> lock(mu_);
  entry.stamp = ++stamp_;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
  } else {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    *lru = std::move(entry);
  }
  return placement;
}

std::uint64_t CdpSplitCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t CdpSplitCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void CdpSplitCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace amr
