// CPLX: tunable hybrid placement (paper §V-D).
//
// Design principle: "it is easier to selectively break locality in a
// contiguous placement than to restore locality in an arbitrary one".
// CPLX starts from a (chunked) CDP placement, sorts ranks by load, selects
// the X% most-imbalanced ranks — drawn from BOTH ends of the sorted list,
// since rebalancing needs overloaded sources and underloaded destinations
// — and re-places exactly those ranks' blocks with LPT. X=0 is pure CDP
// (locality-preserving); X=100 is pure LPT (load-optimal).
#pragma once

#include "amr/placement/lpt.hpp"
#include "amr/placement/policy.hpp"

namespace amr {

class ThreadPool;

/// Reusable storage for the rebalance step — per-rank loads, the sorted
/// rank order, target/moved-block sets, packed sort keys, and the LPT
/// heap scratch. Carries capacity only, never decisions: results are
/// identical with a fresh or a reused scratch (the incremental engine
/// keeps one per candidate slot alive across regrid epochs).
struct RebalanceScratch {
  /// Packed (key, id) sort element: both rebalance sorts order by key
  /// descending with ascending-id tie-break — a strict total order, so
  /// the sorted sequence is unique and safe to produce in parallel.
  struct Key {
    double key;
    std::int32_t id;
  };
  std::vector<double> loads;
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> targets;
  std::vector<bool> is_target;
  std::vector<std::int32_t> moved_blocks;
  std::vector<Key> keys;
  LptScratch lpt;
};

class CplxPolicy final : public PlacementPolicy {
 public:
  /// @param x_percent  share of ranks rebalanced by LPT, 0..100.
  /// @param chunk_ranks  chunk width of the underlying chunked CDP.
  explicit CplxPolicy(double x_percent, std::int32_t chunk_ranks = 512);

  std::string name() const override;
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  double x_percent() const { return x_percent_; }
  std::int32_t chunk_ranks() const { return chunk_ranks_; }

  /// Below this imbalance (makespan / mean load), the LPT pass is skipped:
  /// the contiguous placement is already balanced and breaking locality
  /// would cost communication for nothing (uniform default costs, truly
  /// flat profiles). Anything beyond this static floor is deliberately
  /// NOT guarded: whether the locality cost pays off is an empirical,
  /// workload-specific question (paper Lesson 5) answered by choosing X,
  /// not by a hidden heuristic.
  static constexpr double kRebalanceFloor = 1.05;

  /// The LPT rebalance step on its own: given any placement, rebalance the
  /// X% most over/under-loaded ranks. Exposed for tests and ablations.
  static Placement rebalance(std::span<const double> costs,
                             const Placement& base, std::int32_t nranks,
                             double x_percent);

  /// Same step through caller-owned output and scratch (identical result;
  /// the incremental engine's per-candidate path, which reuses both
  /// across regrid epochs instead of reallocating). A non-null `pool`
  /// runs the rank-order and block-order sorts in parallel; both are
  /// strict total orders, so the output bytes never depend on the pool.
  static void rebalance_into(std::span<const double> costs,
                             const Placement& base, std::int32_t nranks,
                             double x_percent, Placement& out,
                             RebalanceScratch& scratch,
                             ThreadPool* pool = nullptr);

 private:
  double x_percent_;
  std::int32_t chunk_ranks_;
};

}  // namespace amr
