#include "amr/placement/graphcut.hpp"

#include <algorithm>

#include "amr/common/check.hpp"

namespace amr {

GraphCutPolicy::GraphCutPolicy(const AmrMesh& mesh, Options options)
    : mesh_(mesh), options_(options) {
  AMR_CHECK(options_.balance_tolerance >= 1.0);
}

std::int64_t edge_cut_bytes(const AmrMesh& mesh, const Placement& placement,
                            const MessageSizeModel& sizes) {
  AMR_CHECK(placement.size() == mesh.size());
  std::int64_t cut = 0;
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < lists.size(); ++b) {
    for (const Neighbor& n : lists[b]) {
      if (placement[b] != placement[static_cast<std::size_t>(n.index)])
        cut += sizes.bytes(n.kind);
    }
  }
  return cut;
}

Placement GraphCutPolicy::place(std::span<const double> costs,
                                std::int32_t nranks) const {
  AMR_CHECK(costs.size() == mesh_.size());
  AMR_CHECK(nranks > 0);
  const std::size_t n = costs.size();
  const auto& lists = mesh_.neighbor_lists();

  double total = 0.0;
  for (const double c : costs) total += c;
  const double target = total / static_cast<double>(nranks);
  const double cap = target * options_.balance_tolerance;

  Placement placement(n, 0);
  std::vector<double> loads(static_cast<std::size_t>(nranks), 0.0);

  // Phase 1: contiguous cost-balanced initial partition along the SFC —
  // the standard multilevel-partitioner trick of starting from a good
  // geometric seed so refinement only has to polish boundaries. Cuts are
  // placed at cumulative-cost boundaries (rank k ends at (k+1)·total/r)
  // so rounding drift cannot pile leftovers onto the last rank.
  {
    std::int32_t rank = 0;
    double acc = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const double boundary = static_cast<double>(rank + 1) * target;
      if (rank + 1 < nranks && acc >= boundary) ++rank;
      placement[b] = rank;
      loads[static_cast<std::size_t>(rank)] += costs[b];
      acc += costs[b];
    }
  }

  // Phase 2: KL-style boundary refinement. Move a boundary block to the
  // adjacent rank with the largest edge-cut gain, if balance permits.
  for (int sweep = 0; sweep < options_.refinement_sweeps; ++sweep) {
    bool moved = false;
    for (std::size_t b = 0; b < n; ++b) {
      const std::int32_t from = placement[b];
      // Connection weight per adjacent rank.
      std::int64_t internal = 0;
      std::int64_t best_external = 0;
      std::int32_t best_rank = -1;
      // Small local accumulation over the neighbor list (<= 26ish).
      for (const Neighbor& nb : lists[b]) {
        const std::int32_t r =
            placement[static_cast<std::size_t>(nb.index)];
        const std::int64_t w = options_.edge_weights.bytes(nb.kind);
        if (r == from) {
          internal += w;
          continue;
        }
        std::int64_t to_r = w;
        for (const Neighbor& other : lists[b]) {
          if (other.index != nb.index &&
              placement[static_cast<std::size_t>(other.index)] == r)
            to_r += options_.edge_weights.bytes(other.kind);
        }
        if (to_r > best_external) {
          best_external = to_r;
          best_rank = r;
        }
      }
      if (best_rank < 0 || best_external <= internal) continue;
      const auto fi = static_cast<std::size_t>(from);
      const auto ti = static_cast<std::size_t>(best_rank);
      if (loads[ti] + costs[b] > cap) continue;
      if (loads[fi] - costs[b] < 0.0) continue;
      placement[b] = best_rank;
      loads[fi] -= costs[b];
      loads[ti] += costs[b];
      moved = true;
    }
    if (!moved) break;
  }
  return placement;
}

}  // namespace amr
