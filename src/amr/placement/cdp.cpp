#include "amr/placement/cdp.hpp"

#include <algorithm>
#include <limits>

#include "amr/common/check.hpp"

namespace amr {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> prefix_sums(std::span<const double> costs) {
  std::vector<double> pre(costs.size() + 1, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i)
    pre[i + 1] = pre[i] + costs[i];
  return pre;
}

/// Paper's restricted DP: exactly `rem` segments of size ceil and
/// (r - rem) of size floor. State: (segments placed k, ceil segments used
/// j); value: min over orderings of the max segment cost. O(r·rem) time,
/// O(r·rem) choice bytes, two rolling rows of values.
std::vector<std::int32_t> restricted_sizes(std::span<const double> costs,
                                           std::int32_t nranks) {
  const auto n = static_cast<std::int64_t>(costs.size());
  const auto r = static_cast<std::int64_t>(nranks);
  const std::int64_t fl = n / r;
  const std::int64_t rem = n % r;  // segments of size fl+1

  const auto pre = prefix_sums(costs);
  const std::int64_t jdim = rem + 1;
  AMR_CHECK_MSG(r * jdim <= (1LL << 27),
                "restricted CDP state too large; use ChunkedCdpPolicy");

  std::vector<double> prev(static_cast<std::size_t>(jdim), kInf);
  std::vector<double> cur(static_cast<std::size_t>(jdim), kInf);
  // choice[k*jdim + j]: 1 if the k-th segment (1-based) was size fl+1.
  std::vector<std::uint8_t> choice(
      static_cast<std::size_t>((r + 1) * jdim), 0);
  prev[0] = 0.0;

  for (std::int64_t k = 1; k <= r; ++k) {
    const std::int64_t j_lo = std::max<std::int64_t>(0, rem - (r - k));
    const std::int64_t j_hi = std::min<std::int64_t>(k, rem);
    std::fill(cur.begin(), cur.end(), kInf);
    for (std::int64_t j = j_lo; j <= j_hi; ++j) {
      const std::int64_t end = (k - j) * fl + j * (fl + 1);
      // Last segment size fl (from state j) or fl+1 (from state j-1).
      double best = kInf;
      std::uint8_t pick = 0;
      if (prev[static_cast<std::size_t>(j)] < kInf) {
        const double seg = pre[static_cast<std::size_t>(end)] -
                           pre[static_cast<std::size_t>(end - fl)];
        best = std::max(prev[static_cast<std::size_t>(j)], seg);
      }
      if (j > 0 && prev[static_cast<std::size_t>(j - 1)] < kInf) {
        const double seg = pre[static_cast<std::size_t>(end)] -
                           pre[static_cast<std::size_t>(end - fl - 1)];
        const double cand =
            std::max(prev[static_cast<std::size_t>(j - 1)], seg);
        if (cand < best) {
          best = cand;
          pick = 1;
        }
      }
      cur[static_cast<std::size_t>(j)] = best;
      choice[static_cast<std::size_t>(k * jdim + j)] = pick;
    }
    std::swap(prev, cur);
  }
  AMR_CHECK(prev[static_cast<std::size_t>(rem)] < kInf);

  // Backtrack segment sizes.
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(r));
  std::int64_t j = rem;
  for (std::int64_t k = r; k >= 1; --k) {
    const std::uint8_t pick =
        choice[static_cast<std::size_t>(k * jdim + j)];
    sizes[static_cast<std::size_t>(k - 1)] =
        static_cast<std::int32_t>(fl + pick);
    j -= pick;
  }
  AMR_CHECK(j == 0);
  return sizes;
}

/// Textbook DP over arbitrary segment sizes:
/// DP[i][k] = min_j max(DP[j][k-1], W[i]-W[j]).
std::vector<std::int32_t> general_sizes(std::span<const double> costs,
                                        std::int32_t nranks) {
  const auto n = static_cast<std::int64_t>(costs.size());
  const auto r = static_cast<std::int64_t>(nranks);
  AMR_CHECK_MSG(n * n * r <= (1LL << 33),
                "general CDP is O(n^2 r); instance too large");
  const auto pre = prefix_sums(costs);

  std::vector<double> prev(static_cast<std::size_t>(n + 1), kInf);
  std::vector<double> cur(static_cast<std::size_t>(n + 1), kInf);
  std::vector<std::int32_t> from(
      static_cast<std::size_t>((r + 1) * (n + 1)), -1);
  prev[0] = 0.0;

  for (std::int64_t k = 1; k <= r; ++k) {
    std::fill(cur.begin(), cur.end(), kInf);
    cur[0] = 0.0;  // zero blocks on k ranks is legal (empty segments)
    from[static_cast<std::size_t>(k * (n + 1))] = 0;
    for (std::int64_t i = 1; i <= n; ++i) {
      double best = kInf;
      std::int32_t arg = -1;
      for (std::int64_t j = 0; j <= i; ++j) {
        if (prev[static_cast<std::size_t>(j)] == kInf) continue;
        const double seg = pre[static_cast<std::size_t>(i)] -
                           pre[static_cast<std::size_t>(j)];
        const double cand =
            std::max(prev[static_cast<std::size_t>(j)], seg);
        if (cand < best) {
          best = cand;
          arg = static_cast<std::int32_t>(j);
        }
      }
      cur[static_cast<std::size_t>(i)] = best;
      from[static_cast<std::size_t>(k * (n + 1) + i)] = arg;
    }
    std::swap(prev, cur);
  }

  std::vector<std::int32_t> sizes(static_cast<std::size_t>(r));
  std::int64_t i = n;
  for (std::int64_t k = r; k >= 1; --k) {
    const std::int32_t j =
        from[static_cast<std::size_t>(k * (n + 1) + i)];
    AMR_CHECK(j >= 0);
    sizes[static_cast<std::size_t>(k - 1)] =
        static_cast<std::int32_t>(i - j);
    i = j;
  }
  AMR_CHECK(i == 0);
  return sizes;
}

/// Greedy feasibility: minimum number of segments with sum <= cap.
/// Returns nranks+1 if any single block exceeds cap.
std::int64_t segments_needed(std::span<const double> costs, double cap,
                             std::int64_t limit) {
  std::int64_t segs = 1;
  double acc = 0.0;
  for (const double c : costs) {
    if (c > cap) return limit + 1;
    if (acc + c > cap) {
      if (++segs > limit) return limit + 1;
      acc = c;
    } else {
      acc += c;
    }
  }
  return segs;
}

std::vector<std::int32_t> binary_search_sizes(std::span<const double> costs,
                                              std::int32_t nranks) {
  const auto r = static_cast<std::int64_t>(nranks);
  double lo = 0.0;
  double hi = 0.0;
  for (const double c : costs) {
    lo = std::max(lo, c);
    hi += c;
  }
  if (costs.empty()) return std::vector<std::int32_t>(
      static_cast<std::size_t>(r), 0);
  for (int iter = 0; iter < 100 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (segments_needed(costs, mid, r) <= r)
      hi = mid;
    else
      lo = mid;
  }
  // Extract segments at cap = hi (feasible by construction).
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(r), 0);
  std::size_t seg = 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (acc + costs[i] > hi && sizes[seg] > 0) {
      ++seg;
      AMR_CHECK(seg < sizes.size());
      acc = 0.0;
    }
    acc += costs[i];
    ++sizes[seg];
  }
  return sizes;
}

}  // namespace

std::string CdpPolicy::name() const {
  switch (mode_) {
    case CdpMode::kRestricted: return "cdp";
    case CdpMode::kGeneral: return "cdp-general";
    case CdpMode::kBinarySearch: return "cdp-bsearch";
  }
  return "cdp";
}

std::vector<std::int32_t> CdpPolicy::segment_sizes(
    std::span<const double> costs, std::int32_t nranks) const {
  AMR_CHECK(nranks > 0);
  switch (mode_) {
    case CdpMode::kRestricted: return restricted_sizes(costs, nranks);
    case CdpMode::kGeneral: return general_sizes(costs, nranks);
    case CdpMode::kBinarySearch: return binary_search_sizes(costs, nranks);
  }
  return {};
}

Placement CdpPolicy::place(std::span<const double> costs,
                           std::int32_t nranks) const {
  const auto sizes = segment_sizes(costs, nranks);
  return segments_to_placement(sizes, costs.size());
}

Placement segments_to_placement(std::span<const std::int32_t> sizes,
                                std::size_t num_blocks) {
  Placement out;
  out.reserve(num_blocks);
  for (std::size_t rank = 0; rank < sizes.size(); ++rank)
    for (std::int32_t i = 0; i < sizes[rank]; ++i)
      out.push_back(static_cast<std::int32_t>(rank));
  AMR_CHECK_MSG(out.size() == num_blocks,
                "segment sizes do not cover all blocks");
  return out;
}

double segments_makespan(std::span<const double> costs,
                         std::span<const std::int32_t> sizes) {
  double best = 0.0;
  std::size_t at = 0;
  for (const std::int32_t s : sizes) {
    double acc = 0.0;
    for (std::int32_t i = 0; i < s; ++i) acc += costs[at++];
    best = std::max(best, acc);
  }
  AMR_CHECK(at == costs.size());
  return best;
}

}  // namespace amr
