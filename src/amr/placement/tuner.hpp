// Auto-X tuner: online step-time surrogate with measured fallback.
//
// The paper hand-picks CPLX's cluster size X per scale (Lesson 5: the
// locality/balance trade is empirical). This tuner closes the loop the
// way the AMS executor pattern does — a cheap surrogate answers when it
// is trustworthy, measurement takes over when it is not:
//
//   surrogate  — step_time ≈ mean_load · (w0 + w1·imbalance +
//                w2·remote_share + resid[X]), fit online by 3-feature
//                recursive least squares seeded with the physics prior
//                w = (0,1,0) (predicted = makespan), so the very first
//                decision is already the makespan-vs-locality argmin and
//                no cold probing phase is needed. resid[X] is a
//                per-candidate EWMA of the arm's own measured offset —
//                the bias the shared features cannot express (e.g. a
//                scattered placement's robustness to cost drift).
//   explore    — every Nth decision measures the least-recently-chosen
//                candidate within explore_margin of the best corrected
//                score, instead of the argmin: the error signal only
//                sees chosen arms, so exploit-only tuning would be
//                accurate in-sample yet blind to every counterfactual;
//                the margin keeps the tax off arms already measured far
//                from the optimum.
//   fallback   — an EWMA of relative prediction error above
//                error_threshold flips the tuner into measured mode: it
//                probes each candidate X for one regrid epoch, locks the
//                measured argmin, resets the model to the prior, and
//                returns to surrogate mode.
//
// Determinism contract: every input is simulated telemetry (mean step
// time in simulated ns, placement features from the estimated costs) and
// every decision is a pure function of TunerState — never host
// wall-clock. The evaluation budget uses a MODELED per-candidate cost
// (eval_ns_per_block · blocks), so trimming is replay-stable too.
// TunerState is serialized in the snapshot's "tuner" section (format v5):
// a restored run makes byte-identical decisions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amr/placement/engine.hpp"

namespace amr {

/// Fixed serialization width of the per-candidate arrays in TunerState.
inline constexpr std::int32_t kTunerMaxCandidates = 8;

struct TunerConfig {
  /// Candidate X values, ascending; at most kTunerMaxCandidates.
  std::vector<double> candidates{0.0, 25.0, 50.0, 75.0, 100.0};
  /// Placement budget (the paper's 50 ms): bounds how many candidates are
  /// evaluated per epoch under the modeled cost below.
  double budget_ms = 50.0;
  /// Modeled evaluation cost per candidate per block. Deliberately a
  /// conservative constant rather than measured wall-clock: the budget
  /// must be a pure function of problem size or replay byte-identity
  /// dies.
  double eval_ns_per_block = 100.0;
  /// Relative prediction-error EWMA that trips the measured fallback.
  /// Sized above the surrogate's steady-state error on drifting
  /// workloads (~0.3-0.4: step time includes comm/sync terms the three
  /// features only approximate) so only gross model breakdown probes.
  double error_threshold = 0.5;
  double error_alpha = 0.3;      ///< EWMA smoothing for the error signal
  double measured_alpha = 0.5;   ///< EWMA smoothing for per-candidate times
  /// Observations RLS gets before the error EWMA may trip the fallback.
  /// The physics prior underestimates by the constant comm/sync share;
  /// w0 absorbs it within a couple of samples, and tripping on the first
  /// — guaranteed-large — residual would lock the tuner into a probe
  /// cycle that never lets the surrogate learn.
  std::int32_t error_warmup = 4;
  /// Every Nth decision measures the least-recently-chosen candidate
  /// instead of the predicted argmin (0 disables). The error EWMA only
  /// sees the chosen arm, so an exploit-only surrogate can be accurate
  /// in-sample yet wrong about every counterfactual — systematically so
  /// when a candidate's advantage (e.g. robustness to cost drift the
  /// stale estimates cannot express) is invisible to the features.
  /// Deterministic: keyed on the decision counter, never on randomness.
  std::int32_t explore_every = 8;
  /// Exploration only considers candidates whose feature-only prediction
  /// is within this factor of the best — measuring an arm the features
  /// already price far off the optimum is a full-epoch tax with no
  /// decision value. Judged without residuals, so a stale residual can
  /// never exclude an arm from re-measurement.
  double explore_margin = 1.12;
  /// EWMA smoothing for the per-candidate residual corrections. Slow
  /// enough that one noisy epoch cannot eject the best arm from the
  /// argmin for several epochs.
  double resid_alpha = 0.3;
  /// Per-observation decay applied to every arm's residual (1 = off,
  /// the default): unvisited arms regress toward the shared model,
  /// bounding how long a stale correction can misprice an arm between
  /// exploration visits. Off by default because feature drift already
  /// re-admits exiled arms (admission is re-scored every epoch) and the
  /// decay measurably erodes the corrections that keep the argmin
  /// honest.
  double resid_decay = 1.0;
};

/// Everything the next decision depends on — serialized so restored runs
/// decide identically (snapshot v5 "tuner" section).
struct TunerState {
  std::int32_t mode = 0;        ///< 0 = surrogate, 1 = measured probing
  std::int32_t probe_at = 0;    ///< next candidate index to probe (mode 1)
  std::int32_t last_choice = -1;
  bool pending = false;         ///< a decision awaits its measured epoch
  double last_predicted = 0.0;  ///< predicted step ns of the last choice
  double last_scale = 0.0;      ///< mean-load ns at decision time
  double last_feat[3] = {0.0, 0.0, 0.0};
  double err_ewma = 0.0;
  bool have_err = false;
  std::int32_t err_samples = 0;  ///< observations since the last reset
  std::int64_t decisions = 0;
  std::int64_t fallback_epochs = 0;  ///< decisions taken in measured mode
  std::int64_t model_resets = 0;     ///< fallback round-trips completed
  double w[3] = {0.0, 0.0, 0.0};     ///< surrogate weights
  double P[9] = {0.0};               ///< RLS inverse-covariance (row-major)
  double cand_step_ns[kTunerMaxCandidates] = {0.0};
  bool cand_have[kTunerMaxCandidates] = {false};
  /// Per-candidate residual correction, in y-units (measured/scale minus
  /// the shared model): candidate-specific bias the three features can't
  /// express, learned on the arm's own (explored or chosen) epochs.
  double resid[kTunerMaxCandidates] = {0.0};
  /// Decision counter at which each candidate was last chosen (-1 =
  /// never) — the exploration recency signal.
  std::int64_t last_chosen_at[kTunerMaxCandidates] = {-1, -1, -1, -1,
                                                      -1, -1, -1, -1};

  TunerState() { reset_model(); }
  /// Re-seed the surrogate with the physics prior (predicted = makespan).
  void reset_model();
};

class AutoXTuner {
 public:
  explicit AutoXTuner(TunerConfig cfg);

  const TunerConfig& config() const { return cfg_; }

  /// Candidate indices to evaluate this epoch, in ascending order,
  /// trimmed to the modeled budget (never below one). In measured mode
  /// only the probe target is evaluated — probing is also what keeps the
  /// fallback cheap.
  void budget_candidates(const TunerState& st, std::size_t nblocks,
                         std::vector<std::int32_t>& out) const;

  struct Decision {
    std::int32_t slot = 0;       ///< index into the evaluated span
    std::int32_t candidate = 0;  ///< index into cfg.candidates
    double predicted_ns = 0.0;
    std::int32_t mode = 0;       ///< mode the decision was taken in
  };

  /// Pick a candidate from the evaluated slots (indices[i] names the
  /// candidate evals[i] scored). Argmin scans slots in index order with
  /// strict improvement, so ties resolve to the lowest candidate index.
  Decision choose(TunerState& st, std::span<const std::int32_t> indices,
                  std::span<const CandidateEval> evals) const;

  /// Feed the measured mean step time (simulated ns) of the epoch that
  /// ran the pending decision: updates the model, the error EWMA, the
  /// per-candidate measured table, and the mode transitions.
  void observe(TunerState& st, double measured_step_ns) const;

  /// Surrogate prediction for one candidate at the given mean-load scale.
  static double predict(const TunerState& st, const CandidateEval& ce,
                        double scale);

  /// predict() plus the candidate's learned residual correction — the
  /// quantity mode-0 decisions minimize.
  static double scored(const TunerState& st, const CandidateEval& ce,
                       double scale, std::int32_t cand);

 private:
  TunerConfig cfg_;
};

}  // namespace amr
