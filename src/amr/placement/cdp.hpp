// CDP: Contiguous-DP placement (paper §V-C).
//
// Partitions blocks (in SFC order) into r contiguous segments minimizing
// the maximum segment cost, preserving exactly the locality structure of
// the baseline while balancing measured load. Three modes:
//
//  kRestricted — the paper's O(n·r) optimization: segment sizes limited to
//    floor(n/r) and ceil(n/r). Exactly (n mod r) segments get the larger
//    size, so the DP state is (ranks placed, large segments used). This is
//    the production CDP.
//  kGeneral — the textbook O(n²·r) DP over arbitrary segment sizes;
//    reference implementation for ablation (bench_cdp_ablation) and tests.
//  kBinarySearch — exact arbitrary-size contiguous partition via binary
//    search on the makespan with a greedy feasibility check, O(n·log).
//    Used to quantify what the size restriction costs.
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

enum class CdpMode { kRestricted, kGeneral, kBinarySearch };

class CdpPolicy final : public PlacementPolicy {
 public:
  explicit CdpPolicy(CdpMode mode = CdpMode::kRestricted) : mode_(mode) {}

  std::string name() const override;
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  /// Segment boundaries instead of a block->rank map: `sizes[k]` is the
  /// number of blocks assigned to rank k. Exposed for ChunkedCdp and
  /// tests.
  std::vector<std::int32_t> segment_sizes(std::span<const double> costs,
                                          std::int32_t nranks) const;

 private:
  CdpMode mode_;
};

/// Expand contiguous segment sizes into a block->rank placement.
Placement segments_to_placement(std::span<const std::int32_t> sizes,
                                std::size_t num_blocks);

/// Max segment sum for given contiguous segment sizes.
double segments_makespan(std::span<const double> costs,
                         std::span<const std::int32_t> sizes);

}  // namespace amr
