#include "amr/placement/cplx.hpp"

#include <algorithm>
#include <cmath>

#include "amr/common/check.hpp"
#include "amr/par/parallel_sort.hpp"
#include "amr/placement/cdp_cache.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/lpt.hpp"

namespace amr {

CplxPolicy::CplxPolicy(double x_percent, std::int32_t chunk_ranks)
    : x_percent_(x_percent), chunk_ranks_(chunk_ranks) {
  AMR_CHECK(x_percent >= 0.0 && x_percent <= 100.0);
}

std::string CplxPolicy::name() const {
  return "cpl" + std::to_string(static_cast<int>(std::lround(x_percent_)));
}

Placement CplxPolicy::rebalance(std::span<const double> costs,
                                const Placement& base, std::int32_t nranks,
                                double x_percent) {
  Placement out;
  RebalanceScratch scratch;
  rebalance_into(costs, base, nranks, x_percent, out, scratch);
  return out;
}

namespace {

/// Key-descending, id-ascending: the shared order of both rebalance
/// sorts. Unique for distinct ids, so any correct sort (sequential or
/// parallel) yields the same sequence.
bool key_before(const RebalanceScratch::Key& a,
                const RebalanceScratch::Key& b) {
  return a.key != b.key ? a.key > b.key : a.id < b.id;
}

}  // namespace

void CplxPolicy::rebalance_into(std::span<const double> costs,
                                const Placement& base, std::int32_t nranks,
                                double x_percent, Placement& out,
                                RebalanceScratch& scratch,
                                ThreadPool* pool) {
  out = base;
  if (x_percent <= 0.0 || nranks < 2) return;

  auto selected_count = static_cast<std::int32_t>(
      std::lround(x_percent / 100.0 * static_cast<double>(nranks)));
  // Rebalancing needs at least one source and one destination.
  selected_count = std::clamp(selected_count, 2, nranks);

  // Sort ranks by descending load (ties by rank id for determinism).
  // Accumulation order matches rank_loads exactly (ascending block id),
  // so the scratch path is bit-identical to the allocating one.
  auto& loads = scratch.loads;
  loads.assign(static_cast<std::size_t>(nranks), 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    AMR_CHECK(base[i] >= 0 && base[i] < nranks);
    loads[static_cast<std::size_t>(base[i])] += costs[i];
  }

  // Guard: when the contiguous placement is already balanced (flat cost
  // profiles, uniform default costs), breaking locality buys nothing —
  // LPT over near-equal loads would scatter blocks for free. Skip.
  {
    double max_load = 0.0;
    double sum = 0.0;
    for (const double l : loads) {
      max_load = std::max(max_load, l);
      sum += l;
    }
    const double mean = sum / static_cast<double>(nranks);
    if (mean <= 0.0 || max_load <= kRebalanceFloor * mean) return;
  }
  // Both sorts below run over packed (key, id) pairs: one contiguous
  // array instead of an id sort chasing a separate key vector, and a
  // shape parallel_sort can chunk. Same comparator as the historical
  // indirect sort, so the order — and the placement — is unchanged.
  auto& keys = scratch.keys;
  auto& order = scratch.order;
  keys.resize(static_cast<std::size_t>(nranks));
  for (std::size_t r = 0; r < keys.size(); ++r)
    keys[r] = {loads[r], static_cast<std::int32_t>(r)};
  parallel_sort(pool, keys, key_before);
  order.resize(keys.size());
  for (std::size_t r = 0; r < keys.size(); ++r) order[r] = keys[r].id;

  // X% of ranks, drawn from both ends: most-overloaded first.
  const std::int32_t from_top = (selected_count + 1) / 2;
  const std::int32_t from_bottom = selected_count / 2;
  auto& targets = scratch.targets;
  targets.clear();
  targets.reserve(static_cast<std::size_t>(selected_count));
  for (std::int32_t i = 0; i < from_top; ++i)
    targets.push_back(order[static_cast<std::size_t>(i)]);
  for (std::int32_t i = 0; i < from_bottom; ++i)
    targets.push_back(
        order[order.size() - 1 - static_cast<std::size_t>(i)]);
  std::sort(targets.begin(), targets.end());

  auto& is_target = scratch.is_target;
  is_target.assign(static_cast<std::size_t>(nranks), false);
  for (const std::int32_t r : targets)
    is_target[static_cast<std::size_t>(r)] = true;

  auto& moved_blocks = scratch.moved_blocks;
  moved_blocks.clear();
  for (std::size_t b = 0; b < base.size(); ++b)
    if (is_target[static_cast<std::size_t>(base[b])])
      moved_blocks.push_back(static_cast<std::int32_t>(b));
  if (moved_blocks.empty()) return;

  // LPT order (cost descending, id ascending), again via packed keys;
  // the greedy heap loop itself is inherently sequential.
  keys.resize(moved_blocks.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = {costs[static_cast<std::size_t>(moved_blocks[i])],
               moved_blocks[i]};
  parallel_sort(pool, keys, key_before);
  order.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = keys[i].id;
  LptPolicy::assign_sorted(costs, order, targets, out, scratch.lpt);
}

Placement CplxPolicy::place(std::span<const double> costs,
                            std::int32_t nranks) const {
  // The contiguous base split depends only on (costs, nranks, chunk) —
  // shared across every X and across repeat invocations on unchanged
  // costs, so a policy sweep pays for the CDP prefix-sum DP once.
  const Placement base = CdpSplitCache::instance().get_or_compute(
      costs, nranks, chunk_ranks_, [&] {
        const ChunkedCdpPolicy cdp(chunk_ranks_);
        return cdp.place(costs, nranks);
      });
  return rebalance(costs, base, nranks, x_percent_);
}

}  // namespace amr
