#include "amr/placement/cplx.hpp"

#include <algorithm>
#include <cmath>

#include "amr/common/check.hpp"
#include "amr/placement/cdp_cache.hpp"
#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/lpt.hpp"

namespace amr {

CplxPolicy::CplxPolicy(double x_percent, std::int32_t chunk_ranks)
    : x_percent_(x_percent), chunk_ranks_(chunk_ranks) {
  AMR_CHECK(x_percent >= 0.0 && x_percent <= 100.0);
}

std::string CplxPolicy::name() const {
  return "cpl" + std::to_string(static_cast<int>(std::lround(x_percent_)));
}

Placement CplxPolicy::rebalance(std::span<const double> costs,
                                const Placement& base, std::int32_t nranks,
                                double x_percent) {
  if (x_percent <= 0.0 || nranks < 2) return base;

  auto selected_count = static_cast<std::int32_t>(
      std::lround(x_percent / 100.0 * static_cast<double>(nranks)));
  // Rebalancing needs at least one source and one destination.
  selected_count = std::clamp(selected_count, 2, nranks);

  // Sort ranks by descending load (ties by rank id for determinism).
  const auto loads = rank_loads(costs, base, nranks);

  // Guard: when the contiguous placement is already balanced (flat cost
  // profiles, uniform default costs), breaking locality buys nothing —
  // LPT over near-equal loads would scatter blocks for free. Skip.
  {
    double max_load = 0.0;
    double sum = 0.0;
    for (const double l : loads) {
      max_load = std::max(max_load, l);
      sum += l;
    }
    const double mean = sum / static_cast<double>(nranks);
    if (mean <= 0.0 || max_load <= kRebalanceFloor * mean) return base;
  }
  std::vector<std::int32_t> order(static_cast<std::size_t>(nranks));
  for (std::size_t r = 0; r < order.size(); ++r)
    order[r] = static_cast<std::int32_t>(r);
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              const double la = loads[static_cast<std::size_t>(a)];
              const double lb = loads[static_cast<std::size_t>(b)];
              return la != lb ? la > lb : a < b;
            });

  // X% of ranks, drawn from both ends: most-overloaded first.
  const std::int32_t from_top = (selected_count + 1) / 2;
  const std::int32_t from_bottom = selected_count / 2;
  std::vector<std::int32_t> targets;
  targets.reserve(static_cast<std::size_t>(selected_count));
  for (std::int32_t i = 0; i < from_top; ++i)
    targets.push_back(order[static_cast<std::size_t>(i)]);
  for (std::int32_t i = 0; i < from_bottom; ++i)
    targets.push_back(
        order[order.size() - 1 - static_cast<std::size_t>(i)]);
  std::sort(targets.begin(), targets.end());

  std::vector<bool> is_target(static_cast<std::size_t>(nranks), false);
  for (const std::int32_t r : targets)
    is_target[static_cast<std::size_t>(r)] = true;

  std::vector<std::int32_t> moved_blocks;
  for (std::size_t b = 0; b < base.size(); ++b)
    if (is_target[static_cast<std::size_t>(base[b])])
      moved_blocks.push_back(static_cast<std::int32_t>(b));

  Placement out = base;
  if (!moved_blocks.empty())
    LptPolicy::assign_subset(costs, moved_blocks, targets, out);
  return out;
}

Placement CplxPolicy::place(std::span<const double> costs,
                            std::int32_t nranks) const {
  // The contiguous base split depends only on (costs, nranks, chunk) —
  // shared across every X and across repeat invocations on unchanged
  // costs, so a policy sweep pays for the CDP prefix-sum DP once.
  const Placement base = CdpSplitCache::instance().get_or_compute(
      costs, nranks, chunk_ranks_, [&] {
        const ChunkedCdpPolicy cdp(chunk_ranks_);
        return cdp.place(costs, nranks);
      });
  return rebalance(costs, base, nranks, x_percent_);
}

}  // namespace amr
