// Name-based policy factory, so benches and examples can select policies
// from the command line ("baseline", "lpt", "cdp", "cpl50", ...).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "amr/placement/policy.hpp"

namespace amr {

/// Create a policy by name. Recognized: "baseline", "lpt", "cdp",
/// "cdp-general", "cdp-bsearch", "chunked-cdp" (optional "/<chunk>"),
/// and "cplN" for N in 0..100. Throws std::invalid_argument otherwise.
PolicyPtr make_policy(std::string_view name);

/// The policy line-up evaluated in the paper's Fig 6.
std::vector<std::string> evaluation_policy_names();

}  // namespace amr
