#include "amr/placement/metrics.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/common/stats.hpp"

namespace amr {

LoadMetrics load_metrics(std::span<const double> costs,
                         const Placement& placement, std::int32_t nranks) {
  const auto loads = rank_loads(costs, placement, nranks);
  RunningStats s;
  for (const double l : loads) s.add(l);
  LoadMetrics m;
  m.makespan = s.max();
  m.mean_load = s.mean();
  m.imbalance = s.mean() > 0.0 ? s.max() / s.mean() : 0.0;
  m.stddev = s.stddev();
  return m;
}

CommMetrics comm_metrics(const AmrMesh& mesh, const Placement& placement,
                         const ClusterTopology& topo,
                         const MessageSizeModel& sizes) {
  AMR_CHECK(placement.size() == mesh.size());
  CommMetrics m;
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < lists.size(); ++b) {
    const std::int32_t src = placement[b];
    for (const Neighbor& n : lists[b]) {
      const std::int32_t dst =
          placement[static_cast<std::size_t>(n.index)];
      const std::int64_t bytes = sizes.bytes(n.kind);
      if (src == dst) {
        ++m.msgs_intra_rank;
        m.bytes_intra_rank += bytes;
      } else if (topo.same_node(src, dst)) {
        ++m.msgs_intra_node;
        m.bytes_intra_node += bytes;
      } else {
        ++m.msgs_inter_node;
        m.bytes_inter_node += bytes;
      }
    }
  }
  return m;
}

double contiguity_fraction(const Placement& placement) {
  if (placement.size() < 2) return 1.0;
  std::int64_t same = 0;
  for (std::size_t i = 0; i + 1 < placement.size(); ++i)
    if (placement[i] == placement[i + 1] ||
        placement[i] + 1 == placement[i + 1])
      ++same;
  return static_cast<double>(same) /
         static_cast<double>(placement.size() - 1);
}

std::int64_t moved_blocks(const Placement& before, const Placement& after) {
  AMR_CHECK(before.size() == after.size());
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) ++moved;
  return moved;
}

}  // namespace amr
