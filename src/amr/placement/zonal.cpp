#include "amr/placement/zonal.hpp"

#include <algorithm>

#include "amr/common/check.hpp"

namespace amr {

ZonalPolicy::ZonalPolicy(PolicyPtr inner, std::int32_t zone_ranks)
    : inner_(std::move(inner)), zone_ranks_(zone_ranks) {
  AMR_CHECK(inner_ != nullptr);
  AMR_CHECK(zone_ranks_ > 0);
}

std::string ZonalPolicy::name() const {
  return "zonal/" + std::to_string(zone_ranks_) + "/" + inner_->name();
}

Placement ZonalPolicy::place(std::span<const double> costs,
                             std::int32_t nranks) const {
  if (nranks <= zone_ranks_) return inner_->place(costs, nranks);

  double total = 0.0;
  for (const double c : costs) total += c;

  Placement out(costs.size(), 0);
  std::size_t block_at = 0;
  std::int32_t rank_at = 0;
  double cost_seen = 0.0;
  while (rank_at < nranks) {
    const std::int32_t zone_size = std::min(zone_ranks_, nranks - rank_at);
    std::size_t block_end = costs.size();
    if (rank_at + zone_size < nranks) {
      // Cut the SFC range at the zone's proportional cost share.
      const double target = total *
                            static_cast<double>(rank_at + zone_size) /
                            static_cast<double>(nranks);
      block_end = block_at;
      double acc = cost_seen;
      while (block_end < costs.size() &&
             acc + costs[block_end] <= target) {
        acc += costs[block_end];
        ++block_end;
      }
      cost_seen = acc;
    }
    const auto sub = costs.subspan(block_at, block_end - block_at);
    const Placement local = inner_->place(sub, zone_size);
    for (std::size_t i = 0; i < local.size(); ++i)
      out[block_at + i] = rank_at + local[i];
    block_at = block_end;
    rank_at += zone_size;
  }
  AMR_CHECK(block_at == costs.size());
  return out;
}

}  // namespace amr
