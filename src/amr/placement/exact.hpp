// Exact makespan minimization by branch-and-bound.
//
// Plays the role of the paper's commercial ILP reference (§V-B): certify
// on tractable instances that LPT is at or near the optimum. Practical up
// to roughly 24 blocks / 8 ranks; the node limit makes larger calls
// degrade to "best found, not proven" instead of hanging.
#pragma once

#include <cstdint>

#include "amr/placement/policy.hpp"

namespace amr {

struct ExactResult {
  double makespan = 0.0;
  Placement placement;
  std::uint64_t nodes_explored = 0;
  bool proven_optimal = false;
};

/// Branch-and-bound exact solver. Blocks are explored in descending cost
/// order; branches assign the next block to each distinct-load rank
/// (symmetry pruning), bounded by the incumbent and the mean-load lower
/// bound.
ExactResult exact_makespan(std::span<const double> costs,
                           std::int32_t nranks,
                           std::uint64_t node_limit = 20'000'000);

}  // namespace amr
