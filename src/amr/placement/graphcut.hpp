// Graph-partitioner placement baseline (the parMETIS/Zoltan stand-in of
// paper §VIII).
//
// Models communication as weighted edge cuts over the block adjacency
// graph and minimizes them under a load-balance constraint: greedy
// BFS region growing to a per-rank load target, followed by
// Kernighan-Lin-style boundary refinement sweeps. The paper's finding —
// reproduced by bench_edgecut — is that edge cuts correlate poorly with
// measured communication overhead, which is why CPLX optimizes measured
// runtime dimensions instead.
//
// Unlike the SFC-based policies, this needs the mesh topology, so it
// binds a mesh reference at construction and must be rebuilt per mesh.
#pragma once

#include "amr/mesh/mesh.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/policy.hpp"

namespace amr {

struct GraphCutOptions {
  double balance_tolerance = 1.10;  ///< max rank load / mean load
  int refinement_sweeps = 4;
  MessageSizeModel edge_weights{};
};

class GraphCutPolicy final : public PlacementPolicy {
 public:
  using Options = GraphCutOptions;

  explicit GraphCutPolicy(const AmrMesh& mesh, Options options = {});

  std::string name() const override { return "graphcut"; }
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

 private:
  const AmrMesh& mesh_;
  Options options_;
};

/// Total weight of directed edges crossing rank boundaries (the quantity
/// graph partitioners minimize).
std::int64_t edge_cut_bytes(const AmrMesh& mesh, const Placement& placement,
                            const MessageSizeModel& sizes = {});

}  // namespace amr
