// Placement policy interface.
//
// A placement policy maps blocks (identified by their SFC position, with a
// measured per-block compute cost) to ranks. This mirrors the paper's
// augmented Parthenon infrastructure (§V-A3): cost hooks populated from
// telemetry, and arbitrary (non-contiguous) block-to-rank mappings.
//
// Policies are pure functions of (costs, nranks): they must be
// deterministic, and fast enough for AMR redistribution budgets
// (the paper targets < 50 ms per invocation).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace amr {

/// Block-to-rank assignment; index is the block's SFC ID.
using Placement = std::vector<std::int32_t>;

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Human-readable policy name ("baseline", "lpt", "cpl50", ...).
  virtual std::string name() const = 0;

  /// Compute a block->rank assignment. `costs` holds measured per-block
  /// compute costs in SFC order; every block must be assigned a rank in
  /// [0, nranks). Policies must accept n < nranks (some ranks empty).
  virtual Placement place(std::span<const double> costs,
                          std::int32_t nranks) const = 0;
};

using PolicyPtr = std::unique_ptr<PlacementPolicy>;

/// Per-rank total load under an assignment.
std::vector<double> rank_loads(std::span<const double> costs,
                               const Placement& placement,
                               std::int32_t nranks);

/// Validate that a placement covers all blocks with ranks in range.
bool placement_valid(const Placement& placement, std::size_t num_blocks,
                     std::int32_t nranks);

}  // namespace amr
