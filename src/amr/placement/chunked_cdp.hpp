// Hierarchically chunked CDP (paper §V-C, "Scaling CDP With Chunking").
//
// Divides the SFC-ordered blocks into contiguous chunks of approximately
// equal total cost, assigns each chunk a contiguous group of ranks, and
// runs restricted CDP independently per chunk. At 4096 ranks with
// chunk_ranks=512 this yields 8 independent sub-problems (parallelizable
// in a real deployment; sequential here, but the complexity reduction is
// what matters for the placement-overhead budget).
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

/// One contiguous chunk of the SFC block range paired with its contiguous
/// rank group — the unit both the chunked solve and the incremental
/// placement engine's per-chunk memo operate on.
struct ChunkSpan {
  std::size_t block_begin = 0;
  std::size_t block_end = 0;  ///< exclusive
  std::int32_t rank_begin = 0;
  std::int32_t group_ranks = 0;
};

/// The canonical chunk decomposition: cut the block range at the rank
/// groups' proportional cost shares via one sequential prefix-sum scan.
/// ChunkedCdpPolicy::place and PlacementEngine both call this, so their
/// chunk boundaries are identical by construction — the engine's
/// byte-identity contract rests on sharing this exact scan, because any
/// cost change shifts `total` and with it every proportional target.
std::vector<ChunkSpan> chunk_spans(std::span<const double> costs,
                                   std::int32_t nranks,
                                   std::int32_t chunk_ranks);

class ChunkedCdpPolicy final : public PlacementPolicy {
 public:
  explicit ChunkedCdpPolicy(std::int32_t chunk_ranks = 512)
      : chunk_ranks_(chunk_ranks) {}

  std::string name() const override;
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  std::int32_t chunk_ranks() const { return chunk_ranks_; }

 private:
  std::int32_t chunk_ranks_;
};

}  // namespace amr
