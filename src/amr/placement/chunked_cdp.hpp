// Hierarchically chunked CDP (paper §V-C, "Scaling CDP With Chunking").
//
// Divides the SFC-ordered blocks into contiguous chunks of approximately
// equal total cost, assigns each chunk a contiguous group of ranks, and
// runs restricted CDP independently per chunk. At 4096 ranks with
// chunk_ranks=512 this yields 8 independent sub-problems (parallelizable
// in a real deployment; sequential here, but the complexity reduction is
// what matters for the placement-overhead budget).
#pragma once

#include "amr/placement/policy.hpp"

namespace amr {

class ChunkedCdpPolicy final : public PlacementPolicy {
 public:
  explicit ChunkedCdpPolicy(std::int32_t chunk_ranks = 512)
      : chunk_ranks_(chunk_ranks) {}

  std::string name() const override;
  Placement place(std::span<const double> costs,
                  std::int32_t nranks) const override;

  std::int32_t chunk_ranks() const { return chunk_ranks_; }

 private:
  std::int32_t chunk_ranks_;
};

}  // namespace amr
