// Incremental parallel placement engine (DESIGN.md "Placement engine and
// auto-X tuning").
//
// The regrid-epoch placement phase was the last serial hot path: every
// epoch re-ran the chunked-CDP prefix-sum DP over the full block range
// and rebuilt the LPT rank heap from scratch, even when most SFC
// segments' costs were remap-carried unchanged. This engine closes that
// gap three ways:
//
//   1. Delta placement — the canonical chunk boundaries are recomputed
//      with the exact scan ChunkedCdpPolicy uses (chunk_spans), then each
//      chunk's restricted-CDP solve is reused from the previous epoch
//      when its sub-cost vector is unchanged (full content comparison,
//      never just a hash). Every reused piece is an identical-input copy
//      of a pure function's output, so the incremental result is
//      byte-identical to a full rebuild by construction — ctest
//      placement_tuning_determinism and the fuzz test in
//      tests/placement/engine_test.cpp hold it to that.
//   2. Parallel evaluation — chunks that do need re-solving, and the
//      per-candidate-X rebalance + scoring passes, run concurrently on a
//      borrowed amr::par pool. Results land in index-addressed slots and
//      every reduction scans those slots in index order, so the output is
//      independent of thread count and interleaving.
//   3. Scratch reuse — one RebalanceScratch (rank loads, orderings, LPT
//      4-ary heap) per candidate slot survives across epochs, keyed on
//      the engine's lifetime rather than rebuilt per invocation.
//
// The engine is run-scoped (one per SimRuntime): its memo is equivalent
// to keying the global CdpSplitCache on the run's placement epoch, but
// cannot alias across serve tenants sharing the process.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amr/placement/chunked_cdp.hpp"
#include "amr/placement/cplx.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/policy.hpp"

namespace amr {

class ThreadPool;

/// Cumulative reuse counters — diagnostics for traces and the placement
/// telemetry table; never part of simulated results.
struct PlacementEngineStats {
  std::int64_t epochs = 0;         ///< base_split invocations
  std::int64_t chunks_total = 0;
  std::int64_t chunks_reused = 0;  ///< chunk solves served from the memo
  std::int64_t base_reused = 0;    ///< whole-base fast path (epoch token)
  std::int64_t placements_reused = 0;  ///< whole-placement memo hits
  std::int64_t candidates_evaluated = 0;
};

/// One candidate X's placement plus the features the auto-X tuner scores:
/// load balance under the estimated costs and the inter-node share of the
/// boundary-exchange messages the placement would induce.
struct CandidateEval {
  double x_percent = 0.0;
  double makespan = 0.0;
  double mean_load = 0.0;
  double imbalance = 1.0;     ///< makespan / mean load (1.0 = perfect)
  double remote_share = 0.0;  ///< inter-node fraction of MPI messages
  Placement placement;
};

class PlacementEngine {
 public:
  PlacementEngine() = default;
  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  /// Run chunk solves and candidate evaluations on `pool` (borrowed; null
  /// keeps the engine sequential). Output bytes never depend on the pool
  /// or its size.
  void set_parallel(ThreadPool* pool) { pool_ = pool; }

  /// Incremental CPLX placement: delta chunked-CDP base + LPT rebalance,
  /// byte-identical to CplxPolicy(x_percent, chunk_ranks).place().
  /// `cost_epoch` is an opaque input-identity token: when it matches the
  /// previous invocation (same mesh version and cost provenance) the
  /// whole base is reused without even the content comparison.
  Placement place_cplx(std::span<const double> costs, std::int32_t nranks,
                       double x_percent, std::int32_t chunk_ranks,
                       std::uint64_t cost_epoch);

  /// Evaluate candidate X values concurrently over the shared base split.
  /// out[i] corresponds to xs[i]; slot order is the reduction order.
  void evaluate_candidates(std::span<const double> costs,
                           std::int32_t nranks, std::span<const double> xs,
                           std::int32_t chunk_ranks,
                           std::uint64_t cost_epoch, const AmrMesh& mesh,
                           const ClusterTopology& topo,
                           const MessageSizeModel& sizes,
                           std::vector<CandidateEval>& out);

  const PlacementEngineStats& stats() const { return stats_; }
  /// Chunk reuse of the most recent base_split (the telemetry row).
  std::int64_t last_chunks_total() const { return last_total_; }
  std::int64_t last_chunks_reused() const { return last_reused_; }

 private:
  /// Compute (or incrementally reuse) the chunked-CDP base split; the
  /// returned reference stays valid until the next engine call.
  const Placement& base_split(std::span<const double> costs,
                              std::int32_t nranks, std::int32_t chunk_ranks,
                              std::uint64_t cost_epoch);

  struct ChunkRecord {
    ChunkSpan span;
    std::vector<double> costs;  ///< sub-costs the solve was run on
    Placement local;            ///< chunk-local restricted-CDP assignment
  };

  ThreadPool* pool_ = nullptr;
  std::int32_t prev_nranks_ = -1;
  std::int32_t prev_chunk_ranks_ = -1;
  std::uint64_t prev_cost_epoch_ = 0;
  bool have_epoch_ = false;
  std::vector<ChunkRecord> chunks_;
  Placement base_;
  // Whole-placement memo: when every chunk was reused (cost content
  // unchanged) and the X matches, the previous rebalance output is the
  // answer — the remap-carried no-op-regrid epoch costs one comparison.
  Placement out_;
  double prev_x_ = -1.0;
  bool out_valid_ = false;
  std::vector<RebalanceScratch> scratch_;  ///< one per candidate slot
  PlacementEngineStats stats_;
  std::int64_t last_total_ = 0;
  std::int64_t last_reused_ = 0;
};

}  // namespace amr
