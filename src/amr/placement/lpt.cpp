#include "amr/placement/lpt.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/common/dary_heap.hpp"

namespace amr {

void LptPolicy::assign_subset(std::span<const double> costs,
                              std::span<const std::int32_t> block_ids,
                              std::span<const std::int32_t> target_ranks,
                              Placement& placement) {
  LptScratch scratch;
  assign_subset(costs, block_ids, target_ranks, placement, scratch);
}

void LptPolicy::assign_subset(std::span<const double> costs,
                              std::span<const std::int32_t> block_ids,
                              std::span<const std::int32_t> target_ranks,
                              Placement& placement, LptScratch& scratch) {
  auto& order = scratch.order;
  order.assign(block_ids.begin(), block_ids.end());
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              const double ca = costs[static_cast<std::size_t>(a)];
              const double cb = costs[static_cast<std::size_t>(b)];
              return ca != cb ? ca > cb : a < b;
            });
  assign_sorted(costs, order, target_ranks, placement, scratch);
}

void LptPolicy::assign_sorted(std::span<const double> costs,
                              std::span<const std::int32_t> sorted_blocks,
                              std::span<const std::int32_t> target_ranks,
                              Placement& placement, LptScratch& scratch) {
  AMR_CHECK(!target_ranks.empty());
  // Least-loaded rank selection via a 4-ary min-heap updated in place:
  // one sift-down per block instead of the pop+push pair a
  // std::priority_queue forces. Ties resolve by rank id, so the chosen
  // rank — and the resulting placement — match the scan-based LPT
  // exactly.
  TopUpdateMinHeap<4>& loads = scratch.loads;
  loads.reset(target_ranks.size(), target_ranks.data());
  for (const std::int32_t block : sorted_blocks) {
    placement[static_cast<std::size_t>(block)] = loads.top_id();
    loads.add_to_top(costs[static_cast<std::size_t>(block)]);
  }
}

Placement LptPolicy::place(std::span<const double> costs,
                           std::int32_t nranks) const {
  AMR_CHECK(nranks > 0);
  Placement out(costs.size(), 0);
  if (costs.empty()) return out;
  std::vector<std::int32_t> blocks(costs.size());
  std::vector<std::int32_t> ranks(static_cast<std::size_t>(nranks));
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = static_cast<std::int32_t>(i);
  for (std::size_t r = 0; r < ranks.size(); ++r)
    ranks[r] = static_cast<std::int32_t>(r);
  assign_subset(costs, blocks, ranks, out);
  return out;
}

}  // namespace amr
