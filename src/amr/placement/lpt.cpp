#include "amr/placement/lpt.hpp"

#include <algorithm>
#include <queue>

#include "amr/common/check.hpp"

namespace amr {
namespace {

struct RankLoad {
  double load;
  std::int32_t rank;
  // Min-heap on load; ties broken by rank for determinism.
  friend bool operator>(const RankLoad& a, const RankLoad& b) {
    return a.load != b.load ? a.load > b.load : a.rank > b.rank;
  }
};

using MinHeap =
    std::priority_queue<RankLoad, std::vector<RankLoad>, std::greater<>>;

}  // namespace

void LptPolicy::assign_subset(std::span<const double> costs,
                              std::span<const std::int32_t> block_ids,
                              std::span<const std::int32_t> target_ranks,
                              Placement& placement) {
  AMR_CHECK(!target_ranks.empty());
  std::vector<std::int32_t> order(block_ids.begin(), block_ids.end());
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              const double ca = costs[static_cast<std::size_t>(a)];
              const double cb = costs[static_cast<std::size_t>(b)];
              return ca != cb ? ca > cb : a < b;
            });
  MinHeap heap;
  for (const std::int32_t r : target_ranks) heap.push({0.0, r});
  for (const std::int32_t block : order) {
    RankLoad top = heap.top();
    heap.pop();
    placement[static_cast<std::size_t>(block)] = top.rank;
    top.load += costs[static_cast<std::size_t>(block)];
    heap.push(top);
  }
}

Placement LptPolicy::place(std::span<const double> costs,
                           std::int32_t nranks) const {
  AMR_CHECK(nranks > 0);
  Placement out(costs.size(), 0);
  if (costs.empty()) return out;
  std::vector<std::int32_t> blocks(costs.size());
  std::vector<std::int32_t> ranks(static_cast<std::size_t>(nranks));
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = static_cast<std::int32_t>(i);
  for (std::size_t r = 0; r < ranks.size(); ++r)
    ranks[r] = static_cast<std::int32_t>(r);
  assign_subset(costs, blocks, ranks, out);
  return out;
}

}  // namespace amr
