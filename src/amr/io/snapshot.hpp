// Versioned binary snapshot framing for checkpoint/restart.
//
// A snapshot is a sequence of named, length-prefixed sections inside a
// checksummed envelope — the same little-endian length-prefixed framing
// style as telemetry/binary_io, generalized so every subsystem's state
// (mesh, DES clock, RNG streams, telemetry tables, trace ring) can be
// packed into one file and restored field-for-field.
//
// File layout (little-endian):
//   magic "AMRS", u32 format version
//   u64 payload_size, payload bytes (the concatenated sections)
//   u64 FNV-1a checksum of the payload
//
// Section layout (inside the payload):
//   u32 name_len, name bytes, u64 body_len, body bytes
//
// Compatibility rule: the format version gates the whole file (a reader
// rejects versions it does not know); within a version, readers consume
// sections in written order and may skip sections they do not recognize
// (SnapshotReader::peek_section + skip_section), so new sections can be
// appended without breaking older readers of the same version.
//
// Every read is bounds- and checksum-checked: a truncated or bit-flipped
// file fails with a SnapshotError diagnostic, never undefined behaviour.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace amr::io {

/// Raised on any malformed, truncated, or corrupt snapshot input.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

// Format version history — every bump so far added a *config
// fingerprint* axis (fields write_meta/check_meta in sim_state.cpp
// diff to refuse a restore under a different simulation mode) plus the
// sections/fields that mode needs to resume byte-identically:
//
// v1: the base format. Fingerprint: cluster shape (nranks,
//     ranks_per_node, root grid), seed, execution mode, task ordering,
//     flux correction, telemetry/trace switches, incremental_plans,
//     workload name, and the full fault schedule. Sections: meta,
//     state (step, placement, plan-cache key, active faults), DES
//     clock, RNG streams, fabric, telemetry tables, trace ring.
// v2: aggregate_messages in the config fingerprint, msgs_coalesced /
//     bytes_packed in the report section, packed-transfer fabric
//     counters, and two added comm-table columns.
// v3: sharded-DES bit in the config fingerprint (shard *count* is
//     deliberately not an axis — spill/restore may re-shard), per-node
//     fabric RNG/stats in the fabric section when sharded, and the
//     collector's fourth (shards) table.
// v4: adaptive-comm axes (comm_adaptive, send_priority,
//     comm_pack_threshold) in the config fingerprint and
//     last_straggler in the state section.
// v5: placement-engine axes (auto_cplx, placement_incremental,
//     cplx_budget_ms) in the config fingerprint, the "tuner" section
//     (auto-X tuner state + epoch accumulators), and the collector's
//     fifth (placement) table.
//
// Version-bump checklist — the compile-time-checkable moral equivalent
// of a static_assert, since the fingerprint is data, not types. When a
// new SimulationConfig field changes simulated results, you MUST:
//   1. bump kSnapshotFormatVersion and append a history line above;
//   2. write the axis in write_meta() and require() it in check_meta()
//      (sim/sim_state.cpp) so mismatched restores are refused with a
//      diagnostic naming the axis;
//   3. serialize any new runtime state the axis introduces (its own
//      section, or appended to an existing one — readers of the same
//      version skip unknown sections, so appending a *section* is
//      compatible; appending fields to an existing section is not);
//   4. extend tests/sim/checkpoint_test.cpp round-trip coverage and the
//      mismatched-restore refusal case, and run the checkpoint_ /
//      aggregate_ / comm_adaptive_ / par_des_ / serve_determinism ctest
//      scripts — serve eviction spills reuse this exact format, so a
//      missed axis shows up as multiplexed-vs-standalone stdout drift;
//   5. never reuse or renumber an existing version: old spills and
//      checkpoints must keep failing loudly, not misparse.
// Counters that are scheduling artifacts rather than simulation state
// (e.g. plan-cache share_hits) must NOT be serialized — see
// StepPipelineStats.
inline constexpr std::uint32_t kSnapshotFormatVersion = 5;

/// Builds a snapshot payload in memory, then writes the enveloped file.
class SnapshotWriter {
 public:
  /// Open a named section; all subsequent writes land in its body until
  /// end_section(). Sections cannot nest.
  void begin_section(std::string_view name);
  void end_section();

  void u8(std::uint8_t v) { pod(v); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void i32(std::int32_t v) { pod(v); }
  void i64(std::int64_t v) { pod(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Doubles round-trip bit-exactly (raw IEEE-754 image).
  void f64(double v) { pod(v); }

  void str(std::string_view s);

  /// u64 element count followed by the raw bytes of a trivially copyable
  /// element vector.
  template <typename T>
  void vec_pod(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    append(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void vec_pod(const std::vector<T>& v) {
    vec_pod(std::span<const T>(v));
  }

  /// Finish (no section may be open) and write the enveloped file.
  /// Returns false on I/O failure.
  bool write_file(const std::string& path);

  /// The enveloped bytes (magic/version/size/payload/checksum) without
  /// touching the filesystem — for in-memory round-trip tests.
  std::vector<std::uint8_t> finish();

 private:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&v, sizeof(T));
  }
  void append(const void* data, std::size_t n);

  std::vector<std::uint8_t> payload_;
  std::size_t section_body_at_ = 0;  ///< offset of the open body_len field
  bool in_section_ = false;
};

/// Validates the envelope (magic, version, size, checksum) up front, then
/// hands out bounds-checked reads section by section.
class SnapshotReader {
 public:
  /// Read and validate a snapshot file. Throws SnapshotError with a
  /// diagnostic on any problem (missing file, bad magic, truncation,
  /// checksum mismatch, unsupported version).
  explicit SnapshotReader(const std::string& path);
  /// Same, over in-memory enveloped bytes.
  explicit SnapshotReader(std::vector<std::uint8_t> bytes);

  /// Name of the next section, or empty once the payload is exhausted.
  std::string peek_section();
  /// Enter the next section; it must carry exactly this name.
  void begin_section(std::string_view name);
  /// Leave the current section; throws if its body was not fully read.
  void end_section();
  /// Skip the next section wholesale (forward compatibility).
  void skip_section();

  std::uint8_t u8() { return pod<std::uint8_t>(); }
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::int32_t i32() { return pod<std::int32_t>(); }
  std::int64_t i64() { return pod<std::int64_t>(); }
  bool b() { return u8() != 0; }
  double f64() { return pod<double>(); }

  std::string str();

  template <typename T>
  std::vector<T> vec_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    check_available(n, sizeof(T));
    std::vector<T> out(static_cast<std::size_t>(n));
    take(out.data(), static_cast<std::size_t>(n) * sizeof(T));
    return out;
  }

 private:
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    take(&v, sizeof(T));
    return v;
  }
  void validate_envelope();
  void take(void* out, std::size_t n);
  void check_available(std::uint64_t count, std::size_t elem_size) const;
  [[noreturn]] void fail(const std::string& why) const;

  std::vector<std::uint8_t> bytes_;
  std::size_t at_ = 0;          ///< cursor within payload
  std::size_t payload_end_ = 0;
  std::size_t section_end_ = 0;
  bool in_section_ = false;
};

/// FNV-1a 64-bit hash (the envelope checksum).
std::uint64_t fnv1a64(const void* data, std::size_t n);

}  // namespace amr::io
