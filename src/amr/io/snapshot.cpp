#include "amr/io/snapshot.hpp"

#include <cstdio>
#include <memory>

#include "amr/common/check.hpp"

namespace amr::io {
namespace {

constexpr char kMagic[4] = {'A', 'M', 'R', 'S'};
// Envelope size outside the payload: magic + version + payload_size up
// front, checksum at the tail.
constexpr std::size_t kHeaderSize = 4 + sizeof(std::uint32_t) +
                                    sizeof(std::uint64_t);
constexpr std::size_t kTrailerSize = sizeof(std::uint64_t);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SnapshotWriter::append(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + n);
}

void SnapshotWriter::begin_section(std::string_view name) {
  AMR_CHECK_MSG(!in_section_, "snapshot sections cannot nest");
  in_section_ = true;
  const auto len = static_cast<std::uint32_t>(name.size());
  pod(len);
  append(name.data(), name.size());
  section_body_at_ = payload_.size();
  pod(std::uint64_t{0});  // body_len backpatched by end_section
}

void SnapshotWriter::end_section() {
  AMR_CHECK_MSG(in_section_, "end_section without begin_section");
  in_section_ = false;
  const std::uint64_t body_len =
      payload_.size() - section_body_at_ - sizeof(std::uint64_t);
  std::memcpy(payload_.data() + section_body_at_, &body_len,
              sizeof(body_len));
}

void SnapshotWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

std::vector<std::uint8_t> SnapshotWriter::finish() {
  AMR_CHECK_MSG(!in_section_, "finish with an open section");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload_.size() + kTrailerSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  const std::uint32_t version = kSnapshotFormatVersion;
  const std::uint64_t size = payload_.size();
  const std::uint64_t checksum = fnv1a64(payload_.data(), payload_.size());
  const auto append_to = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  append_to(&version, sizeof(version));
  append_to(&size, sizeof(size));
  append_to(payload_.data(), payload_.size());
  append_to(&checksum, sizeof(checksum));
  return out;
}

bool SnapshotWriter::write_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = finish();
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    return false;
  return std::fflush(f.get()) == 0;
}

SnapshotReader::SnapshotReader(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw SnapshotError("cannot open snapshot file: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) throw SnapshotError("cannot stat snapshot file: " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  bytes_.resize(static_cast<std::size_t>(size));
  if (!bytes_.empty() &&
      std::fread(bytes_.data(), 1, bytes_.size(), f.get()) != bytes_.size())
    throw SnapshotError("short read on snapshot file: " + path);
  validate_envelope();
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  validate_envelope();
}

void SnapshotReader::validate_envelope() {
  if (bytes_.size() < kHeaderSize + kTrailerSize)
    fail("file too small to be a snapshot");
  if (std::memcmp(bytes_.data(), kMagic, 4) != 0)
    fail("bad magic (not an AMRS snapshot)");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes_.data() + 4, sizeof(version));
  if (version != kSnapshotFormatVersion)
    fail("unsupported snapshot format version " + std::to_string(version));
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, bytes_.data() + 8, sizeof(payload_size));
  if (payload_size != bytes_.size() - kHeaderSize - kTrailerSize)
    fail("payload size does not match file size (truncated?)");
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, bytes_.data() + bytes_.size() - kTrailerSize,
              sizeof(checksum));
  const std::uint64_t actual =
      fnv1a64(bytes_.data() + kHeaderSize,
              static_cast<std::size_t>(payload_size));
  if (checksum != actual) fail("checksum mismatch (corrupt snapshot)");
  at_ = kHeaderSize;
  payload_end_ = kHeaderSize + static_cast<std::size_t>(payload_size);
}

void SnapshotReader::take(void* out, std::size_t n) {
  const std::size_t end = in_section_ ? section_end_ : payload_end_;
  if (n > end - at_) fail("read past end (truncated section)");
  std::memcpy(out, bytes_.data() + at_, n);
  at_ += n;
}

void SnapshotReader::check_available(std::uint64_t count,
                                     std::size_t elem_size) const {
  const std::size_t end = in_section_ ? section_end_ : payload_end_;
  const std::uint64_t remaining = end - at_;
  if (count > remaining / elem_size)
    fail("vector length exceeds remaining bytes (corrupt snapshot)");
}

std::string SnapshotReader::str() {
  const std::uint32_t len = u32();
  check_available(len, 1);
  std::string s(len, '\0');
  take(s.data(), len);
  return s;
}

std::string SnapshotReader::peek_section() {
  AMR_CHECK_MSG(!in_section_, "peek_section inside a section");
  if (at_ >= payload_end_) return {};
  const std::size_t saved = at_;
  const std::string name = str();
  at_ = saved;
  return name;
}

void SnapshotReader::begin_section(std::string_view name) {
  AMR_CHECK_MSG(!in_section_, "snapshot sections cannot nest");
  if (at_ >= payload_end_)
    fail("expected section '" + std::string(name) + "', got end of file");
  const std::string actual = str();
  if (actual != name)
    fail("expected section '" + std::string(name) + "', found '" + actual +
         "'");
  const std::uint64_t body_len = u64();
  if (body_len > payload_end_ - at_)
    fail("section '" + actual + "' overruns the payload (truncated?)");
  section_end_ = at_ + static_cast<std::size_t>(body_len);
  in_section_ = true;
}

void SnapshotReader::end_section() {
  AMR_CHECK_MSG(in_section_, "end_section without begin_section");
  if (at_ != section_end_) fail("section body not fully consumed");
  in_section_ = false;
}

void SnapshotReader::skip_section() {
  AMR_CHECK_MSG(!in_section_, "skip_section inside a section");
  if (at_ >= payload_end_) fail("skip_section at end of file");
  (void)str();
  const std::uint64_t body_len = u64();
  if (body_len > payload_end_ - at_)
    fail("skipped section overruns the payload (truncated?)");
  at_ += static_cast<std::size_t>(body_len);
}

void SnapshotReader::fail(const std::string& why) const {
  throw SnapshotError("snapshot: " + why);
}

}  // namespace amr::io
