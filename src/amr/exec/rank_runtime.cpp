#include "amr/exec/rank_runtime.hpp"

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

RankRuntime::RankRuntime(std::int32_t rank, Comm& comm, ExecParams params,
                         Tracer* tracer)
    : rank_(rank), comm_(comm), params_(params), tracer_(tracer) {
  comm_.set_endpoint(rank, this);
}

TimeNs RankRuntime::pack_ns(std::int64_t bytes) const {
  return static_cast<TimeNs>(static_cast<double>(bytes) /
                             params_.pack_gbytes_per_sec);
}

void RankRuntime::begin_step(const RankStepWork& work,
                             TaskOrdering ordering, std::uint64_t window,
                             TimeNs start, std::int32_t priority_rank) {
  tasks_.clear();
  pc_ = 0;
  window_ = window;
  ordering_tag_ = static_cast<std::int64_t>(ordering);
  priority_rank_ = priority_rank;
  state_ = State::kIdle;
  max_send_release_ = start;
  step_done_ = false;
  stats_ = RankStepStats{};
  wait_start_ = start;

  auto add_sends = [&] {
    // Critical-path priority: sends feeding the predicted critical rank
    // go first. With priority_rank == -1 the first pass matches nothing
    // and the schedule is bit-identical to the legacy order.
    for (const OutMessage& m : work.sends)
      if (m.dst_rank == priority_rank)
        tasks_.push_back(Task{TaskKind::kPackSend,
                              pack_ns(m.bytes) + params_.task_overhead,
                              m.dst_rank, m.bytes, m.msgs});
    for (const OutMessage& m : work.sends)
      if (m.dst_rank != priority_rank)
        tasks_.push_back(Task{TaskKind::kPackSend,
                              pack_ns(m.bytes) + params_.task_overhead,
                              m.dst_rank, m.bytes, m.msgs});
    if (work.local_copy_bytes > 0) {
      const auto copy = static_cast<TimeNs>(
          static_cast<double>(work.local_copy_bytes) /
          params_.memcpy_gbytes_per_sec);
      tasks_.push_back(Task{TaskKind::kLocalCopy,
                            copy + params_.task_overhead, -1,
                            work.local_copy_bytes});
    }
  };
  auto add_computes = [&] {
    for (const BlockCompute& c : work.computes)
      tasks_.push_back(Task{TaskKind::kCompute,
                            c.duration + params_.task_overhead, -1, 0});
  };

  // The tuning lever of Fig 3/4b: where sends sit in the task schedule.
  if (ordering == TaskOrdering::kSendFirst) {
    add_sends();
    add_computes();
  } else {
    add_computes();
    add_sends();
  }
  tasks_.push_back(Task{TaskKind::kWaitRecvs, 0, -1, 0});
  if (work.recv_bytes > 0)
    tasks_.push_back(Task{TaskKind::kUnpack,
                          pack_ns(work.recv_bytes) + params_.task_overhead,
                          -1, work.recv_bytes});
  for (const BlockCompute& c : work.computes_after_wait)
    tasks_.push_back(Task{TaskKind::kCompute,
                          c.duration + params_.task_overhead, -1, 0});
  tasks_.push_back(Task{TaskKind::kWaitSends, 0, -1, 0});
}

void RankRuntime::self_schedule(Engine& engine, TimeNs t) {
  if (comm_.sharded() != nullptr)
    engine.schedule_keyed(t, event_key::rank(rank_), this, 0);
  else
    engine.schedule_at(t, this, 0);
}

void RankRuntime::start(Engine& engine) {
  AMR_CHECK(state_ == State::kIdle);
  state_ = State::kRunning;
  // Begin at the configured start time (== engine.now() for lockstep
  // steps); schedule rather than recurse so all ranks start fairly.
  self_schedule(engine, engine.now());
}

void RankRuntime::on_event(Engine& engine, std::uint64_t /*tag*/) {
  switch (state_) {
    case State::kRunning:
      advance(engine);
      return;
    case State::kInTask:
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    case State::kPostSend: {
      // Pack finished at now; the isend posts here.
      const Task& t = tasks_[pc_];
      const TimeNs release =
          comm_.isend(rank_, t.dst, t.bytes, window_, engine.now(), -1,
                      t.msgs, priority_rank_ >= 0 && t.dst == priority_rank_);
      max_send_release_ = std::max(max_send_release_, release);
      if (tracer_ != nullptr)
        tracer_->instant(rank_, TraceCat::kSend, "isend", engine.now(),
                         t.bytes, t.dst);
      if (comm_.fabric().topology().same_node(rank_, t.dst)) {
        ++stats_.msgs_local;
        stats_.bytes_local += t.bytes;
      } else {
        ++stats_.msgs_remote;
        stats_.bytes_remote += t.bytes;
      }
      stats_.msgs_coalesced += t.msgs - 1;
      if (t.msgs > 1) stats_.bytes_packed += t.bytes;
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    }
    case State::kWaitingSends: {
      stats_.send_wait_ns += engine.now() - wait_start_;
      if (tracer_ != nullptr)
        tracer_->end(rank_, TraceCat::kSendWait, "send-wait", engine.now());
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    }
    case State::kIdle:
    case State::kWaitingRecvs:
    case State::kInCollective:
      AMR_CHECK_MSG(false, "unexpected continuation event");
  }
}

void RankRuntime::advance(Engine& engine) {
  while (pc_ < tasks_.size()) {
    const Task& t = tasks_[pc_];
    switch (t.kind) {
      case TaskKind::kCompute:
        stats_.compute_ns += t.duration;
        state_ = State::kInTask;
        if (tracer_ != nullptr)
          tracer_->complete(rank_, TraceCat::kCompute, "compute",
                            engine.now(), t.duration, ordering_tag_);
        self_schedule(engine, engine.now() + t.duration);
        return;
      case TaskKind::kLocalCopy:
      case TaskKind::kUnpack:
        stats_.pack_ns += t.duration;
        state_ = State::kInTask;
        if (tracer_ != nullptr)
          tracer_->complete(rank_, TraceCat::kPack,
                            t.kind == TaskKind::kUnpack ? "unpack"
                                                        : "local-copy",
                            engine.now(), t.duration, t.bytes,
                            ordering_tag_);
        self_schedule(engine, engine.now() + t.duration);
        return;
      case TaskKind::kPackSend:
        stats_.pack_ns += t.duration;
        state_ = State::kPostSend;
        if (tracer_ != nullptr)
          tracer_->complete(rank_, TraceCat::kPack, "pack", engine.now(),
                            t.duration, t.bytes, t.dst);
        self_schedule(engine, engine.now() + t.duration);
        return;
      case TaskKind::kWaitRecvs:
        if (comm_.wait_recvs(rank_, window_, engine.now())) {
          ++pc_;
          continue;  // everything already arrived: zero wait
        }
        wait_start_ = engine.now();
        state_ = State::kWaitingRecvs;
        if (tracer_ != nullptr)
          tracer_->begin(rank_, TraceCat::kRecvWait, "recv-wait",
                         engine.now());
        return;
      case TaskKind::kWaitSends: {
        if (max_send_release_ <= engine.now()) {
          ++pc_;
          continue;
        }
        wait_start_ = engine.now();
        state_ = State::kWaitingSends;
        if (tracer_ != nullptr)
          tracer_->begin(rank_, TraceCat::kSendWait, "send-wait",
                         engine.now());
        self_schedule(engine, max_send_release_);
        return;
      }
    }
  }
  // All tasks done: enter the closing blocking collective.
  state_ = State::kInCollective;
  stats_.collective_entry = engine.now();
  if (tracer_ != nullptr)
    tracer_->begin(rank_, TraceCat::kSync, "collective", engine.now(),
                   static_cast<std::int64_t>(window_));
  comm_.enter_collective(window_, rank_, engine.now());
}

void RankRuntime::on_recvs_ready(Engine& engine, std::uint64_t window,
                                 TimeNs t, std::int32_t releasing_src) {
  AMR_CHECK(window == window_);
  AMR_CHECK(state_ == State::kWaitingRecvs);
  stats_.recv_wait_ns += t - wait_start_;
  stats_.last_release_src = releasing_src;
  if (tracer_ != nullptr)
    tracer_->end(rank_, TraceCat::kRecvWait, "recv-wait", t,
                 releasing_src);
  state_ = State::kRunning;
  ++pc_;
  // We are inside the delivery event at time t; continue inline on the
  // dispatching engine (the rank's own shard under sharding).
  advance(engine);
}

void RankRuntime::on_collective_done(Engine& /*engine*/,
                                     std::uint64_t window, TimeNs t) {
  AMR_CHECK(window == window_);
  AMR_CHECK(state_ == State::kInCollective);
  stats_.sync_ns += t - stats_.collective_entry;
  stats_.done_at = t;
  if (tracer_ != nullptr)
    tracer_->end(rank_, TraceCat::kSync, "collective", t,
                 static_cast<std::int64_t>(window));
  state_ = State::kIdle;
  step_done_ = true;
}

}  // namespace amr
