#include "amr/exec/rank_runtime.hpp"

#include "amr/common/check.hpp"

namespace amr {

RankRuntime::RankRuntime(std::int32_t rank, Comm& comm, ExecParams params)
    : rank_(rank), comm_(comm), params_(params) {
  comm_.set_endpoint(rank, this);
}

TimeNs RankRuntime::pack_ns(std::int64_t bytes) const {
  return static_cast<TimeNs>(static_cast<double>(bytes) /
                             params_.pack_gbytes_per_sec);
}

void RankRuntime::begin_step(const RankStepWork& work,
                             TaskOrdering ordering, std::uint64_t window,
                             TimeNs start) {
  tasks_.clear();
  pc_ = 0;
  window_ = window;
  state_ = State::kIdle;
  max_send_release_ = start;
  step_done_ = false;
  stats_ = RankStepStats{};
  wait_start_ = start;

  auto add_sends = [&] {
    for (const OutMessage& m : work.sends)
      tasks_.push_back(Task{TaskKind::kPackSend,
                            pack_ns(m.bytes) + params_.task_overhead,
                            m.dst_rank, m.bytes});
    if (work.local_copy_bytes > 0) {
      const auto copy = static_cast<TimeNs>(
          static_cast<double>(work.local_copy_bytes) /
          params_.memcpy_gbytes_per_sec);
      tasks_.push_back(Task{TaskKind::kLocalCopy,
                            copy + params_.task_overhead, -1,
                            work.local_copy_bytes});
    }
  };
  auto add_computes = [&] {
    for (const BlockCompute& c : work.computes)
      tasks_.push_back(Task{TaskKind::kCompute,
                            c.duration + params_.task_overhead, -1, 0});
  };

  // The tuning lever of Fig 3/4b: where sends sit in the task schedule.
  if (ordering == TaskOrdering::kSendFirst) {
    add_sends();
    add_computes();
  } else {
    add_computes();
    add_sends();
  }
  tasks_.push_back(Task{TaskKind::kWaitRecvs, 0, -1, 0});
  if (work.recv_bytes > 0)
    tasks_.push_back(Task{TaskKind::kUnpack,
                          pack_ns(work.recv_bytes) + params_.task_overhead,
                          -1, work.recv_bytes});
  for (const BlockCompute& c : work.computes_after_wait)
    tasks_.push_back(Task{TaskKind::kCompute,
                          c.duration + params_.task_overhead, -1, 0});
  tasks_.push_back(Task{TaskKind::kWaitSends, 0, -1, 0});
}

void RankRuntime::start(Engine& engine) {
  AMR_CHECK(state_ == State::kIdle);
  state_ = State::kRunning;
  // Begin at the configured start time (== engine.now() for lockstep
  // steps); schedule rather than recurse so all ranks start fairly.
  engine.schedule_at(engine.now(), this, 0);
}

void RankRuntime::on_event(Engine& engine, std::uint64_t /*tag*/) {
  switch (state_) {
    case State::kRunning:
      advance(engine);
      return;
    case State::kInTask:
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    case State::kPostSend: {
      // Pack finished at now; the isend posts here.
      const Task& t = tasks_[pc_];
      const TimeNs release =
          comm_.isend(rank_, t.dst, t.bytes, window_, engine.now());
      max_send_release_ = std::max(max_send_release_, release);
      if (comm_.fabric().topology().same_node(rank_, t.dst)) {
        ++stats_.msgs_local;
        stats_.bytes_local += t.bytes;
      } else {
        ++stats_.msgs_remote;
        stats_.bytes_remote += t.bytes;
      }
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    }
    case State::kWaitingSends: {
      stats_.send_wait_ns += engine.now() - wait_start_;
      state_ = State::kRunning;
      ++pc_;
      advance(engine);
      return;
    }
    case State::kIdle:
    case State::kWaitingRecvs:
    case State::kInCollective:
      AMR_CHECK_MSG(false, "unexpected continuation event");
  }
}

void RankRuntime::advance(Engine& engine) {
  while (pc_ < tasks_.size()) {
    const Task& t = tasks_[pc_];
    switch (t.kind) {
      case TaskKind::kCompute:
        stats_.compute_ns += t.duration;
        state_ = State::kInTask;
        engine.schedule_after(t.duration, this, 0);
        return;
      case TaskKind::kLocalCopy:
      case TaskKind::kUnpack:
        stats_.pack_ns += t.duration;
        state_ = State::kInTask;
        engine.schedule_after(t.duration, this, 0);
        return;
      case TaskKind::kPackSend:
        stats_.pack_ns += t.duration;
        state_ = State::kPostSend;
        engine.schedule_after(t.duration, this, 0);
        return;
      case TaskKind::kWaitRecvs:
        if (comm_.wait_recvs(rank_, window_, engine.now())) {
          ++pc_;
          continue;  // everything already arrived: zero wait
        }
        wait_start_ = engine.now();
        state_ = State::kWaitingRecvs;
        return;
      case TaskKind::kWaitSends: {
        if (max_send_release_ <= engine.now()) {
          ++pc_;
          continue;
        }
        wait_start_ = engine.now();
        state_ = State::kWaitingSends;
        engine.schedule_at(max_send_release_, this, 0);
        return;
      }
    }
  }
  // All tasks done: enter the closing blocking collective.
  state_ = State::kInCollective;
  stats_.collective_entry = engine.now();
  comm_.enter_collective(window_, rank_, engine.now());
}

void RankRuntime::on_recvs_ready(std::uint64_t window, TimeNs t,
                                 std::int32_t releasing_src) {
  AMR_CHECK(window == window_);
  AMR_CHECK(state_ == State::kWaitingRecvs);
  stats_.recv_wait_ns += t - wait_start_;
  stats_.last_release_src = releasing_src;
  state_ = State::kRunning;
  ++pc_;
  // We are inside the delivery event at time t; continue inline.
  advance(comm_.engine());
}

void RankRuntime::on_collective_done(std::uint64_t window, TimeNs t) {
  AMR_CHECK(window == window_);
  AMR_CHECK(state_ == State::kInCollective);
  stats_.sync_ns += t - stats_.collective_entry;
  stats_.done_at = t;
  state_ = State::kIdle;
  step_done_ = true;
}

}  // namespace amr
