#include "amr/exec/overlap.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {
namespace {

/// Shared scaffolding for the work builders: per-rank slots and the
/// directed neighbor message sweep.
template <typename EmitSend>
void sweep_messages(const AmrMesh& mesh, const Placement& placement,
                    const MessageSizeModel& sizes,
                    std::vector<OverlapRankWork>& work,
                    std::span<const std::int32_t> slot_of_block,
                    EmitSend&& emit_send) {
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const std::int32_t src = placement[b];
    auto& w = work[static_cast<std::size_t>(src)];
    for (const Neighbor& n : lists[b]) {
      const auto ni = static_cast<std::size_t>(n.index);
      const std::int32_t dst = placement[ni];
      const std::int64_t bytes = sizes.bytes(n.kind);
      if (dst == src) {
        w.local_copy_bytes += bytes;
        ++w.local_copy_msgs;
        continue;
      }
      emit_send(w, static_cast<std::int32_t>(b), dst, n.index, bytes);
      auto& dw = work[static_cast<std::size_t>(dst)];
      ++dw.expected_recvs;
      BlockWork& target =
          dw.blocks[static_cast<std::size_t>(slot_of_block[ni])];
      ++target.expected_recvs;
      target.recv_bytes += bytes;
    }
  }
}

std::vector<std::int32_t> make_slots(const AmrMesh& mesh,
                                     const Placement& placement,
                                     std::vector<OverlapRankWork>& work) {
  std::vector<std::int32_t> slot_of_block(mesh.size(), -1);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    auto& w = work[static_cast<std::size_t>(placement[b])];
    slot_of_block[b] = static_cast<std::int32_t>(w.blocks.size());
    w.blocks.push_back(BlockWork{});
    w.blocks.back().block = static_cast<std::int32_t>(b);
  }
  return slot_of_block;
}

/// One boundary message recorded before the pack decision (which needs
/// the full (src,dst) step totals).
struct RawMsg {
  std::int32_t src_block;
  std::int32_t dst;  ///< destination rank
  std::int32_t dst_block;
  std::int64_t bytes;
};

/// Pass 1 of the adaptive builds: local copies charge immediately,
/// cross-rank messages are only recorded (per source rank, in the legacy
/// emission order).
std::vector<std::vector<RawMsg>> collect_messages(
    const AmrMesh& mesh, const Placement& placement,
    const MessageSizeModel& sizes, std::vector<OverlapRankWork>& work) {
  std::vector<std::vector<RawMsg>> raw(work.size());
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const std::int32_t src = placement[b];
    auto& w = work[static_cast<std::size_t>(src)];
    for (const Neighbor& n : lists[b]) {
      const std::int32_t dst =
          placement[static_cast<std::size_t>(n.index)];
      const std::int64_t bytes = sizes.bytes(n.kind);
      if (dst == src) {
        w.local_copy_bytes += bytes;
        ++w.local_copy_msgs;
        continue;
      }
      raw[static_cast<std::size_t>(src)].push_back(
          RawMsg{static_cast<std::int32_t>(b), dst, n.index, bytes});
    }
  }
  return raw;
}

/// Pass 2: per-pair totals drive the eager/pack split; packed pairs
/// become one PackedSend (first-touch order) plus receiver-side
/// agg_credits, eager pairs keep per-message sends. `two_stage` attaches
/// eager sends to producing blocks and makes aggregates incremental
/// (countdown over distinct contributing blocks).
void apply_packing(std::vector<OverlapRankWork>& work,
                   const std::vector<std::vector<RawMsg>>& raw,
                   std::span<const std::int32_t> slot_of_block,
                   const PackingPolicy& packing, bool two_stage) {
  struct Pair {
    std::int32_t dst;
    std::int64_t msgs = 0;
    std::int64_t bytes = 0;
    bool packed = false;
    std::int32_t packed_idx = -1;  ///< into packed_sends once emitted
  };
  std::vector<Pair> pairs;
  const auto nranks = static_cast<std::int32_t>(work.size());
  for (std::int32_t src = 0; src < nranks; ++src) {
    auto& w = work[static_cast<std::size_t>(src)];
    const auto& msgs = raw[static_cast<std::size_t>(src)];
    pairs.clear();
    auto pair_of = [&](std::int32_t dst) -> Pair& {
      for (auto it = pairs.rbegin(); it != pairs.rend(); ++it)
        if (it->dst == dst) return *it;
      pairs.push_back(Pair{dst});
      return pairs.back();
    };
    for (const RawMsg& m : msgs) {
      Pair& p = pair_of(m.dst);
      ++p.msgs;
      p.bytes += m.bytes;
    }
    for (Pair& p : pairs)
      p.packed = packing.pack(src, p.dst, p.bytes, p.msgs);
    for (const RawMsg& m : msgs) {
      Pair& p = pair_of(m.dst);
      auto& dw = work[static_cast<std::size_t>(m.dst)];
      const std::int32_t slot =
          slot_of_block[static_cast<std::size_t>(m.dst_block)];
      BlockWork& target = dw.blocks[static_cast<std::size_t>(slot)];
      // Per-block gating stays logical whether or not the message rides
      // an aggregate (a packed arrival credits every destination block).
      ++target.expected_recvs;
      target.recv_bytes += m.bytes;
      if (p.packed) target.packed_recv_bytes += m.bytes;
      if (!p.packed) {
        ++dw.expected_recvs;
        if (two_stage) {
          BlockWork& producer = w.blocks[static_cast<std::size_t>(
              slot_of_block[static_cast<std::size_t>(m.src_block)])];
          producer.sends.push_back(OutMessage{m.dst, m.bytes, m.dst_block});
          producer.send_dst_tags.push_back(m.dst_block);
        } else {
          w.sends.push_back(OutMessage{m.dst, m.bytes, m.dst_block});
          w.send_dst_tags.push_back(m.dst_block);
        }
        continue;
      }
      if (p.packed_idx < 0) {
        p.packed_idx = static_cast<std::int32_t>(w.packed_sends.size());
        w.packed_sends.push_back(PackedSend{
            OutMessage{m.dst, p.bytes, m.src_block,
                       static_cast<std::int32_t>(p.msgs)},
            0});
        ++dw.expected_recvs;  // one arrival for the whole aggregate
      }
      // Receiver credit: `count` logical messages for this block slot.
      bool credited = false;
      for (AggCredit& c : dw.agg_credits) {
        if (c.src_rank == src && c.slot == slot) {
          ++c.count;
          credited = true;
          break;
        }
      }
      if (!credited) dw.agg_credits.push_back(AggCredit{src, slot, 1});
      if (two_stage) {
        // Incremental launch: the aggregate fires when its last distinct
        // contributing block finishes stage 1.
        BlockWork& producer = w.blocks[static_cast<std::size_t>(
            slot_of_block[static_cast<std::size_t>(m.src_block)])];
        bool counted = false;
        for (const std::int32_t idx : producer.packed_out) {
          if (idx == p.packed_idx) {
            counted = true;
            break;
          }
        }
        if (!counted) {
          producer.packed_out.push_back(p.packed_idx);
          ++w.packed_sends[static_cast<std::size_t>(p.packed_idx)]
                .contributors;
        }
      }
    }
  }
}

}  // namespace

std::vector<OverlapRankWork> build_overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes) {
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(block_costs.size() == mesh.size());
  std::vector<OverlapRankWork> work(static_cast<std::size_t>(nranks));
  const auto slots = make_slots(mesh, placement, work);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    auto& w = work[static_cast<std::size_t>(placement[b])];
    w.blocks[static_cast<std::size_t>(slots[b])].compute = block_costs[b];
  }
  // Previous-step ghosts: sends posted up-front at rank level.
  sweep_messages(mesh, placement, sizes, work, slots,
                 [](OverlapRankWork& w, std::int32_t /*src_block*/,
                    std::int32_t dst, std::int32_t dst_block,
                    std::int64_t bytes) {
                   w.sends.push_back(OutMessage{dst, bytes, dst_block});
                   w.send_dst_tags.push_back(dst_block);
                 });
  return work;
}

std::vector<OverlapRankWork> build_overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, const PackingPolicy& packing) {
  if (!packing.active())
    return build_overlap_work(mesh, placement, block_costs, nranks, sizes);
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(block_costs.size() == mesh.size());
  std::vector<OverlapRankWork> work(static_cast<std::size_t>(nranks));
  const auto slots = make_slots(mesh, placement, work);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    auto& w = work[static_cast<std::size_t>(placement[b])];
    w.blocks[static_cast<std::size_t>(slots[b])].compute = block_costs[b];
  }
  const auto raw = collect_messages(mesh, placement, sizes, work);
  apply_packing(work, raw, slots, packing, /*two_stage=*/false);
  return work;
}

std::vector<OverlapRankWork> build_two_stage_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes) {
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(stage1_frac > 0.0 && stage1_frac < 1.0);
  std::vector<OverlapRankWork> work(static_cast<std::size_t>(nranks));
  const auto slots = make_slots(mesh, placement, work);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    auto& blk = work[static_cast<std::size_t>(placement[b])]
                    .blocks[static_cast<std::size_t>(slots[b])];
    const auto stage1 = static_cast<TimeNs>(
        static_cast<double>(block_costs[b]) * stage1_frac);
    blk.compute = stage1;
    blk.stage2_compute = block_costs[b] - stage1;
  }
  // Freshly produced ghosts: sends attach to the producing block.
  sweep_messages(
      mesh, placement, sizes, work, slots,
      [&](OverlapRankWork& w, std::int32_t src_block, std::int32_t dst,
          std::int32_t dst_block, std::int64_t bytes) {
        BlockWork& producer =
            w.blocks[static_cast<std::size_t>(slots[src_block])];
        producer.sends.push_back(OutMessage{dst, bytes, dst_block});
        producer.send_dst_tags.push_back(dst_block);
      });
  return work;
}

std::vector<OverlapRankWork> build_two_stage_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes,
    const PackingPolicy& packing) {
  if (!packing.active())
    return build_two_stage_work(mesh, placement, block_costs, nranks,
                                stage1_frac, sizes);
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(stage1_frac > 0.0 && stage1_frac < 1.0);
  std::vector<OverlapRankWork> work(static_cast<std::size_t>(nranks));
  const auto slots = make_slots(mesh, placement, work);
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    auto& blk = work[static_cast<std::size_t>(placement[b])]
                    .blocks[static_cast<std::size_t>(slots[b])];
    const auto stage1 = static_cast<TimeNs>(
        static_cast<double>(block_costs[b]) * stage1_frac);
    blk.compute = stage1;
    blk.stage2_compute = block_costs[b] - stage1;
  }
  const auto raw = collect_messages(mesh, placement, sizes, work);
  apply_packing(work, raw, slots, packing, /*two_stage=*/true);
  // Stage-1 schedule: serve aggregates shortest-contributor-set first
  // and run each aggregate's contributors back to back, so completed
  // aggregates stream onto the wire throughout stage 1 instead of all
  // launching near its end (a block feeding several aggregates runs
  // with the earliest of them). Deterministic: aggregates ordered by
  // (contributors, dst rank), slots appended in slot order per group.
  for (auto& w : work) {
    if (w.packed_sends.empty()) continue;
    std::vector<std::int32_t> agg_order(w.packed_sends.size());
    for (std::size_t i = 0; i < agg_order.size(); ++i)
      agg_order[i] = static_cast<std::int32_t>(i);
    std::sort(agg_order.begin(), agg_order.end(),
              [&](std::int32_t a, std::int32_t b) {
                const PackedSend& pa =
                    w.packed_sends[static_cast<std::size_t>(a)];
                const PackedSend& pb =
                    w.packed_sends[static_cast<std::size_t>(b)];
                if (pa.contributors != pb.contributors)
                  return pa.contributors < pb.contributors;
                return pa.msg.dst_rank < pb.msg.dst_rank;
              });
    w.stage1_order.reserve(w.blocks.size());
    std::vector<char> placed(w.blocks.size(), 0);
    for (const std::int32_t agg : agg_order) {
      for (std::size_t s = 0; s < w.blocks.size(); ++s) {
        if (placed[s]) continue;
        const auto& out = w.blocks[s].packed_out;
        if (std::find(out.begin(), out.end(), agg) != out.end()) {
          placed[s] = 1;
          w.stage1_order.push_back(static_cast<std::int32_t>(s));
        }
      }
    }
    for (std::size_t s = 0; s < w.blocks.size(); ++s)
      if (!placed[s])
        w.stage1_order.push_back(static_cast<std::int32_t>(s));
  }
  return work;
}

std::vector<RankStepWork> two_stage_bsp_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes) {
  // BSP rendering: stage-1 computes (before sends, via kComputeFirst),
  // sends, wait, stage-2 computes, collective.
  auto work = build_step_work(mesh, placement, block_costs, nranks, sizes);
  for (auto& w : work) {
    w.computes_after_wait.reserve(w.computes.size());
    for (auto& c : w.computes) {
      const auto stage1 = static_cast<TimeNs>(
          static_cast<double>(c.duration) * stage1_frac);
      w.computes_after_wait.push_back(
          BlockCompute{c.block, c.duration - stage1});
      c.duration = stage1;
    }
  }
  return work;
}

class OverlapExecutor::OverlapRankRuntime final : public RankEndpoint,
                                                 public EventHandler {
 public:
  OverlapRankRuntime(std::int32_t rank, Comm& comm, ExecParams params,
                     Tracer* tracer)
      : rank_(rank), comm_(comm), params_(params), tracer_(tracer) {
    comm_.set_endpoint(rank, this);
  }

  void begin_step(const OverlapRankWork& work, std::uint64_t window,
                  TimeNs start, std::int32_t priority_rank) {
    work_ = &work;
    window_ = window;
    priority_rank_ = priority_rank;
    state_ = State::kIdle;
    arrived_.assign(work.blocks.size(), 0);
    stage1_done_.assign(work.blocks.size(), false);
    done_.assign(work.blocks.size(), false);
    blocks_left_ = work.blocks.size();
    pending_sends_.clear();
    pending_tags_.clear();
    // Up-front rank-level sends enter the queue immediately.
    for (std::size_t i = 0; i < work.sends.size(); ++i) {
      pending_sends_.push_back(work.sends[i]);
      pending_tags_.push_back(work.send_dst_tags[i]);
    }
    // Aggregates with no compute dependency (previous-step ghosts) queue
    // at step start too; two-stage aggregates arm their contributor
    // countdown and launch from stage-1 completions.
    packed_remaining_.assign(work.packed_sends.size(), 0);
    for (std::size_t i = 0; i < work.packed_sends.size(); ++i) {
      const PackedSend& p = work.packed_sends[i];
      if (p.contributors == 0) {
        pending_sends_.push_back(p.msg);
        pending_tags_.push_back(kPackedSendTag);
      } else {
        packed_remaining_[i] = p.contributors;
      }
    }
    send_head_ = 0;
    // Critical-path compute priority: blocks feeding the predicted
    // critical rank (via an aggregate or an eager send) run first in
    // stage 1, so the messages it waits on launch as early as possible.
    // stable_partition keeps the grouped order within each class.
    order_ = work.stage1_order;
    if (priority_rank_ >= 0 && !order_.empty()) {
      std::stable_partition(
          order_.begin(), order_.end(), [&](std::int32_t s) {
            const BlockWork& b = work.blocks[static_cast<std::size_t>(s)];
            for (const std::int32_t idx : b.packed_out)
              if (work.packed_sends[static_cast<std::size_t>(idx)]
                      .msg.dst_rank == priority_rank_)
                return true;
            for (const OutMessage& m : b.sends)
              if (m.dst_rank == priority_rank_) return true;
            return false;
          });
    }
    copy_charged_ = false;
    current_block_ = -1;
    max_send_release_ = start;
    stats_ = RankStepStats{};
    step_done_ = false;
    wait_start_ = start;
  }

  void start(Engine& engine) {
    AMR_CHECK(state_ == State::kIdle);
    state_ = State::kRunning;
    engine.schedule_at(engine.now(), this, 0);
  }

  bool step_done() const { return step_done_; }
  const RankStepStats& stats() const { return stats_; }

  void on_event(Engine& engine, std::uint64_t /*tag*/) override {
    switch (state_) {
      case State::kRunning:
        advance(engine);
        return;
      case State::kPostSend: {
        const OutMessage& m = pending_sends_[send_head_];
        const TimeNs release =
            comm_.isend(rank_, m.dst_rank, m.bytes, window_, engine.now(),
                        pending_tags_[send_head_], m.msgs,
                        priority_rank_ >= 0 &&
                            m.dst_rank == priority_rank_);
        max_send_release_ = std::max(max_send_release_, release);
        if (tracer_ != nullptr)
          tracer_->instant(rank_, TraceCat::kSend, "isend", engine.now(),
                           m.bytes, m.dst_rank);
        if (comm_.fabric().topology().same_node(rank_, m.dst_rank)) {
          ++stats_.msgs_local;
          stats_.bytes_local += m.bytes;
        } else {
          ++stats_.msgs_remote;
          stats_.bytes_remote += m.bytes;
        }
        stats_.msgs_coalesced += m.msgs - 1;
        if (m.msgs > 1) stats_.bytes_packed += m.bytes;
        ++send_head_;
        state_ = State::kRunning;
        advance(engine);
        return;
      }
      case State::kInCopy:
        state_ = State::kRunning;
        advance(engine);
        return;
      case State::kComputingStage1: {
        const auto s = static_cast<std::size_t>(current_block_);
        stage1_done_[s] = true;
        const BlockWork& b = work_->blocks[s];
        for (std::size_t i = 0; i < b.sends.size(); ++i) {
          pending_sends_.push_back(b.sends[i]);
          pending_tags_.push_back(b.send_dst_tags[i]);
        }
        // Incremental aggregates: launch each the moment this block was
        // its last outstanding contributor.
        for (const std::int32_t idx : b.packed_out) {
          if (--packed_remaining_[static_cast<std::size_t>(idx)] == 0) {
            pending_sends_.push_back(
                work_->packed_sends[static_cast<std::size_t>(idx)].msg);
            pending_tags_.push_back(kPackedSendTag);
          }
        }
        if (b.stage2_compute == 0) {
          done_[s] = true;
          --blocks_left_;
        }
        current_block_ = -1;
        state_ = State::kRunning;
        advance(engine);
        return;
      }
      case State::kComputingStage2: {
        const auto s = static_cast<std::size_t>(current_block_);
        done_[s] = true;
        --blocks_left_;
        current_block_ = -1;
        state_ = State::kRunning;
        advance(engine);
        return;
      }
      case State::kWaitingSends:
        stats_.send_wait_ns += engine.now() - wait_start_;
        if (tracer_ != nullptr)
          tracer_->end(rank_, TraceCat::kSendWait, "send-wait",
                       engine.now());
        enter_collective(engine);
        return;
      case State::kIdle:
      case State::kStalled:
      case State::kInCollective:
        AMR_CHECK_MSG(false, "unexpected continuation event");
    }
  }

  void on_message(Engine& engine, std::uint64_t window, TimeNs t,
                  std::int32_t src, std::int64_t dst_tag) override {
    if (window != window_) return;
    if (dst_tag == kPackedSendTag) {
      // A packed transfer credits every destination block at once (at
      // most one aggregate per sender per window, so `src` resolves it).
      bool any = false;
      for (const AggCredit& c : work_->agg_credits) {
        if (c.src_rank != src) continue;
        const auto slot = static_cast<std::size_t>(c.slot);
        arrived_[slot] += c.count;
        AMR_CHECK(arrived_[slot] <= work_->blocks[slot].expected_recvs);
        any = true;
      }
      AMR_CHECK_MSG(any, "packed arrival with no matching credits");
    } else {
      AMR_CHECK(dst_tag >= 0);
      const std::size_t slot = static_cast<std::size_t>(
          slot_of(static_cast<std::int32_t>(dst_tag)));
      ++arrived_[slot];
      AMR_CHECK(arrived_[slot] <= work_->blocks[slot].expected_recvs);
    }
    if (state_ == State::kStalled && runnable_exists()) {
      stats_.recv_wait_ns += t - wait_start_;
      stats_.last_release_src = src;
      if (tracer_ != nullptr)
        tracer_->end(rank_, TraceCat::kRecvWait, "stall", t, src);
      state_ = State::kRunning;
      advance(engine);
    }
  }

  void on_recvs_ready(Engine&, std::uint64_t, TimeNs,
                      std::int32_t) override {
    AMR_CHECK_MSG(false, "overlap runtime never blocks in wait_recvs");
  }

  void on_collective_done(Engine& /*engine*/, std::uint64_t window,
                          TimeNs t) override {
    AMR_CHECK(window == window_);
    AMR_CHECK(state_ == State::kInCollective);
    stats_.sync_ns += t - stats_.collective_entry;
    stats_.done_at = t;
    if (tracer_ != nullptr)
      tracer_->end(rank_, TraceCat::kSync, "collective", t,
                   static_cast<std::int64_t>(window));
    state_ = State::kIdle;
    step_done_ = true;
  }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kRunning,
    kPostSend,
    kInCopy,
    kComputingStage1,
    kComputingStage2,
    kStalled,
    kWaitingSends,
    kInCollective,
  };

  std::int32_t slot_of(std::int32_t block) const {
    for (std::size_t s = 0; s < work_->blocks.size(); ++s)
      if (work_->blocks[s].block == block)
        return static_cast<std::int32_t>(s);
    AMR_CHECK_MSG(false, "message for a block not on this rank");
    return -1;
  }

  /// Stage-1 readiness: single-stage blocks are gated by their arrivals;
  /// two-stage blocks start immediately.
  bool stage1_ready(std::size_t s) const {
    const BlockWork& b = work_->blocks[s];
    if (stage1_done_[s]) return false;
    if (b.stage2_compute > 0) return true;
    return arrived_[s] >= b.expected_recvs;
  }

  bool stage2_ready(std::size_t s) const {
    const BlockWork& b = work_->blocks[s];
    return stage1_done_[s] && !done_[s] && b.stage2_compute > 0 &&
           arrived_[s] >= b.expected_recvs;
  }

  bool runnable_exists() const {
    if (send_head_ < pending_sends_.size()) return true;
    for (std::size_t s = 0; s < work_->blocks.size(); ++s)
      if (stage1_ready(s) || stage2_ready(s)) return true;
    return false;
  }

  TimeNs pack_ns(std::int64_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) /
                               params_.pack_gbytes_per_sec);
  }

  /// Critical-path send priority: rotate the first queued send destined
  /// for the predicted critical rank to the queue head (relative order
  /// of the others preserved). No-op when priority is off or the head
  /// already qualifies, so -1 keeps the legacy FIFO drain bit-identical.
  void promote_priority_send() {
    if (priority_rank_ < 0) return;
    if (pending_sends_[send_head_].dst_rank == priority_rank_) return;
    for (std::size_t i = send_head_ + 1; i < pending_sends_.size(); ++i) {
      if (pending_sends_[i].dst_rank != priority_rank_) continue;
      const auto head = static_cast<std::ptrdiff_t>(send_head_);
      const auto at = static_cast<std::ptrdiff_t>(i);
      std::rotate(pending_sends_.begin() + head, pending_sends_.begin() + at,
                  pending_sends_.begin() + at + 1);
      std::rotate(pending_tags_.begin() + head, pending_tags_.begin() + at,
                  pending_tags_.begin() + at + 1);
      return;
    }
  }

  void enter_collective(Engine& engine) {
    state_ = State::kInCollective;
    stats_.collective_entry = engine.now();
    if (tracer_ != nullptr)
      tracer_->begin(rank_, TraceCat::kSync, "collective", engine.now(),
                     static_cast<std::int64_t>(window_));
    comm_.enter_collective(window_, rank_, engine.now());
  }

  void advance(Engine& engine) {
    // Priority 1: drain pending sends (unblocks remote ranks).
    if (send_head_ < pending_sends_.size()) {
      promote_priority_send();
      // Per-peer aggregates are fused: each contributing block writes its
      // ghost slab straight into the peer buffer as part of stage-1
      // compute (the plan fixes the layout up front), so by the time the
      // last contributor finishes the aggregate is already packed and the
      // launch pays only the post overhead. Eager per-pair sends have no
      // pre-laid buffer and still pay the serial CPU pack here.
      const bool fused = pending_tags_[send_head_] == kPackedSendTag;
      const TimeNs pack =
          (fused ? 0 : pack_ns(pending_sends_[send_head_].bytes)) +
          params_.task_overhead;
      stats_.pack_ns += pack;
      state_ = State::kPostSend;
      if (tracer_ != nullptr)
        tracer_->complete(rank_, TraceCat::kPack, fused ? "launch" : "pack",
                          engine.now(), pack,
                          pending_sends_[send_head_].bytes,
                          pending_sends_[send_head_].dst_rank);
      engine.schedule_after(pack, this, 0);
      return;
    }
    // Priority 2: intra-rank ghost copies, once.
    if (!copy_charged_) {
      copy_charged_ = true;
      if (work_->local_copy_bytes > 0) {
        const auto copy = static_cast<TimeNs>(
                              static_cast<double>(work_->local_copy_bytes) /
                              params_.memcpy_gbytes_per_sec) +
                          params_.task_overhead;
        stats_.pack_ns += copy;
        state_ = State::kInCopy;
        if (tracer_ != nullptr)
          tracer_->complete(rank_, TraceCat::kPack, "local-copy",
                            engine.now(), copy, work_->local_copy_bytes,
                            work_->local_copy_msgs);
        engine.schedule_after(copy, this, 0);
        return;
      }
    }
    if (blocks_left_ > 0) {
      // Priority 3: stage-1 work (produces sends others wait on),
      // walked in the plan's aggregate-grouped order when it has one.
      for (std::size_t i = 0; i < work_->blocks.size(); ++i) {
        const std::size_t s =
            order_.empty() ? i : static_cast<std::size_t>(order_[i]);
        if (!stage1_ready(s)) continue;
        const BlockWork& b = work_->blocks[s];
        current_block_ = static_cast<std::int32_t>(s);
        // Single-stage blocks consume ghosts here: charge the unpack.
        // Aggregated arrivals are read in place (the plan fixes their
        // layout), so only the eager slice costs CPU.
        const TimeNs unpack =
            b.stage2_compute == 0
                ? pack_ns(b.recv_bytes - b.packed_recv_bytes)
                : 0;
        stats_.compute_ns += b.compute + params_.task_overhead;
        stats_.pack_ns += unpack;
        state_ = State::kComputingStage1;
        if (tracer_ != nullptr)
          tracer_->complete(
              rank_, TraceCat::kCompute,
              b.stage2_compute > 0 ? "compute-s1" : "compute",
              engine.now(), b.compute + unpack + params_.task_overhead,
              b.block, b.recv_bytes);
        engine.schedule_after(b.compute + unpack + params_.task_overhead,
                              this, 0);
        return;
      }
      // Priority 4: ready stage-2 work.
      for (std::size_t s = 0; s < work_->blocks.size(); ++s) {
        if (!stage2_ready(s)) continue;
        const BlockWork& b = work_->blocks[s];
        current_block_ = static_cast<std::int32_t>(s);
        // Eager slice only: aggregated ghosts are consumed in place.
        const TimeNs unpack =
            pack_ns(b.recv_bytes - b.packed_recv_bytes);
        stats_.compute_ns += b.stage2_compute + params_.task_overhead;
        stats_.pack_ns += unpack;
        state_ = State::kComputingStage2;
        if (tracer_ != nullptr)
          tracer_->complete(
              rank_, TraceCat::kCompute, "compute-s2", engine.now(),
              b.stage2_compute + unpack + params_.task_overhead, b.block,
              b.recv_bytes);
        engine.schedule_after(
            b.stage2_compute + unpack + params_.task_overhead, this, 0);
        return;
      }
      // Nothing runnable: stall until a message readies a block.
      wait_start_ = engine.now();
      state_ = State::kStalled;
      if (tracer_ != nullptr)
        tracer_->begin(rank_, TraceCat::kRecvWait, "stall", engine.now());
      return;
    }
    // All blocks done: drain send requests, then the collective.
    if (max_send_release_ > engine.now()) {
      wait_start_ = engine.now();
      state_ = State::kWaitingSends;
      if (tracer_ != nullptr)
        tracer_->begin(rank_, TraceCat::kSendWait, "send-wait",
                       engine.now());
      engine.schedule_at(max_send_release_, this, 0);
      return;
    }
    enter_collective(engine);
  }

  std::int32_t rank_;
  Comm& comm_;
  ExecParams params_;
  Tracer* tracer_;

  const OverlapRankWork* work_ = nullptr;
  std::uint64_t window_ = 0;
  State state_ = State::kIdle;
  std::vector<OutMessage> pending_sends_;
  std::vector<std::int64_t> pending_tags_;
  std::vector<std::int32_t> packed_remaining_;  ///< per packed_sends entry
  std::vector<std::int32_t> order_;  ///< stage-1 walk (priority-partitioned)
  std::int32_t priority_rank_ = -1;
  std::size_t send_head_ = 0;
  std::vector<std::int32_t> arrived_;
  std::vector<bool> stage1_done_;
  std::vector<bool> done_;
  std::size_t blocks_left_ = 0;
  std::int32_t current_block_ = -1;
  bool copy_charged_ = false;
  TimeNs max_send_release_ = 0;
  TimeNs wait_start_ = 0;
  RankStepStats stats_;
  bool step_done_ = false;
};

OverlapExecutor::OverlapExecutor(Engine& engine, Comm& comm,
                                 ExecParams params, Tracer* tracer)
    : engine_(engine), comm_(comm), tracer_(tracer) {
  runtimes_.reserve(static_cast<std::size_t>(comm.nranks()));
  for (std::int32_t r = 0; r < comm.nranks(); ++r)
    runtimes_.push_back(
        std::make_unique<OverlapRankRuntime>(r, comm, params, tracer));
}

OverlapExecutor::~OverlapExecutor() = default;

StepResult OverlapExecutor::execute(std::span<const OverlapRankWork> work,
                                    std::uint64_t window,
                                    std::int32_t priority_rank) {
  AMR_CHECK(work.size() == runtimes_.size());
  StepResult result;
  result.step_start = engine_.now();

  expected_scratch_.resize(work.size());
  for (std::size_t r = 0; r < work.size(); ++r)
    expected_scratch_[r] = work[r].expected_recvs;
  comm_.begin_exchange(window, expected_scratch_);

  for (std::size_t r = 0; r < work.size(); ++r) {
    runtimes_[r]->begin_step(work[r], window, result.step_start,
                             priority_rank);
    runtimes_[r]->start(engine_);
  }
  engine_.run();

  result.ranks.reserve(work.size());
  for (const auto& rt : runtimes_) {
    AMR_CHECK_MSG(rt->step_done(), "rank did not complete overlap step");
    result.ranks.push_back(rt->stats());
  }
  AMR_CHECK(comm_.exchange_complete(window));
  comm_.end_exchange(window);
  result.step_end = engine_.now();
  if (tracer_ != nullptr)
    tracer_->complete(Tracer::kTrackSim, TraceCat::kStep, "step",
                      result.step_start, result.wall_ns(),
                      static_cast<std::int64_t>(window),
                      /*b=*/-1);  // overlap steps carry no TaskOrdering
  return result;
}

}  // namespace amr
