#include "amr/exec/plan_cache.hpp"

namespace amr {

std::span<const RankStepWork> ExchangePlanCache::step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
    bool aggregate) {
  if (fresh(mesh.version(), placement_version, have_bsp_) &&
      aggregate_ == aggregate) {
    ++stats_.hits;
    for (auto& rank : bsp_) {
      for (auto& c : rank.computes)
        c.duration = block_costs[static_cast<std::size_t>(c.block)];
      for (auto& c : rank.computes_after_wait)
        c.duration = block_costs[static_cast<std::size_t>(c.block)];
    }
    return bsp_;
  }
  ++stats_.misses;
  bsp_ = build_step_work(mesh, placement, block_costs, nranks, sizes,
                         include_flux, aggregate);
  aggregate_ = aggregate;
  have_bsp_ = true;
  // A key change invalidates both shapes; only the requested one is
  // rebuilt, the other stays stale and must not be served.
  have_overlap_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return bsp_;
}

std::span<const OverlapRankWork> ExchangePlanCache::overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes) {
  if (fresh(mesh.version(), placement_version, have_overlap_)) {
    ++stats_.hits;
    for (auto& rank : overlap_) {
      for (auto& b : rank.blocks)
        b.compute = block_costs[static_cast<std::size_t>(b.block)];
    }
    return overlap_;
  }
  ++stats_.misses;
  overlap_ = build_overlap_work(mesh, placement, block_costs, nranks, sizes);
  have_overlap_ = true;
  have_bsp_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return overlap_;
}

}  // namespace amr
