#include "amr/exec/plan_cache.hpp"

#include "amr/exec/shared_plan_store.hpp"

namespace amr {

namespace {

SharedPlanStore::Key make_key(bool overlap, const AmrMesh& mesh,
                              const Placement& placement,
                              std::int32_t nranks,
                              const MessageSizeModel& sizes,
                              bool include_flux, double stage1_frac,
                              const PackingPolicy& packing) {
  SharedPlanStore::Key key;
  key.overlap = overlap;
  key.nranks = nranks;
  key.include_flux = include_flux;
  key.stage1_frac = stage1_frac;
  key.sizes = sizes;
  key.packing = packing;
  const auto blocks = mesh.blocks();
  key.blocks.assign(blocks.begin(), blocks.end());
  key.placement = placement;
  return key;
}

}  // namespace

void ExchangePlanCache::patch_bsp(std::span<const TimeNs> block_costs) {
  for (auto& rank : bsp_) {
    for (auto& c : rank.computes)
      c.duration = block_costs[static_cast<std::size_t>(c.block)];
    for (auto& c : rank.computes_after_wait)
      c.duration = block_costs[static_cast<std::size_t>(c.block)];
  }
}

void ExchangePlanCache::patch_overlap(std::span<const TimeNs> block_costs,
                                      double stage1_frac) {
  for (auto& rank : overlap_) {
    for (auto& b : rank.blocks) {
      const TimeNs cost = block_costs[static_cast<std::size_t>(b.block)];
      if (stage1_frac > 0.0) {
        // Same split math as build_two_stage_work, so a patched hit is
        // bit-identical to a fresh build.
        const auto stage1 =
            static_cast<TimeNs>(static_cast<double>(cost) * stage1_frac);
        b.compute = stage1;
        b.stage2_compute = cost - stage1;
      } else {
        b.compute = cost;
      }
    }
  }
}

std::span<const RankStepWork> ExchangePlanCache::step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
    bool aggregate) {
  return step_work(mesh, placement, placement_version, block_costs, nranks,
                   sizes, include_flux,
                   aggregate ? PackingPolicy::all() : PackingPolicy::none());
}

std::span<const RankStepWork> ExchangePlanCache::step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
    const PackingPolicy& packing) {
  if (fresh(mesh.version(), placement_version, have_bsp_) &&
      packing_ == packing) {
    ++stats_.hits;
    patch_bsp(block_costs);
    return bsp_;
  }
  ++stats_.misses;
  if (shared_ != nullptr) {
    auto key = make_key(/*overlap=*/false, mesh, placement, nranks, sizes,
                        include_flux, /*stage1_frac=*/0.0, packing);
    if (shared_->lookup_bsp(key, bsp_)) {
      // The store holds the publisher's durations; re-patching makes the
      // plan byte-identical to one built fresh against block_costs.
      ++stats_.share_hits;
      patch_bsp(block_costs);
    } else {
      bsp_ = build_step_work(mesh, placement, block_costs, nranks, sizes,
                             include_flux, packing);
      shared_->publish_bsp(std::move(key), bsp_);
    }
  } else {
    bsp_ = build_step_work(mesh, placement, block_costs, nranks, sizes,
                           include_flux, packing);
  }
  packing_ = packing;
  have_bsp_ = true;
  // A key change invalidates both shapes; only the requested one is
  // rebuilt, the other stays stale and must not be served.
  have_overlap_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return bsp_;
}

std::span<const OverlapRankWork> ExchangePlanCache::overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes,
    const PackingPolicy& packing, double stage1_frac) {
  if (fresh(mesh.version(), placement_version, have_overlap_) &&
      packing_ == packing && overlap_frac_ == stage1_frac) {
    ++stats_.hits;
    patch_overlap(block_costs, stage1_frac);
    return overlap_;
  }
  ++stats_.misses;
  if (shared_ != nullptr) {
    auto key = make_key(/*overlap=*/true, mesh, placement, nranks, sizes,
                        /*include_flux=*/false, stage1_frac, packing);
    if (shared_->lookup_overlap(key, overlap_)) {
      ++stats_.share_hits;
      patch_overlap(block_costs, stage1_frac);
    } else {
      overlap_ = stage1_frac > 0.0
                     ? build_two_stage_work(mesh, placement, block_costs,
                                            nranks, stage1_frac, sizes,
                                            packing)
                     : build_overlap_work(mesh, placement, block_costs,
                                          nranks, sizes, packing);
      shared_->publish_overlap(std::move(key), overlap_);
    }
  } else {
    overlap_ = stage1_frac > 0.0
                   ? build_two_stage_work(mesh, placement, block_costs,
                                          nranks, stage1_frac, sizes, packing)
                   : build_overlap_work(mesh, placement, block_costs, nranks,
                                        sizes, packing);
  }
  packing_ = packing;
  overlap_frac_ = stage1_frac;
  have_overlap_ = true;
  have_bsp_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return overlap_;
}

}  // namespace amr
