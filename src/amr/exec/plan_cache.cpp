#include "amr/exec/plan_cache.hpp"

namespace amr {

std::span<const RankStepWork> ExchangePlanCache::step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
    bool aggregate) {
  return step_work(mesh, placement, placement_version, block_costs, nranks,
                   sizes, include_flux,
                   aggregate ? PackingPolicy::all() : PackingPolicy::none());
}

std::span<const RankStepWork> ExchangePlanCache::step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
    const PackingPolicy& packing) {
  if (fresh(mesh.version(), placement_version, have_bsp_) &&
      packing_ == packing) {
    ++stats_.hits;
    for (auto& rank : bsp_) {
      for (auto& c : rank.computes)
        c.duration = block_costs[static_cast<std::size_t>(c.block)];
      for (auto& c : rank.computes_after_wait)
        c.duration = block_costs[static_cast<std::size_t>(c.block)];
    }
    return bsp_;
  }
  ++stats_.misses;
  bsp_ = build_step_work(mesh, placement, block_costs, nranks, sizes,
                         include_flux, packing);
  packing_ = packing;
  have_bsp_ = true;
  // A key change invalidates both shapes; only the requested one is
  // rebuilt, the other stays stale and must not be served.
  have_overlap_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return bsp_;
}

std::span<const OverlapRankWork> ExchangePlanCache::overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::uint64_t placement_version, std::span<const TimeNs> block_costs,
    std::int32_t nranks, const MessageSizeModel& sizes,
    const PackingPolicy& packing, double stage1_frac) {
  if (fresh(mesh.version(), placement_version, have_overlap_) &&
      packing_ == packing && overlap_frac_ == stage1_frac) {
    ++stats_.hits;
    for (auto& rank : overlap_) {
      for (auto& b : rank.blocks) {
        const TimeNs cost = block_costs[static_cast<std::size_t>(b.block)];
        if (stage1_frac > 0.0) {
          // Same split math as build_two_stage_work, so a patched hit is
          // bit-identical to a fresh build.
          const auto stage1 = static_cast<TimeNs>(
              static_cast<double>(cost) * stage1_frac);
          b.compute = stage1;
          b.stage2_compute = cost - stage1;
        } else {
          b.compute = cost;
        }
      }
    }
    return overlap_;
  }
  ++stats_.misses;
  overlap_ = stage1_frac > 0.0
                 ? build_two_stage_work(mesh, placement, block_costs,
                                        nranks, stage1_frac, sizes, packing)
                 : build_overlap_work(mesh, placement, block_costs, nranks,
                                      sizes, packing);
  packing_ = packing;
  overlap_frac_ = stage1_frac;
  have_overlap_ = true;
  have_bsp_ = false;
  mesh_version_ = mesh.version();
  placement_version_ = placement_version;
  return overlap_;
}

}  // namespace amr
