// Asynchronous (overlap) execution of a timestep (paper §IV-D, strategy
// "Overlapping computation to hide wait stalls"; §II-A task-based
// runtimes).
//
// Instead of the BSP schedule (compute everything, then wait for all
// ghosts), work is tracked per block and the single-core rank runs
// whichever block has its dependencies met, hiding remote stalls behind
// independent work — when any exists. This is exactly where the paper's
// counterintuitive locality tension appears: with strict locality
// preservation, all of a rank's blocks can be waiting on the same remote
// straggler, leaving nothing to overlap (bench_overlap measures this).
//
// Two dependency patterns are supported per block:
//  * single-stage: `compute` consumes ghost data sent up-front by the
//    rank (previous-step state); expected_recvs gates the compute.
//  * two-stage (stage2_compute > 0): stage 1 runs immediately and its
//    completion posts the block's `sends` (freshly produced ghosts);
//    expected_recvs then gates stage 2 — the produce-exchange-consume
//    chain of multi-stage integrators, where overlap actually matters.
//
// Rank-local scheduling priority: pending sends first (the paper's send
// prioritization), then stage-1 work (produces more sends), then ready
// stage-2 work; stall only when nothing is runnable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amr/exec/step_executor.hpp"

namespace amr {

/// Per-block work description for the overlap runtime.
struct BlockWork {
  std::int32_t block = -1;
  TimeNs compute = 0;           ///< stage-1 compute
  TimeNs stage2_compute = 0;    ///< 0 = single-stage block
  std::int32_t expected_recvs = 0;  ///< gates the ghost-consuming stage
  std::int64_t recv_bytes = 0;      ///< unpack volume (charged there)
  std::vector<OutMessage> sends;    ///< posted after stage-1 completes
  std::vector<std::int64_t> send_dst_tags;  ///< dest block per send
};

struct OverlapRankWork {
  std::vector<BlockWork> blocks;
  std::vector<OutMessage> sends;        ///< posted up-front (prev state)
  std::vector<std::int64_t> send_dst_tags;  ///< dest block per send
  std::int64_t local_copy_bytes = 0;
  std::int64_t local_copy_msgs = 0;
  std::int32_t expected_recvs = 0;      ///< total (sum over blocks)
};

/// Build single-stage per-block work from mesh + placement (the overlap
/// analogue of build_step_work; totals match it exactly).
std::vector<OverlapRankWork> build_overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes = {});

/// Build two-stage work: each block spends stage1_frac of its cost in
/// stage 1, sends its ghosts, and the remainder in stage 2 gated on its
/// neighbors' arrivals. Also usable by the BSP executor via
/// two_stage_bsp_work (stage-2 computes land in computes_after_wait).
std::vector<OverlapRankWork> build_two_stage_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes = {});

/// The BSP rendering of the same two-stage step: stage-1 computes, sends,
/// wait-all, stage-2 computes, collective.
std::vector<RankStepWork> two_stage_bsp_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes = {});

/// Executes steps under the overlap model. Produces the same StepResult
/// telemetry as StepExecutor (recv_wait_ns = rank idle time with no
/// runnable block).
class OverlapExecutor {
 public:
  /// `tracer` (optional) receives per-rank task spans (stage-1/stage-2
  /// compute, pack, stalls) and a per-window span on the driver track.
  OverlapExecutor(Engine& engine, Comm& comm, ExecParams params = {},
                  Tracer* tracer = nullptr);
  ~OverlapExecutor();

  StepResult execute(std::span<const OverlapRankWork> work,
                     std::uint64_t window);

 private:
  class OverlapRankRuntime;
  Engine& engine_;
  Comm& comm_;
  Tracer* tracer_;
  std::vector<std::unique_ptr<OverlapRankRuntime>> runtimes_;
  std::vector<std::int32_t> expected_scratch_;  // reused across steps
};

}  // namespace amr
