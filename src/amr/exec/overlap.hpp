// Asynchronous (overlap) execution of a timestep (paper §IV-D, strategy
// "Overlapping computation to hide wait stalls"; §II-A task-based
// runtimes).
//
// Instead of the BSP schedule (compute everything, then wait for all
// ghosts), work is tracked per block and the single-core rank runs
// whichever block has its dependencies met, hiding remote stalls behind
// independent work — when any exists. This is exactly where the paper's
// counterintuitive locality tension appears: with strict locality
// preservation, all of a rank's blocks can be waiting on the same remote
// straggler, leaving nothing to overlap (bench_overlap measures this).
//
// Two dependency patterns are supported per block:
//  * single-stage: `compute` consumes ghost data sent up-front by the
//    rank (previous-step state); expected_recvs gates the compute.
//  * two-stage (stage2_compute > 0): stage 1 runs immediately and its
//    completion posts the block's `sends` (freshly produced ghosts);
//    expected_recvs then gates stage 2 — the produce-exchange-consume
//    chain of multi-stage integrators, where overlap actually matters.
//
// Rank-local scheduling priority: pending sends first (the paper's send
// prioritization), then stage-1 work (produces more sends), then ready
// stage-2 work; stall only when nothing is runnable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amr/exec/step_executor.hpp"

namespace amr {

/// dst_tag of an aggregated (packed) transfer. Ordinary overlap sends tag
/// the destination block; a packed transfer carries messages for several
/// blocks, so the receiver resolves its per-block credits from
/// OverlapRankWork::agg_credits keyed by the sender rank instead.
inline constexpr std::int64_t kPackedSendTag = -2;

/// Per-block work description for the overlap runtime.
struct BlockWork {
  std::int32_t block = -1;
  TimeNs compute = 0;           ///< stage-1 compute
  TimeNs stage2_compute = 0;    ///< 0 = single-stage block
  std::int32_t expected_recvs = 0;  ///< gates the ghost-consuming stage
  std::int64_t recv_bytes = 0;      ///< unpack volume (charged there)
  /// Slice of recv_bytes that arrives inside per-peer aggregates. The
  /// receiver's plan fixes the aggregate layout, so the ghost-consuming
  /// stage reads those slabs straight out of the receive buffer and only
  /// the eager remainder pays a CPU unpack.
  std::int64_t packed_recv_bytes = 0;
  std::vector<OutMessage> sends;    ///< posted after stage-1 completes
  std::vector<std::int64_t> send_dst_tags;  ///< dest block per send
  /// Aggregates (indices into OverlapRankWork::packed_sends) this block
  /// contributes to; a two-stage aggregate launches incrementally, as
  /// soon as its last contributing block finishes stage 1.
  std::vector<std::int32_t> packed_out;
};

/// One per-destination aggregate of the step (OutMessage::msgs >= 2).
struct PackedSend {
  OutMessage msg;
  /// Distinct producing blocks gating the launch; 0 = no compute
  /// dependency (previous-step ghosts), queued at step start.
  std::int32_t contributors = 0;
};

/// Receiver-side credit of a packed transfer: `count` logical messages
/// for block slot `slot` arrive with the aggregate from `src_rank` (at
/// most one aggregate per sender per exchange window).
struct AggCredit {
  std::int32_t src_rank = -1;
  std::int32_t slot = -1;
  std::int32_t count = 0;
};

struct OverlapRankWork {
  std::vector<BlockWork> blocks;
  std::vector<OutMessage> sends;        ///< posted up-front (prev state)
  std::vector<std::int64_t> send_dst_tags;  ///< dest block per send
  std::vector<PackedSend> packed_sends;     ///< per-destination aggregates
  std::vector<AggCredit> agg_credits;   ///< arrivals owed by aggregates
  /// Stage-1 scheduling order (block slots). Contributors are grouped by
  /// aggregate, shortest contributor set first, so aggregates finish and
  /// launch throughout stage 1 instead of clustering at its end. Empty =
  /// slot order (plans without aggregates).
  std::vector<std::int32_t> stage1_order;
  std::int64_t local_copy_bytes = 0;
  std::int64_t local_copy_msgs = 0;
  std::int32_t expected_recvs = 0;      ///< total transfers (not logical)
};

/// Build single-stage per-block work from mesh + placement (the overlap
/// analogue of build_step_work; totals match it exactly).
std::vector<OverlapRankWork> build_overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes = {});

/// Adaptive variant: (src,dst) pairs the policy packs coalesce into one
/// PackedSend (queued at step start — previous-step ghosts have no
/// compute dependency) while eager pairs keep per-message sends;
/// receivers get one arrival per aggregate, credited to every
/// destination block via agg_credits. PackingPolicy::none() is
/// byte-identical to the plain build.
std::vector<OverlapRankWork> build_overlap_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, const PackingPolicy& packing);

/// Build two-stage work: each block spends stage1_frac of its cost in
/// stage 1, sends its ghosts, and the remainder in stage 2 gated on its
/// neighbors' arrivals. Also usable by the BSP executor via
/// two_stage_bsp_work (stage-2 computes land in computes_after_wait).
std::vector<OverlapRankWork> build_two_stage_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes = {});

/// Adaptive two-stage variant: packed pairs become incremental
/// aggregates — each contributing block's stage-1 completion decrements
/// the aggregate's countdown and the transfer launches the moment the
/// last contributor finishes, instead of waiting for the whole step's
/// sends. Eager pairs attach to their producing block as usual.
std::vector<OverlapRankWork> build_two_stage_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes,
    const PackingPolicy& packing);

/// The BSP rendering of the same two-stage step: stage-1 computes, sends,
/// wait-all, stage-2 computes, collective.
std::vector<RankStepWork> two_stage_bsp_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    double stage1_frac, const MessageSizeModel& sizes = {});

/// Executes steps under the overlap model. Produces the same StepResult
/// telemetry as StepExecutor (recv_wait_ns = rank idle time with no
/// runnable block).
class OverlapExecutor {
 public:
  /// `tracer` (optional) receives per-rank task spans (stage-1/stage-2
  /// compute, pack, stalls) and a per-window span on the driver track.
  OverlapExecutor(Engine& engine, Comm& comm, ExecParams params = {},
                  Tracer* tracer = nullptr);
  ~OverlapExecutor();

  /// `priority_rank` >= 0 applies critical-path send priority: every
  /// rank dispatches queued sends destined for that rank before its
  /// other pending sends (relative order otherwise preserved). -1 keeps
  /// the plain FIFO drain, byte-identical to prior behavior.
  StepResult execute(std::span<const OverlapRankWork> work,
                     std::uint64_t window, std::int32_t priority_rank = -1);

 private:
  class OverlapRankRuntime;
  Engine& engine_;
  Comm& comm_;
  Tracer* tracer_;
  std::vector<std::unique_ptr<OverlapRankRuntime>> runtimes_;
  std::vector<std::int32_t> expected_scratch_;  // reused across steps
};

}  // namespace amr
