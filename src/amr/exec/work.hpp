// Per-rank, per-step work descriptions and their construction from a mesh
// + placement.
//
// A timestep's work on a rank (paper §II-B): compute kernels on local
// blocks, boundary-exchange messages to neighbor blocks (memcpy when
// co-located, MPI otherwise), and the count of messages the rank will
// receive. The task *ordering* is chosen later by the scheduler
// (TaskOrdering) — that choice is the Fig 3/Fig 4b tuning lever.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amr/common/time.hpp"
#include "amr/mesh/mesh.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/placement/policy.hpp"

namespace amr {

struct OutMessage {
  std::int32_t dst_rank;
  std::int64_t bytes;
  std::int32_t src_block;  ///< first contributing block when aggregated
  /// Logical boundary messages packed into this transfer. 1 on the legacy
  /// per-neighbor-pair path; the per-destination aggregate of an exchange
  /// window carries every same-(src,dst) message of the step.
  std::int32_t msgs = 1;
};

struct BlockCompute {
  std::int32_t block;
  TimeNs duration;
};

struct RankStepWork {
  std::vector<BlockCompute> computes;
  /// Computes that consume this step's arrivals (stage-2 kernels of a
  /// multi-stage integrator); scheduled after the receive wait.
  std::vector<BlockCompute> computes_after_wait;
  std::vector<OutMessage> sends;        ///< to other ranks (shm or fabric)
  std::int64_t local_copy_bytes = 0;    ///< intra-rank ghost memcpy volume
  std::int64_t local_copy_msgs = 0;     ///< intra-rank neighbor pairs
  std::int32_t expected_recvs = 0;
  std::int64_t recv_bytes = 0;          ///< incoming ghost volume (unpack)
};

/// Per-peer packing decision for the boundary exchange (the adaptive
/// generalization of the all-or-nothing `aggregate` flag). A (src,dst)
/// pair's messages coalesce into one packed transfer when their *mean*
/// payload is at or below the threshold for that pair's fabric path —
/// small messages amortize the per-message launch cost by packing, large
/// ones already pay mostly serialization and go eagerly so receivers see
/// their first ghost sooner. Thresholds are pure functions of modeled
/// fabric costs (FabricParams::pack_threshold), so plans stay
/// deterministic and checkpoint/replay-compatible.
struct PackingPolicy {
  /// Pack when mean bytes/msg <= threshold; <= 0 disables packing on
  /// that path. Values at or above kPackAlways mean "always pack".
  std::int64_t shm_threshold = 0;
  std::int64_t remote_threshold = 0;
  /// Ranks per node, for the shm-vs-remote path split; 0 = treat every
  /// pair as remote.
  std::int32_t ranks_per_node = 0;

  /// Sentinel large enough to dominate any real payload without risking
  /// signed overflow in `bytes <= threshold * msgs`.
  static constexpr std::int64_t kPackAlways = std::int64_t{1} << 40;

  static PackingPolicy none() { return {}; }
  static PackingPolicy all() { return {kPackAlways, kPackAlways, 0}; }

  bool active() const { return shm_threshold > 0 || remote_threshold > 0; }
  bool pack_all() const {
    return shm_threshold >= kPackAlways && remote_threshold >= kPackAlways;
  }
  /// Decision for one (src,dst) pair given its step totals.
  bool pack(std::int32_t src, std::int32_t dst, std::int64_t bytes,
            std::int64_t msgs) const {
    if (msgs < 2) return false;  // nothing to coalesce
    const bool same_node =
        ranks_per_node > 0 && src / ranks_per_node == dst / ranks_per_node;
    const std::int64_t t = same_node ? shm_threshold : remote_threshold;
    return t > 0 && bytes <= t * msgs;
  }
  friend bool operator==(const PackingPolicy&,
                         const PackingPolicy&) = default;
};

/// Task ordering policies (paper §IV-B "Task Reordering", Fig 4b).
enum class TaskOrdering {
  kComputeFirst,  ///< untuned: sends dispatched after compute
  kSendFirst,     ///< tuned: prioritize sends to unblock remote waiters
};

constexpr const char* to_string(TaskOrdering o) {
  return o == TaskOrdering::kComputeFirst ? "compute-first" : "send-first";
}

/// Build every rank's step work from the mesh, a placement, and per-block
/// compute durations (already fault-adjusted). Boundary exchange sends one
/// message per directed neighbor pair; message sizes follow `sizes`.
/// With `include_flux`, fine blocks additionally send flux corrections to
/// their coarser face neighbors (paper §II-B) — small peer-to-peer
/// messages that exist only along refinement boundaries.
///
/// With `aggregate`, all same-(src,dst) messages of the step coalesce
/// into one per-destination packed transfer (how real AMR frameworks
/// pack all ghost data for a neighbor rank into one buffer): bytes are
/// summed, the logical message count rides in OutMessage::msgs, and the
/// receiver expects one arrival per sending peer instead of one per
/// block pair. Aggregates appear in first-touch (block-emission) order,
/// so the build stays deterministic; byte totals and recv_bytes are
/// identical to the legacy path.
std::vector<RankStepWork> build_step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes = {}, bool include_flux = false,
    bool aggregate = false);

/// Adaptive variant: packing decided per (src,dst) pair by `packing`.
/// PackingPolicy::none() is byte-identical to the legacy build,
/// PackingPolicy::all() to the `aggregate` build; genuine thresholds
/// split each rank's peers into packed aggregates (first-touch order,
/// one arrival at the receiver) and eager per-message sends (original
/// emission order). Byte totals and recv_bytes always match the legacy
/// path.
std::vector<RankStepWork> build_step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, bool include_flux,
    const PackingPolicy& packing);

}  // namespace amr
