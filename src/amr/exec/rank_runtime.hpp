// Per-rank execution state machine.
//
// Each rank runs its step's task list sequentially on the DES: compute
// kernels advance the rank's clock; pack+send tasks post messages to the
// simulated fabric; waits park the rank until the Comm layer signals
// arrivals; the closing blocking collective parks it until every rank has
// entered. The per-phase accumulators it keeps are exactly the telemetry
// the paper's collection layer records.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/des/engine.hpp"
#include "amr/exec/work.hpp"
#include "amr/simmpi/comm.hpp"

namespace amr {

/// Software-stack timing constants for task execution.
struct ExecParams {
  double pack_gbytes_per_sec = 6.0;    ///< ghost pack/unpack bandwidth
  double memcpy_gbytes_per_sec = 10.0; ///< intra-rank ghost copy bandwidth
  TimeNs task_overhead = us(0.2);      ///< per-task runtime dispatch cost
};

/// Telemetry accumulated by one rank over one step.
struct RankStepStats {
  TimeNs compute_ns = 0;
  TimeNs pack_ns = 0;        ///< pack + local copies (part of comm)
  TimeNs recv_wait_ns = 0;
  TimeNs send_wait_ns = 0;
  TimeNs sync_ns = 0;
  TimeNs collective_entry = 0;  ///< absolute entry time into the sync
  TimeNs done_at = 0;           ///< absolute completion time
  std::int64_t msgs_local = 0;    ///< intra-node (shm) sends
  std::int64_t msgs_remote = 0;   ///< inter-node sends
  std::int64_t bytes_local = 0;
  std::int64_t bytes_remote = 0;
  /// Logical boundary messages absorbed into aggregated transfers this
  /// step (sum of msgs - 1 over the rank's sends); 0 on the legacy path.
  std::int64_t msgs_coalesced = 0;
  std::int64_t bytes_packed = 0;  ///< bytes sent in aggregated transfers
  std::int32_t last_release_src = -1;  ///< sender ending the last stall

  TimeNs comm_ns() const { return pack_ns + recv_wait_ns + send_wait_ns; }
};

class RankRuntime final : public RankEndpoint, public EventHandler {
 public:
  /// `tracer` (optional) receives task-level spans on the rank's track:
  /// compute/pack/unpack spans (tagged with the step's TaskOrdering),
  /// isend instants, recv/send-wait stalls, and collective spans.
  RankRuntime(std::int32_t rank, Comm& comm, ExecParams params,
              Tracer* tracer = nullptr);

  /// Arm the rank for a step: build the task order from `work`, starting
  /// at absolute time `start`. Exchange and collective use window ids
  /// `window` (the executor opens/closes them). `priority_rank` >= 0
  /// applies critical-path send priority: sends destined for that rank
  /// are scheduled before the step's other sends (relative order
  /// otherwise preserved); -1 keeps the legacy order bit-identical.
  void begin_step(const RankStepWork& work, TaskOrdering ordering,
                  std::uint64_t window, TimeNs start,
                  std::int32_t priority_rank = -1);

  /// Kick off execution (schedules the first advance).
  void start(Engine& engine);

  bool step_done() const { return step_done_; }
  const RankStepStats& stats() const { return stats_; }
  std::int32_t rank() const { return rank_; }

  // RankEndpoint
  void on_recvs_ready(Engine& engine, std::uint64_t window, TimeNs t,
                      std::int32_t releasing_src) override;
  void on_collective_done(Engine& engine, std::uint64_t window,
                          TimeNs t) override;

  // EventHandler (self-scheduled continuations)
  void on_event(Engine& engine, std::uint64_t tag) override;

 private:
  enum class TaskKind : std::uint8_t {
    kCompute,
    kPackSend,
    kLocalCopy,
    kWaitRecvs,
    kUnpack,
    kWaitSends,
  };
  struct Task {
    TaskKind kind;
    TimeNs duration = 0;       // compute / copy / pack part of send
    std::int32_t dst = -1;     // send target rank
    std::int64_t bytes = 0;
    std::int32_t msgs = 1;     // logical messages in a kPackSend transfer
  };
  enum class State : std::uint8_t {
    kIdle,
    kRunning,        // between events, advance() drives
    kInTask,         // a timed task is in flight (continuation event)
    kPostSend,       // pack done; isend fires on the continuation event
    kWaitingRecvs,
    kWaitingSends,
    kInCollective,
  };

  void advance(Engine& engine);
  TimeNs pack_ns(std::int64_t bytes) const;
  /// Schedule the rank's next self-event. Sequential mode keeps the
  /// legacy FIFO key (exact seed behaviour); sharded mode uses the
  /// canonical rank key — legal because the state machine has at most
  /// one outstanding self-event per rank, so the key is unique among
  /// pending events of its class.
  void self_schedule(Engine& engine, TimeNs t);

  std::int32_t rank_;
  Comm& comm_;
  ExecParams params_;
  Tracer* tracer_;
  std::int64_t ordering_tag_ = 0;  ///< TaskOrdering of the current step
  std::int32_t priority_rank_ = -1;  ///< critical-path send target

  std::vector<Task> tasks_;
  std::size_t pc_ = 0;
  std::uint64_t window_ = 0;
  State state_ = State::kIdle;
  TimeNs wait_start_ = 0;
  TimeNs max_send_release_ = 0;
  bool step_done_ = false;
  RankStepStats stats_;
};

}  // namespace amr
