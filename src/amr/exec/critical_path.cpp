#include "amr/exec/critical_path.hpp"

#include "amr/common/check.hpp"

namespace amr {

std::int32_t CriticalPathAnalyzer::straggler_of(const StepResult& result) {
  AMR_CHECK(!result.ranks.empty());
  std::size_t straggler = 0;
  for (std::size_t r = 1; r < result.ranks.size(); ++r) {
    if (result.ranks[r].collective_entry >
        result.ranks[straggler].collective_entry)
      straggler = r;
  }
  return static_cast<std::int32_t>(straggler);
}

WindowPath CriticalPathAnalyzer::observe(const StepResult& result) {
  const auto straggler =
      static_cast<std::size_t>(straggler_of(result));
  const RankStepStats& s = result.ranks[straggler];
  const TimeNs window = result.wall_ns();
  const TimeNs wait = s.recv_wait_ns + s.send_wait_ns;

  ++stats_.windows;
  stats_.window_ms.add(to_ms(window));
  stats_.straggler_wait_ms.add(to_ms(wait));
  stats_.straggler_compute_ms.add(to_ms(s.compute_ns));

  WindowPath path;
  path.straggler = static_cast<std::int32_t>(straggler);
  const bool stalled =
      window > 0 && static_cast<double>(wait) >
                        wait_threshold_frac_ * static_cast<double>(window);
  if (stalled && s.last_release_src >= 0 &&
      s.recv_wait_ns >= s.send_wait_ns) {
    ++stats_.two_rank_paths;
    path.two_rank = true;
    path.release_src = s.last_release_src;
  } else {
    ++stats_.one_rank_paths;
  }
  return path;
}

}  // namespace amr
