// Critical-path analysis of synchronization windows (paper §IV-D).
//
// The critical path is the dependent-task chain ending at the straggler's
// collective entry. With one P2P round per window, at most two ranks are
// implicated: either the straggler is purely compute-bound (one-rank
// path) or it stalled waiting for a message, implicating exactly the
// sender of the message that released the stall (two-rank path). The
// analyzer classifies each executed window and accumulates the statistics
// reported by bench_fig4_critpath.
#pragma once

#include <cstdint>

#include "amr/common/stats.hpp"
#include "amr/exec/step_executor.hpp"

namespace amr {

struct CriticalPathStats {
  std::int64_t windows = 0;
  std::int64_t one_rank_paths = 0;   ///< straggler compute-bound
  std::int64_t two_rank_paths = 0;   ///< straggler stalled on one sender
  RunningStats straggler_wait_ms;    ///< MPI wait on the critical path
  RunningStats straggler_compute_ms;
  RunningStats window_ms;

  double two_rank_fraction() const {
    return windows > 0
               ? static_cast<double>(two_rank_paths) /
                     static_cast<double>(windows)
               : 0.0;
  }
};

/// Classification of one window's critical path (returned by observe so
/// callers — e.g. the trace overlay — can mark the implicated ranks).
struct WindowPath {
  std::int32_t straggler = -1;
  bool two_rank = false;
  std::int32_t release_src = -1;  ///< implicated sender (two-rank only)
};

class CriticalPathAnalyzer {
 public:
  /// `wait_threshold_frac`: minimum fraction of the window the straggler
  /// must have spent in MPI waits for the path to count as two-rank.
  explicit CriticalPathAnalyzer(double wait_threshold_frac = 0.02)
      : wait_threshold_frac_(wait_threshold_frac) {}

  /// Classify one executed window, accumulate stats, and return the
  /// per-window classification.
  WindowPath observe(const StepResult& result);

  const CriticalPathStats& stats() const { return stats_; }

  /// Adopt checkpointed accumulators (checkpoint/restart).
  void restore_stats(const CriticalPathStats& stats) { stats_ = stats; }

  /// The straggler (latest collective entry) of a step result.
  static std::int32_t straggler_of(const StepResult& result);

 private:
  double wait_threshold_frac_;
  CriticalPathStats stats_;
};

}  // namespace amr
