// BSP step execution across all ranks.
//
// One call = one synchronization window: open the exchange, arm every
// rank's task list, drain the event queue, close the window. The result
// carries per-rank phase telemetry plus window timing for critical-path
// analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amr/des/sharded_engine.hpp"
#include "amr/exec/rank_runtime.hpp"

namespace amr {

struct StepResult {
  std::vector<RankStepStats> ranks;
  /// Per-shard dispatch statistics for this window (empty unless the
  /// comm runs on a sharded engine).
  std::vector<ShardEpochStats> shards;
  TimeNs step_start = 0;
  TimeNs step_end = 0;  ///< collective completion (same for all ranks)

  TimeNs wall_ns() const { return step_end - step_start; }
};

class StepExecutor {
 public:
  /// `tracer` (optional) is forwarded to every rank runtime and receives
  /// a per-window span on the driver track.
  StepExecutor(Engine& engine, Comm& comm, ExecParams params = {},
               Tracer* tracer = nullptr);

  /// Execute one step. `window` must be unique per call (use the step
  /// number). All ranks start simultaneously at engine.now(). When the
  /// comm is sharded, each rank starts on its own shard engine and the
  /// window runs under the sharded epoch loop instead of engine.run().
  /// `priority_rank` >= 0 schedules every rank's sends to that rank
  /// ahead of its other sends (critical-path send priority); -1 keeps
  /// the legacy schedule bit-identical.
  StepResult execute(std::span<const RankStepWork> work,
                     TaskOrdering ordering, std::uint64_t window,
                     std::int32_t priority_rank = -1);

 private:
  Engine& engine_;
  Comm& comm_;
  Tracer* tracer_;
  std::vector<std::unique_ptr<RankRuntime>> runtimes_;
  std::vector<std::int32_t> expected_scratch_;  // reused across steps
};

}  // namespace amr
