#include "amr/exec/shared_plan_store.hpp"

namespace amr {

namespace {

/// FNV-1a 64-bit over raw bytes — a prefilter only; lookups always
/// confirm with exact key equality, so collisions cost a compare, never
/// a wrong plan.
std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_pod(std::uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv_bytes(h, &v, sizeof(T));
}

}  // namespace

std::uint64_t SharedPlanStore::Key::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv_pod(h, overlap);
  h = fnv_pod(h, nranks);
  h = fnv_pod(h, include_flux);
  h = fnv_pod(h, stage1_frac);
  h = fnv_pod(h, sizes.cells);
  h = fnv_pod(h, sizes.ghost);
  h = fnv_pod(h, sizes.nvars);
  h = fnv_pod(h, sizes.bytes_per_value);
  h = fnv_pod(h, packing.shm_threshold);
  h = fnv_pod(h, packing.remote_threshold);
  h = fnv_pod(h, packing.ranks_per_node);
  h = fnv_bytes(h, blocks.data(), blocks.size() * sizeof(BlockCoord));
  h = fnv_bytes(h, placement.data(),
                placement.size() * sizeof(std::int32_t));
  return h;
}

SharedPlanStore::SharedPlanStore(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

const SharedPlanStore::Entry* SharedPlanStore::find_locked(
    std::uint64_t hash, const Key& key) const {
  for (const Entry& e : entries_)
    if (e.hash == hash && e.key == key) return &e;
  return nullptr;
}

bool SharedPlanStore::lookup_bsp(const Key& key,
                                 std::vector<RankStepWork>& out) {
  const std::uint64_t h = key.hash();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_locked(h, key);
  if (e == nullptr) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  out = e->bsp;
  return true;
}

bool SharedPlanStore::lookup_overlap(const Key& key,
                                     std::vector<OverlapRankWork>& out) {
  const std::uint64_t h = key.hash();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_locked(h, key);
  if (e == nullptr) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  out = e->overlap;
  return true;
}

void SharedPlanStore::publish_locked(std::uint64_t hash, Key&& key,
                                     std::vector<RankStepWork> bsp,
                                     std::vector<OverlapRankWork> overlap) {
  if (find_locked(hash, key) != nullptr) return;  // racing builder lost
  while (entries_.size() >= max_entries_) {
    entries_.pop_front();
    ++stats_.evicted;
  }
  Entry e;
  e.hash = hash;
  e.key = std::move(key);
  e.bsp = std::move(bsp);
  e.overlap = std::move(overlap);
  entries_.push_back(std::move(e));
  ++stats_.published;
}

void SharedPlanStore::publish_bsp(Key key,
                                  const std::vector<RankStepWork>& plan) {
  const std::uint64_t h = key.hash();
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked(h, std::move(key), plan, {});
}

void SharedPlanStore::publish_overlap(
    Key key, const std::vector<OverlapRankWork>& plan) {
  const std::uint64_t h = key.hash();
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked(h, std::move(key), {}, plan);
}

SharedPlanStore::Stats SharedPlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SharedPlanStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace amr
