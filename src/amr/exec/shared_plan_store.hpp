// Cross-tenant exchange-plan store for the multi-tenant serve scheduler.
//
// A single tenant's ExchangePlanCache is version-keyed: (mesh version,
// placement version) is enough because one simulation owns its own
// counters. Versions mean nothing across tenants — two fleets at "mesh
// v7 / placement v3" can hold arbitrarily different meshes — so the
// shared store keys on *content*: every input that shapes plan bytes
// other than the per-step compute durations (which every consumer
// re-patches, exactly as a private cache hit does).
//
//   key = (mode, nranks, flux, stage split, message-size model,
//          packing policy, mesh leaves, placement vector)
//
// Identical-fingerprint tenant fleets — policy sweeps fanned out over
// the same workload, what-if replays of one snapshot, N users running
// the same scenario — walk identical (mesh, placement) sequences, so
// the first tenant through a regrid epoch builds the plan and the rest
// copy it out instead of re-running neighbor collection. Lookups
// compare the full key (hash prefilter, then exact vector equality):
// a hit is provably the plan the consumer would have built, which is
// what keeps shared results byte-identical to private-cache runs. Any
// mode-matrix mismatch — execution mode, packing thresholds, flux
// flag, message sizes — simply never matches, isolating the tenants.
//
// Thread-safe (tenants slice concurrently on the serve pool); bounded
// FIFO capacity so a long-lived server cannot hoard dead epochs. Hits
// and misses under capacity pressure depend on tenant interleaving, but
// only perf and stats do — plan bytes never.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "amr/exec/overlap.hpp"
#include "amr/exec/work.hpp"
#include "amr/mesh/coords.hpp"
#include "amr/placement/metrics.hpp"

namespace amr {

class SharedPlanStore {
 public:
  struct Stats {
    std::int64_t hits = 0;       ///< lookups served from the store
    std::int64_t misses = 0;     ///< lookups that found no entry
    std::int64_t published = 0;  ///< plans inserted
    std::int64_t evicted = 0;    ///< entries dropped to the capacity cap
  };

  /// Everything that shapes plan bytes except compute durations. The
  /// blocks/placement vectors are owned copies: the store must outlive
  /// any mesh epoch it has seen.
  struct Key {
    bool overlap = false;  ///< overlap_work vs step_work shape
    std::int32_t nranks = 0;
    bool include_flux = false;  ///< BSP only (overlap builds carry none)
    double stage1_frac = 0.0;   ///< overlap two-stage split (0 = legacy)
    MessageSizeModel sizes;
    PackingPolicy packing;
    std::vector<BlockCoord> blocks;
    std::vector<std::int32_t> placement;

    friend bool operator==(const Key&, const Key&) = default;
    std::uint64_t hash() const;
  };

  /// At most `max_entries` plans are retained (oldest-published first
  /// out). The default comfortably covers the live regrid epochs of a
  /// few distinct fleets without letting a day-long server accumulate
  /// every epoch it ever saw.
  explicit SharedPlanStore(std::size_t max_entries = 64);

  /// Copy the stored BSP plan for `key` into `out` (true on a hit).
  /// Durations in `out` are the publisher's — the caller re-patches
  /// them, same as a private-cache hit.
  bool lookup_bsp(const Key& key, std::vector<RankStepWork>& out);
  /// Overlap analogue.
  bool lookup_overlap(const Key& key, std::vector<OverlapRankWork>& out);

  /// Insert a freshly built plan (no-op if the key is already present —
  /// two tenants can race to build the same epoch; first insert wins and
  /// both results are identical by construction).
  void publish_bsp(Key key, const std::vector<RankStepWork>& plan);
  void publish_overlap(Key key, const std::vector<OverlapRankWork>& plan);

  /// Snapshot of the counters (mutex-consistent copy).
  Stats stats() const;

  /// Entries currently held.
  std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    Key key;
    // Exactly one is populated, per key.overlap.
    std::vector<RankStepWork> bsp;
    std::vector<OverlapRankWork> overlap;
  };

  const Entry* find_locked(std::uint64_t hash, const Key& key) const;
  void publish_locked(std::uint64_t hash, Key&& key,
                      std::vector<RankStepWork> bsp,
                      std::vector<OverlapRankWork> overlap);

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::deque<Entry> entries_;  ///< publication order (FIFO eviction)
  Stats stats_;
};

}  // namespace amr
