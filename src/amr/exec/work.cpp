#include "amr/exec/work.hpp"

#include "amr/common/check.hpp"

namespace amr {

std::vector<RankStepWork> build_step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, bool include_flux, bool aggregate) {
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(block_costs.size() == mesh.size());
  std::vector<RankStepWork> work(static_cast<std::size_t>(nranks));

  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const std::int32_t src = placement[b];
    AMR_CHECK(src >= 0 && src < nranks);
    auto& w = work[static_cast<std::size_t>(src)];
    w.computes.push_back(
        BlockCompute{static_cast<std::int32_t>(b), block_costs[b]});
    for (const Neighbor& n : lists[b]) {
      const std::int32_t dst =
          placement[static_cast<std::size_t>(n.index)];
      auto emit = [&](std::int64_t bytes) {
        if (dst == src) {
          w.local_copy_bytes += bytes;
          ++w.local_copy_msgs;
          return;
        }
        work[static_cast<std::size_t>(dst)].recv_bytes += bytes;
        if (aggregate) {
          // Fold into this rank's existing aggregate for dst if one
          // exists. Destinations repeat in bursts (SFC-adjacent blocks
          // share neighbor ranks), so scan newest-first; sends per rank
          // number in the tens, keeping this linear probe cheap.
          for (auto it = w.sends.rbegin(); it != w.sends.rend(); ++it) {
            if (it->dst_rank == dst) {
              it->bytes += bytes;
              ++it->msgs;
              return;
            }
          }
        }
        w.sends.push_back(
            OutMessage{dst, bytes, static_cast<std::int32_t>(b), 1});
        ++work[static_cast<std::size_t>(dst)].expected_recvs;
      };
      emit(sizes.bytes(n.kind));
      // Flux correction: a fine block sends one extra small message to
      // each coarser face neighbor (conserved-quantity consistency,
      // paper §II-B); exists only along refinement boundaries.
      if (include_flux && n.kind == NeighborKind::kFace &&
          n.level_diff == -1)
        emit(sizes.flux_bytes());
    }
  }
  return work;
}

}  // namespace amr
