#include "amr/exec/work.hpp"

#include "amr/common/check.hpp"

namespace amr {

std::vector<RankStepWork> build_step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, bool include_flux, bool aggregate) {
  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(block_costs.size() == mesh.size());
  std::vector<RankStepWork> work(static_cast<std::size_t>(nranks));

  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const std::int32_t src = placement[b];
    AMR_CHECK(src >= 0 && src < nranks);
    auto& w = work[static_cast<std::size_t>(src)];
    w.computes.push_back(
        BlockCompute{static_cast<std::int32_t>(b), block_costs[b]});
    for (const Neighbor& n : lists[b]) {
      const std::int32_t dst =
          placement[static_cast<std::size_t>(n.index)];
      auto emit = [&](std::int64_t bytes) {
        if (dst == src) {
          w.local_copy_bytes += bytes;
          ++w.local_copy_msgs;
          return;
        }
        work[static_cast<std::size_t>(dst)].recv_bytes += bytes;
        if (aggregate) {
          // Fold into this rank's existing aggregate for dst if one
          // exists. Destinations repeat in bursts (SFC-adjacent blocks
          // share neighbor ranks), so scan newest-first; sends per rank
          // number in the tens, keeping this linear probe cheap.
          for (auto it = w.sends.rbegin(); it != w.sends.rend(); ++it) {
            if (it->dst_rank == dst) {
              it->bytes += bytes;
              ++it->msgs;
              return;
            }
          }
        }
        w.sends.push_back(
            OutMessage{dst, bytes, static_cast<std::int32_t>(b), 1});
        ++work[static_cast<std::size_t>(dst)].expected_recvs;
      };
      emit(sizes.bytes(n.kind));
      // Flux correction: a fine block sends one extra small message to
      // each coarser face neighbor (conserved-quantity consistency,
      // paper §II-B); exists only along refinement boundaries.
      if (include_flux && n.kind == NeighborKind::kFace &&
          n.level_diff == -1)
        emit(sizes.flux_bytes());
    }
  }
  return work;
}

std::vector<RankStepWork> build_step_work(
    const AmrMesh& mesh, const Placement& placement,
    std::span<const TimeNs> block_costs, std::int32_t nranks,
    const MessageSizeModel& sizes, bool include_flux,
    const PackingPolicy& packing) {
  // The degenerate policies delegate to the single-pass builds, which
  // keeps those paths byte-identical to the bool-flag overload.
  if (!packing.active())
    return build_step_work(mesh, placement, block_costs, nranks, sizes,
                           include_flux, false);
  if (packing.pack_all())
    return build_step_work(mesh, placement, block_costs, nranks, sizes,
                           include_flux, true);

  AMR_CHECK(placement.size() == mesh.size());
  AMR_CHECK(block_costs.size() == mesh.size());
  std::vector<RankStepWork> work(static_cast<std::size_t>(nranks));

  // Pass 1: computes, local copies, and recv byte totals as on the
  // legacy path; boundary messages are only recorded, because the pack
  // decision needs each (src,dst) pair's full step totals.
  struct RawMsg {
    std::int32_t dst;
    std::int64_t bytes;
    std::int32_t src_block;
  };
  std::vector<std::vector<RawMsg>> raw(static_cast<std::size_t>(nranks));
  const auto& lists = mesh.neighbor_lists();
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const std::int32_t src = placement[b];
    AMR_CHECK(src >= 0 && src < nranks);
    auto& w = work[static_cast<std::size_t>(src)];
    w.computes.push_back(
        BlockCompute{static_cast<std::int32_t>(b), block_costs[b]});
    for (const Neighbor& n : lists[b]) {
      const std::int32_t dst =
          placement[static_cast<std::size_t>(n.index)];
      auto emit = [&](std::int64_t bytes) {
        if (dst == src) {
          w.local_copy_bytes += bytes;
          ++w.local_copy_msgs;
          return;
        }
        work[static_cast<std::size_t>(dst)].recv_bytes += bytes;
        raw[static_cast<std::size_t>(src)].push_back(
            RawMsg{dst, bytes, static_cast<std::int32_t>(b)});
      };
      emit(sizes.bytes(n.kind));
      if (include_flux && n.kind == NeighborKind::kFace &&
          n.level_diff == -1)
        emit(sizes.flux_bytes());
    }
  }

  // Pass 2: per-pair totals drive the eager/pack split. Packed pairs
  // emit one aggregate at the pair's first-touch position; eager pairs
  // keep their per-message emission order, so both shapes stay
  // deterministic functions of (mesh, placement, policy).
  struct PairTotal {
    std::int32_t dst;
    std::int64_t msgs = 0;
    std::int64_t bytes = 0;
    bool emitted = false;
  };
  std::vector<PairTotal> totals;
  for (std::int32_t src = 0; src < nranks; ++src) {
    auto& w = work[static_cast<std::size_t>(src)];
    const auto& msgs = raw[static_cast<std::size_t>(src)];
    totals.clear();
    auto pair_of = [&](std::int32_t dst) -> PairTotal& {
      for (auto it = totals.rbegin(); it != totals.rend(); ++it)
        if (it->dst == dst) return *it;
      totals.push_back(PairTotal{dst});
      return totals.back();
    };
    for (const RawMsg& m : msgs) {
      PairTotal& t = pair_of(m.dst);
      ++t.msgs;
      t.bytes += m.bytes;
    }
    for (const RawMsg& m : msgs) {
      PairTotal& t = pair_of(m.dst);
      if (packing.pack(src, m.dst, t.bytes, t.msgs)) {
        if (t.emitted) continue;
        t.emitted = true;
        w.sends.push_back(OutMessage{m.dst, t.bytes, m.src_block,
                                     static_cast<std::int32_t>(t.msgs)});
      } else {
        w.sends.push_back(OutMessage{m.dst, m.bytes, m.src_block, 1});
      }
      ++work[static_cast<std::size_t>(m.dst)].expected_recvs;
    }
  }
  return work;
}

}  // namespace amr
