// Versioned cache of per-rank step-work plans.
//
// Between regrids and rebalances the mesh topology and the placement are
// frozen, so the boundary-exchange structure — neighbor pairs, message
// sizes, local/remote classification, flux-correction messages, receive
// counts — is identical from step to step; only the per-block compute
// durations change (workload jitter, fault inflation). Rebuilding the
// whole plan every step makes that invariant expensive: neighbor
// collection plus plan construction dominates small-step wall-clock
// (BENCH_step_pipeline.json quantifies it).
//
// ExchangePlanCache keys the built plan on (mesh version, placement
// version). A hit re-patches only the compute durations — every other
// byte of the plan is reused — so executing from a cached plan is
// bit-identical to building it fresh: build_step_work/build_overlap_work
// emit computes in block order with duration = block_costs[block], which
// is exactly what the patch loop re-applies. Any regrid or rebalance
// bumps a version and the next step misses once.
//
// One cache instance serves one run: nranks, the message-size model, and
// the flux-correction flag must not change across calls (the key does
// not include them).
//
// Under the serve scheduler many runs execute side by side, and
// identical-fingerprint tenants rebuild identical plans on every regrid
// epoch. set_shared_store() attaches a cross-tenant SharedPlanStore that
// the version-key miss path consults (content-keyed, so cross-tenant
// version skew cannot alias) and publishes to. A store hit still counts
// as a local miss — the version key did change — but is also counted in
// share_hits, and its bytes are patched exactly like a private hit.
#pragma once

#include <cstdint>
#include <span>

#include "amr/exec/overlap.hpp"
#include "amr/exec/work.hpp"

namespace amr {

class SharedPlanStore;

class ExchangePlanCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    /// Of the misses, how many were filled from the shared store instead
    /// of built. Not serialized into snapshots: who built a plan is a
    /// scheduling artifact, not simulation state.
    std::int64_t share_hits = 0;
  };

  /// BSP plan for (mesh, placement). `placement_version` must change
  /// whenever the placement vector does — and, under the placement-engine
  /// modes, is deliberately NOT bumped when a redistribution reproduces
  /// the identical placement under an unchanged mesh numbering (the
  /// incremental path's no-op-rebalance fast path in sim/simulation.cpp),
  /// so such epochs keep hitting. On a hit only compute durations
  /// are refreshed from `block_costs`. `aggregate` is part of the cache
  /// key: a plan built per-neighbor-pair must never be served to an
  /// aggregated step (their send lists and expected counts differ).
  std::span<const RankStepWork> step_work(
      const AmrMesh& mesh, const Placement& placement,
      std::uint64_t placement_version, std::span<const TimeNs> block_costs,
      std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
      bool aggregate = false);

  /// Adaptive variant: the full PackingPolicy (thresholds + node split)
  /// is the cache-key axis, so a threshold change misses once and
  /// rebuilds rather than serving a plan with different pack decisions.
  std::span<const RankStepWork> step_work(
      const AmrMesh& mesh, const Placement& placement,
      std::uint64_t placement_version, std::span<const TimeNs> block_costs,
      std::int32_t nranks, const MessageSizeModel& sizes, bool include_flux,
      const PackingPolicy& packing);

  /// Overlap-mode analogue of step_work. `stage1_frac > 0` builds the
  /// two-stage rendering (ghost-producing stage-1 compute, sends and
  /// incremental aggregates on stage-1 completion, arrival-gated
  /// stage-2); it is a cache-key axis, and hits re-apply the same
  /// stage split when patching compute durations.
  std::span<const OverlapRankWork> overlap_work(
      const AmrMesh& mesh, const Placement& placement,
      std::uint64_t placement_version, std::span<const TimeNs> block_costs,
      std::int32_t nranks, const MessageSizeModel& sizes,
      const PackingPolicy& packing = PackingPolicy::none(),
      double stage1_frac = 0.0);

  const Stats& stats() const { return stats_; }

  /// Drop the cached plans (the next call rebuilds).
  void invalidate() { have_bsp_ = have_overlap_ = false; }

  /// Attach (or detach, with nullptr) a cross-tenant store consulted on
  /// version-key misses. Borrowed; must outlive the cache or be detached
  /// first.
  void set_shared_store(SharedPlanStore* store) { shared_ = store; }

 private:
  bool fresh(std::uint64_t mesh_version, std::uint64_t placement_version,
             bool have) const {
    return have && mesh_version_ == mesh_version &&
           placement_version_ == placement_version;
  }

  void patch_bsp(std::span<const TimeNs> block_costs);
  void patch_overlap(std::span<const TimeNs> block_costs,
                     double stage1_frac);

  SharedPlanStore* shared_ = nullptr;
  std::uint64_t mesh_version_ = 0;
  std::uint64_t placement_version_ = 0;
  PackingPolicy packing_;  ///< shape of the cached plan (either mode)
  double overlap_frac_ = 0.0;  ///< stage split of the cached overlap plan
  bool have_bsp_ = false;
  bool have_overlap_ = false;
  std::vector<RankStepWork> bsp_;
  std::vector<OverlapRankWork> overlap_;
  Stats stats_;
};

}  // namespace amr
