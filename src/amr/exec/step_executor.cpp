#include "amr/exec/step_executor.hpp"

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

StepExecutor::StepExecutor(Engine& engine, Comm& comm, ExecParams params,
                           Tracer* tracer)
    : engine_(engine), comm_(comm), tracer_(tracer) {
  runtimes_.reserve(static_cast<std::size_t>(comm.nranks()));
  for (std::int32_t r = 0; r < comm.nranks(); ++r)
    runtimes_.push_back(
        std::make_unique<RankRuntime>(r, comm, params, tracer));
}

StepResult StepExecutor::execute(std::span<const RankStepWork> work,
                                 TaskOrdering ordering,
                                 std::uint64_t window,
                                 std::int32_t priority_rank) {
  AMR_CHECK(work.size() == runtimes_.size());
  ShardedEngine* sharded = comm_.sharded();
  StepResult result;
  result.step_start = sharded != nullptr ? sharded->now() : engine_.now();

  expected_scratch_.resize(work.size());
  for (std::size_t r = 0; r < work.size(); ++r)
    expected_scratch_[r] = work[r].expected_recvs;
  comm_.begin_exchange(window, expected_scratch_);

  for (std::size_t r = 0; r < work.size(); ++r) {
    runtimes_[r]->begin_step(work[r], ordering, window, result.step_start,
                             priority_rank);
    runtimes_[r]->start(
        sharded != nullptr
            ? sharded->engine_for_rank(static_cast<std::int32_t>(r))
            : engine_);
  }
  if (sharded != nullptr) {
    sharded->run_all();
    result.shards = sharded->last_stats();
  } else {
    engine_.run();
  }

  result.ranks.reserve(work.size());
  for (const auto& rt : runtimes_) {
    AMR_CHECK_MSG(rt->step_done(), "rank did not complete the step");
    result.ranks.push_back(rt->stats());
  }
  AMR_CHECK(comm_.exchange_complete(window));
  comm_.end_exchange(window);
  result.step_end = sharded != nullptr ? sharded->now() : engine_.now();
  if (tracer_ != nullptr)
    tracer_->complete(Tracer::kTrackSim, TraceCat::kStep, "step",
                      result.step_start, result.wall_ns(),
                      static_cast<std::int64_t>(window),
                      static_cast<std::int64_t>(ordering));
  return result;
}

}  // namespace amr
