// The serve results endpoint: a sql-ish string surface over the
// telemetry Query engine, so a client can interrogate a finished job's
// tables without linking the library.
//
//   select * from comm where step >= 10 order by rank limit 5
//   select sum(dur_ns) as total, p95(dur_ns) from phases
//       where phase == 1 group by step, rank order by total desc
//
// Grammar (keywords lowercase, one statement per line):
//   select <*| agg[, agg...]> from <phases|comm|blocks|shards|placement>
//       [where <col> <op> <number> [and ...]]
//       [group by <col>[, col...]]
//       [order by <col> [desc]] [limit <n>]
//   agg := count | sum|mean|min|max|stddev|p50|p95|p99 ( <col> ) [as <name>]
//   op  := == | != | < | <= | > | >=
//
// Aggregates require `group by` (the engine's GroupedQuery shape);
// `select *` materializes filtered rows. Output is Table::format() —
// deterministic, so query responses take part in the serve byte-identity
// contract like job reports do.
#pragma once

#include <string>

#include "amr/telemetry/table.hpp"

namespace amr::serve {

/// Tables of one finished job, borrowed for the duration of a query.
struct JobTables {
  const Table* phases = nullptr;
  const Table* comm = nullptr;
  const Table* blocks = nullptr;
  const Table* shards = nullptr;
  const Table* placement = nullptr;
};

/// Execute `text` against the job's tables. On success returns "" and
/// appends the rendered result table to `out`; on failure returns the
/// error message and leaves `out` untouched.
std::string run_table_query(const JobTables& tables, const std::string& text,
                            std::string& out);

}  // namespace amr::serve
