#include "amr/serve/sim_server.hpp"

#include "amr/serve/query_endpoint.hpp"

namespace amr::serve {

SimServer::SimServer(const ServeOptions& opts) : scheduler_(opts) {}

void SimServer::flush(std::FILE* out) {
  scheduler_.drain();
  const auto n = static_cast<std::int64_t>(scheduler_.job_count());
  for (; next_unprinted_ < n; ++next_unprinted_) {
    const JobResult* r = scheduler_.result(next_unprinted_);
    // drain() leaves every submitted job done, so r is never null here.
    std::fprintf(out, "== job %lld ==\n",
                 static_cast<long long>(next_unprinted_));
    if (r->ok) {
      std::fwrite(r->text.data(), 1, r->text.size(), out);
    } else {
      std::fprintf(out, "error: %s\n", r->error.c_str());
      failed_ = true;
    }
  }
}

void SimServer::handle_query(const ServeRequest& req, std::FILE* out) {
  std::fprintf(out, "== query %s ==\n", req.query_job.c_str());
  const auto it = label_to_id_.find(req.query_job);
  if (it == label_to_id_.end()) {
    std::fprintf(out, "error: no job with id \"%s\"\n",
                 req.query_job.c_str());
    failed_ = true;
    return;
  }
  const JobResult* r = scheduler_.result(it->second);
  if (r == nullptr || !r->ok) {
    std::fprintf(out, "error: job \"%s\" did not finish cleanly\n",
                 req.query_job.c_str());
    failed_ = true;
    return;
  }
  JobTables tables;
  tables.phases = r->phases.get();
  tables.comm = r->comm.get();
  tables.blocks = r->blocks.get();
  tables.shards = r->shards.get();
  tables.placement = r->placement.get();
  std::string text;
  const std::string err = run_table_query(tables, req.query_text, text);
  if (!err.empty()) {
    std::fprintf(out, "error: %s\n", err.c_str());
    failed_ = true;
    return;
  }
  std::fwrite(text.data(), 1, text.size(), out);
}

int SimServer::run(std::istream& in, std::FILE* out) {
  std::string line;
  while (std::getline(in, line)) {
    ServeRequest req = parse_serve_line(line);
    switch (req.kind) {
      case ServeRequest::Kind::kNone:
        break;
      case ServeRequest::Kind::kError:
        std::fprintf(out, "error: %s\n", req.error.c_str());
        failed_ = true;
        break;
      case ServeRequest::Kind::kJob: {
        // Address a job by its user-chosen id when given, else by its
        // submission index. First binding wins so a duplicate cannot
        // silently redirect someone else's queries.
        const std::string user_label = req.job.id;
        const std::int64_t id = scheduler_.submit(std::move(req.job));
        const std::string label =
            user_label.empty() ? std::to_string(id) : user_label;
        if (!label_to_id_.emplace(label, id).second) {
          std::fprintf(out, "error: duplicate job id \"%s\"\n",
                       label.c_str());
          failed_ = true;
        }
        break;
      }
      case ServeRequest::Kind::kQuery:
        flush(out);  // queries see a fully drained queue
        handle_query(req, out);
        break;
      case ServeRequest::Kind::kStats: {
        flush(out);
        const SchedulerStats s = stats();
        std::fprintf(out,
                     "== stats ==\n"
                     "jobs %lld | slices %lld | evictions %lld | "
                     "restores %lld\n"
                     "plan cache: %lld hits, %lld misses, %lld shared\n"
                     "plan store: %lld hits, %lld misses, %lld published, "
                     "%lld evicted\n",
                     static_cast<long long>(s.jobs),
                     static_cast<long long>(s.slices),
                     static_cast<long long>(s.evictions),
                     static_cast<long long>(s.restores),
                     static_cast<long long>(s.plan_hits),
                     static_cast<long long>(s.plan_misses),
                     static_cast<long long>(s.plan_share_hits),
                     static_cast<long long>(s.store.hits),
                     static_cast<long long>(s.store.misses),
                     static_cast<long long>(s.store.published),
                     static_cast<long long>(s.store.evicted));
        break;
      }
    }
  }
  flush(out);
  return failed_ ? 1 : 0;
}

}  // namespace amr::serve
