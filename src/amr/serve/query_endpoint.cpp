#include "amr/serve/query_endpoint.hpp"

#include <cctype>
#include <charconv>
#include <cstring>
#include <vector>

#include "amr/telemetry/query.hpp"

namespace amr::serve {

namespace {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : text) {
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
    } else if (ch == '(' || ch == ')' || ch == ',') {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
      out.emplace_back(1, ch);
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

struct TokenStream {
  std::vector<std::string> toks;
  std::size_t at = 0;

  bool done() const { return at >= toks.size(); }
  const std::string& peek() const {
    static const std::string kEnd;
    return done() ? kEnd : toks[at];
  }
  std::string next() { return done() ? std::string() : toks[at++]; }
  bool accept(const char* word) {
    if (!done() && toks[at] == word) {
      ++at;
      return true;
    }
    return false;
  }
};

bool agg_from_name(const std::string& name, Agg& out) {
  if (name == "count") out = Agg::kCount;
  else if (name == "sum") out = Agg::kSum;
  else if (name == "mean") out = Agg::kMean;
  else if (name == "min") out = Agg::kMin;
  else if (name == "max") out = Agg::kMax;
  else if (name == "stddev") out = Agg::kStddev;
  else if (name == "p50") out = Agg::kP50;
  else if (name == "p95") out = Agg::kP95;
  else if (name == "p99") out = Agg::kP99;
  else return false;
  return true;
}

struct Filter {
  std::string col;
  std::string op;
  double value = 0.0;

  bool matches(double x) const {
    if (op == "==") return x == value;
    if (op == "!=") return x != value;
    if (op == "<") return x < value;
    if (op == "<=") return x <= value;
    if (op == ">") return x > value;
    return x >= value;  // ">="
  }
};

}  // namespace

std::string run_table_query(const JobTables& tables, const std::string& text,
                            std::string& out) {
  TokenStream ts{tokenize(text)};
  if (!ts.accept("select")) return "expected 'select'";

  // Selection: '*' or an aggregate list.
  bool star = false;
  std::vector<AggSpec> aggs;
  if (ts.accept("*")) {
    star = true;
  } else {
    while (true) {
      const std::string fn = ts.next();
      Agg agg;
      if (!agg_from_name(fn, agg))
        return "unknown aggregate '" + fn +
               "' (count sum mean min max stddev p50 p95 p99)";
      AggSpec spec;
      spec.agg = agg;
      if (agg == Agg::kCount) {
        spec.as = "count";
      } else {
        if (!ts.accept("(")) return "expected '(' after '" + fn + "'";
        spec.column = ts.next();
        if (spec.column.empty() || spec.column == ")")
          return "expected a column inside '" + fn + "(...)'";
        if (!ts.accept(")")) return "expected ')' after '" + spec.column + "'";
        spec.as = fn + "_" + spec.column;
      }
      if (ts.accept("as")) {
        spec.as = ts.next();
        if (spec.as.empty()) return "expected a name after 'as'";
      }
      aggs.push_back(std::move(spec));
      if (!ts.accept(",")) break;
    }
  }

  if (!ts.accept("from")) return "expected 'from'";
  const std::string table_name = ts.next();
  const Table* table = nullptr;
  if (table_name == "phases") table = tables.phases;
  else if (table_name == "comm") table = tables.comm;
  else if (table_name == "blocks") table = tables.blocks;
  else if (table_name == "shards") table = tables.shards;
  else if (table_name == "placement") table = tables.placement;
  else
    return "unknown table '" + table_name +
           "' (phases | comm | blocks | shards | placement)";
  if (table == nullptr)
    return "table '" + table_name +
           "' was not collected for this job (telemetry off)";

  std::vector<Filter> filters;
  if (ts.accept("where")) {
    do {
      Filter f;
      f.col = ts.next();
      f.op = ts.next();
      if (f.op != "==" && f.op != "!=" && f.op != "<" && f.op != "<=" &&
          f.op != ">" && f.op != ">=")
        return "unknown operator '" + f.op + "' in where clause";
      const std::string value = ts.next();
      const char* b = value.c_str();
      char* e = nullptr;
      f.value = std::strtod(b, &e);
      if (e == b || *e != '\0')
        return "expected a number in where clause, got '" + value + "'";
      if (table->col_index(f.col) < 0)
        return "no column '" + f.col + "' in " + table_name;
      filters.push_back(std::move(f));
    } while (ts.accept("and"));
  }

  std::vector<std::string> group_keys;
  if (ts.accept("group")) {
    if (!ts.accept("by")) return "expected 'by' after 'group'";
    do {
      const std::string key = ts.next();
      if (key.empty()) return "expected a column after 'group by'";
      if (table->col_index(key) < 0)
        return "no column '" + key + "' in " + table_name;
      group_keys.push_back(key);
    } while (ts.accept(","));
  }
  if (!star && group_keys.empty())
    return "aggregates require 'group by' (use 'select *' for raw rows)";
  if (star && !group_keys.empty())
    return "'select *' cannot be grouped (name aggregates instead)";

  std::string order_col;
  bool order_desc = false;
  if (ts.accept("order")) {
    if (!ts.accept("by")) return "expected 'by' after 'order'";
    order_col = ts.next();
    if (order_col.empty()) return "expected a column after 'order by'";
    order_desc = ts.accept("desc");
  }
  std::int64_t limit = -1;
  if (ts.accept("limit")) {
    const std::string n = ts.next();
    const auto [p, ec] = std::from_chars(n.data(), n.data() + n.size(),
                                         limit);
    if (ec != std::errc{} || p != n.data() + n.size() || limit < 0)
      return "expected a row count after 'limit'";
  }
  if (!ts.done()) return "trailing tokens after '" + ts.peek() + "'";

  Query query(*table);
  for (const Filter& f : filters)
    query.filter(f.col, [f](double x) { return f.matches(x); });

  Table result = star ? query.run()
                      : query.group_by(group_keys).agg(std::move(aggs));
  // Ordering/limit apply to whichever table the selection produced.
  Query shaper(result);
  if (!order_col.empty()) {
    if (result.col_index(order_col) < 0)
      return "no column '" + order_col + "' to order by";
    shaper.sort_by(order_col, order_desc);
  }
  if (limit >= 0) shaper.limit(static_cast<std::size_t>(limit));
  const Table shaped = shaper.run();
  out += shaped.format(shaped.num_rows());
  return "";
}

}  // namespace amr::serve
