#include "amr/serve/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "amr/par/thread_pool.hpp"
#include "amr/telemetry/collector.hpp"

namespace amr::serve {

QuantumScheduler::QuantumScheduler(ServeOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.quantum_steps <= 0)
    throw std::runtime_error("quantum_steps must be positive");
  if (opts_.serve_jobs < 1)
    throw std::runtime_error("serve_jobs must be >= 1");
  if (opts_.share_plans) store_ = std::make_unique<SharedPlanStore>();
  if (opts_.serve_jobs > 1)
    pool_ = std::make_unique<ThreadPool>(opts_.serve_jobs);
}

QuantumScheduler::~QuantumScheduler() {
  // Abandoned spills (drain never called, or a tenant errored while
  // evicted) must not outlive the server.
  for (const auto& t : tenants_)
    if (!t->spill.empty()) std::remove(t->spill.c_str());
}

std::int64_t QuantumScheduler::submit(JobSpec spec) {
  auto t = std::make_unique<Tenant>();
  t->id = static_cast<std::int64_t>(tenants_.size());
  t->spec = std::move(spec);
  ++stats_.jobs;
  const std::string invalid = validate_job(t->spec);
  if (!invalid.empty()) {
    t->state = State::kDone;
    t->result.ok = false;
    t->result.error = invalid;
  }
  tenants_.push_back(std::move(t));
  return tenants_.back()->id;
}

void QuantumScheduler::make_resident(Tenant& t) {
  if (t.state == State::kResident || t.state == State::kDone) return;
  JobSpec spec = t.spec;
  if (t.state == State::kEvicted) {
    // Revival is a pure resume of the spilled snapshot — even when the
    // original job was itself a --replay (the replay already happened at
    // first construction and is part of the spilled state).
    spec.restore = t.spill;
    spec.replay.clear();
  }
  try {
    t.driver = std::make_unique<SimDriver>(spec, store_.get());
  } catch (const std::exception& e) {
    t.state = State::kDone;
    t.result.ok = false;
    t.result.error = e.what();
    if (!t.spill.empty()) std::remove(t.spill.c_str());
    t.spill.clear();
    return;
  }
  if (t.state == State::kEvicted) {
    ++stats_.restores;
    std::remove(t.spill.c_str());
    t.spill.clear();
  }
  t.state = State::kResident;
}

void QuantumScheduler::evict(Tenant& t) {
  if (t.state != State::kResident) return;
  std::string path = opts_.spill_dir + "/serve_spill_" +
                     std::to_string(t.id) + ".amrs";
  // A tenant that never sliced has no begun run to snapshot; dropping
  // the Simulation and re-running make_resident later is equivalent
  // (construction is deterministic), so only begun runs spill.
  if (t.driver->sim().current_step() > 0 ||
      !t.driver->restore_note().empty()) {
    if (!t.driver->sim().save_checkpoint(path)) {
      std::fprintf(stderr,
                   "serve: failed to spill job %lld to %s; keeping it "
                   "resident\n",
                   static_cast<long long>(t.id), path.c_str());
      return;
    }
    t.spill = path;
    t.state = State::kEvicted;
  } else {
    t.state = State::kPending;
  }
  stats_.plan_share_hits += t.driver->sim().plan_share_hits();
  t.driver.reset();
  ++stats_.evictions;
}

void QuantumScheduler::finish(Tenant& t) {
  Simulation& sim = t.driver->sim();
  const RunReport report = sim.finish();
  stats_.plan_hits += sim.pipeline_stats().plan_hits;
  stats_.plan_misses += sim.pipeline_stats().plan_misses;
  stats_.plan_share_hits += sim.pipeline_stats().plan_share_hits;
  t.result.ok = true;
  t.result.report = report;
  t.result.text = compact_report_text(
      report, t.spec.aggregate || t.spec.comm_adaptive);
  if (t.spec.collect_telemetry) {
    const Collector& c = sim.collector();
    t.result.phases = std::make_unique<Table>(c.phases());
    t.result.comm = std::make_unique<Table>(c.comm());
    t.result.blocks = std::make_unique<Table>(c.blocks());
    t.result.shards = std::make_unique<Table>(c.shards());
    t.result.placement = std::make_unique<Table>(c.placement());
  }
  if (!t.spill.empty()) {
    std::remove(t.spill.c_str());
    t.spill.clear();
  }
  t.driver.reset();
  t.state = State::kDone;
}

void QuantumScheduler::enforce_budget() {
  if (opts_.max_resident_mb < 0) return;
  const std::size_t budget =
      static_cast<std::size_t>(opts_.max_resident_mb) * (1u << 20);
  while (true) {
    std::size_t resident_bytes = 0;
    for (const auto& t : tenants_)
      if (t->state == State::kResident)
        resident_bytes += t->driver->sim().resident_bytes();
    if (resident_bytes <= budget) return;
    // Coldest resident first (smallest last_slice; ties by id, which the
    // iteration order supplies), so the next batch's tenants — the
    // hottest — go last.
    Tenant* victim = nullptr;
    for (const auto& t : tenants_)
      if (t->state == State::kResident &&
          (victim == nullptr || t->last_slice < victim->last_slice))
        victim = t.get();
    if (victim == nullptr) return;
    const State before = victim->state;
    evict(*victim);
    if (victim->state == before) return;  // spill failed; stop looping
  }
}

void QuantumScheduler::drain() {
  while (true) {
    // Next batch: up to serve_jobs unfinished tenants, round-robin from
    // the cursor in id order.
    std::vector<Tenant*> batch;
    const std::size_t n = tenants_.size();
    for (std::size_t scanned = 0;
         scanned < n &&
         batch.size() < static_cast<std::size_t>(opts_.serve_jobs);
         ++scanned) {
      Tenant& t = *tenants_[(cursor_ + scanned) % n];
      if (t.state != State::kDone) batch.push_back(&t);
    }
    if (batch.empty()) return;
    cursor_ = (static_cast<std::size_t>(batch.back()->id) + 1) % n;

    // Construction/restore stays on the coordinator: it mutates tenant
    // state and the spill files, and errors must resolve in id order.
    for (Tenant* t : batch) make_resident(*t);
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [](Tenant* t) {
                                 return t->state != State::kResident;
                               }),
                batch.end());

    // The slice itself: independent Simulations, so batch members can
    // advance concurrently; the shared store is internally locked.
    const std::int64_t quantum = opts_.quantum_steps;
    const auto advance = [&](std::size_t i) {
      batch[i]->driver->sim().advance(quantum);
    };
    if (pool_ != nullptr && batch.size() > 1) {
      pool_->parallel_for(batch.size(), advance);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) advance(i);
    }
    for (Tenant* t : batch) {
      t->last_slice = slice_clock_;
      ++stats_.slices;
    }
    ++slice_clock_;

    for (Tenant* t : batch)
      if (t->driver->sim().done()) finish(*t);
    enforce_budget();
  }
}

const JobResult* QuantumScheduler::result(std::int64_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= tenants_.size())
    return nullptr;
  const Tenant& t = *tenants_[static_cast<std::size_t>(id)];
  return t.state == State::kDone ? &t.result : nullptr;
}

SchedulerStats QuantumScheduler::stats() const {
  SchedulerStats out = stats_;
  if (store_) out.store = store_->stats();
  return out;
}

}  // namespace amr::serve
