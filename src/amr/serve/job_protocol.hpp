// Line protocol of `amrcplx serve`: one request per line.
//
//   {"policy": "cpl50", "ranks": 64, "steps": 40}   submit a job
//   query <job-id> select ...                       results endpoint
//   stats                                           scheduler counters
//   # anything                                      comment (ignored)
//
// Job lines are flat JSON objects — a deliberately minimal dialect
// (string / integer / boolean values, no nesting) parsed here without
// any external dependency. Unknown keys are rejected rather than
// ignored: a typo'd "polcy" silently running the default policy would
// corrupt a whole sweep, the same reasoning as the strict bench flag
// parser.
#pragma once

#include <string>

#include "amr/sim/sim_driver.hpp"

namespace amr::serve {

struct ServeRequest {
  enum class Kind {
    kNone,   ///< blank line or comment
    kJob,    ///< `job` is populated
    kQuery,  ///< `query_job` + `query_text`
    kStats,
    kError,  ///< `error` explains the rejection
  };

  Kind kind = Kind::kNone;
  JobSpec job;
  std::string query_job;   ///< job id the query targets
  std::string query_text;  ///< "select ..." (see query_endpoint.hpp)
  std::string error;
};

/// Parse one protocol line. Never throws: malformed input comes back as
/// Kind::kError with a message (the server prints it and keeps going —
/// one bad line must not take down a thousand queued sims).
ServeRequest parse_serve_line(const std::string& line);

}  // namespace amr::serve
