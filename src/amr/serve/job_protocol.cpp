#include "amr/serve/job_protocol.hpp"

#include <cctype>
#include <charconv>
#include <cstring>

namespace amr::serve {

namespace {

/// Cursor over the flat-JSON job line.
struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

/// One parsed scalar: exactly one of the alternatives is meaningful.
struct Scalar {
  enum class Type { kString, kInt, kBool } type = Type::kString;
  std::string str;
  std::int64_t num = 0;
  bool boolean = false;
};

bool parse_json_string(Cursor& c, std::string& out, std::string& err) {
  if (!c.eat('"')) {
    err = "expected '\"'";
    return false;
  }
  out.clear();
  while (c.p < c.end && *c.p != '"') {
    char ch = *c.p++;
    if (ch == '\\') {
      if (c.p >= c.end) break;
      const char esc = *c.p++;
      switch (esc) {
        case '"': ch = '"'; break;
        case '\\': ch = '\\'; break;
        case '/': ch = '/'; break;
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        default:
          err = std::string("unsupported escape \\") + esc;
          return false;
      }
    }
    out += ch;
  }
  if (c.p >= c.end) {
    err = "unterminated string";
    return false;
  }
  ++c.p;  // closing quote
  return true;
}

bool parse_scalar(Cursor& c, Scalar& out, std::string& err) {
  c.skip_ws();
  if (c.p >= c.end) {
    err = "expected a value";
    return false;
  }
  if (*c.p == '"') {
    out.type = Scalar::Type::kString;
    return parse_json_string(c, out.str, err);
  }
  const std::size_t left = static_cast<std::size_t>(c.end - c.p);
  if (left >= 4 && std::strncmp(c.p, "true", 4) == 0) {
    out.type = Scalar::Type::kBool;
    out.boolean = true;
    c.p += 4;
    return true;
  }
  if (left >= 5 && std::strncmp(c.p, "false", 5) == 0) {
    out.type = Scalar::Type::kBool;
    out.boolean = false;
    c.p += 5;
    return true;
  }
  out.type = Scalar::Type::kInt;
  const auto [ptr, ec] = std::from_chars(c.p, c.end, out.num);
  if (ec != std::errc{} || ptr == c.p) {
    err = "expected a string, integer, or boolean";
    return false;
  }
  c.p = ptr;
  return true;
}

std::string wrong_type(const std::string& key, const char* want) {
  return "field \"" + key + "\" must be " + want;
}

/// Apply one key/value to the spec; "" on success, else the error.
std::string apply_field(JobSpec& spec, const std::string& key,
                        const Scalar& v) {
  const auto str = [&](std::string JobSpec::* field) -> std::string {
    if (v.type != Scalar::Type::kString) return wrong_type(key, "a string");
    spec.*field = v.str;
    return "";
  };
  const auto i64 = [&](auto JobSpec::* field) -> std::string {
    if (v.type != Scalar::Type::kInt) return wrong_type(key, "an integer");
    spec.*field = static_cast<std::decay_t<decltype(spec.*field)>>(v.num);
    return "";
  };
  const auto boolean = [&](bool JobSpec::* field) -> std::string {
    if (v.type != Scalar::Type::kBool) return wrong_type(key, "a boolean");
    spec.*field = v.boolean;
    return "";
  };

  if (key == "id") return str(&JobSpec::id);
  if (key == "workload") return str(&JobSpec::workload);
  if (key == "policy") return str(&JobSpec::policy);
  if (key == "ranks") return i64(&JobSpec::ranks);
  if (key == "steps") return i64(&JobSpec::steps);
  if (key == "execution") {
    if (v.type != Scalar::Type::kString)
      return wrong_type(key, "\"bsp\" or \"overlap\"");
    if (v.str != "bsp" && v.str != "overlap")
      return wrong_type(key, "\"bsp\" or \"overlap\"");
    spec.overlap = v.str == "overlap";
    return "";
  }
  if (key == "aggregate") return boolean(&JobSpec::aggregate);
  if (key == "comm_adaptive") return boolean(&JobSpec::comm_adaptive);
  if (key == "pack_threshold") return i64(&JobSpec::pack_threshold);
  if (key == "send_priority") return boolean(&JobSpec::send_priority);
  if (key == "des_shards") return i64(&JobSpec::des_shards);
  if (key == "auto_cplx") return boolean(&JobSpec::auto_cplx);
  if (key == "cplx_budget_ms") return i64(&JobSpec::cplx_budget_ms);
  if (key == "placement_incremental")
    return boolean(&JobSpec::placement_incremental);
  if (key == "sedov_max_level") return i64(&JobSpec::sedov_max_level);
  if (key == "checkpoint_every") return i64(&JobSpec::checkpoint_every);
  if (key == "checkpoint_dir") return str(&JobSpec::checkpoint_dir);
  if (key == "restore") return str(&JobSpec::restore);
  if (key == "replay") return str(&JobSpec::replay);
  if (key == "faults") return i64(&JobSpec::fault_nodes);
  return "unknown field \"" + key + "\"";
}

ServeRequest parse_job_object(const std::string& line) {
  ServeRequest req;
  req.kind = ServeRequest::Kind::kError;  // until proven otherwise
  Cursor c{line.data(), line.data() + line.size()};
  std::string err;
  if (!c.eat('{')) {
    req.error = "job line must be a JSON object";
    return req;
  }
  bool first = true;
  while (true) {
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) {
      req.error = "expected ',' or '}'";
      return req;
    }
    if (c.eat('}')) break;  // tolerate a trailing comma
    first = false;
    std::string key;
    if (!parse_json_string(c, key, err)) {
      req.error = err;
      return req;
    }
    if (!c.eat(':')) {
      req.error = "expected ':' after \"" + key + "\"";
      return req;
    }
    Scalar value;
    if (!parse_scalar(c, value, err)) {
      req.error = "field \"" + key + "\": " + err;
      return req;
    }
    err = apply_field(req.job, key, value);
    if (!err.empty()) {
      req.error = err;
      return req;
    }
  }
  c.skip_ws();
  if (c.p != c.end) {
    req.error = "trailing characters after job object";
    return req;
  }
  req.kind = ServeRequest::Kind::kJob;
  return req;
}

}  // namespace

ServeRequest parse_serve_line(const std::string& line) {
  ServeRequest req;
  std::size_t at = 0;
  while (at < line.size() &&
         std::isspace(static_cast<unsigned char>(line[at])))
    ++at;
  if (at == line.size() || line[at] == '#') return req;  // kNone
  if (line[at] == '{') return parse_job_object(line.substr(at));

  // Word commands: `query <id> <text>` | `stats`.
  const std::size_t word_end = line.find_first_of(" \t", at);
  const std::string word = line.substr(at, word_end - at);
  if (word == "stats") {
    req.kind = ServeRequest::Kind::kStats;
    return req;
  }
  if (word == "query") {
    std::size_t id_at = line.find_first_not_of(" \t", word_end);
    if (id_at == std::string::npos) {
      req.kind = ServeRequest::Kind::kError;
      req.error = "usage: query <job-id> select ...";
      return req;
    }
    const std::size_t id_end = line.find_first_of(" \t", id_at);
    req.query_job = line.substr(id_at, id_end - id_at);
    const std::size_t text_at = line.find_first_not_of(" \t", id_end);
    if (text_at == std::string::npos) {
      req.kind = ServeRequest::Kind::kError;
      req.error = "usage: query <job-id> select ...";
      return req;
    }
    req.kind = ServeRequest::Kind::kQuery;
    req.query_text = line.substr(text_at);
    return req;
  }
  req.kind = ServeRequest::Kind::kError;
  req.error = "unrecognized request \"" + word +
              "\" (job object, query, or stats)";
  return req;
}

}  // namespace amr::serve
