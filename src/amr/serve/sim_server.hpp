// amrcplx serve: multiplex batches of parameterized jobs (policy
// sweeps, fault scenarios, --replay what-ifs) over one process.
//
// SimServer owns the line protocol and output framing; the
// QuantumScheduler owns execution. Requests stream in (job file or
// stdin), job objects queue, and a `query`/`stats` line — or end of
// input — drains the queue. Every completed job then prints, in
// submission order:
//
//   == job <id> ==
//   <the job's report text, byte-identical to `amrcplx run`>
//
// followed by the query/stats responses in request order. All stdout is
// deterministic for a given request stream and scheduler options;
// scheduler-dependent counters only appear via the explicit `stats`
// request or the stats() accessor.
#pragma once

#include <cstdio>
#include <istream>
#include <map>
#include <string>

#include "amr/serve/job_protocol.hpp"
#include "amr/serve/scheduler.hpp"

namespace amr::serve {

class SimServer {
 public:
  explicit SimServer(const ServeOptions& opts);

  /// Process the request stream to EOF, writing responses to `out`.
  /// Returns 0 if every line parsed and every job ran; 1 if any was
  /// rejected (the server keeps going either way).
  int run(std::istream& in, std::FILE* out);

  SchedulerStats stats() const { return scheduler_.stats(); }

 private:
  /// Drain the scheduler and print newly finished jobs in id order.
  void flush(std::FILE* out);
  void handle_query(const ServeRequest& req, std::FILE* out);

  QuantumScheduler scheduler_;
  std::map<std::string, std::int64_t> label_to_id_;
  std::int64_t next_unprinted_ = 0;
  bool failed_ = false;
};

}  // namespace amr::serve
