// Quantum scheduler of the multi-tenant simulation service.
//
// Thousands of submitted sims multiplex over one process: each tenant
// advances `quantum_steps` per slice, batches of `serve_jobs` tenants
// slice concurrently on one amr::par::ThreadPool, and a configurable
// resident-memory budget evicts cold tenants to amr::io snapshots (the
// checkpoint format — eviction IS a checkpoint) until their next slice
// restores them.
//
// The hard contract is determinism: a job's report text is byte-
// identical whether it ran standalone (`amrcplx run`), multiplexed with
// any tenant mix, or was evicted and restored mid-run. Three properties
// carry it:
//   1. simulated time — a tenant's steps depend only on its own config,
//      never on wall-clock or co-tenants (amr/sim's core invariant);
//   2. snapshot round-trips resume byte-identically (the checkpoint
//      determinism guarantee), so eviction is invisible to output;
//   3. cross-tenant plan sharing is content-keyed (SharedPlanStore), so
//      a shared hit yields the very plan the tenant would have built.
// Scheduling choices (slice interleaving, who builds a shared plan
// first, eviction victims) may vary counters in stats(), never output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "amr/exec/shared_plan_store.hpp"
#include "amr/sim/sim_driver.hpp"
#include "amr/telemetry/table.hpp"

namespace amr {
class ThreadPool;
}

namespace amr::serve {

struct ServeOptions {
  /// Steps a tenant advances per slice. Large values approach run-to-
  /// completion (fewer scheduling points); small values interleave
  /// tenants finely and surface eviction/restore churn.
  std::int64_t quantum_steps = 16;
  /// Tenants sliced concurrently per batch (width of the pool).
  int serve_jobs = 1;
  /// Resident-memory budget in MiB: -1 = unlimited, 0 = evict every
  /// tenant not in the running batch (the forced-eviction test hook).
  std::int64_t max_resident_mb = -1;
  /// Where eviction snapshots live (removed when their job finishes).
  std::string spill_dir = ".";
  /// Content-keyed exchange-plan sharing across tenants.
  bool share_plans = true;
};

struct SchedulerStats {
  std::int64_t jobs = 0;       ///< submitted
  std::int64_t slices = 0;     ///< tenant-quanta executed
  std::int64_t evictions = 0;  ///< tenants spilled to snapshots
  std::int64_t restores = 0;   ///< tenants revived from spills
  std::int64_t plan_hits = 0;      ///< summed tenant plan-cache hits
  std::int64_t plan_misses = 0;    ///< summed tenant plan-cache misses
  std::int64_t plan_share_hits = 0;  ///< misses filled from the store
  SharedPlanStore::Stats store;  ///< the shared store's own counters
};

/// Everything that outlives a finished tenant: its report, its stdout
/// block, and (when telemetry was collected) copies of its tables for
/// the query endpoint.
struct JobResult {
  bool ok = false;
  std::string error;  ///< set when !ok (construction/validation failure)
  std::string text;   ///< the job's stdout block (compact report text)
  RunReport report;
  std::unique_ptr<Table> phases, comm, blocks, shards, placement;
};

class QuantumScheduler {
 public:
  explicit QuantumScheduler(ServeOptions opts);
  ~QuantumScheduler();

  QuantumScheduler(const QuantumScheduler&) = delete;
  QuantumScheduler& operator=(const QuantumScheduler&) = delete;

  /// Queue a job; returns its dense id (submission order). Specs are
  /// validated here so a bad job surfaces at submit, not mid-drain.
  std::int64_t submit(JobSpec spec);

  /// Run every unfinished tenant to completion.
  void drain();

  std::size_t job_count() const { return tenants_.size(); }

  /// Result for a drained job; nullptr for an unknown or unfinished id.
  const JobResult* result(std::int64_t id) const;

  SchedulerStats stats() const;

 private:
  enum class State { kPending, kResident, kEvicted, kDone };

  struct Tenant {
    std::int64_t id = 0;
    JobSpec spec;
    State state = State::kPending;
    std::unique_ptr<SimDriver> driver;  ///< non-null iff kResident
    std::string spill;                  ///< snapshot path iff kEvicted
    std::int64_t last_slice = -1;       ///< LRU clock for eviction
    JobResult result;
  };

  /// Construct (kPending) or revive (kEvicted) the tenant's Simulation.
  /// Failures mark the tenant kDone with an error result.
  void make_resident(Tenant& t);
  void evict(Tenant& t);
  void finish(Tenant& t);
  /// Spill least-recently-sliced residents until under budget.
  void enforce_budget();

  ServeOptions opts_;
  std::unique_ptr<SharedPlanStore> store_;  ///< null when !share_plans
  std::unique_ptr<ThreadPool> pool_;        ///< null when serve_jobs == 1
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::size_t cursor_ = 0;       ///< round-robin position
  std::int64_t slice_clock_ = 0;
  SchedulerStats stats_;
};

}  // namespace amr::serve
