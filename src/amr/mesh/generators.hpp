// Mesh generators used by tests, microbenchmarks, and workloads:
// predicate-driven refinement (the building block for physics tagging),
// random refinement (commbench's "10 random meshes per policy"), and
// spherical-shell refinement (the Sedov blast front).
#pragma once

#include <cstdint>
#include <functional>

#include "amr/common/rng.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {

/// Refine every leaf for which `pred(bounds)` is true, repeatedly, until
/// tagged leaves reach `max_level` or nothing is tagged. Returns total
/// blocks refined (including 2:1 ripple).
std::size_t refine_where(AmrMesh& mesh,
                         const std::function<bool(const Aabb&)>& pred,
                         int max_level);

/// Refine blocks intersecting the spherical shell of radius `radius` and
/// half-width `half_width` centered at `center`, up to `max_level`.
std::size_t refine_shell(AmrMesh& mesh, const std::array<double, 3>& center,
                         double radius, double half_width, int max_level);

/// Randomly refine leaves with probability `p` per round for `rounds`
/// rounds, capped at `max_level`. Produces realistic multi-level meshes
/// for commbench.
std::size_t refine_random(AmrMesh& mesh, Rng& rng, double p, int rounds,
                          int max_level);

/// Grow a mesh until it has at least `target_blocks` leaves by refining
/// random spherical regions (keeps refinement spatially correlated, like
/// physical meshes, rather than salt-and-pepper).
void grow_to_block_count(AmrMesh& mesh, Rng& rng, std::size_t target_blocks,
                         int max_level);

/// True if the box intersects the closed shell [r-hw, r+hw] around center.
bool box_intersects_shell(const Aabb& box, const std::array<double, 3>& center,
                          double radius, double half_width);

}  // namespace amr
