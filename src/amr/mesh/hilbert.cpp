#include "amr/mesh/hilbert.hpp"

#include "amr/common/check.hpp"

namespace amr {
namespace {

constexpr int kDims = 3;

// Skilling, "Programming the Hilbert curve" (AIP 2004): converts axes to
// the "transpose" form of the Hilbert index in place, and back.
void axes_to_transpose(std::uint32_t x[kDims], int bits) {
  for (std::uint32_t q = 1u << (bits - 1); q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = 1u << (bits - 1); q > 1; q >>= 1)
    if (x[kDims - 1] & q) t ^= q - 1;
  for (int i = 0; i < kDims; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t x[kDims], int bits) {
  // Gray decode.
  std::uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != (1u << bits); q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t swap = (x[0] ^ x[i]) & p;
        x[0] ^= swap;
        x[i] ^= swap;
      }
    }
  }
}

}  // namespace

std::uint64_t hilbert3_encode(std::uint32_t x, std::uint32_t y,
                              std::uint32_t z, int bits) {
  AMR_CHECK(bits >= 1 && bits <= kHilbertMaxBits);
  AMR_CHECK(x < (1u << bits) && y < (1u << bits) && z < (1u << bits));
  std::uint32_t axes[kDims] = {x, y, z};
  axes_to_transpose(axes, bits);
  // Interleave the transpose: bit b of axes[i] becomes bit
  // (b*kDims + (kDims-1-i)) of the index.
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      index = (index << 1) |
              ((axes[i] >> static_cast<std::uint32_t>(b)) & 1u);
    }
  }
  return index;
}

void hilbert3_decode(std::uint64_t index, int bits, std::uint32_t& x,
                     std::uint32_t& y, std::uint32_t& z) {
  AMR_CHECK(bits >= 1 && bits <= kHilbertMaxBits);
  std::uint32_t axes[kDims] = {0, 0, 0};
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      const int shift = b * kDims + (kDims - 1 - i);
      axes[i] |= static_cast<std::uint32_t>((index >> shift) & 1u)
                 << static_cast<std::uint32_t>(b);
    }
  }
  transpose_to_axes(axes, bits);
  x = axes[0];
  y = axes[1];
  z = axes[2];
}

}  // namespace amr
