// Hilbert space-filling curve in 3D (Skilling's transpose algorithm).
//
// The paper's placement substrate uses Z-order curves because they fall
// out of octree DFS for free (§V-A), accepting that "some locality is
// inevitably lost as dimensionality reduction is inherently lossy".
// Hilbert curves trade a more expensive index computation for strictly
// adjacent consecutive cells; amr-cplx supports both so the cost of that
// choice is measurable (bench_sfc_ablation).
#pragma once

#include <cstdint>

namespace amr {

/// Max bits per dimension for the 3D Hilbert index (3*21 = 63 bits).
inline constexpr int kHilbertMaxBits = 21;

/// Map a 3D cell coordinate (each < 2^bits) to its Hilbert index.
std::uint64_t hilbert3_encode(std::uint32_t x, std::uint32_t y,
                              std::uint32_t z, int bits);

/// Inverse of hilbert3_encode.
void hilbert3_decode(std::uint64_t index, int bits, std::uint32_t& x,
                     std::uint32_t& y, std::uint32_t& z);

}  // namespace amr
