#include "amr/mesh/morton.hpp"

namespace amr {
namespace {

// Spread the low 21 bits of v so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint32_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return static_cast<std::uint32_t>(v);
}

std::uint64_t spread2(std::uint64_t v) {
  v &= 0x7fffffff;  // 31 bits
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

std::uint32_t compact2(std::uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v ^ (v >> 1)) & 0x3333333333333333ULL;
  v = (v ^ (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v ^ (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v ^ (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v ^ (v >> 16)) & 0x7fffffff;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t morton3_encode(std::uint32_t x, std::uint32_t y,
                             std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

void morton3_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t& z) {
  x = compact3(key);
  y = compact3(key >> 1);
  z = compact3(key >> 2);
}

std::uint64_t morton2_encode(std::uint32_t x, std::uint32_t y) {
  return spread2(x) | (spread2(y) << 1);
}

void morton2_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y) {
  x = compact2(key);
  y = compact2(key >> 1);
}

}  // namespace amr
