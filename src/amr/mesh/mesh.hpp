// Block-based AMR mesh: a forest of octrees over a root grid, with leaf
// blocks ordered by a Z-order space-filling curve (paper §V-A, Fig 5).
//
// The mesh maintains full 2:1 balance across all 26 neighbor directions,
// so any two adjacent leaves differ by at most one refinement level. Block
// IDs are positions in the SFC-ordered leaf vector and are reassigned
// after every refine/coarsen, exactly as in the redistribution flow the
// paper describes (IDs first, then placement, then migration).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "amr/mesh/coords.hpp"

namespace amr {

/// Directed adjacency entry: block -> neighbor.
struct Neighbor {
  std::int32_t index = -1;      ///< Neighbor's block ID (SFC position).
  NeighborKind kind = NeighborKind::kFace;
  std::int8_t level_diff = 0;   ///< neighbor.level - block.level (-1,0,+1).
};

/// Space-filling curve used for block ID assignment. Z-order is the
/// octree-DFS default of production frameworks (paper Fig 5); Hilbert
/// preserves strictly more locality at a higher indexing cost
/// (bench_sfc_ablation quantifies the difference).
enum class SfcKind : std::uint8_t { kZOrder = 0, kHilbert = 1 };

constexpr const char* to_string(SfcKind kind) {
  return kind == SfcKind::kZOrder ? "z-order" : "hilbert";
}

class AmrMesh {
 public:
  /// Create a mesh whose leaves are exactly the root grid (all level 0).
  explicit AmrMesh(RootGrid grid, bool periodic = false,
                   SfcKind sfc = SfcKind::kZOrder);

  std::size_t size() const { return leaves_.size(); }
  const BlockCoord& block(std::size_t id) const { return leaves_[id]; }
  std::span<const BlockCoord> blocks() const { return leaves_; }
  const RootGrid& root_grid() const { return grid_; }
  bool periodic() const { return periodic_; }
  SfcKind sfc_kind() const { return sfc_; }

  /// Block ID of the leaf with the given coordinates, or -1.
  std::int32_t find(const BlockCoord& c) const;

  /// Leaf covering the region of `c` (c itself, or an ancestor), or -1 if
  /// the region is outside the domain / not covered.
  std::int32_t find_covering(BlockCoord c) const;

  /// Physical bounds of a leaf block in the unit cube.
  Aabb bounds(std::size_t id) const { return block_bounds(leaves_[id], grid_); }

  int max_level_present() const;

  /// Refine the tagged leaves (by block ID). Additional blocks may be
  /// refined to restore 2:1 balance. Returns the total number of blocks
  /// refined. Invalidates all block IDs and neighbor lists.
  std::size_t refine(std::span<const std::int32_t> tagged);

  /// Coarsen tagged leaves. A sibling group collapses only if all eight
  /// siblings are tagged leaves and coarsening preserves 2:1 balance.
  /// Returns the number of groups collapsed. Invalidates block IDs.
  std::size_t coarsen(std::span<const std::int32_t> tagged);

  /// Uniformly refine every leaf `levels` times.
  void refine_all(int levels = 1);

  /// All 26-direction neighbors of every leaf, directed, deduplicated
  /// (a coarse block reachable through several directions is listed once,
  /// with its strongest adjacency). Built lazily and cached per mesh
  /// version.
  const std::vector<std::vector<Neighbor>>& neighbor_lists() const;

  /// Invariant: adjacent leaves differ by at most one level.
  bool check_balance() const;

  /// Invariant: leaves tile the domain exactly (no gaps, no overlaps).
  bool check_coverage() const;

 private:
  void rebuild_order();
  std::int32_t covering_in(
      const std::unordered_map<std::uint64_t, std::int32_t>& index,
      BlockCoord c) const;
  /// Neighbor coordinates at the block's own level for direction d;
  /// returns false if outside a non-periodic domain.
  bool neighbor_coord(const BlockCoord& b, int dx, int dy, int dz,
                      BlockCoord& out) const;
  void collect_neighbors(std::size_t id,
                         std::vector<Neighbor>& out) const;

  RootGrid grid_;
  bool periodic_;
  SfcKind sfc_;
  std::vector<BlockCoord> leaves_;                      // SFC order
  std::unordered_map<std::uint64_t, std::int32_t> index_;  // key -> block ID
  mutable std::vector<std::vector<Neighbor>> neighbor_cache_;
  mutable bool neighbor_cache_valid_ = false;
};

}  // namespace amr
