// Block-based AMR mesh: a forest of octrees over a root grid, with leaf
// blocks ordered by a Z-order space-filling curve (paper §V-A, Fig 5).
//
// The mesh maintains full 2:1 balance across all 26 neighbor directions,
// so any two adjacent leaves differ by at most one refinement level. Block
// IDs are positions in the SFC-ordered leaf vector and are reassigned
// after every refine/coarsen, exactly as in the redistribution flow the
// paper describes (IDs first, then placement, then migration).
//
// Renumbering is incremental: the mesh caches each leaf's SFC key, and a
// refine/coarsen merges the (sorted) surviving leaves with the (sorted)
// newly created ones instead of re-sorting the whole forest — the
// Hilbert/Morton encode runs only for blocks that actually changed. Every
// regrid bumps a monotone version counter and records a MeshRemap
// (new block ID -> provenance in the previous numbering), which is what
// lets the simulation carry per-block telemetry and cached exchange plans
// across regrids without rebuilding them from scratch.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "amr/mesh/coords.hpp"

namespace amr {

/// Directed adjacency entry: block -> neighbor.
struct Neighbor {
  std::int32_t index = -1;      ///< Neighbor's block ID (SFC position).
  NeighborKind kind = NeighborKind::kFace;
  std::int8_t level_diff = 0;   ///< neighbor.level - block.level (-1,0,+1).
};

/// Space-filling curve used for block ID assignment. Z-order is the
/// octree-DFS default of production frameworks (paper Fig 5); Hilbert
/// preserves strictly more locality at a higher indexing cost
/// (bench_sfc_ablation quantifies the difference).
enum class SfcKind : std::uint8_t { kZOrder = 0, kHilbert = 1 };

constexpr const char* to_string(SfcKind kind) {
  return kind == SfcKind::kZOrder ? "z-order" : "hilbert";
}

/// Provenance of a block across one regrid.
enum class RemapKind : std::uint8_t {
  kCarried = 0,    ///< same block; src = its ID in the previous numbering
  kRefined = 1,    ///< new child; src = old ID of the refined ancestor
  kCoarsened = 2,  ///< new parent; src = old ID of its first child (the
                   ///< eight collapsed children are SFC-consecutive, so
                   ///< they occupy old IDs src..src+7)
};

/// Per-regrid renumbering record: for every block ID in the new ordering,
/// where it came from in the previous one. Consumers compose consecutive
/// remaps to track blocks across several regrid epochs.
struct MeshRemap {
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
  std::vector<std::int32_t> src;  ///< per new ID, see RemapKind
  std::vector<RemapKind> kind;    ///< per new ID
  std::size_t carried = 0;        ///< count of kCarried entries
  std::size_t old_size = 0;       ///< leaf count before the regrid
};

class AmrMesh {
 public:
  /// Create a mesh whose leaves are exactly the root grid (all level 0).
  explicit AmrMesh(RootGrid grid, bool periodic = false,
                   SfcKind sfc = SfcKind::kZOrder);

  std::size_t size() const { return leaves_.size(); }
  const BlockCoord& block(std::size_t id) const { return leaves_[id]; }
  std::span<const BlockCoord> blocks() const { return leaves_; }
  const RootGrid& root_grid() const { return grid_; }
  bool periodic() const { return periodic_; }
  SfcKind sfc_kind() const { return sfc_; }

  /// Monotone counter bumped by every refine/coarsen that changes the
  /// leaf set. Together with a placement version it keys the exchange
  /// plan cache: equal versions guarantee identical blocks() and
  /// neighbor_lists().
  std::uint64_t version() const { return version_; }

  /// The renumbering record that produced `to_version`, or nullptr if it
  /// never existed or has aged out of the bounded history.
  const MeshRemap* remap_to(std::uint64_t to_version) const;

  /// The retained renumbering records, oldest first (checkpointing: the
  /// whole bounded history is what lets carried telemetry survive a
  /// restart exactly as it would an uninterrupted run).
  std::span<const MeshRemap> remap_history() const { return remaps_; }

  /// Adopt checkpointed state: `leaves` must already be in this mesh's
  /// exact SFC order (a snapshot of blocks() is). SFC keys and the leaf
  /// index are rebuilt; the SFC ordering, coverage, and balance
  /// invariants are re-validated, so a corrupt leaf set fails loudly
  /// instead of silently mis-simulating. The root grid, periodicity, and
  /// curve kind must match the constructed mesh.
  void restore_state(std::vector<BlockCoord> leaves, std::uint64_t version,
                     std::vector<MeshRemap> remaps);

  /// Block ID of the leaf with the given coordinates, or -1.
  std::int32_t find(const BlockCoord& c) const;

  /// Leaf covering the region of `c` (c itself, or an ancestor), or -1 if
  /// the region is outside the domain / not covered.
  std::int32_t find_covering(BlockCoord c) const;

  /// Physical bounds of a leaf block in the unit cube.
  Aabb bounds(std::size_t id) const { return block_bounds(leaves_[id], grid_); }

  int max_level_present() const;

  /// Refine the tagged leaves (by block ID). Additional blocks may be
  /// refined to restore 2:1 balance. Returns the total number of blocks
  /// refined. Invalidates all block IDs and neighbor lists.
  std::size_t refine(std::span<const std::int32_t> tagged);

  /// Coarsen tagged leaves. A sibling group collapses only if all eight
  /// siblings are tagged leaves and coarsening preserves 2:1 balance.
  /// Returns the number of groups collapsed. Invalidates block IDs.
  std::size_t coarsen(std::span<const std::int32_t> tagged);

  /// Uniformly refine every leaf `levels` times.
  void refine_all(int levels = 1);

  /// All 26-direction neighbors of every leaf, directed, deduplicated
  /// (a coarse block reachable through several directions is listed once,
  /// with its strongest adjacency). Built lazily and cached per mesh
  /// version.
  const std::vector<std::vector<Neighbor>>& neighbor_lists() const;

  /// Invariant: adjacent leaves differ by at most one level.
  bool check_balance() const;

  /// Invariant: leaves tile the domain exactly (no gaps, no overlaps).
  bool check_coverage() const;

  /// Invariant: leaves_ is exactly the full SFC sort (keys recomputed
  /// from scratch, strictly increasing) and index_ matches. Test hook for
  /// the incremental renumbering path.
  bool check_sfc_order() const;

 private:
  /// SFC sort key: primary = curve key of the root octree, secondary =
  /// the block's position within its root tree. Padding the local key to
  /// kMaxLevel digits yields the index of the block's first descendant at
  /// kMaxLevel, which orders disjoint leaves exactly as a depth-first
  /// traversal does (valid for Hilbert too: every axis-aligned 2^k cube
  /// is a contiguous index range of the curve).
  struct SfcKey {
    std::uint64_t root;
    std::uint64_t path;

    friend bool operator<(const SfcKey& a, const SfcKey& b) {
      return a.root != b.root ? a.root < b.root : a.path < b.path;
    }
    friend bool operator==(const SfcKey& a, const SfcKey& b) {
      return a.root == b.root && a.path == b.path;
    }
  };

  static SfcKey sfc_key(const BlockCoord& c, SfcKind kind);

  /// Newly created leaf with its provenance, accumulated during a regrid.
  struct AddedLeaf {
    BlockCoord coord;
    RemapKind kind;
    std::int32_t src;
  };

  void rebuild_order();
  void rebuild_index();
  /// Replace leaves_ by merging the surviving old leaves with `added`
  /// (keys computed only for the latter), record the MeshRemap, and bump
  /// the version. `removed` flags old IDs that no longer exist.
  void apply_delta(const std::vector<char>& removed,
                   std::vector<AddedLeaf> added);
  std::int32_t covering_in(
      const std::unordered_map<std::uint64_t, std::int32_t>& index,
      BlockCoord c) const;
  /// Neighbor coordinates at the block's own level for direction d;
  /// returns false if outside a non-periodic domain.
  bool neighbor_coord(const BlockCoord& b, int dx, int dy, int dz,
                      BlockCoord& out) const;
  void collect_neighbors(std::size_t id,
                         std::vector<Neighbor>& out) const;

  /// Regrids remembered for telemetry carry-over; older records age out.
  static constexpr std::size_t kMaxRemapHistory = 32;

  RootGrid grid_;
  bool periodic_;
  SfcKind sfc_;
  std::vector<BlockCoord> leaves_;                      // SFC order
  std::vector<SfcKey> keys_;                            // cached, ∥ leaves_
  std::unordered_map<std::uint64_t, std::int32_t> index_;  // key -> block ID
  std::uint64_t version_ = 0;
  std::vector<MeshRemap> remaps_;  // bounded at kMaxRemapHistory
  mutable std::vector<std::vector<Neighbor>> neighbor_cache_;
  mutable bool neighbor_cache_valid_ = false;
};

}  // namespace amr
