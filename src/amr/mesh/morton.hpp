// Morton (Z-order) encoding in 2 and 3 dimensions.
//
// Block-based AMR codes assign block IDs by a depth-first octree traversal,
// which is equivalent to sorting blocks by their Morton key (paper §V-A,
// Fig 5). Encoding supports up to 21 bits per dimension in 3D and 31 bits
// in 2D, far beyond practical AMR refinement depths.
#pragma once

#include <cstdint>

namespace amr {

/// Interleave the low 21 bits of x,y,z into a 63-bit Morton key
/// (x lowest: bit i of x goes to bit 3i of the result).
std::uint64_t morton3_encode(std::uint32_t x, std::uint32_t y,
                             std::uint32_t z);

/// Inverse of morton3_encode.
void morton3_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t& z);

/// Interleave the low 31 bits of x,y into a 62-bit Morton key.
std::uint64_t morton2_encode(std::uint32_t x, std::uint32_t y);

/// Inverse of morton2_encode.
void morton2_decode(std::uint64_t key, std::uint32_t& x, std::uint32_t& y);

}  // namespace amr
