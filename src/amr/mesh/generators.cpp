#include "amr/mesh/generators.hpp"

#include <algorithm>
#include <cmath>

namespace amr {

bool box_intersects_shell(const Aabb& box,
                          const std::array<double, 3>& center, double radius,
                          double half_width) {
  // Distance from center to the box: 0 if inside.
  double d2_min = 0.0;
  double d2_max = 0.0;
  for (int axis = 0; axis < 3; ++axis) {
    const double lo = box.lo[axis] - center[axis];
    const double hi = box.hi[axis] - center[axis];
    const double near = (lo > 0.0) ? lo : (hi < 0.0 ? -hi : 0.0);
    const double far = std::max(std::abs(lo), std::abs(hi));
    d2_min += near * near;
    d2_max += far * far;
  }
  const double r_lo = std::max(0.0, radius - half_width);
  const double r_hi = radius + half_width;
  return d2_min <= r_hi * r_hi && d2_max >= r_lo * r_lo;
}

std::size_t refine_where(AmrMesh& mesh,
                         const std::function<bool(const Aabb&)>& pred,
                         int max_level) {
  std::size_t total = 0;
  for (;;) {
    std::vector<std::int32_t> tags;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      if (mesh.block(i).level < max_level && pred(mesh.bounds(i)))
        tags.push_back(static_cast<std::int32_t>(i));
    }
    if (tags.empty()) return total;
    const std::size_t refined = mesh.refine(tags);
    if (refined == 0) return total;
    total += refined;
  }
}

std::size_t refine_shell(AmrMesh& mesh, const std::array<double, 3>& center,
                         double radius, double half_width, int max_level) {
  return refine_where(
      mesh,
      [&](const Aabb& box) {
        return box_intersects_shell(box, center, radius, half_width);
      },
      max_level);
}

std::size_t refine_random(AmrMesh& mesh, Rng& rng, double p, int rounds,
                          int max_level) {
  std::size_t total = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::int32_t> tags;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      if (mesh.block(i).level < max_level && rng.chance(p))
        tags.push_back(static_cast<std::int32_t>(i));
    }
    total += mesh.refine(tags);
  }
  return total;
}

void grow_to_block_count(AmrMesh& mesh, Rng& rng, std::size_t target_blocks,
                         int max_level) {
  int guard = 0;
  while (mesh.size() < target_blocks && guard++ < 1000) {
    const std::array<double, 3> center{rng.uniform(), rng.uniform(),
                                       rng.uniform()};
    const double radius = rng.uniform(0.05, 0.3);
    std::vector<std::int32_t> tags;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      if (mesh.block(i).level >= max_level) continue;
      const auto c = mesh.bounds(i).center();
      const double dx = c[0] - center[0];
      const double dy = c[1] - center[1];
      const double dz = c[2] - center[2];
      if (dx * dx + dy * dy + dz * dz <= radius * radius)
        tags.push_back(static_cast<std::int32_t>(i));
    }
    if (tags.empty()) continue;
    // Refine only as many as needed to approach the target.
    const std::size_t deficit = target_blocks - mesh.size();
    const std::size_t cap = std::max<std::size_t>(1, deficit / 7);
    if (tags.size() > cap) tags.resize(cap);
    mesh.refine(tags);
  }
}

}  // namespace amr
