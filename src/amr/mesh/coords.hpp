// Logical block coordinates and geometric helpers.
//
// A mesh is a grid of nx×ny×nz root octrees over the unit cube. A block at
// refinement level L occupies logical cell (x,y,z) of the (nx·2^L)×(ny·2^L)
// ×(nz·2^L) grid. All blocks hold the same number of computational cells
// regardless of level (paper §II-B), so refinement shrinks physical extent
// but not per-block work.
#pragma once

#include <array>
#include <cstdint>

#include "amr/common/check.hpp"

namespace amr {

inline constexpr int kMaxLevel = 18;

/// Logical coordinates of a block: refinement level plus position in the
/// level's block grid.
struct BlockCoord {
  std::int32_t level = 0;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;

  friend bool operator==(const BlockCoord&, const BlockCoord&) = default;

  BlockCoord parent() const {
    AMR_CHECK(level > 0);
    return {level - 1, x >> 1, y >> 1, z >> 1};
  }

  /// Child at octant (cx,cy,cz), each in {0,1}.
  BlockCoord child(std::uint32_t cx, std::uint32_t cy,
                   std::uint32_t cz) const {
    return {level + 1, (x << 1) | cx, (y << 1) | cy, (z << 1) | cz};
  }

  /// Octant index of this block within its parent (0..7, Morton order).
  std::uint32_t octant() const {
    return (x & 1u) | ((y & 1u) << 1) | ((z & 1u) << 2);
  }
};

/// Packed 64-bit key: 5 level bits + 3×19 coordinate bits. Uniquely
/// identifies a node across levels; used for hash lookups.
constexpr std::uint64_t block_key(const BlockCoord& c) {
  return (static_cast<std::uint64_t>(c.level) << 57) |
         (static_cast<std::uint64_t>(c.x) << 38) |
         (static_cast<std::uint64_t>(c.y) << 19) |
         static_cast<std::uint64_t>(c.z);
}

/// Dimensions of the root octree grid.
struct RootGrid {
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;

  std::uint64_t count() const {
    return static_cast<std::uint64_t>(nx) * ny * nz;
  }
};

/// Physical axis-aligned bounding box in the unit cube.
struct Aabb {
  std::array<double, 3> lo{0, 0, 0};
  std::array<double, 3> hi{1, 1, 1};

  std::array<double, 3> center() const {
    return {(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2, (lo[2] + hi[2]) / 2};
  }
};

/// Physical bounds of a block; the root grid spans the unit cube.
inline Aabb block_bounds(const BlockCoord& c, const RootGrid& grid) {
  const double sx = 1.0 / static_cast<double>(grid.nx << c.level);
  const double sy = 1.0 / static_cast<double>(grid.ny << c.level);
  const double sz = 1.0 / static_cast<double>(grid.nz << c.level);
  Aabb box;
  box.lo = {c.x * sx, c.y * sy, c.z * sz};
  box.hi = {(c.x + 1) * sx, (c.y + 1) * sy, (c.z + 1) * sz};
  return box;
}

/// Neighbor adjacency class: how many dimensions the blocks touch in.
/// 26 neighbors in 3D: 6 faces, 12 edges, 8 vertices (paper §II-B).
enum class NeighborKind : std::uint8_t { kFace = 0, kEdge = 1, kVertex = 2 };

/// Classify a direction vector with components in {-1,0,1}.
constexpr NeighborKind classify_direction(int dx, int dy, int dz) {
  const int touch = (dx != 0) + (dy != 0) + (dz != 0);
  AMR_CHECK(touch >= 1 && touch <= 3);
  return touch == 1 ? NeighborKind::kFace
         : touch == 2 ? NeighborKind::kEdge
                      : NeighborKind::kVertex;
}

constexpr const char* to_string(NeighborKind k) {
  switch (k) {
    case NeighborKind::kFace: return "face";
    case NeighborKind::kEdge: return "edge";
    case NeighborKind::kVertex: return "vertex";
  }
  return "?";
}

}  // namespace amr
