#include "amr/mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "amr/mesh/hilbert.hpp"
#include "amr/mesh/morton.hpp"

namespace amr {
namespace {

/// SFC sort key: primary = curve key of the root octree, secondary = the
/// block's position within its root tree. For Z-order, padding the local
/// Morton key to kMaxLevel digits yields the index of the block's first
/// descendant at kMaxLevel, which orders disjoint leaves exactly as a
/// depth-first traversal does. For Hilbert the same construction is valid
/// because every axis-aligned 2^k cube is a contiguous index range of the
/// curve, so disjoint leaves map to disjoint ranges.
struct SfcKey {
  std::uint64_t root;
  std::uint64_t path;

  friend bool operator<(const SfcKey& a, const SfcKey& b) {
    return a.root != b.root ? a.root < b.root : a.path < b.path;
  }
};

SfcKey sfc_key(const BlockCoord& c, SfcKind kind) {
  const std::uint32_t rx = c.x >> c.level;
  const std::uint32_t ry = c.y >> c.level;
  const std::uint32_t rz = c.z >> c.level;
  const std::uint32_t lx = c.x - (rx << c.level);
  const std::uint32_t ly = c.y - (ry << c.level);
  const std::uint32_t lz = c.z - (rz << c.level);
  if (kind == SfcKind::kHilbert) {
    const int pad = kMaxLevel - c.level;
    const std::uint64_t local = hilbert3_encode(
        lx << pad, ly << pad, lz << pad, kMaxLevel);
    return {morton3_encode(rx, ry, rz), local};
  }
  const std::uint64_t local = morton3_encode(lx, ly, lz);
  return {morton3_encode(rx, ry, rz),
          local << (3 * (kMaxLevel - c.level))};
}

constexpr int kStrength(NeighborKind k) { return static_cast<int>(k); }

}  // namespace

AmrMesh::AmrMesh(RootGrid grid, bool periodic, SfcKind sfc)
    : grid_(grid), periodic_(periodic), sfc_(sfc) {
  AMR_CHECK(grid.nx > 0 && grid.ny > 0 && grid.nz > 0);
  leaves_.reserve(grid.count());
  for (std::uint32_t z = 0; z < grid.nz; ++z)
    for (std::uint32_t y = 0; y < grid.ny; ++y)
      for (std::uint32_t x = 0; x < grid.nx; ++x)
        leaves_.push_back(BlockCoord{0, x, y, z});
  rebuild_order();
}

void AmrMesh::rebuild_order() {
  std::sort(leaves_.begin(), leaves_.end(),
            [this](const BlockCoord& a, const BlockCoord& b) {
              return sfc_key(a, sfc_) < sfc_key(b, sfc_);
            });
  index_.clear();
  index_.reserve(leaves_.size() * 2);
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const bool inserted =
        index_.emplace(block_key(leaves_[i]), static_cast<std::int32_t>(i))
            .second;
    AMR_CHECK_MSG(inserted, "duplicate leaf");
  }
  neighbor_cache_valid_ = false;
}

std::int32_t AmrMesh::find(const BlockCoord& c) const {
  const auto it = index_.find(block_key(c));
  return it != index_.end() ? it->second : -1;
}

std::int32_t AmrMesh::covering_in(
    const std::unordered_map<std::uint64_t, std::int32_t>& index,
    BlockCoord c) const {
  for (;;) {
    const auto it = index.find(block_key(c));
    if (it != index.end()) return it->second;
    if (c.level == 0) return -1;
    c = c.parent();
  }
}

std::int32_t AmrMesh::find_covering(BlockCoord c) const {
  return covering_in(index_, c);
}

int AmrMesh::max_level_present() const {
  int lvl = 0;
  for (const auto& b : leaves_) lvl = std::max(lvl, b.level);
  return lvl;
}

bool AmrMesh::neighbor_coord(const BlockCoord& b, int dx, int dy, int dz,
                             BlockCoord& out) const {
  const std::int64_t ex = static_cast<std::int64_t>(grid_.nx) << b.level;
  const std::int64_t ey = static_cast<std::int64_t>(grid_.ny) << b.level;
  const std::int64_t ez = static_cast<std::int64_t>(grid_.nz) << b.level;
  std::int64_t nx = static_cast<std::int64_t>(b.x) + dx;
  std::int64_t ny = static_cast<std::int64_t>(b.y) + dy;
  std::int64_t nz = static_cast<std::int64_t>(b.z) + dz;
  if (periodic_) {
    nx = (nx + ex) % ex;
    ny = (ny + ey) % ey;
    nz = (nz + ez) % ez;
  } else if (nx < 0 || ny < 0 || nz < 0 || nx >= ex || ny >= ey ||
             nz >= ez) {
    return false;
  }
  out = BlockCoord{b.level, static_cast<std::uint32_t>(nx),
                   static_cast<std::uint32_t>(ny),
                   static_cast<std::uint32_t>(nz)};
  return true;
}

void AmrMesh::collect_neighbors(std::size_t id,
                                std::vector<Neighbor>& out) const {
  const BlockCoord& b = leaves_[id];
  out.clear();
  auto add = [&](std::int32_t idx, NeighborKind kind, std::int8_t diff) {
    // Dedup against earlier directions: a coarse block can cover several
    // directions; keep the strongest adjacency (face < edge < vertex in
    // kStrength order, lower = stronger).
    for (auto& n : out) {
      if (n.index == idx) {
        if (kStrength(kind) < kStrength(n.kind)) n.kind = kind;
        return;
      }
    }
    out.push_back(Neighbor{idx, kind, diff});
  };

  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        BlockCoord nb;
        if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
        const NeighborKind kind = classify_direction(dx, dy, dz);
        // Same level or coarser covering leaf.
        const std::int32_t same = find(nb);
        if (same >= 0) {
          if (same != static_cast<std::int32_t>(id))
            add(same, kind, 0);
          continue;
        }
        const std::int32_t coarse = find_covering(nb);
        if (coarse >= 0) {
          AMR_CHECK_MSG(leaves_[coarse].level == b.level - 1,
                        "2:1 balance violated (coarse side)");
          if (coarse != static_cast<std::int32_t>(id))
            add(coarse, kind, -1);
          continue;
        }
        // Neighbor region is refined: enumerate the children of nb that
        // touch this block (offset 0 on +axes, 1 on -axes, both on 0).
        const std::uint32_t cx_lo = dx == 1 ? 0 : dx == -1 ? 1 : 0;
        const std::uint32_t cx_hi = dx == 0 ? 1 : cx_lo;
        const std::uint32_t cy_lo = dy == 1 ? 0 : dy == -1 ? 1 : 0;
        const std::uint32_t cy_hi = dy == 0 ? 1 : cy_lo;
        const std::uint32_t cz_lo = dz == 1 ? 0 : dz == -1 ? 1 : 0;
        const std::uint32_t cz_hi = dz == 0 ? 1 : cz_lo;
        bool found_any = false;
        for (std::uint32_t cz = cz_lo; cz <= cz_hi; ++cz) {
          for (std::uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
            for (std::uint32_t cx = cx_lo; cx <= cx_hi; ++cx) {
              const std::int32_t fine = find(nb.child(cx, cy, cz));
              if (fine >= 0) {
                add(fine, kind, +1);
                found_any = true;
              }
            }
          }
        }
        AMR_CHECK_MSG(found_any, "2:1 balance violated (fine side)");
      }
    }
  }
}

const std::vector<std::vector<Neighbor>>& AmrMesh::neighbor_lists() const {
  if (!neighbor_cache_valid_) {
    neighbor_cache_.assign(leaves_.size(), {});
    for (std::size_t i = 0; i < leaves_.size(); ++i)
      collect_neighbors(i, neighbor_cache_[i]);
    neighbor_cache_valid_ = true;
  }
  return neighbor_cache_;
}

std::size_t AmrMesh::refine(std::span<const std::int32_t> tagged) {
  // Working set keyed by coordinates; block IDs go stale as we mutate.
  std::unordered_set<std::uint64_t> to_refine;
  for (std::int32_t id : tagged) {
    AMR_CHECK(id >= 0 && static_cast<std::size_t>(id) < leaves_.size());
    if (leaves_[id].level < kMaxLevel)
      to_refine.insert(block_key(leaves_[id]));
  }
  if (to_refine.empty()) return 0;

  // Leaf set by key for in-place edits.
  std::unordered_map<std::uint64_t, BlockCoord> leafset;
  leafset.reserve(leaves_.size() * 2);
  for (const auto& b : leaves_) leafset.emplace(block_key(b), b);

  auto covering = [&](BlockCoord c) -> const BlockCoord* {
    for (;;) {
      const auto it = leafset.find(block_key(c));
      if (it != leafset.end()) return &it->second;
      if (c.level == 0) return nullptr;
      c = c.parent();
    }
  };

  std::size_t refined = 0;
  std::vector<std::uint64_t> wave(to_refine.begin(), to_refine.end());
  std::unordered_set<std::uint64_t> scheduled = to_refine;
  while (!wave.empty()) {
    std::vector<std::uint64_t> next;
    for (std::uint64_t key : wave) {
      const auto it = leafset.find(key);
      if (it == leafset.end()) continue;  // already replaced by ripple
      const BlockCoord b = it->second;
      leafset.erase(it);
      ++refined;
      for (std::uint32_t c = 0; c < 8; ++c) {
        const BlockCoord ch = b.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u);
        leafset.emplace(block_key(ch), ch);
      }
      // Ripple: any neighbor coarser than b now violates 2:1 against the
      // new children and must itself refine.
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            BlockCoord nb;
            if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
            const BlockCoord* cov = covering(nb);
            if (cov != nullptr && cov->level < b.level) {
              const std::uint64_t ck = block_key(*cov);
              if (scheduled.insert(ck).second) next.push_back(ck);
            }
          }
        }
      }
    }
    wave = std::move(next);
  }

  leaves_.clear();
  leaves_.reserve(leafset.size());
  for (const auto& [key, b] : leafset) leaves_.push_back(b);
  rebuild_order();
  return refined;
}

std::size_t AmrMesh::coarsen(std::span<const std::int32_t> tagged) {
  // Group tagged leaves by parent; a group collapses only if all eight
  // siblings are tagged leaves.
  std::unordered_map<std::uint64_t, int> group_count;
  for (std::int32_t id : tagged) {
    AMR_CHECK(id >= 0 && static_cast<std::size_t>(id) < leaves_.size());
    const BlockCoord& b = leaves_[id];
    if (b.level == 0) continue;
    ++group_count[block_key(b.parent())];
  }

  std::vector<BlockCoord> parents;
  for (const auto& [pkey, count] : group_count) {
    if (count != 8) continue;
    const std::int32_t some_child_level =
        static_cast<std::int32_t>(pkey >> 57) + 1;
    BlockCoord parent{some_child_level - 1,
                      static_cast<std::uint32_t>((pkey >> 38) & 0x7ffff),
                      static_cast<std::uint32_t>((pkey >> 19) & 0x7ffff),
                      static_cast<std::uint32_t>(pkey & 0x7ffff)};
    // Balance: after collapsing, the parent must not touch any leaf finer
    // than level parent.level + 1, i.e. no child may currently have an
    // external neighbor one level finer than itself.
    bool ok = true;
    for (std::uint32_t c = 0; c < 8 && ok; ++c) {
      const BlockCoord ch =
          parent.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u);
      for (int dz = -1; dz <= 1 && ok; ++dz) {
        for (int dy = -1; dy <= 1 && ok; ++dy) {
          for (int dx = -1; dx <= 1 && ok; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            BlockCoord nb;
            if (!neighbor_coord(ch, dx, dy, dz, nb)) continue;
            if (nb.parent() == parent) continue;  // internal
            if (find(nb) >= 0) continue;          // same level: fine
            if (find_covering(nb) >= 0) continue; // coarser: fine
            // Region is refined below ch's level -> collapsing violates.
            ok = false;
          }
        }
      }
    }
    if (ok) parents.push_back(parent);
  }
  if (parents.empty()) return 0;

  std::unordered_set<std::uint64_t> removed;
  for (const auto& p : parents)
    for (std::uint32_t c = 0; c < 8; ++c)
      removed.insert(
          block_key(p.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u)));

  std::vector<BlockCoord> kept;
  kept.reserve(leaves_.size());
  for (const auto& b : leaves_)
    if (!removed.contains(block_key(b))) kept.push_back(b);
  for (const auto& p : parents) kept.push_back(p);
  leaves_ = std::move(kept);
  rebuild_order();
  return parents.size();
}

void AmrMesh::refine_all(int levels) {
  for (int i = 0; i < levels; ++i) {
    std::vector<std::int32_t> all(leaves_.size());
    for (std::size_t j = 0; j < all.size(); ++j)
      all[j] = static_cast<std::int32_t>(j);
    refine(all);
  }
}

bool AmrMesh::check_balance() const {
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const BlockCoord& b = leaves_[i];
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          BlockCoord nb;
          if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
          if (find(nb) >= 0) continue;
          const std::int32_t coarse = find_covering(nb);
          if (coarse >= 0) {
            if (leaves_[coarse].level < b.level - 1) return false;
            continue;
          }
          // Refined region: verify no descendant deeper than level+1
          // touches us. It suffices to check that all touching children
          // exist as leaves.
          const std::uint32_t cx_lo = dx == 1 ? 0 : dx == -1 ? 1 : 0;
          const std::uint32_t cx_hi = dx == 0 ? 1 : cx_lo;
          const std::uint32_t cy_lo = dy == 1 ? 0 : dy == -1 ? 1 : 0;
          const std::uint32_t cy_hi = dy == 0 ? 1 : cy_lo;
          const std::uint32_t cz_lo = dz == 1 ? 0 : dz == -1 ? 1 : 0;
          const std::uint32_t cz_hi = dz == 0 ? 1 : cz_lo;
          for (std::uint32_t cz = cz_lo; cz <= cz_hi; ++cz)
            for (std::uint32_t cy = cy_lo; cy <= cy_hi; ++cy)
              for (std::uint32_t cx = cx_lo; cx <= cx_hi; ++cx)
                if (find(nb.child(cx, cy, cz)) < 0) return false;
        }
      }
    }
  }
  return true;
}

bool AmrMesh::check_coverage() const {
  // Volumes must sum to the whole domain, and no leaf may be an ancestor
  // of another (the index would have caught exact duplicates already).
  long double volume = 0.0L;
  for (const auto& b : leaves_) {
    volume += 1.0L / static_cast<long double>(grid_.count() *
                                              (1ULL << (3 * b.level)));
    BlockCoord c = b;
    while (c.level > 0) {
      c = c.parent();
      if (find(c) >= 0) return false;
    }
  }
  return std::abs(static_cast<double>(volume) - 1.0) < 1e-9;
}

}  // namespace amr
