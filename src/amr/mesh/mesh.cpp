#include "amr/mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "amr/mesh/hilbert.hpp"
#include "amr/mesh/morton.hpp"

namespace amr {
namespace {

constexpr int kStrength(NeighborKind k) { return static_cast<int>(k); }

}  // namespace

AmrMesh::SfcKey AmrMesh::sfc_key(const BlockCoord& c, SfcKind kind) {
  const std::uint32_t rx = c.x >> c.level;
  const std::uint32_t ry = c.y >> c.level;
  const std::uint32_t rz = c.z >> c.level;
  const std::uint32_t lx = c.x - (rx << c.level);
  const std::uint32_t ly = c.y - (ry << c.level);
  const std::uint32_t lz = c.z - (rz << c.level);
  if (kind == SfcKind::kHilbert) {
    const int pad = kMaxLevel - c.level;
    const std::uint64_t local = hilbert3_encode(
        lx << pad, ly << pad, lz << pad, kMaxLevel);
    return {morton3_encode(rx, ry, rz), local};
  }
  const std::uint64_t local = morton3_encode(lx, ly, lz);
  return {morton3_encode(rx, ry, rz),
          local << (3 * (kMaxLevel - c.level))};
}

AmrMesh::AmrMesh(RootGrid grid, bool periodic, SfcKind sfc)
    : grid_(grid), periodic_(periodic), sfc_(sfc) {
  AMR_CHECK(grid.nx > 0 && grid.ny > 0 && grid.nz > 0);
  leaves_.reserve(grid.count());
  for (std::uint32_t z = 0; z < grid.nz; ++z)
    for (std::uint32_t y = 0; y < grid.ny; ++y)
      for (std::uint32_t x = 0; x < grid.nx; ++x)
        leaves_.push_back(BlockCoord{0, x, y, z});
  rebuild_order();
}

void AmrMesh::rebuild_order() {
  // Full sort (construction only). Keys are computed once per leaf, not
  // once per comparison, and cached for later incremental merges.
  std::vector<std::pair<SfcKey, BlockCoord>> order;
  order.reserve(leaves_.size());
  for (const auto& b : leaves_) order.emplace_back(sfc_key(b, sfc_), b);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  keys_.clear();
  keys_.reserve(order.size());
  leaves_.clear();
  for (const auto& [key, b] : order) {
    keys_.push_back(key);
    leaves_.push_back(b);
  }
  rebuild_index();
}

void AmrMesh::rebuild_index() {
  index_.clear();
  index_.reserve(leaves_.size() * 2);
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const bool inserted =
        index_.emplace(block_key(leaves_[i]), static_cast<std::int32_t>(i))
            .second;
    AMR_CHECK_MSG(inserted, "duplicate leaf");
  }
  neighbor_cache_valid_ = false;
}

void AmrMesh::apply_delta(const std::vector<char>& removed,
                          std::vector<AddedLeaf> added) {
  // Encode SFC keys only for the blocks this regrid created, then merge
  // them into the surviving (already sorted) previous order.
  std::vector<std::pair<SfcKey, AddedLeaf>> incoming;
  incoming.reserve(added.size());
  for (const auto& a : added) incoming.emplace_back(sfc_key(a.coord, sfc_), a);
  std::sort(incoming.begin(), incoming.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::size_t old_n = leaves_.size();
  MeshRemap remap;
  remap.from_version = version_;
  remap.to_version = version_ + 1;
  remap.old_size = old_n;

  std::vector<BlockCoord> new_leaves;
  std::vector<SfcKey> new_keys;
  const std::size_t new_n = old_n - static_cast<std::size_t>(std::count(
                                        removed.begin(), removed.end(), 1)) +
                            incoming.size();
  new_leaves.reserve(new_n);
  new_keys.reserve(new_n);
  remap.src.reserve(new_n);
  remap.kind.reserve(new_n);

  std::size_t ai = 0;
  auto take_added = [&]() {
    new_keys.push_back(incoming[ai].first);
    new_leaves.push_back(incoming[ai].second.coord);
    remap.src.push_back(incoming[ai].second.src);
    remap.kind.push_back(incoming[ai].second.kind);
    ++ai;
  };
  for (std::size_t i = 0; i < old_n; ++i) {
    if (removed[i]) continue;
    while (ai < incoming.size() && incoming[ai].first < keys_[i]) take_added();
    new_keys.push_back(keys_[i]);
    new_leaves.push_back(leaves_[i]);
    remap.src.push_back(static_cast<std::int32_t>(i));
    remap.kind.push_back(RemapKind::kCarried);
    ++remap.carried;
  }
  while (ai < incoming.size()) take_added();

  leaves_ = std::move(new_leaves);
  keys_ = std::move(new_keys);
  rebuild_index();
  ++version_;
  remaps_.push_back(std::move(remap));
  if (remaps_.size() > kMaxRemapHistory)
    remaps_.erase(remaps_.begin(),
                  remaps_.end() - static_cast<std::ptrdiff_t>(kMaxRemapHistory));
}

void AmrMesh::restore_state(std::vector<BlockCoord> leaves,
                            std::uint64_t version,
                            std::vector<MeshRemap> remaps) {
  AMR_CHECK_MSG(!leaves.empty(), "restored mesh has no leaves");
  leaves_ = std::move(leaves);
  keys_.clear();
  keys_.reserve(leaves_.size());
  for (const auto& b : leaves_) keys_.push_back(sfc_key(b, sfc_));
  for (std::size_t i = 1; i < keys_.size(); ++i)
    AMR_CHECK_MSG(keys_[i - 1] < keys_[i],
                  "restored leaves are not in SFC order");
  rebuild_index();
  AMR_CHECK_MSG(check_coverage() && check_balance(),
                "restored mesh violates coverage/balance invariants");
  version_ = version;
  remaps_ = std::move(remaps);
}

const MeshRemap* AmrMesh::remap_to(std::uint64_t to_version) const {
  for (auto it = remaps_.rbegin(); it != remaps_.rend(); ++it)
    if (it->to_version == to_version) return &*it;
  return nullptr;
}

std::int32_t AmrMesh::find(const BlockCoord& c) const {
  const auto it = index_.find(block_key(c));
  return it != index_.end() ? it->second : -1;
}

std::int32_t AmrMesh::covering_in(
    const std::unordered_map<std::uint64_t, std::int32_t>& index,
    BlockCoord c) const {
  for (;;) {
    const auto it = index.find(block_key(c));
    if (it != index.end()) return it->second;
    if (c.level == 0) return -1;
    c = c.parent();
  }
}

std::int32_t AmrMesh::find_covering(BlockCoord c) const {
  return covering_in(index_, c);
}

int AmrMesh::max_level_present() const {
  int lvl = 0;
  for (const auto& b : leaves_) lvl = std::max(lvl, b.level);
  return lvl;
}

bool AmrMesh::neighbor_coord(const BlockCoord& b, int dx, int dy, int dz,
                             BlockCoord& out) const {
  const std::int64_t ex = static_cast<std::int64_t>(grid_.nx) << b.level;
  const std::int64_t ey = static_cast<std::int64_t>(grid_.ny) << b.level;
  const std::int64_t ez = static_cast<std::int64_t>(grid_.nz) << b.level;
  std::int64_t nx = static_cast<std::int64_t>(b.x) + dx;
  std::int64_t ny = static_cast<std::int64_t>(b.y) + dy;
  std::int64_t nz = static_cast<std::int64_t>(b.z) + dz;
  if (periodic_) {
    nx = (nx + ex) % ex;
    ny = (ny + ey) % ey;
    nz = (nz + ez) % ez;
  } else if (nx < 0 || ny < 0 || nz < 0 || nx >= ex || ny >= ey ||
             nz >= ez) {
    return false;
  }
  out = BlockCoord{b.level, static_cast<std::uint32_t>(nx),
                   static_cast<std::uint32_t>(ny),
                   static_cast<std::uint32_t>(nz)};
  return true;
}

void AmrMesh::collect_neighbors(std::size_t id,
                                std::vector<Neighbor>& out) const {
  const BlockCoord& b = leaves_[id];
  out.clear();
  auto add = [&](std::int32_t idx, NeighborKind kind, std::int8_t diff) {
    // Dedup against earlier directions: a coarse block can cover several
    // directions; keep the strongest adjacency (face < edge < vertex in
    // kStrength order, lower = stronger).
    for (auto& n : out) {
      if (n.index == idx) {
        if (kStrength(kind) < kStrength(n.kind)) n.kind = kind;
        return;
      }
    }
    out.push_back(Neighbor{idx, kind, diff});
  };

  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        BlockCoord nb;
        if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
        const NeighborKind kind = classify_direction(dx, dy, dz);
        // Same level or coarser covering leaf.
        const std::int32_t same = find(nb);
        if (same >= 0) {
          if (same != static_cast<std::int32_t>(id))
            add(same, kind, 0);
          continue;
        }
        const std::int32_t coarse = find_covering(nb);
        if (coarse >= 0) {
          AMR_CHECK_MSG(leaves_[coarse].level == b.level - 1,
                        "2:1 balance violated (coarse side)");
          if (coarse != static_cast<std::int32_t>(id))
            add(coarse, kind, -1);
          continue;
        }
        // Neighbor region is refined: enumerate the children of nb that
        // touch this block (offset 0 on +axes, 1 on -axes, both on 0).
        const std::uint32_t cx_lo = dx == 1 ? 0 : dx == -1 ? 1 : 0;
        const std::uint32_t cx_hi = dx == 0 ? 1 : cx_lo;
        const std::uint32_t cy_lo = dy == 1 ? 0 : dy == -1 ? 1 : 0;
        const std::uint32_t cy_hi = dy == 0 ? 1 : cy_lo;
        const std::uint32_t cz_lo = dz == 1 ? 0 : dz == -1 ? 1 : 0;
        const std::uint32_t cz_hi = dz == 0 ? 1 : cz_lo;
        bool found_any = false;
        for (std::uint32_t cz = cz_lo; cz <= cz_hi; ++cz) {
          for (std::uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
            for (std::uint32_t cx = cx_lo; cx <= cx_hi; ++cx) {
              const std::int32_t fine = find(nb.child(cx, cy, cz));
              if (fine >= 0) {
                add(fine, kind, +1);
                found_any = true;
              }
            }
          }
        }
        AMR_CHECK_MSG(found_any, "2:1 balance violated (fine side)");
      }
    }
  }
}

const std::vector<std::vector<Neighbor>>& AmrMesh::neighbor_lists() const {
  if (!neighbor_cache_valid_) {
    neighbor_cache_.assign(leaves_.size(), {});
    for (std::size_t i = 0; i < leaves_.size(); ++i)
      collect_neighbors(i, neighbor_cache_[i]);
    neighbor_cache_valid_ = true;
  }
  return neighbor_cache_;
}

std::size_t AmrMesh::refine(std::span<const std::int32_t> tagged) {
  // Working set keyed by coordinates; block IDs go stale as we mutate.
  std::unordered_set<std::uint64_t> to_refine;
  for (std::int32_t id : tagged) {
    AMR_CHECK(id >= 0 && static_cast<std::size_t>(id) < leaves_.size());
    if (leaves_[id].level < kMaxLevel)
      to_refine.insert(block_key(leaves_[id]));
  }
  if (to_refine.empty()) return 0;

  // Leaf set by key for in-place edits. leaves_/index_ stay untouched
  // until apply_delta, so original-leaf IDs remain valid throughout.
  std::unordered_map<std::uint64_t, BlockCoord> leafset;
  leafset.reserve(leaves_.size() * 2);
  for (const auto& b : leaves_) leafset.emplace(block_key(b), b);

  auto covering = [&](BlockCoord c) -> const BlockCoord* {
    for (;;) {
      const auto it = leafset.find(block_key(c));
      if (it != leafset.end()) return &it->second;
      if (c.level == 0) return nullptr;
      c = c.parent();
    }
  };

  // Delta bookkeeping: which original leaves disappeared, and which
  // blocks were created (with the old ID of the refined ancestor they
  // descend from — chain-refined grandchildren inherit the ancestor).
  std::vector<char> removed(leaves_.size(), 0);
  std::unordered_map<std::uint64_t, AddedLeaf> added_info;

  std::size_t refined = 0;
  std::vector<std::uint64_t> wave(to_refine.begin(), to_refine.end());
  std::unordered_set<std::uint64_t> scheduled = to_refine;
  while (!wave.empty()) {
    std::vector<std::uint64_t> next;
    for (std::uint64_t key : wave) {
      const auto it = leafset.find(key);
      if (it == leafset.end()) continue;  // already replaced by ripple
      const BlockCoord b = it->second;
      leafset.erase(it);
      ++refined;
      std::int32_t src;
      const auto ait = added_info.find(key);
      if (ait != added_info.end()) {
        src = ait->second.src;  // chain-refine of a block added this call
        added_info.erase(ait);
      } else {
        src = index_.at(key);
        removed[static_cast<std::size_t>(src)] = 1;
      }
      for (std::uint32_t c = 0; c < 8; ++c) {
        const BlockCoord ch = b.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u);
        leafset.emplace(block_key(ch), ch);
        added_info.emplace(block_key(ch),
                           AddedLeaf{ch, RemapKind::kRefined, src});
      }
      // Ripple: any neighbor coarser than b now violates 2:1 against the
      // new children and must itself refine.
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            BlockCoord nb;
            if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
            const BlockCoord* cov = covering(nb);
            if (cov != nullptr && cov->level < b.level) {
              const std::uint64_t ck = block_key(*cov);
              if (scheduled.insert(ck).second) next.push_back(ck);
            }
          }
        }
      }
    }
    wave = std::move(next);
  }

  std::vector<AddedLeaf> added;
  added.reserve(added_info.size());
  for (const auto& [key, a] : added_info) added.push_back(a);
  apply_delta(removed, std::move(added));
  return refined;
}

std::size_t AmrMesh::coarsen(std::span<const std::int32_t> tagged) {
  // Group tagged leaves by parent; a group collapses only if all eight
  // siblings are tagged leaves.
  std::unordered_map<std::uint64_t, int> group_count;
  for (std::int32_t id : tagged) {
    AMR_CHECK(id >= 0 && static_cast<std::size_t>(id) < leaves_.size());
    const BlockCoord& b = leaves_[id];
    if (b.level == 0) continue;
    ++group_count[block_key(b.parent())];
  }

  std::vector<BlockCoord> parents;
  for (const auto& [pkey, count] : group_count) {
    if (count != 8) continue;
    const std::int32_t some_child_level =
        static_cast<std::int32_t>(pkey >> 57) + 1;
    BlockCoord parent{some_child_level - 1,
                      static_cast<std::uint32_t>((pkey >> 38) & 0x7ffff),
                      static_cast<std::uint32_t>((pkey >> 19) & 0x7ffff),
                      static_cast<std::uint32_t>(pkey & 0x7ffff)};
    // Balance: after collapsing, the parent must not touch any leaf finer
    // than level parent.level + 1, i.e. no child may currently have an
    // external neighbor one level finer than itself.
    bool ok = true;
    for (std::uint32_t c = 0; c < 8 && ok; ++c) {
      const BlockCoord ch =
          parent.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u);
      for (int dz = -1; dz <= 1 && ok; ++dz) {
        for (int dy = -1; dy <= 1 && ok; ++dy) {
          for (int dx = -1; dx <= 1 && ok; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            BlockCoord nb;
            if (!neighbor_coord(ch, dx, dy, dz, nb)) continue;
            if (nb.parent() == parent) continue;  // internal
            if (find(nb) >= 0) continue;          // same level: fine
            if (find_covering(nb) >= 0) continue; // coarser: fine
            // Region is refined below ch's level -> collapsing violates.
            ok = false;
          }
        }
      }
    }
    if (ok) parents.push_back(parent);
  }
  if (parents.empty()) return 0;

  std::vector<char> removed(leaves_.size(), 0);
  std::vector<AddedLeaf> added;
  added.reserve(parents.size());
  for (const auto& p : parents) {
    // The eight children are SFC-consecutive leaves; the parent's
    // provenance is the first (lowest old ID) of them.
    std::int32_t first = -1;
    for (std::uint32_t c = 0; c < 8; ++c) {
      const std::int32_t id =
          find(p.child(c & 1u, (c >> 1) & 1u, (c >> 2) & 1u));
      AMR_CHECK(id >= 0);
      removed[static_cast<std::size_t>(id)] = 1;
      if (first < 0 || id < first) first = id;
    }
    added.push_back(AddedLeaf{p, RemapKind::kCoarsened, first});
  }
  apply_delta(removed, std::move(added));
  return parents.size();
}

void AmrMesh::refine_all(int levels) {
  for (int i = 0; i < levels; ++i) {
    std::vector<std::int32_t> all(leaves_.size());
    for (std::size_t j = 0; j < all.size(); ++j)
      all[j] = static_cast<std::int32_t>(j);
    refine(all);
  }
}

bool AmrMesh::check_balance() const {
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const BlockCoord& b = leaves_[i];
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          BlockCoord nb;
          if (!neighbor_coord(b, dx, dy, dz, nb)) continue;
          if (find(nb) >= 0) continue;
          const std::int32_t coarse = find_covering(nb);
          if (coarse >= 0) {
            if (leaves_[coarse].level < b.level - 1) return false;
            continue;
          }
          // Refined region: verify no descendant deeper than level+1
          // touches us. It suffices to check that all touching children
          // exist as leaves.
          const std::uint32_t cx_lo = dx == 1 ? 0 : dx == -1 ? 1 : 0;
          const std::uint32_t cx_hi = dx == 0 ? 1 : cx_lo;
          const std::uint32_t cy_lo = dy == 1 ? 0 : dy == -1 ? 1 : 0;
          const std::uint32_t cy_hi = dy == 0 ? 1 : cy_lo;
          const std::uint32_t cz_lo = dz == 1 ? 0 : dz == -1 ? 1 : 0;
          const std::uint32_t cz_hi = dz == 0 ? 1 : cz_lo;
          for (std::uint32_t cz = cz_lo; cz <= cz_hi; ++cz)
            for (std::uint32_t cy = cy_lo; cy <= cy_hi; ++cy)
              for (std::uint32_t cx = cx_lo; cx <= cx_hi; ++cx)
                if (find(nb.child(cx, cy, cz)) < 0) return false;
        }
      }
    }
  }
  return true;
}

bool AmrMesh::check_coverage() const {
  // Volumes must sum to the whole domain, and no leaf may be an ancestor
  // of another (the index would have caught exact duplicates already).
  long double volume = 0.0L;
  for (const auto& b : leaves_) {
    volume += 1.0L / static_cast<long double>(grid_.count() *
                                              (1ULL << (3 * b.level)));
    BlockCoord c = b;
    while (c.level > 0) {
      c = c.parent();
      if (find(c) >= 0) return false;
    }
  }
  return std::abs(static_cast<double>(volume) - 1.0) < 1e-9;
}

bool AmrMesh::check_sfc_order() const {
  if (keys_.size() != leaves_.size() || index_.size() != leaves_.size())
    return false;
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const SfcKey fresh = sfc_key(leaves_[i], sfc_);
    if (!(fresh == keys_[i])) return false;
    if (i > 0 && !(keys_[i - 1] < keys_[i])) return false;
    const auto it = index_.find(block_key(leaves_[i]));
    if (it == index_.end() || it->second != static_cast<std::int32_t>(i))
      return false;
  }
  return true;
}

}  // namespace amr
