// Hardware fault injection.
//
// Reproduces the fail-slow behaviours of paper §IV-A: thermal throttling
// that inflates compute time on whole nodes ("clusters of 16 ranks",
// Fig 2), with optional onset steps for transient degradation. The
// injector answers "how slow is this node at this step"; the execution
// layer multiplies block compute times by it.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/common/rng.hpp"

namespace amr {

struct ThrottleFault {
  std::vector<std::int32_t> nodes;
  double factor = 4.0;          ///< compute time multiplier (paper: ~4x)
  std::int64_t onset_step = 0;  ///< first affected step
  std::int64_t end_step = -1;   ///< last affected step; -1 = forever
};

/// One node's degradation at a given step (see active_at()).
struct ActiveFault {
  std::int32_t node = -1;
  double factor = 1.0;
};

class FaultInjector {
 public:
  void add_throttle(ThrottleFault fault);

  /// Compute-time multiplier for a node at a step (>= 1.0).
  double compute_multiplier(std::int32_t node, std::int64_t step) const;

  /// True if the node has any fault configured (regardless of step).
  bool node_faulty(std::int32_t node) const;

  /// All nodes with any configured fault.
  std::vector<std::int32_t> faulty_nodes() const;

  /// Nodes degraded at `step` with their effective multiplier, sorted by
  /// node. Comparing consecutive steps yields fault onset/clear edges
  /// (the trace layer emits those as instants).
  std::vector<ActiveFault> active_at(std::int64_t step) const;

  bool empty() const { return throttles_.empty(); }

  /// The configured schedule, in insertion order (checkpoint fingerprint:
  /// a restored run must carry the same fault schedule).
  const std::vector<ThrottleFault>& throttles() const { return throttles_; }

 private:
  std::vector<ThrottleFault> throttles_;
};

/// Pick `count` distinct victim nodes deterministically from [0, nodes).
std::vector<std::int32_t> pick_victim_nodes(std::int32_t nodes,
                                            std::int32_t count, Rng& rng);

}  // namespace amr
