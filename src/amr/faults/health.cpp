#include "amr/faults/health.hpp"

#include "amr/common/check.hpp"

namespace amr {

std::vector<std::int32_t> scan_sensors(const FaultInjector& injector,
                                       std::int32_t num_nodes, Rng& rng,
                                       double detection_prob) {
  std::vector<std::int32_t> detected;
  for (std::int32_t node = 0; node < num_nodes; ++node) {
    if (injector.node_faulty(node) && rng.chance(detection_prob))
      detected.push_back(node);
  }
  return detected;
}

NodePool::NodePool(std::int32_t total_nodes)
    : total_nodes_(total_nodes),
      blacklisted_(static_cast<std::size_t>(total_nodes), false) {
  AMR_CHECK(total_nodes > 0);
}

void NodePool::blacklist(std::int32_t node) {
  AMR_CHECK(node >= 0 && node < total_nodes_);
  blacklisted_[static_cast<std::size_t>(node)] = true;
}

void NodePool::blacklist_all(const std::vector<std::int32_t>& nodes) {
  for (const std::int32_t n : nodes) blacklist(n);
}

bool NodePool::is_blacklisted(std::int32_t node) const {
  AMR_CHECK(node >= 0 && node < total_nodes_);
  return blacklisted_[static_cast<std::size_t>(node)];
}

std::int32_t NodePool::healthy_count() const {
  std::int32_t count = 0;
  for (const bool b : blacklisted_)
    if (!b) ++count;
  return count;
}

std::vector<std::int32_t> NodePool::allocate(std::int32_t needed) const {
  AMR_CHECK_MSG(needed <= healthy_count(),
                "node pool exhausted; overprovision the allocation");
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(needed));
  for (std::int32_t node = 0;
       node < total_nodes_ &&
       out.size() < static_cast<std::size_t>(needed);
       ++node) {
    if (!blacklisted_[static_cast<std::size_t>(node)]) out.push_back(node);
  }
  return out;
}

}  // namespace amr
