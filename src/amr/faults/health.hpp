// Launch-time health checking and node pruning.
//
// The paper's measurement-integrity workflow (§IV-A): overprovision the
// node allocation, run pre/post-job health checks against hardware
// indicators (syslog analogue = fault-injector sensors with a detection
// probability), prune failing nodes from the run and blacklist them.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/common/rng.hpp"
#include "amr/faults/injector.hpp"

namespace amr {

/// Scan node sensors. Each faulty node is detected with probability
/// `detection_prob` per scan (syslog indicators are not perfectly
/// reliable; pre- AND post-job scans raise coverage).
std::vector<std::int32_t> scan_sensors(const FaultInjector& injector,
                                       std::int32_t num_nodes, Rng& rng,
                                       double detection_prob = 1.0);

/// Overprovisioned node pool with a persistent blacklist.
class NodePool {
 public:
  explicit NodePool(std::int32_t total_nodes);

  void blacklist(std::int32_t node);
  void blacklist_all(const std::vector<std::int32_t>& nodes);
  bool is_blacklisted(std::int32_t node) const;
  std::int32_t total_nodes() const { return total_nodes_; }
  std::int32_t healthy_count() const;

  /// Allocate `needed` non-blacklisted nodes (lowest ids first, matching
  /// a scheduler's deterministic fill). Fails if insufficient healthy
  /// nodes remain — the reason the launch workflow overprovisions.
  std::vector<std::int32_t> allocate(std::int32_t needed) const;

 private:
  std::int32_t total_nodes_;
  std::vector<bool> blacklisted_;
};

}  // namespace amr
