#include "amr/faults/injector.hpp"

#include <algorithm>

#include "amr/common/check.hpp"

namespace amr {

void FaultInjector::add_throttle(ThrottleFault fault) {
  AMR_CHECK(fault.factor >= 1.0);
  throttles_.push_back(std::move(fault));
}

double FaultInjector::compute_multiplier(std::int32_t node,
                                         std::int64_t step) const {
  double multiplier = 1.0;
  for (const auto& t : throttles_) {
    if (step < t.onset_step) continue;
    if (t.end_step >= 0 && step > t.end_step) continue;
    if (std::find(t.nodes.begin(), t.nodes.end(), node) != t.nodes.end())
      multiplier = std::max(multiplier, t.factor);
  }
  return multiplier;
}

bool FaultInjector::node_faulty(std::int32_t node) const {
  for (const auto& t : throttles_)
    if (std::find(t.nodes.begin(), t.nodes.end(), node) != t.nodes.end())
      return true;
  return false;
}

std::vector<std::int32_t> FaultInjector::faulty_nodes() const {
  std::vector<std::int32_t> out;
  for (const auto& t : throttles_)
    for (const std::int32_t n : t.nodes)
      if (std::find(out.begin(), out.end(), n) == out.end())
        out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ActiveFault> FaultInjector::active_at(std::int64_t step) const {
  std::vector<ActiveFault> out;
  for (const std::int32_t n : faulty_nodes()) {
    const double m = compute_multiplier(n, step);
    if (m > 1.0) out.push_back(ActiveFault{n, m});
  }
  return out;
}

std::vector<std::int32_t> pick_victim_nodes(std::int32_t nodes,
                                            std::int32_t count, Rng& rng) {
  AMR_CHECK(count >= 0 && count <= nodes);
  std::vector<std::int32_t> pool(static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < pool.size(); ++i)
    pool[i] = static_cast<std::int32_t>(i);
  // Partial Fisher-Yates.
  for (std::int32_t i = 0; i < count; ++i) {
    const auto j = i + static_cast<std::int32_t>(rng.uniform_int(
                           static_cast<std::uint64_t>(nodes - i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(count));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace amr
